// Quickstart: anonymize a dataset with condensation and mine it unchanged.
//
// Demonstrates the core promise of the paper: the anonymized output is an
// ordinary dataset, so an ordinary k-NN classifier trains on it directly —
// no privacy-aware algorithm needed.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "common/random.h"
#include "core/engine.h"
#include "data/split.h"
#include "datagen/profiles.h"
#include "metrics/compatibility.h"
#include "mining/evaluation.h"
#include "mining/knn.h"

int main() {
  using namespace condensa;

  // 1. Get a dataset. (Here: the synthetic Ionosphere profile; swap in
  //    data::ReadCsv for your own file.)
  Rng rng(2024);
  data::Dataset dataset = datagen::MakeIonosphere(rng);
  std::printf("dataset: %zu records, %zu attributes, %zu classes\n",
              dataset.size(), dataset.dim(), dataset.DistinctLabels().size());

  // 2. Hold out a test set.
  auto split = data::SplitTrainTest(dataset, 0.75, rng);
  if (!split.ok()) {
    std::fprintf(stderr, "split failed: %s\n",
                 split.status().ToString().c_str());
    return 1;
  }

  // 3. Anonymize the training data at indistinguishability level k = 25.
  core::CondensationEngine engine({.group_size = 25});
  auto result = engine.Anonymize(split->train, rng);
  if (!result.ok()) {
    std::fprintf(stderr, "anonymization failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("anonymized: %zu records, achieved indistinguishability "
              "level %zu, average group size %.1f\n",
              result->anonymized.size(),
              result->AchievedIndistinguishability(),
              result->AverageGroupSize());

  // 4. Train a stock 1-NN classifier on the anonymized release and score
  //    it against a 1-NN trained on the raw data.
  mining::KnnClassifier on_anonymized({.k = 1});
  mining::KnnClassifier on_original({.k = 1});
  if (!on_anonymized.Fit(result->anonymized).ok() ||
      !on_original.Fit(split->train).ok()) {
    std::fprintf(stderr, "classifier fit failed\n");
    return 1;
  }
  auto anonymized_accuracy =
      mining::EvaluateAccuracy(on_anonymized, split->test);
  auto original_accuracy = mining::EvaluateAccuracy(on_original, split->test);
  auto mu = metrics::CovarianceCompatibility(split->train,
                                             result->anonymized);
  if (!anonymized_accuracy.ok() || !original_accuracy.ok() || !mu.ok()) {
    std::fprintf(stderr, "evaluation failed\n");
    return 1;
  }

  std::printf("\n1-NN accuracy on original data : %.3f\n",
              *original_accuracy);
  std::printf("1-NN accuracy on anonymized data: %.3f\n",
              *anonymized_accuracy);
  std::printf("covariance compatibility (mu)   : %.4f\n", *mu);
  std::printf("\nThe anonymized release preserves the mining utility while "
              "every record\nis indistinguishable within a group of >= 25 "
              "records.\n");
  return 0;
}
