// Domain scenario: releasing a medical-style dataset for external research.
//
// A clinic wants to share patient measurements (the Pima Indian diabetes
// profile: 8 clinical attributes, diabetic / non-diabetic outcome) with an
// outside ML team. Raw sharing is off the table; instead the clinic
// releases condensed-and-regenerated records at k = 30 and writes them to
// CSV. The example then plays the external team: it loads the CSV with no
// knowledge of the anonymization, trains two stock models, and reports
// utility — plus a record-linkage audit of what an adversary holding the
// release could do.
//
// Run: ./build/examples/medical_records

#include <cstdio>
#include <string>

#include "common/random.h"
#include "core/engine.h"
#include "data/csv.h"
#include "data/split.h"
#include "datagen/profiles.h"
#include "metrics/privacy.h"
#include "mining/evaluation.h"
#include "mining/knn.h"
#include "mining/naive_bayes.h"

int main() {
  using namespace condensa;
  const std::string release_path = "/tmp/condensa_medical_release.csv";

  // --- Clinic side -------------------------------------------------------
  Rng rng(11);
  data::Dataset patients = datagen::MakePima(rng);
  auto split = data::SplitTrainTest(patients, 0.8, rng);
  if (!split.ok()) {
    std::fprintf(stderr, "split failed\n");
    return 1;
  }

  core::CondensationEngine engine({.group_size = 30});
  auto release = engine.Anonymize(split->train, rng);
  if (!release.ok()) {
    std::fprintf(stderr, "anonymization failed: %s\n",
                 release.status().ToString().c_str());
    return 1;
  }
  if (!data::WriteCsv(release->anonymized, release_path).ok()) {
    std::fprintf(stderr, "cannot write release CSV\n");
    return 1;
  }
  std::printf("clinic: released %zu synthetic patient records to %s\n",
              release->anonymized.size(), release_path.c_str());
  std::printf("clinic: every record is indistinguishable within a cohort "
              "of >= %zu patients\n\n",
              release->AchievedIndistinguishability());

  // --- External research team -------------------------------------------
  data::CsvReadOptions read_options;
  read_options.task = data::TaskType::kClassification;
  auto loaded = data::ReadCsv(release_path, read_options);
  if (!loaded.ok()) {
    std::fprintf(stderr, "cannot read release CSV\n");
    return 1;
  }
  std::printf("research team: loaded %zu records from the release\n",
              loaded->dataset.size());

  mining::KnnClassifier knn({.k = 5});
  mining::GaussianNaiveBayes nb;
  if (!knn.Fit(loaded->dataset).ok() || !nb.Fit(loaded->dataset).ok()) {
    std::fprintf(stderr, "model fit failed\n");
    return 1;
  }
  auto knn_accuracy = mining::EvaluateAccuracy(knn, split->test);
  auto nb_accuracy = mining::EvaluateAccuracy(nb, split->test);

  mining::KnnClassifier oracle({.k = 5});
  if (!oracle.Fit(split->train).ok()) return 1;
  auto oracle_accuracy = mining::EvaluateAccuracy(oracle, split->test);
  if (!knn_accuracy.ok() || !nb_accuracy.ok() || !oracle_accuracy.ok()) {
    std::fprintf(stderr, "evaluation failed\n");
    return 1;
  }

  std::printf("research team: 5-NN accuracy on release      = %.3f\n",
              *knn_accuracy);
  std::printf("research team: naive Bayes accuracy          = %.3f\n",
              *nb_accuracy);
  std::printf("(reference: 5-NN trained on raw data         = %.3f)\n\n",
              *oracle_accuracy);

  // --- Privacy audit ------------------------------------------------------
  auto linkage = metrics::EvaluateLinkage(split->train, release->anonymized);
  auto leakage =
      metrics::ExactLeakageRate(split->train, release->anonymized, 1e-9);
  if (!linkage.ok() || !leakage.ok()) {
    std::fprintf(stderr, "audit failed\n");
    return 1;
  }
  std::printf("audit: nearest released record is %.2fx farther from a "
              "patient than their nearest real neighbour\n",
              linkage->distance_gain);
  std::printf("audit: verbatim record leakage rate = %.4f\n", *leakage);
  return 0;
}
