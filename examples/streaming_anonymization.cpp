// Streaming anonymization: the paper's dynamic setting (Section 3).
//
// A server holds only condensed group statistics. Records arrive one at a
// time (here: a simulated sensor feed whose distribution drifts over
// time); each is folded into the nearest group, groups split at 2k, and at
// any moment the server can emit an anonymized snapshot without ever
// having stored a raw record beyond the arrival instant.
//
// Run: ./build/examples/streaming_anonymization

#include <cstdio>
#include <deque>

#include "common/random.h"
#include "core/anonymizer.h"
#include "core/dynamic_condenser.h"
#include "linalg/stats.h"

int main() {
  using namespace condensa;
  constexpr std::size_t kDim = 4;
  constexpr std::size_t kIndistinguishability = 15;

  Rng rng(7);
  core::DynamicCondenser condenser(
      kDim, {.group_size = kIndistinguishability});

  // Bootstrap from a small historical batch (the paper's initial D).
  std::vector<linalg::Vector> history;
  for (int i = 0; i < 150; ++i) {
    history.push_back(linalg::Vector{rng.Gaussian(0.0, 1.0),
                                     rng.Gaussian(5.0, 2.0),
                                     rng.Gaussian(-3.0, 1.0),
                                     rng.Gaussian(0.0, 0.5)});
  }
  if (!condenser.Bootstrap(history, rng).ok()) {
    std::fprintf(stderr, "bootstrap failed\n");
    return 1;
  }
  std::printf("bootstrapped %zu records into %zu groups\n",
              condenser.records_seen(), condenser.groups().num_groups());

  // Stream 5000 records whose mean drifts — the structure follows the
  // drift because new groups split off in the new region. Records also
  // expire after ~1500 steps (a retention window / right-to-erasure
  // policy): Remove folds them back out of the aggregates, re-merging any
  // group that would fall below k.
  std::deque<linalg::Vector> retention_window(history.begin(),
                                              history.end());
  constexpr std::size_t kRetention = 1500;
  for (int t = 0; t < 5000; ++t) {
    double drift = 0.002 * t;
    linalg::Vector record{rng.Gaussian(drift, 1.0),
                          rng.Gaussian(5.0 + drift, 2.0),
                          rng.Gaussian(-3.0, 1.0),
                          rng.Gaussian(0.0, 0.5)};
    if (!condenser.Insert(record).ok()) {
      std::fprintf(stderr, "insert failed at t=%d\n", t);
      return 1;
    }
    retention_window.push_back(record);
    if (retention_window.size() > kRetention) {
      if (!condenser.Remove(retention_window.front()).ok()) {
        std::fprintf(stderr, "remove failed at t=%d\n", t);
        return 1;
      }
      retention_window.pop_front();
    }
    if ((t + 1) % 1000 == 0) {
      core::PrivacySummary summary = condenser.groups().Summary();
      std::printf("t=%5d: %4zu groups, sizes [%zu, %zu], avg %.1f, "
                  "%zu splits, %zu merges, %zu live records\n",
                  t + 1, summary.num_groups, summary.min_group_size,
                  summary.max_group_size, summary.average_group_size,
                  condenser.split_count(), condenser.merge_count(),
                  condenser.records_seen());
    }
  }

  // Emit an anonymized snapshot. The condenser holds only (Fs, Sc, n)
  // aggregates at this point — the stream itself was never retained.
  core::CondensedGroupSet groups = condenser.TakeGroups();
  core::Anonymizer anonymizer;
  auto snapshot = anonymizer.Generate(groups, rng);
  if (!snapshot.ok()) {
    std::fprintf(stderr, "snapshot generation failed\n");
    return 1;
  }

  linalg::Vector mean = linalg::MeanVector(*snapshot);
  std::printf("\nanonymized snapshot: %zu records\n", snapshot->size());
  std::printf("snapshot mean: %s\n", mean.ToString().c_str());
  std::printf("every snapshot record is synthesized from a group of >= %zu "
              "stream records.\n",
              groups.Summary().min_group_size);
  return 0;
}
