// Privacy-utility frontier audit.
//
// Sweeps the indistinguishability level k on one dataset and prints the
// full trade-off a data owner needs to pick k: privacy (distance gain,
// verbatim leakage, achieved k) against utility (classification accuracy,
// covariance compatibility). The paper's qualitative claim — utility decays
// slowly while privacy grows with k — is visible directly in the table.
//
// Run: ./build/examples/privacy_audit [profile]   (default: ecoli)

#include <cstdio>
#include <string>

#include "common/random.h"
#include "core/engine.h"
#include "data/split.h"
#include "data/transform.h"
#include "datagen/profiles.h"
#include "metrics/compatibility.h"
#include "metrics/privacy.h"
#include "mining/evaluation.h"
#include "mining/knn.h"

int main(int argc, char** argv) {
  using namespace condensa;
  const std::string profile = argc > 1 ? argv[1] : "ecoli";

  Rng rng(21);
  auto dataset = datagen::MakeProfileByName(profile, rng);
  if (!dataset.ok()) {
    std::fprintf(stderr, "unknown profile '%s' (try ionosphere, ecoli, "
                 "pima)\n",
                 profile.c_str());
    return 2;
  }
  if (dataset->task() != data::TaskType::kClassification) {
    std::fprintf(stderr, "this example audits classification profiles\n");
    return 2;
  }

  auto split = data::SplitTrainTest(*dataset, 0.75, rng);
  if (!split.ok()) return 1;
  data::ZScoreScaler scaler;
  if (!scaler.Fit(split->train).ok()) return 1;
  data::Dataset train = scaler.TransformDataset(split->train);
  data::Dataset test = scaler.TransformDataset(split->test);

  mining::KnnClassifier baseline({.k = 1});
  if (!baseline.Fit(train).ok()) return 1;
  auto baseline_accuracy = mining::EvaluateAccuracy(baseline, test);
  if (!baseline_accuracy.ok()) return 1;

  std::printf("=== privacy/utility audit: %s (%zu records, %zu dims) ===\n",
              profile.c_str(), dataset->size(), dataset->dim());
  std::printf("1-NN accuracy on raw data: %.3f\n\n", *baseline_accuracy);
  std::printf("%6s | %10s %10s | %12s %12s %10s\n", "k", "accuracy", "mu",
              "dist_gain", "leak_rate", "achieved_k");
  std::printf("-------+-----------------------+-------------------------"
              "-----------\n");

  for (std::size_t k : {1u, 2u, 5u, 10u, 20u, 30u, 50u}) {
    core::CondensationEngine engine({.group_size = k});
    auto result = engine.Anonymize(train, rng);
    if (!result.ok()) {
      std::fprintf(stderr, "k=%zu failed: %s\n", k,
                   result.status().ToString().c_str());
      return 1;
    }
    mining::KnnClassifier knn({.k = 1});
    if (!knn.Fit(result->anonymized).ok()) return 1;
    auto accuracy = mining::EvaluateAccuracy(knn, test);
    auto mu = metrics::CovarianceCompatibility(train, result->anonymized);
    auto linkage = metrics::EvaluateLinkage(train, result->anonymized);
    auto leak = metrics::ExactLeakageRate(train, result->anonymized, 1e-9);
    if (!accuracy.ok() || !mu.ok() || !linkage.ok() || !leak.ok()) return 1;

    std::printf("%6zu | %10.3f %10.4f | %12.2f %12.4f %10zu\n", k, *accuracy,
                *mu, linkage->distance_gain, *leak,
                result->AchievedIndistinguishability());
  }

  std::printf("\nReading the table: pick the smallest k whose privacy "
              "columns satisfy policy;\nutility (accuracy, mu) typically "
              "stays near the raw-data line well past k=20.\n");
  return 0;
}
