#!/usr/bin/env bash
# Configures a sanitizer build (AddressSanitizer + UBSan by default) and
# runs the full test suite under it. Any sanitizer report fails the run:
# UBSan is made halt-on-error and ASan aborts on the first bad access.
#
# Usage:
#   tools/run_sanitizers.sh                   # address;undefined
#   tools/run_sanitizers.sh "thread"          # a different sanitizer list
#   BUILD_DIR=build-tsan tools/run_sanitizers.sh "thread"
set -euo pipefail

cd "$(dirname "$0")/.."

SANITIZERS="${1:-address;undefined}"
BUILD_DIR="${BUILD_DIR:-build-sanitize}"

cmake -B "${BUILD_DIR}" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCONDENSA_SANITIZE="${SANITIZERS}" \
  -DCONDENSA_BUILD_BENCHMARKS=OFF \
  -DCONDENSA_BUILD_EXAMPLES=OFF
cmake --build "${BUILD_DIR}" -j "$(nproc)"

export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1:abort_on_error=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1}"

ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "$(nproc)"
echo "sanitizer run (${SANITIZERS}) passed"
