// condensa — command-line anonymizer.
//
// Subcommands:
//   condense  CSV in -> condensation -> anonymized CSV out
//   generate  regenerate a release from saved pool statistics
//   ingest    stream a CSV into a crash-safe checkpointed condenser
//   serve-stream  run the supervised streaming runtime (bounded queue,
//             retry/backoff, quarantine, circuit breaker) over a CSV or a
//             synthetic stream; with --shards=N the stream is scattered
//             across N independent durable pipelines and gathered into one
//             release via exact moment merge; see docs/resilience.md and
//             docs/scaling.md
//   shard     batch scatter/gather condensation: route a CSV (or synthetic
//             data) across N shard condensers, exact-merge the shard-local
//             aggregates, optionally anonymize; see docs/scaling.md
//   worker    run one standalone fabric worker process: a durable
//             streaming shard behind the framed TCP protocol, serving
//             Hello/Submit/Heartbeat/Finish from a coordinator; see
//             docs/fabric.md
//   fabric    coordinate a fleet of worker processes: scatter a stream
//             across them with liveness tracking, reconnect, and
//             zero-loss handoff, then gather the release; see
//             docs/fabric.md
//   recover   restore a condenser from its checkpoint directory
//   query     one-shot mining queries (classify / aggregate / regenerate)
//             answered directly from condensed statistics — a saved
//             groups file, a checkpoint directory, or a running
//             query-server; see docs/query.md
//   query-server  long-lived read-side server answering framed Query
//             requests from a loaded snapshot; see docs/query.md
//   inspect   print the privacy summary of a saved group-statistics file
//   evaluate  compare an original and an anonymized CSV (mu, linkage)
//   stats     run a synthetic end-to-end pipeline and dump the metrics
//             registry (see docs/observability.md)
//
// Examples:
//   condensa condense --input=patients.csv --output=release.csv ...
//     --task=classification --k=25
//   condensa condense --input=stream.csv --task=none --k=20 ...
//       --mode=dynamic --save-groups=groups.txt --output=release.csv
//   condensa ingest --input=day1.csv --checkpoint-dir=state --k=20
//   condensa ingest --input=day2.csv --checkpoint-dir=state --k=20
//   condensa serve-stream --checkpoint-dir=state --records=20000 --chaos=0.05
//   condensa serve-stream --checkpoint-dir=state --shards=4 --records=100000
//   condensa shard --input=patients.csv --shards=8 --k=10 --output=release.csv
//   condensa recover --checkpoint-dir=state --save-groups=groups.txt
//   condensa query --groups=groups.txt --op=aggregate --range=0:0.2:0.8
//   condensa query-server --checkpoint-dir=state --port=7070
//
// Every subcommand accepts --help and exits 0 after printing its flags;
// unknown or malformed flags exit 2.
//   condensa inspect --groups=groups.txt
//   condensa evaluate --original=patients.csv --anonymized=release.csv ...
//       --task=classification

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <thread>
#include <set>
#include <string>
#include <vector>

#include "backend/registry.h"
#include "common/failpoint.h"
#include "common/io.h"
#include "common/random.h"
#include "common/string_util.h"
#include "core/checkpointing.h"
#include "core/engine.h"
#include "core/serialization.h"
#include "data/csv.h"
#include "index/kdtree.h"
#include "metrics/compatibility.h"
#include "metrics/privacy.h"
#include "core/anonymizer.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "query/client.h"
#include "query/engine.h"
#include "query/query.h"
#include "query/server.h"
#include "query/snapshot.h"
#include "runtime/pipeline.h"
#include "runtime/retry.h"
#include "shard/fabric.h"
#include "shard/sharded_condenser.h"
#include "shard/stream_service.h"
#include "shard/worker_server.h"

namespace {

using condensa::ParseDouble;
using condensa::ParseInt;
using condensa::StartsWith;

// Minimal --flag=value parser; returns false on unknown flags.
class Flags {
 public:
  Flags(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string_view arg = argv[i];
      if (!StartsWith(arg, "--")) {
        ok_ = false;
        bad_ = std::string(arg);
        return;
      }
      arg.remove_prefix(2);
      std::size_t eq = arg.find('=');
      if (eq == std::string_view::npos) {
        values_[std::string(arg)] = "true";
      } else {
        values_[std::string(arg.substr(0, eq))] =
            std::string(arg.substr(eq + 1));
      }
    }
  }

  bool ok() const { return ok_; }
  const std::string& bad() const { return bad_; }

  std::string Get(const std::string& name, const std::string& fallback) {
    seen_.insert(name);
    auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second;
  }

  // Flags provided but never consumed (typos).
  std::vector<std::string> Unused() const {
    std::vector<std::string> unused;
    for (const auto& [name, value] : values_) {
      if (seen_.find(name) == seen_.end()) {
        unused.push_back(name);
      }
    }
    return unused;
  }

 private:
  std::map<std::string, std::string> values_;
  std::set<std::string> seen_;
  bool ok_ = true;
  std::string bad_;
};

// Call after a command has Get() every flag it understands: any flag still
// unconsumed is a typo, and failing before the work starts beats silently
// running with a default. Returns the exit code (0 ok, 2 bad flag).
int RejectUnknownFlags(Flags& flags, const char* command) {
  bool unknown = false;
  for (const std::string& name : flags.Unused()) {
    std::fprintf(stderr, "error: unknown flag --%s for '%s'\n", name.c_str(),
                 command);
    unknown = true;
  }
  if (unknown) {
    std::fprintf(stderr, "run `condensa %s --help` for the flag list\n",
                 command);
    return 2;
  }
  return 0;
}

void PrintUsage(std::FILE* out) {
  std::fprintf(
      out,
      "usage: condensa <command> [--flag=value ...]\n"
      "       condensa <command> --help\n"
      "\n"
      "commands:\n"
      "  condense   --input=FILE --output=FILE [--k=N] [--mode=static|dynamic]\n"
      "             [--task=classification|regression|none] [--label-column=N]\n"
      "             [--backend=ID] [--header] [--seed=N] [--save-groups=FILE]\n"
      "  generate   --groups=FILE --output=FILE [--seed=N]\n"
      "  ingest     --input=FILE --checkpoint-dir=DIR [--k=N] [--backend=ID]\n"
      "             [--snapshot-every=N] [--no-sync] [--header] [--seed=N]\n"
      "  serve-stream --checkpoint-dir=DIR [--input=FILE | --records=N\n"
      "             --dim=N] [--shards=N] [--policy=hash|round-robin] [--k=N]\n"
      "             [--backend=ID] [--snapshot-every=N] [--no-sync]\n"
      "             [--queue-capacity=N]\n"
      "             [--backpressure=block|drop-oldest|reject] [--batch-size=N]\n"
      "             [--batch-deadline-ms=X] [--retry-attempts=N]\n"
      "             [--retry-budget=N] [--chaos=P] [--header] [--seed=N]\n"
      "             [--format=prometheus|json]\n"
      "  shard      [--input=FILE | --records=N --dim=N] --shards=N [--k=N]\n"
      "             [--backend=ID] [--policy=hash|round-robin]\n"
      "             [--mode=batch|stream]\n"
      "             [--checkpoint-root=DIR] [--snapshot-every=N] [--no-sync]\n"
      "             [--threads=N] [--save-groups=FILE] [--output=FILE]\n"
      "             [--header] [--seed=N] [--format=prometheus|json]\n"
      "  worker     --checkpoint-root=DIR [--host=ADDR] [--port=N]\n"
      "             [--worker-id=ID] [--idle-timeout-ms=X]\n"
      "             [--flush-timeout-ms=X]\n"
      "  fabric     --workers=HOST:PORT[,HOST:PORT...] [--input=FILE |\n"
      "             --records=N --dim=N] [--k=N] [--backend=ID]\n"
      "             [--policy=hash|round-robin]\n"
      "             [--wire-batch=N] [--local-fallback-root=DIR]\n"
      "             [--heartbeat-interval-ms=X] [--heartbeat-timeout-ms=X]\n"
      "             [--save-groups=FILE] [--output=FILE] [--header]\n"
      "             [--seed=N] [--format=prometheus|json]\n"
      "  recover    --checkpoint-dir=DIR [--save-groups=FILE] [--k=N]\n"
      "             [--backend=ID]\n"
      "  query      [--groups=FILE | --checkpoint-dir=DIR [--k=N] |\n"
      "             --connect=HOST:PORT] [--op=classify|aggregate|regenerate]\n"
      "             [--points=FILE] [--neighbors=N] [--range=DIM:LO:HI,...]\n"
      "             [--seed=N] [--records-per-group=N] [--output=FILE]\n"
      "             [--header] [--timeout-ms=X] [--retries=N]\n"
      "             [--deadline-ms=X]\n"
      "  query-server [--groups=FILE | --checkpoint-dir=DIR [--k=N]]\n"
      "             [--host=ADDR] [--port=N] [--idle-timeout-ms=X]\n"
      "             [--cache-capacity=N] [--max-sessions=N]\n"
      "             [--deadline-ms=X]\n"
      "  inspect    --groups=FILE\n"
      "  evaluate   --original=FILE --anonymized=FILE\n"
      "             [--task=classification|regression|none] [--header]\n"
      "             [--label-column=N]\n"
      "  stats      [--records=N] [--dim=N] [--k=N] [--seed=N]\n"
      "             [--format=prometheus|json] [--trace-out=FILE]\n"
      "\n"
      "anonymization backends (--backend=ID on condense, ingest,\n"
      "serve-stream, shard, fabric, and recover; default condensation):\n");
  condensa::backend::Registry& registry =
      condensa::backend::Registry::Global();
  for (const std::string& id : registry.Ids()) {
    condensa::StatusOr<const condensa::backend::AnonymizationBackend*>
        resolved = registry.Get(id);
    std::fprintf(out, "  %-12s %s\n", id.c_str(),
                 resolved.ok() ? (*resolved)->info().summary.c_str() : "");
  }
  std::fprintf(
      out,
      "\n`condensa <command> --help` describes one command's flags in "
      "detail.\n");
}

int Usage() {
  PrintUsage(stderr);
  return 2;
}

// Detailed per-command help, printed by `condensa <command> --help`.
// Returns nullptr for unknown commands.
const char* HelpText(const std::string& command) {
  if (command == "condense") {
    return "condensa condense — CSV in -> condensation -> anonymized CSV out\n"
           "\n"
           "  --input=FILE       raw records CSV (required)\n"
           "  --output=FILE      anonymized release CSV (required)\n"
           "  --k=N              indistinguishability level (default 10)\n"
           "  --mode=static|dynamic\n"
           "                     whole-batch split condensation, or one-at-a-\n"
           "                     time streaming maintenance (default static)\n"
           "  --task=classification|regression|none\n"
           "                     label handling; labeled tasks condense each\n"
           "                     class pool separately (default classification)\n"
           "  --backend=ID       anonymization backend (docs/backends.md);\n"
           "                     `condensa --help` lists the registered ids\n"
           "                     (default condensation)\n"
           "  --label-column=N   0-based label column (-1 = last; default -1)\n"
           "  --header           first CSV row is a header\n"
           "  --seed=N           RNG seed; fixed seed => identical release\n"
           "  --save-groups=FILE also save pool statistics for `generate`\n";
  }
  if (command == "generate") {
    return "condensa generate — regenerate a release from saved statistics\n"
           "\n"
           "  --groups=FILE      pool statistics from condense --save-groups\n"
           "                     (required); the backend recorded in the file\n"
           "                     drives regeneration automatically\n"
           "  --output=FILE      anonymized release CSV (required)\n"
           "  --seed=N           RNG seed (default 42)\n";
  }
  if (command == "ingest") {
    return "condensa ingest — stream a CSV into a crash-safe condenser\n"
           "\n"
           "  --input=FILE          records CSV (required)\n"
           "  --checkpoint-dir=DIR  snapshot+journal directory (required);\n"
           "                        re-running resumes from recovered state\n"
           "  --k=N                 indistinguishability level (default 10)\n"
           "  --backend=ID          anonymization backend stamped into the\n"
           "                        checkpoints (default condensation)\n"
           "  --snapshot-every=N    journal appends per snapshot (default 1024)\n"
           "  --no-sync             skip fsync per append (faster, less safe)\n"
           "  --header              first CSV row is a header\n"
           "  --seed=N              RNG seed for the bootstrap pass\n";
  }
  if (command == "serve-stream") {
    return "condensa serve-stream — supervised streaming runtime\n"
           "\n"
           "Runs records through bounded-queue ingest with retry/backoff,\n"
           "poison quarantine, circuit breaker, and crash-safe checkpoints\n"
           "(docs/resilience.md). With --shards=N the stream is scattered\n"
           "across N independent pipelines — each with its own checkpoint\n"
           "directory under --checkpoint-dir — and gathered into one global\n"
           "release by exact moment merge (docs/scaling.md).\n"
           "\n"
           "  --checkpoint-dir=DIR  checkpoint root (required)\n"
           "  --input=FILE          records CSV; otherwise a synthetic\n"
           "  --records=N --dim=N   two-blob Gaussian stream is generated\n"
           "                        (defaults 5000 x 4)\n"
           "  --shards=N            pipelines to scatter across (default 1)\n"
           "  --policy=hash|round-robin\n"
           "                        record-to-shard routing (default hash)\n"
           "  --k=N                 indistinguishability level (default 10)\n"
           "  --backend=ID          anonymization backend (default\n"
           "                        condensation)\n"
           "  --snapshot-every=N    appends per snapshot (default 256)\n"
           "  --no-sync             skip fsync per journal append\n"
           "  --queue-capacity=N    bounded queue size (default 1024)\n"
           "  --backpressure=block|drop-oldest|reject\n"
           "                        full-queue policy (default block;\n"
           "                        single-pipeline mode only)\n"
           "  --batch-size=N        worker batch size (default 32)\n"
           "  --batch-deadline-ms=X watchdog deadline per batch (single-\n"
           "                        pipeline mode only)\n"
           "  --retry-attempts=N    attempts per transient failure (single-\n"
           "                        pipeline mode only)\n"
           "  --retry-budget=N      run-wide retry cap (single-pipeline only)\n"
           "  --chaos=P             arm failpoints at probability P during\n"
           "                        ingest (healed before Finish)\n"
           "  --header              first CSV row is a header\n"
           "  --seed=N              RNG seed (per-shard seeds are derived)\n"
           "  --format=prometheus|json  also dump the metrics registry\n";
  }
  if (command == "shard") {
    return "condensa shard — batch scatter/gather condensation\n"
           "\n"
           "Routes records across N shard condensers (each condensing its\n"
           "partition independently), then exact-merges the shard-local\n"
           "aggregates into one global k-indistinguishable structure\n"
           "(docs/scaling.md). Fixed --seed and --shards reproduce a\n"
           "bit-identical release.\n"
           "\n"
           "  --input=FILE          records CSV; otherwise a synthetic\n"
           "  --records=N --dim=N   two-blob Gaussian set is generated\n"
           "                        (defaults 10000 x 4)\n"
           "  --shards=N            shard count (default 2)\n"
           "  --policy=hash|round-robin\n"
           "                        record-to-shard routing (default hash)\n"
           "  --k=N                 indistinguishability level (default 10)\n"
           "  --backend=ID          anonymization backend; group construction\n"
           "                        and release regeneration both follow it\n"
           "                        (default condensation)\n"
           "  --mode=batch|stream   in-memory batch workers, or durable\n"
           "                        streaming workers with per-shard\n"
           "                        checkpoints (default batch)\n"
           "  --checkpoint-root=DIR per-shard checkpoint parent directory\n"
           "                        (required with --mode=stream)\n"
           "  --snapshot-every=N    appends per snapshot (default 1024)\n"
           "  --no-sync             skip fsync per journal append\n"
           "  --threads=N           worker threads (0 = hardware; output is\n"
           "                        identical at any thread count)\n"
           "  --save-groups=FILE    save the gathered group statistics\n"
           "  --output=FILE         also anonymize and write a release CSV\n"
           "  --header              first CSV row is a header\n"
           "  --seed=N              RNG seed (per-shard streams are derived)\n"
           "  --format=prometheus|json  also dump the metrics registry\n";
  }
  if (command == "worker") {
    return "condensa worker — standalone fabric worker process\n"
           "\n"
           "Listens for a coordinator (condensa fabric) and serves one\n"
           "shard of the networked fabric: records arrive in framed Submit\n"
           "batches, flow through the durable streaming runtime, and are\n"
           "acknowledged only once durably in custody — a kill -9 after an\n"
           "ack loses nothing (docs/fabric.md). The shard id, dimension,\n"
           "k, and seed all arrive in the coordinator's Hello, so one\n"
           "worker invocation serves any shard. Restarting the worker on\n"
           "the same --checkpoint-root recovers its durable state and\n"
           "rejoins the fabric.\n"
           "\n"
           "  --checkpoint-root=DIR shard checkpoint parent directory\n"
           "                        (required); shard i lives under\n"
           "                        DIR/shard-<i>\n"
           "  --host=ADDR           bind address (default 127.0.0.1)\n"
           "  --port=N              TCP port; 0 picks a free one, printed\n"
           "                        to stdout as 'listening on PORT'\n"
           "  --worker-id=ID        stable metric-label identity (default\n"
           "                        w<shard>); keep it stable across\n"
           "                        restarts so no duplicate series appear\n"
           "  --idle-timeout-ms=X   drop a silent session after X ms\n"
           "                        (default 30000)\n"
           "  --flush-timeout-ms=X  durability barrier per Submit batch\n"
           "                        (default 30000)\n";
  }
  if (command == "fabric") {
    return "condensa fabric — coordinate networked fabric workers\n"
           "\n"
           "Scatters a stream across standalone worker processes\n"
           "(condensa worker) over the framed TCP protocol, tracking\n"
           "liveness with heartbeats, reconnecting with exponential\n"
           "backoff, re-routing unacknowledged records off dead workers,\n"
           "and gathering the shard releases by exact moment merge\n"
           "(docs/fabric.md). A clean run is bit-identical to the\n"
           "in-process `serve-stream --shards=N` run with the same seed\n"
           "and shard count.\n"
           "\n"
           "  --workers=HOST:PORT[,HOST:PORT...]\n"
           "                        one endpoint per shard (required)\n"
           "  --input=FILE          records CSV; otherwise a synthetic\n"
           "  --records=N --dim=N   two-blob Gaussian stream is generated\n"
           "                        (defaults 5000 x 4)\n"
           "  --k=N                 indistinguishability level (default 10)\n"
           "  --backend=ID          anonymization backend, carried to every\n"
           "                        worker in the Hello (default condensation)\n"
           "  --policy=hash|round-robin\n"
           "                        record-to-shard routing (default hash)\n"
           "  --wire-batch=N        records per Submit frame (default 64)\n"
           "  --local-fallback-root=DIR\n"
           "                        take over unreachable shards with\n"
           "                        in-process workers over this checkpoint\n"
           "                        root (point it at the same tree the\n"
           "                        workers use)\n"
           "  --heartbeat-interval-ms=X  probe cadence (default 200)\n"
           "  --heartbeat-timeout-ms=X   declare-dead threshold (default\n"
           "                        1500)\n"
           "  --save-groups=FILE    save the gathered group statistics\n"
           "  --output=FILE         also anonymize and write a release CSV\n"
           "  --header              first CSV row is a header\n"
           "  --seed=N              RNG seed (per-shard seeds are derived)\n"
           "  --format=prometheus|json  also dump the metrics registry\n";
  }
  if (command == "recover") {
    return "condensa recover — restore a condenser from its checkpoints\n"
           "\n"
           "  --checkpoint-dir=DIR  directory to recover from (required)\n"
           "  --k=N                 group size the state was built with\n"
           "                        (default 10)\n"
           "  --backend=ID          backend the state was built with; a\n"
           "                        mismatched checkpoint refuses to load\n"
           "                        (default condensation)\n"
           "  --save-groups=FILE    save the recovered group statistics\n";
  }
  if (command == "query") {
    return "condensa query — mining queries answered from condensed "
           "statistics\n"
           "\n"
           "Snapshot source (exactly one required):\n"
           "  --groups=FILE      saved pool statistics or bare group file\n"
           "  --checkpoint-dir=DIR\n"
           "                     recover a durable condenser's state\n"
           "  --connect=HOST:PORT\n"
           "                     send the query to a running query-server\n"
           "  --k=N              group size for --checkpoint-dir recovery\n"
           "                     (default 10)\n"
           "\n"
           "Query (see docs/query.md for the full language):\n"
           "  --op=classify|aggregate|regenerate\n"
           "                     query kind (default aggregate)\n"
           "  --points=FILE      CSV of points to classify (classify only,\n"
           "                     required for it)\n"
           "  --neighbors=N      nearest group centroids consulted per point\n"
           "                     (default 1)\n"
           "  --range=DIM:LO:HI[,DIM:LO:HI...]\n"
           "                     centroid box selecting groups (aggregate\n"
           "                     and regenerate; empty = every group)\n"
           "  --seed=N           regeneration RNG seed (default 42)\n"
           "  --records-per-group=N\n"
           "                     regenerated records per selected group\n"
           "                     (default 0 = each group's own count)\n"
           "  --output=FILE      write regenerated records as CSV (default\n"
           "                     stdout)\n"
           "  --header           first row of --points is a header\n"
           "  --timeout-ms=X     per-frame timeout for --connect\n"
           "                     (default 5000)\n"
           "  --retries=N        attempts against --connect, redialing and\n"
           "                     backing off on transport errors and\n"
           "                     kUnavailable (default 1 = no retry)\n"
           "  --deadline-ms=X    overall budget for the --connect call,\n"
           "                     forwarded to the server so it sheds work\n"
           "                     past the deadline (default 0 = none)\n";
  }
  if (command == "query-server") {
    return "condensa query-server — serve framed mining queries from a "
           "snapshot\n"
           "\n"
           "Loads condensed state once, then answers Query frames until\n"
           "killed. Prints `listening on PORT` when ready.\n"
           "\n"
           "  --groups=FILE      saved pool statistics or bare group file\n"
           "  --checkpoint-dir=DIR\n"
           "                     recover a durable condenser's state\n"
           "                     (exactly one source required)\n"
           "  --k=N              group size for --checkpoint-dir recovery\n"
           "                     (default 10)\n"
           "  --host=ADDR        bind address (default 127.0.0.1)\n"
           "  --port=N           listen port (default 0 = pick a free one)\n"
           "  --idle-timeout-ms=X\n"
           "                     drop sessions silent this long\n"
           "                     (default 30000)\n"
           "  --cache-capacity=N bound on cached eigendecompositions\n"
           "                     (default 1024)\n"
           "  --max-sessions=N   concurrent sessions served; further\n"
           "                     connections are refused in-band with a\n"
           "                     retry-after hint (default 8)\n"
           "  --deadline-ms=X    deadline applied to requests that carry\n"
           "                     none (default 0 = unbounded)\n";
  }
  if (command == "inspect") {
    return "condensa inspect — print the privacy summary of a saved file\n"
           "\n"
           "  --groups=FILE  pool statistics (engine output) or bare group\n"
           "                 statistics file (required)\n";
  }
  if (command == "evaluate") {
    return "condensa evaluate — compare an original and an anonymized CSV\n"
           "\n"
           "  --original=FILE    raw records CSV (required)\n"
           "  --anonymized=FILE  release CSV (required)\n"
           "  --task=classification|regression|none  label handling\n"
           "  --label-column=N   0-based label column (-1 = last)\n"
           "  --header           first CSV row is a header\n";
  }
  if (command == "stats") {
    return "condensa stats — synthetic end-to-end run + metrics dump\n"
           "\n"
           "  --records=N        synthetic records (default 2000, min 10)\n"
           "  --dim=N            record dimension (default 8)\n"
           "  --k=N              indistinguishability level (default 10)\n"
           "  --seed=N           RNG seed (default 42)\n"
           "  --format=prometheus|json  registry dump format\n"
           "  --trace-out=FILE   also record a Perfetto trace\n";
  }
  return nullptr;
}

bool ParsePolicy(const std::string& text,
                 condensa::shard::ShardPolicy* policy) {
  if (text == "hash") {
    *policy = condensa::shard::ShardPolicy::kHash;
  } else if (text == "round-robin") {
    *policy = condensa::shard::ShardPolicy::kRoundRobin;
  } else {
    return false;
  }
  return true;
}

// Resolves a --backend flag value against the global registry. On an
// unknown id, prints the NotFound message (which lists every registered
// backend) and returns nullptr — callers exit 2, the usage-error code.
const condensa::backend::AnonymizationBackend* ResolveBackendFlag(
    const std::string& id) {
  condensa::StatusOr<const condensa::backend::AnonymizationBackend*>
      resolved = condensa::backend::Registry::Global().Get(id);
  if (!resolved.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 resolved.status().message().c_str());
    return nullptr;
  }
  return *resolved;
}

bool ParseTask(const std::string& text, condensa::data::TaskType* task) {
  if (text == "classification") {
    *task = condensa::data::TaskType::kClassification;
  } else if (text == "regression") {
    *task = condensa::data::TaskType::kRegression;
  } else if (text == "none") {
    *task = condensa::data::TaskType::kUnlabeled;
  } else {
    return false;
  }
  return true;
}

condensa::StatusOr<condensa::data::Dataset> LoadCsv(
    const std::string& path, condensa::data::TaskType task, bool header,
    int label_column) {
  condensa::data::CsvReadOptions options;
  options.task = task;
  options.has_header = header;
  options.label_column = label_column;
  CONDENSA_ASSIGN_OR_RETURN(condensa::data::CsvReadResult result,
                            condensa::data::ReadCsv(path, options));
  return std::move(result.dataset);
}

int RunCondense(Flags& flags) {
  const std::string input = flags.Get("input", "");
  const std::string output = flags.Get("output", "");
  const std::string mode_name = flags.Get("mode", "static");
  const std::string task_name = flags.Get("task", "classification");
  const std::string backend_id = flags.Get(
      "backend", condensa::core::CondensedGroupSet::kDefaultBackendId);
  const std::string save_groups = flags.Get("save-groups", "");
  const bool header = flags.Get("header", "false") == "true";

  int k = 10, seed = 42, label_column = -1;
  if (!ParseInt(flags.Get("k", "10"), &k) || k < 1 ||
      !ParseInt(flags.Get("seed", "42"), &seed) ||
      !ParseInt(flags.Get("label-column", "-1"), &label_column)) {
    std::fprintf(stderr, "error: bad numeric flag value\n");
    return 2;
  }
  if (int code = RejectUnknownFlags(flags, "condense")) return code;
  condensa::data::TaskType task;
  if (!ParseTask(task_name, &task)) {
    std::fprintf(stderr, "error: unknown --task=%s\n", task_name.c_str());
    return 2;
  }
  if (input.empty() || output.empty()) {
    std::fprintf(stderr, "error: --input and --output are required\n");
    return 2;
  }
  condensa::core::CondensationMode mode;
  if (mode_name == "static") {
    mode = condensa::core::CondensationMode::kStatic;
  } else if (mode_name == "dynamic") {
    mode = condensa::core::CondensationMode::kDynamic;
  } else {
    std::fprintf(stderr, "error: unknown --mode=%s\n", mode_name.c_str());
    return 2;
  }
  // Fail an unknown backend before any file I/O: a usage error, exit 2.
  if (ResolveBackendFlag(backend_id) == nullptr) return 2;

  auto dataset = LoadCsv(input, task, header, label_column);
  if (!dataset.ok()) {
    std::fprintf(stderr, "error reading %s: %s\n", input.c_str(),
                 dataset.status().ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "loaded %zu records x %zu attributes from %s\n",
               dataset->size(), dataset->dim(), input.c_str());

  condensa::Rng rng(static_cast<std::uint64_t>(seed));
  condensa::core::CondensationConfig engine_config;
  engine_config.group_size = static_cast<std::size_t>(k);
  engine_config.mode = mode;
  condensa::Status backend_status =
      condensa::backend::ApplyBackend(backend_id, &engine_config);
  if (!backend_status.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 backend_status.message().c_str());
    return 2;
  }
  condensa::core::CondensationEngine engine(engine_config);
  auto pools = engine.Condense(*dataset, rng);
  if (!pools.ok()) {
    std::fprintf(stderr, "condensation failed: %s\n",
                 pools.status().ToString().c_str());
    return 1;
  }
  if (!save_groups.empty()) {
    condensa::Status save_status =
        condensa::core::SavePools(*pools, save_groups);
    if (!save_status.ok()) {
      std::fprintf(stderr, "error saving %s: %s\n", save_groups.c_str(),
                   save_status.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "saved pool statistics to %s\n",
                 save_groups.c_str());
  }

  condensa::core::AnonymizerOptions anonymizer_options;
  anonymizer_options.group_sampler = engine_config.group_sampler;
  auto result =
      condensa::core::GenerateRelease(*pools, rng, anonymizer_options);
  if (!result.ok()) {
    std::fprintf(stderr, "release generation failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  condensa::Status write_status =
      condensa::data::WriteCsv(result->anonymized, output);
  if (!write_status.ok()) {
    std::fprintf(stderr, "error writing %s: %s\n", output.c_str(),
                 write_status.ToString().c_str());
    return 1;
  }

  std::fprintf(stderr,
               "wrote %zu anonymized records to %s\n"
               "achieved indistinguishability level: %zu\n"
               "average group size: %.2f\n",
               result->anonymized.size(), output.c_str(),
               result->AchievedIndistinguishability(),
               result->AverageGroupSize());
  return 0;
}

// Regenerates a fresh release from saved pool statistics — no raw data
// needed ever again.
int RunGenerate(Flags& flags) {
  const std::string groups_path = flags.Get("groups", "");
  const std::string output = flags.Get("output", "");
  int seed = 42;
  if (!ParseInt(flags.Get("seed", "42"), &seed)) {
    std::fprintf(stderr, "error: bad --seed\n");
    return 2;
  }
  if (int code = RejectUnknownFlags(flags, "generate")) return code;
  if (groups_path.empty() || output.empty()) {
    std::fprintf(stderr, "error: --groups and --output are required\n");
    return 2;
  }

  auto pools = condensa::core::LoadPools(groups_path);
  if (!pools.ok()) {
    std::fprintf(stderr, "error reading %s: %s\n", groups_path.c_str(),
                 pools.status().ToString().c_str());
    return 1;
  }
  // The groups file records which backend built it; regenerate with
  // that backend's sampler. The default condensation stamp keeps the
  // built-in eigendecomposition sampler, byte-for-byte.
  std::string recorded_backend =
      condensa::core::CondensedGroupSet::kDefaultBackendId;
  if (!pools->pools.empty()) {
    recorded_backend = pools->pools.front().groups.backend_id();
  }
  condensa::StatusOr<const condensa::backend::AnonymizationBackend*>
      resolved = condensa::backend::Registry::Global().Get(recorded_backend);
  if (!resolved.ok()) {
    std::fprintf(stderr, "error: %s was written by a backend this build "
                 "cannot regenerate: %s\n",
                 groups_path.c_str(),
                 resolved.status().message().c_str());
    return 1;
  }
  condensa::core::AnonymizerOptions anonymizer_options;
  anonymizer_options.group_sampler = (*resolved)->SamplerHook();
  condensa::Rng rng(static_cast<std::uint64_t>(seed));
  auto result =
      condensa::core::GenerateRelease(*pools, rng, anonymizer_options);
  if (!result.ok()) {
    std::fprintf(stderr, "release generation failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  condensa::Status write_status =
      condensa::data::WriteCsv(result->anonymized, output);
  if (!write_status.ok()) {
    std::fprintf(stderr, "error writing %s: %s\n", output.c_str(),
                 write_status.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr,
               "regenerated %zu anonymized records to %s "
               "(indistinguishability level %zu)\n",
               result->anonymized.size(), output.c_str(),
               result->AchievedIndistinguishability());
  return 0;
}

void PrintGroupSummary(const condensa::core::CondensedGroupSet& groups,
                       const char* indent);

// Streams a CSV into a crash-safe checkpointed condenser. Re-running with
// the same --checkpoint-dir resumes from the recovered state, so a stream
// can be fed in daily batches (or restarted after a crash) without losing
// acknowledged records.
int RunIngest(Flags& flags) {
  const std::string input = flags.Get("input", "");
  const std::string dir = flags.Get("checkpoint-dir", "");
  const std::string backend_id = flags.Get(
      "backend", condensa::core::CondensedGroupSet::kDefaultBackendId);
  const bool header = flags.Get("header", "false") == "true";
  const bool no_sync = flags.Get("no-sync", "false") == "true";
  int k = 10, seed = 42, snapshot_every = 1024;
  if (!ParseInt(flags.Get("k", "10"), &k) || k < 1 ||
      !ParseInt(flags.Get("seed", "42"), &seed) ||
      !ParseInt(flags.Get("snapshot-every", "1024"), &snapshot_every) ||
      snapshot_every < 1) {
    std::fprintf(stderr, "error: bad numeric flag value\n");
    return 2;
  }
  if (int code = RejectUnknownFlags(flags, "ingest")) return code;
  if (input.empty() || dir.empty()) {
    std::fprintf(stderr, "error: --input and --checkpoint-dir are required\n");
    return 2;
  }
  const condensa::backend::AnonymizationBackend* anonymization_backend =
      ResolveBackendFlag(backend_id);
  if (anonymization_backend == nullptr) return 2;

  auto dataset =
      LoadCsv(input, condensa::data::TaskType::kUnlabeled, header, -1);
  if (!dataset.ok()) {
    std::fprintf(stderr, "error reading %s: %s\n", input.c_str(),
                 dataset.status().ToString().c_str());
    return 1;
  }

  condensa::core::DynamicCondenserOptions options;
  options.group_size = static_cast<std::size_t>(k);
  options.backend = anonymization_backend->info().id;
  options.backend_version = anonymization_backend->info().version;
  options.bootstrap_construction =
      anonymization_backend->ConstructionHook();
  const condensa::core::DurabilityOptions durability{
      .snapshot_interval = static_cast<std::size_t>(snapshot_every),
      .sync_every_append = !no_sync};
  auto durable = condensa::core::DurableCondenser::Open(
      dataset->dim(), options, durability, dir);
  if (!durable.ok()) {
    std::fprintf(stderr, "error opening %s: %s\n", dir.c_str(),
                 durable.status().ToString().c_str());
    return 1;
  }

  const std::size_t already_seen = durable->records_seen();
  if (already_seen > 0) {
    std::fprintf(stderr, "resuming from %s: %zu records already ingested\n",
                 dir.c_str(), already_seen);
  }
  condensa::Rng rng(static_cast<std::uint64_t>(seed));
  if (already_seen == 0 && dataset->size() >= static_cast<std::size_t>(k)) {
    // Fresh state: bootstrap the whole batch statically (paper's initial
    // database D); later batches stream one record at a time.
    condensa::Status status = durable->Bootstrap(dataset->records(), rng);
    if (!status.ok()) {
      std::fprintf(stderr, "ingest failed: %s\n", status.ToString().c_str());
      return 1;
    }
  } else {
    for (const condensa::linalg::Vector& record : dataset->records()) {
      condensa::Status status = durable->Insert(record);
      if (!status.ok()) {
        std::fprintf(stderr, "ingest failed after %zu records: %s\n",
                     durable->records_seen() - already_seen,
                     status.ToString().c_str());
        return 1;
      }
    }
  }
  condensa::Status final_status = durable->Checkpoint();
  if (!final_status.ok()) {
    std::fprintf(stderr, "final checkpoint failed: %s\n",
                 final_status.ToString().c_str());
    return 1;
  }

  std::fprintf(stderr,
               "ingested %zu records from %s (total %zu, snapshot %zu)\n",
               durable->records_seen() - already_seen, input.c_str(),
               durable->records_seen(), durable->snapshot_sequence());
  PrintGroupSummary(durable->groups(), "");
  return 0;
}

// Restores a condenser from its checkpoint directory (newest valid
// snapshot plus journal replay) and reports what survived.
int RunRecover(Flags& flags) {
  const std::string dir = flags.Get("checkpoint-dir", "");
  const std::string save_groups = flags.Get("save-groups", "");
  const std::string backend_id = flags.Get(
      "backend", condensa::core::CondensedGroupSet::kDefaultBackendId);
  int k = 10;
  if (!ParseInt(flags.Get("k", "10"), &k) || k < 1) {
    std::fprintf(stderr, "error: bad --k\n");
    return 2;
  }
  if (int code = RejectUnknownFlags(flags, "recover")) return code;
  if (dir.empty()) {
    std::fprintf(stderr, "error: --checkpoint-dir is required\n");
    return 2;
  }
  const condensa::backend::AnonymizationBackend* anonymization_backend =
      ResolveBackendFlag(backend_id);
  if (anonymization_backend == nullptr) return 2;

  condensa::core::DynamicCondenserOptions options;
  options.group_size = static_cast<std::size_t>(k);
  options.backend = anonymization_backend->info().id;
  options.backend_version = anonymization_backend->info().version;
  options.bootstrap_construction =
      anonymization_backend->ConstructionHook();
  auto durable = condensa::core::DurableCondenser::Recover(
      dir, options, condensa::core::DurabilityOptions{});
  if (!durable.ok()) {
    std::fprintf(stderr, "recovery from %s failed: %s\n", dir.c_str(),
                 durable.status().ToString().c_str());
    return 1;
  }

  std::printf("checkpoint directory  : %s\n", dir.c_str());
  std::printf("snapshot sequence     : %zu\n", durable->snapshot_sequence());
  std::printf("journal records replayed: %zu\n",
              durable->appends_since_snapshot());
  std::printf("records ingested      : %zu\n", durable->records_seen());
  PrintGroupSummary(durable->groups(), "");

  if (!save_groups.empty()) {
    condensa::Status status =
        condensa::core::SaveGroupSet(durable->groups(), save_groups);
    if (!status.ok()) {
      std::fprintf(stderr, "error saving %s: %s\n", save_groups.c_str(),
                   status.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "saved group statistics to %s\n",
                 save_groups.c_str());
  }
  return 0;
}

void PrintGroupSummary(const condensa::core::CondensedGroupSet& groups,
                       const char* indent) {
  condensa::core::PrivacySummary summary = groups.Summary();
  std::printf("%sdimension             : %zu\n", indent, groups.dim());
  std::printf("%sconfigured k          : %zu\n", indent,
              groups.indistinguishability_level());
  std::printf("%sgroups                : %zu\n", indent, summary.num_groups);
  std::printf("%srecords represented   : %zu\n", indent,
              summary.total_records);
  std::printf("%sgroup size min/avg/max: %zu / %.2f / %zu\n", indent,
              summary.min_group_size, summary.average_group_size,
              summary.max_group_size);
}

// Runs the supervised streaming runtime (docs/resilience.md): records flow
// through the bounded queue into the worker, which validates, retries with
// backoff, quarantines poison, and degrades to the durable spool when the
// circuit breaker opens — all on top of the same crash-safe checkpoint
// directory `ingest` uses. Records come from a CSV (--input) or from a
// synthetic two-blob Gaussian stream (--records/--dim). With --chaos=P the
// probabilistic failpoints fire during ingestion (journal appends fail,
// fsyncs stall, the condenser throws internal errors) and are healed before
// Finish so the spool drains; the printed ledger shows what the runtime
// absorbed. Exits nonzero if the ledger does not balance.
int RunServeStream(Flags& flags) {
  const std::string dir = flags.Get("checkpoint-dir", "");
  const std::string input = flags.Get("input", "");
  const std::string backpressure_name = flags.Get("backpressure", "block");
  const std::string backend_id = flags.Get(
      "backend", condensa::core::CondensedGroupSet::kDefaultBackendId);
  const std::string policy_name = flags.Get("policy", "hash");
  const std::string format = flags.Get("format", "");
  const bool header = flags.Get("header", "false") == "true";
  const bool no_sync = flags.Get("no-sync", "false") == "true";
  int records = 5000, dim = 4, k = 10, seed = 42, shards = 1;
  int snapshot_every = 256, queue_capacity = 1024, batch_size = 32;
  int retry_attempts = 4, retry_budget = 10000;
  double batch_deadline_ms = 1000.0, chaos = 0.0;
  if (!ParseInt(flags.Get("records", "5000"), &records) || records < 1 ||
      !ParseInt(flags.Get("dim", "4"), &dim) || dim < 1 ||
      !ParseInt(flags.Get("k", "10"), &k) ||
      !ParseInt(flags.Get("seed", "42"), &seed) ||
      !ParseInt(flags.Get("shards", "1"), &shards) || shards < 1 ||
      !ParseInt(flags.Get("snapshot-every", "256"), &snapshot_every) ||
      !ParseInt(flags.Get("queue-capacity", "1024"), &queue_capacity) ||
      !ParseInt(flags.Get("batch-size", "32"), &batch_size) ||
      !ParseInt(flags.Get("retry-attempts", "4"), &retry_attempts) ||
      retry_attempts < 1 ||
      !ParseInt(flags.Get("retry-budget", "10000"), &retry_budget) ||
      retry_budget < 0 ||
      !ParseDouble(flags.Get("batch-deadline-ms", "1000"),
                   &batch_deadline_ms) ||
      !ParseDouble(flags.Get("chaos", "0"), &chaos) || chaos < 0.0 ||
      chaos >= 1.0) {
    std::fprintf(stderr, "error: bad numeric flag value\n");
    return 2;
  }
  if (int code = RejectUnknownFlags(flags, "serve-stream")) return code;
  condensa::shard::ShardPolicy policy;
  if (!ParsePolicy(policy_name, &policy)) {
    std::fprintf(stderr, "error: unknown --policy=%s\n", policy_name.c_str());
    return 2;
  }
  if (dir.empty()) {
    std::fprintf(stderr, "error: --checkpoint-dir is required\n");
    return 2;
  }
  const condensa::backend::AnonymizationBackend* anonymization_backend =
      ResolveBackendFlag(backend_id);
  if (anonymization_backend == nullptr) return 2;
  condensa::runtime::BackpressurePolicy backpressure;
  if (backpressure_name == "block") {
    backpressure = condensa::runtime::BackpressurePolicy::kBlock;
  } else if (backpressure_name == "drop-oldest") {
    backpressure = condensa::runtime::BackpressurePolicy::kDropOldest;
  } else if (backpressure_name == "reject") {
    backpressure = condensa::runtime::BackpressurePolicy::kReject;
  } else {
    std::fprintf(stderr, "error: unknown --backpressure=%s\n",
                 backpressure_name.c_str());
    return 2;
  }
  if (!format.empty() && format != "prometheus" && format != "json") {
    std::fprintf(stderr, "error: unknown --format=%s\n", format.c_str());
    return 2;
  }

  std::vector<condensa::linalg::Vector> stream;
  if (!input.empty()) {
    auto dataset =
        LoadCsv(input, condensa::data::TaskType::kUnlabeled, header, -1);
    if (!dataset.ok()) {
      std::fprintf(stderr, "error reading %s: %s\n", input.c_str(),
                   dataset.status().ToString().c_str());
      return 1;
    }
    stream = dataset->records();
  } else {
    condensa::Rng data_rng(static_cast<std::uint64_t>(seed) + 1);
    stream.reserve(static_cast<std::size_t>(records));
    for (int i = 0; i < records; ++i) {
      condensa::linalg::Vector record(static_cast<std::size_t>(dim));
      for (int d = 0; d < dim; ++d) {
        record[static_cast<std::size_t>(d)] =
            data_rng.Gaussian(i % 2 == 0 ? -3.0 : 3.0, 1.0);
      }
      stream.push_back(record);
    }
  }

  if (shards > 1) {
    // Scatter/gather mode: N independent durable pipelines, each
    // checkpointing under <dir>/shard-<i>, gathered into one release by
    // exact moment merge (docs/scaling.md). Backpressure/retry/deadline
    // tuning flags apply to single-pipeline mode; shards use defaults.
    condensa::shard::ShardedStreamConfig config;
    config.num_shards = static_cast<std::size_t>(shards);
    config.policy = policy;
    config.dim = stream.empty() ? static_cast<std::size_t>(dim)
                                : stream.front().dim();
    config.group_size = static_cast<std::size_t>(k);
    config.checkpoint_root = dir;
    config.snapshot_interval = static_cast<std::size_t>(snapshot_every);
    config.sync_every_append = !no_sync;
    config.queue_capacity = static_cast<std::size_t>(queue_capacity);
    config.batch_size = static_cast<std::size_t>(batch_size);
    config.seed = static_cast<std::uint64_t>(seed);
    config.backend = anonymization_backend->info().id;

    auto service = condensa::shard::ShardedStreamService::Start(config);
    if (!service.ok()) {
      std::fprintf(stderr, "error starting sharded service in %s: %s\n",
                   dir.c_str(), service.status().ToString().c_str());
      return service.status().code() ==
                     condensa::StatusCode::kInvalidArgument
                 ? 2
                 : 1;
    }

    if (chaos > 0.0) {
      const std::uint64_t chaos_seed = static_cast<std::uint64_t>(seed);
      condensa::FailPoint::Arm(
          "io.append", {.code = condensa::StatusCode::kUnavailable,
                        .probability = chaos,
                        .seed = chaos_seed + 1});
      condensa::FailPoint::Arm(
          "io.sync", {.mode = condensa::FailPointMode::kLatency,
                      .probability = chaos,
                      .seed = chaos_seed + 2,
                      .latency_ms = 1.0});
      condensa::FailPoint::Arm(
          "dynamic.insert", {.code = condensa::StatusCode::kInternal,
                             .probability = chaos / 5.0,
                             .seed = chaos_seed + 3});
      std::fprintf(
          stderr,
          "chaos armed: io.append/io.sync/dynamic.insert at p=%.3f\n",
          chaos);
    }

    for (const condensa::linalg::Vector& record : stream) {
      condensa::Status status = (*service)->Submit(record);
      if (!status.ok()) {
        std::fprintf(stderr, "submit failed: %s\n",
                     status.ToString().c_str());
        return 1;
      }
    }
    if (chaos > 0.0) {
      condensa::FailPoint::Reset();
    }

    auto result = (*service)->Finish();
    if (!result.ok()) {
      std::fprintf(stderr, "finish failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    for (std::size_t shard = 0; shard < result->shard_stats.size();
         ++shard) {
      std::printf("shard %zu ledger: %s\n", shard,
                  result->shard_stats[shard].ToString().c_str());
    }
    std::printf("gather: %s\n", result->gather.ToString().c_str());
    PrintGroupSummary(result->groups, "");
    if (!format.empty()) {
      condensa::obs::MetricsRegistry& registry =
          condensa::obs::DefaultRegistry();
      std::fputs(format == "json" ? registry.DumpJson().c_str()
                                  : registry.DumpPrometheusText().c_str(),
                 stdout);
    }
    if (!result->Balanced()) {
      std::fprintf(stderr,
                   "error: a shard ledger does not balance — records lost\n");
      return 1;
    }
    return 0;
  }

  condensa::runtime::StreamPipelineConfig config;
  config.dim = stream.empty() ? static_cast<std::size_t>(dim)
                              : stream.front().dim();
  config.group_size = static_cast<std::size_t>(k);
  config.checkpoint_dir = dir;
  config.snapshot_interval = static_cast<std::size_t>(snapshot_every);
  config.sync_every_append = !no_sync;
  config.queue_capacity = static_cast<std::size_t>(queue_capacity);
  config.backpressure = backpressure;
  config.batch_size = static_cast<std::size_t>(batch_size);
  config.batch_deadline_ms = batch_deadline_ms;
  config.retry.max_attempts = static_cast<std::size_t>(retry_attempts);
  config.retry_budget = static_cast<std::size_t>(retry_budget);
  config.seed = static_cast<std::uint64_t>(seed);
  config.backend = anonymization_backend->info().id;
  config.backend_version = anonymization_backend->info().version;

  auto pipeline = condensa::runtime::StreamPipeline::Start(config);
  if (!pipeline.ok()) {
    std::fprintf(stderr, "error starting pipeline in %s: %s\n", dir.c_str(),
                 pipeline.status().ToString().c_str());
    return pipeline.status().code() ==
                   condensa::StatusCode::kInvalidArgument
               ? 2
               : 1;
  }

  if (chaos > 0.0) {
    // The disk starts lying only after startup (initial snapshot and the
    // quarantine header are deterministic), and heals before Finish so
    // the spool can drain — the same discipline as the chaos soak test.
    const std::uint64_t chaos_seed = static_cast<std::uint64_t>(seed);
    condensa::FailPoint::Arm(
        "io.append", {.code = condensa::StatusCode::kUnavailable,
                      .probability = chaos,
                      .seed = chaos_seed + 1});
    condensa::FailPoint::Arm(
        "io.sync", {.mode = condensa::FailPointMode::kLatency,
                    .probability = chaos,
                    .seed = chaos_seed + 2,
                    .latency_ms = 1.0});
    condensa::FailPoint::Arm(
        "dynamic.insert", {.code = condensa::StatusCode::kInternal,
                           .probability = chaos / 5.0,
                           .seed = chaos_seed + 3});
    std::fprintf(stderr,
                 "chaos armed: io.append/io.sync/dynamic.insert at p=%.3f\n",
                 chaos);
  }

  for (const condensa::linalg::Vector& record : stream) {
    condensa::Status status = (*pipeline)->Submit(record);
    if (!status.ok()) {
      // kReject backpressure surfaces as kResourceExhausted; the ledger
      // counts the refusal and the producer moves on. Anything else
      // (e.g. Submit after Finish) is a programming error.
      if (status.code() != condensa::StatusCode::kResourceExhausted) {
        std::fprintf(stderr, "submit failed: %s\n",
                     status.ToString().c_str());
        return 1;
      }
    }
  }

  if (chaos > 0.0) {
    condensa::FailPoint::Reset();
  }
  auto stats = (*pipeline)->Finish();
  if (!stats.ok()) {
    std::fprintf(stderr, "finish failed: %s\n",
                 stats.status().ToString().c_str());
    return 1;
  }

  std::printf("ledger: %s\n", stats->ToString().c_str());
  PrintGroupSummary((*pipeline)->groups(), "");
  if (!format.empty()) {
    condensa::obs::MetricsRegistry& registry =
        condensa::obs::DefaultRegistry();
    std::fputs(format == "json" ? registry.DumpJson().c_str()
                                : registry.DumpPrometheusText().c_str(),
               stdout);
  }
  if (!stats->Balanced()) {
    std::fprintf(stderr, "error: ledger does not balance — records lost\n");
    return 1;
  }
  return 0;
}

// Batch scatter/gather condensation (docs/scaling.md): route the records
// across N shard workers, condense each partition independently, then
// exact-merge the shard-local aggregates into one global structure.
int RunShard(Flags& flags) {
  const std::string input = flags.Get("input", "");
  const std::string policy_name = flags.Get("policy", "hash");
  const std::string mode_name = flags.Get("mode", "batch");
  const std::string backend_id = flags.Get(
      "backend", condensa::core::CondensedGroupSet::kDefaultBackendId);
  const std::string checkpoint_root = flags.Get("checkpoint-root", "");
  const std::string save_groups = flags.Get("save-groups", "");
  const std::string output = flags.Get("output", "");
  const std::string format = flags.Get("format", "");
  const bool header = flags.Get("header", "false") == "true";
  const bool no_sync = flags.Get("no-sync", "false") == "true";
  int records = 10000, dim = 4, shards = 2, k = 10, seed = 42;
  int snapshot_every = 1024, threads = 0;
  if (!ParseInt(flags.Get("records", "10000"), &records) || records < 1 ||
      !ParseInt(flags.Get("dim", "4"), &dim) || dim < 1 ||
      !ParseInt(flags.Get("shards", "2"), &shards) || shards < 1 ||
      !ParseInt(flags.Get("k", "10"), &k) || k < 1 ||
      !ParseInt(flags.Get("seed", "42"), &seed) ||
      !ParseInt(flags.Get("snapshot-every", "1024"), &snapshot_every) ||
      snapshot_every < 1 ||
      !ParseInt(flags.Get("threads", "0"), &threads) || threads < 0) {
    std::fprintf(stderr, "error: bad numeric flag value\n");
    return 2;
  }
  if (int code = RejectUnknownFlags(flags, "shard")) return code;
  condensa::shard::ShardPolicy policy;
  if (!ParsePolicy(policy_name, &policy)) {
    std::fprintf(stderr, "error: unknown --policy=%s\n", policy_name.c_str());
    return 2;
  }
  condensa::shard::WorkerMode mode;
  if (mode_name == "batch") {
    mode = condensa::shard::WorkerMode::kStaticBatch;
  } else if (mode_name == "stream") {
    mode = condensa::shard::WorkerMode::kDurableStream;
  } else {
    std::fprintf(stderr, "error: unknown --mode=%s\n", mode_name.c_str());
    return 2;
  }
  if (mode == condensa::shard::WorkerMode::kDurableStream &&
      checkpoint_root.empty()) {
    std::fprintf(stderr,
                 "error: --checkpoint-root is required with --mode=stream\n");
    return 2;
  }
  const condensa::backend::AnonymizationBackend* anonymization_backend =
      ResolveBackendFlag(backend_id);
  if (anonymization_backend == nullptr) return 2;
  if (!format.empty() && format != "prometheus" && format != "json") {
    std::fprintf(stderr, "error: unknown --format=%s\n", format.c_str());
    return 2;
  }

  std::vector<condensa::linalg::Vector> data;
  if (!input.empty()) {
    auto dataset =
        LoadCsv(input, condensa::data::TaskType::kUnlabeled, header, -1);
    if (!dataset.ok()) {
      std::fprintf(stderr, "error reading %s: %s\n", input.c_str(),
                   dataset.status().ToString().c_str());
      return 1;
    }
    data = dataset->records();
  } else {
    condensa::Rng data_rng(static_cast<std::uint64_t>(seed) + 1);
    data.reserve(static_cast<std::size_t>(records));
    for (int i = 0; i < records; ++i) {
      condensa::linalg::Vector record(static_cast<std::size_t>(dim));
      for (int d = 0; d < dim; ++d) {
        record[static_cast<std::size_t>(d)] =
            data_rng.Gaussian(i % 2 == 0 ? -3.0 : 3.0, 1.0);
      }
      data.push_back(record);
    }
  }

  condensa::shard::ShardedCondenserConfig config;
  config.num_shards = static_cast<std::size_t>(shards);
  config.policy = policy;
  config.mode = mode;
  config.group_size = static_cast<std::size_t>(k);
  config.checkpoint_root = checkpoint_root;
  config.snapshot_interval = static_cast<std::size_t>(snapshot_every);
  config.sync_every_append = !no_sync;
  config.num_threads = static_cast<std::size_t>(threads);
  config.seed = static_cast<std::uint64_t>(seed);
  config.backend = anonymization_backend->info().id;

  condensa::Rng rng(static_cast<std::uint64_t>(seed));
  auto result =
      condensa::shard::ShardedCondenser(config).Condense(data, rng);
  if (!result.ok()) {
    std::fprintf(stderr, "sharded condensation failed: %s\n",
                 result.status().ToString().c_str());
    return result.status().code() == condensa::StatusCode::kInvalidArgument
               ? 2
               : 1;
  }

  for (const condensa::shard::ShardReport& report : result->shards) {
    std::printf("shard %zu: records=%zu groups=%zu min_group_size=%zu\n",
                report.shard_id, report.records, report.groups,
                report.min_group_size);
  }
  std::printf("gather: %s\n", result->gather.ToString().c_str());
  PrintGroupSummary(result->groups, "");

  if (!save_groups.empty()) {
    condensa::Status save_status =
        condensa::core::SaveGroupSet(result->groups, save_groups);
    if (!save_status.ok()) {
      std::fprintf(stderr, "error saving %s: %s\n", save_groups.c_str(),
                   save_status.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "saved group statistics to %s\n",
                 save_groups.c_str());
  }
  if (!output.empty()) {
    condensa::core::AnonymizerOptions anonymizer_options;
    anonymizer_options.group_sampler = anonymization_backend->SamplerHook();
    auto anonymized = condensa::core::Anonymizer(anonymizer_options)
                          .Generate(result->groups, rng);
    if (!anonymized.ok()) {
      std::fprintf(stderr, "release generation failed: %s\n",
                   anonymized.status().ToString().c_str());
      return 1;
    }
    condensa::data::Dataset release(result->groups.dim());
    for (condensa::linalg::Vector& record : *anonymized) {
      release.Add(std::move(record));
    }
    condensa::Status write_status = condensa::data::WriteCsv(release, output);
    if (!write_status.ok()) {
      std::fprintf(stderr, "error writing %s: %s\n", output.c_str(),
                   write_status.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote %zu anonymized records to %s\n",
                 release.size(), output.c_str());
  }
  if (!format.empty()) {
    condensa::obs::MetricsRegistry& registry =
        condensa::obs::DefaultRegistry();
    std::fputs(format == "json" ? registry.DumpJson().c_str()
                                : registry.DumpPrometheusText().c_str(),
               stdout);
  }
  return 0;
}

// Runs one standalone fabric worker until a coordinator finishes it.
int RunWorker(Flags& flags) {
  const std::string checkpoint_root = flags.Get("checkpoint-root", "");
  const std::string host = flags.Get("host", "127.0.0.1");
  const std::string worker_id = flags.Get("worker-id", "");
  int port = 0;
  double idle_timeout_ms = 30000.0, flush_timeout_ms = 30000.0;
  if (!ParseInt(flags.Get("port", "0"), &port) || port < 0 ||
      port > 65535 ||
      !ParseDouble(flags.Get("idle-timeout-ms", "30000"),
                   &idle_timeout_ms) ||
      idle_timeout_ms <= 0 ||
      !ParseDouble(flags.Get("flush-timeout-ms", "30000"),
                   &flush_timeout_ms) ||
      flush_timeout_ms <= 0) {
    std::fprintf(stderr, "error: bad numeric flag value\n");
    return 2;
  }
  if (int code = RejectUnknownFlags(flags, "worker")) return code;
  if (checkpoint_root.empty()) {
    std::fprintf(stderr, "error: --checkpoint-root is required\n");
    return 2;
  }

  condensa::shard::WorkerServerConfig config;
  config.host = host;
  config.port = static_cast<std::uint16_t>(port);
  config.checkpoint_root = checkpoint_root;
  config.worker_id = worker_id;
  config.idle_timeout_ms = idle_timeout_ms;
  config.flush_timeout_ms = flush_timeout_ms;
  auto server = condensa::shard::WorkerServer::Create(std::move(config));
  if (!server.ok()) {
    std::fprintf(stderr, "error starting worker: %s\n",
                 server.status().ToString().c_str());
    return server.status().code() ==
                   condensa::StatusCode::kInvalidArgument
               ? 2
               : 1;
  }
  std::printf("listening on %u\n", (*server)->port());
  std::fflush(stdout);
  condensa::Status run = (*server)->Run();
  if (!run.ok()) {
    std::fprintf(stderr, "worker failed: %s\n", run.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "worker finished cleanly\n");
  return 0;
}

// Splits "host:port,host:port" into fabric endpoints.
bool ParseWorkerList(const std::string& text,
                     std::vector<condensa::shard::FabricEndpoint>* out) {
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t comma = text.find(',', start);
    if (comma == std::string::npos) comma = text.size();
    const std::string entry = text.substr(start, comma - start);
    const std::size_t colon = entry.rfind(':');
    if (entry.empty() || colon == std::string::npos || colon == 0) {
      return false;
    }
    int port = 0;
    if (!ParseInt(entry.substr(colon + 1), &port) || port < 1 ||
        port > 65535) {
      return false;
    }
    out->push_back({entry.substr(0, colon),
                    static_cast<std::uint16_t>(port)});
    start = comma + 1;
  }
  return !out->empty();
}

// Drives a fleet of fabric workers: scatter, supervise, gather.
int RunFabric(Flags& flags) {
  const std::string workers_text = flags.Get("workers", "");
  const std::string input = flags.Get("input", "");
  const std::string backend_id = flags.Get(
      "backend", condensa::core::CondensedGroupSet::kDefaultBackendId);
  const std::string policy_name = flags.Get("policy", "hash");
  const std::string fallback_root = flags.Get("local-fallback-root", "");
  const std::string save_groups = flags.Get("save-groups", "");
  const std::string output = flags.Get("output", "");
  const std::string format = flags.Get("format", "");
  const bool header = flags.Get("header", "false") == "true";
  int records = 5000, dim = 4, k = 10, seed = 42, wire_batch = 64;
  double heartbeat_interval_ms = 200.0, heartbeat_timeout_ms = 1500.0;
  if (!ParseInt(flags.Get("records", "5000"), &records) || records < 1 ||
      !ParseInt(flags.Get("dim", "4"), &dim) || dim < 1 ||
      !ParseInt(flags.Get("k", "10"), &k) || k < 2 ||
      !ParseInt(flags.Get("seed", "42"), &seed) ||
      !ParseInt(flags.Get("wire-batch", "64"), &wire_batch) ||
      wire_batch < 1 ||
      !ParseDouble(flags.Get("heartbeat-interval-ms", "200"),
                   &heartbeat_interval_ms) ||
      heartbeat_interval_ms <= 0 ||
      !ParseDouble(flags.Get("heartbeat-timeout-ms", "1500"),
                   &heartbeat_timeout_ms) ||
      heartbeat_timeout_ms < heartbeat_interval_ms) {
    std::fprintf(stderr, "error: bad numeric flag value\n");
    return 2;
  }
  if (int code = RejectUnknownFlags(flags, "fabric")) return code;
  condensa::shard::ShardPolicy policy;
  if (!ParsePolicy(policy_name, &policy)) {
    std::fprintf(stderr, "error: unknown --policy=%s\n", policy_name.c_str());
    return 2;
  }
  if (!format.empty() && format != "prometheus" && format != "json") {
    std::fprintf(stderr, "error: unknown --format=%s\n", format.c_str());
    return 2;
  }
  std::vector<condensa::shard::FabricEndpoint> endpoints;
  if (workers_text.empty() || !ParseWorkerList(workers_text, &endpoints)) {
    std::fprintf(stderr,
                 "error: --workers=HOST:PORT[,HOST:PORT...] is required\n");
    return 2;
  }
  const condensa::backend::AnonymizationBackend* anonymization_backend =
      ResolveBackendFlag(backend_id);
  if (anonymization_backend == nullptr) return 2;

  std::vector<condensa::linalg::Vector> stream;
  if (!input.empty()) {
    auto dataset =
        LoadCsv(input, condensa::data::TaskType::kUnlabeled, header, -1);
    if (!dataset.ok()) {
      std::fprintf(stderr, "error reading %s: %s\n", input.c_str(),
                   dataset.status().ToString().c_str());
      return 1;
    }
    stream = dataset->records();
  } else {
    condensa::Rng data_rng(static_cast<std::uint64_t>(seed) + 1);
    stream.reserve(static_cast<std::size_t>(records));
    for (int i = 0; i < records; ++i) {
      condensa::linalg::Vector record(static_cast<std::size_t>(dim));
      for (int d = 0; d < dim; ++d) {
        record[static_cast<std::size_t>(d)] =
            data_rng.Gaussian(i % 2 == 0 ? -3.0 : 3.0, 1.0);
      }
      stream.push_back(record);
    }
  }

  condensa::shard::FabricConfig config;
  config.workers = std::move(endpoints);
  config.dim = stream.empty() ? static_cast<std::size_t>(dim)
                              : stream.front().dim();
  config.group_size = static_cast<std::size_t>(k);
  config.policy = policy;
  config.seed = static_cast<std::uint64_t>(seed);
  config.wire_batch = static_cast<std::size_t>(wire_batch);
  config.heartbeat_interval_ms = heartbeat_interval_ms;
  config.heartbeat_timeout_ms = heartbeat_timeout_ms;
  config.local_fallback_root = fallback_root;
  config.backend = anonymization_backend->info().id;

  auto service = condensa::shard::FabricService::Start(std::move(config));
  if (!service.ok()) {
    std::fprintf(stderr, "error starting fabric: %s\n",
                 service.status().ToString().c_str());
    return service.status().code() ==
                   condensa::StatusCode::kInvalidArgument
               ? 2
               : 1;
  }
  for (const condensa::linalg::Vector& record : stream) {
    condensa::Status status = (*service)->Submit(record);
    if (!status.ok()) {
      std::fprintf(stderr, "submit failed: %s\n", status.ToString().c_str());
      return 1;
    }
  }
  auto result = (*service)->Finish();
  if (!result.ok()) {
    std::fprintf(stderr, "finish failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  for (std::size_t shard = 0; shard < result->shard_stats.size(); ++shard) {
    std::printf("shard %zu ledger: %s\n", shard,
                result->shard_stats[shard].ToString().c_str());
  }
  std::printf("fabric: %s\n", result->report.ToString().c_str());
  std::printf("gather: %s\n", result->gather.ToString().c_str());
  PrintGroupSummary(result->groups, "");

  if (!save_groups.empty()) {
    condensa::Status save_status =
        condensa::core::SaveGroupSet(result->groups, save_groups);
    if (!save_status.ok()) {
      std::fprintf(stderr, "error saving %s: %s\n", save_groups.c_str(),
                   save_status.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "saved group statistics to %s\n",
                 save_groups.c_str());
  }
  if (!output.empty()) {
    condensa::Rng rng(static_cast<std::uint64_t>(seed));
    condensa::core::AnonymizerOptions anonymizer_options;
    anonymizer_options.group_sampler = anonymization_backend->SamplerHook();
    auto anonymized = condensa::core::Anonymizer(anonymizer_options)
                          .Generate(result->groups, rng);
    if (!anonymized.ok()) {
      std::fprintf(stderr, "release generation failed: %s\n",
                   anonymized.status().ToString().c_str());
      return 1;
    }
    condensa::data::Dataset release(result->groups.dim());
    for (condensa::linalg::Vector& record : *anonymized) {
      release.Add(std::move(record));
    }
    condensa::Status write_status = condensa::data::WriteCsv(release, output);
    if (!write_status.ok()) {
      std::fprintf(stderr, "error writing %s: %s\n", output.c_str(),
                   write_status.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote %zu anonymized records to %s\n",
                 release.size(), output.c_str());
  }
  if (!format.empty()) {
    condensa::obs::MetricsRegistry& registry =
        condensa::obs::DefaultRegistry();
    std::fputs(format == "json" ? registry.DumpJson().c_str()
                                : registry.DumpPrometheusText().c_str(),
               stdout);
  }
  if (!result->Balanced()) {
    std::fprintf(stderr,
                 "error: a shard ledger does not balance — records lost\n");
    return 1;
  }
  return 0;
}

// Shared snapshot-source flags for `query` and `query-server`: condensed
// state comes from a saved file or a checkpoint directory. Reading the
// flags is split from loading so validation (exit 2) happens before any
// work starts.
struct SnapshotSource {
  std::string groups;
  std::string checkpoint_dir;
  int k = 10;
};

bool ReadSnapshotSourceFlags(Flags& flags, SnapshotSource* out) {
  out->groups = flags.Get("groups", "");
  out->checkpoint_dir = flags.Get("checkpoint-dir", "");
  return ParseInt(flags.Get("k", "10"), &out->k) && out->k >= 1;
}

int LoadSnapshot(const SnapshotSource& source,
                 condensa::query::QuerySnapshot* snapshot) {
  if (!source.groups.empty()) {
    // Accept either a condensa-pools file or a bare group-set file,
    // mirroring `inspect`.
    auto pools = condensa::core::LoadPools(source.groups);
    if (pools.ok()) {
      *snapshot = condensa::query::SnapshotFromPools(*pools);
      return 0;
    }
    auto groups = condensa::core::LoadGroupSet(source.groups);
    if (!groups.ok()) {
      std::fprintf(stderr, "error reading %s: %s\n", source.groups.c_str(),
                   groups.status().ToString().c_str());
      return 1;
    }
    *snapshot = condensa::query::SnapshotFromGroupSet(*groups);
    return 0;
  }
  const condensa::core::DynamicCondenserOptions options{
      .group_size = static_cast<std::size_t>(source.k)};
  auto durable = condensa::core::DurableCondenser::Recover(
      source.checkpoint_dir, options, condensa::core::DurabilityOptions{});
  if (!durable.ok()) {
    std::fprintf(stderr, "recovery from %s failed: %s\n",
                 source.checkpoint_dir.c_str(),
                 durable.status().ToString().c_str());
    return 1;
  }
  *snapshot = condensa::query::SnapshotFromGroupSet(durable->groups());
  snapshot->records_seen = durable->records_seen();
  return 0;
}

void PrintQueryResult(const condensa::query::Query& query,
                      const condensa::query::QueryResult& result,
                      const std::string& output) {
  switch (result.kind) {
    case condensa::query::QueryKind::kClassify: {
      for (std::size_t i = 0; i < result.classify.labels.size(); ++i) {
        std::printf("point %zu: label %d\n", i, result.classify.labels[i]);
      }
      break;
    }
    case condensa::query::QueryKind::kAggregate: {
      const auto& agg = result.aggregate;
      std::printf("groups matched        : %llu\n",
                  static_cast<unsigned long long>(agg.groups_matched));
      std::printf("records               : %llu\n",
                  static_cast<unsigned long long>(agg.records));
      if (agg.has_moments) {
        std::printf("mean                  :");
        for (std::size_t d = 0; d < agg.mean.dim(); ++d) {
          std::printf(" %.6g", agg.mean[d]);
        }
        std::printf("\nvariance              :");
        for (std::size_t d = 0; d < agg.mean.dim(); ++d) {
          std::printf(" %.6g", agg.covariance(d, d));
        }
        std::printf("\n");
      }
      break;
    }
    case condensa::query::QueryKind::kRegenerate: {
      const auto& regen = result.regenerate;
      std::fprintf(stderr,
                   "regenerated %zu records from %llu groups "
                   "(seed %llu)\n",
                   regen.records.size(),
                   static_cast<unsigned long long>(regen.groups_matched),
                   static_cast<unsigned long long>(
                       query.regenerate.seed));
      if (!output.empty()) {
        condensa::data::Dataset dataset(
            regen.records.empty() ? 0 : regen.records.front().dim());
        for (const auto& record : regen.records) dataset.Add(record);
        condensa::Status status = condensa::data::WriteCsv(dataset, output);
        if (!status.ok()) {
          std::fprintf(stderr, "error writing %s: %s\n", output.c_str(),
                       status.ToString().c_str());
        }
      } else {
        for (const auto& record : regen.records) {
          for (std::size_t d = 0; d < record.dim(); ++d) {
            std::printf(d == 0 ? "%.17g" : ",%.17g", record[d]);
          }
          std::printf("\n");
        }
      }
      break;
    }
  }
  std::fprintf(stderr, "answered from snapshot version %llu\n",
               static_cast<unsigned long long>(result.snapshot_version));
}

// One-shot mining queries against condensed statistics: a saved groups
// file, a checkpoint directory, or a running query-server (--connect).
int RunQuery(Flags& flags) {
  const std::string op = flags.Get("op", "aggregate");
  const std::string range_spec = flags.Get("range", "");
  const std::string points_path = flags.Get("points", "");
  const std::string connect = flags.Get("connect", "");
  const std::string output = flags.Get("output", "");
  const bool header = flags.Get("header", "false") == "true";
  SnapshotSource source;
  int neighbors = 1, seed = 42, records_per_group = 0, retries = 1;
  double timeout_ms = 5000.0, deadline_ms = 0.0;
  if (!ReadSnapshotSourceFlags(flags, &source) ||
      !ParseInt(flags.Get("neighbors", "1"), &neighbors) || neighbors < 1 ||
      !ParseInt(flags.Get("seed", "42"), &seed) ||
      !ParseInt(flags.Get("records-per-group", "0"), &records_per_group) ||
      records_per_group < 0 ||
      !ParseDouble(flags.Get("timeout-ms", "5000"), &timeout_ms) ||
      timeout_ms <= 0 ||
      !ParseInt(flags.Get("retries", "1"), &retries) || retries < 1 ||
      !ParseDouble(flags.Get("deadline-ms", "0"), &deadline_ms) ||
      deadline_ms < 0) {
    std::fprintf(stderr, "error: bad numeric flag value\n");
    return 2;
  }
  if (int code = RejectUnknownFlags(flags, "query")) return code;

  const int sources = (source.groups.empty() ? 0 : 1) +
                      (source.checkpoint_dir.empty() ? 0 : 1) +
                      (connect.empty() ? 0 : 1);
  if (sources != 1) {
    std::fprintf(stderr,
                 "error: exactly one of --groups, --checkpoint-dir, or "
                 "--connect is required\n");
    return 2;
  }

  condensa::query::Query query;
  if (op == "classify") {
    query.kind = condensa::query::QueryKind::kClassify;
  } else if (op == "aggregate") {
    query.kind = condensa::query::QueryKind::kAggregate;
  } else if (op == "regenerate") {
    query.kind = condensa::query::QueryKind::kRegenerate;
  } else {
    std::fprintf(stderr, "error: bad --op '%s'\n", op.c_str());
    return 2;
  }
  if (query.kind == condensa::query::QueryKind::kClassify &&
      points_path.empty()) {
    std::fprintf(stderr, "error: --points is required for --op=classify\n");
    return 2;
  }
  auto range = condensa::query::ParseRangeSpec(range_spec);
  if (!range.ok()) {
    std::fprintf(stderr, "error: bad --range: %s\n",
                 range.status().ToString().c_str());
    return 2;
  }
  query.classify.neighbors = static_cast<std::size_t>(neighbors);
  query.aggregate.range = *range;
  query.regenerate.range = *range;
  query.regenerate.seed = static_cast<std::uint64_t>(seed);
  query.regenerate.records_per_group =
      static_cast<std::size_t>(records_per_group);

  if (!points_path.empty()) {
    auto dataset = LoadCsv(points_path, condensa::data::TaskType::kUnlabeled,
                           header, -1);
    if (!dataset.ok()) {
      std::fprintf(stderr, "error reading %s: %s\n", points_path.c_str(),
                   dataset.status().ToString().c_str());
      return 1;
    }
    query.classify.points = dataset->records();
  }

  condensa::StatusOr<condensa::query::QueryResult> result =
      condensa::InternalError("unreachable");
  if (!connect.empty()) {
    const std::size_t colon = connect.rfind(':');
    int port = 0;
    if (colon == std::string::npos || colon == 0 ||
        !ParseInt(connect.substr(colon + 1), &port) || port < 1 ||
        port > 65535) {
      std::fprintf(stderr, "error: bad --connect '%s' (want HOST:PORT)\n",
                   connect.c_str());
      return 2;
    }
    // The initial dial shares the retry budget: a server mid-restart is
    // exactly the case --retries exists for.
    const auto dial_started = std::chrono::steady_clock::now();
    condensa::Rng dial_rng(1);
    condensa::runtime::RetryPolicy dial_backoff;
    dial_backoff.initial_backoff_ms = 50.0;
    dial_backoff.max_backoff_ms = 1000.0;
    auto client = condensa::query::QueryClient::Connect(
        connect.substr(0, colon), static_cast<std::uint16_t>(port),
        timeout_ms);
    for (std::size_t attempt = 1;
         !client.ok() && attempt < static_cast<std::size_t>(retries);
         ++attempt) {
      double wait_ms =
          condensa::runtime::BackoffDelayMs(dial_backoff, attempt, dial_rng);
      if (deadline_ms > 0) {
        const double elapsed_ms =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - dial_started)
                .count();
        const double remaining_ms = deadline_ms - elapsed_ms;
        if (remaining_ms <= 0) break;
        if (wait_ms > remaining_ms) wait_ms = remaining_ms;
      }
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(wait_ms));
      client = condensa::query::QueryClient::Connect(
          connect.substr(0, colon), static_cast<std::uint16_t>(port),
          timeout_ms);
    }
    if (!client.ok()) {
      std::fprintf(stderr, "error connecting to %s: %s\n", connect.c_str(),
                   client.status().ToString().c_str());
      return 1;
    }
    query.deadline_ms = deadline_ms;
    condensa::query::QueryRetryOptions retry;
    retry.max_attempts = static_cast<std::size_t>(retries);
    retry.deadline_ms = deadline_ms;
    result = client->ExecuteWithRetry(query, retry);
  } else {
    condensa::query::QuerySnapshot snapshot;
    if (int code = LoadSnapshot(source, &snapshot)) return code;
    condensa::query::QueryEngine engine;
    result = engine.Execute(
        snapshot, query,
        condensa::query::ExecutionContext::WithBudgetMs(deadline_ms));
  }
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  PrintQueryResult(query, *result, output);
  return 0;
}

// Long-lived read-side server: loads condensed state once, then answers
// framed Query requests until killed.
int RunQueryServer(Flags& flags) {
  const std::string host = flags.Get("host", "127.0.0.1");
  SnapshotSource source;
  int port = 0, cache_capacity = 1024, max_sessions = 8;
  double idle_timeout_ms = 30000.0, deadline_ms = 0.0;
  // An explicit --deadline-ms must be positive ("serve with no deadline"
  // is spelled by omitting the flag, not by zero).
  const std::string deadline_str = flags.Get("deadline-ms", "");
  // All flag validation happens here, BEFORE any state is loaded or a
  // socket is bound — bad values must exit 2 without side effects.
  if (!ReadSnapshotSourceFlags(flags, &source) ||
      !ParseInt(flags.Get("port", "0"), &port) || port < 0 || port > 65535 ||
      !ParseInt(flags.Get("cache-capacity", "1024"), &cache_capacity) ||
      cache_capacity < 1 ||
      !ParseDouble(flags.Get("idle-timeout-ms", "30000"),
                   &idle_timeout_ms) ||
      idle_timeout_ms <= 0 ||
      !ParseInt(flags.Get("max-sessions", "8"), &max_sessions) ||
      max_sessions < 1 ||
      (!deadline_str.empty() &&
       (!ParseDouble(deadline_str, &deadline_ms) || deadline_ms <= 0))) {
    std::fprintf(stderr, "error: bad numeric flag value\n");
    return 2;
  }
  if (int code = RejectUnknownFlags(flags, "query-server")) return code;
  if (source.groups.empty() == source.checkpoint_dir.empty()) {
    std::fprintf(stderr,
                 "error: exactly one of --groups or --checkpoint-dir is "
                 "required\n");
    return 2;
  }

  condensa::query::QuerySnapshot snapshot;
  if (int code = LoadSnapshot(source, &snapshot)) return code;
  auto store = std::make_shared<condensa::query::SnapshotStore>();
  store->Publish(std::move(snapshot));

  condensa::query::QueryServerConfig config;
  config.host = host;
  config.port = static_cast<std::uint16_t>(port);
  config.idle_timeout_ms = idle_timeout_ms;
  config.max_sessions = static_cast<std::size_t>(max_sessions);
  config.default_deadline_ms = deadline_ms;
  config.engine.eigen_cache_capacity =
      static_cast<std::size_t>(cache_capacity);
  auto server =
      condensa::query::QueryServer::Create(std::move(config), store);
  if (!server.ok()) {
    std::fprintf(stderr, "error starting query server: %s\n",
                 server.status().ToString().c_str());
    return server.status().code() ==
                   condensa::StatusCode::kInvalidArgument
               ? 2
               : 1;
  }
  std::printf("listening on %u\n", (*server)->port());
  std::fflush(stdout);
  condensa::Status run = (*server)->Run();
  if (!run.ok()) {
    std::fprintf(stderr, "query server failed: %s\n",
                 run.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "query server finished cleanly\n");
  return 0;
}

int RunInspect(Flags& flags) {
  const std::string path = flags.Get("groups", "");
  if (int code = RejectUnknownFlags(flags, "inspect")) return code;
  if (path.empty()) {
    std::fprintf(stderr, "error: --groups is required\n");
    return 2;
  }
  // Accept either a condensa-pools file (engine output) or a bare
  // condensa-groups file.
  auto pools = condensa::core::LoadPools(path);
  if (pools.ok()) {
    const char* task_name =
        pools->task == condensa::data::TaskType::kClassification
            ? "classification"
            : (pools->task == condensa::data::TaskType::kRegression
                   ? "regression"
                   : "none");
    std::printf("pool statistics file  : %s\n", path.c_str());
    std::printf("task                  : %s\n", task_name);
    std::printf("feature dimension     : %zu\n", pools->feature_dim);
    std::printf("pools                 : %zu\n", pools->pools.size());
    for (const auto& pool : pools->pools) {
      std::printf("- pool label %d (splits: %zu)\n", pool.label,
                  pool.splits);
      PrintGroupSummary(pool.groups, "    ");
    }
    return 0;
  }

  auto groups = condensa::core::LoadGroupSet(path);
  if (!groups.ok()) {
    std::fprintf(stderr, "error reading %s: %s\n", path.c_str(),
                 groups.status().ToString().c_str());
    return 1;
  }
  std::printf("group statistics file : %s\n", path.c_str());
  PrintGroupSummary(*groups, "");
  return 0;
}

int RunEvaluate(Flags& flags) {
  const std::string original_path = flags.Get("original", "");
  const std::string anonymized_path = flags.Get("anonymized", "");
  const std::string task_name = flags.Get("task", "classification");
  const bool header = flags.Get("header", "false") == "true";
  int label_column = -1;
  if (!ParseInt(flags.Get("label-column", "-1"), &label_column)) {
    std::fprintf(stderr, "error: bad --label-column\n");
    return 2;
  }
  if (int code = RejectUnknownFlags(flags, "evaluate")) return code;
  condensa::data::TaskType task;
  if (!ParseTask(task_name, &task)) {
    std::fprintf(stderr, "error: unknown --task=%s\n", task_name.c_str());
    return 2;
  }
  if (original_path.empty() || anonymized_path.empty()) {
    std::fprintf(stderr, "error: --original and --anonymized are required\n");
    return 2;
  }

  auto original = LoadCsv(original_path, task, header, label_column);
  auto anonymized = LoadCsv(anonymized_path, task, header, label_column);
  if (!original.ok() || !anonymized.ok()) {
    std::fprintf(stderr, "error reading input CSVs\n");
    return 1;
  }

  auto mu = condensa::metrics::CovarianceCompatibility(*original,
                                                       *anonymized);
  auto linkage = condensa::metrics::EvaluateLinkage(*original, *anonymized);
  auto leakage =
      condensa::metrics::ExactLeakageRate(*original, *anonymized, 1e-9);
  if (!mu.ok() || !linkage.ok() || !leakage.ok()) {
    std::fprintf(stderr, "evaluation failed (dimension mismatch?)\n");
    return 1;
  }
  std::printf("records (original / anonymized): %zu / %zu\n",
              original->size(), anonymized->size());
  std::printf("covariance compatibility (mu)  : %.4f\n", *mu);
  std::printf("linkage distance gain          : %.3f\n",
              linkage->distance_gain);
  std::printf("pinpointed fraction            : %.4f\n",
              linkage->pinpointed_fraction);
  std::printf("verbatim leakage rate          : %.4f\n", *leakage);
  return 0;
}

// Runs a small synthetic pipeline through every instrumented subsystem —
// static and dynamic condensation, release generation, kd-tree queries,
// durable ingest plus recovery — then dumps the default metrics registry.
// This is the quickest way to see which series a deployment will emit,
// and doubles as a smoke test that the instruments fire.
int RunStats(Flags& flags) {
  const std::string format = flags.Get("format", "prometheus");
  const std::string trace_out = flags.Get("trace-out", "");
  int records = 2000, dim = 8, k = 10, seed = 42;
  if (!ParseInt(flags.Get("records", "2000"), &records) || records < 10 ||
      !ParseInt(flags.Get("dim", "8"), &dim) || dim < 1 ||
      !ParseInt(flags.Get("k", "10"), &k) || k < 1 ||
      !ParseInt(flags.Get("seed", "42"), &seed)) {
    std::fprintf(stderr, "error: bad numeric flag value\n");
    return 2;
  }
  if (int code = RejectUnknownFlags(flags, "stats")) return code;
  if (format != "prometheus" && format != "json") {
    std::fprintf(stderr, "error: unknown --format=%s\n", format.c_str());
    return 2;
  }
  if (!trace_out.empty()) {
    condensa::obs::StartTracing();
  }

  // Two well-separated Gaussian blobs, labeled, so classification pools,
  // splits, and kd-tree pruning all have something to do.
  condensa::Rng rng(static_cast<std::uint64_t>(seed));
  condensa::data::Dataset dataset(
      static_cast<std::size_t>(dim),
      condensa::data::TaskType::kClassification);
  std::vector<condensa::linalg::Vector> points;
  points.reserve(static_cast<std::size_t>(records));
  for (int i = 0; i < records; ++i) {
    condensa::linalg::Vector record(static_cast<std::size_t>(dim));
    const int label = i % 2;
    for (int d = 0; d < dim; ++d) {
      record[static_cast<std::size_t>(d)] =
          rng.Gaussian(label == 0 ? -2.0 : 2.0, 1.0);
    }
    dataset.Add(record, label);
    points.push_back(record);
  }

  // Static and dynamic condensation through the engine facade.
  for (condensa::core::CondensationMode mode :
       {condensa::core::CondensationMode::kStatic,
        condensa::core::CondensationMode::kDynamic}) {
    condensa::core::CondensationEngine engine(
        {.group_size = static_cast<std::size_t>(k), .mode = mode});
    auto result = engine.Anonymize(dataset, rng);
    if (!result.ok()) {
      std::fprintf(stderr, "condensation failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
  }

  // kd-tree build plus a query mix.
  auto tree = condensa::index::KdTree::Build(points);
  if (!tree.ok()) {
    std::fprintf(stderr, "kd-tree build failed: %s\n",
                 tree.status().ToString().c_str());
    return 1;
  }
  for (std::size_t i = 0; i < 64; ++i) {
    tree->KNearest(points[i % points.size()], 5);
  }

  // Durable ingest and recovery in a throwaway checkpoint directory.
  const std::filesystem::path ckpt_dir =
      std::filesystem::temp_directory_path() /
      ("condensa-stats-" + std::to_string(getpid()));
  std::error_code cleanup_error;
  std::filesystem::remove_all(ckpt_dir, cleanup_error);
  {
    const condensa::core::DynamicCondenserOptions options{
        .group_size = static_cast<std::size_t>(k)};
    const condensa::core::DurabilityOptions durability{
        .snapshot_interval = 256};
    auto durable = condensa::core::DurableCondenser::Open(
        static_cast<std::size_t>(dim), options, durability,
        ckpt_dir.string());
    if (!durable.ok()) {
      std::fprintf(stderr, "durable open failed: %s\n",
                   durable.status().ToString().c_str());
      return 1;
    }
    // Bootstrap half the batch, then stream the rest one record at a
    // time so journal appends (and their fsyncs) show up in the dump.
    const std::size_t half = points.size() / 2;
    std::vector<condensa::linalg::Vector> prefix(points.begin(),
                                                 points.begin() + half);
    condensa::Status status = durable->Bootstrap(prefix, rng);
    for (std::size_t i = half; status.ok() && i < points.size(); ++i) {
      status = durable->Insert(points[i]);
    }
    if (status.ok()) status = durable->Checkpoint();
    if (status.ok()) {
      status = condensa::core::DurableCondenser::Recover(
                   ckpt_dir.string(), options, durability)
                   .status();
    }
    if (!status.ok()) {
      std::fprintf(stderr, "durable ingest/recovery failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
  }
  std::filesystem::remove_all(ckpt_dir, cleanup_error);

  if (!trace_out.empty()) {
    condensa::Status status = condensa::WriteFileAtomic(
        trace_out, condensa::obs::StopTracingAndDump());
    if (!status.ok()) {
      std::fprintf(stderr, "error writing %s: %s\n", trace_out.c_str(),
                   status.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote trace to %s (load in ui.perfetto.dev)\n",
                 trace_out.c_str());
  }

  condensa::obs::MetricsRegistry& registry = condensa::obs::DefaultRegistry();
  std::fputs(format == "json" ? registry.DumpJson().c_str()
                              : registry.DumpPrometheusText().c_str(),
             stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return Usage();
  }
  const std::string command = argv[1];
  if (command == "help" || command == "--help" || command == "-h") {
    PrintUsage(stdout);
    return 0;
  }
  Flags flags(argc, argv, 2);
  if (!flags.ok()) {
    std::fprintf(stderr, "error: unexpected argument '%s'\n",
                 flags.bad().c_str());
    return Usage();
  }
  if (flags.Get("help", "false") == "true" || flags.Get("h", "false") == "true") {
    const char* help = HelpText(command);
    if (help == nullptr) {
      std::fprintf(stderr, "error: unknown command '%s'\n", command.c_str());
      return Usage();
    }
    std::fputs(help, stdout);
    return 0;
  }

  int code;
  if (command == "condense") {
    code = RunCondense(flags);
  } else if (command == "generate") {
    code = RunGenerate(flags);
  } else if (command == "ingest") {
    code = RunIngest(flags);
  } else if (command == "serve-stream") {
    code = RunServeStream(flags);
  } else if (command == "shard") {
    code = RunShard(flags);
  } else if (command == "worker") {
    code = RunWorker(flags);
  } else if (command == "fabric") {
    code = RunFabric(flags);
  } else if (command == "recover") {
    code = RunRecover(flags);
  } else if (command == "query") {
    code = RunQuery(flags);
  } else if (command == "query-server") {
    code = RunQueryServer(flags);
  } else if (command == "inspect") {
    code = RunInspect(flags);
  } else if (command == "evaluate") {
    code = RunEvaluate(flags);
  } else if (command == "stats") {
    code = RunStats(flags);
  } else {
    std::fprintf(stderr, "error: unknown command '%s'\n", command.c_str());
    return Usage();
  }

  return code;
}
