#!/usr/bin/env python3
"""Gate a bench run against a committed baseline.

Compares the machine-comparable scalars of a fresh BENCH_*.json report
(see bench/bench_report.h for the schema) against a baseline committed
under bench/baselines/. Raw seconds and records_per_sec depend on the
host and are never gated; `speedup_*` scalars are ratios of two timings
taken on the same machine in the same run, so they transfer across
hosts well enough for a coarse gate.

A scalar regresses when

    candidate < baseline * (1 - threshold)

with the default threshold at 10%. Improvements never fail, and a
scalar present only in the candidate (a new bench cell) is reported but
not gated. A scalar present only in the baseline fails: a silently
vanished cell is exactly the kind of regression this gate exists for.

Usage:
    tools/check_bench_regression.py \
        --baseline bench/baselines/condense_scale_smoke.json \
        --candidate /tmp/bench-reports/BENCH_condense_scale.json \
        [--threshold 0.10]

Exit status: 0 when every gated scalar holds, 1 on any regression or
missing scalar, 2 on malformed input.
"""

import argparse
import json
import sys


def load_scalars(path):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            report = json.load(fh)
    except (OSError, ValueError) as err:
        print(f"error: cannot read bench report {path}: {err}", file=sys.stderr)
        sys.exit(2)
    scalars = report.get("scalars")
    if not isinstance(scalars, dict):
        print(f"error: {path} has no 'scalars' object", file=sys.stderr)
        sys.exit(2)
    return scalars


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True,
                        help="committed baseline JSON (bench/baselines/...)")
    parser.add_argument("--candidate", required=True,
                        help="freshly generated BENCH_*.json to check")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="allowed fractional drop per scalar "
                             "(default: 0.10)")
    parser.add_argument("--prefix", default="speedup_",
                        help="gate scalars whose name starts with this "
                             "(default: speedup_)")
    args = parser.parse_args()

    baseline = load_scalars(args.baseline)
    candidate = load_scalars(args.candidate)

    gated = sorted(k for k in baseline if k.startswith(args.prefix))
    if not gated:
        print(f"error: baseline {args.baseline} has no '{args.prefix}*' "
              "scalars to gate on", file=sys.stderr)
        sys.exit(2)

    failures = []
    print(f"{'scalar':<28} {'baseline':>10} {'candidate':>10} {'ratio':>7}")
    for name in gated:
        base = baseline[name]
        if name not in candidate:
            print(f"{name:<28} {base:>10.3f} {'MISSING':>10} {'':>7}  FAIL")
            failures.append(f"{name}: missing from candidate report")
            continue
        cand = candidate[name]
        ratio = cand / base if base else float("inf")
        ok = cand >= base * (1.0 - args.threshold)
        mark = "ok" if ok else "FAIL"
        print(f"{name:<28} {base:>10.3f} {cand:>10.3f} {ratio:>6.2f}x  {mark}")
        if not ok:
            failures.append(
                f"{name}: {cand:.3f} < {base:.3f} * (1 - {args.threshold})")

    new = sorted(k for k in candidate
                 if k.startswith(args.prefix) and k not in baseline)
    for name in new:
        print(f"{name:<28} {'(new)':>10} {candidate[name]:>10.3f}")

    if failures:
        print(f"\n{len(failures)} scalar(s) regressed more than "
              f"{args.threshold:.0%} vs {args.baseline}:", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        print("If the drop is intended (bench reshaped, cell removed), "
              "regenerate the baseline and commit it with the change.",
              file=sys.stderr)
        sys.exit(1)
    print(f"\nall {len(gated)} gated scalar(s) within {args.threshold:.0%} "
          "of baseline")


if __name__ == "__main__":
    main()
