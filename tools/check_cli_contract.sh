#!/usr/bin/env bash
# Pins the CLI's help and exit-code contract so scripts and CI jobs can
# rely on it:
#   * exit 0  — success, and every `<cmd> --help`
#   * exit 2  — usage errors (unknown command, bad flag value, missing
#               required flag), detected BEFORE any work starts
# Usage: check_cli_contract.sh /path/to/condensa
set -u

CLI="${1:?usage: check_cli_contract.sh /path/to/condensa}"
failures=0

expect_code() {
  local want="$1"; shift
  local label="$1"; shift
  "$@" > /dev/null 2>&1
  local got=$?
  if [ "$got" -ne "$want" ]; then
    echo "FAIL: $label: expected exit $want, got $got ($*)" >&2
    failures=$((failures + 1))
  else
    echo "ok: $label (exit $got)"
  fi
}

# Top-level help and unknown commands.
expect_code 0 "bare --help"            "$CLI" --help
expect_code 2 "no command"             "$CLI"
expect_code 2 "unknown command"        "$CLI" frobnicate

# Every subcommand answers --help with exit 0.
for cmd in condense serve-stream worker fabric query query-server; do
  expect_code 0 "$cmd --help"          "$CLI" "$cmd" --help
done

# serve-stream shard-count validation: rejected before any work.
expect_code 2 "serve-stream --shards=0"        "$CLI" serve-stream --shards=0
expect_code 2 "serve-stream --shards=-3"       "$CLI" serve-stream --shards=-3
expect_code 2 "serve-stream --shards=abc"      "$CLI" serve-stream --shards=abc
# Space-separated form is a bare positional, also a usage error.
expect_code 2 "serve-stream --shards 0"        "$CLI" serve-stream --shards 0

# Unknown flags are usage errors everywhere, including on the new
# subcommands.
expect_code 2 "serve-stream typo flag"   "$CLI" serve-stream --shard=2
expect_code 2 "worker unknown flag"      "$CLI" worker --bogus=1
expect_code 2 "fabric unknown flag"      "$CLI" fabric --bogus=1

# worker/fabric required-flag validation fails fast.
expect_code 2 "worker missing checkpoint root" "$CLI" worker
expect_code 2 "worker bad port"      "$CLI" worker --checkpoint-root=/tmp/x --port=70000
expect_code 2 "fabric missing workers"         "$CLI" fabric
expect_code 2 "fabric bad worker list"  "$CLI" fabric --workers=localhost
expect_code 2 "fabric k below 2"  "$CLI" fabric --workers=127.0.0.1:19999 --k=1

# Anonymization backends: --help advertises the flag and enumerates the
# registered ids; an unknown id is a usage error caught before any file
# I/O and names the available backends.
if "$CLI" --help 2>&1 | grep -q -- "--backend"; then
  echo "ok: --help documents --backend"
else
  echo "FAIL: --help does not document --backend" >&2
  failures=$((failures + 1))
fi
if "$CLI" --help 2>&1 | grep -q "condensation" \
    && "$CLI" --help 2>&1 | grep -q "mdav"; then
  echo "ok: --help enumerates registered backends"
else
  echo "FAIL: --help does not enumerate registered backends" >&2
  failures=$((failures + 1))
fi
expect_code 2 "condense unknown backend" \
  "$CLI" condense --backend=bogus --input=/nonexistent.csv --output=/dev/null
expect_code 2 "serve-stream unknown backend" \
  "$CLI" serve-stream --backend=bogus
expect_code 2 "fabric unknown backend" \
  "$CLI" fabric --workers=127.0.0.1:19999 --backend=bogus
if "$CLI" condense --backend=bogus --input=/nonexistent.csv \
    --output=/dev/null 2>&1 | grep -q "available"; then
  echo "ok: unknown backend error lists available ids"
else
  echo "FAIL: unknown backend error does not list available ids" >&2
  failures=$((failures + 1))
fi

# query/query-server flag validation fails fast.
expect_code 2 "query unknown flag"        "$CLI" query --bogus=1
expect_code 2 "query-server unknown flag" "$CLI" query-server --bogus=1
expect_code 2 "query no snapshot source"  "$CLI" query
expect_code 2 "query two sources" \
  "$CLI" query --groups=/tmp/x --checkpoint-dir=/tmp/y
expect_code 2 "query bad op" "$CLI" query --groups=/tmp/x --op=frobnicate
expect_code 2 "query classify without points" \
  "$CLI" query --groups=/tmp/x --op=classify
expect_code 2 "query bad range" "$CLI" query --groups=/tmp/x --range=0:hi:lo
expect_code 2 "query bad connect" "$CLI" query --connect=nocolon
expect_code 2 "query-server no snapshot source" "$CLI" query-server
expect_code 2 "query-server bad port" \
  "$CLI" query-server --groups=/tmp/x --port=70000
# Read-plane hardening flags: zero/negative values are usage errors
# caught before any state loads or a socket binds.
expect_code 2 "query-server --max-sessions=0" \
  "$CLI" query-server --groups=/tmp/x --max-sessions=0
expect_code 2 "query-server --max-sessions=-2" \
  "$CLI" query-server --groups=/tmp/x --max-sessions=-2
expect_code 2 "query-server --deadline-ms=0" \
  "$CLI" query-server --groups=/tmp/x --deadline-ms=0
expect_code 2 "query-server --deadline-ms=-5" \
  "$CLI" query-server --groups=/tmp/x --deadline-ms=-5
expect_code 2 "query --retries=0" \
  "$CLI" query --groups=/tmp/x --retries=0
expect_code 2 "query --deadline-ms=-1" \
  "$CLI" query --groups=/tmp/x --deadline-ms=-1
# A missing checkpoint directory is a runtime failure (exit 1), reported
# before the server would start listening or any query would run.
expect_code 1 "query missing checkpoint dir" \
  "$CLI" query --checkpoint-dir=/nonexistent-condensa-dir
expect_code 1 "query-server missing checkpoint dir" \
  "$CLI" query-server --checkpoint-dir=/nonexistent-condensa-dir

# Live round-trip: a real query-server with hardening flags on, queried
# through the retrying client path. Exercises --max-sessions and
# --deadline-ms end to end, not just flag parsing.
workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"; [ -n "${server_pid:-}" ] && kill "$server_pid" 2>/dev/null' EXIT
{
  echo "0.1,0.2"; echo "0.2,0.1"; echo "0.15,0.25"; echo "0.9,0.8"
  echo "0.8,0.9"; echo "0.85,0.95"; echo "0.12,0.18"; echo "0.88,0.92"
} > "$workdir/data.csv"
if "$CLI" condense --input="$workdir/data.csv" --k=2 --task=none \
    --save-groups="$workdir/groups.bin" --output=/dev/null > /dev/null 2>&1; then
  # The MDAV backend condenses the same fixture and stamps its snapshot.
  expect_code 0 "condense --backend=mdav" \
    "$CLI" condense --input="$workdir/data.csv" --k=2 --task=none \
    --backend=mdav --save-groups="$workdir/groups-mdav.bin" --output=/dev/null
  if grep -q "backend mdav 1" "$workdir/groups-mdav.bin" 2>/dev/null; then
    echo "ok: mdav snapshot carries its backend stamp"
  else
    echo "FAIL: mdav snapshot missing 'backend mdav 1' stamp" >&2
    failures=$((failures + 1))
  fi
  "$CLI" query-server --groups="$workdir/groups.bin" --port=0 \
      --max-sessions=4 --deadline-ms=5000 > "$workdir/server.out" 2>&1 &
  server_pid=$!
  port=""
  for _ in $(seq 1 100); do
    port="$(sed -n 's/^listening on \([0-9]*\)$/\1/p' "$workdir/server.out")"
    [ -n "$port" ] && break
    sleep 0.1
  done
  if [ -n "$port" ]; then
    expect_code 0 "query round-trip with retries+deadline" \
      "$CLI" query --connect=127.0.0.1:"$port" --op=aggregate \
      --retries=3 --deadline-ms=5000
  else
    echo "FAIL: query-server never reported its port" >&2
    failures=$((failures + 1))
  fi
  kill "$server_pid" 2>/dev/null
  wait "$server_pid" 2>/dev/null
  server_pid=""
else
  echo "FAIL: condense for the round-trip fixture failed" >&2
  failures=$((failures + 1))
fi

if [ "$failures" -ne 0 ]; then
  echo "$failures CLI contract check(s) failed" >&2
  exit 1
fi
echo "CLI contract holds"
