#include "datagen/gaussian_mixture.h"

#include <gtest/gtest.h>

#include "linalg/stats.h"

namespace condensa::datagen {
namespace {

using linalg::Matrix;
using linalg::Vector;

TEST(GaussianMixtureTest, CreateValidatesInput) {
  EXPECT_FALSE(GaussianMixture::Create({}).ok());

  // Dimension mismatch between components.
  EXPECT_FALSE(GaussianMixture::Create(
                   {{Vector{0.0}, Matrix{{1.0}}, 1.0},
                    {Vector{0.0, 0.0}, Matrix::Identity(2), 1.0}})
                   .ok());

  // Negative weight.
  EXPECT_FALSE(
      GaussianMixture::Create({{Vector{0.0}, Matrix{{1.0}}, -1.0}}).ok());

  // All-zero weights.
  EXPECT_FALSE(
      GaussianMixture::Create({{Vector{0.0}, Matrix{{1.0}}, 0.0}}).ok());

  // Non-PSD covariance.
  EXPECT_FALSE(GaussianMixture::Create(
                   {{Vector{0.0, 0.0}, Matrix{{1.0, 2.0}, {2.0, 1.0}}, 1.0}})
                   .ok());
}

TEST(GaussianMixtureTest, SingleComponentMomentsMatch) {
  Matrix cov{{2.0, 0.6}, {0.6, 1.0}};
  auto mixture =
      GaussianMixture::Create({{Vector{1.0, -2.0}, cov, 1.0}});
  ASSERT_TRUE(mixture.ok());

  Rng rng(42);
  std::vector<Vector> samples = mixture->SampleMany(50000, rng);
  Vector mean = linalg::MeanVector(samples);
  Matrix sample_cov = linalg::CovarianceMatrix(samples);

  EXPECT_NEAR(mean[0], 1.0, 0.03);
  EXPECT_NEAR(mean[1], -2.0, 0.03);
  EXPECT_NEAR(sample_cov(0, 0), 2.0, 0.08);
  EXPECT_NEAR(sample_cov(1, 1), 1.0, 0.05);
  EXPECT_NEAR(sample_cov(0, 1), 0.6, 0.05);
}

TEST(GaussianMixtureTest, MixtureMeanBlendsComponents) {
  auto mixture = GaussianMixture::Create({
      {Vector{0.0}, Matrix{{0.01}}, 1.0},
      {Vector{10.0}, Matrix{{0.01}}, 3.0},
  });
  ASSERT_TRUE(mixture.ok());
  EXPECT_NEAR(mixture->Mean()[0], 7.5, 1e-12);

  Rng rng(7);
  std::vector<Vector> samples = mixture->SampleMany(40000, rng);
  EXPECT_NEAR(linalg::MeanVector(samples)[0], 7.5, 0.1);
}

TEST(GaussianMixtureTest, ZeroWeightComponentNeverSampled) {
  auto mixture = GaussianMixture::Create({
      {Vector{0.0}, Matrix{{0.01}}, 1.0},
      {Vector{100.0}, Matrix{{0.01}}, 0.0},
  });
  ASSERT_TRUE(mixture.ok());
  Rng rng(9);
  for (const Vector& sample : mixture->SampleMany(2000, rng)) {
    EXPECT_LT(sample[0], 50.0);
  }
}

TEST(GaussianMixtureTest, SampleManyIsDeterministicGivenSeed) {
  auto mixture = GaussianMixture::Create(
      {{Vector{0.0, 0.0}, Matrix::Identity(2), 1.0}});
  ASSERT_TRUE(mixture.ok());
  Rng rng_a(5), rng_b(5);
  std::vector<Vector> a = mixture->SampleMany(100, rng_a);
  std::vector<Vector> b = mixture->SampleMany(100, rng_b);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(linalg::ApproxEqual(a[i], b[i], 0.0));
  }
}

TEST(GaussianMixtureTest, DimAndComponentAccessors) {
  auto mixture = GaussianMixture::Create({
      {Vector{0.0, 0.0, 0.0}, Matrix::Identity(3), 1.0},
      {Vector{1.0, 1.0, 1.0}, Matrix::Identity(3), 1.0},
  });
  ASSERT_TRUE(mixture.ok());
  EXPECT_EQ(mixture->dim(), 3u);
  EXPECT_EQ(mixture->num_components(), 2u);
}

}  // namespace
}  // namespace condensa::datagen
