#include "datagen/profiles.h"

#include <gtest/gtest.h>

#include <cmath>

#include <map>

namespace condensa::datagen {
namespace {

TEST(IonosphereProfileTest, ShapeMatchesUciDataset) {
  Rng rng(1);
  data::Dataset ds = MakeIonosphere(rng);
  EXPECT_EQ(ds.dim(), 34u);
  EXPECT_EQ(ds.size(), 351u);
  EXPECT_EQ(ds.task(), data::TaskType::kClassification);
  auto by_label = ds.IndicesByLabel();
  ASSERT_EQ(by_label.size(), 2u);
  // Label noise moves a few records between classes; counts stay close to
  // the UCI 225/126 split.
  EXPECT_NEAR(static_cast<double>(by_label[0].size()), 225.0, 25.0);
  EXPECT_NEAR(static_cast<double>(by_label[1].size()), 126.0, 25.0);
}

TEST(EcoliProfileTest, ShapeAndImbalanceMatchUciDataset) {
  Rng rng(2);
  data::Dataset ds = MakeEcoli(rng);
  EXPECT_EQ(ds.dim(), 7u);
  EXPECT_EQ(ds.size(), 336u);
  auto by_label = ds.IndicesByLabel();
  EXPECT_EQ(by_label.size(), 8u);
  // Largest class stays dominant despite the 2% label noise.
  EXPECT_GT(by_label[0].size(), 120u);
  // The tiny classes exist.
  EXPECT_GE(by_label[6].size(), 1u);
  EXPECT_GE(by_label[7].size(), 1u);
}

TEST(PimaProfileTest, ShapeMatchesUciDataset) {
  Rng rng(3);
  data::Dataset ds = MakePima(rng);
  EXPECT_EQ(ds.dim(), 8u);
  EXPECT_EQ(ds.size(), 768u);
  auto by_label = ds.IndicesByLabel();
  ASSERT_EQ(by_label.size(), 2u);
  EXPECT_GT(by_label[0].size(), by_label[1].size());
}

TEST(AbaloneProfileTest, ShapeAndTargetsMatchUciDataset) {
  Rng rng(4);
  data::Dataset ds = MakeAbalone(rng);
  EXPECT_EQ(ds.dim(), 7u);
  EXPECT_EQ(ds.size(), 4177u);
  EXPECT_EQ(ds.task(), data::TaskType::kRegression);
  double min_age = 1e9, max_age = -1e9, total = 0.0;
  for (std::size_t i = 0; i < ds.size(); ++i) {
    min_age = std::min(min_age, ds.target(i));
    max_age = std::max(max_age, ds.target(i));
    total += ds.target(i);
  }
  EXPECT_GE(min_age, 1.0);
  EXPECT_LT(max_age, 40.0);
  // Mean age near the real dataset's ~11 years.
  EXPECT_NEAR(total / static_cast<double>(ds.size()), 11.0, 3.0);
}

TEST(AbaloneProfileTest, AttributesAreStronglyCorrelated) {
  Rng rng(5);
  data::Dataset ds = MakeAbalone(rng);
  linalg::Matrix cov = ds.Covariance();
  // Correlation between the first two size attributes should be near 1.
  double corr = cov(0, 1) / std::sqrt(cov(0, 0) * cov(1, 1));
  EXPECT_GT(corr, 0.9);
}

TEST(ProfileOptionsTest, SizeFactorScalesRecordCounts) {
  Rng rng(6);
  ProfileOptions options;
  options.size_factor = 0.5;
  data::Dataset ds = MakePima(rng, options);
  EXPECT_EQ(ds.size(), 384u);  // 250 + 134
}

TEST(ProfilesTest, DeterministicGivenSeed) {
  Rng rng_a(7), rng_b(7);
  data::Dataset a = MakeEcoli(rng_a);
  data::Dataset b = MakeEcoli(rng_b);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(linalg::ApproxEqual(a.record(i), b.record(i), 0.0));
    EXPECT_EQ(a.label(i), b.label(i));
  }
}

TEST(ProfilesTest, DifferentSeedsProduceDifferentData) {
  Rng rng_a(8), rng_b(9);
  data::Dataset a = MakeIonosphere(rng_a);
  data::Dataset b = MakeIonosphere(rng_b);
  EXPECT_FALSE(linalg::ApproxEqual(a.record(0), b.record(0), 1e-6));
}

TEST(GaussianBlobsTest, ShapeAndLabels) {
  Rng rng(10);
  data::Dataset ds = MakeGaussianBlobs(3, 40, 5, 10.0, rng);
  EXPECT_EQ(ds.size(), 120u);
  EXPECT_EQ(ds.dim(), 5u);
  EXPECT_EQ(ds.DistinctLabels().size(), 3u);
}

TEST(GaussianBlobsTest, WellSeparatedBlobsAreCompact) {
  Rng rng(11);
  data::Dataset ds = MakeGaussianBlobs(2, 100, 3, 50.0, rng);
  // Within-class spread (~1) is far below the class separation, so class
  // means are far apart.
  data::Dataset class0 = ds.SelectLabel(0);
  data::Dataset class1 = ds.SelectLabel(1);
  double separation = linalg::Distance(class0.Mean(), class1.Mean());
  EXPECT_GT(separation, 10.0);
}

TEST(MakeProfileByNameTest, ResolvesAllNames) {
  Rng rng(12);
  ProfileOptions small;
  small.size_factor = 0.1;
  for (const char* name : {"ionosphere", "ecoli", "pima", "abalone"}) {
    auto ds = MakeProfileByName(name, rng, small);
    EXPECT_TRUE(ds.ok()) << name;
  }
}

TEST(MakeProfileByNameTest, UnknownNameFails) {
  Rng rng(13);
  auto result = MakeProfileByName("adult", rng);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(IsNotFound(result.status()));
}

}  // namespace
}  // namespace condensa::datagen
