#include "datagen/random_covariance.h"

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/eigen.h"

namespace condensa::datagen {
namespace {

TEST(RandomOrthogonalTest, ColumnsAreOrthonormal) {
  Rng rng(1);
  for (std::size_t dim : {1u, 2u, 5u, 10u}) {
    linalg::Matrix q = RandomOrthogonal(dim, rng);
    linalg::Matrix gram = linalg::TransposeMatMul(q, q);
    EXPECT_TRUE(
        linalg::ApproxEqual(gram, linalg::Matrix::Identity(dim), 1e-10))
        << "dim=" << dim;
  }
}

TEST(RandomOrthogonalTest, DifferentDrawsDiffer) {
  Rng rng(2);
  linalg::Matrix a = RandomOrthogonal(4, rng);
  linalg::Matrix b = RandomOrthogonal(4, rng);
  EXPECT_FALSE(linalg::ApproxEqual(a, b, 1e-6));
}

TEST(GeometricSpectrumTest, ValuesDecayGeometrically) {
  linalg::Vector s = GeometricSpectrum(4, 8.0, 0.5);
  EXPECT_DOUBLE_EQ(s[0], 8.0);
  EXPECT_DOUBLE_EQ(s[1], 4.0);
  EXPECT_DOUBLE_EQ(s[2], 2.0);
  EXPECT_DOUBLE_EQ(s[3], 1.0);
}

TEST(GeometricSpectrumTest, RatioOneIsFlat) {
  linalg::Vector s = GeometricSpectrum(3, 2.0, 1.0);
  EXPECT_DOUBLE_EQ(s[2], 2.0);
}

TEST(RandomCovarianceTest, IsSymmetricPsdWithRequestedSpectrum) {
  Rng rng(3);
  linalg::Vector spectrum = GeometricSpectrum(5, 4.0, 0.6);
  linalg::Matrix cov = RandomCovariance(spectrum, rng);
  EXPECT_TRUE(cov.IsSymmetric(1e-10));

  auto eigen = linalg::JacobiEigenDecomposition(cov);
  ASSERT_TRUE(eigen.ok());
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_NEAR(eigen->eigenvalues[i], spectrum[i], 1e-8);
  }
}

TEST(RandomCovarianceTest, TraceEqualsSpectrumSum) {
  Rng rng(4);
  linalg::Vector spectrum = GeometricSpectrum(7, 3.0, 0.8);
  linalg::Matrix cov = RandomCovariance(spectrum, rng);
  EXPECT_NEAR(cov.Trace(), spectrum.Sum(), 1e-9);
}

TEST(RandomCovarianceTest, AnisotropicSpectrumCreatesCorrelations) {
  Rng rng(5);
  // With a strongly decaying spectrum the rotated covariance should have
  // visible off-diagonal mass.
  linalg::Matrix cov = RandomCovariance(GeometricSpectrum(6, 10.0, 0.3), rng);
  double off_diag = 0.0;
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = 0; j < 6; ++j) {
      if (i != j) off_diag += std::abs(cov(i, j));
    }
  }
  EXPECT_GT(off_diag, 1.0);
}

}  // namespace
}  // namespace condensa::datagen
