// Frame layer hardening: the 16-byte header is validated before any
// payload allocation, so corrupt or hostile lengths, versions, and
// checksums fail with clean statuses — never a giant allocation, crash,
// or hang.

#include "net/frame.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "common/random.h"

namespace condensa::net {
namespace {

TEST(FrameTest, RoundTripsEveryType) {
  const std::string payload = "hello fabric";
  for (std::uint16_t raw = 1; raw <= 12; ++raw) {
    const FrameType type = static_cast<FrameType>(raw);
    const std::string wire = EncodeFrame(type, payload);
    ASSERT_EQ(wire.size(), kFrameHeaderSize + payload.size());
    StatusOr<Frame> frame = DecodeFrame(wire);
    ASSERT_TRUE(frame.ok()) << FrameTypeName(type);
    EXPECT_EQ(frame->type, type);
    EXPECT_EQ(frame->payload, payload);
  }
}

TEST(FrameTest, RoundTripsEmptyPayload) {
  const std::string wire = EncodeFrame(FrameType::kFinish, "");
  StatusOr<Frame> frame = DecodeFrame(wire);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame->type, FrameType::kFinish);
  EXPECT_TRUE(frame->payload.empty());
}

TEST(FrameTest, Crc32MatchesKnownVector) {
  // IEEE CRC32 of "123456789" is the classic check value.
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0u);
}

TEST(FrameTest, ShortHeaderIsDataLoss) {
  const std::string wire = EncodeFrame(FrameType::kHello, "x");
  for (std::size_t cut = 0; cut < kFrameHeaderSize; ++cut) {
    Status status = DecodeFrameHeader(wire.substr(0, cut)).status();
    EXPECT_EQ(status.code(), StatusCode::kDataLoss) << "cut " << cut;
  }
}

TEST(FrameTest, BadMagicIsDataLoss) {
  std::string wire = EncodeFrame(FrameType::kHello, "x");
  wire[0] = 'X';
  EXPECT_EQ(DecodeFrameHeader(wire).status().code(), StatusCode::kDataLoss);
}

TEST(FrameTest, VersionMismatchIsFailedPrecondition) {
  // A peer speaking a different protocol version is a deployment skew,
  // not corruption — it gets its own code so operators can tell.
  std::string wire = EncodeFrame(FrameType::kHello, "x");
  wire[4] = static_cast<char>(kProtocolVersion + 1);
  EXPECT_EQ(DecodeFrameHeader(wire).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(FrameTest, UnknownTypeIsRejected) {
  std::string wire = EncodeFrame(FrameType::kHello, "x");
  wire[6] = 99;  // type low byte
  EXPECT_FALSE(DecodeFrameHeader(wire).ok());
  wire[6] = 0;  // type 0 is also unknown
  EXPECT_FALSE(DecodeFrameHeader(wire).ok());
}

TEST(FrameTest, OversizedLengthRejectedBeforeAllocation) {
  // A hostile length field (4 GiB-as-u32, or anything over the cap) must
  // be rejected from the header alone — DecodeFrameHeader never sees
  // payload bytes, so passing only the 16-byte header proves no
  // allocation can have happened.
  std::string header = EncodeFrame(FrameType::kSubmit, "").substr(
      0, kFrameHeaderSize);
  const std::uint32_t huge = 0xFFFFFFFFu;  // -1 as unsigned
  std::memcpy(&header[8], &huge, sizeof(huge));
  Status status = DecodeFrameHeader(header).status();
  EXPECT_EQ(status.code(), StatusCode::kDataLoss);

  const std::uint32_t just_over = kMaxFramePayload + 1;
  std::memcpy(&header[8], &just_over, sizeof(just_over));
  EXPECT_EQ(DecodeFrameHeader(header).status().code(),
            StatusCode::kDataLoss);

  // A caller-tightened cap applies the same way.
  const std::uint32_t modest = 1024;
  std::memcpy(&header[8], &modest, sizeof(modest));
  EXPECT_FALSE(DecodeFrameHeader(header, /*max_payload=*/512).ok());
}

TEST(FrameTest, TruncatedPayloadIsDataLoss) {
  const std::string wire = EncodeFrame(FrameType::kSubmit, "payload bytes");
  for (std::size_t cut = kFrameHeaderSize; cut < wire.size(); ++cut) {
    Status status = DecodeFrame(wire.substr(0, cut)).status();
    EXPECT_EQ(status.code(), StatusCode::kDataLoss) << "cut " << cut;
  }
}

TEST(FrameTest, TrailingBytesAreRejected) {
  std::string wire = EncodeFrame(FrameType::kSubmit, "payload");
  wire += "extra";
  EXPECT_EQ(DecodeFrame(wire).status().code(), StatusCode::kDataLoss);
}

TEST(FrameTest, PayloadCorruptionFailsTheChecksum) {
  const std::string wire = EncodeFrame(FrameType::kSubmit, "sensitive data");
  for (std::size_t pos = kFrameHeaderSize; pos < wire.size(); ++pos) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mangled = wire;
      mangled[pos] = static_cast<char>(mangled[pos] ^ (1 << bit));
      EXPECT_EQ(DecodeFrame(mangled).status().code(), StatusCode::kDataLoss)
          << "pos " << pos << " bit " << bit;
    }
  }
}

TEST(FrameTest, EveryByteMangleFailsCleanly) {
  // Fuzz the whole frame (header included): any single-byte mangle either
  // still decodes (it restored the original byte) or fails with one of
  // the documented codes.
  Rng rng(7);
  const std::string wire = EncodeFrame(FrameType::kHeartbeat, "nonce!");
  for (int trial = 0; trial < 2000; ++trial) {
    std::string mangled = wire;
    const std::size_t pos = rng.UniformIndex(mangled.size());
    mangled[pos] = static_cast<char>(rng.UniformIndex(256));
    Status status = DecodeFrame(mangled).status();
    if (!status.ok()) {
      EXPECT_TRUE(status.code() == StatusCode::kDataLoss ||
                  status.code() == StatusCode::kFailedPrecondition)
          << status.ToString();
    }
  }
}

}  // namespace
}  // namespace condensa::net
