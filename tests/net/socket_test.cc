// Socket layer: framed request/response over real loopback TCP, timeout
// contracts, clean-close vs mid-frame-close discrimination, and failure
// injection via the net.* probes.

#include "net/socket.h"

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <string>
#include <thread>

#include "common/failpoint.h"
#include "net/frame.h"

namespace condensa::net {
namespace {

class SocketTest : public ::testing::Test {
 protected:
  void TearDown() override { condensa::FailPoint::Reset(); }
};

TEST_F(SocketTest, ListenOnPortZeroResolvesAPort) {
  StatusOr<TcpListener> listener = TcpListener::Listen("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok()) << listener.status().ToString();
  EXPECT_GT(listener->port(), 0);
}

TEST_F(SocketTest, FrameRoundTripOverLoopback) {
  StatusOr<TcpListener> listener = TcpListener::Listen("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok());

  std::thread server([&listener] {
    StatusOr<TcpConnection> conn = listener->Accept(5000);
    ASSERT_TRUE(conn.ok()) << conn.status().ToString();
    StatusOr<Frame> frame = conn->RecvFrame(5000);
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    EXPECT_EQ(frame->type, FrameType::kHeartbeat);
    EXPECT_EQ(frame->payload, "ping");
    ASSERT_TRUE(conn->SendFrame(FrameType::kHeartbeatAck, "pong", 5000).ok());
  });

  StatusOr<TcpConnection> client =
      TcpConnection::Connect("127.0.0.1", listener->port(), 5000);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  ASSERT_TRUE(client->SendFrame(FrameType::kHeartbeat, "ping", 5000).ok());
  StatusOr<Frame> reply = client->RecvFrame(5000);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->type, FrameType::kHeartbeatAck);
  EXPECT_EQ(reply->payload, "pong");
  server.join();
}

TEST_F(SocketTest, LargeFrameCrossesTheSocketBufferBoundary) {
  // 4 MiB forces many partial send()/recv() iterations.
  const std::string big(4 * 1024 * 1024, 'x');
  StatusOr<TcpListener> listener = TcpListener::Listen("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok());
  std::thread server([&listener, &big] {
    StatusOr<TcpConnection> conn = listener->Accept(5000);
    ASSERT_TRUE(conn.ok());
    StatusOr<Frame> frame = conn->RecvFrame(20000);
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    EXPECT_EQ(frame->payload.size(), big.size());
    EXPECT_EQ(frame->payload, big);
  });
  StatusOr<TcpConnection> client =
      TcpConnection::Connect("127.0.0.1", listener->port(), 5000);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->SendFrame(FrameType::kSubmit, big, 20000).ok());
  server.join();
}

TEST_F(SocketTest, ConnectToClosedPortIsUnavailable) {
  // Bind a port, close the listener, and dial it: refused.
  StatusOr<TcpListener> listener = TcpListener::Listen("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok());
  const std::uint16_t port = listener->port();
  listener->Close();
  Status status = TcpConnection::Connect("127.0.0.1", port, 1000).status();
  EXPECT_EQ(status.code(), StatusCode::kUnavailable) << status.ToString();
}

TEST_F(SocketTest, RecvTimesOutOnASilentPeer) {
  StatusOr<TcpListener> listener = TcpListener::Listen("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok());
  StatusOr<TcpConnection> client =
      TcpConnection::Connect("127.0.0.1", listener->port(), 2000);
  ASSERT_TRUE(client.ok());
  StatusOr<TcpConnection> server = listener->Accept(2000);
  ASSERT_TRUE(server.ok());
  Status status = client->RecvFrame(100).status();
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_NE(status.message().find("timed out"), std::string::npos)
      << status.ToString();
}

TEST_F(SocketTest, AcceptTimesOutWithoutAConnection) {
  StatusOr<TcpListener> listener = TcpListener::Listen("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok());
  Status status = listener->Accept(100).status();
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
}

TEST_F(SocketTest, CleanCloseBetweenFramesIsUnavailable) {
  // A peer that closes between frames ended the session deliberately —
  // that is kUnavailable ("peer closed"), distinct from corruption.
  StatusOr<TcpListener> listener = TcpListener::Listen("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok());
  StatusOr<TcpConnection> client =
      TcpConnection::Connect("127.0.0.1", listener->port(), 2000);
  ASSERT_TRUE(client.ok());
  StatusOr<TcpConnection> server = listener->Accept(2000);
  ASSERT_TRUE(server.ok());
  server->Close();
  Status status = client->RecvFrame(2000).status();
  EXPECT_EQ(status.code(), StatusCode::kUnavailable) << status.ToString();
  EXPECT_NE(status.message().find("closed"), std::string::npos);
}

TEST_F(SocketTest, MidFrameCloseIsDataLoss) {
  // A peer that dies mid-frame leaves a truncated stream: kDataLoss.
  StatusOr<TcpListener> listener = TcpListener::Listen("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok());
  StatusOr<TcpConnection> client =
      TcpConnection::Connect("127.0.0.1", listener->port(), 2000);
  ASSERT_TRUE(client.ok());
  StatusOr<TcpConnection> server = listener->Accept(2000);
  ASSERT_TRUE(server.ok());

  // Push half a frame through the raw fd, then close.
  const std::string wire = EncodeFrame(FrameType::kSubmit, "payload");
  ASSERT_GT(wire.size(), 4u);
  ASSERT_EQ(::send(server->fd(), wire.data(), wire.size() / 2, 0),
            static_cast<ssize_t>(wire.size() / 2));
  server->Close();
  Status status = client->RecvFrame(2000).status();
  EXPECT_EQ(status.code(), StatusCode::kDataLoss) << status.ToString();
}

TEST_F(SocketTest, MidFrameTimeoutIsDataLoss) {
  // A peer that stalls after sending PART of a frame has desynced the
  // stream: the partial bytes were consumed, so retrying the recv would
  // read from mid-frame. That must surface as kDataLoss — never as the
  // retryable kUnavailable an idle (zero-byte) timeout yields.
  StatusOr<TcpListener> listener = TcpListener::Listen("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok());
  StatusOr<TcpConnection> client =
      TcpConnection::Connect("127.0.0.1", listener->port(), 2000);
  ASSERT_TRUE(client.ok());
  StatusOr<TcpConnection> server = listener->Accept(2000);
  ASSERT_TRUE(server.ok());

  const std::string wire = EncodeFrame(FrameType::kSubmit, "payload");
  ASSERT_EQ(::send(server->fd(), wire.data(), wire.size() / 2, 0),
            static_cast<ssize_t>(wire.size() / 2));
  // No close: the peer is alive but silent mid-frame.
  Status status = client->RecvFrame(150).status();
  EXPECT_EQ(status.code(), StatusCode::kDataLoss) << status.ToString();
  EXPECT_NE(status.message().find("mid-frame"), std::string::npos)
      << status.ToString();
}

TEST_F(SocketTest, TrickledFrameCannotOutliveTheOverallDeadline) {
  // timeout_ms bounds the WHOLE frame, not each poll iteration: a peer
  // dripping one byte per interval must not stretch a single receive
  // (and everything stacked on it, like the ack wait) indefinitely.
  StatusOr<TcpListener> listener = TcpListener::Listen("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok());
  StatusOr<TcpConnection> client =
      TcpConnection::Connect("127.0.0.1", listener->port(), 2000);
  ASSERT_TRUE(client.ok());
  StatusOr<TcpConnection> server = listener->Accept(2000);
  ASSERT_TRUE(server.ok());

  const std::string wire = EncodeFrame(FrameType::kHeartbeat, "hi");
  std::thread trickler([&server, &wire] {
    for (char byte : wire) {
      if (::send(server->fd(), &byte, 1, 0) != 1) {
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(40));
    }
  });
  const auto start = std::chrono::steady_clock::now();
  Status status = client->RecvFrame(250).status();
  const auto elapsed = std::chrono::duration<double, std::milli>(
      std::chrono::steady_clock::now() - start);
  trickler.join();
  // ~18 bytes at 40 ms each is ~700 ms of trickle; per-iteration
  // timeouts would have waited it out and succeeded.
  EXPECT_EQ(status.code(), StatusCode::kDataLoss) << status.ToString();
  EXPECT_LT(elapsed.count(), 600.0);
}

TEST_F(SocketTest, CorruptFrameOnTheWireIsDataLoss) {
  StatusOr<TcpListener> listener = TcpListener::Listen("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok());
  StatusOr<TcpConnection> client =
      TcpConnection::Connect("127.0.0.1", listener->port(), 2000);
  ASSERT_TRUE(client.ok());
  StatusOr<TcpConnection> server = listener->Accept(2000);
  ASSERT_TRUE(server.ok());

  std::string wire = EncodeFrame(FrameType::kSubmit, "payload");
  wire.back() ^= 0x40;  // corrupt the payload -> CRC mismatch
  ASSERT_EQ(::send(server->fd(), wire.data(), wire.size(), 0),
            static_cast<ssize_t>(wire.size()));
  Status status = client->RecvFrame(2000).status();
  EXPECT_EQ(status.code(), StatusCode::kDataLoss) << status.ToString();
}

TEST_F(SocketTest, RecvEnforcesTightenedPayloadCap) {
  StatusOr<TcpListener> listener = TcpListener::Listen("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok());
  StatusOr<TcpConnection> client =
      TcpConnection::Connect("127.0.0.1", listener->port(), 2000);
  ASSERT_TRUE(client.ok());
  StatusOr<TcpConnection> server = listener->Accept(2000);
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE(
      server->SendFrame(FrameType::kSubmit, std::string(2048, 'x'), 2000)
          .ok());
  // The receiver's cap is tighter than the sender's frame: rejected at
  // the header, before the payload would be read.
  Status status = client->RecvFrame(2000, /*max_payload=*/1024).status();
  EXPECT_EQ(status.code(), StatusCode::kDataLoss) << status.ToString();
}

TEST_F(SocketTest, ConnectFailpointInjectsDialFailure) {
  StatusOr<TcpListener> listener = TcpListener::Listen("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok());
  condensa::FailPoint::Arm("net.connect",
                           {.code = StatusCode::kUnavailable});
  Status status =
      TcpConnection::Connect("127.0.0.1", listener->port(), 2000).status();
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  condensa::FailPoint::Reset();
  EXPECT_TRUE(
      TcpConnection::Connect("127.0.0.1", listener->port(), 2000).ok());
}

TEST_F(SocketTest, SendAndRecvFailpointsSeverTheStream) {
  StatusOr<TcpListener> listener = TcpListener::Listen("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok());
  StatusOr<TcpConnection> client =
      TcpConnection::Connect("127.0.0.1", listener->port(), 2000);
  ASSERT_TRUE(client.ok());

  condensa::FailPoint::Arm("net.send", {.code = StatusCode::kUnavailable});
  EXPECT_FALSE(client->SendFrame(FrameType::kHeartbeat, "", 2000).ok());
  condensa::FailPoint::Reset();

  condensa::FailPoint::Arm("net.recv", {.code = StatusCode::kUnavailable});
  EXPECT_FALSE(client->RecvFrame(100).ok());
}

}  // namespace
}  // namespace condensa::net
