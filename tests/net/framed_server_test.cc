// FramedServer: the shared accept/recv/dispatch loop. Covers the
// dispatch actions (continue / end-session / stop-server), built-in
// Goodbye handling, the session-context hook, in-band error replies,
// and Stop() from another thread.

#include "net/framed_server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>

#include "net/frame.h"
#include "net/wire.h"

namespace condensa::net {
namespace {

FramedServerConfig FastConfig() {
  FramedServerConfig config;
  config.poll_ms = 10.0;
  config.idle_timeout_ms = 2000.0;
  return config;
}

TEST(FramedServerConfigTest, RejectsNonPositiveTimeouts) {
  FramedServerConfig config;
  config.poll_ms = 0.0;
  EXPECT_FALSE(config.Validate().ok());
  config = FramedServerConfig();
  config.idle_timeout_ms = -1.0;
  EXPECT_FALSE(config.Validate().ok());
  EXPECT_TRUE(FramedServerConfig().Validate().ok());
}

TEST(FramedServerTest, EchoesFramesAndHandlesGoodbye) {
  StatusOr<TcpListener> listener = TcpListener::Listen("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok()) << listener.status().ToString();
  FramedServer server(*std::move(listener), FastConfig());
  const std::uint16_t port = server.port();

  std::thread serving([&server] {
    Status run = server.Run([](TcpConnection& conn, const Frame& frame) {
      EXPECT_TRUE(
          conn.SendFrame(frame.type, frame.payload + "-echo", 1000.0).ok());
      return SessionAction::kContinue;
    });
    EXPECT_TRUE(run.ok()) << run.ToString();
  });

  StatusOr<TcpConnection> client =
      TcpConnection::Connect("127.0.0.1", port, 2000.0);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(
        client->SendFrame(FrameType::kHeartbeat, "ping", 1000.0).ok());
    StatusOr<Frame> reply = client->RecvFrame(2000.0);
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    EXPECT_EQ(reply->type, FrameType::kHeartbeat);
    EXPECT_EQ(reply->payload, "ping-echo");
  }
  // Goodbye ends the session without reaching the handler; the server
  // goes back to accept and a new client can connect.
  ASSERT_TRUE(client->SendFrame(FrameType::kGoodbye, "", 1000.0).ok());
  client->Close();

  StatusOr<TcpConnection> second =
      TcpConnection::Connect("127.0.0.1", port, 2000.0);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  ASSERT_TRUE(second->SendFrame(FrameType::kHeartbeat, "again", 1000.0).ok());
  StatusOr<Frame> reply = second->RecvFrame(2000.0);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->payload, "again-echo");

  server.Stop();
  serving.join();
}

TEST(FramedServerTest, StopServerActionLeavesRunLoop) {
  StatusOr<TcpListener> listener = TcpListener::Listen("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok());
  FramedServer server(*std::move(listener), FastConfig());
  const std::uint16_t port = server.port();

  std::thread serving([&server] {
    Status run = server.Run([](TcpConnection& conn, const Frame& frame) {
      EXPECT_TRUE(conn.SendFrame(frame.type, "done", 1000.0).ok());
      return SessionAction::kStopServer;
    });
    EXPECT_TRUE(run.ok()) << run.ToString();
  });

  StatusOr<TcpConnection> client =
      TcpConnection::Connect("127.0.0.1", port, 2000.0);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->SendFrame(FrameType::kFinish, "", 1000.0).ok());
  StatusOr<Frame> reply = client->RecvFrame(2000.0);
  ASSERT_TRUE(reply.ok());
  // Run() must return on its own — no Stop() call here.
  serving.join();
}

TEST(FramedServerTest, EndSessionDropsBackToAccept) {
  StatusOr<TcpListener> listener = TcpListener::Listen("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok());
  FramedServer server(*std::move(listener), FastConfig());
  const std::uint16_t port = server.port();
  std::atomic<int> frames{0};

  std::thread serving([&server, &frames] {
    (void)server.Run([&frames](TcpConnection&, const Frame&) {
      frames.fetch_add(1);
      return SessionAction::kEndSession;
    });
  });

  // The first frame ends the session; a second frame on the same
  // connection is never dispatched, but a fresh connection is served.
  StatusOr<TcpConnection> first =
      TcpConnection::Connect("127.0.0.1", port, 2000.0);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first->SendFrame(FrameType::kHeartbeat, "", 1000.0).ok());
  StatusOr<TcpConnection> second =
      TcpConnection::Connect("127.0.0.1", port, 2000.0);
  ASSERT_TRUE(second.ok());
  ASSERT_TRUE(second->SendFrame(FrameType::kHeartbeat, "", 1000.0).ok());
  // The second session's frame arrives only after the first was dropped.
  while (frames.load() < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  server.Stop();
  serving.join();
  EXPECT_EQ(frames.load(), 2);
}

TEST(FramedServerTest, SessionHookContextLivesForTheSession) {
  StatusOr<TcpListener> listener = TcpListener::Listen("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok());
  FramedServer server(*std::move(listener), FastConfig());
  const std::uint16_t port = server.port();

  // The hook parks a token whose destructor flips a flag; the flag must
  // stay false while the session is open.
  std::atomic<int> sessions{0};
  std::atomic<int> destroyed{0};
  struct Token {
    std::atomic<int>* counter;
    ~Token() { counter->fetch_add(1); }
  };
  server.set_on_session(
      [&sessions, &destroyed](TcpConnection&) -> std::shared_ptr<void> {
        sessions.fetch_add(1);
        auto token = std::make_shared<Token>();
        token->counter = &destroyed;
        return token;
      });

  std::thread serving([&server] {
    (void)server.Run([](TcpConnection& conn, const Frame&) {
      EXPECT_TRUE(conn.SendFrame(FrameType::kHeartbeatAck, "", 1000.0).ok());
      return SessionAction::kContinue;
    });
  });

  {
    StatusOr<TcpConnection> client =
        TcpConnection::Connect("127.0.0.1", port, 2000.0);
    ASSERT_TRUE(client.ok());
    ASSERT_TRUE(client->SendFrame(FrameType::kHeartbeat, "", 1000.0).ok());
    StatusOr<Frame> reply = client->RecvFrame(2000.0);
    ASSERT_TRUE(reply.ok());
    EXPECT_EQ(sessions.load(), 1);
    EXPECT_EQ(destroyed.load(), 0);
    ASSERT_TRUE(client->SendFrame(FrameType::kGoodbye, "", 1000.0).ok());
  }
  while (destroyed.load() < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  server.Stop();
  serving.join();
  EXPECT_EQ(sessions.load(), 1);
  EXPECT_EQ(destroyed.load(), 1);
}

TEST(FramedServerTest, SendErrorFrameRoundTripsStatus) {
  StatusOr<TcpListener> listener = TcpListener::Listen("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok());
  FramedServer server(*std::move(listener), FastConfig());
  const std::uint16_t port = server.port();

  std::thread serving([&server] {
    (void)server.Run([](TcpConnection& conn, const Frame&) {
      SendErrorFrame(conn, InvalidArgumentError("bad request"), 1000.0);
      return SessionAction::kContinue;
    });
  });

  StatusOr<TcpConnection> client =
      TcpConnection::Connect("127.0.0.1", port, 2000.0);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->SendFrame(FrameType::kSubmit, "x", 1000.0).ok());
  StatusOr<Frame> reply = client->RecvFrame(2000.0);
  ASSERT_TRUE(reply.ok());
  ASSERT_EQ(reply->type, FrameType::kError);
  StatusOr<ErrorMessage> error = DecodeError(reply->payload);
  ASSERT_TRUE(error.ok());
  Status status = ErrorToStatus(*error);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("bad request"), std::string::npos);

  server.Stop();
  serving.join();
}

}  // namespace
}  // namespace condensa::net
