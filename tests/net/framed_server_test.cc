// FramedServer: the shared accept/recv/dispatch loop. Covers the
// dispatch actions (continue / end-session / stop-server), built-in
// Goodbye handling, the session-context hook, in-band error replies,
// and Stop() from another thread.

#include "net/framed_server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/frame.h"
#include "net/wire.h"

namespace condensa::net {
namespace {

FramedServerConfig FastConfig() {
  FramedServerConfig config;
  config.poll_ms = 10.0;
  config.idle_timeout_ms = 2000.0;
  return config;
}

TEST(FramedServerConfigTest, RejectsNonPositiveTimeouts) {
  FramedServerConfig config;
  config.poll_ms = 0.0;
  EXPECT_FALSE(config.Validate().ok());
  config = FramedServerConfig();
  config.idle_timeout_ms = -1.0;
  EXPECT_FALSE(config.Validate().ok());
  EXPECT_TRUE(FramedServerConfig().Validate().ok());
}

TEST(FramedServerConfigTest, RejectsZeroSessionsAndNegativeRetryHint) {
  FramedServerConfig config;
  config.max_sessions = 0;
  EXPECT_FALSE(config.Validate().ok());
  config = FramedServerConfig();
  config.reject_retry_after_ms = -1.0;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(FramedServerTest, EchoesFramesAndHandlesGoodbye) {
  StatusOr<TcpListener> listener = TcpListener::Listen("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok()) << listener.status().ToString();
  FramedServer server(*std::move(listener), FastConfig());
  const std::uint16_t port = server.port();

  std::thread serving([&server] {
    Status run = server.Run([](TcpConnection& conn, const Frame& frame) {
      EXPECT_TRUE(
          conn.SendFrame(frame.type, frame.payload + "-echo", 1000.0).ok());
      return SessionAction::kContinue;
    });
    EXPECT_TRUE(run.ok()) << run.ToString();
  });

  StatusOr<TcpConnection> client =
      TcpConnection::Connect("127.0.0.1", port, 2000.0);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(
        client->SendFrame(FrameType::kHeartbeat, "ping", 1000.0).ok());
    StatusOr<Frame> reply = client->RecvFrame(2000.0);
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    EXPECT_EQ(reply->type, FrameType::kHeartbeat);
    EXPECT_EQ(reply->payload, "ping-echo");
  }
  // Goodbye ends the session without reaching the handler; the server
  // goes back to accept and a new client can connect.
  ASSERT_TRUE(client->SendFrame(FrameType::kGoodbye, "", 1000.0).ok());
  client->Close();

  StatusOr<TcpConnection> second =
      TcpConnection::Connect("127.0.0.1", port, 2000.0);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  ASSERT_TRUE(second->SendFrame(FrameType::kHeartbeat, "again", 1000.0).ok());
  StatusOr<Frame> reply = second->RecvFrame(2000.0);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->payload, "again-echo");

  server.Stop();
  serving.join();
}

TEST(FramedServerTest, StopServerActionLeavesRunLoop) {
  StatusOr<TcpListener> listener = TcpListener::Listen("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok());
  FramedServer server(*std::move(listener), FastConfig());
  const std::uint16_t port = server.port();

  std::thread serving([&server] {
    Status run = server.Run([](TcpConnection& conn, const Frame& frame) {
      EXPECT_TRUE(conn.SendFrame(frame.type, "done", 1000.0).ok());
      return SessionAction::kStopServer;
    });
    EXPECT_TRUE(run.ok()) << run.ToString();
  });

  StatusOr<TcpConnection> client =
      TcpConnection::Connect("127.0.0.1", port, 2000.0);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->SendFrame(FrameType::kFinish, "", 1000.0).ok());
  StatusOr<Frame> reply = client->RecvFrame(2000.0);
  ASSERT_TRUE(reply.ok());
  // Run() must return on its own — no Stop() call here.
  serving.join();
}

TEST(FramedServerTest, EndSessionDropsBackToAccept) {
  StatusOr<TcpListener> listener = TcpListener::Listen("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok());
  FramedServer server(*std::move(listener), FastConfig());
  const std::uint16_t port = server.port();
  std::atomic<int> frames{0};

  std::thread serving([&server, &frames] {
    (void)server.Run([&frames](TcpConnection&, const Frame&) {
      frames.fetch_add(1);
      return SessionAction::kEndSession;
    });
  });

  // The first frame ends the session; a second frame on the same
  // connection is never dispatched, but a fresh connection is served.
  StatusOr<TcpConnection> first =
      TcpConnection::Connect("127.0.0.1", port, 2000.0);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first->SendFrame(FrameType::kHeartbeat, "", 1000.0).ok());
  StatusOr<TcpConnection> second =
      TcpConnection::Connect("127.0.0.1", port, 2000.0);
  ASSERT_TRUE(second.ok());
  ASSERT_TRUE(second->SendFrame(FrameType::kHeartbeat, "", 1000.0).ok());
  // The second session's frame arrives only after the first was dropped.
  while (frames.load() < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  server.Stop();
  serving.join();
  EXPECT_EQ(frames.load(), 2);
}

TEST(FramedServerTest, SessionHookContextLivesForTheSession) {
  StatusOr<TcpListener> listener = TcpListener::Listen("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok());
  FramedServer server(*std::move(listener), FastConfig());
  const std::uint16_t port = server.port();

  // The hook parks a token whose destructor flips a flag; the flag must
  // stay false while the session is open.
  std::atomic<int> sessions{0};
  std::atomic<int> destroyed{0};
  struct Token {
    std::atomic<int>* counter;
    ~Token() { counter->fetch_add(1); }
  };
  server.set_on_session(
      [&sessions, &destroyed](TcpConnection&) -> std::shared_ptr<void> {
        sessions.fetch_add(1);
        auto token = std::make_shared<Token>();
        token->counter = &destroyed;
        return token;
      });

  std::thread serving([&server] {
    (void)server.Run([](TcpConnection& conn, const Frame&) {
      EXPECT_TRUE(conn.SendFrame(FrameType::kHeartbeatAck, "", 1000.0).ok());
      return SessionAction::kContinue;
    });
  });

  {
    StatusOr<TcpConnection> client =
        TcpConnection::Connect("127.0.0.1", port, 2000.0);
    ASSERT_TRUE(client.ok());
    ASSERT_TRUE(client->SendFrame(FrameType::kHeartbeat, "", 1000.0).ok());
    StatusOr<Frame> reply = client->RecvFrame(2000.0);
    ASSERT_TRUE(reply.ok());
    EXPECT_EQ(sessions.load(), 1);
    EXPECT_EQ(destroyed.load(), 0);
    ASSERT_TRUE(client->SendFrame(FrameType::kGoodbye, "", 1000.0).ok());
  }
  while (destroyed.load() < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  server.Stop();
  serving.join();
  EXPECT_EQ(sessions.load(), 1);
  EXPECT_EQ(destroyed.load(), 1);
}

TEST(FramedServerTest, SendErrorFrameRoundTripsStatus) {
  StatusOr<TcpListener> listener = TcpListener::Listen("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok());
  FramedServer server(*std::move(listener), FastConfig());
  const std::uint16_t port = server.port();

  std::thread serving([&server] {
    (void)server.Run([](TcpConnection& conn, const Frame&) {
      SendErrorFrame(conn, InvalidArgumentError("bad request"), 1000.0);
      return SessionAction::kContinue;
    });
  });

  StatusOr<TcpConnection> client =
      TcpConnection::Connect("127.0.0.1", port, 2000.0);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->SendFrame(FrameType::kSubmit, "x", 1000.0).ok());
  StatusOr<Frame> reply = client->RecvFrame(2000.0);
  ASSERT_TRUE(reply.ok());
  ASSERT_EQ(reply->type, FrameType::kError);
  StatusOr<ErrorMessage> error = DecodeError(reply->payload);
  ASSERT_TRUE(error.ok());
  Status status = ErrorToStatus(*error);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("bad request"), std::string::npos);

  server.Stop();
  serving.join();
}

TEST(FramedServerPoolTest, ServesSessionsConcurrently) {
  StatusOr<TcpListener> listener = TcpListener::Listen("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok());
  FramedServerConfig config = FastConfig();
  config.max_sessions = 4;
  FramedServer server(*std::move(listener), config);
  const std::uint16_t port = server.port();

  // Each handler call blocks until all four sessions have a frame in
  // flight — impossible under serial dispatch, so reaching the barrier
  // proves concurrency.
  std::atomic<int> arrived{0};
  std::thread serving([&server, &arrived] {
    (void)server.Run([&arrived](TcpConnection& conn, const Frame&) {
      arrived.fetch_add(1);
      while (arrived.load() < 4) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      EXPECT_TRUE(conn.SendFrame(FrameType::kHeartbeatAck, "", 1000.0).ok());
      return SessionAction::kContinue;
    });
  });

  std::vector<std::thread> clients;
  std::atomic<int> answered{0};
  for (int i = 0; i < 4; ++i) {
    clients.emplace_back([port, &answered] {
      StatusOr<TcpConnection> client =
          TcpConnection::Connect("127.0.0.1", port, 2000.0);
      ASSERT_TRUE(client.ok());
      ASSERT_TRUE(client->SendFrame(FrameType::kHeartbeat, "", 1000.0).ok());
      StatusOr<Frame> reply = client->RecvFrame(5000.0);
      ASSERT_TRUE(reply.ok()) << reply.status().ToString();
      EXPECT_EQ(reply->type, FrameType::kHeartbeatAck);
      answered.fetch_add(1);
      ASSERT_TRUE(client->SendFrame(FrameType::kGoodbye, "", 1000.0).ok());
    });
  }
  for (auto& t : clients) {
    t.join();
  }
  EXPECT_EQ(answered.load(), 4);
  server.Stop();
  serving.join();
  EXPECT_EQ(server.rejected_sessions(), 0u);
}

TEST(FramedServerPoolTest, RejectsBeyondCapInBand) {
  StatusOr<TcpListener> listener = TcpListener::Listen("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok());
  FramedServerConfig config = FastConfig();
  config.max_sessions = 2;
  config.reject_retry_after_ms = 123.0;
  FramedServer server(*std::move(listener), config);
  const std::uint16_t port = server.port();
  std::atomic<int> rejected_hook{0};
  server.set_on_session_rejected([&rejected_hook] { rejected_hook++; });

  std::thread serving([&server] {
    (void)server.Run([](TcpConnection& conn, const Frame&) {
      EXPECT_TRUE(conn.SendFrame(FrameType::kHeartbeatAck, "", 1000.0).ok());
      return SessionAction::kContinue;
    });
  });

  // Fill both slots and confirm they are actively serving.
  std::vector<TcpConnection> held;
  for (int i = 0; i < 2; ++i) {
    StatusOr<TcpConnection> c =
        TcpConnection::Connect("127.0.0.1", port, 2000.0);
    ASSERT_TRUE(c.ok());
    ASSERT_TRUE(c->SendFrame(FrameType::kHeartbeat, "", 1000.0).ok());
    StatusOr<Frame> reply = c->RecvFrame(2000.0);
    ASSERT_TRUE(reply.ok());
    held.push_back(*std::move(c));
  }

  // The third connection is rejected in-band with a retry-after hint.
  StatusOr<TcpConnection> extra =
      TcpConnection::Connect("127.0.0.1", port, 2000.0);
  ASSERT_TRUE(extra.ok());
  StatusOr<Frame> refusal = extra->RecvFrame(2000.0);
  ASSERT_TRUE(refusal.ok()) << refusal.status().ToString();
  ASSERT_EQ(refusal->type, FrameType::kError);
  StatusOr<ErrorMessage> error = DecodeError(refusal->payload);
  ASSERT_TRUE(error.ok());
  Status status = ErrorToStatus(*error);
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_NE(status.message().find("retry-after-ms=123"), std::string::npos);
  EXPECT_GE(server.rejected_sessions(), 1u);
  EXPECT_GE(rejected_hook.load(), 1);

  // Freeing a slot lets a new client in.
  ASSERT_TRUE(held[0].SendFrame(FrameType::kGoodbye, "", 1000.0).ok());
  held[0].Close();
  bool served = false;
  for (int attempt = 0; attempt < 50 && !served; ++attempt) {
    StatusOr<TcpConnection> again =
        TcpConnection::Connect("127.0.0.1", port, 2000.0);
    ASSERT_TRUE(again.ok());
    ASSERT_TRUE(again->SendFrame(FrameType::kHeartbeat, "", 1000.0).ok());
    StatusOr<Frame> retry_reply = again->RecvFrame(2000.0);
    served = retry_reply.ok() && retry_reply->type == FrameType::kHeartbeatAck;
    if (!served) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
  EXPECT_TRUE(served);

  server.Stop();
  serving.join();
}

TEST(FramedServerPoolTest, SlowLorisSessionIsDroppedByIdleTimeout) {
  StatusOr<TcpListener> listener = TcpListener::Listen("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok());
  FramedServerConfig config = FastConfig();
  config.max_sessions = 2;
  config.idle_timeout_ms = 150.0;
  FramedServer server(*std::move(listener), config);
  const std::uint16_t port = server.port();

  std::thread serving([&server] {
    (void)server.Run([](TcpConnection& conn, const Frame&) {
      EXPECT_TRUE(conn.SendFrame(FrameType::kHeartbeatAck, "", 1000.0).ok());
      return SessionAction::kContinue;
    });
  });

  // A client that connects and sends nothing occupies a slot only until
  // the idle timeout reclaims it.
  StatusOr<TcpConnection> loris =
      TcpConnection::Connect("127.0.0.1", port, 2000.0);
  ASSERT_TRUE(loris.ok());
  for (int attempt = 0; attempt < 100 && server.active_sessions() < 1;
       ++attempt) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  for (int attempt = 0; attempt < 200 && server.active_sessions() > 0;
       ++attempt) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(server.active_sessions(), 0u);

  // The reclaimed slot serves a well-behaved client.
  StatusOr<TcpConnection> client =
      TcpConnection::Connect("127.0.0.1", port, 2000.0);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->SendFrame(FrameType::kHeartbeat, "", 1000.0).ok());
  StatusOr<Frame> reply = client->RecvFrame(2000.0);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->type, FrameType::kHeartbeatAck);

  server.Stop();
  serving.join();
}

TEST(FramedServerPoolTest, StopJoinsAllSessionThreads) {
  StatusOr<TcpListener> listener = TcpListener::Listen("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok());
  FramedServerConfig config = FastConfig();
  config.max_sessions = 3;
  FramedServer server(*std::move(listener), config);
  const std::uint16_t port = server.port();

  std::thread serving([&server] {
    Status run = server.Run([](TcpConnection& conn, const Frame&) {
      EXPECT_TRUE(conn.SendFrame(FrameType::kHeartbeatAck, "", 1000.0).ok());
      return SessionAction::kContinue;
    });
    EXPECT_TRUE(run.ok()) << run.ToString();
  });

  // Leave two sessions open (no Goodbye) and Stop() under them.
  std::vector<TcpConnection> held;
  for (int i = 0; i < 2; ++i) {
    StatusOr<TcpConnection> c =
        TcpConnection::Connect("127.0.0.1", port, 2000.0);
    ASSERT_TRUE(c.ok());
    ASSERT_TRUE(c->SendFrame(FrameType::kHeartbeat, "", 1000.0).ok());
    StatusOr<Frame> reply = c->RecvFrame(2000.0);
    ASSERT_TRUE(reply.ok());
    held.push_back(*std::move(c));
  }
  server.Stop();
  serving.join();  // must not hang: all pool threads observed stop_
  EXPECT_EQ(server.active_sessions(), 0u);
}

}  // namespace
}  // namespace condensa::net
