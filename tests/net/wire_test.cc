// Wire payload codecs: bit-exact round trips, bounds-checked reads, and
// validate-before-allocate length handling.

#include "net/wire.h"

#include <gtest/gtest.h>

#include <cstring>
#include <cmath>
#include <limits>
#include <string>

#include "common/random.h"
#include "common/status.h"
#include "linalg/vector.h"

namespace condensa::net {
namespace {

using linalg::Vector;

TEST(WireReaderTest, ScalarRoundTrip) {
  WireWriter writer;
  writer.PutU8(7);
  writer.PutU16(0xBEEF);
  writer.PutU32(0xDEADBEEFu);
  writer.PutU64(0x0123456789ABCDEFull);
  writer.PutDouble(-0.0);
  writer.PutString("blob");

  WireReader reader(writer.buffer());
  std::uint8_t u8 = 0;
  std::uint16_t u16 = 0;
  std::uint32_t u32 = 0;
  std::uint64_t u64 = 0;
  double d = 1.0;
  std::string s;
  ASSERT_TRUE(reader.ReadU8(&u8).ok());
  ASSERT_TRUE(reader.ReadU16(&u16).ok());
  ASSERT_TRUE(reader.ReadU32(&u32).ok());
  ASSERT_TRUE(reader.ReadU64(&u64).ok());
  ASSERT_TRUE(reader.ReadDouble(&d).ok());
  ASSERT_TRUE(reader.ReadString(&s).ok());
  ASSERT_TRUE(reader.ExpectDone().ok());
  EXPECT_EQ(u8, 7);
  EXPECT_EQ(u16, 0xBEEF);
  EXPECT_EQ(u32, 0xDEADBEEFu);
  EXPECT_EQ(u64, 0x0123456789ABCDEFull);
  EXPECT_TRUE(std::signbit(d));  // -0.0 survives bit-exactly
  EXPECT_EQ(s, "blob");
}

TEST(WireReaderTest, ReadsPastTheEndAreDataLoss) {
  WireWriter writer;
  writer.PutU32(5);
  WireReader reader(writer.buffer());
  std::uint64_t u64 = 0;
  EXPECT_EQ(reader.ReadU64(&u64).code(), StatusCode::kDataLoss);
  // The failed read did not consume anything.
  std::uint32_t u32 = 0;
  EXPECT_TRUE(reader.ReadU32(&u32).ok());
  EXPECT_EQ(u32, 5u);
}

TEST(WireReaderTest, StringLengthValidatedBeforeAllocation) {
  // A length prefix claiming far more bytes than the buffer holds must
  // fail from the bounds check, never allocate.
  WireWriter writer;
  writer.PutU32(0x7FFFFFFFu);  // huge claimed length, no bytes behind it
  WireReader reader(writer.buffer());
  std::string s;
  EXPECT_EQ(reader.ReadString(&s).code(), StatusCode::kDataLoss);
  EXPECT_TRUE(s.empty());
}

TEST(WireReaderTest, TrailingBytesAreRejected) {
  WireWriter writer;
  writer.PutU8(1);
  writer.PutU8(2);
  WireReader reader(writer.buffer());
  std::uint8_t u8 = 0;
  ASSERT_TRUE(reader.ReadU8(&u8).ok());
  EXPECT_EQ(reader.ExpectDone().code(), StatusCode::kDataLoss);
}

TEST(WireMessageTest, HelloRoundTrip) {
  HelloMessage msg;
  msg.shard_id = 3;
  msg.dim = 17;
  msg.group_size = 25;
  msg.split_rule = 1;
  msg.snapshot_interval = 512;
  msg.sync_every_append = 1;
  msg.queue_capacity = 2048;
  msg.batch_size = 16;
  msg.seed = 0xFEEDFACEull;
  msg.backend = "mdav";
  StatusOr<HelloMessage> decoded = DecodeHello(EncodeHello(msg));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->shard_id, msg.shard_id);
  EXPECT_EQ(decoded->dim, msg.dim);
  EXPECT_EQ(decoded->group_size, msg.group_size);
  EXPECT_EQ(decoded->split_rule, msg.split_rule);
  EXPECT_EQ(decoded->snapshot_interval, msg.snapshot_interval);
  EXPECT_EQ(decoded->sync_every_append, msg.sync_every_append);
  EXPECT_EQ(decoded->queue_capacity, msg.queue_capacity);
  EXPECT_EQ(decoded->batch_size, msg.batch_size);
  EXPECT_EQ(decoded->seed, msg.seed);
  EXPECT_EQ(decoded->backend, msg.backend);
}

TEST(WireMessageTest, HelloDefaultsToCondensationBackend) {
  HelloMessage msg;
  msg.dim = 4;
  msg.group_size = 10;
  StatusOr<HelloMessage> decoded = DecodeHello(EncodeHello(msg));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->backend, "condensation");
}

TEST(WireMessageTest, HelloRejectsEmptyBackend) {
  HelloMessage msg;
  msg.dim = 4;
  msg.group_size = 10;
  msg.backend = "";
  StatusOr<HelloMessage> decoded = DecodeHello(EncodeHello(msg));
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss);
}

TEST(WireMessageTest, HelloRejectsZeroOrHugeDim) {
  HelloMessage msg;
  msg.dim = 0;
  msg.group_size = 10;
  EXPECT_FALSE(DecodeHello(EncodeHello(msg)).ok());
  msg.dim = (1ull << 40);
  EXPECT_FALSE(DecodeHello(EncodeHello(msg)).ok());
}

TEST(WireMessageTest, SubmitRoundTripsRecordsBitExactly) {
  Rng rng(11);
  SubmitMessage msg;
  msg.base_sequence = 1234;
  msg.dim = 5;
  for (int i = 0; i < 9; ++i) {
    Vector record(5);
    for (std::size_t j = 0; j < 5; ++j) record[j] = rng.Gaussian();
    msg.records.push_back(record);
  }
  // Throw in the awkward bit patterns.
  Vector awkward(5);
  awkward[0] = -0.0;
  awkward[1] = std::numeric_limits<double>::denorm_min();
  awkward[2] = -std::numeric_limits<double>::max();
  awkward[3] = 1e-300;
  awkward[4] = 0.1 + 0.2;
  msg.records.push_back(awkward);

  StatusOr<SubmitMessage> decoded = DecodeSubmit(EncodeSubmit(msg));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->base_sequence, msg.base_sequence);
  ASSERT_EQ(decoded->records.size(), msg.records.size());
  for (std::size_t i = 0; i < msg.records.size(); ++i) {
    for (std::size_t j = 0; j < 5; ++j) {
      // Bitwise, not numeric, comparison.
      std::uint64_t want, got;
      static_assert(sizeof(double) == sizeof(std::uint64_t));
      std::memcpy(&want, &msg.records[i][j], sizeof(want));
      std::memcpy(&got, &decoded->records[i][j], sizeof(got));
      EXPECT_EQ(want, got) << "record " << i << " coord " << j;
    }
  }
}

TEST(WireMessageTest, SubmitCountMustMatchPayloadExactly) {
  SubmitMessage msg;
  msg.dim = 3;
  Vector record(3);
  msg.records.push_back(record);
  std::string payload = EncodeSubmit(msg);

  // Truncating record bytes breaks the count/payload agreement.
  EXPECT_FALSE(DecodeSubmit(payload.substr(0, payload.size() - 1)).ok());
  // So does appending.
  EXPECT_FALSE(DecodeSubmit(payload + "x").ok());
}

TEST(WireMessageTest, SubmitRejectsInsaneCounts) {
  // A forged header claiming 2^20+1 records with no bytes behind it must
  // fail before any allocation proportional to the claim.
  WireWriter writer;
  writer.PutU64(0);                 // base_sequence
  writer.PutU64(3);                 // dim
  writer.PutU64((1ull << 20) + 1);  // count over the cap
  EXPECT_FALSE(DecodeSubmit(writer.buffer()).ok());
}

TEST(WireMessageTest, AcksAndHeartbeatsRoundTrip) {
  HelloAckMessage hello_ack;
  hello_ack.worker_id = "w3";
  hello_ack.durable_total = 777;
  StatusOr<HelloAckMessage> ha = DecodeHelloAck(EncodeHelloAck(hello_ack));
  ASSERT_TRUE(ha.ok());
  EXPECT_EQ(ha->worker_id, "w3");
  EXPECT_EQ(ha->durable_total, 777u);

  SubmitAckMessage submit_ack;
  submit_ack.durable_total = 4242;
  StatusOr<SubmitAckMessage> sa =
      DecodeSubmitAck(EncodeSubmitAck(submit_ack));
  ASSERT_TRUE(sa.ok());
  EXPECT_EQ(sa->durable_total, 4242u);

  HeartbeatMessage beat;
  beat.nonce = 0xABCDull;
  StatusOr<HeartbeatMessage> hb = DecodeHeartbeat(EncodeHeartbeat(beat));
  ASSERT_TRUE(hb.ok());
  EXPECT_EQ(hb->nonce, 0xABCDull);

  HeartbeatAckMessage beat_ack;
  beat_ack.nonce = 0xABCDull;
  beat_ack.durable_total = 5;
  StatusOr<HeartbeatAckMessage> hba =
      DecodeHeartbeatAck(EncodeHeartbeatAck(beat_ack));
  ASSERT_TRUE(hba.ok());
  EXPECT_EQ(hba->nonce, 0xABCDull);
  EXPECT_EQ(hba->durable_total, 5u);
}

TEST(WireMessageTest, FinishResultRoundTripsTheLedger) {
  FinishResultMessage msg;
  msg.stats.submitted = 100;
  msg.stats.accepted = 99;
  msg.stats.applied = 90;
  msg.stats.quarantined_failure = 4;
  msg.stats.spool_remaining = 5;
  msg.stats.retries = 17;
  msg.stats.breaker_trips = 2;
  msg.groups_text = "condensa-groups v1\nnot actually parsed here";
  StatusOr<FinishResultMessage> decoded =
      DecodeFinishResult(EncodeFinishResult(msg));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->stats.submitted, 100u);
  EXPECT_EQ(decoded->stats.accepted, 99u);
  EXPECT_EQ(decoded->stats.applied, 90u);
  EXPECT_EQ(decoded->stats.quarantined_failure, 4u);
  EXPECT_EQ(decoded->stats.spool_remaining, 5u);
  EXPECT_EQ(decoded->stats.retries, 17u);
  EXPECT_EQ(decoded->stats.breaker_trips, 2u);
  EXPECT_EQ(decoded->groups_text, msg.groups_text);
}

TEST(WireMessageTest, ErrorRoundTripsEveryStatusCode) {
  for (StatusCode code :
       {StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kFailedPrecondition, StatusCode::kOutOfRange,
        StatusCode::kUnavailable, StatusCode::kDataLoss,
        StatusCode::kResourceExhausted, StatusCode::kInternal}) {
    Status original(code, "something broke");
    StatusOr<ErrorMessage> decoded =
        DecodeError(EncodeError(StatusToError(original)));
    ASSERT_TRUE(decoded.ok());
    Status round = ErrorToStatus(*decoded);
    EXPECT_EQ(round.code(), code);
    EXPECT_EQ(round.message(), "something broke");
  }
}

TEST(WireMessageTest, ErrorClaimingOkIsDataLoss) {
  // A worker must never send an Error frame carrying kOk; treat it as a
  // protocol violation rather than inventing a success.
  ErrorMessage msg;
  msg.code = 0;
  msg.message = "liar";
  StatusOr<ErrorMessage> decoded = DecodeError(EncodeError(msg));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(ErrorToStatus(*decoded).code(), StatusCode::kDataLoss);
}

TEST(WireMessageTest, MangledPayloadsFailCleanly) {
  Rng rng(23);
  SubmitMessage submit;
  submit.dim = 4;
  for (int i = 0; i < 3; ++i) {
    Vector record(4);
    for (std::size_t j = 0; j < 4; ++j) record[j] = rng.Gaussian();
    submit.records.push_back(record);
  }
  const std::string payloads[] = {
      EncodeHello(HelloMessage{.dim = 4, .group_size = 10}),
      EncodeHelloAck(HelloAckMessage{.worker_id = "w0"}),
      EncodeSubmit(submit),
      EncodeFinishResult(FinishResultMessage{.groups_text = "body"}),
  };
  for (const std::string& payload : payloads) {
    for (std::size_t cut = 0; cut < payload.size(); ++cut) {
      // Truncations: never crash; non-OK or benign.
      (void)DecodeHello(payload.substr(0, cut));
      (void)DecodeHelloAck(payload.substr(0, cut));
      (void)DecodeSubmit(payload.substr(0, cut));
      (void)DecodeFinishResult(payload.substr(0, cut));
    }
    for (int trial = 0; trial < 300; ++trial) {
      std::string mangled = payload;
      mangled[rng.UniformIndex(mangled.size())] =
          static_cast<char>(rng.UniformIndex(256));
      (void)DecodeHello(mangled);
      (void)DecodeSubmit(mangled);
    }
  }
}

}  // namespace
}  // namespace condensa::net
