#include "perturb/perturbation.h"

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/stats.h"

namespace condensa::perturb {
namespace {

using data::Dataset;
using data::TaskType;
using linalg::Vector;

TEST(NoiseSpecTest, UniformDensity) {
  NoiseSpec noise{NoiseKind::kUniform, 2.0};
  EXPECT_DOUBLE_EQ(noise.Density(0.0), 0.25);
  EXPECT_DOUBLE_EQ(noise.Density(1.9), 0.25);
  EXPECT_DOUBLE_EQ(noise.Density(2.1), 0.0);
  EXPECT_DOUBLE_EQ(noise.Density(-2.1), 0.0);
}

TEST(NoiseSpecTest, GaussianDensity) {
  NoiseSpec noise{NoiseKind::kGaussian, 1.0};
  EXPECT_NEAR(noise.Density(0.0), 1.0 / std::sqrt(2.0 * M_PI), 1e-12);
  EXPECT_GT(noise.Density(0.0), noise.Density(1.0));
  EXPECT_NEAR(noise.Density(1.0), noise.Density(-1.0), 1e-15);
}

TEST(NoiseSpecTest, StdDevAndExtent) {
  NoiseSpec uniform{NoiseKind::kUniform, 3.0};
  EXPECT_NEAR(uniform.StdDev(), 3.0 / std::sqrt(3.0), 1e-12);
  EXPECT_DOUBLE_EQ(uniform.Extent(), 3.0);
  NoiseSpec gaussian{NoiseKind::kGaussian, 2.0};
  EXPECT_DOUBLE_EQ(gaussian.StdDev(), 2.0);
  EXPECT_DOUBLE_EQ(gaussian.Extent(), 8.0);
}

TEST(NoiseSpecTest, UniformSamplesStayInRange) {
  NoiseSpec noise{NoiseKind::kUniform, 1.5};
  Rng rng(1);
  for (int i = 0; i < 5000; ++i) {
    double y = noise.Sample(rng);
    EXPECT_GE(y, -1.5);
    EXPECT_LT(y, 1.5);
  }
}

TEST(NoiseSpecTest, SampleMomentsMatchSpec) {
  Rng rng(2);
  for (NoiseKind kind : {NoiseKind::kUniform, NoiseKind::kGaussian}) {
    NoiseSpec noise{kind, 2.0};
    double sum = 0.0, sum_sq = 0.0;
    constexpr int kDraws = 100000;
    for (int i = 0; i < kDraws; ++i) {
      double y = noise.Sample(rng);
      sum += y;
      sum_sq += y * y;
    }
    double mean = sum / kDraws;
    double stddev = std::sqrt(sum_sq / kDraws - mean * mean);
    EXPECT_NEAR(mean, 0.0, 0.03);
    EXPECT_NEAR(stddev, noise.StdDev(), 0.03);
  }
}

TEST(PerturbDatasetTest, RejectsNonPositiveScale) {
  Dataset ds(1);
  ds.Add(Vector{0.0});
  Rng rng(3);
  EXPECT_FALSE(PerturbDataset(ds, {NoiseKind::kUniform, 0.0}, rng).ok());
  EXPECT_FALSE(PerturbDataset(ds, {NoiseKind::kGaussian, -1.0}, rng).ok());
}

TEST(PerturbDatasetTest, KeepsLabelsAndShape) {
  Dataset ds(2, TaskType::kClassification);
  ds.Add(Vector{1.0, 2.0}, 0);
  ds.Add(Vector{3.0, 4.0}, 1);
  Rng rng(4);
  auto perturbed = PerturbDataset(ds, {NoiseKind::kUniform, 0.5}, rng);
  ASSERT_TRUE(perturbed.ok());
  EXPECT_EQ(perturbed->size(), 2u);
  EXPECT_EQ(perturbed->label(0), 0);
  EXPECT_EQ(perturbed->label(1), 1);
  // Values moved but stayed within the noise bound.
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 2; ++j) {
      EXPECT_LE(std::abs(perturbed->record(i)[j] - ds.record(i)[j]), 0.5);
    }
  }
}

TEST(PerturbDatasetTest, PerturbationIsUnbiasedAndDecorrelating) {
  // Perturbed data keeps per-dimension means, inflates variances by the
  // noise variance, and keeps cross-covariances (noise is independent).
  Rng rng(5);
  Dataset ds(2);
  for (int i = 0; i < 30000; ++i) {
    double x = rng.Gaussian(0.0, 2.0);
    ds.Add(Vector{x, x});  // perfectly correlated pair
  }
  NoiseSpec noise{NoiseKind::kUniform, 3.0};
  auto perturbed = PerturbDataset(ds, noise, rng);
  ASSERT_TRUE(perturbed.ok());

  linalg::Matrix original_cov = ds.Covariance();
  linalg::Matrix perturbed_cov = perturbed->Covariance();
  double noise_var = noise.StdDev() * noise.StdDev();
  EXPECT_NEAR(perturbed_cov(0, 0), original_cov(0, 0) + noise_var, 0.15);
  EXPECT_NEAR(perturbed_cov(0, 1), original_cov(0, 1), 0.15);
}

TEST(PerturbValuesTest, SizePreservedAndValuesMoved) {
  std::vector<double> values = {1.0, 2.0, 3.0};
  Rng rng(6);
  std::vector<double> perturbed =
      PerturbValues(values, {NoiseKind::kGaussian, 1.0}, rng);
  ASSERT_EQ(perturbed.size(), 3u);
  bool any_moved = false;
  for (std::size_t i = 0; i < 3; ++i) {
    if (std::abs(perturbed[i] - values[i]) > 1e-12) any_moved = true;
  }
  EXPECT_TRUE(any_moved);
}

TEST(PerturbDatasetTest, RegressionTargetsUntouched) {
  Dataset ds(1, TaskType::kRegression);
  ds.Add(Vector{1.0}, 42.0);
  Rng rng(7);
  auto perturbed = PerturbDataset(ds, {NoiseKind::kUniform, 1.0}, rng);
  ASSERT_TRUE(perturbed.ok());
  EXPECT_DOUBLE_EQ(perturbed->target(0), 42.0);
}

}  // namespace
}  // namespace condensa::perturb
