#include "perturb/reconstruction.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"

namespace condensa::perturb {
namespace {

TEST(ReconstructedDistributionTest, DensityIntegratesToOne) {
  ReconstructedDistribution dist(0.0, 4.0, {0.25, 0.25, 0.25, 0.25});
  EXPECT_DOUBLE_EQ(dist.bin_width(), 1.0);
  double integral = 0.0;
  for (std::size_t j = 0; j < dist.bins(); ++j) {
    integral += dist.Density(dist.BinCenter(j)) * dist.bin_width();
  }
  EXPECT_NEAR(integral, 1.0, 1e-12);
}

TEST(ReconstructedDistributionTest, DensityZeroOutsideSupport) {
  ReconstructedDistribution dist(0.0, 1.0, {1.0});
  EXPECT_DOUBLE_EQ(dist.Density(-0.1), 0.0);
  EXPECT_DOUBLE_EQ(dist.Density(1.0), 0.0);
  EXPECT_DOUBLE_EQ(dist.Density(0.5), 1.0);
}

TEST(ReconstructedDistributionTest, MomentsOfUniform) {
  // Flat over [0, 6): mean 3, variance 3.
  ReconstructedDistribution dist(0.0, 6.0, {1.0 / 3, 1.0 / 3, 1.0 / 3});
  EXPECT_NEAR(dist.Mean(), 3.0, 1e-12);
  EXPECT_NEAR(dist.Variance(), 3.0, 1e-12);
}

TEST(ReconstructedDistributionTest, SampleStaysInSupport) {
  ReconstructedDistribution dist(-2.0, 2.0, {0.5, 0.0, 0.0, 0.5});
  Rng rng(1);
  for (int i = 0; i < 2000; ++i) {
    double x = dist.Sample(rng);
    EXPECT_GE(x, -2.0);
    EXPECT_LT(x, 2.0);
    // Middle bins have zero probability.
    EXPECT_TRUE(x < -1.0 || x >= 1.0);
  }
}

TEST(ReconstructDistributionTest, RejectsBadInput) {
  NoiseSpec noise{NoiseKind::kUniform, 1.0};
  EXPECT_FALSE(ReconstructDistribution({}, noise).ok());
  EXPECT_FALSE(
      ReconstructDistribution({1.0}, {NoiseKind::kUniform, 0.0}).ok());
  ReconstructionOptions zero_bins;
  zero_bins.bins = 0;
  EXPECT_FALSE(ReconstructDistribution({1.0}, noise, zero_bins).ok());
}

TEST(ReconstructDistributionTest, RecoversMeanOfPointMass) {
  // All originals at 5.0 with uniform noise: the reconstructed mean must
  // come back near 5.0 even though observations spread over [4, 6].
  Rng rng(2);
  NoiseSpec noise{NoiseKind::kUniform, 1.0};
  std::vector<double> perturbed;
  for (int i = 0; i < 2000; ++i) {
    perturbed.push_back(5.0 + noise.Sample(rng));
  }
  auto result = ReconstructDistribution(perturbed, noise);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->distribution.Mean(), 5.0, 0.1);
  // The EM estimate concentrates: variance far below the observed
  // (original + noise) variance of ~1/3.
  EXPECT_LT(result->distribution.Variance(), 0.15);
}

TEST(ReconstructDistributionTest, RecoversBimodalStructure) {
  // Originals at two spikes (0 and 10); Gaussian noise σ=1. The
  // reconstruction should put most mass near the spikes, little between.
  Rng rng(3);
  NoiseSpec noise{NoiseKind::kGaussian, 1.0};
  std::vector<double> perturbed;
  for (int i = 0; i < 3000; ++i) {
    double x = (i % 2 == 0) ? 0.0 : 10.0;
    perturbed.push_back(x + noise.Sample(rng));
  }
  auto result = ReconstructDistribution(perturbed, noise);
  ASSERT_TRUE(result.ok());
  const ReconstructedDistribution& dist = result->distribution;
  double near_spikes = 0.0, between = 0.0;
  for (std::size_t j = 0; j < dist.bins(); ++j) {
    double c = dist.BinCenter(j);
    if (std::abs(c - 0.0) < 1.5 || std::abs(c - 10.0) < 1.5) {
      near_spikes += dist.bin_probabilities()[j];
    } else if (c > 3.0 && c < 7.0) {
      between += dist.bin_probabilities()[j];
    }
  }
  EXPECT_GT(near_spikes, 0.8);
  EXPECT_LT(between, 0.05);
}

TEST(ReconstructDistributionTest, RecoversUniformOriginal) {
  // Originals uniform on [0, 10] with uniform noise of half-width 2:
  // reconstructed mean ≈ 5, variance ≈ 100/12.
  Rng rng(4);
  NoiseSpec noise{NoiseKind::kUniform, 2.0};
  std::vector<double> perturbed;
  for (int i = 0; i < 5000; ++i) {
    perturbed.push_back(rng.Uniform(0.0, 10.0) + noise.Sample(rng));
  }
  auto result = ReconstructDistribution(perturbed, noise);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->distribution.Mean(), 5.0, 0.25);
  EXPECT_NEAR(result->distribution.Variance(), 100.0 / 12.0, 1.2);
}

TEST(ReconstructDistributionTest, ConvergesAndReportsIterations) {
  // Gaussian-noise deconvolution is ill-posed, so EM keeps sharpening the
  // estimate slowly; a realistic L1 tolerance is needed for the converged
  // flag to trip before the iteration cap.
  Rng rng(5);
  NoiseSpec noise{NoiseKind::kGaussian, 0.5};
  std::vector<double> perturbed;
  for (int i = 0; i < 500; ++i) {
    perturbed.push_back(rng.Gaussian(0.0, 1.0) + noise.Sample(rng));
  }
  ReconstructionOptions options;
  options.max_iterations = 2000;
  options.tolerance = 1e-3;
  auto result = ReconstructDistribution(perturbed, noise, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->converged);
  EXPECT_GT(result->iterations, 0u);
  EXPECT_LT(result->iterations, 2000u);
}

TEST(ReconstructDistributionTest, IterationCapReportsNotConverged) {
  Rng rng(6);
  NoiseSpec noise{NoiseKind::kGaussian, 0.5};
  std::vector<double> perturbed;
  for (int i = 0; i < 200; ++i) {
    perturbed.push_back(rng.Gaussian(0.0, 1.0) + noise.Sample(rng));
  }
  ReconstructionOptions options;
  options.max_iterations = 3;
  options.tolerance = 1e-12;
  auto result = ReconstructDistribution(perturbed, noise, options);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->converged);
  EXPECT_EQ(result->iterations, 3u);
}

TEST(ReconstructDistributionTest, SingleObservationWorks) {
  NoiseSpec noise{NoiseKind::kUniform, 1.0};
  auto result = ReconstructDistribution({3.0}, noise);
  ASSERT_TRUE(result.ok());
  // Support contains the observation; mean close to it.
  EXPECT_NEAR(result->distribution.Mean(), 3.0, 1.0);
}

TEST(ReconstructDistributionTest, IdenticalObservationsWork) {
  NoiseSpec noise{NoiseKind::kGaussian, 0.5};
  std::vector<double> perturbed(100, 7.0);
  auto result = ReconstructDistribution(perturbed, noise);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->distribution.Mean(), 7.0, 0.2);
}

}  // namespace
}  // namespace condensa::perturb
