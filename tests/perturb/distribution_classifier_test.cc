#include "perturb/distribution_classifier.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "mining/evaluation.h"
#include "mining/knn.h"

namespace condensa::perturb {
namespace {

using data::Dataset;
using data::TaskType;
using linalg::Vector;

TEST(DistributionClassifierTest, FitValidatesInput) {
  DistributionClassifier classifier({NoiseKind::kUniform, 1.0});
  EXPECT_FALSE(classifier.Fit(Dataset(2, TaskType::kClassification)).ok());
  Dataset unlabeled(1);
  unlabeled.Add(Vector{0.0});
  EXPECT_FALSE(classifier.Fit(unlabeled).ok());
}

TEST(DistributionClassifierTest, SeparatedClassesClassifiedDespiteNoise) {
  Rng rng(1);
  NoiseSpec noise{NoiseKind::kUniform, 1.0};
  Dataset clean(1, TaskType::kClassification);
  for (int i = 0; i < 300; ++i) {
    clean.Add(Vector{rng.Gaussian(0.0, 0.8)}, 0);
    clean.Add(Vector{rng.Gaussian(8.0, 0.8)}, 1);
  }
  auto perturbed = PerturbDataset(clean, noise, rng);
  ASSERT_TRUE(perturbed.ok());

  DistributionClassifier classifier(noise);
  ASSERT_TRUE(classifier.Fit(*perturbed).ok());
  EXPECT_EQ(classifier.Predict(Vector{-0.5}), 0);
  EXPECT_EQ(classifier.Predict(Vector{8.5}), 1);
}

TEST(DistributionClassifierTest, ReasonableAccuracyOnOverlappingClasses) {
  Rng rng(2);
  NoiseSpec noise{NoiseKind::kUniform, 1.5};
  Dataset clean(2, TaskType::kClassification);
  for (int i = 0; i < 400; ++i) {
    clean.Add(Vector{rng.Gaussian(0.0, 1.0), rng.Gaussian(0.0, 1.0)}, 0);
    clean.Add(Vector{rng.Gaussian(3.0, 1.0), rng.Gaussian(3.0, 1.0)}, 1);
  }
  auto perturbed = PerturbDataset(clean, noise, rng);
  ASSERT_TRUE(perturbed.ok());

  DistributionClassifier classifier(noise);
  ASSERT_TRUE(classifier.Fit(*perturbed).ok());
  // Evaluate on clean held-out data from the same distributions.
  Dataset test(2, TaskType::kClassification);
  for (int i = 0; i < 200; ++i) {
    test.Add(Vector{rng.Gaussian(0.0, 1.0), rng.Gaussian(0.0, 1.0)}, 0);
    test.Add(Vector{rng.Gaussian(3.0, 1.0), rng.Gaussian(3.0, 1.0)}, 1);
  }
  auto accuracy = mining::EvaluateAccuracy(classifier, test);
  ASSERT_TRUE(accuracy.ok());
  EXPECT_GT(*accuracy, 0.8);
}

TEST(DistributionClassifierTest,
     CannotExploitCorrelationsUnlikeMultivariateModel) {
  // The paper's core argument, as a test. Two classes share identical
  // per-dimension marginals and differ only in the sign of the x-y
  // correlation. A per-dimension distribution model cannot beat coin
  // flipping; a record-based 1-NN on the same clean data can.
  Rng rng(3);
  Dataset clean(2, TaskType::kClassification);
  for (int i = 0; i < 500; ++i) {
    double x = rng.Gaussian();
    double e = rng.Gaussian(0.0, 0.3);
    clean.Add(Vector{x, x + e}, 0);    // positive correlation
    double x2 = rng.Gaussian();
    double e2 = rng.Gaussian(0.0, 0.3);
    clean.Add(Vector{x2, -x2 + e2}, 1);  // negative correlation
  }
  NoiseSpec noise{NoiseKind::kUniform, 0.5};
  auto perturbed = PerturbDataset(clean, noise, rng);
  ASSERT_TRUE(perturbed.ok());

  Dataset test(2, TaskType::kClassification);
  for (int i = 0; i < 300; ++i) {
    double x = rng.Gaussian();
    test.Add(Vector{x, x + rng.Gaussian(0.0, 0.3)}, 0);
    double x2 = rng.Gaussian();
    test.Add(Vector{x2, -x2 + rng.Gaussian(0.0, 0.3)}, 1);
  }

  DistributionClassifier marginal_model(noise);
  ASSERT_TRUE(marginal_model.Fit(*perturbed).ok());
  auto marginal_accuracy = mining::EvaluateAccuracy(marginal_model, test);
  ASSERT_TRUE(marginal_accuracy.ok());

  mining::KnnClassifier knn({.k = 5});
  ASSERT_TRUE(knn.Fit(clean).ok());
  auto knn_accuracy = mining::EvaluateAccuracy(knn, test);
  ASSERT_TRUE(knn_accuracy.ok());

  EXPECT_LT(*marginal_accuracy, 0.62);  // near chance
  EXPECT_GT(*knn_accuracy, 0.9);        // correlations are decisive
}

TEST(DistributionClassifierTest, PriorInfluencesPrediction) {
  Rng rng(4);
  NoiseSpec noise{NoiseKind::kUniform, 0.5};
  Dataset clean(1, TaskType::kClassification);
  // Same marginal for both classes, 9:1 prior.
  for (int i = 0; i < 900; ++i) clean.Add(Vector{rng.Gaussian()}, 0);
  for (int i = 0; i < 100; ++i) clean.Add(Vector{rng.Gaussian()}, 1);
  auto perturbed = PerturbDataset(clean, noise, rng);
  ASSERT_TRUE(perturbed.ok());
  DistributionClassifier classifier(noise);
  ASSERT_TRUE(classifier.Fit(*perturbed).ok());
  EXPECT_EQ(classifier.Predict(Vector{0.0}), 0);
}

}  // namespace
}  // namespace condensa::perturb
