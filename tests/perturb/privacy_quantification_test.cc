#include "perturb/privacy_quantification.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"

namespace condensa::perturb {
namespace {

TEST(DifferentialEntropyTest, UniformIntervalMatchesClosedForm) {
  // Uniform on [0, 8): h = log2(8) = 3 bits, Π = 8.
  ReconstructedDistribution uniform(0.0, 8.0, {0.25, 0.25, 0.25, 0.25});
  EXPECT_NEAR(DifferentialEntropyBits(uniform), 3.0, 1e-12);
  EXPECT_NEAR(InherentPrivacy(uniform), 8.0, 1e-9);
}

TEST(DifferentialEntropyTest, PointMassHasLowEntropy) {
  // All mass in one thin cell of width 0.5: h = log2(0.5) = -1.
  ReconstructedDistribution spike(0.0, 2.0, {0.0, 1.0, 0.0, 0.0});
  EXPECT_NEAR(DifferentialEntropyBits(spike), std::log2(0.5), 1e-12);
  EXPECT_NEAR(InherentPrivacy(spike), 0.5, 1e-9);
}

TEST(DifferentialEntropyTest, ConcentrationReducesEntropy) {
  ReconstructedDistribution flat(0.0, 4.0, {0.25, 0.25, 0.25, 0.25});
  ReconstructedDistribution peaked(0.0, 4.0, {0.7, 0.1, 0.1, 0.1});
  EXPECT_GT(DifferentialEntropyBits(flat), DifferentialEntropyBits(peaked));
}

TEST(QuantifyPrivacyTest, RejectsBadInput) {
  NoiseSpec noise{NoiseKind::kUniform, 1.0};
  EXPECT_FALSE(QuantifyPerturbationPrivacy({}, noise).ok());
  EXPECT_FALSE(
      QuantifyPerturbationPrivacy({1.0}, {NoiseKind::kUniform, 0.0}).ok());
  PrivacyQuantificationOptions zero_bins;
  zero_bins.bins = 0;
  EXPECT_FALSE(QuantifyPerturbationPrivacy({1.0}, noise, zero_bins).ok());
}

TEST(QuantifyPrivacyTest, LossFractionInUnitInterval) {
  Rng rng(1);
  std::vector<double> values;
  for (int i = 0; i < 2000; ++i) {
    values.push_back(rng.Gaussian(0.0, 2.0));
  }
  for (double scale : {0.1, 1.0, 10.0}) {
    auto report =
        QuantifyPerturbationPrivacy(values, {NoiseKind::kUniform, scale});
    ASSERT_TRUE(report.ok());
    EXPECT_GE(report->privacy_loss_fraction, 0.0);
    EXPECT_LE(report->privacy_loss_fraction, 1.0);
    EXPECT_GT(report->inherent_privacy, 0.0);
    EXPECT_GT(report->conditional_privacy, 0.0);
  }
}

TEST(QuantifyPrivacyTest, MoreNoiseMeansLessPrivacyLoss) {
  Rng rng(2);
  std::vector<double> values;
  for (int i = 0; i < 3000; ++i) {
    values.push_back(rng.Uniform(0.0, 10.0));
  }
  double previous_loss = 2.0;
  for (double scale : {0.1, 0.5, 2.0, 8.0}) {
    auto report =
        QuantifyPerturbationPrivacy(values, {NoiseKind::kUniform, scale});
    ASSERT_TRUE(report.ok());
    EXPECT_LT(report->privacy_loss_fraction, previous_loss)
        << "scale " << scale;
    previous_loss = report->privacy_loss_fraction;
  }
}

TEST(QuantifyPrivacyTest, TinyNoiseDisclosesAlmostEverything) {
  Rng rng(3);
  std::vector<double> values;
  for (int i = 0; i < 3000; ++i) {
    values.push_back(rng.Uniform(0.0, 100.0));
  }
  auto report =
      QuantifyPerturbationPrivacy(values, {NoiseKind::kUniform, 0.01});
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->privacy_loss_fraction, 0.95);
}

TEST(QuantifyPrivacyTest, HugeNoiseDisclosesAlmostNothing) {
  Rng rng(4);
  std::vector<double> values;
  for (int i = 0; i < 3000; ++i) {
    values.push_back(rng.Uniform(0.0, 1.0));
  }
  auto report =
      QuantifyPerturbationPrivacy(values, {NoiseKind::kGaussian, 50.0});
  ASSERT_TRUE(report.ok());
  EXPECT_LT(report->privacy_loss_fraction, 0.1);
}

TEST(QuantifyPrivacyTest, MatchesUniformClosedFormApproximately) {
  // A ~ U(0, a), noise ~ U(-s, s) with 2s >= a: Agrawal–Aggarwal's
  // framework gives closed forms; here we sanity-check the coarse
  // behaviour — inherent privacy ≈ a for a uniform original.
  Rng rng(5);
  std::vector<double> values;
  for (int i = 0; i < 20000; ++i) {
    values.push_back(rng.Uniform(0.0, 4.0));
  }
  auto report =
      QuantifyPerturbationPrivacy(values, {NoiseKind::kUniform, 2.0});
  ASSERT_TRUE(report.ok());
  EXPECT_NEAR(report->inherent_privacy, 4.0, 0.15);
}

TEST(QuantifyPrivacyTest, ConstantDataHandled) {
  std::vector<double> values(100, 5.0);
  auto report =
      QuantifyPerturbationPrivacy(values, {NoiseKind::kUniform, 1.0});
  ASSERT_TRUE(report.ok());
  // Nothing to learn: A is already fully determined, inherent privacy ~0.
  EXPECT_LT(report->inherent_privacy, 1e-6);
}

}  // namespace
}  // namespace condensa::perturb
