#include "metrics/locality.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/engine.h"

namespace condensa::metrics {
namespace {

using data::Dataset;
using linalg::Vector;

TEST(KthNeighborDistancesTest, RejectsBadInput) {
  Dataset ds(1);
  ds.Add(Vector{0.0});
  ds.Add(Vector{1.0});
  EXPECT_FALSE(KthNeighborDistances(Dataset(1), 1).ok());
  EXPECT_FALSE(KthNeighborDistances(ds, 0).ok());
  EXPECT_FALSE(KthNeighborDistances(ds, 2).ok());
}

TEST(KthNeighborDistancesTest, HandComputedValues) {
  Dataset ds(1);
  ds.Add(Vector{0.0});
  ds.Add(Vector{1.0});
  ds.Add(Vector{3.0});
  auto distances = KthNeighborDistances(ds, 1);
  ASSERT_TRUE(distances.ok());
  EXPECT_DOUBLE_EQ((*distances)[0], 1.0);  // 0 -> 1
  EXPECT_DOUBLE_EQ((*distances)[1], 1.0);  // 1 -> 0
  EXPECT_DOUBLE_EQ((*distances)[2], 2.0);  // 3 -> 1
}

TEST(KthNeighborDistancesTest, SparseRecordsScoreHigher) {
  Rng rng(1);
  Dataset ds(2);
  for (int i = 0; i < 100; ++i) {
    ds.Add(Vector{rng.Gaussian(0.0, 0.5), rng.Gaussian(0.0, 0.5)});
  }
  ds.Add(Vector{20.0, 20.0});  // far outlier
  auto distances = KthNeighborDistances(ds, 5);
  ASSERT_TRUE(distances.ok());
  double outlier_score = distances->back();
  for (std::size_t i = 0; i + 1 < distances->size(); ++i) {
    EXPECT_LT((*distances)[i], outlier_score);
  }
}

TEST(NearestReleaseDistancesTest, ZeroForIdenticalRelease) {
  Rng rng(2);
  Dataset ds(2);
  for (int i = 0; i < 20; ++i) {
    ds.Add(Vector{rng.Gaussian(), rng.Gaussian()});
  }
  auto distances = NearestReleaseDistances(ds, ds);
  ASSERT_TRUE(distances.ok());
  for (double d : *distances) {
    EXPECT_DOUBLE_EQ(d, 0.0);
  }
}

TEST(NearestReleaseDistancesTest, ValidatesShapes) {
  Dataset a(1), b(2);
  a.Add(Vector{0.0});
  b.Add(Vector{0.0, 0.0});
  EXPECT_FALSE(NearestReleaseDistances(a, b).ok());
  EXPECT_FALSE(NearestReleaseDistances(Dataset(1), a).ok());
}

TEST(MeanByQuantileBucketTest, ValidatesInput) {
  EXPECT_FALSE(MeanByQuantileBucket({}, {}, 1).ok());
  EXPECT_FALSE(MeanByQuantileBucket({1.0}, {1.0, 2.0}, 1).ok());
  EXPECT_FALSE(MeanByQuantileBucket({1.0}, {1.0}, 0).ok());
  EXPECT_FALSE(MeanByQuantileBucket({1.0}, {1.0}, 2).ok());
}

TEST(MeanByQuantileBucketTest, BucketsByKeyOrder) {
  std::vector<double> keys = {10.0, 1.0, 5.0, 7.0};   // order: 1,5,7,10
  std::vector<double> values = {100.0, 1.0, 2.0, 3.0};
  auto means = MeanByQuantileBucket(keys, values, 2);
  ASSERT_TRUE(means.ok());
  // Low-key bucket holds values for keys {1, 5} -> (1 + 2) / 2.
  EXPECT_DOUBLE_EQ((*means)[0], 1.5);
  // High-key bucket holds values for keys {7, 10} -> (3 + 100) / 2.
  EXPECT_DOUBLE_EQ((*means)[1], 51.5);
}

TEST(LocalityIntegrationTest, SparseRegionsLoseMoreUnderCondensation) {
  // The paper's Section 2.2 claim: with a fixed group size, sparse-region
  // records are masked with larger spatial error than dense-region ones.
  Rng rng(3);
  Dataset ds(2);
  // Dense core plus a sparse halo.
  for (int i = 0; i < 400; ++i) {
    ds.Add(Vector{rng.Gaussian(0.0, 0.5), rng.Gaussian(0.0, 0.5)});
  }
  for (int i = 0; i < 40; ++i) {
    ds.Add(Vector{rng.Uniform(-8.0, 8.0), rng.Uniform(-8.0, 8.0)});
  }

  core::CondensationEngine engine({.group_size = 20});
  auto release = engine.Anonymize(ds, rng);
  ASSERT_TRUE(release.ok());

  auto density = KthNeighborDistances(ds, 5);
  auto errors = NearestReleaseDistances(ds, release->anonymized);
  ASSERT_TRUE(density.ok());
  ASSERT_TRUE(errors.ok());
  auto buckets = MeanByQuantileBucket(*density, *errors, 4);
  ASSERT_TRUE(buckets.ok());
  // Densest quartile is covered far better than the sparsest.
  EXPECT_LT((*buckets)[0], (*buckets)[3]);
}

}  // namespace
}  // namespace condensa::metrics
