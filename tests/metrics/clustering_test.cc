#include "metrics/clustering.h"

#include <gtest/gtest.h>

namespace condensa::metrics {
namespace {

TEST(AdjustedRandIndexTest, RejectsBadInput) {
  EXPECT_FALSE(AdjustedRandIndex({}, {}).ok());
  EXPECT_FALSE(AdjustedRandIndex({0, 1}, {0}).ok());
}

TEST(AdjustedRandIndexTest, IdenticalPartitionsScoreOne) {
  std::vector<std::size_t> a = {0, 0, 1, 1, 2, 2};
  auto ari = AdjustedRandIndex(a, a);
  ASSERT_TRUE(ari.ok());
  EXPECT_DOUBLE_EQ(*ari, 1.0);
}

TEST(AdjustedRandIndexTest, RelabelingInvariant) {
  std::vector<std::size_t> a = {0, 0, 1, 1, 2, 2};
  std::vector<std::size_t> b = {5, 5, 9, 9, 7, 7};  // same partition
  auto ari = AdjustedRandIndex(a, b);
  ASSERT_TRUE(ari.ok());
  EXPECT_DOUBLE_EQ(*ari, 1.0);
}

TEST(AdjustedRandIndexTest, DisagreementScoresBelowOne) {
  std::vector<std::size_t> a = {0, 0, 0, 1, 1, 1};
  std::vector<std::size_t> b = {0, 0, 1, 1, 0, 1};
  auto ari = AdjustedRandIndex(a, b);
  ASSERT_TRUE(ari.ok());
  EXPECT_LT(*ari, 0.5);
}

TEST(AdjustedRandIndexTest, KnownHandComputedValue) {
  // Classic example: ARI of these two partitions of 6 elements.
  std::vector<std::size_t> a = {0, 0, 0, 1, 1, 1};
  std::vector<std::size_t> b = {0, 0, 1, 1, 2, 2};
  // Contingency: rows {3,3}; cols {2,2,2}; cells: (0,0)=2,(0,1)=1,
  // (1,1)=1,(1,2)=2. sum_joint = C(2,2)+0+0+C(2,2) = 1+1 = 2;
  // sum_rows = 2*C(3,2) = 6; sum_cols = 3*C(2,2) = 3; total = C(6,2) = 15.
  // expected = 6*3/15 = 1.2; max = 4.5; ari = (2-1.2)/(4.5-1.2) = 0.2424...
  auto ari = AdjustedRandIndex(a, b);
  ASSERT_TRUE(ari.ok());
  EXPECT_NEAR(*ari, 0.8 / 3.3, 1e-12);
}

TEST(AdjustedRandIndexTest, DegenerateSingleClusterBoth) {
  std::vector<std::size_t> a = {0, 0, 0};
  auto ari = AdjustedRandIndex(a, a);
  ASSERT_TRUE(ari.ok());
  EXPECT_DOUBLE_EQ(*ari, 1.0);
}

TEST(AdjustedRandIndexTest, AllSingletonsVsOneCluster) {
  std::vector<std::size_t> singletons = {0, 1, 2, 3};
  std::vector<std::size_t> lumped = {0, 0, 0, 0};
  auto ari = AdjustedRandIndex(singletons, lumped);
  ASSERT_TRUE(ari.ok());
  // No pair agreement structure beyond chance.
  EXPECT_NEAR(*ari, 0.0, 1e-12);
}

TEST(ClusterPurityTest, RejectsBadInput) {
  EXPECT_FALSE(ClusterPurity({}, {}).ok());
  EXPECT_FALSE(ClusterPurity({0}, {1, 2}).ok());
}

TEST(ClusterPurityTest, PureClustersScoreOne) {
  auto purity = ClusterPurity({0, 0, 1, 1}, {7, 7, 9, 9});
  ASSERT_TRUE(purity.ok());
  EXPECT_DOUBLE_EQ(*purity, 1.0);
}

TEST(ClusterPurityTest, MixedClusterScoresDominantFraction) {
  // Cluster 0 holds labels {1, 1, 2}; cluster 1 holds {3}.
  auto purity = ClusterPurity({0, 0, 0, 1}, {1, 1, 2, 3});
  ASSERT_TRUE(purity.ok());
  EXPECT_DOUBLE_EQ(*purity, 0.75);
}

TEST(ClusterPurityTest, SingleClusterEqualsMajorityFraction) {
  auto purity = ClusterPurity({0, 0, 0, 0}, {1, 1, 1, 2});
  ASSERT_TRUE(purity.ok());
  EXPECT_DOUBLE_EQ(*purity, 0.75);
}

}  // namespace
}  // namespace condensa::metrics
