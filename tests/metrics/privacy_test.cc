#include "metrics/privacy.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "core/engine.h"
#include "datagen/profiles.h"

namespace condensa::metrics {
namespace {

using data::Dataset;
using linalg::Vector;

TEST(EvaluateLinkageTest, RejectsBadInput) {
  Dataset one(1);
  one.Add(Vector{0.0});
  Dataset other(1);
  other.Add(Vector{0.0});
  EXPECT_FALSE(EvaluateLinkage(one, other).ok());  // needs >= 2 originals
  Dataset two(1);
  two.Add(Vector{0.0});
  two.Add(Vector{1.0});
  EXPECT_FALSE(EvaluateLinkage(two, Dataset(1)).ok());
  Dataset wrong_dim(2);
  wrong_dim.Add(Vector{0.0, 0.0});
  EXPECT_FALSE(EvaluateLinkage(two, wrong_dim).ok());
}

TEST(EvaluateLinkageTest, IdenticalReleasePinpointsEverything) {
  Rng rng(1);
  Dataset ds(2);
  for (int i = 0; i < 30; ++i) {
    ds.Add(Vector{rng.Gaussian(), rng.Gaussian()});
  }
  auto report = EvaluateLinkage(ds, ds);
  ASSERT_TRUE(report.ok());
  EXPECT_DOUBLE_EQ(report->mean_nearest_anonymized_distance, 0.0);
  EXPECT_DOUBLE_EQ(report->distance_gain, 0.0);
  EXPECT_DOUBLE_EQ(report->pinpointed_fraction, 1.0);
}

TEST(EvaluateLinkageTest, CondensationIncreasesDistanceGainWithK) {
  Rng rng(2);
  Dataset ds(3);
  for (int i = 0; i < 200; ++i) {
    ds.Add(Vector{rng.Gaussian(), rng.Gaussian(), rng.Gaussian()});
  }
  double gain_small_k = 0.0, gain_large_k = 0.0;
  for (std::size_t k : {2u, 40u}) {
    core::CondensationEngine engine({.group_size = k});
    auto result = engine.Anonymize(ds, rng);
    ASSERT_TRUE(result.ok());
    auto report = EvaluateLinkage(ds, result->anonymized);
    ASSERT_TRUE(report.ok());
    (k == 2u ? gain_small_k : gain_large_k) = report->distance_gain;
  }
  EXPECT_GT(gain_large_k, gain_small_k);
}

TEST(ExactLeakageRateTest, StaticKOneLeaksEverythingKLargeLeaksNothing) {
  Rng rng(3);
  Dataset ds(2);
  for (int i = 0; i < 60; ++i) {
    ds.Add(Vector{rng.Gaussian(), rng.Gaussian()});
  }
  core::CondensationEngine identity_engine({.group_size = 1});
  auto identity = identity_engine.Anonymize(ds, rng);
  ASSERT_TRUE(identity.ok());
  auto leak_all = ExactLeakageRate(ds, identity->anonymized, 1e-9);
  ASSERT_TRUE(leak_all.ok());
  EXPECT_DOUBLE_EQ(*leak_all, 1.0);

  core::CondensationEngine private_engine({.group_size = 20});
  auto anonymized = private_engine.Anonymize(ds, rng);
  ASSERT_TRUE(anonymized.ok());
  auto leak_none = ExactLeakageRate(ds, anonymized->anonymized, 1e-9);
  ASSERT_TRUE(leak_none.ok());
  EXPECT_LT(*leak_none, 0.05);
}

TEST(ExactLeakageRateTest, ToleranceValidated) {
  Dataset a(1), b(1);
  a.Add(Vector{0.0});
  b.Add(Vector{0.0});
  EXPECT_FALSE(ExactLeakageRate(a, b, -1.0).ok());
  auto exact = ExactLeakageRate(a, b, 0.0);
  ASSERT_TRUE(exact.ok());
  EXPECT_DOUBLE_EQ(*exact, 1.0);
}

}  // namespace
}  // namespace condensa::metrics
