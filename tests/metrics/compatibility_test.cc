#include "metrics/compatibility.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace condensa::metrics {
namespace {

using data::Dataset;
using linalg::Matrix;
using linalg::Vector;

TEST(CovarianceCompatibilityTest, IdenticalMatricesGiveOne) {
  Matrix c{{2.0, 0.5}, {0.5, 1.0}};
  auto mu = CovarianceCompatibility(c, c);
  ASSERT_TRUE(mu.ok());
  EXPECT_NEAR(*mu, 1.0, 1e-12);
}

TEST(CovarianceCompatibilityTest, NegatedStructureGivesMinusOne) {
  // Entries of the second matrix are an affine flip of the first's:
  // p_ij = -o_ij, a perfect negative correlation.
  Matrix o{{2.0, 0.5}, {0.5, 1.0}};
  Matrix p = o * -1.0;
  auto mu = CovarianceCompatibility(o, p);
  ASSERT_TRUE(mu.ok());
  EXPECT_NEAR(*mu, -1.0, 1e-12);
}

TEST(CovarianceCompatibilityTest, ScaleInvariant) {
  Matrix o{{2.0, 0.5}, {0.5, 1.0}};
  Matrix p = o * 3.0;
  auto mu = CovarianceCompatibility(o, p);
  ASSERT_TRUE(mu.ok());
  EXPECT_NEAR(*mu, 1.0, 1e-12);
}

TEST(CovarianceCompatibilityTest, RejectsBadShapes) {
  EXPECT_FALSE(CovarianceCompatibility(Matrix(), Matrix()).ok());
  EXPECT_FALSE(CovarianceCompatibility(Matrix(2, 2), Matrix(3, 3)).ok());
  EXPECT_FALSE(CovarianceCompatibility(Matrix(2, 3), Matrix(2, 3)).ok());
  EXPECT_FALSE(CovarianceCompatibility(Matrix{{1.0}}, Matrix{{1.0}}).ok());
}

TEST(CovarianceCompatibilityTest, DatasetOverloadMatchesMatrixOverload) {
  Rng rng(1);
  Dataset a(2), b(2);
  for (int i = 0; i < 200; ++i) {
    double x = rng.Gaussian();
    a.Add(Vector{x, 0.5 * x + rng.Gaussian(0.0, 0.1)});
    double y = rng.Gaussian();
    b.Add(Vector{y, 0.5 * y + rng.Gaussian(0.0, 0.1)});
  }
  auto from_datasets = CovarianceCompatibility(a, b);
  auto from_matrices = CovarianceCompatibility(a.Covariance(), b.Covariance());
  ASSERT_TRUE(from_datasets.ok());
  ASSERT_TRUE(from_matrices.ok());
  EXPECT_NEAR(*from_datasets, *from_matrices, 1e-12);
}

TEST(CovarianceCompatibilityTest, SimilarDataScoresHighUnrelatedLow) {
  Rng rng(2);
  Dataset original(3), similar(3), unrelated(3);
  for (int i = 0; i < 2000; ++i) {
    double x = rng.Gaussian();
    original.Add(Vector{x, x + rng.Gaussian(0.0, 0.2), rng.Gaussian()});
    double y = rng.Gaussian();
    similar.Add(Vector{y, y + rng.Gaussian(0.0, 0.2), rng.Gaussian()});
    // Unrelated: anti-correlated first pair, large third variance.
    double z = rng.Gaussian();
    unrelated.Add(Vector{z, -z + rng.Gaussian(0.0, 0.2),
                         rng.Gaussian(0.0, 5.0)});
  }
  auto mu_similar = CovarianceCompatibility(original, similar);
  auto mu_unrelated = CovarianceCompatibility(original, unrelated);
  ASSERT_TRUE(mu_similar.ok());
  ASSERT_TRUE(mu_unrelated.ok());
  EXPECT_GT(*mu_similar, 0.95);
  EXPECT_LT(*mu_unrelated, 0.5);
}

TEST(CovarianceRelativeErrorTest, ZeroForIdentical) {
  Matrix c{{1.0, 0.2}, {0.2, 3.0}};
  auto err = CovarianceRelativeError(c, c);
  ASSERT_TRUE(err.ok());
  EXPECT_NEAR(*err, 0.0, 1e-12);
}

TEST(CovarianceRelativeErrorTest, OneWhenComparedToZero) {
  Matrix c{{1.0, 0.0}, {0.0, 1.0}};
  auto err = CovarianceRelativeError(c, Matrix(2, 2));
  ASSERT_TRUE(err.ok());
  EXPECT_NEAR(*err, 1.0, 1e-12);
}

TEST(CovarianceRelativeErrorTest, FailsOnZeroOriginal) {
  EXPECT_FALSE(CovarianceRelativeError(Matrix(2, 2), Matrix(2, 2)).ok());
}

TEST(MeanDriftTest, ExactValue) {
  Dataset a(2), b(2);
  a.Add(Vector{0.0, 0.0});
  a.Add(Vector{2.0, 2.0});
  b.Add(Vector{1.0, 4.0});
  b.Add(Vector{1.0, 4.0});
  auto drift = MeanDrift(a, b);
  ASSERT_TRUE(drift.ok());
  // Means: (1,1) vs (1,4) -> max |diff| = 3.
  EXPECT_DOUBLE_EQ(*drift, 3.0);
}

TEST(MeanDriftTest, RejectsEmptyOrMismatched) {
  Dataset a(2), b(3);
  a.Add(Vector{0.0, 0.0});
  b.Add(Vector{0.0, 0.0, 0.0});
  EXPECT_FALSE(MeanDrift(Dataset(2), a).ok());
  EXPECT_FALSE(MeanDrift(a, b).ok());
}

}  // namespace
}  // namespace condensa::metrics
