#include "mining/linear_regression.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/engine.h"

namespace condensa::mining {
namespace {

using data::Dataset;
using data::TaskType;
using linalg::Vector;

TEST(LinearRegressorTest, FitValidatesInput) {
  LinearRegressor model;
  EXPECT_FALSE(model.Fit(Dataset(1, TaskType::kRegression)).ok());
  Dataset classification(1, TaskType::kClassification);
  classification.Add(Vector{0.0}, 1);
  EXPECT_FALSE(model.Fit(classification).ok());
  LinearRegressor negative_ridge({.ridge = -1.0});
  Dataset ok(1, TaskType::kRegression);
  ok.Add(Vector{0.0}, 1.0);
  EXPECT_FALSE(negative_ridge.Fit(ok).ok());
}

TEST(LinearRegressorTest, RecoversExactLinearModel) {
  Rng rng(1);
  Dataset train(2, TaskType::kRegression);
  for (int i = 0; i < 100; ++i) {
    double x0 = rng.Gaussian();
    double x1 = rng.Gaussian();
    train.Add(Vector{x0, x1}, 3.0 * x0 - 2.0 * x1 + 5.0);
  }
  LinearRegressor model;
  ASSERT_TRUE(model.Fit(train).ok());
  EXPECT_NEAR(model.weights()[0], 3.0, 1e-8);
  EXPECT_NEAR(model.weights()[1], -2.0, 1e-8);
  EXPECT_NEAR(model.intercept(), 5.0, 1e-8);
  EXPECT_NEAR(model.Predict(Vector{1.0, 1.0}), 6.0, 1e-8);
}

TEST(LinearRegressorTest, NoisyFitIsCloseToTruth) {
  Rng rng(2);
  Dataset train(1, TaskType::kRegression);
  for (int i = 0; i < 2000; ++i) {
    double x = rng.Uniform(-3.0, 3.0);
    train.Add(Vector{x}, 2.5 * x - 1.0 + rng.Gaussian(0.0, 0.5));
  }
  LinearRegressor model;
  ASSERT_TRUE(model.Fit(train).ok());
  EXPECT_NEAR(model.weights()[0], 2.5, 0.05);
  EXPECT_NEAR(model.intercept(), -1.0, 0.05);
}

TEST(LinearRegressorTest, RidgeShrinksWeights) {
  Rng rng(3);
  Dataset train(1, TaskType::kRegression);
  for (int i = 0; i < 50; ++i) {
    double x = rng.Gaussian();
    train.Add(Vector{x}, 4.0 * x);
  }
  LinearRegressor plain;
  LinearRegressor ridged({.ridge = 100.0});
  ASSERT_TRUE(plain.Fit(train).ok());
  ASSERT_TRUE(ridged.Fit(train).ok());
  EXPECT_LT(std::abs(ridged.weights()[0]), std::abs(plain.weights()[0]));
}

TEST(LinearRegressorTest, CollinearFeaturesStaySolvable) {
  // x1 = 2 x0 exactly: plain OLS normal equations are singular; the
  // internal jitter (and a ridge) must keep the fit finite.
  Rng rng(4);
  Dataset train(2, TaskType::kRegression);
  for (int i = 0; i < 60; ++i) {
    double x = rng.Gaussian();
    train.Add(Vector{x, 2.0 * x}, 5.0 * x);
  }
  LinearRegressor model({.ridge = 1e-6});
  ASSERT_TRUE(model.Fit(train).ok());
  // Prediction is what matters under collinearity, not the split of the
  // coefficients.
  EXPECT_NEAR(model.Predict(Vector{1.0, 2.0}), 5.0, 1e-3);
}

TEST(LinearRegressorTest, ConstantTargetGivesZeroWeights) {
  Rng rng(5);
  Dataset train(2, TaskType::kRegression);
  for (int i = 0; i < 40; ++i) {
    train.Add(Vector{rng.Gaussian(), rng.Gaussian()}, 7.0);
  }
  LinearRegressor model;
  ASSERT_TRUE(model.Fit(train).ok());
  EXPECT_NEAR(model.weights()[0], 0.0, 1e-8);
  EXPECT_NEAR(model.weights()[1], 0.0, 1e-8);
  EXPECT_NEAR(model.intercept(), 7.0, 1e-8);
}

TEST(LinearRegressorTest, CoefficientsSurviveCondensation) {
  // Linear models see only first/second moments, which condensation
  // preserves: the coefficients fit on the release match the raw fit.
  Rng rng(6);
  Dataset train(2, TaskType::kRegression);
  for (int i = 0; i < 500; ++i) {
    double x0 = rng.Gaussian();
    double x1 = 0.5 * x0 + rng.Gaussian(0.0, 0.8);
    train.Add(Vector{x0, x1},
              2.0 * x0 + 1.5 * x1 + 3.0 + rng.Gaussian(0.0, 0.3));
  }
  core::CondensationEngine engine({.group_size = 25});
  auto release = engine.Anonymize(train, rng);
  ASSERT_TRUE(release.ok());

  LinearRegressor raw_model, release_model;
  ASSERT_TRUE(raw_model.Fit(train).ok());
  ASSERT_TRUE(release_model.Fit(release->anonymized).ok());
  EXPECT_NEAR(release_model.weights()[0], raw_model.weights()[0], 0.2);
  EXPECT_NEAR(release_model.weights()[1], raw_model.weights()[1], 0.2);
  EXPECT_NEAR(release_model.intercept(), raw_model.intercept(), 0.2);
}

}  // namespace
}  // namespace condensa::mining
