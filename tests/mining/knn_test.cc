#include "mining/knn.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "datagen/profiles.h"

namespace condensa::mining {
namespace {

using data::Dataset;
using data::TaskType;
using linalg::Vector;

Dataset MakeXorLikeData() {
  Dataset ds(2, TaskType::kClassification);
  ds.Add(Vector{0.0, 0.0}, 0);
  ds.Add(Vector{0.1, 0.1}, 0);
  ds.Add(Vector{10.0, 10.0}, 1);
  ds.Add(Vector{10.1, 10.1}, 1);
  return ds;
}

TEST(NearestNeighborsTest, ReturnsIndicesInDistanceOrder) {
  Dataset ds(1);
  ds.Add(Vector{0.0});
  ds.Add(Vector{5.0});
  ds.Add(Vector{2.0});
  ds.Add(Vector{9.0});
  std::vector<std::size_t> nn = NearestNeighbors(ds, Vector{1.9}, 3);
  ASSERT_EQ(nn.size(), 3u);
  EXPECT_EQ(nn[0], 2u);  // 2.0
  EXPECT_EQ(nn[1], 0u);  // 0.0
  EXPECT_EQ(nn[2], 1u);  // 5.0
}

TEST(NearestNeighborsTest, KClampedToDatasetSize) {
  Dataset ds(1);
  ds.Add(Vector{0.0});
  ds.Add(Vector{1.0});
  EXPECT_EQ(NearestNeighbors(ds, Vector{0.0}, 10).size(), 2u);
}

TEST(KnnClassifierTest, FitValidatesInput) {
  KnnClassifier classifier({.k = 1});
  EXPECT_FALSE(classifier.Fit(Dataset(2, TaskType::kClassification)).ok());
  Dataset regression(1, TaskType::kRegression);
  regression.Add(Vector{0.0}, 1.0);
  EXPECT_FALSE(classifier.Fit(regression).ok());
  KnnClassifier zero_k({.k = 0});
  EXPECT_FALSE(zero_k.Fit(MakeXorLikeData()).ok());
}

TEST(KnnClassifierTest, OneNearestNeighborPredictsNearestLabel) {
  KnnClassifier classifier({.k = 1});
  ASSERT_TRUE(classifier.Fit(MakeXorLikeData()).ok());
  EXPECT_EQ(classifier.Predict(Vector{0.5, 0.5}), 0);
  EXPECT_EQ(classifier.Predict(Vector{9.5, 9.5}), 1);
}

TEST(KnnClassifierTest, MajorityVoteWins) {
  Dataset ds(1, TaskType::kClassification);
  ds.Add(Vector{0.0}, 0);
  ds.Add(Vector{1.0}, 1);
  ds.Add(Vector{2.0}, 1);
  KnnClassifier classifier({.k = 3});
  ASSERT_TRUE(classifier.Fit(ds).ok());
  // Query at 0: nearest is label 0, but 2 of 3 neighbours say 1.
  EXPECT_EQ(classifier.Predict(Vector{0.0}), 1);
}

TEST(KnnClassifierTest, VoteTieBreaksTowardCloserClass) {
  Dataset ds(1, TaskType::kClassification);
  ds.Add(Vector{0.0}, 0);
  ds.Add(Vector{1.0}, 0);
  ds.Add(Vector{3.0}, 1);
  ds.Add(Vector{4.0}, 1);
  KnnClassifier classifier({.k = 4});
  ASSERT_TRUE(classifier.Fit(ds).ok());
  // 2-2 vote; class 0 has smaller total distance to the query at 0.5.
  EXPECT_EQ(classifier.Predict(Vector{0.5}), 0);
  // Symmetric query favours class 1.
  EXPECT_EQ(classifier.Predict(Vector{3.5}), 1);
}

TEST(KnnClassifierTest, HighAccuracyOnSeparatedBlobs) {
  // Train/test from one generated pool so class centres match.
  Rng rng(1);
  Dataset pool = datagen::MakeGaussianBlobs(3, 70, 4, 40.0, rng);
  std::vector<std::size_t> train_idx, test_idx;
  for (std::size_t i = 0; i < pool.size(); ++i) {
    (i % 4 == 0 ? test_idx : train_idx).push_back(i);
  }
  Dataset train = pool.Select(train_idx);
  Dataset test = pool.Select(test_idx);

  KnnClassifier classifier({.k = 3});
  ASSERT_TRUE(classifier.Fit(train).ok());
  std::size_t correct = 0;
  for (std::size_t i = 0; i < test.size(); ++i) {
    if (classifier.Predict(test.record(i)) == test.label(i)) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / test.size(), 0.95);
}

TEST(KnnRegressorTest, FitValidatesInput) {
  KnnRegressor regressor({.k = 1});
  EXPECT_FALSE(regressor.Fit(Dataset(1, TaskType::kRegression)).ok());
  EXPECT_FALSE(regressor.Fit(MakeXorLikeData()).ok());
}

TEST(KnnRegressorTest, OneNearestNeighborCopiesTarget) {
  Dataset ds(1, TaskType::kRegression);
  ds.Add(Vector{0.0}, 5.0);
  ds.Add(Vector{10.0}, 15.0);
  KnnRegressor regressor({.k = 1});
  ASSERT_TRUE(regressor.Fit(ds).ok());
  EXPECT_DOUBLE_EQ(regressor.Predict(Vector{1.0}), 5.0);
  EXPECT_DOUBLE_EQ(regressor.Predict(Vector{9.0}), 15.0);
}

TEST(KnnRegressorTest, AveragesKNeighborTargets) {
  Dataset ds(1, TaskType::kRegression);
  ds.Add(Vector{0.0}, 10.0);
  ds.Add(Vector{1.0}, 20.0);
  ds.Add(Vector{100.0}, 1000.0);
  KnnRegressor regressor({.k = 2});
  ASSERT_TRUE(regressor.Fit(ds).ok());
  EXPECT_DOUBLE_EQ(regressor.Predict(Vector{0.5}), 15.0);
}

TEST(KnnRegressorTest, RecoversSmoothFunction) {
  Rng rng(2);
  Dataset train(1, TaskType::kRegression);
  for (int i = 0; i < 500; ++i) {
    double x = rng.Uniform(0.0, 10.0);
    train.Add(Vector{x}, 3.0 * x + 1.0);
  }
  KnnRegressor regressor({.k = 5});
  ASSERT_TRUE(regressor.Fit(train).ok());
  for (double x : {1.0, 3.0, 5.0, 7.0, 9.0}) {
    EXPECT_NEAR(regressor.Predict(Vector{x}), 3.0 * x + 1.0, 0.5);
  }
}

}  // namespace
}  // namespace condensa::mining
