#include "mining/evaluation.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "datagen/profiles.h"
#include "mining/knn.h"
#include "mining/nearest_centroid.h"

namespace condensa::mining {
namespace {

using data::Dataset;
using data::TaskType;
using linalg::Vector;

// A classifier with a fixed answer, for exact accuracy arithmetic.
class ConstantClassifier : public Classifier {
 public:
  explicit ConstantClassifier(int label) : label_(label) {}
  Status Fit(const data::Dataset&) override { return OkStatus(); }
  int Predict(const linalg::Vector&) const override { return label_; }

 private:
  int label_;
};

class ConstantRegressor : public Regressor {
 public:
  explicit ConstantRegressor(double value) : value_(value) {}
  Status Fit(const data::Dataset&) override { return OkStatus(); }
  double Predict(const linalg::Vector&) const override { return value_; }

 private:
  double value_;
};

Dataset SmallTestSet() {
  Dataset ds(1, TaskType::kClassification);
  ds.Add(Vector{0.0}, 0);
  ds.Add(Vector{1.0}, 0);
  ds.Add(Vector{2.0}, 1);
  ds.Add(Vector{3.0}, 1);
  return ds;
}

TEST(EvaluateAccuracyTest, ExactFraction) {
  ConstantClassifier always_zero(0);
  auto accuracy = EvaluateAccuracy(always_zero, SmallTestSet());
  ASSERT_TRUE(accuracy.ok());
  EXPECT_DOUBLE_EQ(*accuracy, 0.5);
}

TEST(EvaluateAccuracyTest, RejectsBadInput) {
  ConstantClassifier c(0);
  EXPECT_FALSE(EvaluateAccuracy(c, Dataset(1, TaskType::kClassification)).ok());
  Dataset regression(1, TaskType::kRegression);
  regression.Add(Vector{0.0}, 1.0);
  EXPECT_FALSE(EvaluateAccuracy(c, regression).ok());
}

TEST(EvaluateWithinToleranceTest, CountsHitsInsideBand) {
  Dataset ds(1, TaskType::kRegression);
  ds.Add(Vector{0.0}, 10.0);
  ds.Add(Vector{1.0}, 10.8);
  ds.Add(Vector{2.0}, 12.0);
  ConstantRegressor always_ten(10.0);
  auto accuracy = EvaluateWithinTolerance(always_ten, ds, 1.0);
  ASSERT_TRUE(accuracy.ok());
  EXPECT_NEAR(*accuracy, 2.0 / 3.0, 1e-12);
}

TEST(EvaluateWithinToleranceTest, RejectsNegativeTolerance) {
  Dataset ds(1, TaskType::kRegression);
  ds.Add(Vector{0.0}, 10.0);
  ConstantRegressor r(10.0);
  EXPECT_FALSE(EvaluateWithinTolerance(r, ds, -0.5).ok());
}

TEST(EvaluateMeanAbsoluteErrorTest, ExactValue) {
  Dataset ds(1, TaskType::kRegression);
  ds.Add(Vector{0.0}, 10.0);
  ds.Add(Vector{1.0}, 14.0);
  ConstantRegressor always_twelve(12.0);
  auto mae = EvaluateMeanAbsoluteError(always_twelve, ds);
  ASSERT_TRUE(mae.ok());
  EXPECT_DOUBLE_EQ(*mae, 2.0);
}

TEST(ConfusionMatrixTest, CountsEveryCell) {
  ConstantClassifier always_one(1);
  auto matrix = ConfusionMatrix(always_one, SmallTestSet());
  ASSERT_TRUE(matrix.ok());
  EXPECT_EQ((*matrix)[0][1], 2u);
  EXPECT_EQ((*matrix)[1][1], 2u);
  EXPECT_EQ((*matrix)[0].count(0), 0u);
}

TEST(CrossValidateAccuracyTest, PerfectClassifierScoresOne) {
  Rng rng(1);
  Dataset ds = datagen::MakeGaussianBlobs(2, 40, 3, 50.0, rng);
  KnnClassifier knn({.k = 1});
  auto accuracy = CrossValidateAccuracy(knn, ds, 5, rng);
  ASSERT_TRUE(accuracy.ok());
  EXPECT_GT(*accuracy, 0.95);
}

TEST(CrossValidateAccuracyTest, ConstantClassifierScoresClassFraction) {
  Dataset ds(1, TaskType::kClassification);
  for (int i = 0; i < 30; ++i) ds.Add(Vector{static_cast<double>(i)}, 0);
  for (int i = 0; i < 10; ++i) ds.Add(Vector{static_cast<double>(i)}, 1);
  ConstantClassifier always_zero(0);
  Rng rng(2);
  auto accuracy = CrossValidateAccuracy(always_zero, ds, 4, rng);
  ASSERT_TRUE(accuracy.ok());
  EXPECT_NEAR(*accuracy, 0.75, 0.01);
}

TEST(CrossValidateAccuracyTest, PropagatesFoldErrors) {
  Dataset ds = SmallTestSet();
  KnnClassifier knn({.k = 1});
  Rng rng(3);
  EXPECT_FALSE(CrossValidateAccuracy(knn, ds, 1, rng).ok());
  EXPECT_FALSE(CrossValidateAccuracy(knn, ds, 10, rng).ok());
}

TEST(EvaluationIntegrationTest, NearestCentroidOnBlobs) {
  Rng rng(4);
  Dataset ds = datagen::MakeGaussianBlobs(4, 30, 3, 30.0, rng);
  NearestCentroidClassifier classifier;
  auto accuracy = CrossValidateAccuracy(classifier, ds, 4, rng);
  ASSERT_TRUE(accuracy.ok());
  EXPECT_GT(*accuracy, 0.9);
}

}  // namespace
}  // namespace condensa::mining
