#include "mining/kmeans.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"

namespace condensa::mining {
namespace {

using linalg::Vector;

std::vector<Vector> TwoTightClusters(Rng& rng, std::size_t per_cluster) {
  std::vector<Vector> points;
  for (std::size_t i = 0; i < per_cluster; ++i) {
    points.push_back(Vector{rng.Gaussian(0.0, 0.5), rng.Gaussian(0.0, 0.5)});
    points.push_back(
        Vector{rng.Gaussian(20.0, 0.5), rng.Gaussian(20.0, 0.5)});
  }
  return points;
}

TEST(KMeansTest, RejectsInvalidInput) {
  Rng rng(1);
  std::vector<Vector> points = {Vector{0.0}, Vector{1.0}};
  EXPECT_FALSE(KMeans(points, {.num_clusters = 0}, rng).ok());
  EXPECT_FALSE(KMeans(points, {.num_clusters = 3}, rng).ok());
  std::vector<Vector> ragged = {Vector{0.0}, Vector{1.0, 2.0}};
  EXPECT_FALSE(KMeans(ragged, {.num_clusters = 2}, rng).ok());
}

TEST(KMeansTest, RecoversWellSeparatedClusters) {
  Rng rng(2);
  std::vector<Vector> points = TwoTightClusters(rng, 50);
  auto result = KMeans(points, {.num_clusters = 2}, rng);
  ASSERT_TRUE(result.ok());
  // One centroid near (0,0), the other near (20,20).
  double c0 = result->centroids[0][0];
  double c1 = result->centroids[1][0];
  EXPECT_NEAR(std::min(c0, c1), 0.0, 1.0);
  EXPECT_NEAR(std::max(c0, c1), 20.0, 1.0);
  // All even-indexed points (cluster A) share one assignment.
  std::size_t first = result->assignments[0];
  for (std::size_t i = 0; i < points.size(); i += 2) {
    EXPECT_EQ(result->assignments[i], first);
  }
}

TEST(KMeansTest, AssignmentsCoverAllPoints) {
  Rng rng(3);
  std::vector<Vector> points = TwoTightClusters(rng, 30);
  auto result = KMeans(points, {.num_clusters = 4}, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->assignments.size(), points.size());
  for (std::size_t a : result->assignments) {
    EXPECT_LT(a, 4u);
  }
}

TEST(KMeansTest, SingleClusterCentroidIsMean) {
  std::vector<Vector> points = {Vector{0.0}, Vector{2.0}, Vector{4.0}};
  Rng rng(4);
  auto result = KMeans(points, {.num_clusters = 1}, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->centroids[0][0], 2.0, 1e-9);
  EXPECT_NEAR(result->inertia, 8.0, 1e-9);
}

TEST(KMeansTest, KEqualsNGivesZeroInertia) {
  std::vector<Vector> points = {Vector{0.0}, Vector{5.0}, Vector{11.0}};
  Rng rng(5);
  auto result = KMeans(points, {.num_clusters = 3}, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->inertia, 0.0, 1e-9);
}

TEST(KMeansTest, DuplicatePointsHandled) {
  std::vector<Vector> points(10, Vector{3.0, 3.0});
  Rng rng(6);
  auto result = KMeans(points, {.num_clusters = 2}, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->inertia, 0.0, 1e-9);
}

TEST(KMeansTest, InertiaNeverExceedsSingleClusterBaseline) {
  Rng rng(7);
  std::vector<Vector> points = TwoTightClusters(rng, 40);
  auto one = KMeans(points, {.num_clusters = 1}, rng);
  auto two = KMeans(points, {.num_clusters = 2}, rng);
  ASSERT_TRUE(one.ok());
  ASSERT_TRUE(two.ok());
  EXPECT_LT(two->inertia, one->inertia);
}

}  // namespace
}  // namespace condensa::mining
