#include "mining/dbscan.h"

#include <gtest/gtest.h>

#include <set>

#include "common/random.h"

namespace condensa::mining {
namespace {

using linalg::Vector;

TEST(DbscanTest, RejectsBadInput) {
  std::vector<Vector> points = {Vector{0.0}};
  EXPECT_FALSE(Dbscan({}, {}).ok());
  EXPECT_FALSE(Dbscan(points, {.epsilon = 0.0}).ok());
  EXPECT_FALSE(Dbscan(points, {.epsilon = 1.0, .min_points = 0}).ok());
}

TEST(DbscanTest, FindsTwoDenseClustersAndNoise) {
  Rng rng(1);
  std::vector<Vector> points;
  for (int i = 0; i < 60; ++i) {
    points.push_back(Vector{rng.Gaussian(0.0, 0.3), rng.Gaussian(0.0, 0.3)});
    points.push_back(
        Vector{rng.Gaussian(10.0, 0.3), rng.Gaussian(10.0, 0.3)});
  }
  // Two isolated outliers.
  points.push_back(Vector{5.0, 5.0});
  points.push_back(Vector{-8.0, 9.0});

  auto result = Dbscan(points, {.epsilon = 1.0, .min_points = 5});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_clusters, 2u);
  EXPECT_EQ(result->NoiseCount(), 2u);
  EXPECT_EQ(result->assignments[points.size() - 1], DbscanResult::kNoise);
  EXPECT_EQ(result->assignments[points.size() - 2], DbscanResult::kNoise);
  // Cluster A members all share one id.
  std::size_t cluster_a = result->assignments[0];
  for (std::size_t i = 0; i + 2 < points.size(); i += 2) {
    EXPECT_EQ(result->assignments[i], cluster_a);
  }
}

TEST(DbscanTest, EverythingNoiseWhenEpsilonTiny) {
  Rng rng(2);
  std::vector<Vector> points;
  for (int i = 0; i < 30; ++i) {
    points.push_back(Vector{rng.Uniform(0.0, 100.0)});
  }
  auto result = Dbscan(points, {.epsilon = 1e-6, .min_points = 3});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_clusters, 0u);
  EXPECT_EQ(result->NoiseCount(), points.size());
}

TEST(DbscanTest, SingleClusterWhenEpsilonHuge) {
  Rng rng(3);
  std::vector<Vector> points;
  for (int i = 0; i < 40; ++i) {
    points.push_back(Vector{rng.Gaussian(), rng.Gaussian()});
  }
  auto result = Dbscan(points, {.epsilon = 100.0, .min_points = 3});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_clusters, 1u);
  EXPECT_EQ(result->NoiseCount(), 0u);
}

TEST(DbscanTest, MinPointsOneMakesEveryPointCore) {
  std::vector<Vector> points = {Vector{0.0}, Vector{100.0}};
  auto result = Dbscan(points, {.epsilon = 1.0, .min_points = 1});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_clusters, 2u);
  EXPECT_EQ(result->NoiseCount(), 0u);
}

TEST(DbscanTest, BorderPointsJoinTheirCoreCluster) {
  // A dense chain plus one point on the fringe reachable from a core.
  std::vector<Vector> points;
  for (int i = 0; i < 10; ++i) {
    points.push_back(Vector{static_cast<double>(i) * 0.1});
  }
  points.push_back(Vector{1.35});  // within eps of the chain end only
  auto result = Dbscan(points, {.epsilon = 0.5, .min_points = 4});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_clusters, 1u);
  EXPECT_EQ(result->assignments.back(), 0u);
}

TEST(DbscanTest, AssignmentsCoverAllPoints) {
  Rng rng(4);
  std::vector<Vector> points;
  for (int i = 0; i < 200; ++i) {
    points.push_back(Vector{rng.Gaussian(), rng.Gaussian()});
  }
  auto result = Dbscan(points, {.epsilon = 0.5, .min_points = 4});
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->assignments.size(), points.size());
  for (std::size_t a : result->assignments) {
    EXPECT_TRUE(a == DbscanResult::kNoise || a < result->num_clusters);
  }
}

}  // namespace
}  // namespace condensa::mining
