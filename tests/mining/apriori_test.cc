#include "mining/apriori.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"

namespace condensa::mining {
namespace {

using data::Dataset;
using linalg::Vector;

// The textbook market-basket example.
std::vector<Transaction> MarketBasket() {
  return {
      {0, 1, 4},     // bread, milk, beer... (ids are opaque)
      {0, 1},        //
      {0, 2, 3},     //
      {1, 2, 3, 4},  //
      {0, 1, 2, 3},  //
  };
}

TEST(AprioriTest, RejectsInvalidInput) {
  EXPECT_FALSE(MineAssociationRules({}, {}).ok());
  AprioriOptions bad_support;
  bad_support.min_support = 0.0;
  EXPECT_FALSE(MineAssociationRules(MarketBasket(), bad_support).ok());
  AprioriOptions bad_confidence;
  bad_confidence.min_confidence = 1.5;
  EXPECT_FALSE(MineAssociationRules(MarketBasket(), bad_confidence).ok());
  EXPECT_FALSE(MineAssociationRules({{2, 1}}, {}).ok());   // unsorted
  EXPECT_FALSE(MineAssociationRules({{1, 1}}, {}).ok());   // duplicate
  EXPECT_FALSE(MineAssociationRules({{-1}}, {}).ok());     // negative item
}

TEST(AprioriTest, SingletonSupportsAreExact) {
  AprioriOptions options;
  options.min_support = 0.01;
  options.min_confidence = 0.99;
  auto result = MineAssociationRules(MarketBasket(), options);
  ASSERT_TRUE(result.ok());
  // Item 0 appears in 4/5 transactions, item 4 in 2/5.
  double support0 = -1.0, support4 = -1.0;
  for (const FrequentItemset& itemset : result->itemsets) {
    if (itemset.items == std::vector<Item>{0}) support0 = itemset.support;
    if (itemset.items == std::vector<Item>{4}) support4 = itemset.support;
  }
  EXPECT_DOUBLE_EQ(support0, 0.8);
  EXPECT_DOUBLE_EQ(support4, 0.4);
}

TEST(AprioriTest, PairSupportMatchesHandCount) {
  AprioriOptions options;
  options.min_support = 0.2;
  auto result = MineAssociationRules(MarketBasket(), options);
  ASSERT_TRUE(result.ok());
  // {0,1} appears in 3/5 transactions.
  double support01 = -1.0;
  for (const FrequentItemset& itemset : result->itemsets) {
    if (itemset.items == std::vector<Item>{0, 1}) {
      support01 = itemset.support;
    }
  }
  EXPECT_DOUBLE_EQ(support01, 0.6);
}

TEST(AprioriTest, MinSupportPrunes) {
  AprioriOptions strict;
  strict.min_support = 0.9;
  auto result = MineAssociationRules(MarketBasket(), strict);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->itemsets.empty());
  EXPECT_TRUE(result->rules.empty());
}

TEST(AprioriTest, RuleConfidenceAndLiftCorrect) {
  AprioriOptions options;
  options.min_support = 0.2;
  options.min_confidence = 0.5;
  auto result = MineAssociationRules(MarketBasket(), options);
  ASSERT_TRUE(result.ok());
  // Rule {4} -> {1}: support({1,4}) = 2/5, support({4}) = 2/5 ->
  // confidence 1.0; lift = 1.0 / support({1}) = 1 / 0.8 = 1.25.
  bool found = false;
  for (const AssociationRule& rule : result->rules) {
    if (rule.antecedent == std::vector<Item>{4} &&
        rule.consequent == std::vector<Item>{1}) {
      found = true;
      EXPECT_DOUBLE_EQ(rule.support, 0.4);
      EXPECT_DOUBLE_EQ(rule.confidence, 1.0);
      EXPECT_NEAR(rule.lift, 1.25, 1e-12);
    }
  }
  EXPECT_TRUE(found);
}

TEST(AprioriTest, RulesSortedByConfidence) {
  AprioriOptions options;
  options.min_support = 0.2;
  options.min_confidence = 0.3;
  auto result = MineAssociationRules(MarketBasket(), options);
  ASSERT_TRUE(result.ok());
  for (std::size_t i = 1; i < result->rules.size(); ++i) {
    EXPECT_GE(result->rules[i - 1].confidence + 1e-12,
              result->rules[i].confidence);
  }
}

TEST(AprioriTest, MaxItemsetSizeCapsGrowth) {
  AprioriOptions options;
  options.min_support = 0.2;
  options.max_itemset_size = 2;
  auto result = MineAssociationRules(MarketBasket(), options);
  ASSERT_TRUE(result.ok());
  for (const FrequentItemset& itemset : result->itemsets) {
    EXPECT_LE(itemset.items.size(), 2u);
  }
}

TEST(AprioriTest, PerfectImplicationDiscovered) {
  // Item 1 always co-occurs with item 0.
  std::vector<Transaction> transactions = {
      {0, 1}, {0, 1}, {0, 1}, {0}, {2},
  };
  AprioriOptions options;
  options.min_support = 0.4;
  options.min_confidence = 0.95;
  auto result = MineAssociationRules(transactions, options);
  ASSERT_TRUE(result.ok());
  bool found = false;
  for (const AssociationRule& rule : result->rules) {
    if (rule.antecedent == std::vector<Item>{1} &&
        rule.consequent == std::vector<Item>{0}) {
      found = true;
      EXPECT_DOUBLE_EQ(rule.confidence, 1.0);
    }
  }
  EXPECT_TRUE(found);
}

TEST(DiscretizeTest, RejectsBadInput) {
  EXPECT_FALSE(DiscretizeToTransactions(Dataset(2), 4).ok());
  Dataset ds(1);
  ds.Add(Vector{0.0});
  EXPECT_FALSE(DiscretizeToTransactions(ds, 0).ok());
}

TEST(DiscretizeTest, ItemsEncodeAttributeAndBin) {
  Dataset ds(2);
  ds.Add(Vector{0.0, 10.0});
  ds.Add(Vector{1.0, 20.0});
  auto transactions = DiscretizeToTransactions(ds, 2);
  ASSERT_TRUE(transactions.ok());
  ASSERT_EQ(transactions->size(), 2u);
  // Record 0: attr0 bin0 -> item 0; attr1 bin0 -> item 2.
  EXPECT_EQ((*transactions)[0], (Transaction{0, 2}));
  // Record 1: attr0 bin1 -> item 1; attr1 bin1 -> item 3.
  EXPECT_EQ((*transactions)[1], (Transaction{1, 3}));
}

TEST(DiscretizeTest, ConstantAttributeGoesToBinZero) {
  Dataset ds(1);
  ds.Add(Vector{5.0});
  ds.Add(Vector{5.0});
  auto transactions = DiscretizeToTransactions(ds, 4);
  ASSERT_TRUE(transactions.ok());
  EXPECT_EQ((*transactions)[0], (Transaction{0}));
  EXPECT_EQ((*transactions)[1], (Transaction{0}));
}

TEST(DiscretizeTest, PipelineFindsCorrelationRule) {
  // Two strongly correlated attributes: high-x implies high-y, so the
  // mined rules must include (x in top bin) -> (y in top bin).
  Rng rng(1);
  Dataset ds(2);
  for (int i = 0; i < 500; ++i) {
    double x = rng.Uniform(0.0, 1.0);
    ds.Add(Vector{x, x + rng.Gaussian(0.0, 0.02)});
  }
  auto transactions = DiscretizeToTransactions(ds, 2);
  ASSERT_TRUE(transactions.ok());
  AprioriOptions options;
  options.min_support = 0.25;
  options.min_confidence = 0.8;
  auto result = MineAssociationRules(*transactions, options);
  ASSERT_TRUE(result.ok());
  bool found = false;
  for (const AssociationRule& rule : result->rules) {
    if (rule.antecedent == std::vector<Item>{1} &&
        rule.consequent == std::vector<Item>{3}) {
      found = true;
      EXPECT_GT(rule.confidence, 0.9);
      EXPECT_GT(rule.lift, 1.5);
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace condensa::mining
