#include "mining/mixture_classifier.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "data/split.h"
#include "datagen/profiles.h"
#include "mining/evaluation.h"
#include "mining/knn.h"

namespace condensa::mining {
namespace {

using data::Dataset;
using data::TaskType;
using linalg::Vector;

// Fraction of `test` records the mixture classifier labels correctly.
double MixtureAccuracy(const CondensedMixtureClassifier& classifier,
                       const Dataset& test) {
  std::size_t correct = 0;
  for (std::size_t i = 0; i < test.size(); ++i) {
    if (classifier.Predict(test.record(i)) == test.label(i)) {
      ++correct;
    }
  }
  return static_cast<double>(correct) / static_cast<double>(test.size());
}

TEST(MixtureClassifierTest, FitValidatesInput) {
  CondensedMixtureClassifier classifier;
  core::CondensedPools empty;
  empty.task = TaskType::kClassification;
  empty.feature_dim = 2;
  EXPECT_FALSE(classifier.Fit(empty).ok());

  core::CondensedPools regression;
  regression.task = TaskType::kRegression;
  regression.feature_dim = 2;
  EXPECT_FALSE(classifier.Fit(regression).ok());
}

TEST(MixtureClassifierTest, SeparatedBlobsClassifiedCorrectly) {
  Rng rng(1);
  Dataset dataset = datagen::MakeGaussianBlobs(2, 150, 3, 8.0, rng);
  auto split = data::SplitTrainTest(dataset, 0.7, rng);
  ASSERT_TRUE(split.ok());

  core::CondensationEngine engine({.group_size = 12});
  auto pools = engine.Condense(split->train, rng);
  ASSERT_TRUE(pools.ok());

  CondensedMixtureClassifier classifier;
  ASSERT_TRUE(classifier.Fit(*pools).ok());
  EXPECT_GT(MixtureAccuracy(classifier, split->test), 0.95);
}

TEST(MixtureClassifierTest, LogScoresAreFiniteAndOrdered) {
  Rng rng(2);
  Dataset dataset = datagen::MakeGaussianBlobs(3, 60, 2, 10.0, rng);
  core::CondensationEngine engine({.group_size = 10});
  auto pools = engine.Condense(dataset, rng);
  ASSERT_TRUE(pools.ok());
  CondensedMixtureClassifier classifier;
  ASSERT_TRUE(classifier.Fit(*pools).ok());

  // A point near class 0's mean scores class 0 highest.
  Dataset class0 = dataset.SelectLabel(0);
  Vector center = class0.Mean();
  auto scores = classifier.ClassLogScores(center);
  ASSERT_EQ(scores.size(), 3u);
  for (const auto& [label, score] : scores) {
    EXPECT_TRUE(std::isfinite(score));
  }
  EXPECT_EQ(classifier.Predict(center), 0);
  EXPECT_GT(scores[0], scores[1]);
  EXPECT_GT(scores[0], scores[2]);
}

TEST(MixtureClassifierTest, DegenerateGroupsHandledByRidge) {
  // A class whose records are identical has a zero covariance group; the
  // relative ridge must keep it factorizable.
  Rng rng(3);
  Dataset dataset(2, TaskType::kClassification);
  for (int i = 0; i < 20; ++i) {
    dataset.Add(Vector{1.0, 1.0}, 0);  // degenerate class
    dataset.Add(Vector{rng.Gaussian(8.0, 1.0), rng.Gaussian(8.0, 1.0)}, 1);
  }
  core::CondensationEngine engine({.group_size = 5});
  auto pools = engine.Condense(dataset, rng);
  ASSERT_TRUE(pools.ok());
  CondensedMixtureClassifier classifier;
  ASSERT_TRUE(classifier.Fit(*pools).ok());
  EXPECT_EQ(classifier.Predict(Vector{1.0, 1.0}), 0);
  EXPECT_EQ(classifier.Predict(Vector{8.0, 8.0}), 1);
}

TEST(MixtureClassifierTest, ComparableToKnnOnRegeneratedData) {
  // The statistics-native model and the regenerate-then-kNN pipeline use
  // the same information; their accuracies should land close together.
  Rng rng(4);
  Dataset dataset = datagen::MakePima(rng);
  auto split = data::SplitTrainTest(dataset, 0.75, rng);
  ASSERT_TRUE(split.ok());

  core::CondensationEngine engine({.group_size = 20});
  auto pools = engine.Condense(split->train, rng);
  ASSERT_TRUE(pools.ok());

  CondensedMixtureClassifier mixture;
  ASSERT_TRUE(mixture.Fit(*pools).ok());
  double mixture_accuracy = MixtureAccuracy(mixture, split->test);

  auto release = core::GenerateRelease(*pools, rng);
  ASSERT_TRUE(release.ok());
  KnnClassifier knn({.k = 5});
  ASSERT_TRUE(knn.Fit(release->anonymized).ok());
  auto knn_accuracy = EvaluateAccuracy(knn, split->test);
  ASSERT_TRUE(knn_accuracy.ok());

  EXPECT_NEAR(mixture_accuracy, *knn_accuracy, 0.08);
  EXPECT_GT(mixture_accuracy, 0.6);
}

}  // namespace
}  // namespace condensa::mining
