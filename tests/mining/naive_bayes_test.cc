#include "mining/naive_bayes.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "datagen/profiles.h"

namespace condensa::mining {
namespace {

using data::Dataset;
using data::TaskType;
using linalg::Vector;

TEST(GaussianNaiveBayesTest, FitValidatesInput) {
  GaussianNaiveBayes nb;
  EXPECT_FALSE(nb.Fit(Dataset(2, TaskType::kClassification)).ok());
  Dataset unlabeled(2);
  unlabeled.Add(Vector{0.0, 0.0});
  EXPECT_FALSE(nb.Fit(unlabeled).ok());
}

TEST(GaussianNaiveBayesTest, SeparatedClassesClassifiedCorrectly) {
  Rng rng(1);
  Dataset train(2, TaskType::kClassification);
  for (int i = 0; i < 100; ++i) {
    train.Add(Vector{rng.Gaussian(0.0, 1.0), rng.Gaussian(0.0, 1.0)}, 0);
    train.Add(Vector{rng.Gaussian(8.0, 1.0), rng.Gaussian(8.0, 1.0)}, 1);
  }
  GaussianNaiveBayes nb;
  ASSERT_TRUE(nb.Fit(train).ok());
  EXPECT_EQ(nb.Predict(Vector{0.5, -0.5}), 0);
  EXPECT_EQ(nb.Predict(Vector{7.5, 8.5}), 1);
}

TEST(GaussianNaiveBayesTest, PriorBreaksNearTies) {
  Dataset train(1, TaskType::kClassification);
  // Same distribution for both classes, but class 0 is 9x more frequent.
  for (int i = 0; i < 90; ++i) {
    train.Add(Vector{static_cast<double>(i % 10)}, 0);
  }
  for (int i = 0; i < 10; ++i) {
    train.Add(Vector{static_cast<double>(i)}, 1);
  }
  GaussianNaiveBayes nb;
  ASSERT_TRUE(nb.Fit(train).ok());
  EXPECT_EQ(nb.Predict(Vector{5.0}), 0);
}

TEST(GaussianNaiveBayesTest, LogLikelihoodsFiniteOnDegenerateClass) {
  Dataset train(1, TaskType::kClassification);
  // Class with zero variance: floor must keep densities finite.
  train.Add(Vector{1.0}, 0);
  train.Add(Vector{1.0}, 0);
  train.Add(Vector{5.0}, 1);
  train.Add(Vector{6.0}, 1);
  GaussianNaiveBayes nb;
  ASSERT_TRUE(nb.Fit(train).ok());
  auto scores = nb.ClassLogLikelihoods(Vector{3.0});
  for (const auto& [label, score] : scores) {
    EXPECT_TRUE(std::isfinite(score)) << "label " << label;
  }
  EXPECT_EQ(nb.Predict(Vector{1.0}), 0);
  EXPECT_EQ(nb.Predict(Vector{5.5}), 1);
}

TEST(GaussianNaiveBayesTest, GoodAccuracyOnBlobs) {
  Rng rng(2);
  Dataset pool = datagen::MakeGaussianBlobs(3, 80, 4, 15.0, rng);
  std::vector<std::size_t> train_idx, test_idx;
  for (std::size_t i = 0; i < pool.size(); ++i) {
    (i % 4 == 0 ? test_idx : train_idx).push_back(i);
  }
  Dataset train = pool.Select(train_idx);
  Dataset test = pool.Select(test_idx);
  GaussianNaiveBayes nb;
  ASSERT_TRUE(nb.Fit(train).ok());
  std::size_t correct = 0;
  for (std::size_t i = 0; i < test.size(); ++i) {
    if (nb.Predict(test.record(i)) == test.label(i)) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / test.size(), 0.9);
}

}  // namespace
}  // namespace condensa::mining
