#include "mining/nearest_centroid.h"

#include <gtest/gtest.h>

namespace condensa::mining {
namespace {

using data::Dataset;
using data::TaskType;
using linalg::Vector;

TEST(NearestCentroidTest, FitValidatesInput) {
  NearestCentroidClassifier classifier;
  EXPECT_FALSE(classifier.Fit(Dataset(2, TaskType::kClassification)).ok());
  Dataset regression(1, TaskType::kRegression);
  regression.Add(Vector{0.0}, 1.0);
  EXPECT_FALSE(classifier.Fit(regression).ok());
}

TEST(NearestCentroidTest, CentroidsComputedPerClass) {
  Dataset train(2, TaskType::kClassification);
  train.Add(Vector{0.0, 0.0}, 0);
  train.Add(Vector{2.0, 2.0}, 0);
  train.Add(Vector{10.0, 10.0}, 1);
  NearestCentroidClassifier classifier;
  ASSERT_TRUE(classifier.Fit(train).ok());
  ASSERT_EQ(classifier.centroids().size(), 2u);
  EXPECT_TRUE(linalg::ApproxEqual(classifier.centroids().at(0),
                                  Vector{1.0, 1.0}, 1e-12));
  EXPECT_TRUE(linalg::ApproxEqual(classifier.centroids().at(1),
                                  Vector{10.0, 10.0}, 1e-12));
}

TEST(NearestCentroidTest, PredictsNearestClassMean) {
  Dataset train(1, TaskType::kClassification);
  train.Add(Vector{0.0}, 5);
  train.Add(Vector{2.0}, 5);
  train.Add(Vector{10.0}, 9);
  train.Add(Vector{12.0}, 9);
  NearestCentroidClassifier classifier;
  ASSERT_TRUE(classifier.Fit(train).ok());
  EXPECT_EQ(classifier.Predict(Vector{3.0}), 5);
  EXPECT_EQ(classifier.Predict(Vector{9.0}), 9);
}

TEST(NearestCentroidTest, SingleClassAlwaysPredicted) {
  Dataset train(1, TaskType::kClassification);
  train.Add(Vector{0.0}, 3);
  NearestCentroidClassifier classifier;
  ASSERT_TRUE(classifier.Fit(train).ok());
  EXPECT_EQ(classifier.Predict(Vector{100.0}), 3);
}

}  // namespace
}  // namespace condensa::mining
