#include "mining/decision_tree.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "datagen/profiles.h"
#include "mining/evaluation.h"

namespace condensa::mining {
namespace {

using data::Dataset;
using data::TaskType;
using linalg::Vector;

TEST(DecisionTreeTest, FitValidatesInput) {
  DecisionTreeClassifier tree;
  EXPECT_FALSE(tree.Fit(Dataset(2, TaskType::kClassification)).ok());
  Dataset regression(1, TaskType::kRegression);
  regression.Add(Vector{0.0}, 1.0);
  EXPECT_FALSE(tree.Fit(regression).ok());
}

TEST(DecisionTreeTest, PureDatasetYieldsSingleLeaf) {
  Dataset train(2, TaskType::kClassification);
  for (int i = 0; i < 20; ++i) {
    Vector v{static_cast<double>(i), 0.0};
    train.Add(v, 7);
  }
  DecisionTreeClassifier tree;
  ASSERT_TRUE(tree.Fit(train).ok());
  EXPECT_EQ(tree.node_count(), 1u);
  EXPECT_EQ(tree.leaf_count(), 1u);
  EXPECT_EQ(tree.depth(), 0u);
  EXPECT_EQ(tree.Predict(Vector{100.0, 100.0}), 7);
}

TEST(DecisionTreeTest, LearnsAxisAlignedThreshold) {
  Dataset train(1, TaskType::kClassification);
  for (int i = 0; i < 50; ++i) {
    train.Add(Vector{static_cast<double>(i)}, i < 25 ? 0 : 1);
  }
  DecisionTreeClassifier tree;
  ASSERT_TRUE(tree.Fit(train).ok());
  EXPECT_EQ(tree.Predict(Vector{5.0}), 0);
  EXPECT_EQ(tree.Predict(Vector{40.0}), 1);
  // One split suffices for this problem.
  EXPECT_EQ(tree.node_count(), 3u);
}

TEST(DecisionTreeTest, LearnsXorWithTwoLevels) {
  // XOR needs depth 2 with axis-parallel splits.
  Dataset train(2, TaskType::kClassification);
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    double x = rng.Uniform(-1.0, 1.0);
    double y = rng.Uniform(-1.0, 1.0);
    train.Add(Vector{x, y}, (x > 0.0) != (y > 0.0) ? 1 : 0);
  }
  // XOR has no single informative axis cut, so the greedy tree starts
  // with a noise-driven sliver and needs a few extra levels to recover.
  DecisionTreeClassifier tree({.max_depth = 8, .min_split_size = 4});
  ASSERT_TRUE(tree.Fit(train).ok());
  auto accuracy = EvaluateAccuracy(tree, train);
  ASSERT_TRUE(accuracy.ok());
  EXPECT_GT(*accuracy, 0.9);
  EXPECT_GE(tree.depth(), 2u);
}

TEST(DecisionTreeTest, MaxDepthRespected) {
  Rng rng(2);
  Dataset train = datagen::MakeGaussianBlobs(4, 100, 3, 5.0, rng);
  DecisionTreeClassifier tree({.max_depth = 2});
  ASSERT_TRUE(tree.Fit(train).ok());
  EXPECT_LE(tree.depth(), 2u);
}

TEST(DecisionTreeTest, MinSplitSizeMakesLeaves) {
  Rng rng(3);
  Dataset train = datagen::MakeGaussianBlobs(2, 30, 2, 3.0, rng);
  DecisionTreeClassifier stump({.min_split_size = 1000});
  ASSERT_TRUE(stump.Fit(train).ok());
  EXPECT_EQ(stump.node_count(), 1u);
}

TEST(DecisionTreeTest, GoodAccuracyOnBlobs) {
  Rng rng(4);
  Dataset pool = datagen::MakeGaussianBlobs(3, 120, 4, 12.0, rng);
  std::vector<std::size_t> train_idx, test_idx;
  for (std::size_t i = 0; i < pool.size(); ++i) {
    (i % 4 == 0 ? test_idx : train_idx).push_back(i);
  }
  DecisionTreeClassifier tree;
  ASSERT_TRUE(tree.Fit(pool.Select(train_idx)).ok());
  auto accuracy = EvaluateAccuracy(tree, pool.Select(test_idx));
  ASSERT_TRUE(accuracy.ok());
  EXPECT_GT(*accuracy, 0.9);
}

TEST(DecisionTreeTest, ObliqueSplitWinsOnDiagonalBoundary) {
  // Classes separated by the line x = y: an oblique (Fisher) split nails
  // it in one cut; axis-parallel trees need a staircase. The oblique tree
  // should be both more accurate on held-out data and much smaller.
  Rng rng(5);
  Dataset train(2, TaskType::kClassification);
  Dataset test(2, TaskType::kClassification);
  for (int i = 0; i < 600; ++i) {
    double x = rng.Uniform(0.0, 10.0);
    double y = rng.Uniform(0.0, 10.0);
    if (std::abs(x - y) < 0.2) continue;  // margin, keeps the task clean
    (i % 3 == 0 ? test : train).Add(Vector{x, y}, x > y ? 1 : 0);
  }

  DecisionTreeClassifier axis({.max_depth = 3});
  DecisionTreeClassifier oblique(
      {.max_depth = 3, .use_oblique_splits = true});
  ASSERT_TRUE(axis.Fit(train).ok());
  ASSERT_TRUE(oblique.Fit(train).ok());

  auto axis_accuracy = EvaluateAccuracy(axis, test);
  auto oblique_accuracy = EvaluateAccuracy(oblique, test);
  ASSERT_TRUE(axis_accuracy.ok());
  ASSERT_TRUE(oblique_accuracy.ok());
  EXPECT_GT(oblique.oblique_split_count(), 0u);
  EXPECT_GT(*oblique_accuracy, *axis_accuracy);
  EXPECT_GT(*oblique_accuracy, 0.95);
}

TEST(DecisionTreeTest, ObliqueModeNeverUsedWhenDisabled) {
  Rng rng(6);
  Dataset train = datagen::MakeGaussianBlobs(2, 100, 3, 4.0, rng);
  DecisionTreeClassifier tree;
  ASSERT_TRUE(tree.Fit(train).ok());
  EXPECT_EQ(tree.oblique_split_count(), 0u);
}

TEST(DecisionTreeTest, RefitReplacesPreviousTree) {
  Rng rng(7);
  Dataset a = datagen::MakeGaussianBlobs(2, 50, 2, 10.0, rng);
  Dataset b(2, TaskType::kClassification);
  for (int i = 0; i < 20; ++i) {
    b.Add(Vector{0.0, 0.0}, 3);
  }
  DecisionTreeClassifier tree;
  ASSERT_TRUE(tree.Fit(a).ok());
  ASSERT_TRUE(tree.Fit(b).ok());
  EXPECT_EQ(tree.node_count(), 1u);
  EXPECT_EQ(tree.Predict(Vector{9.0, 9.0}), 3);
}

}  // namespace
}  // namespace condensa::mining
