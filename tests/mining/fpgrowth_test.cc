#include "mining/fpgrowth.h"

#include <gtest/gtest.h>

#include <map>

#include "common/random.h"

namespace condensa::mining {
namespace {

std::vector<Transaction> MarketBasket() {
  return {
      {0, 1, 4}, {0, 1}, {0, 2, 3}, {1, 2, 3, 4}, {0, 1, 2, 3},
  };
}

TEST(FpGrowthTest, RejectsInvalidInput) {
  EXPECT_FALSE(MineFrequentItemsetsFpGrowth({}, {}).ok());
  FpGrowthOptions bad;
  bad.min_support = 0.0;
  EXPECT_FALSE(MineFrequentItemsetsFpGrowth(MarketBasket(), bad).ok());
  EXPECT_FALSE(MineFrequentItemsetsFpGrowth({{2, 1}}, {}).ok());
  EXPECT_FALSE(MineFrequentItemsetsFpGrowth({{1, 1}}, {}).ok());
  EXPECT_FALSE(MineFrequentItemsetsFpGrowth({{-3}}, {}).ok());
}

TEST(FpGrowthTest, SingletonSupportsExact) {
  FpGrowthOptions options;
  options.min_support = 0.01;
  auto result = MineFrequentItemsetsFpGrowth(MarketBasket(), options);
  ASSERT_TRUE(result.ok());
  std::map<std::vector<Item>, double> supports;
  for (const FrequentItemset& itemset : *result) {
    supports[itemset.items] = itemset.support;
  }
  EXPECT_DOUBLE_EQ(supports.at({0}), 0.8);
  EXPECT_DOUBLE_EQ(supports.at({1}), 0.8);
  EXPECT_DOUBLE_EQ(supports.at({4}), 0.4);
  EXPECT_DOUBLE_EQ(supports.at({0, 1}), 0.6);
  EXPECT_DOUBLE_EQ(supports.at({2, 3}), 0.6);
}

TEST(FpGrowthTest, HighSupportPrunesEverything) {
  FpGrowthOptions options;
  options.min_support = 0.95;
  auto result = MineFrequentItemsetsFpGrowth(MarketBasket(), options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
}

TEST(FpGrowthTest, MaxItemsetSizeRespected) {
  FpGrowthOptions options;
  options.min_support = 0.2;
  options.max_itemset_size = 2;
  auto result = MineFrequentItemsetsFpGrowth(MarketBasket(), options);
  ASSERT_TRUE(result.ok());
  for (const FrequentItemset& itemset : *result) {
    EXPECT_LE(itemset.items.size(), 2u);
  }
}

TEST(FpGrowthTest, SingleTransaction) {
  FpGrowthOptions options;
  options.min_support = 1.0;
  auto result = MineFrequentItemsetsFpGrowth({{3, 7}}, options);
  ASSERT_TRUE(result.ok());
  // All 3 non-empty subsets are frequent with support 1.
  ASSERT_EQ(result->size(), 3u);
  for (const FrequentItemset& itemset : *result) {
    EXPECT_DOUBLE_EQ(itemset.support, 1.0);
  }
}

// The decisive test: FP-growth and Apriori agree exactly on randomized
// instances (two independent algorithms, one answer).
class FpGrowthVsAprioriTest : public ::testing::TestWithParam<int> {};

TEST_P(FpGrowthVsAprioriTest, SameItemsetsSameSupports) {
  Rng rng(100 + GetParam());
  std::vector<Transaction> transactions;
  int num_transactions = 10 + GetParam() * 7;
  for (int t = 0; t < num_transactions; ++t) {
    Transaction transaction;
    for (Item item = 0; item < 10; ++item) {
      if (rng.Bernoulli(0.35)) transaction.push_back(item);
    }
    if (transaction.empty()) transaction.push_back(0);
    transactions.push_back(std::move(transaction));
  }

  const double min_support = 0.15 + 0.05 * (GetParam() % 3);

  AprioriOptions apriori_options;
  apriori_options.min_support = min_support;
  apriori_options.min_confidence = 0.99;  // rules irrelevant here
  apriori_options.max_itemset_size = 4;
  auto apriori = MineAssociationRules(transactions, apriori_options);
  ASSERT_TRUE(apriori.ok());

  FpGrowthOptions fp_options;
  fp_options.min_support = min_support;
  fp_options.max_itemset_size = 4;
  auto fp = MineFrequentItemsetsFpGrowth(transactions, fp_options);
  ASSERT_TRUE(fp.ok());

  std::map<std::vector<Item>, double> apriori_supports, fp_supports;
  for (const FrequentItemset& itemset : apriori->itemsets) {
    apriori_supports[itemset.items] = itemset.support;
  }
  for (const FrequentItemset& itemset : *fp) {
    fp_supports[itemset.items] = itemset.support;
  }
  ASSERT_EQ(apriori_supports.size(), fp_supports.size());
  for (const auto& [items, support] : apriori_supports) {
    ASSERT_TRUE(fp_supports.count(items) > 0);
    EXPECT_NEAR(fp_supports[items], support, 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, FpGrowthVsAprioriTest,
                         ::testing::Range(0, 12));

}  // namespace
}  // namespace condensa::mining
