#include "shard/router.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "common/random.h"
#include "linalg/vector.h"

namespace condensa::shard {
namespace {

using linalg::Vector;

std::vector<Vector> RandomRecords(std::size_t count, std::size_t dim,
                                  std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Vector> records;
  records.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Vector record(dim);
    for (std::size_t j = 0; j < dim; ++j) record[j] = rng.Gaussian();
    records.push_back(std::move(record));
  }
  return records;
}

TEST(RouterTest, SingleShardRoutesEverythingToZero) {
  Router router({.num_shards = 1, .policy = ShardPolicy::kHash});
  for (const Vector& record : RandomRecords(50, 3, 1)) {
    EXPECT_EQ(router.Route(record), 0u);
  }
}

TEST(RouterTest, HashPolicyIsPureAndIndexFree) {
  Router a({.num_shards = 8, .policy = ShardPolicy::kHash});
  Router b({.num_shards = 8, .policy = ShardPolicy::kHash});
  for (const Vector& record : RandomRecords(200, 4, 2)) {
    const std::size_t shard = a.ShardOf(record, 0);
    EXPECT_LT(shard, 8u);
    // Same record, any arrival index, any router instance: same shard.
    EXPECT_EQ(a.ShardOf(record, 123), shard);
    EXPECT_EQ(b.ShardOf(record, 7), shard);
    EXPECT_EQ(b.Route(record), shard);
  }
}

TEST(RouterTest, HashPolicyBalancesGaussianStreams) {
  const std::size_t n = 8;
  Router router({.num_shards = n, .policy = ShardPolicy::kHash});
  std::vector<std::size_t> counts(n, 0);
  const std::size_t total = 8000;
  for (const Vector& record : RandomRecords(total, 5, 3)) {
    ++counts[router.Route(record)];
  }
  for (std::size_t shard = 0; shard < n; ++shard) {
    // Expected 1000 per shard; 4-sigma-ish slack keeps this stable.
    EXPECT_GT(counts[shard], total / n / 2) << "shard " << shard;
    EXPECT_LT(counts[shard], total / n * 2) << "shard " << shard;
  }
}

TEST(RouterTest, RoundRobinCyclesByArrivalIndex) {
  Router router({.num_shards = 3, .policy = ShardPolicy::kRoundRobin});
  std::vector<Vector> records = RandomRecords(9, 2, 4);
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(router.ShardOf(records[i], i), i % 3);
    EXPECT_EQ(router.Route(records[i]), i % 3);
  }
}

TEST(RouterTest, ScatterPartitionsEveryRecordOnce) {
  for (ShardPolicy policy : {ShardPolicy::kHash, ShardPolicy::kRoundRobin}) {
    Router router({.num_shards = 4, .policy = policy});
    std::vector<Vector> records = RandomRecords(100, 3, 5);
    std::vector<std::vector<Vector>> parts = router.Scatter(records);
    ASSERT_EQ(parts.size(), 4u);
    std::size_t total = 0;
    for (const auto& part : parts) total += part.size();
    EXPECT_EQ(total, records.size());

    // Each partition holds exactly the records ShardOf assigns to it, in
    // arrival order.
    std::vector<std::size_t> cursor(4, 0);
    for (std::size_t i = 0; i < records.size(); ++i) {
      const std::size_t shard = router.ShardOf(records[i], i);
      ASSERT_LT(cursor[shard], parts[shard].size());
      const Vector& placed = parts[shard][cursor[shard]++];
      for (std::size_t j = 0; j < records[i].dim(); ++j) {
        EXPECT_EQ(placed[j], records[i][j]);
      }
    }
  }
}

TEST(RouterTest, HashDistinguishesIeeeBitPatterns) {
  // The contract is bitwise determinism: -0.0 == 0.0 numerically, but
  // they are different bit patterns and may route differently. What must
  // hold is stability — each routes the same way every time.
  EXPECT_EQ(Router::HashRecord(Vector{0.0}), Router::HashRecord(Vector{0.0}));
  EXPECT_EQ(Router::HashRecord(Vector{-0.0}),
            Router::HashRecord(Vector{-0.0}));
  EXPECT_NE(Router::HashRecord(Vector{0.0}), Router::HashRecord(Vector{1.0}));
  // Dimension participates: a 1-d zero and a 2-d zero differ.
  EXPECT_NE(Router::HashRecord(Vector{0.0}),
            Router::HashRecord(Vector{0.0, 0.0}));
}

TEST(RouterTest, SplitStreamsAreDeterministicAndDistinct) {
  Rng parent_a(42);
  Rng parent_b(42);
  std::vector<Rng> streams_a = Router::SplitStreams(parent_a, 4);
  std::vector<Rng> streams_b = Router::SplitStreams(parent_b, 4);
  ASSERT_EQ(streams_a.size(), 4u);
  for (std::size_t shard = 0; shard < 4; ++shard) {
    // Same parent seed -> same substream per shard.
    EXPECT_EQ(streams_a[shard].NextUint64(), streams_b[shard].NextUint64());
  }
  // Distinct shards draw from distinct streams.
  Rng parent_c(42);
  std::vector<Rng> streams_c = Router::SplitStreams(parent_c, 4);
  EXPECT_NE(streams_c[0].NextUint64(), streams_c[1].NextUint64());
}

}  // namespace
}  // namespace condensa::shard
