#include "shard/router.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "common/random.h"
#include "linalg/vector.h"

namespace condensa::shard {
namespace {

using linalg::Vector;

std::vector<Vector> RandomRecords(std::size_t count, std::size_t dim,
                                  std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Vector> records;
  records.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Vector record(dim);
    for (std::size_t j = 0; j < dim; ++j) record[j] = rng.Gaussian();
    records.push_back(std::move(record));
  }
  return records;
}

TEST(RouterTest, SingleShardRoutesEverythingToZero) {
  Router router({.num_shards = 1, .policy = ShardPolicy::kHash});
  for (const Vector& record : RandomRecords(50, 3, 1)) {
    EXPECT_EQ(router.Route(record), 0u);
  }
}

TEST(RouterTest, HashPolicyIsPureAndIndexFree) {
  Router a({.num_shards = 8, .policy = ShardPolicy::kHash});
  Router b({.num_shards = 8, .policy = ShardPolicy::kHash});
  for (const Vector& record : RandomRecords(200, 4, 2)) {
    const std::size_t shard = a.ShardOf(record, 0);
    EXPECT_LT(shard, 8u);
    // Same record, any arrival index, any router instance: same shard.
    EXPECT_EQ(a.ShardOf(record, 123), shard);
    EXPECT_EQ(b.ShardOf(record, 7), shard);
    EXPECT_EQ(b.Route(record), shard);
  }
}

TEST(RouterTest, HashPolicyBalancesGaussianStreams) {
  const std::size_t n = 8;
  Router router({.num_shards = n, .policy = ShardPolicy::kHash});
  std::vector<std::size_t> counts(n, 0);
  const std::size_t total = 8000;
  for (const Vector& record : RandomRecords(total, 5, 3)) {
    ++counts[router.Route(record)];
  }
  for (std::size_t shard = 0; shard < n; ++shard) {
    // Expected 1000 per shard; 4-sigma-ish slack keeps this stable.
    EXPECT_GT(counts[shard], total / n / 2) << "shard " << shard;
    EXPECT_LT(counts[shard], total / n * 2) << "shard " << shard;
  }
}

TEST(RouterTest, RoundRobinCyclesByArrivalIndex) {
  Router router({.num_shards = 3, .policy = ShardPolicy::kRoundRobin});
  std::vector<Vector> records = RandomRecords(9, 2, 4);
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(router.ShardOf(records[i], i), i % 3);
    EXPECT_EQ(router.Route(records[i]), i % 3);
  }
}

TEST(RouterTest, ScatterPartitionsEveryRecordOnce) {
  for (ShardPolicy policy : {ShardPolicy::kHash, ShardPolicy::kRoundRobin}) {
    Router router({.num_shards = 4, .policy = policy});
    std::vector<Vector> records = RandomRecords(100, 3, 5);
    std::vector<std::vector<Vector>> parts = router.Scatter(records);
    ASSERT_EQ(parts.size(), 4u);
    std::size_t total = 0;
    for (const auto& part : parts) total += part.size();
    EXPECT_EQ(total, records.size());

    // Each partition holds exactly the records ShardOf assigns to it, in
    // arrival order.
    std::vector<std::size_t> cursor(4, 0);
    for (std::size_t i = 0; i < records.size(); ++i) {
      const std::size_t shard = router.ShardOf(records[i], i);
      ASSERT_LT(cursor[shard], parts[shard].size());
      const Vector& placed = parts[shard][cursor[shard]++];
      for (std::size_t j = 0; j < records[i].dim(); ++j) {
        EXPECT_EQ(placed[j], records[i][j]);
      }
    }
  }
}

TEST(RouterTest, HashDistinguishesIeeeBitPatterns) {
  // The contract is bitwise determinism: -0.0 == 0.0 numerically, but
  // they are different bit patterns and may route differently. What must
  // hold is stability — each routes the same way every time.
  EXPECT_EQ(Router::HashRecord(Vector{0.0}), Router::HashRecord(Vector{0.0}));
  EXPECT_EQ(Router::HashRecord(Vector{-0.0}),
            Router::HashRecord(Vector{-0.0}));
  EXPECT_NE(Router::HashRecord(Vector{0.0}), Router::HashRecord(Vector{1.0}));
  // Dimension participates: a 1-d zero and a 2-d zero differ.
  EXPECT_NE(Router::HashRecord(Vector{0.0}),
            Router::HashRecord(Vector{0.0, 0.0}));
}

TEST(RouterTest, ShardAmongFullMembershipMatchesShardOf) {
  // ShardAmong with the complete membership {0..N-1} in order must be
  // exactly ShardOf, for both policies.
  for (ShardPolicy policy :
       {ShardPolicy::kHash, ShardPolicy::kRoundRobin}) {
    Router router({.num_shards = 4, .policy = policy});
    const std::vector<std::size_t> everyone = {0, 1, 2, 3};
    Rng rng(11);
    for (std::size_t i = 0; i < 500; ++i) {
      Vector record{rng.Gaussian(0.0, 2.0), rng.Gaussian(0.0, 2.0)};
      EXPECT_EQ(router.ShardAmong(record, i, everyone),
                router.ShardOf(record, i));
    }
  }
}

TEST(RouterTest, ShardAmongIsDeterministicUnderMembershipChurn) {
  // Satellite contract: removing a member and later re-adding it must
  // reproduce the original record->shard assignment for each membership
  // set exactly. Pin the assignments at serialization level (a byte
  // string), so any drift in hashing or modulo order breaks the test
  // loudly rather than statistically.
  Router router({.num_shards = 5, .policy = ShardPolicy::kHash});
  const std::vector<std::size_t> full = {0, 1, 2, 3, 4};
  const std::vector<std::size_t> without_two = {0, 1, 3, 4};

  Rng rng(23);
  std::vector<Vector> records;
  for (std::size_t i = 0; i < 400; ++i) {
    records.push_back(Vector{rng.Gaussian(-1.0, 3.0), rng.Gaussian(1.0, 3.0),
                             rng.Gaussian(0.0, 0.5)});
  }

  auto assignment = [&](const std::vector<std::size_t>& members) {
    std::string serialized;
    for (std::size_t i = 0; i < records.size(); ++i) {
      serialized += std::to_string(router.ShardAmong(records[i], i, members));
      serialized += ',';
    }
    return serialized;
  };

  const std::string before_churn = assignment(full);
  const std::string degraded = assignment(without_two);
  // Shard 2 never appears while it is out of the membership.
  EXPECT_EQ(degraded.find('2'), std::string::npos);
  // Re-adding the member restores the original assignment byte-for-byte,
  // and the degraded assignment itself is reproducible.
  EXPECT_EQ(assignment(full), before_churn);
  EXPECT_EQ(assignment(without_two), degraded);

  // A fresh Router with the same options reproduces both assignments:
  // churn determinism is a property of (record, index, members), not of
  // instance state.
  Router replay({.num_shards = 5, .policy = ShardPolicy::kHash});
  std::string replayed_full;
  std::string replayed_degraded;
  for (std::size_t i = 0; i < records.size(); ++i) {
    replayed_full += std::to_string(replay.ShardAmong(records[i], i, full));
    replayed_full += ',';
    replayed_degraded +=
        std::to_string(replay.ShardAmong(records[i], i, without_two));
    replayed_degraded += ',';
  }
  EXPECT_EQ(replayed_full, before_churn);
  EXPECT_EQ(replayed_degraded, degraded);
}

TEST(RouterTest, RoundRobinShardAmongCyclesTheMemberList) {
  Router router({.num_shards = 3, .policy = ShardPolicy::kRoundRobin});
  const std::vector<std::size_t> members = {0, 2};
  Vector record{1.0};
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(router.ShardAmong(record, i, members), members[i % 2]);
  }
}

TEST(RouterTest, SplitStreamsAreDeterministicAndDistinct) {
  Rng parent_a(42);
  Rng parent_b(42);
  std::vector<Rng> streams_a = Router::SplitStreams(parent_a, 4);
  std::vector<Rng> streams_b = Router::SplitStreams(parent_b, 4);
  ASSERT_EQ(streams_a.size(), 4u);
  for (std::size_t shard = 0; shard < 4; ++shard) {
    // Same parent seed -> same substream per shard.
    EXPECT_EQ(streams_a[shard].NextUint64(), streams_b[shard].NextUint64());
  }
  // Distinct shards draw from distinct streams.
  Rng parent_c(42);
  std::vector<Rng> streams_c = Router::SplitStreams(parent_c, 4);
  EXPECT_NE(streams_c[0].NextUint64(), streams_c[1].NextUint64());
}

}  // namespace
}  // namespace condensa::shard
