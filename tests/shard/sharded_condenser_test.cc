#include "shard/sharded_condenser.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "common/io.h"
#include "common/random.h"
#include "core/serialization.h"
#include "linalg/vector.h"

namespace condensa::shard {
namespace {

using linalg::Vector;

std::vector<Vector> GaussianRecords(std::size_t count, std::size_t dim,
                                    std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Vector> records;
  records.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Vector record(dim);
    for (std::size_t j = 0; j < dim; ++j) {
      record[j] = rng.Gaussian(static_cast<double>(j % 3), 1.0);
    }
    records.push_back(std::move(record));
  }
  return records;
}

TEST(ShardedCondenserTest, ConservesRecordsAndKFloorAcrossShardCounts) {
  const std::size_t n = 600;
  const std::size_t k = 10;
  std::vector<Vector> records = GaussianRecords(n, 4, 11);
  for (std::size_t shards : {1u, 2u, 4u, 7u}) {
    ShardedCondenserConfig config;
    config.num_shards = shards;
    config.group_size = k;
    config.num_threads = 1;
    Rng rng(99);
    auto result = ShardedCondenser(config).Condense(records, rng);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_EQ(result->groups.TotalRecords(), n) << "shards=" << shards;
    EXPECT_GE(result->groups.Summary().min_group_size, k)
        << "shards=" << shards;
    EXPECT_EQ(result->gather.records_in, n);
    EXPECT_EQ(result->shards.size(), shards);
    std::size_t routed = 0;
    for (const ShardReport& report : result->shards) {
      routed += report.records;
    }
    EXPECT_EQ(routed, n);
  }
}

TEST(ShardedCondenserTest, PreservesGlobalMeanExactly) {
  // Scatter/gather must not move the global first moment: the sum of the
  // released groups' first-order sums equals the raw data sum to float
  // tolerance, whatever the shard count.
  const std::size_t n = 400;
  const std::size_t dim = 3;
  std::vector<Vector> records = GaussianRecords(n, dim, 12);
  Vector raw_sum(dim);
  for (const Vector& record : records) raw_sum += record;

  ShardedCondenserConfig config;
  config.num_shards = 4;
  config.group_size = 8;
  config.num_threads = 1;
  Rng rng(5);
  auto result = ShardedCondenser(config).Condense(records, rng);
  ASSERT_TRUE(result.ok()) << result.status();

  Vector condensed_sum(dim);
  for (const core::GroupStatistics& group : result->groups.groups()) {
    condensed_sum += group.first_order();
  }
  for (std::size_t j = 0; j < dim; ++j) {
    EXPECT_NEAR(condensed_sum[j], raw_sum[j], 1e-9);
  }
}

TEST(ShardedCondenserTest, FixedSeedAndShardCountIsBitIdentical) {
  std::vector<Vector> records = GaussianRecords(300, 3, 13);
  ShardedCondenserConfig config;
  config.num_shards = 4;
  config.group_size = 8;
  config.num_threads = 1;
  ShardedCondenser condenser(config);

  Rng rng_a(7);
  Rng rng_b(7);
  auto first = condenser.Condense(records, rng_a);
  auto second = condenser.Condense(records, rng_b);
  ASSERT_TRUE(first.ok()) << first.status();
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_EQ(core::SerializeGroupSet(first->groups),
            core::SerializeGroupSet(second->groups));
}

TEST(ShardedCondenserTest, ThreadCountDoesNotChangeOutput) {
  std::vector<Vector> records = GaussianRecords(300, 3, 14);
  ShardedCondenserConfig config;
  config.num_shards = 4;
  config.group_size = 8;

  config.num_threads = 1;
  Rng rng_serial(21);
  auto serial = ShardedCondenser(config).Condense(records, rng_serial);
  config.num_threads = 4;
  Rng rng_parallel(21);
  auto parallel = ShardedCondenser(config).Condense(records, rng_parallel);
  ASSERT_TRUE(serial.ok()) << serial.status();
  ASSERT_TRUE(parallel.ok()) << parallel.status();
  EXPECT_EQ(core::SerializeGroupSet(serial->groups),
            core::SerializeGroupSet(parallel->groups));
}

TEST(ShardedCondenserTest, ShardSmallerThanKIsFoldedNotDropped) {
  // 4 shards, 25 records, k = 10: some partitions end below the k-floor;
  // their remainders must be folded into the global structure.
  std::vector<Vector> records = GaussianRecords(25, 2, 15);
  ShardedCondenserConfig config;
  config.num_shards = 4;
  config.group_size = 10;
  config.num_threads = 1;
  Rng rng(3);
  auto result = ShardedCondenser(config).Condense(records, rng);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->groups.TotalRecords(), 25u);
  EXPECT_GE(result->groups.Summary().min_group_size, 10u);
}

TEST(ShardedCondenserTest, DurableStreamModeCondensesAndCheckpoints) {
  const std::string root =
      ::testing::TempDir() + "/condensa_sharded_condenser_stream";
  // Durable shards recover whatever a previous run checkpointed, so the
  // root must start empty for the record count to be this run's.
  for (std::size_t shard = 0; shard < 2; ++shard) {
    const std::string dir = root + "/shard-" + std::to_string(shard);
    if (auto entries = ListDirectory(dir); entries.ok()) {
      for (const std::string& name : *entries) RemoveFile(dir + "/" + name);
    }
  }
  CreateDirectories(root);
  std::vector<Vector> records = GaussianRecords(200, 3, 16);
  ShardedCondenserConfig config;
  config.num_shards = 2;
  config.mode = WorkerMode::kDurableStream;
  config.group_size = 5;
  config.checkpoint_root = root;
  config.sync_every_append = false;
  config.num_threads = 1;
  Rng rng(9);
  auto result = ShardedCondenser(config).Condense(records, rng);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->groups.TotalRecords(), 200u);
  EXPECT_GE(result->groups.Summary().min_group_size, 5u);
  // Each shard checkpointed into its own directory.
  for (std::size_t shard = 0; shard < 2; ++shard) {
    auto entries = ListDirectory(root + "/shard-" + std::to_string(shard));
    ASSERT_TRUE(entries.ok()) << entries.status();
    EXPECT_FALSE(entries->empty());
  }
}

TEST(ShardedCondenserTest, MdavBackendStampsAndBoundsGroups) {
  const std::size_t n = 300;
  const std::size_t k = 8;
  std::vector<Vector> records = GaussianRecords(n, 3, 23);
  ShardedCondenserConfig config;
  config.num_shards = 4;
  config.group_size = k;
  config.num_threads = 2;
  config.backend = "mdav";
  Rng rng(7);
  auto result = ShardedCondenser(config).Condense(records, rng);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->groups.backend_id(), "mdav");
  EXPECT_EQ(result->groups.backend_version(), 1);
  EXPECT_EQ(result->groups.TotalRecords(), n);
  // MDAV pins every group into [k, 2k-1] per shard; the sub-k remainder
  // fold can only grow a group, never shrink one below k.
  for (const auto& group : result->groups.groups()) {
    EXPECT_GE(group.count(), k);
  }
}

TEST(ShardedCondenserTest, UnknownBackendIsRejectedBeforeWork) {
  std::vector<Vector> records = GaussianRecords(40, 2, 29);
  ShardedCondenserConfig config;
  config.backend = "bogus";
  Rng rng(1);
  auto result = ShardedCondenser(config).Condense(records, rng);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(IsNotFound(result.status()));
  EXPECT_NE(std::string(result.status().message()).find("available"),
            std::string::npos);
}

TEST(ShardedCondenserTest, RejectsBadConfigsAndInputs) {
  std::vector<Vector> records = GaussianRecords(50, 2, 17);
  Rng rng(1);

  ShardedCondenserConfig zero_shards;
  zero_shards.num_shards = 0;
  EXPECT_TRUE(IsInvalidArgument(
      ShardedCondenser(zero_shards).Condense(records, rng).status()));

  ShardedCondenserConfig stream_without_root;
  stream_without_root.mode = WorkerMode::kDurableStream;
  EXPECT_TRUE(IsInvalidArgument(
      ShardedCondenser(stream_without_root).Condense(records, rng).status()));

  ShardedCondenserConfig ok;
  EXPECT_TRUE(IsInvalidArgument(
      ShardedCondenser(ok).Condense({}, rng).status()));

  std::vector<Vector> ragged = records;
  ragged.push_back(Vector{1.0, 2.0, 3.0});
  EXPECT_TRUE(IsInvalidArgument(
      ShardedCondenser(ok).Condense(ragged, rng).status()));
}

}  // namespace
}  // namespace condensa::shard
