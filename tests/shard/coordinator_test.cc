#include "shard/coordinator.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <utility>
#include <vector>

#include "common/random.h"
#include "core/condensed_group_set.h"
#include "core/group_statistics.h"
#include "core/serialization.h"
#include "linalg/vector.h"

namespace condensa::shard {
namespace {

using core::CondensedGroupSet;
using core::GroupStatistics;
using linalg::Vector;

Vector RandomPoint(Rng& rng, std::size_t dim) {
  Vector point(dim);
  for (std::size_t j = 0; j < dim; ++j) point[j] = rng.Gaussian();
  return point;
}

// A shard-local set with the given group sizes, clustered so nearest-
// centroid folds are well defined.
CondensedGroupSet MakeShardSet(const std::vector<std::size_t>& sizes,
                               std::size_t dim, std::size_t k, Rng& rng) {
  CondensedGroupSet set(dim, k);
  for (std::size_t size : sizes) {
    GroupStatistics group(dim);
    Vector center = RandomPoint(rng, dim);
    for (std::size_t i = 0; i < size; ++i) {
      Vector point(dim);
      for (std::size_t j = 0; j < dim; ++j) {
        point[j] = center[j] + 0.05 * rng.Gaussian();
      }
      group.Add(point);
    }
    set.AddGroup(std::move(group));
  }
  return set;
}

TEST(CoordinatorTest, ConcatenatesHealthyShardSetsExactly) {
  Rng rng(1);
  const std::size_t k = 5;
  std::vector<CondensedGroupSet> sets;
  sets.push_back(MakeShardSet({5, 7, 6}, 3, k, rng));
  sets.push_back(MakeShardSet({9, 5}, 3, k, rng));

  Coordinator coordinator({.group_size = k});
  GatherReport report;
  auto gathered = coordinator.Gather(std::move(sets), &report);
  ASSERT_TRUE(gathered.ok()) << gathered.status();

  // Every input group already satisfies the k-floor, so the gather is a
  // pure concatenation: no merges, no splits, no approximation.
  EXPECT_EQ(report.shards_in, 2u);
  EXPECT_EQ(report.groups_in, 5u);
  EXPECT_EQ(report.undersized_in, 0u);
  EXPECT_EQ(report.merges, 0u);
  EXPECT_EQ(report.splits, 0u);
  EXPECT_EQ(gathered->num_groups(), 5u);
  EXPECT_EQ(gathered->TotalRecords(), 32u);
  EXPECT_EQ(report.records_in, 32u);
  EXPECT_GE(gathered->Summary().min_group_size, k);
}

TEST(CoordinatorTest, FoldsUndersizedGroupsUpToKFloor) {
  Rng rng(2);
  const std::size_t k = 5;
  std::vector<CondensedGroupSet> sets;
  // Two healthy shards plus two warm-up remainders below the floor.
  sets.push_back(MakeShardSet({6, 5, 2}, 3, k, rng));
  sets.push_back(MakeShardSet({7, 3}, 3, k, rng));

  Coordinator coordinator({.group_size = k});
  GatherReport report;
  auto gathered = coordinator.Gather(std::move(sets), &report);
  ASSERT_TRUE(gathered.ok()) << gathered.status();

  EXPECT_EQ(report.undersized_in, 2u);
  // One merge can repair both remainders at once (2 + 3 = k), so only a
  // floor of one merge is guaranteed.
  EXPECT_GE(report.merges, 1u);
  // Record conservation: 13 + 10 = 23 records, none dropped.
  EXPECT_EQ(gathered->TotalRecords(), 23u);
  // Global k-floor restored.
  EXPECT_GE(gathered->Summary().min_group_size, k);
}

TEST(CoordinatorTest, SplitsOversizeFoldResults) {
  Rng rng(3);
  const std::size_t k = 5;
  // One tight cluster: a 4-record remainder will fold into the nearest
  // group; engineering that group to 2k-4 records makes the fold result
  // exactly 2k, which must split back into the [k, 2k) band.
  const std::size_t dim = 2;
  CondensedGroupSet a(dim, k);
  GroupStatistics big(dim);
  for (std::size_t i = 0; i < 2 * k - 4; ++i) {
    big.Add(Vector{0.01 * rng.Gaussian(), 0.01 * rng.Gaussian()});
  }
  a.AddGroup(std::move(big));
  GroupStatistics far(dim);
  for (std::size_t i = 0; i < k; ++i) {
    far.Add(Vector{100.0 + 0.01 * rng.Gaussian(), 100.0});
  }
  a.AddGroup(std::move(far));

  CondensedGroupSet b(dim, k);
  GroupStatistics remainder(dim);
  for (std::size_t i = 0; i < 4; ++i) {
    remainder.Add(Vector{0.01 * rng.Gaussian(), 0.01 * rng.Gaussian()});
  }
  b.AddGroup(std::move(remainder));

  std::vector<CondensedGroupSet> sets;
  sets.push_back(std::move(a));
  sets.push_back(std::move(b));
  Coordinator coordinator({.group_size = k});
  GatherReport report;
  auto gathered = coordinator.Gather(std::move(sets), &report);
  ASSERT_TRUE(gathered.ok()) << gathered.status();

  EXPECT_EQ(report.merges, 1u);
  EXPECT_EQ(report.splits, 1u);
  EXPECT_EQ(gathered->TotalRecords(), 3 * k);
  const core::PrivacySummary summary = gathered->Summary();
  EXPECT_GE(summary.min_group_size, k);
  EXPECT_LT(summary.max_group_size, 2 * k);
}

TEST(CoordinatorTest, FewerThanKRecordsTotalLeavesOneUndersizedGroup) {
  Rng rng(4);
  const std::size_t k = 10;
  std::vector<CondensedGroupSet> sets;
  sets.push_back(MakeShardSet({2}, 2, k, rng));
  sets.push_back(MakeShardSet({3}, 2, k, rng));

  Coordinator coordinator({.group_size = k});
  auto gathered = coordinator.Gather(std::move(sets), nullptr);
  ASSERT_TRUE(gathered.ok()) << gathered.status();
  // Folding 5 < k records cannot reach the floor; conservation wins over
  // dropping them.
  EXPECT_EQ(gathered->num_groups(), 1u);
  EXPECT_EQ(gathered->TotalRecords(), 5u);
}

TEST(CoordinatorTest, SkipsEmptyShardSets) {
  Rng rng(5);
  const std::size_t k = 4;
  std::vector<CondensedGroupSet> sets;
  sets.emplace_back(3, k);  // empty shard
  sets.push_back(MakeShardSet({4, 5}, 3, k, rng));
  sets.emplace_back(0, 0);  // shard that never saw a record

  Coordinator coordinator({.group_size = k});
  GatherReport report;
  auto gathered = coordinator.Gather(std::move(sets), &report);
  ASSERT_TRUE(gathered.ok()) << gathered.status();
  EXPECT_EQ(report.shards_in, 3u);
  EXPECT_EQ(gathered->num_groups(), 2u);
  EXPECT_EQ(gathered->TotalRecords(), 9u);
}

TEST(CoordinatorTest, AllEmptyYieldsEmptySet) {
  std::vector<CondensedGroupSet> sets;
  sets.emplace_back(0, 0);
  sets.emplace_back(0, 0);
  Coordinator coordinator({.group_size = 5});
  auto gathered = coordinator.Gather(std::move(sets), nullptr);
  ASSERT_TRUE(gathered.ok()) << gathered.status();
  EXPECT_TRUE(gathered->empty());
}

TEST(CoordinatorTest, RejectsDimensionMismatch) {
  Rng rng(6);
  std::vector<CondensedGroupSet> sets;
  sets.push_back(MakeShardSet({5}, 2, 5, rng));
  sets.push_back(MakeShardSet({5}, 3, 5, rng));
  Coordinator coordinator({.group_size = 5});
  auto gathered = coordinator.Gather(std::move(sets), nullptr);
  EXPECT_TRUE(IsInvalidArgument(gathered.status()));
}

TEST(CoordinatorTest, GatherIsDeterministic) {
  const std::size_t k = 5;
  auto build_inputs = [&] {
    Rng rng(7);
    std::vector<CondensedGroupSet> sets;
    sets.push_back(MakeShardSet({6, 2, 5}, 3, k, rng));
    sets.push_back(MakeShardSet({3, 8}, 3, k, rng));
    sets.push_back(MakeShardSet({1}, 3, k, rng));
    return sets;
  };
  Coordinator coordinator({.group_size = k});
  auto first = coordinator.Gather(build_inputs(), nullptr);
  auto second = coordinator.Gather(build_inputs(), nullptr);
  ASSERT_TRUE(first.ok()) << first.status();
  ASSERT_TRUE(second.ok()) << second.status();
  // Serialization round-trips doubles bit-exactly, so string equality is
  // bit-identity of the whole structure.
  EXPECT_EQ(core::SerializeGroupSet(*first), core::SerializeGroupSet(*second));
}

TEST(CoordinatorTest, GatherConservesGlobalMoments) {
  // The gather's merges are exact: the global first-order sum equals the
  // sum over all input groups regardless of how the fold reshuffles them.
  Rng rng(8);
  const std::size_t k = 5;
  const std::size_t dim = 3;
  auto sets = std::vector<CondensedGroupSet>{};
  sets.push_back(MakeShardSet({6, 2, 5, 3}, dim, k, rng));
  sets.push_back(MakeShardSet({7, 1}, dim, k, rng));

  Vector expected_sum(dim);
  std::size_t expected_count = 0;
  for (const CondensedGroupSet& set : sets) {
    for (const GroupStatistics& group : set.groups()) {
      expected_sum += group.first_order();
      expected_count += group.count();
    }
  }

  Coordinator coordinator({.group_size = k});
  auto gathered = coordinator.Gather(std::move(sets), nullptr);
  ASSERT_TRUE(gathered.ok()) << gathered.status();

  Vector actual_sum(dim);
  std::size_t actual_count = 0;
  for (const GroupStatistics& group : gathered->groups()) {
    actual_sum += group.first_order();
    actual_count += group.count();
  }
  EXPECT_EQ(actual_count, expected_count);
  for (std::size_t j = 0; j < dim; ++j) {
    EXPECT_NEAR(actual_sum[j], expected_sum[j], 1e-9);
  }
}

}  // namespace
}  // namespace condensa::shard
