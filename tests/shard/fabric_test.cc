// FabricService over in-process WorkerServers (threads, not forks): the
// networked fabric must release the exact bytes the in-process sharded
// service releases, survive endpoint loss via re-routing and local
// takeover, and validate its configuration before touching the network.
// Process-level chaos (kill -9, rejoin) lives in
// tests/integration/fabric_soak_test.cc.

#include "shard/fabric.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "core/serialization.h"
#include "obs/metrics.h"
#include "shard/stream_service.h"
#include "shard/worker.h"
#include "shard/worker_server.h"

namespace condensa::shard {
namespace {

using linalg::Vector;

std::vector<Vector> MakeStream(std::size_t count, std::size_t dim,
                               std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Vector> stream;
  stream.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Vector record(dim);
    for (std::size_t j = 0; j < dim; ++j) {
      record[j] = rng.Gaussian(i % 2 == 0 ? -3.0 : 3.0, 1.0);
    }
    stream.push_back(std::move(record));
  }
  return stream;
}

// One worker server running on its own thread, as `condensa worker` would.
struct ServerHandle {
  std::unique_ptr<WorkerServer> server;
  std::thread thread;

  void Join() {
    if (thread.joinable()) thread.join();
  }
  ~ServerHandle() {
    if (server != nullptr) server->Stop();
    Join();
  }
};

std::unique_ptr<ServerHandle> StartServer(const std::string& root) {
  WorkerServerConfig config;
  config.checkpoint_root = root;
  config.poll_ms = 20.0;
  auto handle = std::make_unique<ServerHandle>();
  auto server = WorkerServer::Create(std::move(config));
  EXPECT_TRUE(server.ok()) << server.status().ToString();
  handle->server = *std::move(server);
  WorkerServer* raw = handle->server.get();
  handle->thread = std::thread([raw] { EXPECT_TRUE(raw->Run().ok()); });
  return handle;
}

class FabricTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("condensa-fabric-test-" +
            std::to_string(reinterpret_cast<std::uintptr_t>(this)));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Dir(const std::string& leaf) const {
    return (dir_ / leaf).string();
  }

  std::filesystem::path dir_;
};

FabricConfig BaseConfig(std::size_t dim) {
  FabricConfig config;
  config.dim = dim;
  config.group_size = 10;
  config.seed = 91;
  config.wire_batch = 32;
  config.heartbeat_interval_ms = 50.0;
  config.heartbeat_timeout_ms = 400.0;
  config.connect_timeout_ms = 500.0;
  config.reconnect.max_attempts = 2;
  config.reconnect.initial_backoff_ms = 10.0;
  return config;
}

TEST_F(FabricTest, ValidateRejectsBadConfigs) {
  FabricConfig config = BaseConfig(4);
  EXPECT_FALSE(config.Validate().ok());  // no workers

  config.workers = {{"127.0.0.1", 1}, {"", 2}};
  EXPECT_FALSE(config.Validate().ok());  // empty host

  config.workers = {{"127.0.0.1", 0}};
  EXPECT_FALSE(config.Validate().ok());  // port 0

  config.workers = {{"127.0.0.1", 1}};
  config.dim = 0;
  EXPECT_FALSE(config.Validate().ok());

  config.dim = 4;
  config.group_size = 1;
  EXPECT_FALSE(config.Validate().ok());  // streaming floor is k >= 2

  config.group_size = 10;
  config.wire_batch = 0;
  EXPECT_FALSE(config.Validate().ok());

  config.wire_batch = 8;
  config.heartbeat_timeout_ms = config.heartbeat_interval_ms / 2;
  EXPECT_FALSE(config.Validate().ok());

  config.heartbeat_timeout_ms = config.heartbeat_interval_ms * 4;
  EXPECT_TRUE(config.Validate().ok());

  // The largest Submit frame a config can produce must stay under the
  // 64 MiB frame payload cap — EncodeFrame CHECK-fails past it, so a
  // config that crossed it would crash the coordinator at the first
  // full outbox instead of failing here.
  config.dim = 1024;
  config.wire_batch = 8192;  // 8192 * 1024 * 8 B = exactly 64 MiB
  EXPECT_FALSE(config.Validate().ok());
  config.wire_batch = 8191;  // one record under the cap
  EXPECT_TRUE(config.Validate().ok());

  config.wire_batch = (1u << 20) + 1;  // above the per-frame record cap
  EXPECT_FALSE(config.Validate().ok());

  config.wire_batch = 8;
  config.dim = (1u << 16) + 1;  // above the wire dim cap
  EXPECT_FALSE(config.Validate().ok());
}

TEST_F(FabricTest, SubmitRejectsWrongDimensionRecord) {
  // EncodeSubmit packs config.dim doubles per record: a wrong-dimension
  // record in an outbox would make every batch it shares a frame with
  // undecodable forever (a poison pill that reads as a dead shard). It
  // must be rejected at Submit, before it takes an arrival index.
  auto server = StartServer(Dir("w0"));
  FabricConfig config = BaseConfig(4);
  config.workers = {{"127.0.0.1", server->server->port()}};
  config.wire_batch = 8;
  auto fabric = FabricService::Start(config);
  ASSERT_TRUE(fabric.ok()) << fabric.status().ToString();

  Vector bad(3);
  EXPECT_EQ((*fabric)->Submit(bad).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ((*fabric)->records_submitted(), 0u);

  // The rejected record poisoned nothing: a full run still flows,
  // finishes, and balances.
  const std::vector<Vector> stream = MakeStream(60, 4, 9);
  for (const Vector& record : stream) {
    ASSERT_TRUE((*fabric)->Submit(record).ok());
  }
  auto result = (*fabric)->Finish();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  server->Join();
  EXPECT_TRUE(result->Balanced());
  EXPECT_EQ(result->TotalAccepted(), stream.size());
}

TEST_F(FabricTest, StartFailsWhenNothingIsReachableAndNoFallback) {
  FabricConfig config = BaseConfig(4);
  // Reserved port with nothing behind it.
  config.workers = {{"127.0.0.1", 1}};
  Status status = FabricService::Start(config).status();
  EXPECT_EQ(status.code(), StatusCode::kUnavailable) << status.ToString();
}

TEST_F(FabricTest, ReleaseIsBitIdenticalToInProcessService) {
  const std::size_t kShards = 3;
  const std::vector<Vector> stream = MakeStream(1200, 4, 5);

  // In-process reference run.
  ShardedStreamConfig reference;
  reference.num_shards = kShards;
  reference.dim = 4;
  reference.group_size = 10;
  reference.checkpoint_root = Dir("inproc");
  reference.seed = 91;
  auto in_process = ShardedStreamService::Start(reference);
  ASSERT_TRUE(in_process.ok()) << in_process.status().ToString();
  for (const Vector& record : stream) {
    ASSERT_TRUE((*in_process)->Submit(record).ok());
  }
  auto expected = (*in_process)->Finish();
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();

  // Fabric run over three worker servers.
  std::vector<std::unique_ptr<ServerHandle>> servers;
  FabricConfig config = BaseConfig(4);
  for (std::size_t i = 0; i < kShards; ++i) {
    servers.push_back(StartServer(Dir("worker-" + std::to_string(i))));
    config.workers.push_back(
        {"127.0.0.1", servers.back()->server->port()});
  }
  auto fabric = FabricService::Start(config);
  ASSERT_TRUE(fabric.ok()) << fabric.status().ToString();
  for (const Vector& record : stream) {
    ASSERT_TRUE((*fabric)->Submit(record).ok());
  }
  auto result = (*fabric)->Finish();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  for (auto& server : servers) server->Join();

  // The contract is BYTE identity of the canonical serialization, not
  // approximate statistical agreement.
  EXPECT_EQ(core::SerializeGroupSet(result->groups),
            core::SerializeGroupSet(expected->groups));
  EXPECT_TRUE(result->Balanced());
  EXPECT_EQ(result->TotalAccepted(), stream.size());
  EXPECT_EQ(result->report.handoffs, 0u);
  EXPECT_EQ(result->report.rerouted_records, 0u);
  ASSERT_EQ(result->shard_stats.size(), kShards);
  for (std::size_t i = 0; i < kShards; ++i) {
    EXPECT_EQ(result->shard_stats[i].accepted,
              expected->shard_stats[i].accepted)
        << "shard " << i;
  }
}

TEST_F(FabricTest, MdavBackendRunsAcrossTheFabric) {
  const std::size_t kShards = 2;
  const std::size_t kGroupSize = 6;
  const std::vector<Vector> stream = MakeStream(400, 3, 19);

  std::vector<std::unique_ptr<ServerHandle>> servers;
  FabricConfig config = BaseConfig(3);
  config.group_size = kGroupSize;
  config.backend = "mdav";
  for (std::size_t i = 0; i < kShards; ++i) {
    servers.push_back(StartServer(Dir("mdav-worker-" + std::to_string(i))));
    config.workers.push_back(
        {"127.0.0.1", servers.back()->server->port()});
  }
  auto fabric = FabricService::Start(config);
  ASSERT_TRUE(fabric.ok()) << fabric.status().ToString();
  for (const Vector& record : stream) {
    ASSERT_TRUE((*fabric)->Submit(record).ok());
  }
  auto result = (*fabric)->Finish();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  for (auto& server : servers) server->Join();

  // The workers condensed under MDAV: the gathered set carries the stamp
  // and every group meets the k floor.
  EXPECT_EQ(result->groups.backend_id(), "mdav");
  EXPECT_EQ(result->groups.backend_version(), 1);
  EXPECT_EQ(result->groups.TotalRecords(), stream.size());
  EXPECT_EQ(result->TotalAccepted(), stream.size());
  for (const auto& group : result->groups.groups()) {
    EXPECT_GE(group.count(), kGroupSize);
  }
  // The stamp survives serialization of the gathered set.
  EXPECT_NE(core::SerializeGroupSet(result->groups).find("backend mdav 1"),
            std::string::npos);
}

TEST_F(FabricTest, ValidateRejectsUnknownBackend) {
  FabricConfig config = BaseConfig(4);
  config.workers.push_back({"127.0.0.1", 1});
  config.backend = "bogus";
  auto fabric = FabricService::Start(config);
  ASSERT_FALSE(fabric.ok());
  EXPECT_TRUE(IsNotFound(fabric.status()));
}

TEST_F(FabricTest, DeadEndpointIsRoutedAroundWithZeroLoss) {
  // Shard 1's endpoint never exists; its records must land on survivors
  // and the run must finish balanced.
  auto server0 = StartServer(Dir("w0"));
  auto server2 = StartServer(Dir("w2"));
  FabricConfig config = BaseConfig(4);
  config.workers = {{"127.0.0.1", server0->server->port()},
                    {"127.0.0.1", 1},  // nothing listens here
                    {"127.0.0.1", server2->server->port()}};
  auto fabric = FabricService::Start(config);
  ASSERT_TRUE(fabric.ok()) << fabric.status().ToString();

  const std::vector<Vector> stream = MakeStream(600, 4, 6);
  for (const Vector& record : stream) {
    ASSERT_TRUE((*fabric)->Submit(record).ok());
  }
  auto result = (*fabric)->Finish();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  server0->Join();
  server2->Join();

  EXPECT_TRUE(result->Balanced());
  EXPECT_EQ(result->TotalAccepted(), stream.size());
  EXPECT_GT(result->report.rerouted_records, 0u);
  EXPECT_EQ(result->groups.TotalRecords(), stream.size());
}

TEST_F(FabricTest, TotalOutageDegradesToLocalFallbackBitIdentically) {
  // No endpoint is reachable at all, but local_fallback_root is set: the
  // run must complete entirely in-process AND still release the same
  // bytes as the healthy in-process run (takeover mirrors the same
  // routing, seeds, and gather order).
  const std::size_t kShards = 2;
  const std::vector<Vector> stream = MakeStream(800, 3, 7);

  ShardedStreamConfig reference;
  reference.num_shards = kShards;
  reference.dim = 3;
  reference.group_size = 10;
  reference.checkpoint_root = Dir("inproc");
  reference.seed = 91;
  auto in_process = ShardedStreamService::Start(reference);
  ASSERT_TRUE(in_process.ok());
  for (const Vector& record : stream) {
    ASSERT_TRUE((*in_process)->Submit(record).ok());
  }
  auto expected = (*in_process)->Finish();
  ASSERT_TRUE(expected.ok());

  FabricConfig config = BaseConfig(3);
  config.workers = {{"127.0.0.1", 1}, {"127.0.0.1", 1}};
  config.local_fallback_root = Dir("fallback");
  auto fabric = FabricService::Start(config);
  ASSERT_TRUE(fabric.ok()) << fabric.status().ToString();
  for (const Vector& record : stream) {
    ASSERT_TRUE((*fabric)->Submit(record).ok())
        << "record lost during total outage";
  }
  auto result = (*fabric)->Finish();
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  EXPECT_EQ(result->report.local_takeovers, kShards);
  EXPECT_TRUE(result->Balanced());
  EXPECT_EQ(core::SerializeGroupSet(result->groups),
            core::SerializeGroupSet(expected->groups));
}

TEST_F(FabricTest, WorkerDeathAtFinishReroutesPendingRecordsBeforeGather) {
  // Regression: records still sitting in a peer's outbox when that peer
  // dies at Finish time must be delivered BEFORE any shard's groups are
  // collected. Draining orphans only after the gather loop either
  // aborted the Finish (orphan lands on an already-finished worker) or
  // silently dropped records (orphan lands on an already-gathered one).
  const std::size_t kShards = 3;
  std::vector<std::unique_ptr<ServerHandle>> servers;
  FabricConfig config = BaseConfig(4);
  // Nothing flushes during ingest: every record is still in an outbox
  // when Finish starts.
  config.wire_batch = 100000;
  config.io_timeout_ms = 500.0;
  config.ack_timeout_ms = 1000.0;
  for (std::size_t i = 0; i < kShards; ++i) {
    servers.push_back(StartServer(Dir("w" + std::to_string(i))));
    config.workers.push_back(
        {"127.0.0.1", servers.back()->server->port()});
  }
  auto fabric = FabricService::Start(config);
  ASSERT_TRUE(fabric.ok()) << fabric.status().ToString();

  const std::vector<Vector> stream = MakeStream(600, 4, 11);
  for (const Vector& record : stream) {
    ASSERT_TRUE((*fabric)->Submit(record).ok());
  }
  // Kill worker 1 outright (listener and all) with its backlog unflushed.
  servers[1].reset();

  auto result = (*fabric)->Finish();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  for (auto& server : servers) {
    if (server != nullptr) server->Join();
  }
  EXPECT_TRUE(result->Balanced());
  EXPECT_EQ(result->TotalAccepted(), stream.size());
  EXPECT_EQ(result->groups.TotalRecords(), stream.size());
  EXPECT_GT(result->report.rerouted_records, 0u);
}

TEST_F(FabricTest, WorkerDeathAtFinishIsTakenOverWithItsBacklog) {
  // Same shape with a fallback root: the dead shard keeps its backlog
  // via in-process takeover instead of displacing it, so the release
  // stays bit-identical to the healthy in-process run.
  const std::size_t kShards = 3;
  const std::vector<Vector> stream = MakeStream(600, 4, 11);

  ShardedStreamConfig reference;
  reference.num_shards = kShards;
  reference.dim = 4;
  reference.group_size = 10;
  reference.checkpoint_root = Dir("inproc");
  reference.seed = 91;
  auto in_process = ShardedStreamService::Start(reference);
  ASSERT_TRUE(in_process.ok());
  for (const Vector& record : stream) {
    ASSERT_TRUE((*in_process)->Submit(record).ok());
  }
  auto expected = (*in_process)->Finish();
  ASSERT_TRUE(expected.ok());

  std::vector<std::unique_ptr<ServerHandle>> servers;
  FabricConfig config = BaseConfig(4);
  config.wire_batch = 100000;
  config.io_timeout_ms = 500.0;
  config.ack_timeout_ms = 1000.0;
  config.local_fallback_root = Dir("fallback");
  for (std::size_t i = 0; i < kShards; ++i) {
    servers.push_back(StartServer(Dir("w" + std::to_string(i))));
    config.workers.push_back(
        {"127.0.0.1", servers.back()->server->port()});
  }
  auto fabric = FabricService::Start(config);
  ASSERT_TRUE(fabric.ok()) << fabric.status().ToString();
  for (const Vector& record : stream) {
    ASSERT_TRUE((*fabric)->Submit(record).ok());
  }
  servers[1].reset();

  auto result = (*fabric)->Finish();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  for (auto& server : servers) {
    if (server != nullptr) server->Join();
  }
  EXPECT_TRUE(result->Balanced());
  EXPECT_EQ(result->TotalAccepted(), stream.size());
  EXPECT_GE(result->report.local_takeovers, 1u);
  EXPECT_EQ(result->report.rerouted_records, 0u);
  EXPECT_EQ(core::SerializeGroupSet(result->groups),
            core::SerializeGroupSet(expected->groups));
}

TEST_F(FabricTest, SubmitAfterFinishFails) {
  auto server = StartServer(Dir("w0"));
  FabricConfig config = BaseConfig(2);
  config.workers = {{"127.0.0.1", server->server->port()}};
  auto fabric = FabricService::Start(config);
  ASSERT_TRUE(fabric.ok());
  for (const Vector& record : MakeStream(50, 2, 8)) {
    ASSERT_TRUE((*fabric)->Submit(record).ok());
  }
  ASSERT_TRUE((*fabric)->Finish().ok());
  server->Join();
  Vector record(2);
  EXPECT_EQ((*fabric)->Submit(record).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ((*fabric)->Finish().status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(FabricTest, WorkerIdentityLabelsBothShardSeries) {
  // Satellite contract: per-shard series carry {shard, worker} so a
  // restarted worker with a stable id keeps its series.
  WorkerOptions options;
  options.mode = WorkerMode::kStaticBatch;
  options.group_size = 4;
  options.worker_id = "stable-w9";
  auto worker = Worker::Start(9, 2, options);
  ASSERT_TRUE(worker.ok());
  Vector record(2);
  ASSERT_TRUE((*worker)->Submit(record).ok());
  const std::string dump =
      obs::DefaultRegistry().DumpPrometheusText();
  EXPECT_NE(
      dump.find(
          "condensa_shard_records_total{shard=\"9\",worker=\"stable-w9\"}"),
      std::string::npos)
      << dump;
}

}  // namespace
}  // namespace condensa::shard
