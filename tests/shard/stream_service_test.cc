#include "shard/stream_service.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "common/io.h"
#include "common/random.h"
#include "core/serialization.h"
#include "linalg/vector.h"

namespace condensa::shard {
namespace {

using linalg::Vector;

void WipeTree(const std::string& root) {
  if (auto entries = ListDirectory(root); entries.ok()) {
    for (const std::string& name : *entries) {
      const std::string child = root + "/" + name;
      if (auto nested = ListDirectory(child); nested.ok()) {
        for (const std::string& inner : *nested) RemoveFile(child + "/" + inner);
      }
      RemoveFile(child);
    }
  }
}

class StreamServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = ::testing::TempDir() + "/condensa_stream_service_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name();
    WipeTree(root_);
    CreateDirectories(root_);
  }

  ShardedStreamConfig Config(std::size_t shards) const {
    ShardedStreamConfig config;
    config.num_shards = shards;
    config.dim = 3;
    config.group_size = 4;
    config.checkpoint_root = root_;
    config.sync_every_append = false;
    config.snapshot_interval = 64;
    config.seed = 77;
    return config;
  }

  std::vector<Vector> Records(std::size_t count, std::uint64_t seed) const {
    Rng rng(seed);
    std::vector<Vector> records;
    records.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      records.push_back(
          Vector{rng.Gaussian(), rng.Gaussian(2.0, 1.5), rng.Uniform(-1, 1)});
    }
    return records;
  }

  std::string root_;
};

TEST_F(StreamServiceTest, IngestsAcrossShardsWithBalancedLedgers) {
  const std::size_t n = 300;
  auto service = ShardedStreamService::Start(Config(3));
  ASSERT_TRUE(service.ok()) << service.status();
  for (const Vector& record : Records(n, 1)) {
    ASSERT_TRUE((*service)->Submit(record).ok());
  }
  EXPECT_EQ((*service)->records_submitted(), n);

  auto result = (*service)->Finish();
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->shard_stats.size(), 3u);
  EXPECT_TRUE(result->Balanced());
  EXPECT_EQ(result->TotalAccepted(), n);
  EXPECT_EQ(result->TotalApplied(), n);
  EXPECT_EQ(result->groups.TotalRecords(), n);
  EXPECT_GE(result->groups.Summary().min_group_size, 4u);
  EXPECT_EQ(result->gather.shards_in, 3u);
}

TEST_F(StreamServiceTest, EveryShardCheckpointsInItsOwnDirectory) {
  auto service = ShardedStreamService::Start(Config(4));
  ASSERT_TRUE(service.ok()) << service.status();
  for (const Vector& record : Records(120, 2)) {
    ASSERT_TRUE((*service)->Submit(record).ok());
  }
  auto result = (*service)->Finish();
  ASSERT_TRUE(result.ok()) << result.status();
  for (std::size_t shard = 0; shard < 4; ++shard) {
    EXPECT_EQ((*service)->checkpoint_dir(shard),
              root_ + "/shard-" + std::to_string(shard));
    auto entries = ListDirectory(root_ + "/shard-" + std::to_string(shard));
    ASSERT_TRUE(entries.ok()) << entries.status();
    EXPECT_FALSE(entries->empty()) << "shard " << shard;
  }
}

TEST_F(StreamServiceTest, FixedSeedAndShardCountReplaysBitIdentically) {
  std::vector<Vector> records = Records(250, 3);
  std::string first_serialized;
  for (int run = 0; run < 2; ++run) {
    WipeTree(root_);
    for (std::size_t shard = 0; shard < 2; ++shard) {
      WipeTree(root_ + "/shard-" + std::to_string(shard));
    }
    auto service = ShardedStreamService::Start(Config(2));
    ASSERT_TRUE(service.ok()) << service.status();
    for (const Vector& record : records) {
      ASSERT_TRUE((*service)->Submit(record).ok());
    }
    auto result = (*service)->Finish();
    ASSERT_TRUE(result.ok()) << result.status();
    const std::string serialized = core::SerializeGroupSet(result->groups);
    if (run == 0) {
      first_serialized = serialized;
    } else {
      EXPECT_EQ(serialized, first_serialized);
    }
  }
}

TEST_F(StreamServiceTest, SubmitAfterFinishFailsCleanly) {
  auto service = ShardedStreamService::Start(Config(2));
  ASSERT_TRUE(service.ok()) << service.status();
  for (const Vector& record : Records(40, 4)) {
    ASSERT_TRUE((*service)->Submit(record).ok());
  }
  ASSERT_TRUE((*service)->Finish().ok());
  EXPECT_TRUE(
      IsFailedPrecondition((*service)->Submit(Vector{0.0, 0.0, 0.0})));
  auto again = (*service)->Finish();
  EXPECT_TRUE(IsFailedPrecondition(again.status()));
}

TEST_F(StreamServiceTest, ValidatesConfig) {
  ShardedStreamConfig config = Config(0);
  EXPECT_TRUE(
      IsInvalidArgument(ShardedStreamService::Start(config).status()));
  config = Config(2);
  config.dim = 0;
  EXPECT_TRUE(
      IsInvalidArgument(ShardedStreamService::Start(config).status()));
  config = Config(2);
  config.group_size = 1;
  EXPECT_TRUE(
      IsInvalidArgument(ShardedStreamService::Start(config).status()));
  config = Config(2);
  config.checkpoint_root.clear();
  EXPECT_TRUE(
      IsInvalidArgument(ShardedStreamService::Start(config).status()));
}

TEST_F(StreamServiceTest, LiveStatsCoverEveryShard) {
  auto service = ShardedStreamService::Start(Config(2));
  ASSERT_TRUE(service.ok()) << service.status();
  for (const Vector& record : Records(60, 5)) {
    ASSERT_TRUE((*service)->Submit(record).ok());
  }
  std::vector<runtime::StreamPipelineStats> live = (*service)->stats();
  ASSERT_EQ(live.size(), 2u);
  std::size_t submitted = 0;
  for (const runtime::StreamPipelineStats& stats : live) {
    submitted += stats.submitted;
  }
  EXPECT_EQ(submitted, 60u);
  ASSERT_TRUE((*service)->Finish().ok());
}

}  // namespace
}  // namespace condensa::shard
