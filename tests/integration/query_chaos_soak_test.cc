// Read-path chaos soak: the query tier under every stress the PR
// hardens it against, at once, asserting ZERO WRONG ANSWERS.
//
//   * client churn — retrying clients connecting, querying, and closing
//     in a loop across more threads than the session cap;
//   * slow-loris connections that trickle partial frame headers and must
//     be reclaimed by the idle timeout, never wedging a session slot;
//   * overload — an in-flight cap far below the offered load, so a
//     steady fraction of requests is shed in-band with kUnavailable;
//   * engine latency chaos — a "query.execute" failpoint armed and
//     reset concurrently with serving;
//   * concurrent ingest — a publisher thread swapping new snapshot
//     versions under the running server;
//   * process death — SIGKILL of a forked server mid-load and a respawn
//     on the same port, which retrying clients must ride through.
//
// The correctness oracle: every snapshot version v is built by
// PublishVersion so that its aggregate record count is ExpectedRecords(v),
// a pure function of v. Any successful answer whose records don't match
// the formula for its own snapshot_version is a wrong answer and fails
// the test immediately. Everything else a request may legally experience
// — in-band kUnavailable after retries, a transport error during the
// kill window — is counted, not failed.
//
// Duration scales with CONDENSA_CHAOS_SOAK_SECONDS (default ~2s). Under
// TSan the forking test needs TSAN_OPTIONS=die_after_fork=0 (set by the
// CI chaos job).

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/failpoint.h"
#include "common/random.h"
#include "common/status.h"
#include "core/condensed_group_set.h"
#include "core/group_statistics.h"
#include "linalg/vector.h"
#include "net/socket.h"
#include "query/client.h"
#include "query/query.h"
#include "query/server.h"
#include "query/snapshot.h"

namespace condensa::query {
namespace {

using condensa::core::CondensedGroupSet;
using condensa::core::GroupStatistics;
using condensa::linalg::Vector;

double SoakSeconds() {
  if (const char* env = std::getenv("CONDENSA_CHAOS_SOAK_SECONDS")) {
    const double parsed = std::atof(env);
    if (parsed > 0.0) return parsed;
  }
  return 2.0;
}

constexpr std::size_t kGroupsPerPool = 3;
constexpr std::size_t kRecordsPerGroup = 4;

// The number of pools version v carries: 1..8, cycling, so snapshots
// stay cheap to build no matter how long the soak runs.
std::size_t PoolsForVersion(std::uint64_t version) {
  return static_cast<std::size_t>((version - 1) % 8) + 1;
}

// The oracle: total records any aggregate over snapshot version v must
// report. Pure function of v — no shared bookkeeping with the clients.
std::size_t ExpectedRecords(std::uint64_t version) {
  return PoolsForVersion(version) * kGroupsPerPool * kRecordsPerGroup;
}

CondensedGroupSet MakePool(double center, std::uint64_t seed) {
  Rng rng(seed);
  CondensedGroupSet groups(2, kRecordsPerGroup);
  for (std::size_t g = 0; g < kGroupsPerPool; ++g) {
    GroupStatistics stats(2);
    for (std::size_t r = 0; r < kRecordsPerGroup; ++r) {
      Vector record(2);
      record[0] = center + rng.Gaussian(0.0, 0.2);
      record[1] = double(g) + rng.Gaussian(0.0, 0.2);
      stats.Add(record);
    }
    groups.AddGroup(std::move(stats));
  }
  return groups;
}

QuerySnapshot SnapshotForVersion(std::uint64_t version) {
  QuerySnapshot snapshot;
  snapshot.dim = 2;
  const std::size_t pools = PoolsForVersion(version);
  for (std::size_t p = 0; p < pools; ++p) {
    snapshot.pools.push_back(
        {static_cast<int>(p), MakePool(double(p), 100 + p)});
  }
  return snapshot;
}

struct SoakCounters {
  std::atomic<std::size_t> answers{0};
  std::atomic<std::size_t> wrong{0};
  std::atomic<std::size_t> shed{0};       // in-band kUnavailable
  std::atomic<std::size_t> transport{0};  // connection-level failures
};

// One churn client: connect, issue retrying aggregates until the
// deadline, periodically drop the connection on purpose. Any successful
// answer is checked against the oracle.
void ChurnClient(std::uint16_t port, std::uint64_t seed,
                 std::chrono::steady_clock::time_point until,
                 SoakCounters& counters) {
  Rng rng(seed);
  while (std::chrono::steady_clock::now() < until) {
    auto client = QueryClient::Connect("127.0.0.1", port, 2000.0);
    if (!client.ok()) {
      counters.transport.fetch_add(1);
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      continue;
    }
    // A burst of requests on this session, then churn.
    const std::size_t burst = 1 + rng.UniformIndex(8);
    for (std::size_t i = 0; i < burst; ++i) {
      if (std::chrono::steady_clock::now() >= until) break;
      Query query;
      query.kind = QueryKind::kAggregate;
      QueryRetryOptions retry;
      retry.max_attempts = 6;
      retry.deadline_ms = 2000.0;
      retry.jitter_seed = seed * 1000 + i;
      auto result = client->ExecuteWithRetry(query, retry);
      if (result.ok()) {
        counters.answers.fetch_add(1);
        if (result->aggregate.records !=
            ExpectedRecords(result->snapshot_version)) {
          counters.wrong.fetch_add(1);
          ADD_FAILURE() << "wrong answer: version "
                        << result->snapshot_version << " reported "
                        << result->aggregate.records << " records, want "
                        << ExpectedRecords(result->snapshot_version);
        }
      } else if (result.status().code() == StatusCode::kUnavailable) {
        counters.shed.fetch_add(1);
      } else {
        counters.wrong.fetch_add(1);
        ADD_FAILURE() << "non-retryable failure from a valid query: "
                      << result.status().ToString();
      }
      if (!client->ok()) break;  // transport loss: churn to a fresh dial
    }
  }
}

// A slow-loris attacker: dials, trickles a few bytes that never complete
// a frame header, and holds the socket open. The idle timeout must
// reclaim the session slot; the victim never takes a slot hostage.
void SlowLoris(std::uint16_t port,
               std::chrono::steady_clock::time_point until) {
  while (std::chrono::steady_clock::now() < until) {
    auto conn = net::TcpConnection::Connect("127.0.0.1", port, 500.0);
    if (!conn.ok()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      continue;
    }
    // Raw partial garbage: half a header, then silence.
    (void)::send(conn->fd(), "CND", 3, 0);
    std::this_thread::sleep_for(std::chrono::milliseconds(120));
    conn->Close();
  }
}

TEST(QueryChaosSoakTest, ConcurrentChurnUnderChaosYieldsNoWrongAnswers) {
  FailPoint::Reset();
  const double seconds = SoakSeconds();
  const auto until =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(static_cast<long>(seconds * 1000.0));

  auto store = std::make_shared<SnapshotStore>();
  ASSERT_EQ(store->Publish(SnapshotForVersion(1)), 1u);
  std::atomic<std::uint64_t> version{1};

  QueryServerConfig config;
  config.poll_ms = 10.0;
  config.idle_timeout_ms = 80.0;  // fast enough to starve the loris
  config.max_sessions = 4;
  config.max_inflight = 2;  // well below offered load: real sheds
  config.stale_after_ms = 50.0;
  auto server = QueryServer::Create(config, store);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  std::thread serving(
      [raw = server->get()] { EXPECT_TRUE(raw->Run().ok()); });
  const std::uint16_t port = (*server)->port();

  SoakCounters counters;
  std::vector<std::thread> threads;
  for (std::uint64_t c = 0; c < 6; ++c) {
    threads.emplace_back(ChurnClient, port, 71 + c, until,
                         std::ref(counters));
  }
  threads.emplace_back(SlowLoris, port, until);

  // Concurrent ingest: keep publishing fresh versions while serving.
  threads.emplace_back([&store, &version, until] {
    while (std::chrono::steady_clock::now() < until) {
      std::this_thread::sleep_for(std::chrono::milliseconds(15));
      const std::uint64_t next = version.load() + 1;
      const std::uint64_t assigned =
          store->Publish(SnapshotForVersion(next));
      EXPECT_EQ(assigned, next);
      version.store(next);
    }
  });

  // Engine latency chaos: periodically make a handful of executions
  // slow, then let the path breathe again. Armed and reset live,
  // concurrently with requests in flight.
  threads.emplace_back([until] {
    Rng rng(99);
    while (std::chrono::steady_clock::now() < until) {
      FailPoint::Arm("query.execute",
                     {.repeat = 3, .mode = FailPointMode::kLatency,
                      .latency_ms = rng.Uniform(30.0, 70.0)});
      std::this_thread::sleep_for(std::chrono::milliseconds(40));
      FailPoint::Disarm("query.execute");
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    FailPoint::Disarm("query.execute");
  });

  for (std::thread& t : threads) t.join();
  (*server)->Stop();
  serving.join();
  FailPoint::Reset();

  // The soak must have done real work and returned zero wrong answers.
  EXPECT_EQ(counters.wrong.load(), 0u);
  EXPECT_GE(counters.answers.load(), 20u)
      << "soak served suspiciously few answers";
  EXPECT_GT(version.load(), 2u) << "publisher never rolled the snapshot";
}

// Forks a server child answering from `versions` published snapshots on
// an already-bound listener; returns the child's pid. The child never
// returns (it _exits), so no parent state is torn down twice.
pid_t ForkServer(net::TcpListener listener, std::uint64_t versions) {
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  auto store = std::make_shared<SnapshotStore>();
  for (std::uint64_t v = 1; v <= versions; ++v) {
    store->Publish(SnapshotForVersion(v));
  }
  QueryServerConfig config;
  config.poll_ms = 10.0;
  config.max_sessions = 4;
  auto server =
      QueryServer::CreateWithListener(config, store, std::move(listener));
  if (!server.ok()) ::_exit(3);
  Status run = (*server)->Run();
  ::_exit(run.ok() ? 0 : 4);
}

TEST(QueryChaosSoakTest, SigkillAndRespawnMidLoadNeverYieldsWrongAnswers) {
  FailPoint::Reset();
  const double seconds = SoakSeconds();
  const auto until =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(static_cast<long>(seconds * 1000.0));

  // Bind in the parent so the port survives the child and a respawn
  // reclaims it without a rebind race (SO_REUSEADDR in Listen).
  auto listener = net::TcpListener::Listen("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok()) << listener.status().ToString();
  const std::uint16_t port = listener->port();
  pid_t child = ForkServer(*std::move(listener), 3);
  ASSERT_GT(child, 0);

  SoakCounters counters;
  std::atomic<std::size_t> kills{0};
  std::vector<std::thread> threads;
  for (std::uint64_t c = 0; c < 3; ++c) {
    threads.emplace_back(ChurnClient, port, 171 + c, until,
                         std::ref(counters));
  }

  // The reaper: SIGKILL the serving child mid-load, wait a beat, then
  // respawn it on the SAME port. Clients must ride through on redial.
  std::thread reaper([&child, &kills, port, until] {
    while (std::chrono::steady_clock::now() < until) {
      std::this_thread::sleep_for(std::chrono::milliseconds(250));
      if (std::chrono::steady_clock::now() >= until) break;
      ::kill(child, SIGKILL);
      int status = 0;
      ::waitpid(child, &status, 0);
      kills.fetch_add(1);
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      auto relisten = net::TcpListener::Listen("127.0.0.1", port);
      ASSERT_TRUE(relisten.ok()) << relisten.status().ToString();
      child = ForkServer(*std::move(relisten), 3);
      ASSERT_GT(child, 0);
    }
  });

  for (std::thread& t : threads) t.join();
  reaper.join();
  ::kill(child, SIGKILL);
  int status = 0;
  ::waitpid(child, &status, 0);

  EXPECT_EQ(counters.wrong.load(), 0u);
  EXPECT_GE(counters.answers.load(), 10u)
      << "soak served suspiciously few answers across restarts";
  EXPECT_GE(kills.load(), 1u) << "the reaper never killed the server";
}

}  // namespace
}  // namespace condensa::query
