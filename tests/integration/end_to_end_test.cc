// End-to-end pipeline tests: generate a workload, condense, anonymize,
// mine, and check the paper's qualitative claims hold on small instances.

#include <gtest/gtest.h>

#include "anonymity/mondrian.h"
#include "common/check.h"
#include "common/random.h"
#include "core/anonymizer.h"
#include "core/engine.h"
#include "core/serialization.h"
#include "core/static_condenser.h"
#include "data/csv.h"
#include "data/split.h"
#include "data/transform.h"
#include "datagen/profiles.h"
#include "linalg/stats.h"
#include "metrics/compatibility.h"
#include "metrics/privacy.h"
#include "mining/apriori.h"
#include "mining/decision_tree.h"
#include "mining/evaluation.h"
#include "mining/knn.h"
#include "mining/naive_bayes.h"

namespace condensa {
namespace {

using core::CondensationConfig;
using core::CondensationEngine;
using core::CondensationMode;
using data::Dataset;

struct PipelineOutcome {
  double accuracy = 0.0;
  double mu = 0.0;
};

// Runs the full paper pipeline once: split, scale, condense+anonymize the
// training side, fit 1-NN on the release, evaluate on the clean test side.
PipelineOutcome RunPipeline(const Dataset& dataset,
                            const CondensationConfig& config,
                            std::uint64_t seed) {
  Rng rng(seed);
  auto split = data::SplitTrainTest(dataset, 0.75, rng);
  CONDENSA_CHECK(split.ok());

  data::ZScoreScaler scaler;
  CONDENSA_CHECK(scaler.Fit(split->train).ok());
  Dataset train = scaler.TransformDataset(split->train);
  Dataset test = scaler.TransformDataset(split->test);

  CondensationEngine engine(config);
  auto result = engine.Anonymize(train, rng);
  CONDENSA_CHECK(result.ok());

  mining::KnnClassifier knn({.k = 1});
  CONDENSA_CHECK(knn.Fit(result->anonymized).ok());
  auto accuracy = mining::EvaluateAccuracy(knn, test);
  CONDENSA_CHECK(accuracy.ok());
  auto mu = metrics::CovarianceCompatibility(train, result->anonymized);
  CONDENSA_CHECK(mu.ok());
  return {*accuracy, *mu};
}

double BaselineAccuracy(const Dataset& dataset, std::uint64_t seed) {
  Rng rng(seed);
  auto split = data::SplitTrainTest(dataset, 0.75, rng);
  CONDENSA_CHECK(split.ok());
  data::ZScoreScaler scaler;
  CONDENSA_CHECK(scaler.Fit(split->train).ok());
  Dataset train = scaler.TransformDataset(split->train);
  Dataset test = scaler.TransformDataset(split->test);
  mining::KnnClassifier knn({.k = 1});
  CONDENSA_CHECK(knn.Fit(train).ok());
  auto accuracy = mining::EvaluateAccuracy(knn, test);
  CONDENSA_CHECK(accuracy.ok());
  return *accuracy;
}

TEST(EndToEndTest, StaticCondensationAccuracyComparableToBaseline) {
  Rng data_rng(1);
  Dataset dataset = datagen::MakeIonosphere(data_rng);
  double baseline = BaselineAccuracy(dataset, 77);
  PipelineOutcome outcome = RunPipeline(
      dataset, {.group_size = 20, .mode = CondensationMode::kStatic}, 77);
  // Paper Fig. 5(a): static condensation stays within a few points of the
  // baseline (often above it).
  EXPECT_GT(outcome.accuracy, baseline - 0.08);
}

TEST(EndToEndTest, StaticCondensationPreservesCovariance) {
  Rng data_rng(2);
  Dataset dataset = datagen::MakePima(data_rng);
  PipelineOutcome outcome = RunPipeline(
      dataset, {.group_size = 25, .mode = CondensationMode::kStatic}, 78);
  // Paper Fig. 7(b): μ(static) > 0.98 over all group sizes.
  EXPECT_GT(outcome.mu, 0.95);
}

TEST(EndToEndTest, DynamicCondensationWorksOnStream) {
  Rng data_rng(3);
  Dataset dataset = datagen::MakeEcoli(data_rng);
  double baseline = BaselineAccuracy(dataset, 79);
  PipelineOutcome outcome = RunPipeline(
      dataset,
      {.group_size = 20, .mode = CondensationMode::kDynamic,
       .bootstrap_fraction = 0.25},
      79);
  EXPECT_GT(outcome.accuracy, baseline - 0.15);
  EXPECT_GT(outcome.mu, 0.6);
}

TEST(EndToEndTest, DynamicMuLowerThanStaticAtTinyGroupSizes) {
  // Paper Section 4: the splitting approximation hurts dynamic μ at very
  // small group sizes, where static stays near 1. With our
  // moment-consistent split the per-seed gap is small (see
  // EXPERIMENTS.md), so the ordering is asserted on a multi-seed average
  // on Ionosphere, where the effect is most visible.
  Rng data_rng(4);
  Dataset dataset = datagen::MakeIonosphere(data_rng);
  double static_mu = 0.0, dynamic_mu = 0.0;
  constexpr int kSeeds = 6;
  for (int s = 0; s < kSeeds; ++s) {
    static_mu += RunPipeline(dataset,
                             {.group_size = 2,
                              .mode = CondensationMode::kStatic},
                             80 + s)
                     .mu;
    dynamic_mu += RunPipeline(dataset,
                              {.group_size = 2,
                               .mode = CondensationMode::kDynamic,
                               .bootstrap_fraction = 0.05},
                              80 + s)
                      .mu;
  }
  static_mu /= kSeeds;
  dynamic_mu /= kSeeds;
  EXPECT_GT(static_mu, 0.97);
  EXPECT_LT(dynamic_mu, static_mu);
}

TEST(EndToEndTest, RegressionPipelineOnAbaloneProfile) {
  Rng data_rng(5);
  datagen::ProfileOptions small;
  small.size_factor = 0.25;  // ~1044 records, keeps the test fast
  Dataset dataset = datagen::MakeAbalone(data_rng, small);

  Rng rng(81);
  auto split = data::SplitTrainTest(dataset, 0.75, rng);
  ASSERT_TRUE(split.ok());

  CondensationEngine engine({.group_size = 20});
  auto result = engine.Anonymize(split->train, rng);
  ASSERT_TRUE(result.ok());

  mining::KnnRegressor regressor({.k = 1});
  ASSERT_TRUE(regressor.Fit(result->anonymized).ok());
  auto condensed_accuracy =
      mining::EvaluateWithinTolerance(regressor, split->test, 1.0);
  ASSERT_TRUE(condensed_accuracy.ok());

  mining::KnnRegressor baseline({.k = 1});
  ASSERT_TRUE(baseline.Fit(split->train).ok());
  auto baseline_accuracy =
      mining::EvaluateWithinTolerance(baseline, split->test, 1.0);
  ASSERT_TRUE(baseline_accuracy.ok());

  // Condensed within-a-year accuracy stays comparable to the original.
  EXPECT_GT(*condensed_accuracy, *baseline_accuracy - 0.12);
  EXPECT_GT(*condensed_accuracy, 0.2);
}

TEST(EndToEndTest, PrivacyUtilityTradeoffMovesInTheRightDirection) {
  // Bigger k -> more privacy (distance gain up). μ stays high for static.
  Rng data_rng(6);
  Dataset dataset = datagen::MakeGaussianBlobs(2, 150, 4, 6.0, data_rng);

  Rng rng(82);
  core::CondensationEngine small_engine({.group_size = 2});
  core::CondensationEngine large_engine({.group_size = 30});
  auto small = small_engine.Anonymize(dataset, rng);
  auto large = large_engine.Anonymize(dataset, rng);
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());

  auto link_small = metrics::EvaluateLinkage(dataset, small->anonymized);
  auto link_large = metrics::EvaluateLinkage(dataset, large->anonymized);
  ASSERT_TRUE(link_small.ok());
  ASSERT_TRUE(link_large.ok());
  EXPECT_GT(link_large->distance_gain, link_small->distance_gain);

  auto mu_large =
      metrics::CovarianceCompatibility(dataset, large->anonymized);
  ASSERT_TRUE(mu_large.ok());
  EXPECT_GT(*mu_large, 0.9);
}

TEST(EndToEndTest, DecisionTreeAndNaiveBayesRunUnchangedOnRelease) {
  // The paper's "no new algorithms" claim across model families.
  Rng data_rng(8);
  Dataset dataset = datagen::MakeGaussianBlobs(3, 100, 4, 10.0, data_rng);
  Rng rng(84);
  auto split = data::SplitTrainTest(dataset, 0.75, rng);
  ASSERT_TRUE(split.ok());
  CondensationEngine engine({.group_size = 15});
  auto release = engine.Anonymize(split->train, rng);
  ASSERT_TRUE(release.ok());

  mining::DecisionTreeClassifier tree;
  ASSERT_TRUE(tree.Fit(release->anonymized).ok());
  auto tree_accuracy = mining::EvaluateAccuracy(tree, split->test);
  ASSERT_TRUE(tree_accuracy.ok());
  EXPECT_GT(*tree_accuracy, 0.85);

  mining::GaussianNaiveBayes nb;
  ASSERT_TRUE(nb.Fit(release->anonymized).ok());
  auto nb_accuracy = mining::EvaluateAccuracy(nb, split->test);
  ASSERT_TRUE(nb_accuracy.ok());
  EXPECT_GT(*nb_accuracy, 0.85);
}

TEST(EndToEndTest, AssociationRulesSurviveCondensation) {
  // A planted implication (high x1 -> high x2, strongly correlated dims)
  // must be mined from the release with comparable confidence.
  Rng rng(85);
  Dataset dataset(2);
  for (int i = 0; i < 600; ++i) {
    double x = rng.Uniform(0.0, 1.0);
    dataset.Add(linalg::Vector{x, x + rng.Gaussian(0.0, 0.03)});
  }
  CondensationEngine engine({.group_size = 20});
  auto release = engine.Anonymize(dataset, rng);
  ASSERT_TRUE(release.ok());

  linalg::Vector lower{0.0, -0.2};
  linalg::Vector upper{1.0, 1.2};
  auto transactions = mining::DiscretizeToTransactions(release->anonymized,
                                                       2, lower, upper);
  ASSERT_TRUE(transactions.ok());
  mining::AprioriOptions options;
  options.min_support = 0.2;
  options.min_confidence = 0.8;
  auto mined = mining::MineAssociationRules(*transactions, options);
  ASSERT_TRUE(mined.ok());
  bool found = false;
  for (const mining::AssociationRule& rule : mined->rules) {
    if (rule.antecedent == std::vector<mining::Item>{1} &&
        rule.consequent == std::vector<mining::Item>{3}) {
      found = true;
      EXPECT_GT(rule.confidence, 0.85);
    }
  }
  EXPECT_TRUE(found);
}

TEST(EndToEndTest, GroupStatisticsSurviveSerializationAndAnonymize) {
  // Serialize the server's aggregates, reload in a "new process", and
  // generate the release from the reloaded statistics.
  Rng rng(86);
  std::vector<linalg::Vector> points;
  for (int i = 0; i < 150; ++i) {
    double x = rng.Gaussian(0.0, 2.0);
    points.push_back(linalg::Vector{x, 0.6 * x + rng.Gaussian(0.0, 0.5)});
  }
  core::StaticCondenser condenser({.group_size = 15});
  auto groups = condenser.Condense(points, rng);
  ASSERT_TRUE(groups.ok());

  auto reloaded =
      core::DeserializeGroupSet(core::SerializeGroupSet(*groups));
  ASSERT_TRUE(reloaded.ok());

  core::Anonymizer anonymizer;
  auto release = anonymizer.Generate(*reloaded, rng);
  ASSERT_TRUE(release.ok());
  ASSERT_EQ(release->size(), points.size());

  // Second-order structure preserved through the full loop.
  auto mu = metrics::CovarianceCompatibility(
      linalg::CovarianceMatrix(points),
      linalg::CovarianceMatrix(*release));
  ASSERT_TRUE(mu.ok());
  EXPECT_GT(*mu, 0.9);
}

TEST(EndToEndTest, CondensationBeatsMondrianOnStructure) {
  // Head-to-head with the k-anonymity baseline at the same k: both
  // releases are k-indistinguishable, but condensation retains far more
  // covariance structure.
  Rng data_rng(9);
  Dataset dataset = datagen::MakePima(data_rng);
  Rng rng(87);
  const std::size_t k = 30;

  CondensationEngine engine({.group_size = k});
  auto condensed = engine.Anonymize(dataset, rng);
  ASSERT_TRUE(condensed.ok());
  auto mondrian = anonymity::MondrianCentroidRelease(dataset, {.k = k});
  ASSERT_TRUE(mondrian.ok());

  auto mu_condensed =
      metrics::CovarianceCompatibility(dataset, condensed->anonymized);
  auto mu_mondrian = metrics::CovarianceCompatibility(dataset, *mondrian);
  ASSERT_TRUE(mu_condensed.ok());
  ASSERT_TRUE(mu_mondrian.ok());
  EXPECT_GT(*mu_condensed, *mu_mondrian);
}

TEST(EndToEndTest, AnonymizedCsvRoundTripKeepsUtility) {
  // The release is a plain dataset: write it to CSV, read it back, train on
  // it. (The paper's "no new algorithms needed" claim in file form.)
  Rng data_rng(7);
  Dataset dataset = datagen::MakeGaussianBlobs(2, 80, 3, 10.0, data_rng);
  Rng rng(83);
  CondensationEngine engine({.group_size = 10});
  auto result = engine.Anonymize(dataset, rng);
  ASSERT_TRUE(result.ok());

  std::string csv = data::WriteCsvToString(result->anonymized);
  data::CsvReadOptions options;
  options.task = data::TaskType::kClassification;
  auto read_back = data::ReadCsvFromString(csv, options);
  ASSERT_TRUE(read_back.ok());

  mining::KnnClassifier knn({.k = 1});
  ASSERT_TRUE(knn.Fit(read_back->dataset).ok());
  auto accuracy = mining::EvaluateAccuracy(knn, dataset);
  ASSERT_TRUE(accuracy.ok());
  EXPECT_GT(*accuracy, 0.9);
}

}  // namespace
}  // namespace condensa
