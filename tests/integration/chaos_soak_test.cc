// Chaos soak for the streaming pipeline runtime.
//
// Runs the full StreamPipeline against a disk that lies: probabilistic
// journal/append failures, slow fsyncs, failed snapshot rolls, and a
// condenser that occasionally reports an internal error — while several
// producer threads interleave poison records (wrong dimension, NaN)
// into an otherwise healthy stream. The pipeline's contract under all
// of that is zero silent loss: by Finish() every accepted record is
// applied, quarantined with a reason, or durably spooled, and the
// on-disk artifacts (checkpoint dir, quarantine file) agree with the
// in-memory ledger.
//
// Duration scales with CONDENSA_CHAOS_SOAK_SECONDS (default ~2s for
// developer runs; CI runs it around 60s). The test must stay clean
// under ThreadSanitizer (CONDENSA_SANITIZE=thread).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "common/io.h"
#include "common/random.h"
#include "core/checkpointing.h"
#include "linalg/vector.h"
#include "runtime/pipeline.h"
#include "runtime/quarantine.h"

namespace condensa::runtime {
namespace {

using linalg::Vector;

double SoakSeconds() {
  if (const char* env = std::getenv("CONDENSA_CHAOS_SOAK_SECONDS")) {
    const double parsed = std::atof(env);
    if (parsed > 0.0) return parsed;
  }
  return 2.0;
}

std::string FreshDir(const std::string& tag) {
  std::string dir = ::testing::TempDir() + "/condensa_chaos_" + tag;
  if (auto entries = ListDirectory(dir); entries.ok()) {
    for (const std::string& name : *entries) {
      RemoveFile(dir + "/" + name);
    }
  }
  CreateDirectories(dir);
  return dir;
}

TEST(ChaosSoakTest, NoAcknowledgedRecordIsEverLost) {
  FailPoint::Reset();
  const std::string dir = FreshDir("soak");
  constexpr std::size_t kDim = 4;
  constexpr std::size_t kGroupSize = 8;
  constexpr std::size_t kQueueCapacity = 64;

  StreamPipelineConfig config;
  config.dim = kDim;
  config.group_size = kGroupSize;
  config.checkpoint_dir = dir;
  config.snapshot_interval = 64;
  config.queue_capacity = kQueueCapacity;
  config.backpressure = BackpressurePolicy::kBlock;
  config.batch_size = 16;
  config.retry.max_attempts = 4;
  config.retry.initial_backoff_ms = 0.1;
  config.retry.max_backoff_ms = 2.0;
  config.breaker.failure_threshold = 4;
  config.breaker.open_duration_ms = 25.0;
  config.finish_drain_deadline_ms = 30000.0;
  config.seed = 20260805;

  auto pipeline = StreamPipeline::Start(config);
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();

  // The disk starts lying only after the pipeline is up, so startup
  // (initial snapshot, quarantine header) is deterministic.
  FailPoint::Arm("io.append", {.code = StatusCode::kUnavailable,
                               .probability = 0.05,
                               .seed = 1});
  FailPoint::Arm("io.sync", {.mode = FailPointMode::kLatency,
                             .probability = 0.10,
                             .seed = 2,
                             .latency_ms = 2.0});
  FailPoint::Arm("checkpoint.snapshot", {.code = StatusCode::kUnavailable,
                                         .probability = 0.05,
                                         .seed = 3});
  FailPoint::Arm("dynamic.insert", {.code = StatusCode::kInternal,
                                    .probability = 0.01,
                                    .seed = 4});

  constexpr int kProducers = 3;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(SoakSeconds()));
  std::atomic<std::size_t> good_submitted{0};
  std::atomic<std::size_t> poison_submitted{0};

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      Rng rng(1000 + static_cast<std::uint64_t>(p));
      std::size_t sent = 0;
      while (std::chrono::steady_clock::now() < deadline) {
        Status status;
        if (sent % 47 == 13) {
          // Wrong dimension.
          status = (*pipeline)->Submit(Vector{1.0, 2.0});
          poison_submitted.fetch_add(1, std::memory_order_relaxed);
        } else if (sent % 47 == 29) {
          Vector bad(kDim);
          bad[sent % kDim] = sent % 2 == 0
                                 ? std::nan("")
                                 : std::numeric_limits<double>::infinity();
          status = (*pipeline)->Submit(bad);
          poison_submitted.fetch_add(1, std::memory_order_relaxed);
        } else {
          Vector record(kDim);
          for (std::size_t j = 0; j < kDim; ++j) {
            record[j] = rng.Gaussian(p % 2 == 0 ? -3.0 : 3.0, 1.0);
          }
          status = (*pipeline)->Submit(record);
          good_submitted.fetch_add(1, std::memory_order_relaxed);
        }
        ASSERT_TRUE(status.ok()) << status.ToString();
        ++sent;
      }
    });
  }
  for (std::thread& producer : producers) {
    producer.join();
  }

  // Confirm the chaos actually fired before calling the run a success.
  EXPECT_GT(FailPoint::TriggerCount("io.append"), 0u);
  EXPECT_GT(FailPoint::TriggerCount("io.sync"), 0u);

  // Heal the disk so Finish can drain the backlog and checkpoint.
  FailPoint::Reset();

  auto stats = (*pipeline)->Finish();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  SCOPED_TRACE(stats->ToString());

  const std::size_t total_submitted =
      good_submitted.load() + poison_submitted.load();
  EXPECT_EQ(stats->submitted, total_submitted);
  EXPECT_GT(good_submitted.load(), 0u);
  EXPECT_GT(poison_submitted.load(), 0u);

  // Zero silent loss: the ledger balances, nothing was dropped (kBlock
  // never sheds), and the healed disk let the spool drain completely.
  EXPECT_TRUE(stats->Balanced());
  EXPECT_EQ(stats->dropped, 0u);
  EXPECT_EQ(stats->rejected, 0u);
  EXPECT_EQ(stats->spool_remaining, 0u);
  EXPECT_EQ(stats->applied + stats->quarantined, total_submitted);

  // Every intake poison is quarantined with the right reason; worker
  // quarantines only come from the injected internal errors.
  EXPECT_EQ(stats->quarantined_dimension + stats->quarantined_non_finite,
            poison_submitted.load());
  EXPECT_EQ(stats->quarantined, stats->quarantined_dimension +
                                    stats->quarantined_non_finite +
                                    stats->quarantined_failure);

  // Queue memory stayed bounded.
  EXPECT_LE(stats->queue_high_water, kQueueCapacity);

  // The quarantine file accounts for every quarantined record (minus
  // writes the dying disk refused even after retries — normally zero).
  auto entries = QuarantineWriter::ReadAll(dir + "/quarantine.log");
  ASSERT_TRUE(entries.ok()) << entries.status().ToString();
  EXPECT_EQ(entries->size(),
            stats->quarantined - stats->quarantine_write_failures);
  EXPECT_EQ(stats->quarantine_write_failures, 0u);

  // The checkpoint directory is a faithful, recoverable record of
  // exactly the applied stream.
  const std::size_t applied = stats->applied;
  pipeline->reset();  // release the dir
  auto recovered = core::DurableCondenser::Recover(
      dir, {.group_size = kGroupSize}, {.snapshot_interval = 64});
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered->records_seen(), applied);
  EXPECT_EQ(recovered->condenser().groups().TotalRecords() +
                (recovered->condenser().ExportState().forming.has_value()
                     ? recovered->condenser().ExportState().forming->count()
                     : 0),
            applied);
}

// A shorter variant that keeps the chaos armed straight through Finish:
// even when the disk never heals, the ledger still balances — whatever
// could not be applied is quarantined or left durably spooled, and the
// counts say so.
TEST(ChaosSoakTest, LedgerBalancesEvenWhenDiskNeverHeals) {
  FailPoint::Reset();
  const std::string dir = FreshDir("unhealed");

  StreamPipelineConfig config;
  config.dim = 3;
  config.group_size = 5;
  config.checkpoint_dir = dir;
  config.snapshot_interval = 32;
  config.queue_capacity = 32;
  config.batch_size = 8;
  config.retry.max_attempts = 3;
  config.retry.initial_backoff_ms = 0.1;
  config.retry.max_backoff_ms = 1.0;
  config.breaker.failure_threshold = 3;
  config.breaker.open_duration_ms = 20.0;
  // Keep Finish bounded: with a still-broken disk the spool cannot fully
  // drain, and that must be reported, not hung on.
  config.finish_drain_deadline_ms = 300.0;
  config.seed = 7;

  auto pipeline = StreamPipeline::Start(config);
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();

  FailPoint::Arm("checkpoint.journal_append",
                 {.code = StatusCode::kUnavailable,
                  .probability = 0.6,
                  .seed = 21});

  Rng rng(99);
  for (int i = 0; i < 300; ++i) {
    Vector record(3);
    for (std::size_t j = 0; j < 3; ++j) {
      record[j] = rng.Gaussian(0.0, 2.0);
    }
    ASSERT_TRUE((*pipeline)->Submit(record).ok());
  }

  auto stats = (*pipeline)->Finish();
  FailPoint::Reset();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  SCOPED_TRACE(stats->ToString());

  EXPECT_TRUE(stats->Balanced());
  EXPECT_EQ(stats->applied + stats->spool_remaining +
                stats->quarantined_failure,
            300u);
  // The un-drained remainder survived on disk, not just in memory.
  if (stats->spool_remaining > 0 && stats->spool_write_failures == 0) {
    auto spool = ReadFileToString(dir + "/spool.log");
    ASSERT_TRUE(spool.ok());
    EXPECT_FALSE(spool->empty());
  }
}

}  // namespace
}  // namespace condensa::runtime
