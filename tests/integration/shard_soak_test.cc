// Chaos soak for sharded condensation (shard/stream_service.h).
//
// Two failure stories the scatter/gather design must survive:
//
//   1. A worker dies mid-ingest. Simulated two ways: failpoint-injected
//      internal condenser errors while the stream is live (the pipeline
//      "kills" and reopens its durable condenser via Recover), and a
//      torn journal tail left in ONE shard's checkpoint directory (a
//      worker that crashed mid-write). In both cases the crashed shard
//      recovers alone — the other shards' checkpoints are untouched —
//      and the per-shard zero-silent-loss ledgers still balance.
//
//   2. The disk misbehaves under load across every shard. The soak arms
//      probabilistic append/sync/snapshot/insert faults while records
//      flow, heals the disk, finishes, and asserts the global gather
//      represents exactly the applied records of every shard.
//
// Duration scales with CONDENSA_CHAOS_SOAK_SECONDS like the runtime
// chaos soak; runs under ThreadSanitizer in CI.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "common/io.h"
#include "common/random.h"
#include "linalg/vector.h"
#include "shard/stream_service.h"

namespace condensa::shard {
namespace {

using linalg::Vector;

double SoakSeconds() {
  if (const char* env = std::getenv("CONDENSA_CHAOS_SOAK_SECONDS")) {
    const double parsed = std::atof(env);
    if (parsed > 0.0) return parsed;
  }
  return 1.0;
}

void WipeTree(const std::string& root) {
  if (auto entries = ListDirectory(root); entries.ok()) {
    for (const std::string& name : *entries) {
      const std::string child = root + "/" + name;
      if (auto nested = ListDirectory(child); nested.ok()) {
        for (const std::string& inner : *nested) {
          RemoveFile(child + "/" + inner);
        }
      }
      RemoveFile(child);
    }
  }
}

std::string FreshRoot(const std::string& tag) {
  std::string root = ::testing::TempDir() + "/condensa_shard_soak_" + tag;
  WipeTree(root);
  CreateDirectories(root);
  return root;
}

ShardedStreamConfig SoakConfig(const std::string& root,
                               std::size_t shards) {
  ShardedStreamConfig config;
  config.num_shards = shards;
  config.dim = 3;
  config.group_size = 5;
  config.checkpoint_root = root;
  config.snapshot_interval = 32;
  config.sync_every_append = false;
  config.queue_capacity = 64;
  config.batch_size = 8;
  config.seed = 20260805;
  return config;
}

Vector RandomRecord(Rng& rng) {
  return Vector{rng.Gaussian(), rng.Gaussian(1.0, 2.0), rng.Gaussian()};
}

TEST(ShardSoakTest, WorkerKilledMidIngestRecoversWithZeroSilentLoss) {
  FailPoint::Reset();
  const std::string root = FreshRoot("killed_worker");
  constexpr std::size_t kShards = 3;

  auto service = ShardedStreamService::Start(SoakConfig(root, kShards));
  ASSERT_TRUE(service.ok()) << service.status().ToString();

  Rng rng(1);
  std::size_t submitted = 0;
  // Healthy warm-up so every shard has live state to lose.
  for (int i = 0; i < 150; ++i, ++submitted) {
    ASSERT_TRUE((*service)->Submit(RandomRecord(rng)).ok());
  }

  // Kill phase: the condenser starts throwing internal errors, which
  // poisons a shard's in-memory state; its pipeline must rebuild via
  // Recover from that shard's own checkpoint directory and keep going.
  FailPoint::Arm("dynamic.insert", {.code = StatusCode::kInternal,
                                    .probability = 0.05,
                                    .seed = 5});
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(SoakSeconds()));
  while (std::chrono::steady_clock::now() < deadline) {
    ASSERT_TRUE((*service)->Submit(RandomRecord(rng)).ok());
    ++submitted;
  }
  EXPECT_GT(FailPoint::TriggerCount("dynamic.insert"), 0u);
  FailPoint::Reset();

  // Recovery phase: the stream keeps flowing after the fault clears.
  for (int i = 0; i < 150; ++i, ++submitted) {
    ASSERT_TRUE((*service)->Submit(RandomRecord(rng)).ok());
  }

  auto result = (*service)->Finish();
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // Zero silent loss, shard by shard: every accepted record is applied or
  // quarantined-with-reason; nothing vanished.
  std::size_t applied = 0, quarantined = 0, accepted = 0, reopens = 0;
  for (std::size_t shard = 0; shard < kShards; ++shard) {
    const runtime::StreamPipelineStats& stats = result->shard_stats[shard];
    SCOPED_TRACE("shard " + std::to_string(shard) + ": " + stats.ToString());
    EXPECT_TRUE(stats.Balanced());
    EXPECT_EQ(stats.dropped, 0u);
    EXPECT_EQ(stats.spool_remaining, 0u);
    applied += stats.applied;
    quarantined += stats.quarantined;
    accepted += stats.accepted;
    reopens += stats.condenser_reopens;
  }
  EXPECT_EQ(accepted, submitted);
  EXPECT_EQ(applied + quarantined, submitted);
  // The injected kills actually exercised the recovery path somewhere.
  EXPECT_GT(reopens + quarantined, 0u);

  // The global release represents exactly the applied records.
  EXPECT_EQ(result->groups.TotalRecords(), applied);
  EXPECT_GE(result->groups.Summary().min_group_size, 5u);
}

TEST(ShardSoakTest, TornJournalInOneShardRecoversAlone) {
  FailPoint::Reset();
  const std::string root = FreshRoot("torn_journal");
  constexpr std::size_t kShards = 3;
  const ShardedStreamConfig config = SoakConfig(root, kShards);

  // Run 1: ingest and checkpoint, remembering what each shard applied.
  std::vector<std::size_t> applied_run1;
  std::size_t total_run1 = 0;
  {
    auto service = ShardedStreamService::Start(config);
    ASSERT_TRUE(service.ok()) << service.status().ToString();
    Rng rng(2);
    for (int i = 0; i < 240; ++i) {
      ASSERT_TRUE((*service)->Submit(RandomRecord(rng)).ok());
    }
    auto result = (*service)->Finish();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    for (const runtime::StreamPipelineStats& stats : result->shard_stats) {
      EXPECT_TRUE(stats.Balanced());
      applied_run1.push_back(stats.applied);
      total_run1 += stats.applied;
    }
    EXPECT_EQ(total_run1, 240u);
  }

  // Crash shard 1 mid-write: append a torn record to its newest journal.
  // The other shards' directories are left byte-identical.
  const std::string victim_dir = root + "/shard-1";
  auto entries = ListDirectory(victim_dir);
  ASSERT_TRUE(entries.ok()) << entries.status().ToString();
  std::string newest_journal;
  for (const std::string& name : *entries) {
    if (name.rfind("journal-", 0) == 0 && name > newest_journal) {
      newest_journal = name;
    }
  }
  ASSERT_FALSE(newest_journal.empty());
  {
    auto torn = AppendFile::Open(victim_dir + "/" + newest_journal);
    ASSERT_TRUE(torn.ok()) << torn.status().ToString();
    ASSERT_TRUE(torn->Append("3 0.25 half-writ").ok());  // no newline: torn
    torn->Close();
  }

  // Run 2: every shard recovers from its own directory; shard 1 truncates
  // the torn tail and loses nothing that was acknowledged.
  auto service = ShardedStreamService::Start(config);
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  Rng rng(3);
  for (int i = 0; i < 120; ++i) {
    ASSERT_TRUE((*service)->Submit(RandomRecord(rng)).ok());
  }
  auto result = (*service)->Finish();
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  std::size_t applied_run2 = 0;
  for (const runtime::StreamPipelineStats& stats : result->shard_stats) {
    EXPECT_TRUE(stats.Balanced());
    applied_run2 += stats.applied;
  }
  EXPECT_EQ(applied_run2, 120u);

  // The gather sees run-1 state (recovered per shard) plus run-2 records:
  // every acknowledged record from before the "crash" survived it.
  EXPECT_EQ(result->groups.TotalRecords(), total_run1 + applied_run2);
  EXPECT_GE(result->groups.Summary().min_group_size, 5u);
}

TEST(ShardSoakTest, DiskChaosAcrossAllShardsKeepsLedgersBalanced) {
  FailPoint::Reset();
  const std::string root = FreshRoot("disk_chaos");
  constexpr std::size_t kShards = 2;

  auto service = ShardedStreamService::Start(SoakConfig(root, kShards));
  ASSERT_TRUE(service.ok()) << service.status().ToString();

  FailPoint::Arm("io.append", {.code = StatusCode::kUnavailable,
                               .probability = 0.04,
                               .seed = 11});
  FailPoint::Arm("io.sync", {.mode = FailPointMode::kLatency,
                             .probability = 0.05,
                             .seed = 12,
                             .latency_ms = 1.0});
  FailPoint::Arm("checkpoint.snapshot", {.code = StatusCode::kUnavailable,
                                         .probability = 0.05,
                                         .seed = 13});

  Rng rng(4);
  std::size_t submitted = 0;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(SoakSeconds()));
  while (std::chrono::steady_clock::now() < deadline || submitted < 200) {
    ASSERT_TRUE((*service)->Submit(RandomRecord(rng)).ok());
    if (++submitted >= 200 && std::chrono::steady_clock::now() >= deadline) {
      break;
    }
  }

  FailPoint::Reset();  // heal before Finish so the spools can drain

  auto result = (*service)->Finish();
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  std::size_t applied = 0, quarantined = 0;
  for (const runtime::StreamPipelineStats& stats : result->shard_stats) {
    SCOPED_TRACE(stats.ToString());
    EXPECT_TRUE(stats.Balanced());
    EXPECT_EQ(stats.spool_remaining, 0u);
    applied += stats.applied;
    quarantined += stats.quarantined;
  }
  EXPECT_EQ(applied + quarantined, submitted);
  EXPECT_EQ(result->groups.TotalRecords(), applied);
}

}  // namespace
}  // namespace condensa::shard
