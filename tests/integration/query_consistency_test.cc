// Acceptance criterion for the read-side query plane: a QueryServer
// answers correctly WHILE a StreamPipeline is actively ingesting. The
// pipeline's group_observer publishes a snapshot after every batch; a
// client hammers the server concurrently and checks that every answer
// is snapshot-consistent:
//   * snapshot versions are monotonically non-decreasing across replies,
//   * each reply's record total equals the records_seen recorded at the
//     moment its version was published (never a torn mix of batches),
//   * after Finish, a final query accounts for every applied record.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/io.h"
#include "common/random.h"
#include "core/condensed_group_set.h"
#include "linalg/vector.h"
#include "query/client.h"
#include "query/query.h"
#include "query/server.h"
#include "query/snapshot.h"
#include "runtime/pipeline.h"

namespace condensa {
namespace {

using condensa::linalg::Vector;
using condensa::query::Query;
using condensa::query::QueryKind;
using condensa::query::QueryServer;
using condensa::query::QueryServerConfig;
using condensa::query::QuerySnapshot;
using condensa::query::SnapshotFromGroupSet;
using condensa::query::SnapshotStore;
using condensa::runtime::StreamPipeline;
using condensa::runtime::StreamPipelineConfig;

void WipeDir(const std::string& dir) {
  if (auto entries = ListDirectory(dir); entries.ok()) {
    for (const std::string& name : *entries) {
      RemoveFile(dir + "/" + name);
    }
  }
}

constexpr std::size_t kGroupSize = 4;

TEST(QueryConsistencyTest, ServerStaysConsistentDuringActiveIngest) {
  const std::string dir =
      ::testing::TempDir() + "/condensa_query_consistency";
  CreateDirectories(dir);
  WipeDir(dir);

  auto store = std::make_shared<SnapshotStore>();
  // version -> records_seen at publish time, written by the observer on
  // the worker thread, read by the querying thread under the mutex.
  std::mutex published_mu;
  std::map<std::uint64_t, std::size_t> published;

  StreamPipelineConfig config;
  config.dim = 2;
  config.group_size = kGroupSize;
  config.checkpoint_dir = dir;
  config.snapshot_interval = 64;
  config.sync_every_append = false;
  config.queue_capacity = 64;
  config.batch_size = 8;
  config.seed = 7;
  config.group_observer = [&](const core::CondensedGroupSet& groups,
                              std::size_t records_seen) {
    QuerySnapshot snapshot = SnapshotFromGroupSet(groups);
    snapshot.records_seen = records_seen;
    const std::uint64_t version = store->Publish(std::move(snapshot));
    std::lock_guard<std::mutex> lock(published_mu);
    published[version] = records_seen;
  };

  auto pipeline = StreamPipeline::Start(std::move(config));
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();

  QueryServerConfig server_config;
  server_config.poll_ms = 5.0;
  auto server = QueryServer::Create(server_config, store);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  std::thread serving([&] {
    Status run = (*server)->Run();
    EXPECT_TRUE(run.ok()) << run.ToString();
  });

  // Client thread: query continuously while ingest runs, recording
  // (version, records) pairs for the consistency checks below.
  std::atomic<bool> stop{false};
  std::vector<std::pair<std::uint64_t, std::size_t>> answers;
  std::thread querying([&] {
    auto client = query::QueryClient::Connect("127.0.0.1",
                                              (*server)->port(), 2000.0);
    ASSERT_TRUE(client.ok()) << client.status().ToString();
    Query aggregate;
    aggregate.kind = QueryKind::kAggregate;
    while (!stop.load(std::memory_order_acquire)) {
      auto result = client->Execute(aggregate, 2000.0);
      // Before the first batch completes there is no snapshot yet; that
      // comes back in-band as FailedPrecondition, not a wire error.
      if (!result.ok()) {
        EXPECT_EQ(result.status().code(),
                  StatusCode::kFailedPrecondition)
            << result.status().ToString();
        continue;
      }
      answers.emplace_back(result->snapshot_version,
                           result->aggregate.records);
    }
  });

  constexpr std::size_t kRecords = 600;
  Rng rng(21);
  for (std::size_t i = 0; i < kRecords; ++i) {
    Vector record(2);
    record[0] = rng.Gaussian();
    record[1] = rng.Gaussian();
    ASSERT_TRUE((*pipeline)->Submit(record).ok());
  }
  auto stats = (*pipeline)->Finish();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->applied, kRecords);

  // End the concurrent session first (the server serves one session at
  // a time), then verify a fresh session sees the final snapshot.
  stop.store(true, std::memory_order_release);
  querying.join();
  {
    auto client = query::QueryClient::Connect("127.0.0.1",
                                              (*server)->port(), 2000.0);
    ASSERT_TRUE(client.ok()) << client.status().ToString();
    Query final_query;
    final_query.kind = QueryKind::kAggregate;
    auto final_result = client->Execute(final_query, 2000.0);
    ASSERT_TRUE(final_result.ok()) << final_result.status().ToString();
    EXPECT_EQ(final_result->aggregate.records, kRecords);
  }
  (*server)->Stop();
  serving.join();

  ASSERT_FALSE(answers.empty());
  std::uint64_t last_version = 0;
  for (const auto& [version, records] : answers) {
    // Versions move forward only.
    EXPECT_GE(version, last_version);
    last_version = version;
    // Each answer matches exactly the ingest ledger at its version:
    // after warm-up every applied record lives in a group, so a torn or
    // mid-mutation read would break this equality.
    std::size_t seen = 0;
    {
      std::lock_guard<std::mutex> lock(published_mu);
      auto it = published.find(version);
      ASSERT_NE(it, published.end()) << "unknown version " << version;
      seen = it->second;
    }
    if (seen >= kGroupSize) {
      EXPECT_EQ(records, seen) << "version " << version;
    } else {
      EXPECT_EQ(records, 0u) << "version " << version;
    }
  }
  // The final published snapshot covers the whole stream.
  {
    std::lock_guard<std::mutex> lock(published_mu);
    ASSERT_FALSE(published.empty());
    EXPECT_EQ(published.rbegin()->second, kRecords);
  }
}

}  // namespace
}  // namespace condensa
