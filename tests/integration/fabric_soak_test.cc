// Fabric chaos soak: worker PROCESSES (fork + SIGKILL), not threads.
// These tests pin the tentpole guarantees end-to-end:
//
//   * a clean multi-process run releases the exact bytes of the
//     in-process sharded service (bit-identity over the wire);
//   * kill -9 of a worker mid-ingest loses zero acked records — every
//     submitted record appears in the release, and the only multiplicity
//     is the explicitly counted duplicates from re-routed batches whose
//     ack the crash swallowed;
//   * a killed worker respawned on its original port recovers from its
//     own checkpoint directory and rejoins;
//   * with no respawn, the coordinator takes the shard over locally from
//     the shared checkpoint root;
//   * heartbeat-loss injection (the "fabric.heartbeat" probe) drives the
//     liveness machinery — misses, then recovery — without data loss.
//
// Under TSan the forking parent needs TSAN_OPTIONS=die_after_fork=0 (set
// by the CI chaos job).

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "common/random.h"
#include "core/serialization.h"
#include "shard/fabric.h"
#include "shard/stream_service.h"
#include "shard/worker_process.h"
#include "shard/worker_server.h"

namespace condensa::shard {
namespace {

using linalg::Vector;

std::vector<Vector> MakeStream(std::size_t count, std::size_t dim,
                               std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Vector> stream;
  stream.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Vector record(dim);
    for (std::size_t j = 0; j < dim; ++j) {
      record[j] = rng.Gaussian(i % 2 == 0 ? -3.0 : 3.0, 1.0);
    }
    stream.push_back(std::move(record));
  }
  return stream;
}

class FabricSoakTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FailPoint::Reset();
    dir_ = std::filesystem::temp_directory_path() /
           ("condensa-fabric-soak-" +
            std::to_string(static_cast<unsigned long>(::getpid())) + "-" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    FailPoint::Reset();
    std::filesystem::remove_all(dir_);
  }

  std::string Dir(const std::string& leaf) const {
    return (dir_ / leaf).string();
  }

  std::filesystem::path dir_;
};

FabricConfig SoakConfig(std::size_t dim) {
  FabricConfig config;
  config.dim = dim;
  config.group_size = 10;
  config.seed = 77;
  config.wire_batch = 16;
  config.heartbeat_interval_ms = 40.0;
  config.heartbeat_timeout_ms = 500.0;
  config.connect_timeout_ms = 500.0;
  config.io_timeout_ms = 2000.0;
  config.reconnect.max_attempts = 2;
  config.reconnect.initial_backoff_ms = 10.0;
  config.reconnect.max_backoff_ms = 100.0;
  return config;
}

// The zero-silent-loss ledger, stated end to end: every submitted record
// is in the release, and the only multiplicity is the counted duplicates
// from batches whose ack a crash swallowed.
void ExpectLedgerExact(const FabricResult& result, std::size_t submitted) {
  EXPECT_TRUE(result.Balanced());
  EXPECT_EQ(result.groups.TotalRecords(),
            submitted + result.report.duplicates_detected);
}

TEST_F(FabricSoakTest, ForkedWorkersReleaseBitIdenticalToInProcess) {
  const std::size_t kShards = 2;
  const std::vector<Vector> stream = MakeStream(900, 3, 11);

  ShardedStreamConfig reference;
  reference.num_shards = kShards;
  reference.dim = 3;
  reference.group_size = 10;
  reference.checkpoint_root = Dir("inproc");
  reference.seed = 77;
  auto in_process = ShardedStreamService::Start(reference);
  ASSERT_TRUE(in_process.ok()) << in_process.status().ToString();
  for (const Vector& record : stream) {
    ASSERT_TRUE((*in_process)->Submit(record).ok());
  }
  auto expected = (*in_process)->Finish();
  ASSERT_TRUE(expected.ok());

  std::vector<WorkerProcess> workers;
  FabricConfig config = SoakConfig(3);
  for (std::size_t i = 0; i < kShards; ++i) {
    WorkerServerConfig server;
    server.checkpoint_root = Dir("worker-" + std::to_string(i));
    auto spawned = WorkerProcess::Spawn(std::move(server));
    ASSERT_TRUE(spawned.ok()) << spawned.status().ToString();
    workers.push_back(*std::move(spawned));
    config.workers.push_back({"127.0.0.1", workers.back().port()});
  }

  auto fabric = FabricService::Start(config);
  ASSERT_TRUE(fabric.ok()) << fabric.status().ToString();
  for (const Vector& record : stream) {
    ASSERT_TRUE((*fabric)->Submit(record).ok());
  }
  auto result = (*fabric)->Finish();
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  EXPECT_EQ(core::SerializeGroupSet(result->groups),
            core::SerializeGroupSet(expected->groups));
  ExpectLedgerExact(*result, stream.size());
  EXPECT_EQ(result->report.duplicates_detected, 0u);
  for (WorkerProcess& worker : workers) {
    StatusOr<int> status = worker.Wait();
    ASSERT_TRUE(status.ok()) << status.status().ToString();
    EXPECT_TRUE(WIFEXITED(*status) && WEXITSTATUS(*status) == 0);
  }
}

TEST_F(FabricSoakTest, SigkillMidIngestLosesNoAckedRecordsAndWorkerRejoins) {
  // All workers and the coordinator share one checkpoint root, as a
  // co-located deployment would: shard i's durable state lives in
  // <root>/shard-<i> no matter which process owns it.
  const std::size_t kShards = 3;
  const std::string root = Dir("shared");
  const std::vector<Vector> stream = MakeStream(1500, 3, 12);

  std::vector<WorkerProcess> workers;
  FabricConfig config = SoakConfig(3);
  for (std::size_t i = 0; i < kShards; ++i) {
    WorkerServerConfig server;
    server.checkpoint_root = root;
    auto spawned = WorkerProcess::Spawn(std::move(server));
    ASSERT_TRUE(spawned.ok()) << spawned.status().ToString();
    workers.push_back(*std::move(spawned));
    config.workers.push_back({"127.0.0.1", workers.back().port()});
  }
  auto fabric = FabricService::Start(config);
  ASSERT_TRUE(fabric.ok()) << fabric.status().ToString();

  // Phase 1: a third of the stream lands normally.
  std::size_t sent = 0;
  for (; sent < stream.size() / 3; ++sent) {
    ASSERT_TRUE((*fabric)->Submit(stream[sent]).ok());
  }

  // SIGKILL worker 1 mid-ingest. No shutdown path runs; whatever it
  // acked must already be durable in <root>/shard-1.
  const std::uint16_t killed_port = workers[1].port();
  workers[1].Kill();

  // Phase 2: keep ingesting through the death. The coordinator detects
  // the failure on flush or heartbeat, declares the peer dead, and
  // re-routes its in-flight records to survivors.
  for (; sent < 2 * stream.size() / 3; ++sent) {
    ASSERT_TRUE((*fabric)->Submit(stream[sent]).ok());
  }

  // Respawn on the ORIGINAL port with the same checkpoint root: the
  // worker recovers its durable shard state and rejoins on the next
  // redial (or, at the latest, Finish's last-chance handshake).
  {
    WorkerServerConfig server;
    server.checkpoint_root = root;
    server.port = killed_port;
    auto respawned = WorkerProcess::Spawn(std::move(server));
    ASSERT_TRUE(respawned.ok()) << respawned.status().ToString();
    workers[1] = *std::move(respawned);
  }
  // Give the heartbeat loop a few intervals to redial the revived port.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));

  // Phase 3: the rest of the stream.
  for (; sent < stream.size(); ++sent) {
    ASSERT_TRUE((*fabric)->Submit(stream[sent]).ok());
  }

  auto result = (*fabric)->Finish();
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  ExpectLedgerExact(*result, stream.size());
  EXPECT_GE(result->report.handoffs, 1u);
  // The kill was detected and the revived worker was folded back in —
  // via a live rejoin, the finish-time handshake, or (if the respawn
  // raced the declare-dead) a reconnect.
  EXPECT_GE(result->report.rejoins + result->report.reconnects, 1u);
}

TEST_F(FabricSoakTest, KilledWorkerWithoutRespawnIsTakenOverLocally) {
  const std::size_t kShards = 2;
  const std::string root = Dir("shared");
  const std::vector<Vector> stream = MakeStream(800, 3, 13);

  std::vector<WorkerProcess> workers;
  FabricConfig config = SoakConfig(3);
  config.local_fallback_root = root;  // same parent as the workers
  for (std::size_t i = 0; i < kShards; ++i) {
    WorkerServerConfig server;
    server.checkpoint_root = root;
    auto spawned = WorkerProcess::Spawn(std::move(server));
    ASSERT_TRUE(spawned.ok()) << spawned.status().ToString();
    workers.push_back(*std::move(spawned));
    config.workers.push_back({"127.0.0.1", workers.back().port()});
  }
  auto fabric = FabricService::Start(config);
  ASSERT_TRUE(fabric.ok()) << fabric.status().ToString();

  std::size_t sent = 0;
  for (; sent < stream.size() / 2; ++sent) {
    ASSERT_TRUE((*fabric)->Submit(stream[sent]).ok());
  }
  workers[0].Kill();  // never respawned
  for (; sent < stream.size(); ++sent) {
    ASSERT_TRUE((*fabric)->Submit(stream[sent]).ok());
  }

  auto result = (*fabric)->Finish();
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  ExpectLedgerExact(*result, stream.size());
  EXPECT_GE(result->report.handoffs, 1u);
  EXPECT_GE(result->report.local_takeovers, 1u);
}

TEST_F(FabricSoakTest, HeartbeatLossInjectionDrivesMissAndRecovery) {
  // In-process WorkerServer so the worker shares this process's failpoint
  // registry: an armed "fabric.heartbeat" makes the worker swallow beats
  // without replying, which the coordinator must treat as a miss.
  WorkerServerConfig server_config;
  server_config.checkpoint_root = Dir("w0");
  auto server = WorkerServer::Create(std::move(server_config));
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  std::thread server_thread(
      [raw = server->get()] { EXPECT_TRUE(raw->Run().ok()); });

  FabricConfig config = SoakConfig(3);
  config.workers = {{"127.0.0.1", (*server)->port()}};
  // Tight liveness so the test observes misses quickly; the recv wait for
  // a swallowed beat is heartbeat_timeout_ms.
  config.heartbeat_interval_ms = 30.0;
  config.heartbeat_timeout_ms = 120.0;
  auto fabric = FabricService::Start(config);
  ASSERT_TRUE(fabric.ok()) << fabric.status().ToString();

  const std::vector<Vector> stream = MakeStream(300, 3, 14);
  std::size_t sent = 0;
  for (; sent < stream.size() / 2; ++sent) {
    ASSERT_TRUE((*fabric)->Submit(stream[sent]).ok());
  }

  // Two consecutive beats vanish, then the worker behaves again.
  FailPoint::Arm("fabric.heartbeat", {.fail_at = 1, .repeat = 2});
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while ((*fabric)->report().heartbeat_misses < 1 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_GE((*fabric)->report().heartbeat_misses, 1u);
  FailPoint::Reset();
  // Let the liveness loop re-establish the session before resuming.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));

  for (; sent < stream.size(); ++sent) {
    ASSERT_TRUE((*fabric)->Submit(stream[sent]).ok());
  }
  auto result = (*fabric)->Finish();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  server_thread.join();

  ExpectLedgerExact(*result, stream.size());
  EXPECT_GE(result->report.heartbeat_misses, 1u);
}

}  // namespace
}  // namespace condensa::shard
