// Crash-recovery sweep: a durable streaming condensation is crashed at
// EVERY fault boundary it crosses — each journal append, fsync, snapshot
// write, rename, journal roll, and eigensolver call — via armed
// failpoints, in both clean-error and torn-write modes. After every
// injected crash, recovery must (a) lose no acknowledged record, (b) be
// bit-identical to an in-memory condenser fed the same durable prefix,
// and (c) resume to a final structure identical to a run that never
// crashed.

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "common/io.h"
#include "common/random.h"
#include "core/checkpointing.h"

namespace condensa::core {
namespace {

using linalg::Vector;

constexpr std::size_t kDim = 3;
constexpr std::size_t kStreamLen = 28;

DynamicCondenserOptions CondenserOptions() { return {.group_size = 4}; }
DurabilityOptions Durability() { return {.snapshot_interval = 6}; }

// The deterministic record stream shared by every run.
const std::vector<Vector>& Stream() {
  static const std::vector<Vector>* stream = [] {
    auto* s = new std::vector<Vector>();
    Rng rng(2024);
    for (std::size_t i = 0; i < kStreamLen; ++i) {
      Vector v(kDim);
      for (std::size_t j = 0; j < kDim; ++j) {
        v[j] = rng.Gaussian(i % 2 == 0 ? 0.0 : 5.0, 1.0);
      }
      s->push_back(std::move(v));
    }
    return s;
  }();
  return *stream;
}

std::string Fingerprint(const DynamicCondenser& condenser) {
  return SerializeCondenserState(condenser.ExportState(), 0);
}

// Bit-exact state of an uninterrupted in-memory run over the first
// `count` records.
std::string PrefixFingerprint(std::size_t count) {
  DynamicCondenser reference(kDim, CondenserOptions());
  for (std::size_t i = 0; i < count; ++i) {
    EXPECT_TRUE(reference.Insert(Stream()[i]).ok());
  }
  return Fingerprint(reference);
}

void WipeDir(const std::string& dir) {
  ASSERT_TRUE(CreateDirectories(dir).ok());
  auto entries = ListDirectory(dir);
  ASSERT_TRUE(entries.ok());
  for (const std::string& name : *entries) {
    ASSERT_TRUE(RemoveFile(dir + "/" + name).ok());
  }
}

// One end-to-end durable run; stops at the first failed operation (the
// injected crash). Returns how many Inserts were acknowledged.
std::size_t RunScenario(const std::string& dir) {
  auto durable =
      DurableCondenser::Create(kDim, CondenserOptions(), Durability(), dir);
  if (!durable.ok()) return 0;
  std::size_t acked = 0;
  for (std::size_t i = 0; i < kStreamLen; ++i) {
    if (!durable->Insert(Stream()[i]).ok()) break;
    ++acked;
  }
  durable->Checkpoint().ok();  // best-effort final snapshot
  return acked;
}

struct Variant {
  std::string probe;
  FailPointSpec spec;
  std::string label;
};

std::vector<Variant> Variants() {
  const auto torn = [](std::size_t bytes) {
    return FailPointSpec{.mode = FailPointMode::kTornWrite,
                         .torn_bytes = bytes};
  };
  const std::size_t half = static_cast<std::size_t>(-1);
  return {
      {"checkpoint.snapshot", {}, "snapshot/error"},
      {"checkpoint.journal_append", {}, "journal_append/error"},
      {"io.atomic_write", {}, "atomic_write/error"},
      {"io.atomic_write", torn(half), "atomic_write/torn-half"},
      {"io.atomic_write", torn(3), "atomic_write/torn-3"},
      {"io.atomic_rename", {}, "atomic_rename/error"},
      {"io.append", {}, "append/error"},
      {"io.append", torn(half), "append/torn-half"},
      {"io.append", torn(2), "append/torn-2"},
      {"io.sync", {}, "sync/error"},
      {"eigen.jacobi",
       {.code = StatusCode::kInternal, .message = "eigensolver diverged"},
       "eigen/non-convergence"},
      {"dynamic.insert", {}, "apply/error"},
  };
}

TEST(CrashRecoveryTest, EveryWriteBoundarySurvivesInjectedCrash) {
  const std::string dir =
      ::testing::TempDir() + "/condensa_crash_recovery";
  const std::string baseline = PrefixFingerprint(kStreamLen);

  // Phase 1: one unarmed run counts the fault boundaries the scenario
  // actually crosses, per probe.
  FailPoint::Reset();
  WipeDir(dir);
  ASSERT_EQ(RunScenario(dir), kStreamLen);
  std::map<std::string, std::size_t> boundaries;
  for (const Variant& variant : Variants()) {
    boundaries[variant.probe] = FailPoint::HitCount(variant.probe);
    ASSERT_GT(boundaries[variant.probe], 0u)
        << variant.probe << " probe never reached — dead instrumentation?";
  }

  // Phase 2: re-run the scenario once per (variant, boundary), crashing
  // at exactly that boundary.
  std::size_t crashes = 0;
  for (const Variant& variant : Variants()) {
    for (std::size_t at = 1; at <= boundaries[variant.probe]; ++at) {
      SCOPED_TRACE(variant.label + " fail_at=" + std::to_string(at));
      FailPoint::Reset();
      WipeDir(dir);
      FailPointSpec spec = variant.spec;
      spec.fail_at = at;
      FailPoint::Arm(variant.probe, spec);
      const std::size_t acked = RunScenario(dir);
      FailPoint::Reset();  // the "machine" reboots with healthy hardware
      ++crashes;

      auto recovered =
          DurableCondenser::Recover(dir, CondenserOptions(), Durability());
      if (IsNotFound(recovered.status())) {
        // The crash predated any durable state; nothing was acked.
        ASSERT_EQ(acked, 0u);
        recovered = DurableCondenser::Create(kDim, CondenserOptions(),
                                             Durability(), dir);
      }
      ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();

      // (a) no acknowledged record is lost, and (b) the recovered state
      // is bit-identical to an uninterrupted run over its prefix.
      const std::size_t durable_prefix = recovered->records_seen();
      ASSERT_GE(durable_prefix, acked);
      ASSERT_LE(durable_prefix, kStreamLen);
      ASSERT_EQ(Fingerprint(recovered->condenser()),
                PrefixFingerprint(durable_prefix));

      // (c) resuming the stream converges to the uninterrupted baseline.
      for (std::size_t i = durable_prefix; i < kStreamLen; ++i) {
        ASSERT_TRUE(recovered->Insert(Stream()[i]).ok());
      }
      ASSERT_EQ(Fingerprint(recovered->condenser()), baseline);
    }
  }
  // The sweep must actually have exercised a meaningful number of
  // distinct crash points.
  EXPECT_GT(crashes, 100u);
}

TEST(CrashRecoveryTest, RepeatedCrashesDuringRecoveryStillConverge) {
  // Crash, recover, crash again mid-resume, recover again — state must
  // never regress.
  const std::string dir =
      ::testing::TempDir() + "/condensa_crash_recovery_repeat";
  FailPoint::Reset();
  WipeDir(dir);

  FailPoint::Arm("io.append", {.fail_at = 9});
  std::size_t acked = RunScenario(dir);
  FailPoint::Reset();
  ASSERT_LT(acked, kStreamLen);

  std::size_t last_prefix = 0;
  for (int round = 0; round < 3; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    auto recovered =
        DurableCondenser::Recover(dir, CondenserOptions(), Durability());
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
    ASSERT_GE(recovered->records_seen(), last_prefix);
    last_prefix = recovered->records_seen();
    // Resume, crashing a little further along each round.
    FailPoint::Arm("io.append",
                   {.fail_at = 4 + static_cast<std::size_t>(round)});
    for (std::size_t i = last_prefix; i < kStreamLen; ++i) {
      if (!recovered->Insert(Stream()[i]).ok()) break;
    }
    FailPoint::Reset();
  }

  auto final_state =
      DurableCondenser::Recover(dir, CondenserOptions(), Durability());
  ASSERT_TRUE(final_state.ok());
  ASSERT_GE(final_state->records_seen(), last_prefix);
  EXPECT_EQ(Fingerprint(final_state->condenser()),
            PrefixFingerprint(final_state->records_seen()));
}

}  // namespace
}  // namespace condensa::core
