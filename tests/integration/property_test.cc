// Cross-module property and robustness tests: randomized invariants,
// fuzz-style malformed-input sweeps, and brute-force cross-checks.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>

#include "common/random.h"
#include "core/dynamic_condenser.h"
#include "core/engine.h"
#include "core/serialization.h"
#include "data/csv.h"
#include "datagen/profiles.h"
#include "index/kdtree.h"
#include "mining/apriori.h"

namespace condensa {
namespace {

using linalg::Vector;

// ---------------------------------------------------------------------------
// Serialization robustness: random corruption must fail cleanly, never crash.

TEST(SerializationFuzzTest, RandomSingleEditsNeverCrash) {
  Rng rng(1);
  core::CondensedGroupSet groups(3, 4);
  for (int g = 0; g < 3; ++g) {
    core::GroupStatistics stats(3);
    for (int i = 0; i < 4; ++i) {
      stats.Add(Vector{rng.Gaussian(), rng.Gaussian(), rng.Gaussian()});
    }
    groups.AddGroup(std::move(stats));
  }
  const std::string valid = core::SerializeGroupSet(groups);

  constexpr const char kAlphabet[] = "0123456789abcdefXYZ .-\n";
  for (int trial = 0; trial < 500; ++trial) {
    std::string corrupted = valid;
    std::size_t pos = rng.UniformIndex(corrupted.size());
    switch (rng.UniformIndex(3)) {
      case 0:  // overwrite
        corrupted[pos] = kAlphabet[rng.UniformIndex(sizeof(kAlphabet) - 1)];
        break;
      case 1:  // delete
        corrupted.erase(pos, 1);
        break;
      case 2:  // truncate
        corrupted.resize(pos);
        break;
    }
    // Must return (ok or error), never abort. If it parses, the result
    // must be internally consistent.
    auto result = core::DeserializeGroupSet(corrupted);
    if (result.ok()) {
      for (const core::GroupStatistics& g : result->groups()) {
        EXPECT_EQ(g.dim(), result->dim());
        EXPECT_GT(g.count(), 0u);
      }
    }
  }
}

TEST(CsvFuzzTest, GarbageInputNeverCrashes) {
  Rng rng(2);
  constexpr const char kAlphabet[] = "0123456789,.-e\n\r\t \"abc;";
  for (int trial = 0; trial < 500; ++trial) {
    std::string content;
    std::size_t length = rng.UniformIndex(200);
    for (std::size_t i = 0; i < length; ++i) {
      content += kAlphabet[rng.UniformIndex(sizeof(kAlphabet) - 1)];
    }
    for (bool strict : {true, false}) {
      data::CsvReadOptions options;
      options.strict = strict;
      options.task = static_cast<data::TaskType>(trial % 3);
      auto result = data::ReadCsvFromString(content, options);
      if (result.ok()) {
        EXPECT_TRUE(result->dataset.Validate().ok());
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Engine determinism and conservation properties.

class EngineModePropertyTest
    : public ::testing::TestWithParam<core::CondensationMode> {};

TEST_P(EngineModePropertyTest, SameSeedSameRelease) {
  Rng data_rng(3);
  data::Dataset dataset = datagen::MakeGaussianBlobs(2, 80, 3, 6.0, data_rng);
  core::CondensationConfig config{.group_size = 9, .mode = GetParam()};

  Rng rng_a(77), rng_b(77);
  auto a = core::CondensationEngine(config).Anonymize(dataset, rng_a);
  auto b = core::CondensationEngine(config).Anonymize(dataset, rng_b);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->anonymized.size(), b->anonymized.size());
  for (std::size_t i = 0; i < a->anonymized.size(); ++i) {
    EXPECT_TRUE(linalg::ApproxEqual(a->anonymized.record(i),
                                    b->anonymized.record(i), 0.0));
    EXPECT_EQ(a->anonymized.label(i), b->anonymized.label(i));
  }
}

TEST_P(EngineModePropertyTest, ReleaseSizeAndLabelsConserved) {
  Rng data_rng(4);
  for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    Rng rng(seed);
    data::Dataset dataset =
        datagen::MakeGaussianBlobs(3, 40 + 7 * seed, 4, 5.0, data_rng);
    core::CondensationEngine engine(
        {.group_size = 1 + seed * 3, .mode = GetParam()});
    auto result = engine.Anonymize(dataset, rng);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->anonymized.size(), dataset.size());
    auto in_by = dataset.IndicesByLabel();
    auto out_by = result->anonymized.IndicesByLabel();
    for (auto& [label, indices] : in_by) {
      EXPECT_EQ(out_by[label].size(), indices.size());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, EngineModePropertyTest,
                         ::testing::Values(core::CondensationMode::kStatic,
                                           core::CondensationMode::kDynamic));

TEST(DynamicConservationTest, GlobalMomentsSurviveAnyInsertSplitSequence) {
  // Splits replace one aggregate with two whose merged moments equal the
  // parent's, so the global Fs / Sc / n over all groups must equal the
  // plain sums over the stream, up to floating-point error — regardless
  // of how many splits happened.
  Rng rng(5);
  for (std::size_t k : {2u, 5u, 16u}) {
    core::DynamicCondenser condenser(3, {.group_size = k});
    core::GroupStatistics direct(3);
    for (int i = 0; i < 500; ++i) {
      Vector p{rng.Gaussian(), rng.Gaussian(0.0, 2.0), rng.Uniform(-1, 1)};
      ASSERT_TRUE(condenser.Insert(p).ok());
      direct.Add(p);
    }
    core::CondensedGroupSet groups = condenser.TakeGroups();
    core::GroupStatistics merged(3);
    for (const core::GroupStatistics& g : groups.groups()) {
      merged.Merge(g);
    }
    EXPECT_EQ(merged.count(), direct.count());
    double scale = std::max(1.0, direct.second_order().MaxAbs());
    EXPECT_TRUE(linalg::ApproxEqual(merged.first_order(),
                                    direct.first_order(), 1e-7 * scale));
    EXPECT_TRUE(linalg::ApproxEqual(merged.second_order(),
                                    direct.second_order(), 1e-7 * scale));
  }
}

// ---------------------------------------------------------------------------
// Apriori vs brute-force enumeration on small random instances.

std::map<std::vector<mining::Item>, double> BruteForceSupports(
    const std::vector<mining::Transaction>& transactions,
    std::size_t max_size) {
  // Collect the item universe.
  std::set<mining::Item> universe;
  for (const auto& t : transactions) {
    universe.insert(t.begin(), t.end());
  }
  std::vector<mining::Item> items(universe.begin(), universe.end());
  std::map<std::vector<mining::Item>, double> supports;

  // Enumerate all subsets up to max_size via bitmask (small universes).
  const std::size_t n = items.size();
  for (std::uint32_t mask = 1; mask < (1u << n); ++mask) {
    std::vector<mining::Item> subset;
    for (std::size_t i = 0; i < n; ++i) {
      if ((mask >> i) & 1u) subset.push_back(items[i]);
    }
    if (subset.size() > max_size) continue;
    std::size_t count = 0;
    for (const auto& t : transactions) {
      if (std::includes(t.begin(), t.end(), subset.begin(), subset.end())) {
        ++count;
      }
    }
    supports[subset] =
        static_cast<double>(count) / static_cast<double>(transactions.size());
  }
  return supports;
}

TEST(AprioriPropertyTest, MatchesBruteForceOnRandomInstances) {
  Rng rng(6);
  for (int trial = 0; trial < 20; ++trial) {
    // 8-item universe, 20 random transactions.
    std::vector<mining::Transaction> transactions;
    for (int t = 0; t < 20; ++t) {
      mining::Transaction transaction;
      for (mining::Item item = 0; item < 8; ++item) {
        if (rng.Bernoulli(0.4)) transaction.push_back(item);
      }
      if (transaction.empty()) transaction.push_back(0);
      transactions.push_back(std::move(transaction));
    }

    mining::AprioriOptions options;
    options.min_support = 0.25;
    options.min_confidence = 0.5;
    options.max_itemset_size = 3;
    auto mined = mining::MineAssociationRules(transactions, options);
    ASSERT_TRUE(mined.ok());

    auto truth = BruteForceSupports(transactions, 3);
    // Every truth itemset meeting min_support must be found with the
    // exact support, and vice versa.
    std::map<std::vector<mining::Item>, double> mined_supports;
    for (const auto& itemset : mined->itemsets) {
      mined_supports[itemset.items] = itemset.support;
    }
    for (const auto& [items, support] : truth) {
      if (support + 1e-12 >= options.min_support) {
        ASSERT_TRUE(mined_supports.count(items) > 0)
            << "missing itemset of support " << support;
        EXPECT_NEAR(mined_supports[items], support, 1e-12);
      }
    }
    for (const auto& [items, support] : mined_supports) {
      EXPECT_GE(support + 1e-12, options.min_support);
      EXPECT_NEAR(truth.at(items), support, 1e-12);
    }
  }
}

// ---------------------------------------------------------------------------
// k-d tree on adversarial layouts.

TEST(KdTreeAdversarialTest, CollinearAndGridPointsMatchBruteForce) {
  std::vector<std::vector<Vector>> layouts;
  // Collinear points.
  std::vector<Vector> line;
  for (int i = 0; i < 200; ++i) {
    line.push_back(Vector{static_cast<double>(i), 2.0 * i, -1.0 * i});
  }
  layouts.push_back(std::move(line));
  // Integer grid with many equal coordinates.
  std::vector<Vector> grid;
  for (int x = 0; x < 8; ++x) {
    for (int y = 0; y < 8; ++y) {
      for (int z = 0; z < 4; ++z) {
        grid.push_back(Vector{static_cast<double>(x),
                              static_cast<double>(y),
                              static_cast<double>(z)});
      }
    }
  }
  layouts.push_back(std::move(grid));

  Rng rng(7);
  for (const auto& points : layouts) {
    auto tree = index::KdTree::Build(points);
    ASSERT_TRUE(tree.ok());
    for (int q = 0; q < 50; ++q) {
      Vector query{rng.Uniform(-10, 210), rng.Uniform(-10, 210),
                   rng.Uniform(-10, 210)};
      std::vector<std::size_t> actual = tree->KNearest(query, 4);
      // Brute-force distances.
      std::vector<double> all;
      for (const Vector& p : points) {
        all.push_back(linalg::SquaredDistance(p, query));
      }
      std::sort(all.begin(), all.end());
      ASSERT_EQ(actual.size(), 4u);
      for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_NEAR(linalg::SquaredDistance(points[actual[i]], query),
                    all[i], 1e-9);
      }
    }
  }
}

}  // namespace
}  // namespace condensa
