#include "core/anonymizer.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "linalg/eigen.h"
#include "linalg/stats.h"

namespace condensa::core {
namespace {

using linalg::Matrix;
using linalg::Vector;

TEST(AnonymizerTest, RejectsEmptyGroup) {
  Anonymizer anonymizer;
  Rng rng(1);
  EXPECT_FALSE(
      anonymizer.GenerateFromGroup(GroupStatistics(2), 5, rng).ok());
}

TEST(AnonymizerTest, SingletonGroupReproducesItsRecordExactly) {
  // The k = 1 anchor: a 1-record group regenerates the original record.
  GroupStatistics group(2);
  group.Add(Vector{3.5, -1.25});
  Anonymizer anonymizer;
  Rng rng(2);
  auto points = anonymizer.GenerateFromGroup(group, 3, rng);
  ASSERT_TRUE(points.ok());
  ASSERT_EQ(points->size(), 3u);
  for (const Vector& p : *points) {
    EXPECT_TRUE(linalg::ApproxEqual(p, Vector{3.5, -1.25}, 1e-12));
  }
}

TEST(AnonymizerTest, GeneratedCountMatchesRequest) {
  GroupStatistics group(1);
  Rng rng(3);
  for (int i = 0; i < 10; ++i) group.Add(Vector{rng.Gaussian()});
  Anonymizer anonymizer;
  auto points = anonymizer.GenerateFromGroup(group, 25, rng);
  ASSERT_TRUE(points.ok());
  EXPECT_EQ(points->size(), 25u);
}

TEST(AnonymizerTest, SamplesPreserveGroupMoments) {
  // Large sample from one group: mean and covariance of the anonymized
  // points converge to the group's stored moments.
  Rng rng(4);
  GroupStatistics group(3);
  for (int i = 0; i < 200; ++i) {
    double x = rng.Gaussian(0.0, 2.0);
    group.Add(Vector{x, 0.5 * x + rng.Gaussian(0.0, 0.5), rng.Gaussian()});
  }
  Anonymizer anonymizer;
  auto points = anonymizer.GenerateFromGroup(group, 60000, rng);
  ASSERT_TRUE(points.ok());

  Vector sample_mean = linalg::MeanVector(*points);
  Matrix sample_cov = linalg::CovarianceMatrix(*points);
  Matrix group_cov = group.Covariance();
  double scale = std::max(1.0, group_cov.MaxAbs());
  EXPECT_TRUE(linalg::ApproxEqual(sample_mean, group.Centroid(),
                                  0.05 * scale));
  EXPECT_TRUE(linalg::ApproxEqual(sample_cov, group_cov, 0.1 * scale));
}

TEST(AnonymizerTest, SamplesAreUniformAlongEigenvectors) {
  // Project anonymized points of a group onto its leading eigenvector; the
  // projections must be bounded by ±sqrt(3 λ1) (uniform support) and look
  // flat, not Gaussian: the kurtosis of a uniform is 1.8, of a normal 3.
  Rng rng(5);
  GroupStatistics group(2);
  for (int i = 0; i < 100; ++i) {
    group.Add(Vector{rng.Gaussian(0.0, 3.0), rng.Gaussian(0.0, 0.3)});
  }
  auto eigen = linalg::CovarianceEigenDecomposition(group.Covariance());
  ASSERT_TRUE(eigen.ok());
  double lambda1 = eigen->eigenvalues[0];
  Vector e1 = eigen->Eigenvector(0);
  Vector centroid = group.Centroid();

  Anonymizer anonymizer;
  auto points = anonymizer.GenerateFromGroup(group, 20000, rng);
  ASSERT_TRUE(points.ok());

  double bound = std::sqrt(3.0 * lambda1) + 1e-9;
  double m2 = 0.0, m4 = 0.0;
  for (const Vector& p : *points) {
    double u = linalg::Dot(p - centroid, e1);
    EXPECT_LE(std::abs(u), bound);
    m2 += u * u;
    m4 += u * u * u * u;
  }
  m2 /= static_cast<double>(points->size());
  m4 /= static_cast<double>(points->size());
  double kurtosis = m4 / (m2 * m2);
  EXPECT_NEAR(kurtosis, 1.8, 0.1);  // uniform, not Gaussian
}

TEST(AnonymizerTest, GenerateEmitsOneRecordPerCondensedRecord) {
  Rng rng(6);
  CondensedGroupSet set(2, 5);
  for (int g = 0; g < 3; ++g) {
    GroupStatistics group(2);
    for (int i = 0; i < 5 + g; ++i) {
      group.Add(Vector{rng.Gaussian(), rng.Gaussian()});
    }
    set.AddGroup(std::move(group));
  }
  Anonymizer anonymizer;
  auto points = anonymizer.Generate(set, rng);
  ASSERT_TRUE(points.ok());
  EXPECT_EQ(points->size(), 5u + 6u + 7u);
}

TEST(AnonymizerTest, RecordsPerGroupOverrideApplies) {
  Rng rng(7);
  CondensedGroupSet set(1, 2);
  GroupStatistics group(1);
  group.Add(Vector{0.0});
  group.Add(Vector{1.0});
  set.AddGroup(std::move(group));
  Anonymizer anonymizer({.records_per_group = 10});
  auto points = anonymizer.Generate(set, rng);
  ASSERT_TRUE(points.ok());
  EXPECT_EQ(points->size(), 10u);
}

TEST(AnonymizerTest, DeterministicGivenSeed) {
  Rng data_rng(8);
  GroupStatistics group(2);
  for (int i = 0; i < 10; ++i) {
    group.Add(Vector{data_rng.Gaussian(), data_rng.Gaussian()});
  }
  Anonymizer anonymizer;
  Rng rng_a(9), rng_b(9);
  auto a = anonymizer.GenerateFromGroup(group, 20, rng_a);
  auto b = anonymizer.GenerateFromGroup(group, 20, rng_b);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (std::size_t i = 0; i < a->size(); ++i) {
    EXPECT_TRUE(linalg::ApproxEqual((*a)[i], (*b)[i], 0.0));
  }
}

TEST(AnonymizerTest, GaussianSamplingPreservesMomentsToo) {
  Rng rng(11);
  GroupStatistics group(2);
  for (int i = 0; i < 100; ++i) {
    double x = rng.Gaussian(0.0, 2.0);
    group.Add(Vector{x, 0.7 * x + rng.Gaussian(0.0, 0.4)});
  }
  Anonymizer anonymizer(
      {.distribution = SamplingDistribution::kGaussian});
  auto points = anonymizer.GenerateFromGroup(group, 50000, rng);
  ASSERT_TRUE(points.ok());
  Matrix sample_cov = linalg::CovarianceMatrix(*points);
  Matrix group_cov = group.Covariance();
  double scale = std::max(1.0, group_cov.MaxAbs());
  EXPECT_TRUE(linalg::ApproxEqual(sample_cov, group_cov, 0.1 * scale));
}

TEST(AnonymizerTest, GaussianSamplingIsNotBounded) {
  // The uniform sampler is bounded by ±sqrt(3 λ1); the Gaussian one
  // occasionally exceeds that, which distinguishes the two modes.
  Rng rng(12);
  GroupStatistics group(1);
  for (int i = 0; i < 100; ++i) {
    group.Add(Vector{rng.Gaussian(0.0, 1.0)});
  }
  auto eigen = linalg::CovarianceEigenDecomposition(group.Covariance());
  ASSERT_TRUE(eigen.ok());
  double uniform_bound = std::sqrt(3.0 * eigen->eigenvalues[0]);
  double centroid = group.Centroid()[0];

  Anonymizer gaussian({.distribution = SamplingDistribution::kGaussian});
  auto points = gaussian.GenerateFromGroup(group, 20000, rng);
  ASSERT_TRUE(points.ok());
  bool exceeded = false;
  for (const Vector& p : *points) {
    if (std::abs(p[0] - centroid) > uniform_bound) {
      exceeded = true;
      break;
    }
  }
  EXPECT_TRUE(exceeded);
}

TEST(AnonymizerTest, DuplicatePointGroupRegeneratesFinitely) {
  // All-identical records give a singular covariance whose Jacobi
  // eigenvalues can come out as tiny negatives (floating-point noise).
  // Regression test: the sampler must clamp them, not sqrt() them into
  // NaNs.
  GroupStatistics group(3);
  for (int i = 0; i < 12; ++i) {
    group.Add(Vector{1e6 + 0.1, -3.0, 42.0});
  }
  Rng rng(21);
  for (SamplingDistribution distribution :
       {SamplingDistribution::kUniform, SamplingDistribution::kGaussian}) {
    Anonymizer anonymizer({.distribution = distribution});
    auto points = anonymizer.GenerateFromGroup(group, 50, rng);
    ASSERT_TRUE(points.ok());
    for (const Vector& p : *points) {
      for (std::size_t j = 0; j < 3; ++j) {
        ASSERT_TRUE(std::isfinite(p[j]));
      }
      // Near-zero covariance: the regenerated records sit at the centroid
      // up to cancellation noise in Sc - n c c^T, which at 1e6 magnitude
      // leaves eigenvalues of order 1e-3 (spread ~sqrt(3e-3)).
      EXPECT_NEAR(p[0], 1e6 + 0.1, 1.0);
      EXPECT_NEAR(p[1], -3.0, 1e-3);
      EXPECT_NEAR(p[2], 42.0, 1e-3);
    }
  }
}

TEST(AnonymizerTest, ConstantAttributeGroupRegeneratesFinitely) {
  // One attribute constant, the others spread out: the covariance has an
  // exactly-zero row/column and the solver may return -1e-17-style
  // eigenvalues for it.
  Rng rng(22);
  GroupStatistics group(3);
  for (int i = 0; i < 30; ++i) {
    double x = rng.Gaussian(0.0, 3.0);
    group.Add(Vector{x, 123.456, 2.0 * x + rng.Gaussian(0.0, 0.1)});
  }
  Anonymizer anonymizer;
  auto points = anonymizer.GenerateFromGroup(group, 200, rng);
  ASSERT_TRUE(points.ok());
  for (const Vector& p : *points) {
    for (std::size_t j = 0; j < 3; ++j) {
      ASSERT_TRUE(std::isfinite(p[j]));
    }
    EXPECT_NEAR(p[1], 123.456, 1e-5);
  }
}

TEST(AnonymizerTest, DegenerateDirectionStaysCollapsed) {
  // A group that is constant in dimension 1 must regenerate records that
  // are constant in dimension 1 (zero eigenvalue -> zero spread).
  Rng rng(10);
  GroupStatistics group(2);
  for (int i = 0; i < 20; ++i) {
    group.Add(Vector{rng.Gaussian(), 7.0});
  }
  Anonymizer anonymizer;
  auto points = anonymizer.GenerateFromGroup(group, 100, rng);
  ASSERT_TRUE(points.ok());
  for (const Vector& p : *points) {
    EXPECT_NEAR(p[1], 7.0, 1e-6);
  }
}

TEST(AnonymizerTest, GenerateReservesExactlyTheOutputSize) {
  // Regression test: Generate used to reserve TotalRecords() even when
  // records_per_group overrides the per-group count, over- (or under-)
  // allocating the output. The reserve must match what is produced in
  // both modes.
  Rng rng(23);
  CondensedGroupSet set(2, 4);
  for (int g = 0; g < 4; ++g) {
    GroupStatistics group(2);
    for (int i = 0; i < 50; ++i) {
      group.Add(Vector{rng.Gaussian(), rng.Gaussian()});
    }
    set.AddGroup(std::move(group));
  }

  Anonymizer per_record;  // default: one output per condensed record
  auto a = per_record.Generate(set, rng);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->size(), 200u);
  EXPECT_EQ(a->capacity(), 200u);

  Anonymizer overridden({.records_per_group = 3});
  auto b = overridden.Generate(set, rng);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->size(), 12u);
  // The fix: 12 slots reserved, not TotalRecords() = 200.
  EXPECT_EQ(b->capacity(), 12u);
}

TEST(AnonymizerTest, GenerateIsThreadCountInvariant) {
  // One Rng substream per group, split on the calling thread in group
  // order: the sampled records must be bit-identical whether the groups
  // are generated serially or on a worker pool.
  Rng data_rng(24);
  CondensedGroupSet set(3, 5);
  for (int g = 0; g < 9; ++g) {
    GroupStatistics group(3);
    for (int i = 0; i < 5 + g; ++i) {
      group.Add(Vector{data_rng.Gaussian(), data_rng.Gaussian(),
                       data_rng.Gaussian()});
    }
    set.AddGroup(std::move(group));
  }
  Anonymizer serial({.num_threads = 1});
  Anonymizer pooled({.num_threads = 4});
  Rng rng_a(25), rng_b(25);
  auto a = serial.Generate(set, rng_a);
  auto b = pooled.Generate(set, rng_b);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (std::size_t i = 0; i < a->size(); ++i) {
    EXPECT_TRUE(linalg::ApproxEqual((*a)[i], (*b)[i], 0.0)) << "record " << i;
  }
  // The caller's Rng must also land in the same state (same number of
  // splits drawn), so downstream draws stay seed-deterministic.
  EXPECT_EQ(rng_a.NextUint64(), rng_b.NextUint64());
}

}  // namespace
}  // namespace condensa::core
