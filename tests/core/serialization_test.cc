#include "core/serialization.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "common/random.h"
#include "common/string_util.h"
#include "core/engine.h"
#include "data/dataset.h"

namespace condensa::core {
namespace {

using linalg::Vector;

CondensedGroupSet MakeSampleSet(Rng& rng, std::size_t dim,
                                std::size_t groups, std::size_t per_group) {
  CondensedGroupSet set(dim, per_group);
  for (std::size_t g = 0; g < groups; ++g) {
    GroupStatistics stats(dim);
    for (std::size_t i = 0; i < per_group; ++i) {
      Vector p(dim);
      for (std::size_t j = 0; j < dim; ++j) {
        p[j] = rng.Gaussian(static_cast<double>(g), 1.0);
      }
      stats.Add(p);
    }
    set.AddGroup(std::move(stats));
  }
  return set;
}

TEST(SerializationTest, RoundTripPreservesEverything) {
  Rng rng(1);
  CondensedGroupSet original = MakeSampleSet(rng, 3, 5, 7);
  std::string text = SerializeGroupSet(original);
  auto loaded = DeserializeGroupSet(text);
  ASSERT_TRUE(loaded.ok());

  EXPECT_EQ(loaded->dim(), original.dim());
  EXPECT_EQ(loaded->indistinguishability_level(),
            original.indistinguishability_level());
  ASSERT_EQ(loaded->num_groups(), original.num_groups());
  for (std::size_t g = 0; g < original.num_groups(); ++g) {
    EXPECT_EQ(loaded->group(g).count(), original.group(g).count());
    EXPECT_TRUE(linalg::ApproxEqual(loaded->group(g).first_order(),
                                    original.group(g).first_order(), 1e-12));
    EXPECT_TRUE(linalg::ApproxEqual(loaded->group(g).second_order(),
                                    original.group(g).second_order(),
                                    1e-9));
  }
}

TEST(SerializationTest, RoundTripPreservesDerivedMoments) {
  Rng rng(2);
  CondensedGroupSet original = MakeSampleSet(rng, 4, 3, 12);
  auto loaded = DeserializeGroupSet(SerializeGroupSet(original));
  ASSERT_TRUE(loaded.ok());
  for (std::size_t g = 0; g < original.num_groups(); ++g) {
    EXPECT_TRUE(linalg::ApproxEqual(loaded->group(g).Centroid(),
                                    original.group(g).Centroid(), 1e-12));
    EXPECT_TRUE(linalg::ApproxEqual(loaded->group(g).Covariance(),
                                    original.group(g).Covariance(), 1e-9));
  }
}

TEST(SerializationTest, EmptySetRoundTrips) {
  CondensedGroupSet empty(2, 10);
  auto loaded = DeserializeGroupSet(SerializeGroupSet(empty));
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_groups(), 0u);
  EXPECT_EQ(loaded->dim(), 2u);
  EXPECT_EQ(loaded->indistinguishability_level(), 10u);
}

TEST(SerializationTest, RejectsWrongMagic) {
  auto result = DeserializeGroupSet("not a group file\n");
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(IsInvalidArgument(result.status()));
}

TEST(SerializationTest, RejectsTruncatedInput) {
  Rng rng(3);
  CondensedGroupSet original = MakeSampleSet(rng, 3, 2, 5);
  std::string text = SerializeGroupSet(original);
  // Chop the last 30 characters.
  std::string truncated = text.substr(0, text.size() - 30);
  auto result = DeserializeGroupSet(truncated);
  EXPECT_FALSE(result.ok());
}

TEST(SerializationTest, RejectsTrailingGarbage) {
  Rng rng(4);
  CondensedGroupSet original = MakeSampleSet(rng, 2, 1, 4);
  std::string text = SerializeGroupSet(original) + "extra tokens here\n";
  EXPECT_FALSE(DeserializeGroupSet(text).ok());
}

TEST(SerializationTest, RejectsCorruptHeader) {
  std::string text =
      "condensa-groups v1\ndim 0 k 3 groups 0\n";  // zero dim
  EXPECT_FALSE(DeserializeGroupSet(text).ok());
  std::string bad_counts = "condensa-groups v1\ndim x k 3 groups 0\n";
  EXPECT_FALSE(DeserializeGroupSet(bad_counts).ok());
}

TEST(SerializationTest, BackendStampRoundTrips) {
  Rng rng(8);
  CondensedGroupSet original = MakeSampleSet(rng, 3, 2, 5);
  original.SetBackend("mdav", 2);
  const std::string text = SerializeGroupSet(original);
  EXPECT_NE(text.find("backend mdav 2\n"), std::string::npos);
  auto loaded = DeserializeGroupSet(text);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->backend_id(), "mdav");
  EXPECT_EQ(loaded->backend_version(), 2);
  EXPECT_EQ(loaded->num_groups(), 2u);
}

TEST(SerializationTest, DefaultBackendWritesNoAnnotation) {
  Rng rng(9);
  const std::string text = SerializeGroupSet(MakeSampleSet(rng, 3, 2, 5));
  // Byte-identity with the pre-backend format: no annotation line.
  EXPECT_EQ(text.find("backend"), std::string::npos);
  auto loaded = DeserializeGroupSet(text);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->backend_id(), CondensedGroupSet::kDefaultBackendId);
  EXPECT_EQ(loaded->backend_version(), 1);
}

TEST(SerializationTest, FileRoundTrip) {
  Rng rng(5);
  CondensedGroupSet original = MakeSampleSet(rng, 3, 4, 6);
  const std::string path =
      ::testing::TempDir() + "/condensa_groups_test.txt";
  ASSERT_TRUE(SaveGroupSet(original, path).ok());
  auto loaded = LoadGroupSet(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_groups(), 4u);
  EXPECT_EQ(loaded->TotalRecords(), 24u);
  std::remove(path.c_str());
}

TEST(SerializationTest, LoadMissingFileIsNotFound) {
  auto result = LoadGroupSet("/nonexistent/groups.txt");
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(IsNotFound(result.status()));
}

TEST(PoolsSerializationTest, ClassificationRoundTrip) {
  Rng data_rng(7);
  data::Dataset dataset(2, data::TaskType::kClassification);
  for (int i = 0; i < 60; ++i) {
    dataset.Add(linalg::Vector{data_rng.Gaussian(), data_rng.Gaussian()},
                i % 3);
  }
  Rng rng(8);
  CondensationEngine engine({.group_size = 6});
  auto pools = engine.Condense(dataset, rng);
  ASSERT_TRUE(pools.ok());

  auto reloaded = DeserializePools(SerializePools(*pools));
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(reloaded->task, data::TaskType::kClassification);
  EXPECT_EQ(reloaded->feature_dim, 2u);
  ASSERT_EQ(reloaded->pools.size(), 3u);
  for (std::size_t p = 0; p < 3; ++p) {
    EXPECT_EQ(reloaded->pools[p].label, pools->pools[p].label);
    EXPECT_EQ(reloaded->pools[p].splits, pools->pools[p].splits);
    ASSERT_EQ(reloaded->pools[p].groups.num_groups(),
              pools->pools[p].groups.num_groups());
    for (std::size_t g = 0; g < pools->pools[p].groups.num_groups(); ++g) {
      EXPECT_TRUE(linalg::ApproxEqual(
          reloaded->pools[p].groups.group(g).first_order(),
          pools->pools[p].groups.group(g).first_order(), 1e-12));
    }
  }
}

TEST(PoolsSerializationTest, RegressionRoundTripAndRelease) {
  Rng data_rng(9);
  data::Dataset dataset(2, data::TaskType::kRegression);
  for (int i = 0; i < 80; ++i) {
    double x = data_rng.Gaussian();
    dataset.Add(linalg::Vector{x, data_rng.Gaussian()}, 3.0 * x + 1.0);
  }
  Rng rng(10);
  CondensationEngine engine({.group_size = 10});
  auto pools = engine.Condense(dataset, rng);
  ASSERT_TRUE(pools.ok());
  EXPECT_EQ(pools->CondensedDim(), 3u);  // features + target

  auto reloaded = DeserializePools(SerializePools(*pools));
  ASSERT_TRUE(reloaded.ok());
  auto release = GenerateRelease(*reloaded, rng);
  ASSERT_TRUE(release.ok());
  EXPECT_EQ(release->anonymized.size(), 80u);
  EXPECT_EQ(release->anonymized.task(), data::TaskType::kRegression);
  EXPECT_EQ(release->anonymized.dim(), 2u);
}

TEST(PoolsSerializationTest, RejectsCorruptInput) {
  EXPECT_FALSE(DeserializePools("garbage\n").ok());
  EXPECT_FALSE(
      DeserializePools("condensa-pools v1\ntask 9 feature_dim 2 pools 0\n")
          .ok());
  EXPECT_FALSE(
      DeserializePools("condensa-pools v1\ntask 1 feature_dim 0 pools 0\n")
          .ok());
  // Declares one pool but provides none.
  EXPECT_FALSE(
      DeserializePools("condensa-pools v1\ntask 0 feature_dim 2 pools 1\n")
          .ok());
}

TEST(PoolsSerializationTest, EmptyPoolListRoundTrips) {
  CondensedPools pools;
  pools.task = data::TaskType::kUnlabeled;
  pools.feature_dim = 4;
  auto reloaded = DeserializePools(SerializePools(pools));
  ASSERT_TRUE(reloaded.ok());
  EXPECT_TRUE(reloaded->pools.empty());
  EXPECT_EQ(reloaded->feature_dim, 4u);
}

TEST(PoolsSerializationTest, ReleaseFromReloadedPoolsIsBitIdentical) {
  // Same seed + same statistics => same release, whether the pools came
  // from memory or from disk. (The 17-significant-digit serialization is
  // double-exact, so nothing drifts.)
  Rng data_rng(13);
  data::Dataset dataset(3, data::TaskType::kClassification);
  for (int i = 0; i < 90; ++i) {
    dataset.Add(linalg::Vector{data_rng.Gaussian(), data_rng.Gaussian(),
                               data_rng.Gaussian()},
                i % 3);
  }
  Rng rng(14);
  CondensationEngine engine({.group_size = 9});
  auto pools = engine.Condense(dataset, rng);
  ASSERT_TRUE(pools.ok());
  auto reloaded = DeserializePools(SerializePools(*pools));
  ASSERT_TRUE(reloaded.ok());

  Rng rng_a(99), rng_b(99);
  auto from_memory = GenerateRelease(*pools, rng_a);
  auto from_disk = GenerateRelease(*reloaded, rng_b);
  ASSERT_TRUE(from_memory.ok());
  ASSERT_TRUE(from_disk.ok());
  ASSERT_EQ(from_memory->anonymized.size(), from_disk->anonymized.size());
  for (std::size_t i = 0; i < from_memory->anonymized.size(); ++i) {
    EXPECT_TRUE(linalg::ApproxEqual(from_memory->anonymized.record(i),
                                    from_disk->anonymized.record(i), 0.0));
    EXPECT_EQ(from_memory->anonymized.label(i),
              from_disk->anonymized.label(i));
  }
}

TEST(PoolsSerializationTest, FileRoundTrip) {
  Rng data_rng(11);
  data::Dataset dataset(2);
  for (int i = 0; i < 30; ++i) {
    dataset.Add(linalg::Vector{data_rng.Gaussian(), data_rng.Gaussian()});
  }
  Rng rng(12);
  CondensationEngine engine({.group_size = 5});
  auto pools = engine.Condense(dataset, rng);
  ASSERT_TRUE(pools.ok());
  const std::string path = ::testing::TempDir() + "/condensa_pools_test.txt";
  ASSERT_TRUE(SavePools(*pools, path).ok());
  auto reloaded = LoadPools(path);
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(reloaded->pools.size(), 1u);
  EXPECT_EQ(reloaded->pools[0].groups.TotalRecords(), 30u);
  std::remove(path.c_str());
}

TEST(PoolsSerializationTest, BackendStampRoundTripsThroughPools) {
  Rng rng(12);
  CondensedPools pools;
  pools.task = data::TaskType::kClassification;
  pools.feature_dim = 3;
  CondensedGroupSet a = MakeSampleSet(rng, 3, 2, 5);
  a.SetBackend("mdav", 1);
  CondensedGroupSet b = MakeSampleSet(rng, 3, 2, 5);
  b.SetBackend("mdav", 1);
  pools.pools.push_back({0, 0, std::move(a)});
  pools.pools.push_back({1, 0, std::move(b)});
  auto reloaded = DeserializePools(SerializePools(pools));
  ASSERT_TRUE(reloaded.ok());
  for (const auto& pool : reloaded->pools) {
    EXPECT_EQ(pool.groups.backend_id(), "mdav");
    EXPECT_EQ(pool.groups.backend_version(), 1);
  }
}

TEST(PoolsSerializationTest, RejectsPoolsFromMixedBackends) {
  Rng rng(13);
  CondensedPools pools;
  pools.task = data::TaskType::kClassification;
  pools.feature_dim = 3;
  CondensedGroupSet a = MakeSampleSet(rng, 3, 2, 5);
  a.SetBackend("mdav", 1);
  pools.pools.push_back({0, 0, std::move(a)});
  pools.pools.push_back({1, 0, MakeSampleSet(rng, 3, 2, 5)});
  auto reloaded = DeserializePools(SerializePools(pools));
  ASSERT_FALSE(reloaded.ok());
  EXPECT_NE(std::string(reloaded.status().message()).find("backend"),
            std::string::npos);
}

TEST(SerializationTest, FormatIsHumanInspectable) {
  Rng rng(6);
  CondensedGroupSet set = MakeSampleSet(rng, 2, 1, 3);
  std::string text = SerializeGroupSet(set);
  EXPECT_TRUE(StartsWith(text, "condensa-groups v1\n"));
  EXPECT_NE(text.find("dim 2 k 3 groups 1"), std::string::npos);
  EXPECT_NE(text.find("group n 3"), std::string::npos);
  EXPECT_NE(text.find("\nfs "), std::string::npos);
  EXPECT_NE(text.find("\nsc "), std::string::npos);
}

}  // namespace
}  // namespace condensa::core
