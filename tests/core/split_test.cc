#include "core/split.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <functional>

#include "common/random.h"
#include "linalg/eigen.h"

namespace condensa::core {
namespace {

using linalg::Matrix;
using linalg::Vector;

// A 2k-sized aggregate with a dominant x-axis spread.
GroupStatistics MakeElongatedGroup() {
  GroupStatistics stats(2);
  Rng rng(17);
  for (int i = 0; i < 40; ++i) {
    stats.Add(Vector{rng.Uniform(-10.0, 10.0), rng.Gaussian(0.0, 0.5)});
  }
  return stats;
}

TEST(SplitTest, RejectsTooSmallGroups) {
  GroupStatistics one(2);
  one.Add(Vector{0.0, 0.0});
  EXPECT_FALSE(SplitGroupStatistics(one).ok());
}

TEST(SplitTest, HalvesTheRecordCount) {
  GroupStatistics group = MakeElongatedGroup();
  auto split = SplitGroupStatistics(group);
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(split->lower.count(), 20u);
  EXPECT_EQ(split->upper.count(), 20u);
}

TEST(SplitTest, OddCountSplitsIntoFloorAndCeil) {
  GroupStatistics group(1);
  Rng rng(19);
  for (int i = 0; i < 7; ++i) {
    group.Add(Vector{rng.Gaussian()});
  }
  auto split = SplitGroupStatistics(group);
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(split->lower.count(), 3u);
  EXPECT_EQ(split->upper.count(), 4u);
}

TEST(SplitTest, OddCountSplitConservesFirstMoments) {
  // With unequal half sizes the children's displacements are scaled
  // inversely to their counts, so the summed first-order moments match
  // the parent exactly — symmetric offsets would drift by one offset
  // per odd split, compounding under merge-then-split churn.
  GroupStatistics group(2);
  Rng rng(23);
  for (int i = 0; i < 9; ++i) {
    group.Add(Vector{rng.Uniform(-10.0, 10.0), rng.Gaussian(0.0, 0.5)});
  }
  auto split = SplitGroupStatistics(group);
  ASSERT_TRUE(split.ok());
  Vector sum = split->lower.first_order() + split->upper.first_order();
  EXPECT_TRUE(linalg::ApproxEqual(sum, group.first_order(), 1e-9));
  // The halves still sit 2·offset apart along e1.
  auto eigen = linalg::CovarianceEigenDecomposition(group.Covariance());
  ASSERT_TRUE(eigen.ok());
  const double offset = std::sqrt(12.0 * eigen->eigenvalues[0]) / 4.0;
  Vector gap = split->upper.Centroid() - split->lower.Centroid();
  EXPECT_NEAR(std::sqrt(linalg::Dot(gap, gap)), 2.0 * offset, 1e-9);
}

TEST(SplitTest, CentroidsSeparateAlongLargestEigenvector) {
  GroupStatistics group = MakeElongatedGroup();
  auto eigen = linalg::CovarianceEigenDecomposition(group.Covariance());
  ASSERT_TRUE(eigen.ok());
  double lambda1 = eigen->eigenvalues[0];
  Vector e1 = eigen->Eigenvector(0);
  Vector centroid = group.Centroid();

  auto split = SplitGroupStatistics(group);
  ASSERT_TRUE(split.ok());

  // Expected offset: sqrt(12 λ1) / 4 along ±e1.
  double offset = std::sqrt(12.0 * lambda1) / 4.0;
  Vector expected_lower = centroid - offset * e1;
  Vector expected_upper = centroid + offset * e1;
  EXPECT_TRUE(
      linalg::ApproxEqual(split->lower.Centroid(), expected_lower, 1e-9));
  EXPECT_TRUE(
      linalg::ApproxEqual(split->upper.Centroid(), expected_upper, 1e-9));
}

TEST(SplitTest, MidpointOfChildCentroidsIsParentCentroid) {
  GroupStatistics group = MakeElongatedGroup();
  auto split = SplitGroupStatistics(group);
  ASSERT_TRUE(split.ok());
  Vector midpoint =
      (split->lower.Centroid() + split->upper.Centroid()) * 0.5;
  EXPECT_TRUE(linalg::ApproxEqual(midpoint, group.Centroid(), 1e-9));
}

TEST(SplitTest, LeadingEigenvalueDividedByFourOthersUnchanged) {
  GroupStatistics group = MakeElongatedGroup();
  auto parent_eigen =
      linalg::CovarianceEigenDecomposition(group.Covariance());
  ASSERT_TRUE(parent_eigen.ok());

  auto split = SplitGroupStatistics(group);
  ASSERT_TRUE(split.ok());
  auto child_eigen =
      linalg::CovarianceEigenDecomposition(split->lower.Covariance());
  ASSERT_TRUE(child_eigen.ok());

  // Parent λ1 dominates here, so the child's spectrum is the parent's with
  // λ1/4, re-sorted. Parent λ1/4 may fall below parent λ2.
  std::vector<double> expected;
  expected.push_back(parent_eigen->eigenvalues[0] / 4.0);
  for (std::size_t i = 1; i < parent_eigen->eigenvalues.dim(); ++i) {
    expected.push_back(parent_eigen->eigenvalues[i]);
  }
  std::sort(expected.begin(), expected.end(), std::greater<>());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(child_eigen->eigenvalues[i], expected[i], 1e-8);
  }
}

TEST(SplitTest, ChildrenShareIdenticalCovariance) {
  GroupStatistics group = MakeElongatedGroup();
  auto split = SplitGroupStatistics(group);
  ASSERT_TRUE(split.ok());
  EXPECT_TRUE(linalg::ApproxEqual(split->lower.Covariance(),
                                  split->upper.Covariance(), 1e-8));
}

TEST(SplitTest, MergedChildrenPreserveParentMeanAndTotalVariance) {
  // Merging the two child aggregates must reproduce the parent's centroid
  // exactly, and the parent's variance along e1 under the uniform model:
  // Var = E[Var_child] + Var of child means = λ1/4 + (sqrt(12λ1)/4)² =
  // λ1/4 + 3λ1/4 = λ1. So the merged aggregate equals the parent's moments.
  GroupStatistics group = MakeElongatedGroup();
  auto split = SplitGroupStatistics(group);
  ASSERT_TRUE(split.ok());

  GroupStatistics merged = split->lower;
  merged.Merge(split->upper);
  EXPECT_EQ(merged.count(), group.count());
  EXPECT_TRUE(
      linalg::ApproxEqual(merged.Centroid(), group.Centroid(), 1e-9));
  EXPECT_TRUE(
      linalg::ApproxEqual(merged.Covariance(), group.Covariance(), 1e-6));
}

TEST(SplitTest, ZeroCovarianceGroupSplitsIntoCoincidentHalves) {
  GroupStatistics group(2);
  for (int i = 0; i < 10; ++i) {
    group.Add(Vector{3.0, 4.0});
  }
  auto split = SplitGroupStatistics(group);
  ASSERT_TRUE(split.ok());
  EXPECT_TRUE(
      linalg::ApproxEqual(split->lower.Centroid(), Vector{3.0, 4.0}, 1e-6));
  EXPECT_TRUE(
      linalg::ApproxEqual(split->upper.Centroid(), Vector{3.0, 4.0}, 1e-6));
  EXPECT_EQ(split->lower.count() + split->upper.count(), 10u);
}

TEST(SplitTest, TwoRecordGroupSplits) {
  GroupStatistics group(2);
  group.Add(Vector{0.0, 0.0});
  group.Add(Vector{4.0, 0.0});
  auto split = SplitGroupStatistics(group);
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(split->lower.count(), 1u);
  EXPECT_EQ(split->upper.count(), 1u);
  // Split along x (the only spread direction): children at 2 ± sqrt(12·4)/4.
  double offset = std::sqrt(12.0 * 4.0) / 4.0;
  EXPECT_NEAR(split->lower.Centroid()[0], 2.0 - offset, 1e-9);
  EXPECT_NEAR(split->upper.Centroid()[0], 2.0 + offset, 1e-9);
}

TEST(SplitRuleTest, VerbatimRuleShrinksCentroidsByK) {
  // The paper's literal Fig. 3: Fs gets a centroid-scale value, so the
  // reconstructed centroid is the intended one divided by k — while the
  // covariance survives intact. This is the defect ablation A10 measures.
  GroupStatistics group(2);
  Rng rng(23);
  for (int i = 0; i < 40; ++i) {
    group.Add(Vector{rng.Gaussian(10.0, 2.0), rng.Gaussian(-6.0, 0.5)});
  }
  auto consistent =
      SplitGroupStatistics(group, SplitRule::kMomentConsistent);
  auto verbatim = SplitGroupStatistics(group, SplitRule::kPaperVerbatim);
  ASSERT_TRUE(consistent.ok());
  ASSERT_TRUE(verbatim.ok());

  // Verbatim centroid = consistent centroid / k (k = 20 here).
  Vector expected = consistent->lower.Centroid() / 20.0;
  EXPECT_TRUE(
      linalg::ApproxEqual(verbatim->lower.Centroid(), expected, 1e-9));
  // Covariances agree (the Sc mixing cancels in Observation 2).
  EXPECT_TRUE(linalg::ApproxEqual(verbatim->lower.Covariance(),
                                  consistent->lower.Covariance(), 1e-6));
  // Counts match the paper: both halves get k records.
  EXPECT_EQ(verbatim->lower.count(), 20u);
  EXPECT_EQ(verbatim->upper.count(), 20u);
}

TEST(SplitRuleTest, ConsistentRuleIsTheDefault) {
  GroupStatistics group(1);
  group.Add(Vector{0.0});
  group.Add(Vector{4.0});
  auto implicit_rule = SplitGroupStatistics(group);
  auto explicit_rule =
      SplitGroupStatistics(group, SplitRule::kMomentConsistent);
  ASSERT_TRUE(implicit_rule.ok());
  ASSERT_TRUE(explicit_rule.ok());
  EXPECT_TRUE(linalg::ApproxEqual(implicit_rule->lower.first_order(),
                                  explicit_rule->lower.first_order(), 0.0));
}

// Property sweep over dimensions: split invariants hold in any dimension.
class SplitPropertyTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SplitPropertyTest, MergeRecoversParent) {
  const std::size_t d = GetParam();
  Rng rng(300 + d);
  GroupStatistics group(d);
  for (int i = 0; i < 30; ++i) {
    Vector p(d);
    for (std::size_t j = 0; j < d; ++j) {
      p[j] = rng.Gaussian(0.0, 1.0 + static_cast<double>(j));
    }
    group.Add(p);
  }
  auto split = SplitGroupStatistics(group);
  ASSERT_TRUE(split.ok());
  GroupStatistics merged = split->lower;
  merged.Merge(split->upper);
  double scale = std::max(1.0, group.Covariance().MaxAbs());
  EXPECT_TRUE(linalg::ApproxEqual(merged.Centroid(), group.Centroid(),
                                  1e-9 * scale));
  EXPECT_TRUE(linalg::ApproxEqual(merged.Covariance(), group.Covariance(),
                                  1e-6 * scale));
}

INSTANTIATE_TEST_SUITE_P(Dimensions, SplitPropertyTest,
                         ::testing::Values(1, 2, 3, 7, 15, 34));

}  // namespace
}  // namespace condensa::core
