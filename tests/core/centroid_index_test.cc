#include "core/centroid_index.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "core/condensed_group_set.h"
#include "core/split.h"
#include "linalg/vector.h"

namespace condensa::core {
namespace {

using linalg::Vector;

// A set of `n` single-record groups at Gaussian positions.
CondensedGroupSet RandomGroups(std::size_t n, std::size_t dim, Rng& rng) {
  CondensedGroupSet set(dim, 1);
  for (std::size_t g = 0; g < n; ++g) {
    GroupStatistics group(dim);
    Vector p(dim);
    for (std::size_t j = 0; j < dim; ++j) p[j] = rng.Gaussian();
    group.Add(p);
    set.AddGroup(std::move(group));
  }
  return set;
}

Vector RandomPoint(std::size_t dim, Rng& rng) {
  Vector p(dim);
  for (std::size_t j = 0; j < dim; ++j) p[j] = rng.Gaussian();
  return p;
}

TEST(CentroidIndexTest, MatchesScanOnSmallSets) {
  // Below kMinGroupsForIndex the index is a pass-through scan; answers
  // must still match exactly.
  Rng rng(1);
  CondensedGroupSet groups = RandomGroups(8, 3, rng);
  CentroidIndex index;
  for (int trial = 0; trial < 25; ++trial) {
    Vector q = RandomPoint(3, rng);
    EXPECT_EQ(index.NearestGroup(groups, q), groups.NearestGroup(q));
  }
}

TEST(CentroidIndexTest, MatchesScanOnLargeSets) {
  Rng rng(2);
  CondensedGroupSet groups = RandomGroups(200, 4, rng);
  CentroidIndex index;
  for (int trial = 0; trial < 50; ++trial) {
    Vector q = RandomPoint(4, rng);
    EXPECT_EQ(index.NearestGroup(groups, q), groups.NearestGroup(q));
  }
}

TEST(CentroidIndexTest, TracksUpdatedGroupCentroids) {
  // Moving a group's centroid via Add must be visible right after
  // NoteGroupUpdated, without an explicit rebuild.
  Rng rng(3);
  CondensedGroupSet groups = RandomGroups(64, 2, rng);
  CentroidIndex index;
  Vector q = RandomPoint(2, rng);
  ASSERT_EQ(index.NearestGroup(groups, q), groups.NearestGroup(q));

  // Drag group 5 right on top of the query point.
  for (int i = 0; i < 200; ++i) groups.mutable_group(5).Add(q);
  index.NoteGroupUpdated(5);
  EXPECT_EQ(groups.NearestGroup(q), 5u);
  EXPECT_EQ(index.NearestGroup(groups, q), 5u);

  // And drag it far away again: a stale snapshot entry must not keep
  // proposing it.
  Vector far(2);
  far[0] = 1e4;
  far[1] = 1e4;
  for (int i = 0; i < 100000; ++i) groups.mutable_group(5).Add(far);
  index.NoteGroupUpdated(5);
  EXPECT_EQ(index.NearestGroup(groups, q), groups.NearestGroup(q));
}

TEST(CentroidIndexTest, ManyDirtyGroupsStayExact) {
  // Dirty more than the rebuild threshold's worth of groups between
  // queries; every answer must still match the scan.
  Rng rng(4);
  CondensedGroupSet groups = RandomGroups(100, 3, rng);
  CentroidIndex index;
  Vector probe = RandomPoint(3, rng);
  ASSERT_EQ(index.NearestGroup(groups, probe), groups.NearestGroup(probe));
  for (std::size_t g = 0; g < 60; ++g) {
    groups.mutable_group(g).Add(RandomPoint(3, rng));
    index.NoteGroupUpdated(g);
  }
  for (int trial = 0; trial < 25; ++trial) {
    Vector q = RandomPoint(3, rng);
    EXPECT_EQ(index.NearestGroup(groups, q), groups.NearestGroup(q));
  }
}

TEST(CentroidIndexTest, InvalidateHandlesStructuralChurn) {
  // RemoveGroup swaps in the last group, renumbering ids; after
  // Invalidate the index must agree with the scan again.
  Rng rng(5);
  CondensedGroupSet groups = RandomGroups(80, 2, rng);
  CentroidIndex index;
  Vector q = RandomPoint(2, rng);
  ASSERT_EQ(index.NearestGroup(groups, q), groups.NearestGroup(q));

  std::size_t nearest = groups.NearestGroup(q);
  groups.RemoveGroup(nearest);
  index.Invalidate();
  for (int trial = 0; trial < 20; ++trial) {
    Vector probe = RandomPoint(2, rng);
    EXPECT_EQ(index.NearestGroup(groups, probe), groups.NearestGroup(probe));
  }
}

TEST(CentroidIndexTest, TieBreaksByLowestGroupId) {
  // Several groups share one centroid: NearestGroup's contract is that
  // the lowest id wins, and the index must reproduce that.
  CondensedGroupSet groups(2, 1);
  for (int g = 0; g < 40; ++g) {
    GroupStatistics group(2);
    group.Add(g < 3 ? Vector{1.0, 1.0}
                    : Vector{10.0 + g, -5.0});
    groups.AddGroup(std::move(group));
  }
  CentroidIndex index;
  Vector q{1.0, 1.0};
  EXPECT_EQ(groups.NearestGroup(q), 0u);
  EXPECT_EQ(index.NearestGroup(groups, q), 0u);
}

TEST(CentroidIndexTest, StaysExactAcrossMergeRemoveSplitChurn) {
  // Regression for the structural-churn pattern shared by the dynamic
  // condenser's removal path and the shard coordinator's fold loop
  // (src/core/dynamic_condenser.cc:176-188, src/shard/coordinator.cc):
  //   move out a group -> RemoveGroup (swap-with-back renumbers ids) ->
  //   Invalidate -> NearestGroup -> Merge -> NoteGroupUpdated ->
  //   possibly split (RemoveGroup + 2x AddGroup + Invalidate).
  // After every single churn step the index must agree with the linear
  // scan on fresh probes — a stale snapshot or missed dirty bit shows up
  // as a divergence here long before it corrupts a condensation run.
  Rng rng(7);
  const std::size_t dim = 3;
  CondensedGroupSet groups(dim, 4);
  for (std::size_t g = 0; g < 120; ++g) {
    GroupStatistics group(dim);
    for (int i = 0; i < 4 + static_cast<int>(g % 5); ++i) {
      group.Add(RandomPoint(dim, rng));
    }
    groups.AddGroup(std::move(group));
  }

  CentroidIndex index;
  auto expect_consistent = [&](const char* stage) {
    for (int trial = 0; trial < 8; ++trial) {
      Vector q = RandomPoint(dim, rng);
      ASSERT_EQ(index.NearestGroup(groups, q), groups.NearestGroup(q))
          << "index diverged from scan after " << stage;
    }
  };
  expect_consistent("build");

  for (int round = 0; round < 60 && groups.num_groups() > 2; ++round) {
    const std::size_t victim = rng.UniformIndex(groups.num_groups());
    GroupStatistics moved = std::move(groups.mutable_group(victim));
    groups.RemoveGroup(victim);
    index.Invalidate();
    expect_consistent("RemoveGroup+Invalidate");

    const std::size_t target = index.NearestGroup(groups, moved.Centroid());
    groups.mutable_group(target).Merge(moved);
    index.NoteGroupUpdated(target);
    expect_consistent("Merge+NoteGroupUpdated");

    GroupStatistics& merged = groups.mutable_group(target);
    if (merged.count() >= 8) {
      StatusOr<SplitResult> split =
          SplitGroupStatistics(merged, SplitRule::kMomentConsistent);
      ASSERT_TRUE(split.ok()) << split.status();
      groups.RemoveGroup(target);
      groups.AddGroup(std::move(split->lower));
      groups.AddGroup(std::move(split->upper));
      index.Invalidate();
      expect_consistent("Split+Invalidate");
    }
  }
}

TEST(CentroidIndexTest, SingleGroupSet) {
  Rng rng(6);
  CondensedGroupSet groups = RandomGroups(1, 2, rng);
  CentroidIndex index;
  EXPECT_EQ(index.NearestGroup(groups, RandomPoint(2, rng)), 0u);
}

}  // namespace
}  // namespace condensa::core
