#include "core/engine.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/random.h"
#include "datagen/profiles.h"
#include "linalg/stats.h"
#include "metrics/compatibility.h"

namespace condensa::core {
namespace {

using data::Dataset;
using data::TaskType;
using linalg::Vector;

Dataset TwoClassBlobs(Rng& rng) {
  return datagen::MakeGaussianBlobs(2, 60, 3, 8.0, rng);
}

TEST(EngineTest, RejectsEmptyDataset) {
  CondensationEngine engine({.group_size = 5});
  Rng rng(1);
  EXPECT_FALSE(engine.Anonymize(Dataset(2), rng).ok());
}

TEST(EngineTest, ClassificationPreservesSizeAndLabels) {
  Rng rng(2);
  Dataset input = TwoClassBlobs(rng);
  CondensationEngine engine({.group_size = 10});
  auto result = engine.Anonymize(input, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->anonymized.size(), input.size());
  EXPECT_EQ(result->anonymized.task(), TaskType::kClassification);
  auto in_by = input.IndicesByLabel();
  auto out_by = result->anonymized.IndicesByLabel();
  ASSERT_EQ(in_by.size(), out_by.size());
  for (const auto& [label, indices] : in_by) {
    EXPECT_EQ(out_by[label].size(), indices.size()) << "label " << label;
  }
}

TEST(EngineTest, ReportsOnePoolPerClass) {
  Rng rng(3);
  Dataset input = TwoClassBlobs(rng);
  CondensationEngine engine({.group_size = 10});
  auto result = engine.Anonymize(input, rng);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->reports.size(), 2u);
  for (const PoolReport& report : result->reports) {
    EXPECT_EQ(report.pool_size, 60u);
    EXPECT_EQ(report.effective_group_size, 10u);
    EXPECT_GE(report.privacy.min_group_size, 10u);
  }
  EXPECT_GE(result->AchievedIndistinguishability(), 10u);
  EXPECT_GE(result->AverageGroupSize(), 10.0);
}

TEST(EngineTest, ClassSmallerThanKCollapsesToOneGroup) {
  Rng rng(4);
  Dataset input(2, TaskType::kClassification);
  for (int i = 0; i < 40; ++i) {
    input.Add(Vector{rng.Gaussian(), rng.Gaussian()}, 0);
  }
  for (int i = 0; i < 3; ++i) {  // tiny class, below k
    input.Add(Vector{rng.Gaussian(50.0, 1.0), rng.Gaussian()}, 1);
  }
  CondensationEngine engine({.group_size = 10});
  auto result = engine.Anonymize(input, rng);
  ASSERT_TRUE(result.ok());
  const PoolReport* tiny = nullptr;
  for (const PoolReport& report : result->reports) {
    if (report.label == 1) tiny = &report;
  }
  ASSERT_NE(tiny, nullptr);
  EXPECT_EQ(tiny->effective_group_size, 3u);
  EXPECT_EQ(tiny->privacy.num_groups, 1u);
  // Achieved level reflects the weakest pool.
  EXPECT_EQ(result->AchievedIndistinguishability(), 3u);
}

TEST(EngineTest, StaticKOneReproducesOriginalRecords) {
  // The paper's baseline anchor: static condensation with k = 1 gives back
  // the original data (each record is its own group).
  Rng rng(5);
  Dataset input = TwoClassBlobs(rng);
  CondensationEngine engine(
      {.group_size = 1, .mode = CondensationMode::kStatic});
  auto result = engine.Anonymize(input, rng);
  ASSERT_TRUE(result.ok());
  // Every anonymized record appears in the original class (exact match).
  for (const auto& [label, indices] : input.IndicesByLabel()) {
    Dataset original_class = input.SelectLabel(label);
    Dataset anonymized_class = result->anonymized.SelectLabel(label);
    ASSERT_EQ(anonymized_class.size(), original_class.size());
    for (std::size_t i = 0; i < anonymized_class.size(); ++i) {
      bool found = false;
      for (std::size_t j = 0; j < original_class.size() && !found; ++j) {
        found = linalg::ApproxEqual(anonymized_class.record(i),
                                    original_class.record(j), 1e-9);
      }
      EXPECT_TRUE(found) << "anonymized record not in original class";
    }
  }
}

TEST(EngineTest, RegressionKeepsTargetsInRange) {
  Rng rng(6);
  Dataset input(2, TaskType::kRegression);
  for (int i = 0; i < 100; ++i) {
    double x = rng.Uniform(0.0, 10.0);
    input.Add(Vector{x, rng.Gaussian()}, 2.0 * x + 5.0);
  }
  CondensationEngine engine({.group_size = 10});
  auto result = engine.Anonymize(input, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->anonymized.size(), 100u);
  EXPECT_EQ(result->anonymized.task(), TaskType::kRegression);
  // Targets stay in a plausible band around the original range [5, 25].
  for (std::size_t i = 0; i < result->anonymized.size(); ++i) {
    EXPECT_GT(result->anonymized.target(i), -10.0);
    EXPECT_LT(result->anonymized.target(i), 40.0);
  }
}

TEST(EngineTest, RegressionPreservesFeatureTargetCorrelation) {
  // Condensing in (feature ⊕ target) space keeps the x-y correlation.
  Rng rng(7);
  Dataset input(1, TaskType::kRegression);
  for (int i = 0; i < 300; ++i) {
    double x = rng.Uniform(0.0, 10.0);
    input.Add(Vector{x}, 3.0 * x + rng.Gaussian(0.0, 0.5));
  }
  CondensationEngine engine({.group_size = 15});
  auto result = engine.Anonymize(input, rng);
  ASSERT_TRUE(result.ok());

  std::vector<double> xs, ys;
  for (std::size_t i = 0; i < result->anonymized.size(); ++i) {
    xs.push_back(result->anonymized.record(i)[0]);
    ys.push_back(result->anonymized.target(i));
  }
  EXPECT_GT(linalg::PearsonCorrelation(xs, ys), 0.95);
}

TEST(EngineTest, UnlabeledDatasetCondensesAsOnePool) {
  Rng rng(8);
  Dataset input(2);
  for (int i = 0; i < 50; ++i) {
    input.Add(Vector{rng.Gaussian(), rng.Gaussian()});
  }
  CondensationEngine engine({.group_size = 5});
  auto result = engine.Anonymize(input, rng);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->reports.size(), 1u);
  EXPECT_EQ(result->reports[0].pool_size, 50u);
  EXPECT_EQ(result->anonymized.size(), 50u);
}

TEST(EngineTest, DynamicModeRunsAndReportsSplits) {
  Rng rng(9);
  Dataset input = datagen::MakeGaussianBlobs(2, 200, 3, 8.0, rng);
  CondensationEngine engine({.group_size = 10,
                             .mode = CondensationMode::kDynamic,
                             .bootstrap_fraction = 0.25});
  auto result = engine.Anonymize(input, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->anonymized.size(), input.size());
  std::size_t total_splits = 0;
  for (const PoolReport& report : result->reports) {
    total_splits += report.splits;
  }
  EXPECT_GT(total_splits, 0u);
}

TEST(EngineTest, DynamicPureStreamingWorks) {
  Rng rng(10);
  Dataset input = TwoClassBlobs(rng);
  CondensationEngine engine({.group_size = 8,
                             .mode = CondensationMode::kDynamic,
                             .bootstrap_fraction = 0.0});
  auto result = engine.Anonymize(input, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->anonymized.size(), input.size());
}

TEST(EngineTest, CondensationPreservesCovarianceStructure) {
  // End-to-end μ check on a correlated dataset: static condensation with a
  // modest k must keep μ close to 1.
  Rng rng(11);
  Dataset input(3);
  for (int i = 0; i < 400; ++i) {
    double x = rng.Gaussian(0.0, 2.0);
    input.Add(Vector{x, 0.8 * x + rng.Gaussian(0.0, 0.5),
                     -0.5 * x + rng.Gaussian(0.0, 1.0)});
  }
  CondensationEngine engine({.group_size = 20});
  auto result = engine.Anonymize(input, rng);
  ASSERT_TRUE(result.ok());
  auto mu = metrics::CovarianceCompatibility(input, result->anonymized);
  ASSERT_TRUE(mu.ok());
  EXPECT_GT(*mu, 0.95);
}

TEST(EngineTest, CondensePointsHonoursMode) {
  Rng rng(12);
  std::vector<Vector> points;
  for (int i = 0; i < 60; ++i) {
    points.push_back(Vector{rng.Gaussian(), rng.Gaussian()});
  }
  CondensationEngine engine({.group_size = 6});
  auto groups = engine.CondensePoints(points, rng);
  ASSERT_TRUE(groups.ok());
  EXPECT_EQ(groups->TotalRecords(), 60u);
  EXPECT_GE(groups->Summary().min_group_size, 6u);
}

TEST(EngineTest, FeatureNamesSurviveAnonymization) {
  Rng rng(13);
  Dataset input(2, TaskType::kClassification);
  for (int i = 0; i < 20; ++i) {
    input.Add(Vector{rng.Gaussian(), rng.Gaussian()}, i % 2);
  }
  ASSERT_TRUE(input.SetFeatureNames({"alpha", "beta"}).ok());
  CondensationEngine engine({.group_size = 5});
  auto result = engine.Anonymize(input, rng);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->anonymized.feature_names().size(), 2u);
  EXPECT_EQ(result->anonymized.feature_names()[0], "alpha");
}

TEST(EngineTest, RejectsNonFiniteValues) {
  Rng rng(21);
  Dataset with_nan(2, TaskType::kClassification);
  for (int i = 0; i < 20; ++i) {
    with_nan.Add(Vector{rng.Gaussian(), rng.Gaussian()}, i % 2);
  }
  with_nan.Add(Vector{std::nan(""), 0.0}, 0);
  CondensationEngine engine({.group_size = 3});
  auto result = engine.Anonymize(with_nan, rng);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(IsInvalidArgument(result.status()));

  Dataset with_inf_target(1, TaskType::kRegression);
  for (int i = 0; i < 10; ++i) {
    with_inf_target.Add(Vector{rng.Gaussian()}, 1.0);
  }
  with_inf_target.Add(Vector{0.0},
                      std::numeric_limits<double>::infinity());
  auto regression_result = engine.Anonymize(with_inf_target, rng);
  ASSERT_FALSE(regression_result.ok());
  EXPECT_TRUE(IsInvalidArgument(regression_result.status()));
}

TEST(EngineTest, CondenseThenGenerateMatchesAnonymizeContract) {
  Rng data_rng(14);
  Dataset input = TwoClassBlobs(data_rng);
  CondensationEngine engine({.group_size = 10});

  Rng rng(15);
  auto pools = engine.Condense(input, rng);
  ASSERT_TRUE(pools.ok());
  EXPECT_EQ(pools->task, TaskType::kClassification);
  EXPECT_EQ(pools->feature_dim, input.dim());
  EXPECT_EQ(pools->pools.size(), 2u);

  auto release = core::GenerateRelease(*pools, rng);
  ASSERT_TRUE(release.ok());
  EXPECT_EQ(release->anonymized.size(), input.size());
  EXPECT_GE(release->AchievedIndistinguishability(), 10u);
}

TEST(EngineTest, RepeatedReleasesShareStatisticsButDifferPointwise) {
  // The server keeps pools and can regenerate forever: two releases from
  // the same pools are different record sets with the same second-order
  // structure.
  Rng data_rng(16);
  Dataset input(3);
  for (int i = 0; i < 300; ++i) {
    double x = data_rng.Gaussian();
    input.Add(Vector{x, 0.7 * x + data_rng.Gaussian(0.0, 0.4),
                     data_rng.Gaussian()});
  }
  CondensationEngine engine({.group_size = 15});
  Rng rng(17);
  auto pools = engine.Condense(input, rng);
  ASSERT_TRUE(pools.ok());

  Rng rng_a(18), rng_b(19);
  auto a = core::GenerateRelease(*pools, rng_a);
  auto b = core::GenerateRelease(*pools, rng_b);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());

  bool identical = true;
  for (std::size_t i = 0; i < a->anonymized.size() && identical; ++i) {
    identical = linalg::ApproxEqual(a->anonymized.record(i),
                                    b->anonymized.record(i), 1e-12);
  }
  EXPECT_FALSE(identical);

  auto mu = metrics::CovarianceCompatibility(a->anonymized, b->anonymized);
  ASSERT_TRUE(mu.ok());
  EXPECT_GT(*mu, 0.98);
}

TEST(EngineTest, GenerateReleaseValidatesPools) {
  core::CondensedPools empty;
  empty.feature_dim = 2;
  Rng rng(20);
  EXPECT_FALSE(core::GenerateRelease(empty, rng).ok());

  // Pool dimension inconsistent with the declared feature_dim.
  core::CondensedPools bad;
  bad.task = TaskType::kUnlabeled;
  bad.feature_dim = 3;
  GroupStatistics wrong_dim(2);
  wrong_dim.Add(Vector{0.0, 0.0});
  CondensedGroupSet groups(2, 1);
  groups.AddGroup(std::move(wrong_dim));
  bad.pools.push_back(core::CondensedPools::Pool{-1, 0, std::move(groups)});
  EXPECT_FALSE(core::GenerateRelease(bad, rng).ok());
}

TEST(EngineTest, InvalidConfigSurfacesStatus) {
  EXPECT_TRUE(IsInvalidArgument(CondensationConfig{.group_size = 0}.Validate()));
  EXPECT_TRUE(IsInvalidArgument(
      CondensationConfig{.group_size = 5,
                         .mode = CondensationMode::kDynamic,
                         .bootstrap_fraction = 1.5}
          .Validate()));
  EXPECT_TRUE(IsInvalidArgument(
      CondensationConfig{.group_size = 5, .snapshot_interval = 0}.Validate()));
  EXPECT_TRUE(CondensationConfig{.group_size = 5}.Validate().ok());

  // Construction never aborts; the Status surfaces at first use instead.
  CondensationEngine engine({.group_size = 0});
  Rng rng(33);
  std::vector<Vector> points = {Vector{0.0, 0.0}, Vector{1.0, 1.0}};
  auto condensed = engine.CondensePoints(points, rng);
  ASSERT_FALSE(condensed.ok());
  EXPECT_TRUE(IsInvalidArgument(condensed.status()));

  data::Dataset dataset(2);
  dataset.Add(Vector{0.0, 0.0});
  dataset.Add(Vector{1.0, 1.0});
  auto anonymized = engine.Anonymize(dataset, rng);
  ASSERT_FALSE(anonymized.ok());
  EXPECT_TRUE(IsInvalidArgument(anonymized.status()));
}

TEST(EngineTest, CondenseIsThreadCountInvariant) {
  // Per-class pools are condensed on a worker pool, one Rng substream per
  // pool split in label order before any pool runs: the retained group
  // aggregates must be bit-identical at any thread count.
  Rng data_rng(40);
  Dataset input = datagen::MakeGaussianBlobs(4, 75, 3, 8.0, data_rng);
  CondensationEngine serial({.group_size = 10, .num_threads = 1});
  CondensationEngine pooled({.group_size = 10, .num_threads = 4});
  Rng rng_a(41), rng_b(41);
  auto a = serial.Condense(input, rng_a);
  auto b = pooled.Condense(input, rng_b);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->pools.size(), b->pools.size());
  for (std::size_t p = 0; p < a->pools.size(); ++p) {
    EXPECT_EQ(a->pools[p].label, b->pools[p].label);
    const CondensedGroupSet& ga = a->pools[p].groups;
    const CondensedGroupSet& gb = b->pools[p].groups;
    ASSERT_EQ(ga.num_groups(), gb.num_groups()) << "pool " << p;
    for (std::size_t i = 0; i < ga.num_groups(); ++i) {
      EXPECT_EQ(ga.group(i).count(), gb.group(i).count());
      EXPECT_TRUE(linalg::ApproxEqual(ga.group(i).first_order(),
                                      gb.group(i).first_order(), 0.0));
      EXPECT_TRUE(linalg::ApproxEqual(ga.group(i).second_order(),
                                      gb.group(i).second_order(), 0.0));
    }
  }
  // Downstream draws stay aligned too.
  EXPECT_EQ(rng_a.NextUint64(), rng_b.NextUint64());
}

TEST(EngineTest, AnonymizeIsThreadCountInvariant) {
  // End to end: condensation and regeneration both fan out, and the
  // released records must not depend on the worker count.
  Rng data_rng(42);
  Dataset input = datagen::MakeGaussianBlobs(3, 80, 2, 6.0, data_rng);
  CondensationEngine serial({.group_size = 8, .num_threads = 1});
  CondensationEngine pooled({.group_size = 8, .num_threads = 0});  // all hw
  Rng rng_a(43), rng_b(43);
  auto a = serial.Anonymize(input, rng_a);
  auto b = pooled.Anonymize(input, rng_b);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->anonymized.size(), b->anonymized.size());
  for (std::size_t i = 0; i < a->anonymized.size(); ++i) {
    EXPECT_EQ(a->anonymized.label(i), b->anonymized.label(i));
    EXPECT_TRUE(linalg::ApproxEqual(a->anonymized.record(i),
                                    b->anonymized.record(i), 0.0))
        << "record " << i;
  }
}

}  // namespace
}  // namespace condensa::core
