#include "core/condensed_group_set.h"

#include <gtest/gtest.h>

namespace condensa::core {
namespace {

using linalg::Vector;

GroupStatistics MakeGroupAt(double x, double y, std::size_t count) {
  GroupStatistics stats(2);
  for (std::size_t i = 0; i < count; ++i) {
    stats.Add(Vector{x, y});
  }
  return stats;
}

TEST(CondensedGroupSetTest, EmptySet) {
  CondensedGroupSet set(3, 10);
  EXPECT_EQ(set.dim(), 3u);
  EXPECT_EQ(set.indistinguishability_level(), 10u);
  EXPECT_TRUE(set.empty());
  EXPECT_EQ(set.TotalRecords(), 0u);
  PrivacySummary summary = set.Summary();
  EXPECT_EQ(summary.num_groups, 0u);
  EXPECT_EQ(summary.min_group_size, 0u);
}

TEST(CondensedGroupSetTest, AddGroupTracksCounts) {
  CondensedGroupSet set(2, 5);
  set.AddGroup(MakeGroupAt(0.0, 0.0, 5));
  set.AddGroup(MakeGroupAt(10.0, 0.0, 7));
  EXPECT_EQ(set.num_groups(), 2u);
  EXPECT_EQ(set.TotalRecords(), 12u);
}

TEST(CondensedGroupSetTest, NearestGroupFindsClosestCentroid) {
  CondensedGroupSet set(2, 5);
  set.AddGroup(MakeGroupAt(0.0, 0.0, 5));
  set.AddGroup(MakeGroupAt(10.0, 0.0, 5));
  set.AddGroup(MakeGroupAt(0.0, 10.0, 5));
  EXPECT_EQ(set.NearestGroup(Vector{1.0, 1.0}), 0u);
  EXPECT_EQ(set.NearestGroup(Vector{9.0, 1.0}), 1u);
  EXPECT_EQ(set.NearestGroup(Vector{1.0, 9.0}), 2u);
}

TEST(CondensedGroupSetTest, RemoveGroupIsSwapRemove) {
  CondensedGroupSet set(2, 5);
  set.AddGroup(MakeGroupAt(0.0, 0.0, 5));
  set.AddGroup(MakeGroupAt(10.0, 0.0, 6));
  set.AddGroup(MakeGroupAt(20.0, 0.0, 7));
  set.RemoveGroup(0);
  EXPECT_EQ(set.num_groups(), 2u);
  EXPECT_EQ(set.TotalRecords(), 13u);
  // Former last group moved to slot 0.
  EXPECT_DOUBLE_EQ(set.group(0).Centroid()[0], 20.0);
}

TEST(CondensedGroupSetTest, SummaryReportsSizes) {
  CondensedGroupSet set(2, 5);
  set.AddGroup(MakeGroupAt(0.0, 0.0, 5));
  set.AddGroup(MakeGroupAt(1.0, 0.0, 9));
  set.AddGroup(MakeGroupAt(2.0, 0.0, 7));
  PrivacySummary summary = set.Summary();
  EXPECT_EQ(summary.num_groups, 3u);
  EXPECT_EQ(summary.total_records, 21u);
  EXPECT_EQ(summary.min_group_size, 5u);
  EXPECT_EQ(summary.max_group_size, 9u);
  EXPECT_DOUBLE_EQ(summary.average_group_size, 7.0);
}

TEST(CondensedGroupSetDeathTest, InvalidOperationsAbort) {
  CondensedGroupSet set(2, 5);
  EXPECT_DEATH((void)set.NearestGroup(Vector{0.0, 0.0}), "CHECK");
  EXPECT_DEATH(set.AddGroup(GroupStatistics(2)), "CHECK");  // empty group
  CondensedGroupSet wrong_dim(3, 5);
  EXPECT_DEATH(wrong_dim.AddGroup(MakeGroupAt(0.0, 0.0, 1)),
               "CHECK");  // 2-dim group into 3-dim set
}

}  // namespace
}  // namespace condensa::core
