// Adversarial insert/remove interleavings for the dynamic condenser.
//
// The paper's dynamic maintenance keeps every group's zeroth and first
// moments exact under arbitrary streams (Observation 1: sums are
// additive), while splits and merges shuffle records between groups.
// These tests drive interleavings chosen to force the same groups
// through repeated split/merge churn and then check that the aggregate
// moments never drift from a straight batch recompute of the records
// that are actually inside the structure.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/random.h"
#include "core/dynamic_condenser.h"
#include "linalg/vector.h"

namespace condensa::core {
namespace {

using linalg::Vector;

Vector MakeRecord(Rng& rng, std::size_t dim, double center, double spread) {
  Vector v(dim);
  for (std::size_t j = 0; j < dim; ++j) {
    v[j] = rng.Gaussian(center, spread);
  }
  return v;
}

// Exact aggregate ledger of what should be inside the condenser.
struct BatchLedger {
  explicit BatchLedger(std::size_t dim) : first_order(dim) {}

  void Add(const Vector& record) {
    ++count;
    for (std::size_t j = 0; j < record.dim(); ++j) {
      first_order[j] += record[j];
    }
  }
  void Remove(const Vector& record) {
    --count;
    for (std::size_t j = 0; j < record.dim(); ++j) {
      first_order[j] -= record[j];
    }
  }

  std::size_t count = 0;
  Vector first_order;
};

// Sums the condenser's per-group moments (plus any warm-up forming
// buffer) and compares them against the ledger: exact count
// conservation, first moments to relative 1e-6.
void ExpectMomentsMatch(const DynamicCondenser& condenser,
                        const BatchLedger& ledger) {
  std::size_t total = 0;
  Vector sum(ledger.first_order.dim());
  for (const GroupStatistics& group : condenser.groups().groups()) {
    total += group.count();
    for (std::size_t j = 0; j < sum.dim(); ++j) {
      sum[j] += group.first_order()[j];
    }
  }
  if (auto forming = condenser.ExportState().forming; forming.has_value()) {
    total += forming->count();
    for (std::size_t j = 0; j < sum.dim(); ++j) {
      sum[j] += forming->first_order()[j];
    }
  }
  ASSERT_EQ(total, ledger.count);
  for (std::size_t j = 0; j < sum.dim(); ++j) {
    const double expect = ledger.first_order[j];
    const double scale = std::max(1.0, std::fabs(expect));
    EXPECT_NEAR(sum[j], expect, 1e-6 * scale) << "attribute " << j;
  }
}

// Every group obeys the paper's steady-state bound [k, 2k - 1].
void ExpectSizeInvariant(const DynamicCondenser& condenser, std::size_t k) {
  for (const GroupStatistics& group : condenser.groups().groups()) {
    EXPECT_GE(group.count(), k);
    EXPECT_LT(group.count(), 2 * k);
  }
}

class DynamicAdversarialTest : public ::testing::TestWithParam<std::uint64_t> {
};

// Pump one tight cluster up and down across the split threshold: inserts
// push the (single) group to 2k and force a split, removals drag the
// halves below k and force the merge back. Each round re-runs the same
// split/merge pair on the same records.
TEST_P(DynamicAdversarialTest, SplitMergeChurnOnOneCluster) {
  const std::size_t k = 6;
  const std::size_t dim = 3;
  Rng rng(GetParam());
  DynamicCondenser condenser(dim, {.group_size = k});
  BatchLedger ledger(dim);

  std::vector<Vector> resident;
  for (std::size_t i = 0; i < k; ++i) {
    Vector record = MakeRecord(rng, dim, 0.0, 0.5);
    ASSERT_TRUE(condenser.Insert(record).ok());
    ledger.Add(record);
    resident.push_back(std::move(record));
  }

  for (int round = 0; round < 40; ++round) {
    // Grow well past 2k: at least one split per round.
    std::vector<Vector> added;
    for (std::size_t i = 0; i < 2 * k; ++i) {
      Vector record = MakeRecord(rng, dim, 0.0, 0.5);
      ASSERT_TRUE(condenser.Insert(record).ok());
      ledger.Add(record);
      added.push_back(std::move(record));
    }
    ExpectMomentsMatch(condenser, ledger);
    ExpectSizeInvariant(condenser, k);

    // Shrink back down: merges undo the splits.
    for (const Vector& record : added) {
      ASSERT_TRUE(condenser.Remove(record).ok());
      ledger.Remove(record);
    }
    ExpectMomentsMatch(condenser, ledger);
  }
  EXPECT_GT(condenser.split_count(), 0u);
  EXPECT_GT(condenser.merge_count(), 0u);
  EXPECT_EQ(condenser.groups().TotalRecords(), resident.size());
}

// Two well-separated clusters with anti-correlated load: one side only
// inserts while the other only removes, then the roles flip. Exercises
// merge target selection across groups while totals stay exact.
TEST_P(DynamicAdversarialTest, SeesawLoadAcrossTwoClusters) {
  const std::size_t k = 5;
  const std::size_t dim = 2;
  Rng rng(GetParam() + 100);
  DynamicCondenser condenser(dim, {.group_size = k});
  BatchLedger ledger(dim);

  std::vector<Vector> left;
  std::vector<Vector> right;
  for (std::size_t i = 0; i < 4 * k; ++i) {
    Vector a = MakeRecord(rng, dim, -10.0, 0.5);
    Vector b = MakeRecord(rng, dim, +10.0, 0.5);
    ASSERT_TRUE(condenser.Insert(a).ok());
    ledger.Add(a);
    left.push_back(std::move(a));
    ASSERT_TRUE(condenser.Insert(b).ok());
    ledger.Add(b);
    right.push_back(std::move(b));
  }
  ExpectMomentsMatch(condenser, ledger);

  for (int round = 0; round < 12; ++round) {
    std::vector<Vector>& shrink = round % 2 == 0 ? left : right;
    std::vector<Vector>& grow = round % 2 == 0 ? right : left;
    const double center = round % 2 == 0 ? +10.0 : -10.0;
    for (std::size_t i = 0; i < 2 * k && shrink.size() > k; ++i) {
      ASSERT_TRUE(condenser.Remove(shrink.back()).ok());
      ledger.Remove(shrink.back());
      shrink.pop_back();
      Vector record = MakeRecord(rng, dim, center, 0.5);
      ASSERT_TRUE(condenser.Insert(record).ok());
      ledger.Add(record);
      grow.push_back(std::move(record));
    }
    ExpectMomentsMatch(condenser, ledger);
    ExpectSizeInvariant(condenser, k);
  }
  EXPECT_GT(condenser.split_count(), 0u);
  EXPECT_GT(condenser.merge_count(), 0u);
}

// Random interleaving with removal of a random resident record (not
// LIFO), biased so the population repeatedly crosses group boundaries.
TEST_P(DynamicAdversarialTest, RandomizedInterleavingNeverDrifts) {
  const std::size_t k = 4;
  const std::size_t dim = 3;
  Rng rng(GetParam() + 200);
  DynamicCondenser condenser(dim, {.group_size = k});
  BatchLedger ledger(dim);
  std::vector<Vector> resident;

  for (int step = 0; step < 1200; ++step) {
    const bool insert =
        resident.size() <= k || rng.UniformDouble() < 0.55;
    if (insert) {
      Vector record =
          MakeRecord(rng, dim, rng.UniformDouble() < 0.5 ? -4.0 : 4.0, 1.0);
      ASSERT_TRUE(condenser.Insert(record).ok());
      ledger.Add(record);
      resident.push_back(std::move(record));
    } else {
      const std::size_t pick = rng.UniformIndex(resident.size());
      ASSERT_TRUE(condenser.Remove(resident[pick]).ok());
      ledger.Remove(resident[pick]);
      resident[pick] = std::move(resident.back());
      resident.pop_back();
    }
    if (step % 100 == 99) {
      ExpectMomentsMatch(condenser, ledger);
    }
  }
  ExpectMomentsMatch(condenser, ledger);
  EXPECT_EQ(condenser.records_seen(), ledger.count);
  EXPECT_GT(condenser.split_count(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DynamicAdversarialTest,
                         ::testing::Values(1u, 17u, 4242u));

}  // namespace
}  // namespace condensa::core
