// Fuzz-style corruption tests: every deserializer must survive arbitrary
// mangling of its input — truncations, bit flips, header damage — with a
// clean error status (or a successful parse when the damage happens to be
// benign), never a crash, hang, or out-of-range access.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/random.h"
#include "core/checkpointing.h"
#include "core/engine.h"
#include "core/serialization.h"
#include "net/frame.h"

namespace condensa::core {
namespace {

using linalg::Vector;

CondensedGroupSet MakeGroups(std::uint64_t seed) {
  Rng rng(seed);
  CondensedGroupSet set(3, 4);
  for (int g = 0; g < 3; ++g) {
    GroupStatistics stats(3);
    for (int i = 0; i < 4; ++i) {
      Vector p(3);
      for (int j = 0; j < 3; ++j) {
        p[j] = rng.Gaussian(static_cast<double>(g), 1.0);
      }
      stats.Add(p);
    }
    set.AddGroup(std::move(stats));
  }
  return set;
}

std::string MakePoolsText() {
  CondensedPools pools;
  pools.task = data::TaskType::kClassification;
  pools.feature_dim = 3;
  pools.pools.push_back({0, 1, MakeGroups(1)});
  pools.pools.push_back({1, 0, MakeGroups(2)});
  return SerializePools(pools);
}

std::string MakeStateText() {
  DynamicCondenser condenser(3, {.group_size = 4});
  Rng rng(3);
  for (int i = 0; i < 11; ++i) {
    Vector p(3);
    for (int j = 0; j < 3; ++j) {
      p[j] = rng.Gaussian(0.0, 1.0);
    }
    EXPECT_TRUE(condenser.Insert(p).ok());
  }
  return SerializeCondenserState(condenser.ExportState(), 5);
}

// Every deserializer under test, behind one uniform signature: returns
// the parse status for the mangled text.
using Parser = Status (*)(const std::string&);

Status ParseGroups(const std::string& text) {
  return DeserializeGroupSet(text).status();
}
Status ParsePools(const std::string& text) {
  return DeserializePools(text).status();
}
Status ParseState(const std::string& text) {
  return DeserializeCondenserState(text, nullptr).status();
}

struct Target {
  const char* name;
  Parser parse;
  std::string valid;
  // Truncating strictly before this offset is guaranteed to fail: the
  // document still misses a structural element (the last group's "sc"
  // section, or the snapshot's end marker). Cuts at or past it may parse
  // — e.g. dropping only the trailing newline, or shortening the last
  // %.17g token to a shorter valid double.
  std::size_t must_fail_below;
};

Target MakeTarget(const char* name, Parser parse, std::string valid,
                  const char* marker) {
  std::size_t pos = valid.rfind(marker);
  EXPECT_NE(pos, std::string::npos) << name;
  return {name, parse, std::move(valid), pos};
}

std::vector<Target> Targets() {
  std::vector<Target> targets;
  targets.push_back(MakeTarget("groups", &ParseGroups,
                               SerializeGroupSet(MakeGroups(7)), "\nsc"));
  // A non-default backend adds the optional "backend <id> <version>"
  // annotation line; fuzz that layout too.
  CondensedGroupSet stamped = MakeGroups(8);
  stamped.SetBackend("mdav", 1);
  targets.push_back(MakeTarget("stamped-groups", &ParseGroups,
                               SerializeGroupSet(stamped), "\nsc"));
  targets.push_back(MakeTarget("pools", &ParsePools, MakePoolsText(),
                               "\nsc"));
  targets.push_back(MakeTarget("state", &ParseState, MakeStateText(),
                               "\nend"));
  return targets;
}

// A corrupted parse may succeed (benign damage) or fail, but a failure
// must be one of the two documented corruption codes.
void ExpectCleanOutcome(const Target& target, const Status& status,
                        const std::string& what) {
  if (status.ok()) return;
  EXPECT_TRUE(status.code() == StatusCode::kDataLoss ||
              status.code() == StatusCode::kInvalidArgument)
      << target.name << " " << what << ": " << status.ToString();
}

TEST(SerializationCorruptionTest, ValidInputsParse) {
  for (const Target& target : Targets()) {
    EXPECT_TRUE(target.parse(target.valid).ok()) << target.name;
  }
}

TEST(SerializationCorruptionTest, TruncationAtEveryOffsetFailsCleanly) {
  for (const Target& target : Targets()) {
    for (std::size_t cut = 0; cut < target.valid.size(); ++cut) {
      Status status = target.parse(target.valid.substr(0, cut));
      if (cut < target.must_fail_below) {
        EXPECT_FALSE(status.ok())
            << target.name << " parsed a " << cut << "-byte prefix";
      }
      ExpectCleanOutcome(target, status,
                         "truncated at " + std::to_string(cut));
    }
  }
}

TEST(SerializationCorruptionTest, SingleBitFlipsFailCleanlyOrParse) {
  Rng rng(99);
  for (const Target& target : Targets()) {
    for (int trial = 0; trial < 400; ++trial) {
      std::string mangled = target.valid;
      std::size_t pos = rng.UniformIndex(mangled.size());
      int bit = static_cast<int>(rng.UniformIndex(8));
      mangled[pos] = static_cast<char>(mangled[pos] ^ (1 << bit));
      ExpectCleanOutcome(target, target.parse(mangled),
                         "bit flip at " + std::to_string(pos));
    }
  }
}

TEST(SerializationCorruptionTest, ByteSplicesFailCleanlyOrParse) {
  Rng rng(100);
  for (const Target& target : Targets()) {
    for (int trial = 0; trial < 200; ++trial) {
      std::string mangled = target.valid;
      // Overwrite a small window with random bytes.
      std::size_t pos = rng.UniformIndex(mangled.size());
      std::size_t len = std::min<std::size_t>(1 + rng.UniformIndex(8),
                                              mangled.size() - pos);
      for (std::size_t i = 0; i < len; ++i) {
        mangled[pos + i] = static_cast<char>(rng.UniformIndex(256));
      }
      ExpectCleanOutcome(target, target.parse(mangled),
                         "splice at " + std::to_string(pos));
    }
  }
}

TEST(SerializationCorruptionTest, HeaderManglingIsRejected) {
  for (const Target& target : Targets()) {
    // Wrong magic string.
    std::string wrong_magic = target.valid;
    wrong_magic[0] = 'X';
    EXPECT_FALSE(target.parse(wrong_magic).ok()) << target.name;
    ExpectCleanOutcome(target, target.parse(wrong_magic), "wrong magic");

    // Future version.
    std::string v2 = target.valid;
    std::size_t v1 = v2.find("v1");
    ASSERT_NE(v1, std::string::npos);
    v2[v1 + 1] = '2';
    EXPECT_FALSE(target.parse(v2).ok()) << target.name;
    ExpectCleanOutcome(target, target.parse(v2), "future version");

    // Empty and garbage documents.
    EXPECT_FALSE(target.parse("").ok()) << target.name;
    EXPECT_FALSE(target.parse("complete nonsense\n1 2 3\n").ok())
        << target.name;
  }
}

TEST(SerializationCorruptionTest, BackendAnnotationManglingIsRejected) {
  CondensedGroupSet stamped = MakeGroups(11);
  stamped.SetBackend("mdav", 3);
  const std::string valid = SerializeGroupSet(stamped);
  const std::string line = "backend mdav 3";
  ASSERT_NE(valid.find(line), std::string::npos);
  ASSERT_TRUE(ParseGroups(valid).ok());

  auto with = [&](const std::string& replacement) {
    std::string mangled = valid;
    mangled.replace(mangled.find(line), line.size(), replacement);
    return ParseGroups(mangled);
  };
  // Versions must be positive and fit an int; the id must be followed by
  // a numeric version (dropping it makes the next "group" line the
  // version token).
  for (const char* bad : {"backend mdav 0", "backend mdav -1",
                          "backend mdav 99999999999999999999",
                          "backend mdav x", "backend mdav"}) {
    Status status = with(bad);
    EXPECT_FALSE(status.ok()) << bad;
    EXPECT_EQ(status.code(), StatusCode::kDataLoss) << bad;
  }
}

TEST(SerializationCorruptionTest, FramedDocumentsFailClosedUnderMangling) {
  // The fabric ships these same documents inside checksummed wire frames
  // (kFinishResult carries a serialized group set). Fuzz the framed form:
  // either the frame layer rejects the damage (CRC/header validation) or
  // the payload decodes and the text parser sees the original bytes or a
  // benign mutation — never a crash or an out-of-range read. This pins
  // the defense-in-depth ordering: the CRC catches in-flight corruption
  // before the text parsers are even invoked.
  Rng rng(4242);
  for (const Target& target : Targets()) {
    const std::string wire =
        net::EncodeFrame(net::FrameType::kFinishResult, target.valid);
    int frame_rejects = 0;
    for (int trial = 0; trial < 300; ++trial) {
      std::string mangled = wire;
      const std::size_t pos = rng.UniformIndex(mangled.size());
      mangled[pos] = static_cast<char>(rng.UniformIndex(256));
      StatusOr<net::Frame> frame = net::DecodeFrame(mangled);
      if (!frame.ok()) {
        EXPECT_TRUE(frame.status().code() == StatusCode::kDataLoss ||
                    frame.status().code() == StatusCode::kFailedPrecondition)
            << target.name << ": " << frame.status().ToString();
        ++frame_rejects;
        continue;
      }
      // The frame survived, so the payload must be byte-identical (the
      // mangle restored the original byte) — a CRC pass with altered
      // payload bytes would be a checksum hole.
      EXPECT_EQ(frame->payload, target.valid) << target.name;
      EXPECT_TRUE(target.parse(frame->payload).ok()) << target.name;
    }
    // Sanity: the fuzz actually exercised the rejection path.
    EXPECT_GT(frame_rejects, 0) << target.name;
  }

  // Truncated frames — the common partial-write shape — also fail closed
  // for every cut point.
  const Target& target = Targets().front();
  const std::string wire =
      net::EncodeFrame(net::FrameType::kFinishResult, target.valid);
  for (std::size_t cut = 0; cut < wire.size(); cut += 7) {
    EXPECT_EQ(net::DecodeFrame(wire.substr(0, cut)).status().code(),
              StatusCode::kDataLoss)
        << "cut " << cut;
  }
}

TEST(SerializationCorruptionTest, InflatedCountsAreRejected) {
  // Claiming more groups/records than the document carries must not make
  // the parser read past the end or loop.
  for (const Target& target : Targets()) {
    std::string mangled = target.valid;
    // First count on the header line after the magic (skip the "v1").
    std::size_t digit =
        mangled.find_first_of("0123456789", mangled.find('\n'));
    ASSERT_NE(digit, std::string::npos);
    mangled.replace(digit, 1, "999999");
    ExpectCleanOutcome(target, target.parse(mangled), "inflated count");
  }
}

}  // namespace
}  // namespace condensa::core
