#include "core/checkpointing.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/failpoint.h"
#include "common/io.h"
#include "common/random.h"
#include "core/serialization.h"

namespace condensa::core {
namespace {

using linalg::Vector;

Vector MakeRecord(Rng& rng, std::size_t dim, double center) {
  Vector v(dim);
  for (std::size_t j = 0; j < dim; ++j) {
    v[j] = rng.Gaussian(center, 1.0);
  }
  return v;
}

std::vector<Vector> MakeStream(std::size_t count, std::size_t dim,
                               std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Vector> stream;
  stream.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    stream.push_back(MakeRecord(rng, dim, i % 2 == 0 ? 0.0 : 6.0));
  }
  return stream;
}

// Full-state fingerprint: two condensers with equal fingerprints are
// bit-identical (the serialization renders doubles with %.17g).
std::string Fingerprint(const DynamicCondenser& condenser) {
  return SerializeCondenserState(condenser.ExportState(), 0);
}

class CheckpointingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FailPoint::Reset();
    counter_ = 0;
  }
  void TearDown() override { FailPoint::Reset(); }

  // A fresh empty directory per call.
  std::string FreshDir() {
    std::string dir = ::testing::TempDir() + "/condensa_ckpt_" +
                      ::testing::UnitTest::GetInstance()
                          ->current_test_info()
                          ->name() +
                      "_" + std::to_string(counter_++);
    if (PathExists(dir)) {
      auto entries = ListDirectory(dir);
      if (entries.ok()) {
        for (const std::string& name : *entries) {
          RemoveFile(dir + "/" + name).ok();
        }
      }
    }
    CreateDirectories(dir).ok();
    return dir;
  }

  std::size_t counter_ = 0;
};

TEST_F(CheckpointingTest, StateRoundTripWithoutForming) {
  DynamicCondenser condenser(3, {.group_size = 4});
  Rng rng(11);
  ASSERT_TRUE(condenser.Bootstrap(MakeStream(20, 3, 1), rng).ok());
  ASSERT_TRUE(condenser.Insert(MakeRecord(rng, 3, 0.0)).ok());

  std::size_t sequence = 0;
  auto state = DeserializeCondenserState(
      SerializeCondenserState(condenser.ExportState(), 42), &sequence);
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(sequence, 42u);
  EXPECT_FALSE(state->forming.has_value());
  EXPECT_TRUE(state->bootstrapped);
  EXPECT_EQ(state->records_seen, 21u);

  auto rebuilt = DynamicCondenser::FromState(std::move(state).value(),
                                             {.group_size = 4});
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_EQ(Fingerprint(*rebuilt), Fingerprint(condenser));
}

TEST_F(CheckpointingTest, StateRoundTripPreservesFormingBuffer) {
  DynamicCondenser condenser(2, {.group_size = 5});
  Rng rng(12);
  // Fewer than k records: all of them sit in the forming buffer.
  ASSERT_TRUE(condenser.Insert(MakeRecord(rng, 2, 1.0)).ok());
  ASSERT_TRUE(condenser.Insert(MakeRecord(rng, 2, 1.0)).ok());
  ASSERT_TRUE(condenser.ExportState().forming.has_value());

  auto state = DeserializeCondenserState(
      SerializeCondenserState(condenser.ExportState(), 0), nullptr);
  ASSERT_TRUE(state.ok());
  ASSERT_TRUE(state->forming.has_value());
  EXPECT_EQ(state->forming->count(), 2u);

  auto rebuilt = DynamicCondenser::FromState(std::move(state).value(),
                                             {.group_size = 5});
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_EQ(Fingerprint(*rebuilt), Fingerprint(condenser));

  // The buffered records must keep streaming correctly after the rebuild.
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(rebuilt->Insert(MakeRecord(rng, 2, 1.0)).ok());
  }
  EXPECT_GE(rebuilt->groups().num_groups(), 1u);
}

TEST_F(CheckpointingTest, CreateWritesInitialGenerationAndRefusesReuse) {
  const std::string dir = FreshDir();
  auto durable = DurableCondenser::Create(3, {.group_size = 4}, {}, dir);
  ASSERT_TRUE(durable.ok());
  EXPECT_TRUE(PathExists(dir + "/snapshot-000000.condensa"));
  EXPECT_TRUE(PathExists(dir + "/journal-000000.log"));

  auto second = DurableCondenser::Create(3, {.group_size = 4}, {}, dir);
  EXPECT_EQ(second.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(CheckpointingTest, RecoverOnDirWithoutStateIsNotFound) {
  EXPECT_TRUE(IsNotFound(
      DurableCondenser::Recover(FreshDir(), {.group_size = 4}, {}).status()));
  EXPECT_TRUE(IsNotFound(DurableCondenser::Recover(
                             ::testing::TempDir() + "/condensa_ckpt_missing",
                             {.group_size = 4}, {})
                             .status()));
}

TEST_F(CheckpointingTest, RecoveryIsBitIdenticalToInMemoryState) {
  const std::string dir = FreshDir();
  std::vector<Vector> stream = MakeStream(37, 3, 21);

  DynamicCondenser reference(3, {.group_size = 4});
  {
    auto durable = DurableCondenser::Create(
        3, {.group_size = 4}, {.snapshot_interval = 10}, dir);
    ASSERT_TRUE(durable.ok());
    for (const Vector& record : stream) {
      ASSERT_TRUE(durable->Insert(record).ok());
      ASSERT_TRUE(reference.Insert(record).ok());
    }
  }  // "crash": the handle goes away without a final checkpoint

  auto recovered =
      DurableCondenser::Recover(dir, {.group_size = 4}, {});
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered->records_seen(), 37u);
  EXPECT_EQ(Fingerprint(recovered->condenser()), Fingerprint(reference));
}

TEST_F(CheckpointingTest, RecoverRefusesMismatchedBackend) {
  const std::string dir = FreshDir();
  {
    auto durable = DurableCondenser::Create(
        3, {.group_size = 4, .backend = "mdav"}, {}, dir);
    ASSERT_TRUE(durable.ok());
    for (const Vector& record : MakeStream(19, 3, 33)) {
      ASSERT_TRUE(durable->Insert(record).ok());
    }
  }

  // Recovering under the default backend must refuse: the structure was
  // built and journaled by another grouping strategy.
  auto mismatched = DurableCondenser::Recover(dir, {.group_size = 4}, {});
  ASSERT_FALSE(mismatched.ok());
  EXPECT_EQ(mismatched.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(std::string(mismatched.status().message()).find("mdav"),
            std::string::npos);

  // Same backend, wrong version: also refused.
  auto wrong_version = DurableCondenser::Recover(
      dir, {.group_size = 4, .backend = "mdav", .backend_version = 2}, {});
  ASSERT_FALSE(wrong_version.ok());
  EXPECT_EQ(wrong_version.status().code(), StatusCode::kFailedPrecondition);

  // The matching backend recovers cleanly and keeps the stamp.
  auto matched = DurableCondenser::Recover(
      dir, {.group_size = 4, .backend = "mdav"}, {});
  ASSERT_TRUE(matched.ok());
  EXPECT_EQ(matched->condenser().groups().backend_id(), "mdav");
  EXPECT_EQ(matched->records_seen(), 19u);
}

TEST_F(CheckpointingTest, SnapshotIntervalRollsAndPrunesGenerations) {
  const std::string dir = FreshDir();
  auto durable = DurableCondenser::Create(
      2, {.group_size = 3}, {.snapshot_interval = 5}, dir);
  ASSERT_TRUE(durable.ok());
  Rng rng(5);
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(durable->Insert(MakeRecord(rng, 2, 0.0)).ok());
  }
  EXPECT_EQ(durable->snapshot_sequence(), 2u);
  EXPECT_EQ(durable->appends_since_snapshot(), 2u);

  auto entries = ListDirectory(dir);
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), 2u);  // only the live generation remains
  EXPECT_TRUE(PathExists(dir + "/snapshot-000002.condensa"));
  EXPECT_TRUE(PathExists(dir + "/journal-000002.log"));
}

TEST_F(CheckpointingTest, TornJournalTailIsTruncatedOnRecovery) {
  const std::string dir = FreshDir();
  std::vector<Vector> stream = MakeStream(9, 2, 31);
  DynamicCondenser reference(2, {.group_size = 3});
  {
    auto durable = DurableCondenser::Create(2, {.group_size = 3}, {}, dir);
    ASSERT_TRUE(durable.ok());
    for (const Vector& record : stream) {
      ASSERT_TRUE(durable->Insert(record).ok());
      ASSERT_TRUE(reference.Insert(record).ok());
    }
  }

  // Simulate a crash mid-append: an entry with no terminator or newline.
  const std::string journal = dir + "/journal-000000.log";
  {
    auto file = AppendFile::Open(journal);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE(file->Append("i 0.25 0.5").ok());
  }

  auto recovered = DurableCondenser::Recover(dir, {.group_size = 3}, {});
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered->records_seen(), 9u);
  EXPECT_EQ(Fingerprint(recovered->condenser()), Fingerprint(reference));

  // The torn bytes are gone: every surviving entry is complete (ends in
  // its terminator), and a second recovery replays cleanly too.
  auto content = ReadFileToString(journal);
  ASSERT_TRUE(content.ok());
  EXPECT_TRUE(content->ends_with(" .\n"));
  auto again = DurableCondenser::Recover(dir, {.group_size = 3}, {});
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(Fingerprint(again->condenser()), Fingerprint(reference));
}

TEST_F(CheckpointingTest, CorruptNewestSnapshotFallsBackToOlder) {
  const std::string dir = FreshDir();

  // Build a valid generation 1 by hand.
  DynamicCondenser condenser(2, {.group_size = 3});
  Rng rng(7);
  for (int i = 0; i < 7; ++i) {
    ASSERT_TRUE(condenser.Insert(MakeRecord(rng, 2, 0.0)).ok());
  }
  ASSERT_TRUE(
      WriteFileAtomic(dir + "/snapshot-000001.condensa",
                      SerializeCondenserState(condenser.ExportState(), 1))
          .ok());
  ASSERT_TRUE(WriteFileAtomic(dir + "/journal-000001.log",
                              "condensa-journal v1 base 1\n")
                  .ok());
  // Generation 2's snapshot got torn mid-write (no end marker).
  ASSERT_TRUE(WriteFileAtomic(dir + "/snapshot-000002.condensa",
                              "condensa-snapshot v1\nseq 2 records 99 spl")
                  .ok());

  auto recovered = DurableCondenser::Recover(dir, {.group_size = 3}, {});
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered->snapshot_sequence(), 1u);
  EXPECT_EQ(recovered->records_seen(), 7u);
  EXPECT_EQ(Fingerprint(recovered->condenser()), Fingerprint(condenser));
  // The unrecoverable newer snapshot is preserved: recovery never
  // destroys evidence ahead of the generation it restored, so a rerun
  // deterministically falls back to generation 1 again.
  EXPECT_TRUE(PathExists(dir + "/snapshot-000002.condensa"));
}

TEST_F(CheckpointingTest, RecoveryIsIdempotentAndOrphansNewerJournals) {
  const std::string dir = FreshDir();

  // Valid generation 1 with two journaled records.
  DynamicCondenser condenser(2, {.group_size = 3});
  Rng rng(13);
  for (int i = 0; i < 7; ++i) {
    ASSERT_TRUE(condenser.Insert(MakeRecord(rng, 2, 0.0)).ok());
  }
  ASSERT_TRUE(
      WriteFileAtomic(dir + "/snapshot-000001.condensa",
                      SerializeCondenserState(condenser.ExportState(), 1))
          .ok());
  ASSERT_TRUE(WriteFileAtomic(dir + "/journal-000001.log",
                              "condensa-journal v1 base 1\n"
                              "i 0.25 0.5 .\n"
                              "i 6.5 5.75 .\n")
                  .ok());
  // Generation 2: corrupt snapshot, but its journal holds records that
  // were acknowledged after the snapshot roll.
  ASSERT_TRUE(WriteFileAtomic(dir + "/snapshot-000002.condensa",
                              "condensa-snapshot v1\nseq 2 records 99 spl")
                  .ok());
  const std::string orphan_payload =
      "condensa-journal v1 base 2\n"
      "i 1.5 2.5 .\n";
  ASSERT_TRUE(
      WriteFileAtomic(dir + "/journal-000002.log", orphan_payload).ok());

  std::string fingerprint;
  {
    auto recovered = DurableCondenser::Recover(dir, {.group_size = 3}, {});
    ASSERT_TRUE(recovered.ok());
    EXPECT_EQ(recovered->snapshot_sequence(), 1u);
    EXPECT_EQ(recovered->records_seen(), 9u);  // 7 + 2 replayed
    fingerprint = Fingerprint(recovered->condenser());
  }

  // The acknowledged-but-unrestorable journal is set aside, not deleted.
  EXPECT_FALSE(PathExists(dir + "/journal-000002.log"));
  auto orphan = ReadFileToString(dir + "/journal-000002.log.orphan");
  ASSERT_TRUE(orphan.ok());
  EXPECT_EQ(*orphan, orphan_payload);

  // Snapshot the directory, byte for byte.
  auto DirState = [&]() {
    std::vector<std::pair<std::string, std::string>> files;
    auto entries = ListDirectory(dir);
    EXPECT_TRUE(entries.ok());
    for (const std::string& name : *entries) {
      auto content = ReadFileToString(dir + "/" + name);
      EXPECT_TRUE(content.ok());
      files.emplace_back(name, *content);
    }
    std::sort(files.begin(), files.end());
    return files;
  };
  const auto after_first = DirState();

  // Recovering again is a pure no-op: same state, same bytes on disk.
  {
    auto again = DurableCondenser::Recover(dir, {.group_size = 3}, {});
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(again->snapshot_sequence(), 1u);
    EXPECT_EQ(again->records_seen(), 9u);
    EXPECT_EQ(Fingerprint(again->condenser()), fingerprint);
  }
  EXPECT_EQ(DirState(), after_first);
}

TEST_F(CheckpointingTest, ReplayApplyFailureFailsRecoveryWithoutTruncating) {
  const std::string dir = FreshDir();
  std::vector<Vector> stream = MakeStream(9, 2, 41);
  {
    auto durable = DurableCondenser::Create(2, {.group_size = 3}, {}, dir);
    ASSERT_TRUE(durable.ok());
    for (const Vector& record : stream) {
      ASSERT_TRUE(durable->Insert(record).ok());
    }
  }
  const std::string journal = dir + "/journal-000000.log";
  auto before = ReadFileToString(journal);
  ASSERT_TRUE(before.ok());

  // A transient fault during replay must fail the recovery — truncating
  // at the failed entry would destroy the acknowledged records behind it.
  FailPoint::Arm("dynamic.insert",
                 {.fail_at = 5, .code = StatusCode::kInternal});
  auto failed = DurableCondenser::Recover(dir, {.group_size = 3}, {});
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kInternal);
  FailPoint::Reset();

  auto after = ReadFileToString(journal);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(*after, *before);

  // Once the fault clears, recovery replays everything.
  auto recovered = DurableCondenser::Recover(dir, {.group_size = 3}, {});
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered->records_seen(), 9u);
}

TEST_F(CheckpointingTest, NoRecoverableSnapshotIsDataLoss) {
  const std::string dir = FreshDir();
  ASSERT_TRUE(
      WriteFileAtomic(dir + "/snapshot-000000.condensa", "garbage").ok());
  auto recovered = DurableCondenser::Recover(dir, {.group_size = 3}, {});
  EXPECT_EQ(recovered.status().code(), StatusCode::kDataLoss);

  // Journal without any snapshot is equally unrecoverable.
  const std::string dir2 = FreshDir();
  ASSERT_TRUE(WriteFileAtomic(dir2 + "/journal-000000.log",
                              "condensa-journal v1 base 0\n")
                  .ok());
  EXPECT_EQ(DurableCondenser::Recover(dir2, {.group_size = 3}, {})
                .status()
                .code(),
            StatusCode::kDataLoss);
}

TEST_F(CheckpointingTest, OpenCreatesThenRecoversAndChecksDimension) {
  const std::string dir = FreshDir();
  {
    auto durable = DurableCondenser::Open(3, {.group_size = 4}, {}, dir);
    ASSERT_TRUE(durable.ok());
    Rng rng(3);
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(durable->Insert(MakeRecord(rng, 3, 0.0)).ok());
    }
  }
  auto reopened = DurableCondenser::Open(3, {.group_size = 4}, {}, dir);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened->records_seen(), 5u);

  auto mismatched = DurableCondenser::Open(7, {.group_size = 4}, {}, dir);
  EXPECT_EQ(mismatched.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(CheckpointingTest, BootstrapBecomesDurableViaSnapshot) {
  const std::string dir = FreshDir();
  std::string fingerprint;
  {
    auto durable = DurableCondenser::Create(3, {.group_size = 4}, {}, dir);
    ASSERT_TRUE(durable.ok());
    Rng rng(17);
    ASSERT_TRUE(durable->Bootstrap(MakeStream(24, 3, 8), rng).ok());
    EXPECT_TRUE(durable->condenser().groups().num_groups() > 0);
    fingerprint = Fingerprint(durable->condenser());
  }
  auto recovered = DurableCondenser::Recover(dir, {.group_size = 4}, {});
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered->records_seen(), 24u);
  EXPECT_EQ(Fingerprint(recovered->condenser()), fingerprint);
}

TEST_F(CheckpointingTest, RemoveIsJournaledAndRecovered) {
  const std::string dir = FreshDir();
  std::vector<Vector> stream = MakeStream(20, 2, 13);
  DynamicCondenser reference(2, {.group_size = 3});
  {
    auto durable = DurableCondenser::Create(2, {.group_size = 3}, {}, dir);
    ASSERT_TRUE(durable.ok());
    for (const Vector& record : stream) {
      ASSERT_TRUE(durable->Insert(record).ok());
      ASSERT_TRUE(reference.Insert(record).ok());
    }
    ASSERT_TRUE(durable->Remove(stream[4]).ok());
    ASSERT_TRUE(reference.Remove(stream[4]).ok());
  }
  auto recovered = DurableCondenser::Recover(dir, {.group_size = 3}, {});
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(Fingerprint(recovered->condenser()), Fingerprint(reference));
}

TEST_F(CheckpointingTest, FailedSplitDuringInsertDoesNotPoisonSnapshots) {
  // Regression test: DynamicCondenser::Insert adds the record to a group
  // *before* the 2k split runs, so a split failure (eigensolver) leaves
  // the in-memory structure partially mutated. DurableCondenser must
  // rebuild from disk, or a later Checkpoint persists a state (8-record
  // unsplit group) that journal replay can never reproduce.
  const std::string dir = FreshDir();
  std::vector<Vector> stream = MakeStream(8, 3, 41);
  auto durable = DurableCondenser::Create(
      3, {.group_size = 4}, {.snapshot_interval = 100}, dir);
  ASSERT_TRUE(durable.ok());
  DynamicCondenser reference(3, {.group_size = 4});
  for (std::size_t i = 0; i + 1 < stream.size(); ++i) {
    ASSERT_TRUE(durable->Insert(stream[i]).ok());
    ASSERT_TRUE(reference.Insert(stream[i]).ok());
  }

  // Record 8 fills the single group to 2k and triggers the split, whose
  // eigendecomposition we force to fail.
  FailPoint::Arm("eigen.jacobi", {.fail_at = 1});
  EXPECT_FALSE(durable->Insert(stream.back()).ok());
  FailPoint::Reset();

  // Memory was rebuilt to the durable prefix: 7 records, bit-identical.
  EXPECT_EQ(durable->records_seen(), 7u);
  EXPECT_EQ(Fingerprint(durable->condenser()), Fingerprint(reference));

  // A checkpoint now must persist a consistent state...
  ASSERT_TRUE(durable->Checkpoint().ok());
  auto recovered = DurableCondenser::Recover(dir, {.group_size = 4}, {});
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(Fingerprint(recovered->condenser()), Fingerprint(reference));

  // ...and retrying the record succeeds with the split applied.
  ASSERT_TRUE(durable->Insert(stream.back()).ok());
  ASSERT_TRUE(reference.Insert(stream.back()).ok());
  EXPECT_EQ(reference.split_count(), 1u);
  EXPECT_EQ(Fingerprint(durable->condenser()), Fingerprint(reference));
}

TEST_F(CheckpointingTest, InsertDimensionMismatchLeavesJournalClean) {
  const std::string dir = FreshDir();
  auto durable = DurableCondenser::Create(3, {.group_size = 4}, {}, dir);
  ASSERT_TRUE(durable.ok());
  Rng rng(9);
  ASSERT_TRUE(durable->Insert(MakeRecord(rng, 3, 0.0)).ok());
  EXPECT_EQ(durable->Insert(Vector(2)).code(),
            StatusCode::kInvalidArgument);
  ASSERT_TRUE(durable->Insert(MakeRecord(rng, 3, 0.0)).ok());

  auto recovered = DurableCondenser::Recover(dir, {.group_size = 4}, {});
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered->records_seen(), 2u);
}

}  // namespace
}  // namespace condensa::core
