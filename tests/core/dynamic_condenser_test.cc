#include "core/dynamic_condenser.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace condensa::core {
namespace {

using linalg::Vector;

std::vector<Vector> RandomCloud(std::size_t n, std::size_t dim, Rng& rng) {
  std::vector<Vector> points;
  points.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Vector p(dim);
    for (std::size_t j = 0; j < dim; ++j) {
      p[j] = rng.Gaussian();
    }
    points.push_back(std::move(p));
  }
  return points;
}

TEST(DynamicCondenserTest, BootstrapBuildsInitialGroups) {
  Rng rng(1);
  DynamicCondenser condenser(2, {.group_size = 5});
  ASSERT_TRUE(condenser.Bootstrap(RandomCloud(50, 2, rng), rng).ok());
  EXPECT_EQ(condenser.groups().TotalRecords(), 50u);
  EXPECT_EQ(condenser.records_seen(), 50u);
  EXPECT_GE(condenser.groups().Summary().min_group_size, 5u);
}

TEST(DynamicCondenserTest, BootstrapTwiceFails) {
  Rng rng(2);
  DynamicCondenser condenser(2, {.group_size = 5});
  ASSERT_TRUE(condenser.Bootstrap(RandomCloud(20, 2, rng), rng).ok());
  EXPECT_FALSE(condenser.Bootstrap(RandomCloud(20, 2, rng), rng).ok());
}

TEST(DynamicCondenserTest, BootstrapAfterInsertFails) {
  Rng rng(3);
  DynamicCondenser condenser(2, {.group_size = 3});
  ASSERT_TRUE(condenser.Insert(Vector{0.0, 0.0}).ok());
  EXPECT_FALSE(condenser.Bootstrap(RandomCloud(20, 2, rng), rng).ok());
}

TEST(DynamicCondenserTest, InsertRejectsWrongDimension) {
  DynamicCondenser condenser(2, {.group_size = 3});
  EXPECT_FALSE(condenser.Insert(Vector{1.0}).ok());
}

TEST(DynamicCondenserTest, GroupSizesStayBetweenKAnd2K) {
  // The paper's steady-state invariant: after a warm start every group
  // holds between k and 2k-1 records (2k triggers an immediate split).
  Rng rng(4);
  const std::size_t k = 8;
  DynamicCondenser condenser(3, {.group_size = k});
  ASSERT_TRUE(condenser.Bootstrap(RandomCloud(80, 3, rng), rng).ok());
  for (const Vector& p : RandomCloud(400, 3, rng)) {
    ASSERT_TRUE(condenser.Insert(p).ok());
    for (const GroupStatistics& g : condenser.groups().groups()) {
      EXPECT_GE(g.count(), k);
      EXPECT_LT(g.count(), 2 * k);
    }
  }
}

TEST(DynamicCondenserTest, RecordCountConserved) {
  Rng rng(5);
  DynamicCondenser condenser(2, {.group_size = 6});
  ASSERT_TRUE(condenser.Bootstrap(RandomCloud(30, 2, rng), rng).ok());
  for (const Vector& p : RandomCloud(170, 2, rng)) {
    ASSERT_TRUE(condenser.Insert(p).ok());
  }
  EXPECT_EQ(condenser.groups().TotalRecords(), 200u);
  EXPECT_EQ(condenser.records_seen(), 200u);
}

TEST(DynamicCondenserTest, SplitsHappenUnderLoad) {
  Rng rng(6);
  DynamicCondenser condenser(2, {.group_size = 5});
  ASSERT_TRUE(condenser.Bootstrap(RandomCloud(25, 2, rng), rng).ok());
  for (const Vector& p : RandomCloud(200, 2, rng)) {
    ASSERT_TRUE(condenser.Insert(p).ok());
  }
  EXPECT_GT(condenser.split_count(), 0u);
  // 225 records in groups of < 10 means at least 23 groups.
  EXPECT_GE(condenser.groups().num_groups(), 23u);
}

TEST(DynamicCondenserTest, PureStreamWarmUpFormsFirstGroupAtK) {
  DynamicCondenser condenser(1, {.group_size = 3});
  ASSERT_TRUE(condenser.Insert(Vector{1.0}).ok());
  ASSERT_TRUE(condenser.Insert(Vector{2.0}).ok());
  EXPECT_TRUE(condenser.groups().empty());  // still forming
  ASSERT_TRUE(condenser.Insert(Vector{3.0}).ok());
  EXPECT_EQ(condenser.groups().num_groups(), 1u);
  EXPECT_EQ(condenser.groups().group(0).count(), 3u);
}

TEST(DynamicCondenserTest, TakeGroupsMergesOpenFormingGroup) {
  DynamicCondenser condenser(1, {.group_size = 4});
  // Two records only — never reaches k.
  ASSERT_TRUE(condenser.Insert(Vector{1.0}).ok());
  ASSERT_TRUE(condenser.Insert(Vector{2.0}).ok());
  CondensedGroupSet groups = condenser.TakeGroups();
  EXPECT_EQ(groups.num_groups(), 1u);
  EXPECT_EQ(groups.TotalRecords(), 2u);  // undersized group surfaced
}

TEST(DynamicCondenserTest, TakeGroupsMergesFormingIntoNearestFullGroup) {
  Rng rng(7);
  DynamicCondenser condenser(1, {.group_size = 3});
  for (double x : {0.0, 0.1, 0.2}) {  // full group near origin
    ASSERT_TRUE(condenser.Insert(Vector{x}).ok());
  }
  // No forming group now; stream two more — they join the existing group
  // (nearest centroid), no forming buffer is used once groups exist.
  ASSERT_TRUE(condenser.Insert(Vector{0.3}).ok());
  CondensedGroupSet groups = condenser.TakeGroups();
  EXPECT_EQ(groups.TotalRecords(), 4u);
}

TEST(DynamicCondenserTest, TakeGroupsResetsState) {
  Rng rng(8);
  DynamicCondenser condenser(2, {.group_size = 4});
  ASSERT_TRUE(condenser.Bootstrap(RandomCloud(20, 2, rng), rng).ok());
  (void)condenser.TakeGroups();
  EXPECT_EQ(condenser.records_seen(), 0u);
  EXPECT_TRUE(condenser.groups().empty());
  // Can bootstrap again after taking.
  EXPECT_TRUE(condenser.Bootstrap(RandomCloud(20, 2, rng), rng).ok());
}

TEST(DynamicCondenserTest, PointsJoinNearestGroup) {
  Rng rng(9);
  DynamicCondenser condenser(1, {.group_size = 2});
  // Two far-apart groups via bootstrap.
  std::vector<Vector> initial = {Vector{0.0}, Vector{0.1}, Vector{100.0},
                                 Vector{100.1}};
  ASSERT_TRUE(condenser.Bootstrap(initial, rng).ok());
  ASSERT_EQ(condenser.groups().num_groups(), 2u);

  std::size_t near_origin = condenser.groups().NearestGroup(Vector{0.0});
  std::size_t count_before =
      condenser.groups().group(near_origin).count();
  ASSERT_TRUE(condenser.Insert(Vector{0.05}).ok());
  // The origin group grew (or split, but 3 < 2k=4 so no split).
  EXPECT_EQ(condenser.groups().group(near_origin).count(),
            count_before + 1);
}

TEST(DynamicCondenserTest, RemoveValidatesInput) {
  DynamicCondenser condenser(2, {.group_size = 3});
  EXPECT_FALSE(condenser.Remove(Vector{0.0}).ok());       // wrong dim
  EXPECT_FALSE(condenser.Remove(Vector{0.0, 0.0}).ok());  // empty structure
}

TEST(DynamicCondenserTest, RemoveUndoesInsertFromFormingBuffer) {
  DynamicCondenser condenser(1, {.group_size = 3});
  ASSERT_TRUE(condenser.Insert(Vector{1.0}).ok());
  ASSERT_TRUE(condenser.Insert(Vector{2.0}).ok());
  ASSERT_TRUE(condenser.Remove(Vector{2.0}).ok());
  EXPECT_EQ(condenser.records_seen(), 1u);
  ASSERT_TRUE(condenser.Remove(Vector{1.0}).ok());
  EXPECT_EQ(condenser.records_seen(), 0u);
  // Now genuinely empty again.
  EXPECT_FALSE(condenser.Remove(Vector{1.0}).ok());
}

TEST(DynamicCondenserTest, RemoveConservesRecordCount) {
  Rng rng(11);
  DynamicCondenser condenser(2, {.group_size = 5});
  std::vector<Vector> stream = RandomCloud(100, 2, rng);
  ASSERT_TRUE(condenser.Bootstrap(stream, rng).ok());
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(condenser.Remove(stream[static_cast<std::size_t>(i)]).ok());
  }
  EXPECT_EQ(condenser.groups().TotalRecords(), 70u);
  EXPECT_EQ(condenser.records_seen(), 70u);
}

TEST(DynamicCondenserTest, RemoveRestoresPrivacyFloorByMerging) {
  Rng rng(12);
  const std::size_t k = 6;
  DynamicCondenser condenser(2, {.group_size = k});
  std::vector<Vector> stream = RandomCloud(60, 2, rng);
  ASSERT_TRUE(condenser.Bootstrap(stream, rng).ok());
  // Delete half the records; no surviving group may sit below k (a single
  // remaining group is exempt only if everything else merged away).
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(condenser.Remove(stream[static_cast<std::size_t>(i)]).ok());
    if (condenser.groups().num_groups() > 1) {
      EXPECT_GE(condenser.groups().Summary().min_group_size, k);
    }
  }
  EXPECT_GT(condenser.merge_count(), 0u);
}

TEST(DynamicCondenserTest, InterleavedInsertRemoveStaysConsistent) {
  Rng rng(13);
  DynamicCondenser condenser(3, {.group_size = 8});
  std::vector<Vector> live;
  std::vector<Vector> pool = RandomCloud(400, 3, rng);
  std::size_t next = 0;
  for (int step = 0; step < 300; ++step) {
    bool remove = !live.empty() && rng.Bernoulli(0.4);
    if (remove) {
      std::size_t victim = rng.UniformIndex(live.size());
      ASSERT_TRUE(condenser.Remove(live[victim]).ok());
      live[victim] = live.back();
      live.pop_back();
    } else {
      ASSERT_TRUE(condenser.Insert(pool[next]).ok());
      live.push_back(pool[next]);
      ++next;
    }
    EXPECT_EQ(condenser.records_seen(), live.size());
    // The forming buffer holds at most k-1 records; everything else is
    // accounted for in real groups.
    EXPECT_LE(condenser.records_seen() - condenser.groups().TotalRecords(),
              7u);
  }
}

TEST(DynamicCondenserTest, StreamOnTwoClustersKeepsGroupsLocal) {
  Rng rng(10);
  DynamicCondenser condenser(2, {.group_size = 10});
  std::vector<Vector> stream;
  for (int i = 0; i < 150; ++i) {
    stream.push_back(Vector{rng.Gaussian(), rng.Gaussian()});
    stream.push_back(Vector{rng.Gaussian(200.0, 1.0), rng.Gaussian()});
  }
  std::vector<Vector> bootstrap(stream.begin(), stream.begin() + 40);
  ASSERT_TRUE(condenser.Bootstrap(bootstrap, rng).ok());
  for (std::size_t i = 40; i < stream.size(); ++i) {
    ASSERT_TRUE(condenser.Insert(stream[i]).ok());
  }
  for (const GroupStatistics& g : condenser.groups().groups()) {
    double x = g.Centroid()[0];
    EXPECT_TRUE(x < 50.0 || x > 150.0) << "group straddles clusters, x=" << x;
  }
}

TEST(DynamicCondenserTest, StreamOfIdenticalRecordsSplitsSafely) {
  // 2k identical records force a split on an all-zero covariance, whose
  // leading Jacobi eigenvalue may be a tiny negative. Regression test:
  // the split must clamp it and succeed, and the resulting aggregates
  // must stay finite.
  DynamicCondenser condenser(2, {.group_size = 4});
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(condenser.Insert(Vector{7.5, -2.25}).ok()) << i;
  }
  EXPECT_EQ(condenser.groups().TotalRecords(), 20u);
  for (const GroupStatistics& group : condenser.groups().groups()) {
    const Vector centroid = group.Centroid();
    EXPECT_NEAR(centroid[0], 7.5, 1e-9);
    EXPECT_NEAR(centroid[1], -2.25, 1e-9);
  }
}

}  // namespace
}  // namespace condensa::core
