#include "core/group_statistics.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "linalg/stats.h"

namespace condensa::core {
namespace {

using linalg::Matrix;
using linalg::Vector;

TEST(GroupStatisticsTest, EmptyAggregate) {
  GroupStatistics stats(3);
  EXPECT_EQ(stats.dim(), 3u);
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_TRUE(stats.empty());
}

TEST(GroupStatisticsTest, FirstOrderSumsAccumulate) {
  GroupStatistics stats(2);
  stats.Add(Vector{1.0, 2.0});
  stats.Add(Vector{3.0, 4.0});
  EXPECT_EQ(stats.count(), 2u);
  EXPECT_DOUBLE_EQ(stats.first_order()[0], 4.0);
  EXPECT_DOUBLE_EQ(stats.first_order()[1], 6.0);
}

TEST(GroupStatisticsTest, SecondOrderSumsAccumulateProducts) {
  GroupStatistics stats(2);
  stats.Add(Vector{1.0, 2.0});
  stats.Add(Vector{3.0, 4.0});
  // Sc_00 = 1 + 9; Sc_01 = 2 + 12; Sc_11 = 4 + 16.
  EXPECT_DOUBLE_EQ(stats.second_order()(0, 0), 10.0);
  EXPECT_DOUBLE_EQ(stats.second_order()(0, 1), 14.0);
  EXPECT_DOUBLE_EQ(stats.second_order()(1, 0), 14.0);
  EXPECT_DOUBLE_EQ(stats.second_order()(1, 1), 20.0);
}

TEST(GroupStatisticsTest, CentroidIsObservationOne) {
  GroupStatistics stats(2);
  stats.Add(Vector{1.0, 2.0});
  stats.Add(Vector{3.0, 6.0});
  Vector centroid = stats.Centroid();
  EXPECT_DOUBLE_EQ(centroid[0], 2.0);
  EXPECT_DOUBLE_EQ(centroid[1], 4.0);
}

TEST(GroupStatisticsTest, CovarianceIsObservationTwo) {
  // Covariance from the aggregate must equal the direct population
  // covariance of the same points.
  Rng rng(3);
  std::vector<Vector> points;
  GroupStatistics stats(3);
  for (int i = 0; i < 50; ++i) {
    Vector p{rng.Gaussian(), rng.Gaussian(2.0, 3.0), rng.Uniform(-1.0, 5.0)};
    points.push_back(p);
    stats.Add(p);
  }
  Matrix direct = linalg::CovarianceMatrix(points);
  Matrix from_stats = stats.Covariance();
  EXPECT_TRUE(linalg::ApproxEqual(direct, from_stats, 1e-9));
}

TEST(GroupStatisticsTest, SinglePointHasZeroCovariance) {
  GroupStatistics stats(2);
  stats.Add(Vector{3.0, -1.0});
  EXPECT_TRUE(linalg::ApproxEqual(stats.Covariance(), Matrix(2, 2), 1e-12));
}

TEST(GroupStatisticsTest, RemoveUndoesAdd) {
  GroupStatistics stats(2);
  stats.Add(Vector{1.0, 1.0});
  stats.Add(Vector{5.0, 7.0});
  stats.Remove(Vector{5.0, 7.0});
  EXPECT_EQ(stats.count(), 1u);
  EXPECT_DOUBLE_EQ(stats.first_order()[0], 1.0);
  EXPECT_DOUBLE_EQ(stats.second_order()(1, 1), 1.0);
}

TEST(GroupStatisticsTest, MergeEqualsAddingAllPoints) {
  Rng rng(5);
  GroupStatistics a(2), b(2), combined(2);
  for (int i = 0; i < 10; ++i) {
    Vector p{rng.Gaussian(), rng.Gaussian()};
    a.Add(p);
    combined.Add(p);
  }
  for (int i = 0; i < 15; ++i) {
    Vector p{rng.Gaussian(), rng.Gaussian()};
    b.Add(p);
    combined.Add(p);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_TRUE(
      linalg::ApproxEqual(a.first_order(), combined.first_order(), 1e-10));
  EXPECT_TRUE(
      linalg::ApproxEqual(a.second_order(), combined.second_order(), 1e-9));
}

TEST(GroupStatisticsTest, FromMomentsRoundTripsEquationThree) {
  // Build an aggregate from points, take (n, centroid, covariance), rebuild
  // with FromMoments (paper Eq. 3): the aggregates must match.
  Rng rng(7);
  GroupStatistics original(3);
  for (int i = 0; i < 20; ++i) {
    original.Add(Vector{rng.Gaussian(), rng.Gaussian(1.0, 2.0),
                        rng.Uniform(0.0, 1.0)});
  }
  GroupStatistics rebuilt = GroupStatistics::FromMoments(
      original.count(), original.Centroid(), original.Covariance());
  EXPECT_EQ(rebuilt.count(), original.count());
  EXPECT_TRUE(linalg::ApproxEqual(rebuilt.first_order(),
                                  original.first_order(), 1e-9));
  EXPECT_TRUE(linalg::ApproxEqual(rebuilt.second_order(),
                                  original.second_order(), 1e-7));
}

TEST(GroupStatisticsTest, FromMomentsRecoversMoments) {
  Vector centroid{2.0, -1.0};
  Matrix covariance{{3.0, 1.0}, {1.0, 2.0}};
  GroupStatistics stats = GroupStatistics::FromMoments(8, centroid,
                                                       covariance);
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_TRUE(linalg::ApproxEqual(stats.Centroid(), centroid, 1e-12));
  EXPECT_TRUE(linalg::ApproxEqual(stats.Covariance(), covariance, 1e-10));
}

TEST(GroupStatisticsTest, FromRawSumsReconstitutesVerbatim) {
  Rng rng(8);
  GroupStatistics original(3);
  for (int i = 0; i < 15; ++i) {
    original.Add(Vector{rng.Gaussian(), rng.Gaussian(), rng.Gaussian()});
  }
  GroupStatistics rebuilt = GroupStatistics::FromRawSums(
      original.count(), original.first_order(), original.second_order());
  EXPECT_EQ(rebuilt.count(), original.count());
  // Bit-exact, not just approximately equal.
  for (std::size_t j = 0; j < 3; ++j) {
    EXPECT_EQ(rebuilt.first_order()[j], original.first_order()[j]);
    for (std::size_t i = 0; i < 3; ++i) {
      EXPECT_EQ(rebuilt.second_order()(i, j), original.second_order()(i, j));
    }
  }
}

TEST(GroupStatisticsDeathTest, FromRawSumsValidatesInput) {
  Vector fs{1.0, 2.0};
  Matrix sc{{1.0, 0.5}, {0.5, 2.0}};
  EXPECT_DEATH(GroupStatistics::FromRawSums(0, fs, sc), "CHECK");
  Matrix wrong_shape(3, 3);
  EXPECT_DEATH(GroupStatistics::FromRawSums(2, fs, wrong_shape), "CHECK");
  Matrix asymmetric{{1.0, 0.5}, {0.9, 2.0}};
  EXPECT_DEATH(GroupStatistics::FromRawSums(2, fs, asymmetric), "CHECK");
}

TEST(GroupStatisticsTest, SquaredDistanceToCentroid) {
  GroupStatistics stats(2);
  stats.Add(Vector{0.0, 0.0});
  stats.Add(Vector{2.0, 2.0});
  // Centroid (1,1); distance² from (4,5) is 9 + 16.
  EXPECT_DOUBLE_EQ(stats.SquaredDistanceToCentroid(Vector{4.0, 5.0}), 25.0);
}

TEST(GroupStatisticsTest, DegenerateDuplicatePointsClampDiagonal) {
  GroupStatistics stats(1);
  for (int i = 0; i < 5; ++i) {
    stats.Add(Vector{1e8});
  }
  // Catastrophic cancellation could give a tiny negative variance; the
  // diagonal must clamp at zero.
  EXPECT_GE(stats.Covariance()(0, 0), 0.0);
}

TEST(GroupStatisticsDeathTest, InvalidUseAborts) {
  GroupStatistics stats(2);
  EXPECT_DEATH((void)stats.Centroid(), "CHECK");
  EXPECT_DEATH(stats.Remove(Vector{0.0, 0.0}), "CHECK");
  EXPECT_DEATH(stats.Add(Vector{0.0}), "CHECK");
}

}  // namespace
}  // namespace condensa::core
