// Property tests for GroupStatistics::Merge — the algebraic foundation of
// scatter/gather condensation (shard/coordinator.h). Sharding is exact
// only if merging aggregates is commutative, associative, and equal to
// pooling the raw records, so these properties are exercised over many
// random partitions rather than one hand-picked example.

#include "core/group_statistics.h"

#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "linalg/stats.h"
#include "linalg/vector.h"

namespace condensa::core {
namespace {

using linalg::Matrix;
using linalg::Vector;

Vector RandomPoint(Rng& rng, std::size_t dim) {
  Vector point(dim);
  for (std::size_t j = 0; j < dim; ++j) {
    point[j] = rng.Gaussian(static_cast<double>(j), 1.0 + 0.25 * j);
  }
  return point;
}

GroupStatistics FromPoints(const std::vector<Vector>& points,
                           std::size_t dim) {
  GroupStatistics stats(dim);
  for (const Vector& point : points) stats.Add(point);
  return stats;
}

void ExpectAggregatesClose(const GroupStatistics& a, const GroupStatistics& b,
                           double tol) {
  ASSERT_EQ(a.count(), b.count());
  EXPECT_TRUE(linalg::ApproxEqual(a.first_order(), b.first_order(), tol));
  EXPECT_TRUE(linalg::ApproxEqual(a.second_order(), b.second_order(), tol));
}

TEST(GroupStatisticsPropertyTest, MergeIsCommutative) {
  Rng rng(101);
  const std::size_t dim = 4;
  for (int trial = 0; trial < 25; ++trial) {
    std::vector<Vector> left, right;
    for (int i = 0; i < 7 + trial; ++i) left.push_back(RandomPoint(rng, dim));
    for (int i = 0; i < 3 + trial; ++i) right.push_back(RandomPoint(rng, dim));

    GroupStatistics ab = FromPoints(left, dim);
    ab.Merge(FromPoints(right, dim));
    GroupStatistics ba = FromPoints(right, dim);
    ba.Merge(FromPoints(left, dim));

    // Float addition commutes exactly for two operands, so a+b vs b+a is
    // bit-identical, not just close.
    ASSERT_EQ(ab.count(), ba.count());
    for (std::size_t j = 0; j < dim; ++j) {
      EXPECT_EQ(ab.first_order()[j], ba.first_order()[j]);
      for (std::size_t i = 0; i < dim; ++i) {
        EXPECT_EQ(ab.second_order()(i, j), ba.second_order()(i, j));
      }
    }
  }
}

TEST(GroupStatisticsPropertyTest, MergeIsAssociative) {
  Rng rng(202);
  const std::size_t dim = 3;
  for (int trial = 0; trial < 25; ++trial) {
    std::vector<std::vector<Vector>> parts(3);
    for (std::size_t p = 0; p < parts.size(); ++p) {
      for (int i = 0; i < 4 + trial % 5; ++i) {
        parts[p].push_back(RandomPoint(rng, dim));
      }
    }

    // (a ⊕ b) ⊕ c
    GroupStatistics left = FromPoints(parts[0], dim);
    left.Merge(FromPoints(parts[1], dim));
    left.Merge(FromPoints(parts[2], dim));
    // a ⊕ (b ⊕ c)
    GroupStatistics bc = FromPoints(parts[1], dim);
    bc.Merge(FromPoints(parts[2], dim));
    GroupStatistics right = FromPoints(parts[0], dim);
    right.Merge(bc);

    // Association order reorders float additions, so equality is to
    // tolerance — far tighter than any downstream consumer needs.
    ExpectAggregatesClose(left, right, 1e-9);
  }
}

TEST(GroupStatisticsPropertyTest, MergeTreeMatchesPooledRawRecords) {
  // The scatter/gather claim itself: partition a pool of records into K
  // random parts, aggregate each part, merge the aggregates in a tree —
  // the result must match aggregating the whole pool directly, to 1e-9,
  // for every partition shape tried.
  Rng rng(303);
  const std::size_t dim = 5;
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t num_parts = 1 + rng.UniformIndex(8);
    std::vector<Vector> pool;
    GroupStatistics pooled(dim);
    std::vector<GroupStatistics> parts(num_parts, GroupStatistics(dim));
    for (int i = 0; i < 200; ++i) {
      Vector point = RandomPoint(rng, dim);
      pooled.Add(point);
      parts[rng.UniformIndex(num_parts)].Add(point);
    }

    // Pairwise merge tree, as a multi-level coordinator would do.
    while (parts.size() > 1) {
      std::vector<GroupStatistics> next;
      for (std::size_t i = 0; i + 1 < parts.size(); i += 2) {
        parts[i].Merge(parts[i + 1]);
        next.push_back(parts[i]);
      }
      if (parts.size() % 2 == 1) next.push_back(parts.back());
      parts = std::move(next);
    }

    ExpectAggregatesClose(parts.front(), pooled, 1e-9);
    // Derived moments (Observations 1-2) agree too.
    EXPECT_TRUE(
        linalg::ApproxEqual(parts.front().Centroid(), pooled.Centroid(),
                            1e-9));
    EXPECT_TRUE(linalg::ApproxEqual(parts.front().Covariance(),
                                    pooled.Covariance(), 1e-9));
  }
}

TEST(GroupStatisticsPropertyTest, MergeWithEmptyIsIdentity) {
  Rng rng(404);
  const std::size_t dim = 3;
  std::vector<Vector> points;
  for (int i = 0; i < 12; ++i) points.push_back(RandomPoint(rng, dim));
  GroupStatistics stats = FromPoints(points, dim);
  GroupStatistics reference = FromPoints(points, dim);
  stats.Merge(GroupStatistics(dim));
  ExpectAggregatesClose(stats, reference, 0.0);
}

}  // namespace
}  // namespace condensa::core
