#include "core/static_condenser.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "linalg/stats.h"

namespace condensa::core {
namespace {

using linalg::Vector;

std::vector<Vector> RandomCloud(std::size_t n, std::size_t dim, Rng& rng) {
  std::vector<Vector> points;
  points.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Vector p(dim);
    for (std::size_t j = 0; j < dim; ++j) {
      p[j] = rng.Gaussian();
    }
    points.push_back(std::move(p));
  }
  return points;
}

TEST(StaticCondenserTest, RejectsInvalidInput) {
  StaticCondenser condenser({.group_size = 5});
  Rng rng(1);
  EXPECT_FALSE(condenser.Condense({}, rng).ok());
  EXPECT_FALSE(condenser.Condense(RandomCloud(4, 2, rng), rng).ok());
  StaticCondenser zero_k({.group_size = 0});
  EXPECT_FALSE(zero_k.Condense(RandomCloud(10, 2, rng), rng).ok());
}

TEST(StaticCondenserTest, RejectsInconsistentDimensions) {
  StaticCondenser condenser({.group_size = 2});
  Rng rng(2);
  std::vector<Vector> points = {Vector{1.0, 2.0}, Vector{1.0}};
  EXPECT_FALSE(condenser.Condense(points, rng).ok());
}

TEST(StaticCondenserTest, AllRecordsLandInGroups) {
  Rng rng(3);
  std::vector<Vector> points = RandomCloud(103, 3, rng);
  StaticCondenser condenser({.group_size = 10});
  auto groups = condenser.Condense(points, rng);
  ASSERT_TRUE(groups.ok());
  EXPECT_EQ(groups->TotalRecords(), 103u);
}

TEST(StaticCondenserTest, EveryGroupHasAtLeastKRecords) {
  Rng rng(4);
  std::vector<Vector> points = RandomCloud(97, 2, rng);
  for (std::size_t k : {2u, 5u, 10u, 25u}) {
    StaticCondenser condenser({.group_size = k});
    auto groups = condenser.Condense(points, rng);
    ASSERT_TRUE(groups.ok());
    PrivacySummary summary = groups->Summary();
    EXPECT_GE(summary.min_group_size, k) << "k=" << k;
    // Leftover assignment can push a few groups past k but never creates
    // a group beyond 2k-1 + leftovers.
    EXPECT_LT(summary.max_group_size, 2 * k) << "k=" << k;
  }
}

TEST(StaticCondenserTest, ExactMultipleGivesUniformGroups) {
  Rng rng(5);
  std::vector<Vector> points = RandomCloud(100, 2, rng);
  StaticCondenser condenser({.group_size = 10});
  auto groups = condenser.Condense(points, rng);
  ASSERT_TRUE(groups.ok());
  EXPECT_EQ(groups->num_groups(), 10u);
  for (const GroupStatistics& g : groups->groups()) {
    EXPECT_EQ(g.count(), 10u);
  }
}

TEST(StaticCondenserTest, GroupSizeOneGivesSingletons) {
  Rng rng(6);
  std::vector<Vector> points = RandomCloud(20, 2, rng);
  StaticCondenser condenser({.group_size = 1});
  auto groups = condenser.Condense(points, rng);
  ASSERT_TRUE(groups.ok());
  EXPECT_EQ(groups->num_groups(), 20u);
  for (const GroupStatistics& g : groups->groups()) {
    EXPECT_EQ(g.count(), 1u);
  }
}

TEST(StaticCondenserTest, WholeDatasetAsOneGroup) {
  Rng rng(7);
  std::vector<Vector> points = RandomCloud(15, 2, rng);
  StaticCondenser condenser({.group_size = 15});
  auto groups = condenser.Condense(points, rng);
  ASSERT_TRUE(groups.ok());
  EXPECT_EQ(groups->num_groups(), 1u);
  EXPECT_EQ(groups->group(0).count(), 15u);
}

TEST(StaticCondenserTest, AggregateMomentsMatchInputExactly) {
  // The union of all group statistics must reproduce the dataset's global
  // first- and second-order sums (nothing is lost or invented).
  Rng rng(8);
  std::vector<Vector> points = RandomCloud(57, 3, rng);
  StaticCondenser condenser({.group_size = 8});
  auto groups = condenser.Condense(points, rng);
  ASSERT_TRUE(groups.ok());

  GroupStatistics merged(3);
  for (const GroupStatistics& g : groups->groups()) {
    merged.Merge(g);
  }
  GroupStatistics direct(3);
  for (const Vector& p : points) {
    direct.Add(p);
  }
  EXPECT_EQ(merged.count(), direct.count());
  EXPECT_TRUE(linalg::ApproxEqual(merged.first_order(), direct.first_order(),
                                  1e-8));
  EXPECT_TRUE(linalg::ApproxEqual(merged.second_order(),
                                  direct.second_order(), 1e-6));
}

TEST(StaticCondenserTest, GroupsAreSpatiallyLocal) {
  // Two well-separated clusters with k = cluster size: each group must sit
  // inside one cluster, never straddle both.
  Rng rng(9);
  std::vector<Vector> points;
  for (int i = 0; i < 30; ++i) {
    points.push_back(Vector{rng.Gaussian(), rng.Gaussian()});
  }
  for (int i = 0; i < 30; ++i) {
    points.push_back(Vector{rng.Gaussian(100.0, 1.0), rng.Gaussian()});
  }
  StaticCondenser condenser({.group_size = 10});
  auto groups = condenser.Condense(points, rng);
  ASSERT_TRUE(groups.ok());
  for (const GroupStatistics& g : groups->groups()) {
    double x = g.Centroid()[0];
    EXPECT_TRUE(x < 20.0 || x > 80.0)
        << "group straddles the two clusters, centroid x=" << x;
    // Straddling groups would also show huge x-variance.
    EXPECT_LT(g.Covariance()(0, 0), 100.0);
  }
}

TEST(StaticCondenserTest, DeterministicGivenSeed) {
  Rng data_rng(10);
  std::vector<Vector> points = RandomCloud(40, 2, data_rng);
  StaticCondenser condenser({.group_size = 7});
  Rng rng_a(11), rng_b(11);
  auto a = condenser.Condense(points, rng_a);
  auto b = condenser.Condense(points, rng_b);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->num_groups(), b->num_groups());
  for (std::size_t i = 0; i < a->num_groups(); ++i) {
    EXPECT_EQ(a->group(i).count(), b->group(i).count());
    EXPECT_TRUE(linalg::ApproxEqual(a->group(i).first_order(),
                                    b->group(i).first_order(), 0.0));
  }
}

// Property sweep: the k-indistinguishability invariant holds for any
// (n, k) combination.
class StaticCondenserPropertyTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
};

TEST_P(StaticCondenserPropertyTest, InvariantsHold) {
  auto [n, k] = GetParam();
  Rng rng(100 + n * 7 + k);
  std::vector<Vector> points = RandomCloud(n, 4, rng);
  StaticCondenser condenser({.group_size = k});
  auto groups = condenser.Condense(points, rng);
  ASSERT_TRUE(groups.ok());
  EXPECT_EQ(groups->TotalRecords(), n);
  EXPECT_GE(groups->Summary().min_group_size, k);
  EXPECT_EQ(groups->num_groups(), n / k);
}

INSTANTIATE_TEST_SUITE_P(
    SizeByK, StaticCondenserPropertyTest,
    ::testing::Combine(::testing::Values(10, 23, 50, 64, 101),
                       ::testing::Values(1, 2, 3, 5, 10)));

}  // namespace
}  // namespace condensa::core
