#include "core/static_condenser.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "linalg/stats.h"

namespace condensa::core {
namespace {

using linalg::Vector;

std::vector<Vector> RandomCloud(std::size_t n, std::size_t dim, Rng& rng) {
  std::vector<Vector> points;
  points.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Vector p(dim);
    for (std::size_t j = 0; j < dim; ++j) {
      p[j] = rng.Gaussian();
    }
    points.push_back(std::move(p));
  }
  return points;
}

TEST(StaticCondenserTest, RejectsInvalidInput) {
  StaticCondenser condenser({.group_size = 5});
  Rng rng(1);
  EXPECT_FALSE(condenser.Condense({}, rng).ok());
  EXPECT_FALSE(condenser.Condense(RandomCloud(4, 2, rng), rng).ok());
  StaticCondenser zero_k({.group_size = 0});
  EXPECT_FALSE(zero_k.Condense(RandomCloud(10, 2, rng), rng).ok());
}

TEST(StaticCondenserTest, RejectsInconsistentDimensions) {
  StaticCondenser condenser({.group_size = 2});
  Rng rng(2);
  std::vector<Vector> points = {Vector{1.0, 2.0}, Vector{1.0}};
  EXPECT_FALSE(condenser.Condense(points, rng).ok());
}

TEST(StaticCondenserTest, AllRecordsLandInGroups) {
  Rng rng(3);
  std::vector<Vector> points = RandomCloud(103, 3, rng);
  StaticCondenser condenser({.group_size = 10});
  auto groups = condenser.Condense(points, rng);
  ASSERT_TRUE(groups.ok());
  EXPECT_EQ(groups->TotalRecords(), 103u);
}

TEST(StaticCondenserTest, EveryGroupHasAtLeastKRecords) {
  Rng rng(4);
  std::vector<Vector> points = RandomCloud(97, 2, rng);
  for (std::size_t k : {2u, 5u, 10u, 25u}) {
    StaticCondenser condenser({.group_size = k});
    auto groups = condenser.Condense(points, rng);
    ASSERT_TRUE(groups.ok());
    PrivacySummary summary = groups->Summary();
    EXPECT_GE(summary.min_group_size, k) << "k=" << k;
    // Leftover assignment can push a few groups past k but never creates
    // a group beyond 2k-1 + leftovers.
    EXPECT_LT(summary.max_group_size, 2 * k) << "k=" << k;
  }
}

TEST(StaticCondenserTest, ExactMultipleGivesUniformGroups) {
  Rng rng(5);
  std::vector<Vector> points = RandomCloud(100, 2, rng);
  StaticCondenser condenser({.group_size = 10});
  auto groups = condenser.Condense(points, rng);
  ASSERT_TRUE(groups.ok());
  EXPECT_EQ(groups->num_groups(), 10u);
  for (const GroupStatistics& g : groups->groups()) {
    EXPECT_EQ(g.count(), 10u);
  }
}

TEST(StaticCondenserTest, GroupSizeOneGivesSingletons) {
  Rng rng(6);
  std::vector<Vector> points = RandomCloud(20, 2, rng);
  StaticCondenser condenser({.group_size = 1});
  auto groups = condenser.Condense(points, rng);
  ASSERT_TRUE(groups.ok());
  EXPECT_EQ(groups->num_groups(), 20u);
  for (const GroupStatistics& g : groups->groups()) {
    EXPECT_EQ(g.count(), 1u);
  }
}

TEST(StaticCondenserTest, WholeDatasetAsOneGroup) {
  Rng rng(7);
  std::vector<Vector> points = RandomCloud(15, 2, rng);
  StaticCondenser condenser({.group_size = 15});
  auto groups = condenser.Condense(points, rng);
  ASSERT_TRUE(groups.ok());
  EXPECT_EQ(groups->num_groups(), 1u);
  EXPECT_EQ(groups->group(0).count(), 15u);
}

TEST(StaticCondenserTest, AggregateMomentsMatchInputExactly) {
  // The union of all group statistics must reproduce the dataset's global
  // first- and second-order sums (nothing is lost or invented).
  Rng rng(8);
  std::vector<Vector> points = RandomCloud(57, 3, rng);
  StaticCondenser condenser({.group_size = 8});
  auto groups = condenser.Condense(points, rng);
  ASSERT_TRUE(groups.ok());

  GroupStatistics merged(3);
  for (const GroupStatistics& g : groups->groups()) {
    merged.Merge(g);
  }
  GroupStatistics direct(3);
  for (const Vector& p : points) {
    direct.Add(p);
  }
  EXPECT_EQ(merged.count(), direct.count());
  EXPECT_TRUE(linalg::ApproxEqual(merged.first_order(), direct.first_order(),
                                  1e-8));
  EXPECT_TRUE(linalg::ApproxEqual(merged.second_order(),
                                  direct.second_order(), 1e-6));
}

TEST(StaticCondenserTest, GroupsAreSpatiallyLocal) {
  // Two well-separated clusters with k = cluster size: each group must sit
  // inside one cluster, never straddle both.
  Rng rng(9);
  std::vector<Vector> points;
  for (int i = 0; i < 30; ++i) {
    points.push_back(Vector{rng.Gaussian(), rng.Gaussian()});
  }
  for (int i = 0; i < 30; ++i) {
    points.push_back(Vector{rng.Gaussian(100.0, 1.0), rng.Gaussian()});
  }
  StaticCondenser condenser({.group_size = 10});
  auto groups = condenser.Condense(points, rng);
  ASSERT_TRUE(groups.ok());
  for (const GroupStatistics& g : groups->groups()) {
    double x = g.Centroid()[0];
    EXPECT_TRUE(x < 20.0 || x > 80.0)
        << "group straddles the two clusters, centroid x=" << x;
    // Straddling groups would also show huge x-variance.
    EXPECT_LT(g.Covariance()(0, 0), 100.0);
  }
}

TEST(StaticCondenserTest, DeterministicGivenSeed) {
  Rng data_rng(10);
  std::vector<Vector> points = RandomCloud(40, 2, data_rng);
  StaticCondenser condenser({.group_size = 7});
  Rng rng_a(11), rng_b(11);
  auto a = condenser.Condense(points, rng_a);
  auto b = condenser.Condense(points, rng_b);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->num_groups(), b->num_groups());
  for (std::size_t i = 0; i < a->num_groups(); ++i) {
    EXPECT_EQ(a->group(i).count(), b->group(i).count());
    EXPECT_TRUE(linalg::ApproxEqual(a->group(i).first_order(),
                                    b->group(i).first_order(), 0.0));
  }
}

void ExpectBitIdentical(const CondensedGroupSet& a,
                        const CondensedGroupSet& b) {
  ASSERT_EQ(a.num_groups(), b.num_groups());
  for (std::size_t i = 0; i < a.num_groups(); ++i) {
    EXPECT_EQ(a.group(i).count(), b.group(i).count()) << "group " << i;
    EXPECT_TRUE(linalg::ApproxEqual(a.group(i).first_order(),
                                    b.group(i).first_order(), 0.0))
        << "group " << i;
    EXPECT_TRUE(linalg::ApproxEqual(a.group(i).second_order(),
                                    b.group(i).second_order(), 0.0))
        << "group " << i;
  }
}

TEST(StaticCondenserTest, IndexAndScanPathsAreBitIdentical) {
  // The tentpole contract: the deletion-aware k-d tree path must select
  // the same neighbours, in the same order, from the same seed draws as
  // the brute-force scan — groups identical down to the last bit.
  Rng data_rng(20);
  std::vector<Vector> points = RandomCloud(450, 3, data_rng);
  for (std::size_t k : {2u, 7u, 25u}) {
    StaticCondenser brute({.group_size = k,
                           .neighbour_search = NeighbourSearch::kBruteForce});
    StaticCondenser indexed({.group_size = k,
                             .neighbour_search = NeighbourSearch::kKdTree});
    Rng rng_a(21), rng_b(21);
    auto a = brute.Condense(points, rng_a);
    auto b = indexed.Condense(points, rng_b);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ExpectBitIdentical(*a, *b);
  }
}

TEST(StaticCondenserTest, AutoModeMatchesBruteForceAcrossTheThreshold) {
  // kAuto flips to the index at index_threshold; results must not change
  // at the cutover.
  Rng data_rng(22);
  std::vector<Vector> points = RandomCloud(300, 2, data_rng);
  StaticCondenser brute({.group_size = 6,
                         .neighbour_search = NeighbourSearch::kBruteForce});
  StaticCondenser auto_low({.group_size = 6,
                            .neighbour_search = NeighbourSearch::kAuto,
                            .index_threshold = 100});  // index path
  StaticCondenser auto_high({.group_size = 6,
                             .neighbour_search = NeighbourSearch::kAuto,
                             .index_threshold = 1000});  // scan path
  Rng rng_a(23), rng_b(23), rng_c(23);
  auto a = brute.Condense(points, rng_a);
  auto b = auto_low.Condense(points, rng_b);
  auto c = auto_high.Condense(points, rng_c);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(c.ok());
  ExpectBitIdentical(*a, *b);
  ExpectBitIdentical(*a, *c);
}

TEST(StaticCondenserTest, EquidistantNeighboursPickLowestOriginalIndex) {
  // Regression test for the distance tie-break: with massive distance
  // degeneracy (every point on a small integer grid, many duplicates) the
  // neighbour choice must be pinned by original record index, not by the
  // survivor array's churn order — which also makes scan and index paths
  // agree bit-for-bit.
  std::vector<Vector> points;
  for (int i = 0; i < 120; ++i) {
    points.push_back(Vector{static_cast<double>(i % 4),
                            static_cast<double>((i / 4) % 3)});
  }
  for (std::size_t k : {3u, 8u}) {
    StaticCondenser brute({.group_size = k,
                           .neighbour_search = NeighbourSearch::kBruteForce});
    StaticCondenser indexed({.group_size = k,
                             .neighbour_search = NeighbourSearch::kKdTree});
    Rng rng_a(24), rng_b(24);
    auto a = brute.Condense(points, rng_a);
    auto b = indexed.Condense(points, rng_b);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ExpectBitIdentical(*a, *b);
  }
}

TEST(StaticCondenserTest, AllCoincidentPointsCondenseOnBothPaths) {
  // Every point identical: the k-d tree degenerates to a zero-spread leaf
  // and every distance ties at 0.
  std::vector<Vector> points(64, Vector{2.5, -1.0, 3.0});
  for (NeighbourSearch search :
       {NeighbourSearch::kBruteForce, NeighbourSearch::kKdTree}) {
    StaticCondenser condenser({.group_size = 8, .neighbour_search = search});
    Rng rng(25);
    auto groups = condenser.Condense(points, rng);
    ASSERT_TRUE(groups.ok());
    EXPECT_EQ(groups->num_groups(), 8u);
    for (const GroupStatistics& g : groups->groups()) {
      EXPECT_EQ(g.count(), 8u);
      EXPECT_TRUE(
          linalg::ApproxEqual(g.Centroid(), Vector{2.5, -1.0, 3.0}, 1e-12));
    }
  }
}

TEST(StaticCondenserTest, GroupSizeOneWorksOnTheIndexPath) {
  // k = 1 means zero neighbours per seed: the index must tolerate
  // KNearestAlive(., 0) and pure seed-deletion churn.
  Rng data_rng(26);
  std::vector<Vector> points = RandomCloud(40, 2, data_rng);
  StaticCondenser indexed(
      {.group_size = 1, .neighbour_search = NeighbourSearch::kKdTree});
  Rng rng(27);
  auto groups = indexed.Condense(points, rng);
  ASSERT_TRUE(groups.ok());
  EXPECT_EQ(groups->num_groups(), 40u);
  EXPECT_EQ(groups->TotalRecords(), 40u);
  for (const GroupStatistics& g : groups->groups()) {
    EXPECT_EQ(g.count(), 1u);
  }
}

TEST(StaticCondenserTest, LeftoverAbsorptionAgreesAcrossPaths) {
  // n % k != 0 exercises the centroid-index leftover routing on top of
  // the neighbour search; totals and group contents must still match.
  Rng data_rng(28);
  std::vector<Vector> points = RandomCloud(509, 4, data_rng);
  StaticCondenser brute({.group_size = 25,
                         .neighbour_search = NeighbourSearch::kBruteForce});
  StaticCondenser indexed({.group_size = 25,
                           .neighbour_search = NeighbourSearch::kKdTree});
  Rng rng_a(29), rng_b(29);
  auto a = brute.Condense(points, rng_a);
  auto b = indexed.Condense(points, rng_b);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->TotalRecords(), 509u);
  ExpectBitIdentical(*a, *b);
}

// Property sweep: the k-indistinguishability invariant holds for any
// (n, k) combination.
class StaticCondenserPropertyTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
};

TEST_P(StaticCondenserPropertyTest, InvariantsHold) {
  auto [n, k] = GetParam();
  Rng rng(100 + n * 7 + k);
  std::vector<Vector> points = RandomCloud(n, 4, rng);
  StaticCondenser condenser({.group_size = k});
  auto groups = condenser.Condense(points, rng);
  ASSERT_TRUE(groups.ok());
  EXPECT_EQ(groups->TotalRecords(), n);
  EXPECT_GE(groups->Summary().min_group_size, k);
  EXPECT_EQ(groups->num_groups(), n / k);
}

INSTANTIATE_TEST_SUITE_P(
    SizeByK, StaticCondenserPropertyTest,
    ::testing::Combine(::testing::Values(10, 23, 50, 64, 101),
                       ::testing::Values(1, 2, 3, 5, 10)));

}  // namespace
}  // namespace condensa::core
