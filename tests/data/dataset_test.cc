#include "data/dataset.h"

#include <gtest/gtest.h>

namespace condensa::data {
namespace {

using linalg::Vector;

Dataset MakeSmallClassification() {
  Dataset ds(2, TaskType::kClassification);
  ds.Add(Vector{0.0, 0.0}, 0);
  ds.Add(Vector{1.0, 0.0}, 0);
  ds.Add(Vector{5.0, 5.0}, 1);
  ds.Add(Vector{6.0, 5.0}, 1);
  ds.Add(Vector{5.5, 5.5}, 1);
  return ds;
}

TEST(DatasetTest, EmptyConstruction) {
  Dataset ds(3);
  EXPECT_EQ(ds.dim(), 3u);
  EXPECT_EQ(ds.size(), 0u);
  EXPECT_TRUE(ds.empty());
  EXPECT_EQ(ds.task(), TaskType::kUnlabeled);
}

TEST(DatasetTest, AddUnlabeled) {
  Dataset ds(2);
  ds.Add(Vector{1.0, 2.0});
  EXPECT_EQ(ds.size(), 1u);
  EXPECT_DOUBLE_EQ(ds.record(0)[1], 2.0);
}

TEST(DatasetTest, AddClassificationKeepsLabels) {
  Dataset ds = MakeSmallClassification();
  EXPECT_EQ(ds.size(), 5u);
  EXPECT_EQ(ds.label(0), 0);
  EXPECT_EQ(ds.label(4), 1);
}

TEST(DatasetTest, AddRegressionKeepsTargets) {
  Dataset ds(1, TaskType::kRegression);
  ds.Add(Vector{1.0}, 10.5);
  ds.Add(Vector{2.0}, 11.5);
  EXPECT_DOUBLE_EQ(ds.target(0), 10.5);
  EXPECT_DOUBLE_EQ(ds.target(1), 11.5);
}

TEST(DatasetTest, DistinctLabelsSorted) {
  Dataset ds(1, TaskType::kClassification);
  ds.Add(Vector{0.0}, 3);
  ds.Add(Vector{0.0}, 1);
  ds.Add(Vector{0.0}, 3);
  ds.Add(Vector{0.0}, 2);
  std::vector<int> labels = ds.DistinctLabels();
  EXPECT_EQ(labels, (std::vector<int>{1, 2, 3}));
}

TEST(DatasetTest, IndicesByLabelPartitionsAllRecords) {
  Dataset ds = MakeSmallClassification();
  auto by_label = ds.IndicesByLabel();
  ASSERT_EQ(by_label.size(), 2u);
  EXPECT_EQ(by_label[0].size(), 2u);
  EXPECT_EQ(by_label[1].size(), 3u);
  std::size_t total = 0;
  for (const auto& [label, indices] : by_label) total += indices.size();
  EXPECT_EQ(total, ds.size());
}

TEST(DatasetTest, SelectKeepsSupervision) {
  Dataset ds = MakeSmallClassification();
  Dataset subset = ds.Select({4, 0});
  ASSERT_EQ(subset.size(), 2u);
  EXPECT_EQ(subset.label(0), 1);
  EXPECT_EQ(subset.label(1), 0);
  EXPECT_DOUBLE_EQ(subset.record(0)[0], 5.5);
}

TEST(DatasetTest, SelectEmptyIndices) {
  Dataset ds = MakeSmallClassification();
  Dataset subset = ds.Select({});
  EXPECT_TRUE(subset.empty());
  EXPECT_EQ(subset.dim(), ds.dim());
  EXPECT_EQ(subset.task(), ds.task());
}

TEST(DatasetTest, SelectLabelFiltersCorrectly) {
  Dataset ds = MakeSmallClassification();
  Dataset ones = ds.SelectLabel(1);
  EXPECT_EQ(ones.size(), 3u);
  for (std::size_t i = 0; i < ones.size(); ++i) {
    EXPECT_EQ(ones.label(i), 1);
  }
  EXPECT_TRUE(ds.SelectLabel(99).empty());
}

TEST(DatasetTest, AppendConcatenates) {
  Dataset a = MakeSmallClassification();
  Dataset b = MakeSmallClassification();
  a.Append(b);
  EXPECT_EQ(a.size(), 10u);
  EXPECT_EQ(a.label(9), 1);
}

TEST(DatasetTest, MeanAndCovariance) {
  Dataset ds(2);
  ds.Add(Vector{0.0, 0.0});
  ds.Add(Vector{2.0, 4.0});
  linalg::Vector mean = ds.Mean();
  EXPECT_DOUBLE_EQ(mean[0], 1.0);
  EXPECT_DOUBLE_EQ(mean[1], 2.0);
  linalg::Matrix cov = ds.Covariance();
  EXPECT_DOUBLE_EQ(cov(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(cov(1, 1), 4.0);
  EXPECT_DOUBLE_EQ(cov(0, 1), 2.0);
}

TEST(DatasetTest, FeatureNamesValidation) {
  Dataset ds(2);
  EXPECT_FALSE(ds.SetFeatureNames({"only_one"}).ok());
  EXPECT_TRUE(ds.SetFeatureNames({"a", "b"}).ok());
  EXPECT_EQ(ds.feature_names()[1], "b");
}

TEST(DatasetTest, ValidateAcceptsConsistentData) {
  EXPECT_TRUE(MakeSmallClassification().Validate().ok());
  Dataset empty(4);
  EXPECT_TRUE(empty.Validate().ok());
}

TEST(DatasetDeathTest, WrongTaskAccessorsAbort) {
  Dataset ds(1, TaskType::kClassification);
  ds.Add(Vector{0.0}, 1);
  EXPECT_DEATH((void)ds.target(0), "CHECK");
  Dataset reg(1, TaskType::kRegression);
  reg.Add(Vector{0.0}, 1.0);
  EXPECT_DEATH((void)reg.label(0), "CHECK");
}

TEST(DatasetDeathTest, WrongDimensionAborts) {
  Dataset ds(2);
  EXPECT_DEATH(ds.Add(Vector{1.0}), "CHECK");
}

TEST(DatasetDeathTest, WrongAddOverloadAborts) {
  Dataset ds(1);  // unlabeled
  EXPECT_DEATH(ds.Add(Vector{1.0}, 3), "CHECK");
}

}  // namespace
}  // namespace condensa::data
