#include "data/split.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

namespace condensa::data {
namespace {

using linalg::Vector;

Dataset MakeClassification(std::size_t per_class, int classes) {
  Dataset ds(2, TaskType::kClassification);
  for (int c = 0; c < classes; ++c) {
    for (std::size_t i = 0; i < per_class; ++i) {
      ds.Add(Vector{static_cast<double>(c), static_cast<double>(i)}, c);
    }
  }
  return ds;
}

TEST(SplitTrainTestTest, PartitionsAllRecords) {
  Dataset ds = MakeClassification(50, 2);
  Rng rng(1);
  auto split = SplitTrainTest(ds, 0.75, rng);
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(split->train.size() + split->test.size(), ds.size());
  EXPECT_FALSE(split->train.empty());
  EXPECT_FALSE(split->test.empty());
}

TEST(SplitTrainTestTest, ApproximatesRequestedFraction) {
  Dataset ds = MakeClassification(100, 2);
  Rng rng(2);
  auto split = SplitTrainTest(ds, 0.75, rng);
  ASSERT_TRUE(split.ok());
  EXPECT_NEAR(static_cast<double>(split->train.size()) /
                  static_cast<double>(ds.size()),
              0.75, 0.02);
}

TEST(SplitTrainTestTest, StratifiesClasses) {
  Dataset ds = MakeClassification(0, 0);
  // Imbalanced: 90 of class 0, 10 of class 1.
  for (int i = 0; i < 90; ++i) ds.Add(Vector{0.0, static_cast<double>(i)}, 0);
  for (int i = 0; i < 10; ++i) ds.Add(Vector{1.0, static_cast<double>(i)}, 1);
  Rng rng(3);
  auto split = SplitTrainTest(ds, 0.8, rng);
  ASSERT_TRUE(split.ok());
  auto train_by = split->train.IndicesByLabel();
  auto test_by = split->test.IndicesByLabel();
  EXPECT_EQ(train_by[0].size(), 72u);
  EXPECT_EQ(train_by[1].size(), 8u);
  EXPECT_EQ(test_by[0].size(), 18u);
  EXPECT_EQ(test_by[1].size(), 2u);
}

TEST(SplitTrainTestTest, TinyClassesLandOnBothSides) {
  Dataset ds(1, TaskType::kClassification);
  // Class with exactly 2 records must contribute one to each side.
  ds.Add(Vector{0.0}, 0);
  ds.Add(Vector{1.0}, 0);
  for (int i = 0; i < 20; ++i) {
    ds.Add(Vector{static_cast<double>(10 + i)}, 1);
  }
  Rng rng(4);
  auto split = SplitTrainTest(ds, 0.9, rng);
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(split->train.IndicesByLabel()[0].size(), 1u);
  EXPECT_EQ(split->test.IndicesByLabel()[0].size(), 1u);
}

TEST(SplitTrainTestTest, RegressionSplitWorks) {
  Dataset ds(1, TaskType::kRegression);
  for (int i = 0; i < 40; ++i) {
    ds.Add(Vector{static_cast<double>(i)}, static_cast<double>(i));
  }
  Rng rng(5);
  auto split = SplitTrainTest(ds, 0.5, rng);
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(split->train.size(), 20u);
  EXPECT_EQ(split->test.size(), 20u);
}

TEST(SplitTrainTestTest, RejectsBadArguments) {
  Dataset ds = MakeClassification(10, 2);
  Rng rng(6);
  EXPECT_FALSE(SplitTrainTest(Dataset(2), 0.5, rng).ok());
  EXPECT_FALSE(SplitTrainTest(ds, 0.0, rng).ok());
  EXPECT_FALSE(SplitTrainTest(ds, 1.0, rng).ok());
  EXPECT_FALSE(SplitTrainTest(ds, -0.1, rng).ok());
}

TEST(SplitTrainTestTest, IsDeterministicGivenSeed) {
  Dataset ds = MakeClassification(30, 3);
  Rng rng_a(7), rng_b(7);
  auto a = SplitTrainTest(ds, 0.6, rng_a);
  auto b = SplitTrainTest(ds, 0.6, rng_b);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->train.size(), b->train.size());
  for (std::size_t i = 0; i < a->train.size(); ++i) {
    EXPECT_TRUE(
        linalg::ApproxEqual(a->train.record(i), b->train.record(i), 0.0));
  }
}

TEST(MakeFoldsTest, CoverAllIndicesDisjointly) {
  Dataset ds = MakeClassification(25, 2);
  Rng rng(8);
  auto folds = MakeFolds(ds, 5, rng);
  ASSERT_TRUE(folds.ok());
  ASSERT_EQ(folds->size(), 5u);
  std::vector<bool> seen(ds.size(), false);
  for (const auto& fold : *folds) {
    for (std::size_t i : fold) {
      EXPECT_FALSE(seen[i]) << "index appears twice";
      seen[i] = true;
    }
  }
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](bool b) { return b; }));
}

TEST(MakeFoldsTest, BalancedSizes) {
  Dataset ds = MakeClassification(50, 2);
  Rng rng(9);
  auto folds = MakeFolds(ds, 4, rng);
  ASSERT_TRUE(folds.ok());
  for (const auto& fold : *folds) {
    EXPECT_EQ(fold.size(), 25u);
  }
}

TEST(MakeFoldsTest, RejectsBadFoldCounts) {
  Dataset ds = MakeClassification(5, 1);
  Rng rng(10);
  EXPECT_FALSE(MakeFolds(ds, 1, rng).ok());
  EXPECT_FALSE(MakeFolds(ds, 6, rng).ok());
  EXPECT_TRUE(MakeFolds(ds, 5, rng).ok());
}

TEST(ShuffledTest, PermutesButPreservesContent) {
  Dataset ds = MakeClassification(50, 2);
  Rng rng(11);
  Dataset shuffled = Shuffled(ds, rng);
  ASSERT_EQ(shuffled.size(), ds.size());
  // Same multiset of labels.
  std::map<int, int> original_counts, shuffled_counts;
  for (std::size_t i = 0; i < ds.size(); ++i) {
    ++original_counts[ds.label(i)];
    ++shuffled_counts[shuffled.label(i)];
  }
  EXPECT_EQ(original_counts, shuffled_counts);
  // Order actually changed somewhere.
  bool any_moved = false;
  for (std::size_t i = 0; i < ds.size(); ++i) {
    if (!linalg::ApproxEqual(ds.record(i), shuffled.record(i), 0.0)) {
      any_moved = true;
      break;
    }
  }
  EXPECT_TRUE(any_moved);
}

}  // namespace
}  // namespace condensa::data
