#include "data/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace condensa::data {
namespace {

TEST(CsvReadTest, ClassificationWithStringLabels) {
  const std::string content =
      "1.0,2.0,good\n"
      "3.0,4.0,bad\n"
      "5.0,6.0,good\n";
  CsvReadOptions options;
  options.task = TaskType::kClassification;
  auto result = ReadCsvFromString(content, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->dataset.size(), 3u);
  EXPECT_EQ(result->dataset.dim(), 2u);
  EXPECT_EQ(result->label_ids.at("good"), 0);
  EXPECT_EQ(result->label_ids.at("bad"), 1);
  EXPECT_EQ(result->dataset.label(0), 0);
  EXPECT_EQ(result->dataset.label(1), 1);
  EXPECT_EQ(result->dataset.label(2), 0);
  EXPECT_DOUBLE_EQ(result->dataset.record(1)[1], 4.0);
}

TEST(CsvReadTest, RegressionLastColumn) {
  const std::string content = "1.0,10.5\n2.0,11.5\n";
  CsvReadOptions options;
  options.task = TaskType::kRegression;
  auto result = ReadCsvFromString(content, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->dataset.task(), TaskType::kRegression);
  EXPECT_DOUBLE_EQ(result->dataset.target(1), 11.5);
}

TEST(CsvReadTest, UnlabeledKeepsAllColumns) {
  const std::string content = "1,2,3\n4,5,6\n";
  CsvReadOptions options;
  options.task = TaskType::kUnlabeled;
  auto result = ReadCsvFromString(content, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->dataset.dim(), 3u);
  EXPECT_DOUBLE_EQ(result->dataset.record(1)[2], 6.0);
}

TEST(CsvReadTest, HeaderParsedIntoFeatureNames) {
  const std::string content =
      "height,weight,label\n"
      "1.0,2.0,a\n";
  CsvReadOptions options;
  options.has_header = true;
  options.task = TaskType::kClassification;
  auto result = ReadCsvFromString(content, options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->dataset.feature_names().size(), 2u);
  EXPECT_EQ(result->dataset.feature_names()[0], "height");
  EXPECT_EQ(result->dataset.feature_names()[1], "weight");
}

TEST(CsvReadTest, LabelColumnByPositiveIndex) {
  const std::string content = "a,1.0,2.0\nb,3.0,4.0\n";
  CsvReadOptions options;
  options.task = TaskType::kClassification;
  options.label_column = 0;
  auto result = ReadCsvFromString(content, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->dataset.dim(), 2u);
  EXPECT_EQ(result->label_ids.at("b"), 1);
  EXPECT_DOUBLE_EQ(result->dataset.record(1)[0], 3.0);
}

TEST(CsvReadTest, SkipsBlankLines) {
  const std::string content = "1.0,a\n\n  \n2.0,b\n";
  CsvReadOptions options;
  options.task = TaskType::kClassification;
  auto result = ReadCsvFromString(content, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->dataset.size(), 2u);
}

TEST(CsvReadTest, CustomDelimiter) {
  const std::string content = "1.0;2.0;x\n";
  CsvReadOptions options;
  options.delimiter = ';';
  options.task = TaskType::kClassification;
  auto result = ReadCsvFromString(content, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->dataset.dim(), 2u);
}

TEST(CsvReadTest, QuotedLabelWithEmbeddedDelimiter) {
  const std::string content =
      "1.0,2.0,\"good, mostly\"\n"
      "3.0,4.0,bad\n";
  CsvReadOptions options;
  options.task = TaskType::kClassification;
  auto result = ReadCsvFromString(content, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->dataset.size(), 2u);
  EXPECT_EQ(result->label_ids.count("good, mostly"), 1u);
}

TEST(CsvReadTest, EscapedQuotesInsideQuotedField) {
  const std::string content = "1.0,\"she said \"\"hi\"\"\"\n";
  CsvReadOptions options;
  options.task = TaskType::kClassification;
  auto result = ReadCsvFromString(content, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->label_ids.count("she said \"hi\""), 1u);
}

TEST(CsvReadTest, QuotedNumericFieldParses) {
  const std::string content = "\"1.5\",\"2.5\",a\n";
  CsvReadOptions options;
  options.task = TaskType::kClassification;
  auto result = ReadCsvFromString(content, options);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->dataset.record(0)[0], 1.5);
  EXPECT_DOUBLE_EQ(result->dataset.record(0)[1], 2.5);
}

TEST(CsvReadTest, QuotingCanBeDisabled) {
  // Without quote handling the embedded comma splits the field, leaving a
  // non-numeric feature ("\"a"); strict mode must reject the row.
  const std::string content = "1.0,\"a,b\"\n";
  CsvReadOptions options;
  options.task = TaskType::kClassification;
  options.allow_quoting = false;
  options.strict = true;
  EXPECT_FALSE(ReadCsvFromString(content, options).ok());

  options.strict = false;
  auto lenient = ReadCsvFromString(content, options);
  ASSERT_TRUE(lenient.ok());
  EXPECT_EQ(lenient->dataset.size(), 0u);
  EXPECT_EQ(lenient->skipped_rows, 1u);
}

TEST(CsvReadTest, StrictModeFailsOnBadValue) {
  const std::string content = "1.0,a\noops,b\n";
  CsvReadOptions options;
  options.task = TaskType::kClassification;
  options.strict = true;
  EXPECT_FALSE(ReadCsvFromString(content, options).ok());
}

TEST(CsvReadTest, LenientModeSkipsBadRows) {
  const std::string content = "1.0,a\noops,b\n2.0,c\n3.0,4.0,extra\n";
  CsvReadOptions options;
  options.task = TaskType::kClassification;
  options.strict = false;
  auto result = ReadCsvFromString(content, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->dataset.size(), 2u);
  EXPECT_EQ(result->skipped_rows, 2u);
}

TEST(CsvReadTest, StrictModeRejectsNonFiniteValues) {
  // "nan"/"inf" parse as valid doubles, but one of them in an aggregate
  // poisons every statistic computed from it — strict mode must refuse.
  CsvReadOptions options;
  options.task = TaskType::kUnlabeled;
  options.strict = true;
  for (const char* bad : {"nan", "inf", "-inf", "NaN", "Infinity"}) {
    const std::string content = "1.0,2.0\n3.0," + std::string(bad) + "\n";
    auto result = ReadCsvFromString(content, options);
    EXPECT_FALSE(result.ok()) << bad;
    EXPECT_EQ(result.status().code(), StatusCode::kDataLoss) << bad;
    EXPECT_NE(result.status().message().find("non-finite"),
              std::string::npos)
        << bad;
  }
}

TEST(CsvReadTest, LenientModeSkipsNonFiniteRows) {
  const std::string content = "1.0,2.0\n3.0,nan\ninf,4.0\n5.0,6.0\n";
  CsvReadOptions options;
  options.task = TaskType::kUnlabeled;
  options.strict = false;
  auto result = ReadCsvFromString(content, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->dataset.size(), 2u);
  EXPECT_EQ(result->skipped_rows, 2u);
}

TEST(CsvReadTest, NonFiniteRegressionTargetHandledByStrictness) {
  const std::string content = "1.0,2.0\n3.0,inf\n";
  CsvReadOptions options;
  options.task = TaskType::kRegression;
  options.strict = true;
  auto strict = ReadCsvFromString(content, options);
  EXPECT_FALSE(strict.ok());
  EXPECT_EQ(strict.status().code(), StatusCode::kDataLoss);

  options.strict = false;
  auto lenient = ReadCsvFromString(content, options);
  ASSERT_TRUE(lenient.ok());
  EXPECT_EQ(lenient->dataset.size(), 1u);
  EXPECT_EQ(lenient->skipped_rows, 1u);
}

TEST(CsvReadTest, EmptyContentFails) {
  CsvReadOptions options;
  EXPECT_FALSE(ReadCsvFromString("", options).ok());
  EXPECT_FALSE(ReadCsvFromString("\n\n", options).ok());
}

TEST(CsvReadTest, SingleColumnClassificationFails) {
  // Label column consumes the only column: no features left.
  CsvReadOptions options;
  options.task = TaskType::kClassification;
  EXPECT_FALSE(ReadCsvFromString("a\nb\n", options).ok());
}

TEST(CsvCategoricalTest, OneHotExpansionBasic) {
  // Abalone-style: first column categorical (sex), rest numeric.
  const std::string content =
      "M,0.5,10.5\n"
      "F,0.4,9.0\n"
      "I,0.2,4.5\n"
      "M,0.6,12.0\n";
  CsvReadOptions options;
  options.task = data::TaskType::kRegression;
  options.categorical_columns = {0};
  auto result = ReadCsvFromString(content, options);
  ASSERT_TRUE(result.ok());
  // Dim: 3 one-hot (M, F, I in first-seen order) + 1 numeric feature.
  EXPECT_EQ(result->dataset.dim(), 4u);
  ASSERT_EQ(result->categorical_values.at(0).size(), 3u);
  EXPECT_EQ(result->categorical_values.at(0)[0], "M");
  EXPECT_EQ(result->categorical_values.at(0)[1], "F");
  EXPECT_EQ(result->categorical_values.at(0)[2], "I");
  // Row 0: M -> (1,0,0), then 0.5.
  EXPECT_DOUBLE_EQ(result->dataset.record(0)[0], 1.0);
  EXPECT_DOUBLE_EQ(result->dataset.record(0)[1], 0.0);
  EXPECT_DOUBLE_EQ(result->dataset.record(0)[2], 0.0);
  EXPECT_DOUBLE_EQ(result->dataset.record(0)[3], 0.5);
  // Row 2: I -> (0,0,1).
  EXPECT_DOUBLE_EQ(result->dataset.record(2)[2], 1.0);
  EXPECT_DOUBLE_EQ(result->dataset.target(2), 4.5);
}

TEST(CsvCategoricalTest, HeaderNamesExpand) {
  const std::string content =
      "sex,len,rings\n"
      "M,0.5,10\n"
      "F,0.4,9\n";
  CsvReadOptions options;
  options.has_header = true;
  options.task = data::TaskType::kRegression;
  options.categorical_columns = {0};
  auto result = ReadCsvFromString(content, options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->dataset.feature_names().size(), 3u);
  EXPECT_EQ(result->dataset.feature_names()[0], "sex=M");
  EXPECT_EQ(result->dataset.feature_names()[1], "sex=F");
  EXPECT_EQ(result->dataset.feature_names()[2], "len");
}

TEST(CsvCategoricalTest, NegativeIndexAndValidation) {
  const std::string content = "0.5,M,a\n0.4,F,b\n";
  CsvReadOptions options;
  options.task = data::TaskType::kClassification;  // label = last column
  options.categorical_columns = {-2};              // the middle column
  auto result = ReadCsvFromString(content, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->dataset.dim(), 3u);  // 1 numeric + 2 one-hot

  // Categorical overlapping the label column is rejected.
  CsvReadOptions bad = options;
  bad.categorical_columns = {-1};
  EXPECT_FALSE(ReadCsvFromString(content, bad).ok());

  // Duplicate categorical columns are rejected.
  CsvReadOptions dup = options;
  dup.categorical_columns = {1, -2};
  EXPECT_FALSE(ReadCsvFromString(content, dup).ok());

  // Out-of-range column is rejected.
  CsvReadOptions oob = options;
  oob.categorical_columns = {7};
  EXPECT_FALSE(ReadCsvFromString(content, oob).ok());
}

TEST(CsvCategoricalTest, PipelineFeedsCondensation) {
  // End-to-end: categorical CSV -> one-hot dataset -> it is numeric, so
  // it condenses like any other dataset.
  const std::string content =
      "A,1.0,x\nB,2.0,x\nA,1.5,y\nB,2.5,y\nA,0.5,x\nB,3.0,y\n";
  CsvReadOptions options;
  options.task = data::TaskType::kClassification;
  options.categorical_columns = {0};
  auto result = ReadCsvFromString(content, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->dataset.dim(), 3u);
  EXPECT_EQ(result->dataset.size(), 6u);
  EXPECT_TRUE(result->dataset.Validate().ok());
}

TEST(CsvReadTest, MissingFileReportsNotFound) {
  CsvReadOptions options;
  auto result = ReadCsv("/nonexistent/path/file.csv", options);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(IsNotFound(result.status()));
}

TEST(CsvRoundTripTest, ClassificationSurvivesWriteRead) {
  Dataset ds(2, TaskType::kClassification);
  ds.Add(linalg::Vector{1.25, -3.5}, 0);
  ds.Add(linalg::Vector{0.0, 7.125}, 2);
  ASSERT_TRUE(ds.SetFeatureNames({"x", "y"}).ok());

  std::string csv = WriteCsvToString(ds);
  CsvReadOptions options;
  options.has_header = true;
  options.task = TaskType::kClassification;
  auto result = ReadCsvFromString(csv, options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->dataset.size(), 2u);
  EXPECT_DOUBLE_EQ(result->dataset.record(0)[0], 1.25);
  EXPECT_DOUBLE_EQ(result->dataset.record(1)[1], 7.125);
  // Labels remapped densely in first-seen order: 0 -> 0, 2 -> 1.
  EXPECT_EQ(result->dataset.label(0), 0);
  EXPECT_EQ(result->dataset.label(1), 1);
}

TEST(CsvRoundTripTest, RegressionSurvivesWriteReadViaFile) {
  Dataset ds(1, TaskType::kRegression);
  ds.Add(linalg::Vector{1.5}, 9.25);
  ds.Add(linalg::Vector{2.5}, 10.75);

  const std::string path = ::testing::TempDir() + "/condensa_csv_test.csv";
  ASSERT_TRUE(WriteCsv(ds, path).ok());

  CsvReadOptions options;
  options.task = TaskType::kRegression;
  auto result = ReadCsv(path, options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->dataset.size(), 2u);
  EXPECT_DOUBLE_EQ(result->dataset.target(0), 9.25);
  EXPECT_DOUBLE_EQ(result->dataset.record(1)[0], 2.5);
  std::remove(path.c_str());
}

TEST(CsvWriteTest, NoHeaderWithoutFeatureNames) {
  Dataset ds(1);
  ds.Add(linalg::Vector{4.0});
  EXPECT_EQ(WriteCsvToString(ds), "4\n");
}

}  // namespace
}  // namespace condensa::data
