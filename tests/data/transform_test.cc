#include "data/transform.h"

#include <gtest/gtest.h>

#include <cmath>

namespace condensa::data {
namespace {

using linalg::Vector;

Dataset MakeSimple() {
  Dataset ds(2);
  ds.Add(Vector{0.0, 10.0});
  ds.Add(Vector{2.0, 20.0});
  ds.Add(Vector{4.0, 30.0});
  return ds;
}

TEST(ZScoreScalerTest, FitComputesMeanAndStddev) {
  ZScoreScaler scaler;
  ASSERT_TRUE(scaler.Fit(MakeSimple()).ok());
  EXPECT_TRUE(scaler.fitted());
  EXPECT_DOUBLE_EQ(scaler.mean()[0], 2.0);
  EXPECT_DOUBLE_EQ(scaler.mean()[1], 20.0);
  EXPECT_NEAR(scaler.stddev()[0], std::sqrt(8.0 / 3.0), 1e-12);
}

TEST(ZScoreScalerTest, TransformedDataHasZeroMeanUnitVariance) {
  Dataset ds = MakeSimple();
  ZScoreScaler scaler;
  ASSERT_TRUE(scaler.Fit(ds).ok());
  Dataset scaled = scaler.TransformDataset(ds);
  linalg::Vector mean = scaled.Mean();
  linalg::Matrix cov = scaled.Covariance();
  EXPECT_NEAR(mean[0], 0.0, 1e-12);
  EXPECT_NEAR(mean[1], 0.0, 1e-12);
  EXPECT_NEAR(cov(0, 0), 1.0, 1e-12);
  EXPECT_NEAR(cov(1, 1), 1.0, 1e-12);
}

TEST(ZScoreScalerTest, InverseUndoesTransform) {
  Dataset ds = MakeSimple();
  ZScoreScaler scaler;
  ASSERT_TRUE(scaler.Fit(ds).ok());
  Vector original{3.0, 17.0};
  Vector recovered = scaler.InverseTransform(scaler.Transform(original));
  EXPECT_TRUE(linalg::ApproxEqual(recovered, original, 1e-12));

  Dataset round_trip =
      scaler.InverseTransformDataset(scaler.TransformDataset(ds));
  for (std::size_t i = 0; i < ds.size(); ++i) {
    EXPECT_TRUE(
        linalg::ApproxEqual(round_trip.record(i), ds.record(i), 1e-12));
  }
}

TEST(ZScoreScalerTest, ConstantDimensionShiftsOnly) {
  Dataset ds(1);
  ds.Add(Vector{5.0});
  ds.Add(Vector{5.0});
  ZScoreScaler scaler;
  ASSERT_TRUE(scaler.Fit(ds).ok());
  Vector transformed = scaler.Transform(Vector{5.0});
  EXPECT_DOUBLE_EQ(transformed[0], 0.0);
  Vector other = scaler.Transform(Vector{7.0});
  EXPECT_DOUBLE_EQ(other[0], 2.0);  // stddev treated as 1
}

TEST(ZScoreScalerTest, FitFailsOnEmpty) {
  ZScoreScaler scaler;
  EXPECT_FALSE(scaler.Fit(Dataset(2)).ok());
  EXPECT_FALSE(scaler.fitted());
}

TEST(ZScoreScalerTest, PreservesSupervision) {
  Dataset ds(1, TaskType::kClassification);
  ds.Add(Vector{1.0}, 7);
  ds.Add(Vector{3.0}, 8);
  ZScoreScaler scaler;
  ASSERT_TRUE(scaler.Fit(ds).ok());
  Dataset scaled = scaler.TransformDataset(ds);
  EXPECT_EQ(scaled.label(0), 7);
  EXPECT_EQ(scaled.label(1), 8);
}

TEST(MinMaxScalerTest, MapsToUnitInterval) {
  Dataset ds = MakeSimple();
  MinMaxScaler scaler;
  ASSERT_TRUE(scaler.Fit(ds).ok());
  Dataset scaled = scaler.TransformDataset(ds);
  for (std::size_t i = 0; i < scaled.size(); ++i) {
    for (std::size_t j = 0; j < scaled.dim(); ++j) {
      EXPECT_GE(scaled.record(i)[j], 0.0);
      EXPECT_LE(scaled.record(i)[j], 1.0);
    }
  }
  EXPECT_DOUBLE_EQ(scaled.record(0)[0], 0.0);
  EXPECT_DOUBLE_EQ(scaled.record(2)[0], 1.0);
}

TEST(MinMaxScalerTest, InverseUndoesTransform) {
  Dataset ds = MakeSimple();
  MinMaxScaler scaler;
  ASSERT_TRUE(scaler.Fit(ds).ok());
  Vector original{1.0, 25.0};
  Vector recovered = scaler.InverseTransform(scaler.Transform(original));
  EXPECT_TRUE(linalg::ApproxEqual(recovered, original, 1e-12));
}

TEST(MinMaxScalerTest, ConstantDimensionMapsToZero) {
  Dataset ds(1);
  ds.Add(Vector{3.0});
  ds.Add(Vector{3.0});
  MinMaxScaler scaler;
  ASSERT_TRUE(scaler.Fit(ds).ok());
  EXPECT_DOUBLE_EQ(scaler.Transform(Vector{3.0})[0], 0.0);
}

TEST(MinMaxScalerTest, FitFailsOnEmpty) {
  MinMaxScaler scaler;
  EXPECT_FALSE(scaler.Fit(Dataset(1)).ok());
}

}  // namespace
}  // namespace condensa::data
