#include "runtime/admission.h"

#include <optional>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace condensa::runtime {
namespace {

TEST(AdmissionGateTest, AdmitsUpToCapacityThenRejects) {
  AdmissionGate gate(2);
  auto a = gate.TryEnter();
  auto b = gate.TryEnter();
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(gate.inflight(), 2u);

  auto c = gate.TryEnter();
  EXPECT_FALSE(c.has_value());
  EXPECT_EQ(gate.rejected(), 1u);
  EXPECT_EQ(gate.inflight(), 2u);
}

TEST(AdmissionGateTest, TicketReleasesSlotOnDestruction) {
  AdmissionGate gate(1);
  {
    auto t = gate.TryEnter();
    ASSERT_TRUE(t.has_value());
    EXPECT_FALSE(gate.TryEnter().has_value());
  }
  EXPECT_EQ(gate.inflight(), 0u);
  EXPECT_TRUE(gate.TryEnter().has_value());
}

TEST(AdmissionGateTest, MoveTransfersOwnership) {
  AdmissionGate gate(1);
  auto t = gate.TryEnter();
  ASSERT_TRUE(t.has_value());

  AdmissionGate::Ticket moved(std::move(*t));
  EXPECT_EQ(gate.inflight(), 1u);
  t.reset();  // moved-from ticket must not double-release
  EXPECT_EQ(gate.inflight(), 1u);

  AdmissionGate::Ticket assigned;
  assigned = std::move(moved);
  EXPECT_EQ(gate.inflight(), 1u);
}

TEST(AdmissionGateTest, HighWaterTracksDeepestAdmission) {
  AdmissionGate gate(4);
  EXPECT_EQ(gate.high_water(), 0u);
  {
    auto a = gate.TryEnter();
    auto b = gate.TryEnter();
    auto c = gate.TryEnter();
    EXPECT_EQ(gate.high_water(), 3u);
  }
  EXPECT_EQ(gate.inflight(), 0u);
  EXPECT_EQ(gate.high_water(), 3u);
  auto d = gate.TryEnter();
  EXPECT_EQ(gate.high_water(), 3u);
}

TEST(AdmissionGateTest, ConcurrentChurnNeverExceedsCapacity) {
  constexpr std::size_t kCapacity = 3;
  AdmissionGate gate(kCapacity);
  std::vector<std::thread> threads;
  threads.reserve(8);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 2000; ++i) {
        auto ticket = gate.TryEnter();
        if (ticket.has_value()) {
          EXPECT_LE(gate.inflight(), kCapacity);
        }
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(gate.inflight(), 0u);
  EXPECT_LE(gate.high_water(), kCapacity);
}

}  // namespace
}  // namespace condensa::runtime
