#include "runtime/retry.h"

#include <gtest/gtest.h>

#include <vector>

namespace condensa::runtime {
namespace {

TEST(RetryTest, OnlyTransientCodesAreRetryable) {
  EXPECT_TRUE(IsRetryable(DataLossError("torn write")));
  EXPECT_TRUE(IsRetryable(UnavailableError("disk busy")));
  EXPECT_TRUE(IsRetryable(ResourceExhaustedError("queue full")));
  EXPECT_FALSE(IsRetryable(OkStatus()));
  EXPECT_FALSE(IsRetryable(InvalidArgumentError("bad record")));
  EXPECT_FALSE(IsRetryable(InternalError("eigensolver diverged")));
  EXPECT_FALSE(IsRetryable(FailedPreconditionError("poisoned")));
  EXPECT_FALSE(IsRetryable(NotFoundError("missing")));
}

TEST(RetryTest, BackoffGrowsExponentiallyAndCaps) {
  RetryPolicy policy{.max_attempts = 10,
                     .initial_backoff_ms = 1.0,
                     .backoff_multiplier = 2.0,
                     .max_backoff_ms = 8.0,
                     .jitter_fraction = 0.0};
  Rng rng(1);
  EXPECT_DOUBLE_EQ(BackoffDelayMs(policy, 1, rng), 1.0);
  EXPECT_DOUBLE_EQ(BackoffDelayMs(policy, 2, rng), 2.0);
  EXPECT_DOUBLE_EQ(BackoffDelayMs(policy, 3, rng), 4.0);
  EXPECT_DOUBLE_EQ(BackoffDelayMs(policy, 4, rng), 8.0);
  EXPECT_DOUBLE_EQ(BackoffDelayMs(policy, 9, rng), 8.0);  // capped
}

TEST(RetryTest, JitterStaysWithinFraction) {
  RetryPolicy policy{.max_attempts = 10,
                     .initial_backoff_ms = 10.0,
                     .backoff_multiplier = 1.0,
                     .max_backoff_ms = 10.0,
                     .jitter_fraction = 0.2};
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const double delay = BackoffDelayMs(policy, 1, rng);
    EXPECT_GE(delay, 8.0);
    EXPECT_LE(delay, 12.0);
  }
}

TEST(RetryTest, SucceedsAfterTransientFailures) {
  RetryPolicy policy{.max_attempts = 5, .initial_backoff_ms = 1.0};
  Rng rng(2);
  int calls = 0;
  std::vector<double> delays;
  std::size_t retries = 0;
  Status status = RetryWithBackoff(
      policy, nullptr, rng,
      [&]() -> Status {
        ++calls;
        return calls < 3 ? UnavailableError("flaky") : OkStatus();
      },
      [&](double ms) { delays.push_back(ms); }, &retries);
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(retries, 2u);
  EXPECT_EQ(delays.size(), 2u);
}

TEST(RetryTest, NonRetryableReturnsImmediately) {
  RetryPolicy policy{.max_attempts = 5};
  Rng rng(3);
  int calls = 0;
  Status status = RetryWithBackoff(
      policy, nullptr, rng,
      [&]() -> Status {
        ++calls;
        return InternalError("deterministic");
      },
      [](double) {});
  EXPECT_TRUE(IsInternal(status));
  EXPECT_EQ(calls, 1);
}

TEST(RetryTest, ExhaustsAttemptsAndReturnsLastError) {
  RetryPolicy policy{.max_attempts = 3};
  Rng rng(4);
  int calls = 0;
  std::size_t retries = 0;
  Status status = RetryWithBackoff(
      policy, nullptr, rng,
      [&]() -> Status {
        ++calls;
        return DataLossError("still broken " + std::to_string(calls));
      },
      [](double) {}, &retries);
  EXPECT_TRUE(IsDataLoss(status));
  EXPECT_NE(status.message().find("3"), std::string::npos);
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(retries, 2u);
}

TEST(RetryTest, BudgetLimitsRetriesAcrossOperations) {
  RetryPolicy policy{.max_attempts = 4};
  RetryBudget budget(3);
  Rng rng(5);
  int calls = 0;
  auto always_fail = [&]() -> Status {
    ++calls;
    return UnavailableError("down");
  };
  // First op: 1 attempt + 3 retries drain the budget.
  EXPECT_FALSE(
      RetryWithBackoff(policy, &budget, rng, always_fail, [](double) {}).ok());
  EXPECT_EQ(calls, 4);
  EXPECT_EQ(budget.remaining(), 0u);
  // Second op: first attempt only.
  calls = 0;
  EXPECT_FALSE(
      RetryWithBackoff(policy, &budget, rng, always_fail, [](double) {}).ok());
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(budget.spent(), 3u);
}

TEST(RetryTest, SingleAttemptPolicyNeverRetries) {
  RetryPolicy policy{.max_attempts = 1};
  Rng rng(6);
  int calls = 0;
  Status status = RetryWithBackoff(policy, nullptr, rng, [&]() -> Status {
    ++calls;
    return UnavailableError("down");
  });
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace condensa::runtime
