#include "runtime/quarantine.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <limits>
#include <string>

#include "linalg/vector.h"

namespace condensa::runtime {
namespace {

using linalg::Vector;

class QuarantineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/condensa_quarantine_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".log";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(QuarantineTest, WriteThenReadAllRoundTrips) {
  auto writer = QuarantineWriter::Open(path_, 3);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer
                  ->Write(Vector{0.5, -1.25, 3.0},
                          QuarantineReason::kNonFinite, "attribute 1")
                  .ok());
  ASSERT_TRUE(writer
                  ->Write(Vector{9e300, 0.0, -2.5},
                          QuarantineReason::kRepeatedFailure,
                          "INTERNAL: eigensolver diverged")
                  .ok());
  EXPECT_EQ(writer->count(), 2u);
  EXPECT_EQ(writer->count(QuarantineReason::kNonFinite), 1u);
  EXPECT_EQ(writer->count(QuarantineReason::kRepeatedFailure), 1u);
  EXPECT_EQ(writer->count(QuarantineReason::kDimensionMismatch), 0u);

  auto entries = QuarantineWriter::ReadAll(path_);
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries->size(), 2u);
  EXPECT_EQ((*entries)[0].reason, QuarantineReason::kNonFinite);
  EXPECT_EQ((*entries)[0].detail, "attribute 1");
  EXPECT_EQ((*entries)[0].values, (std::vector<double>{0.5, -1.25, 3.0}));
  EXPECT_EQ((*entries)[1].reason, QuarantineReason::kRepeatedFailure);
  EXPECT_EQ((*entries)[1].values, (std::vector<double>{9e300, 0.0, -2.5}));
}

TEST_F(QuarantineTest, NonFiniteValuesSurviveTheRoundTrip) {
  auto writer = QuarantineWriter::Open(path_, 2);
  ASSERT_TRUE(writer.ok());
  const double nan = std::nan("");
  const double inf = std::numeric_limits<double>::infinity();
  ASSERT_TRUE(
      writer->Write(Vector{nan, inf}, QuarantineReason::kNonFinite, "").ok());
  auto entries = QuarantineWriter::ReadAll(path_);
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries->size(), 1u);
  EXPECT_TRUE(std::isnan((*entries)[0].values[0]));
  EXPECT_TRUE(std::isinf((*entries)[0].values[1]));
}

TEST_F(QuarantineTest, DetailIsSanitizedOfTabsAndNewlines) {
  auto writer = QuarantineWriter::Open(path_, 1);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer
                  ->Write(Vector{1.0}, QuarantineReason::kDimensionMismatch,
                          "line1\nline2\tcolumn")
                  .ok());
  auto entries = QuarantineWriter::ReadAll(path_);
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries->size(), 1u);
  EXPECT_EQ((*entries)[0].detail, "line1 line2 column");
}

TEST_F(QuarantineTest, ReopenAppendsToExistingFile) {
  {
    auto writer = QuarantineWriter::Open(path_, 2);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer
                    ->Write(Vector{1.0, 2.0},
                            QuarantineReason::kDimensionMismatch, "first run")
                    .ok());
  }
  {
    auto writer = QuarantineWriter::Open(path_, 2);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer
                    ->Write(Vector{3.0, 4.0}, QuarantineReason::kNonFinite,
                            "second run")
                    .ok());
    // Counts are per-writer, not per-file.
    EXPECT_EQ(writer->count(), 1u);
  }
  auto entries = QuarantineWriter::ReadAll(path_);
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries->size(), 2u);
  EXPECT_EQ((*entries)[0].detail, "first run");
  EXPECT_EQ((*entries)[1].detail, "second run");
}

TEST_F(QuarantineTest, ReadAllRejectsNonQuarantineFile) {
  auto missing = QuarantineWriter::ReadAll(path_);
  EXPECT_FALSE(missing.ok());

  FILE* file = std::fopen(path_.c_str(), "w");
  ASSERT_NE(file, nullptr);
  std::fputs("not a quarantine file\n", file);
  std::fclose(file);
  auto wrong = QuarantineWriter::ReadAll(path_);
  ASSERT_FALSE(wrong.ok());
  EXPECT_TRUE(IsDataLoss(wrong.status()));
}

TEST_F(QuarantineTest, ReasonNamesAreStable) {
  EXPECT_STREQ(QuarantineReasonName(QuarantineReason::kDimensionMismatch),
               "dimension-mismatch");
  EXPECT_STREQ(QuarantineReasonName(QuarantineReason::kNonFinite),
               "non-finite");
  EXPECT_STREQ(QuarantineReasonName(QuarantineReason::kRepeatedFailure),
               "repeated-failure");
}

}  // namespace
}  // namespace condensa::runtime
