#include "runtime/bounded_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace condensa::runtime {
namespace {

TEST(BoundedQueueTest, FifoWithinCapacity) {
  BoundedQueue<int> queue(8, BackpressurePolicy::kBlock);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(queue.Push(i).status.ok());
  }
  EXPECT_EQ(queue.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    auto item = queue.Pop();
    ASSERT_TRUE(item.has_value());
    EXPECT_EQ(*item, i);
  }
}

TEST(BoundedQueueTest, BlockPolicyWaitsForConsumer) {
  BoundedQueue<int> queue(2, BackpressurePolicy::kBlock);
  ASSERT_TRUE(queue.Push(1).status.ok());
  ASSERT_TRUE(queue.Push(2).status.ok());

  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(queue.Push(3).status.ok());  // blocks until a Pop
    pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(pushed.load());
  EXPECT_EQ(queue.Pop().value(), 1);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(queue.size(), 2u);
  EXPECT_LE(queue.high_water(), queue.capacity());
}

TEST(BoundedQueueTest, DropOldestHandsBackEvictedRecord) {
  BoundedQueue<int> queue(2, BackpressurePolicy::kDropOldest);
  ASSERT_TRUE(queue.Push(1).status.ok());
  ASSERT_TRUE(queue.Push(2).status.ok());
  auto result = queue.Push(3);
  EXPECT_TRUE(result.status.ok());
  ASSERT_TRUE(result.evicted.has_value());
  EXPECT_EQ(*result.evicted, 1);
  EXPECT_EQ(queue.dropped(), 1u);
  EXPECT_EQ(queue.size(), 2u);
  EXPECT_EQ(queue.Pop().value(), 2);
  EXPECT_EQ(queue.Pop().value(), 3);
}

TEST(BoundedQueueTest, RejectPolicyReturnsResourceExhausted) {
  BoundedQueue<int> queue(1, BackpressurePolicy::kReject);
  ASSERT_TRUE(queue.Push(1).status.ok());
  auto result = queue.Push(2);
  EXPECT_TRUE(IsResourceExhausted(result.status));
  EXPECT_FALSE(result.evicted.has_value());
  EXPECT_EQ(queue.rejected(), 1u);
  EXPECT_EQ(queue.size(), 1u);
}

TEST(BoundedQueueTest, CloseDrainsRemainingItemsThenSignalsEmpty) {
  BoundedQueue<int> queue(4, BackpressurePolicy::kBlock);
  ASSERT_TRUE(queue.Push(1).status.ok());
  ASSERT_TRUE(queue.Push(2).status.ok());
  queue.Close();
  EXPECT_TRUE(IsFailedPrecondition(queue.Push(3).status));
  EXPECT_EQ(queue.Pop().value(), 1);
  EXPECT_EQ(queue.Pop().value(), 2);
  EXPECT_FALSE(queue.Pop().has_value());
}

TEST(BoundedQueueTest, CloseUnblocksWaitingProducer) {
  BoundedQueue<int> queue(1, BackpressurePolicy::kBlock);
  ASSERT_TRUE(queue.Push(1).status.ok());
  std::thread producer([&] {
    EXPECT_TRUE(IsFailedPrecondition(queue.Push(2).status));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  queue.Close();
  producer.join();
}

TEST(BoundedQueueTest, PopBatchTakesWhatIsQueued) {
  BoundedQueue<int> queue(16, BackpressurePolicy::kBlock);
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(queue.Push(i).status.ok());
  }
  std::vector<int> batch;
  EXPECT_EQ(queue.PopBatch(&batch, 4, std::chrono::milliseconds(10)), 4u);
  EXPECT_EQ(batch, (std::vector<int>{0, 1, 2, 3}));
  batch.clear();
  EXPECT_EQ(queue.PopBatch(&batch, 4, std::chrono::milliseconds(10)), 2u);
  EXPECT_EQ(batch, (std::vector<int>{4, 5}));
  batch.clear();
  EXPECT_EQ(queue.PopBatch(&batch, 4, std::chrono::milliseconds(5)), 0u);
}

TEST(BoundedQueueTest, HighWaterNeverExceedsCapacity) {
  BoundedQueue<int> queue(4, BackpressurePolicy::kDropOldest);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(queue.Push(i).status.ok());
  }
  EXPECT_EQ(queue.high_water(), 4u);
  EXPECT_EQ(queue.dropped(), 96u);
}

TEST(BoundedQueueTest, ManyProducersOneConsumerLosesNothing) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 500;
  BoundedQueue<int> queue(16, BackpressurePolicy::kBlock);
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(queue.Push(p * kPerProducer + i).status.ok());
      }
    });
  }
  std::vector<int> seen;
  std::thread consumer([&] {
    while (seen.size() < kProducers * kPerProducer) {
      auto item = queue.Pop();
      if (item.has_value()) {
        seen.push_back(*item);
      }
    }
  });
  for (auto& thread : producers) {
    thread.join();
  }
  consumer.join();
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(kProducers * kPerProducer));
  EXPECT_LE(queue.high_water(), queue.capacity());
}

TEST(BoundedQueueTest, PolicyNamesRoundTrip) {
  for (BackpressurePolicy policy :
       {BackpressurePolicy::kBlock, BackpressurePolicy::kDropOldest,
        BackpressurePolicy::kReject}) {
    BackpressurePolicy parsed;
    ASSERT_TRUE(ParseBackpressurePolicy(BackpressurePolicyName(policy),
                                        &parsed));
    EXPECT_EQ(parsed, policy);
  }
  BackpressurePolicy parsed;
  EXPECT_FALSE(ParseBackpressurePolicy("drop-newest", &parsed));
}

}  // namespace
}  // namespace condensa::runtime
