#include "runtime/circuit_breaker.h"

#include <gtest/gtest.h>

namespace condensa::runtime {
namespace {

constexpr CircuitBreakerOptions kOptions{.failure_threshold = 3,
                                         .open_duration_ms = 100.0,
                                         .probe_successes_to_close = 2};

TEST(CircuitBreakerTest, StaysClosedBelowThreshold) {
  double now = 0.0;
  CircuitBreaker breaker(kOptions, [&] { return now; });
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(breaker.AllowRequest());
    breaker.RecordFailure();
  }
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  // A success resets the consecutive-failure count.
  breaker.RecordSuccess();
  breaker.RecordFailure();
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
}

TEST(CircuitBreakerTest, TripsAtThresholdAndRefusesWhileOpen) {
  double now = 0.0;
  CircuitBreaker breaker(kOptions, [&] { return now; });
  for (int i = 0; i < 3; ++i) {
    breaker.RecordFailure();
  }
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.trip_count(), 1u);
  now = 50.0;  // still cooling down
  EXPECT_FALSE(breaker.AllowRequest());
}

TEST(CircuitBreakerTest, HalfOpenAdmitsOneProbeAtATime) {
  double now = 0.0;
  CircuitBreaker breaker(kOptions, [&] { return now; });
  for (int i = 0; i < 3; ++i) {
    breaker.RecordFailure();
  }
  now = 101.0;  // cooldown elapsed
  EXPECT_TRUE(breaker.AllowRequest());  // admitted as the probe
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  EXPECT_FALSE(breaker.AllowRequest());  // probe in flight
  breaker.RecordSuccess();
  EXPECT_TRUE(breaker.AllowRequest());  // next probe
}

TEST(CircuitBreakerTest, ProbeSuccessesCloseTheBreaker) {
  double now = 0.0;
  CircuitBreaker breaker(kOptions, [&] { return now; });
  for (int i = 0; i < 3; ++i) {
    breaker.RecordFailure();
  }
  now = 200.0;
  ASSERT_TRUE(breaker.AllowRequest());
  breaker.RecordSuccess();
  ASSERT_TRUE(breaker.AllowRequest());
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.AllowRequest());
}

TEST(CircuitBreakerTest, ProbeFailureReopensAndRestartsCooldown) {
  double now = 0.0;
  CircuitBreaker breaker(kOptions, [&] { return now; });
  for (int i = 0; i < 3; ++i) {
    breaker.RecordFailure();
  }
  now = 150.0;
  ASSERT_TRUE(breaker.AllowRequest());
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.trip_count(), 2u);
  now = 200.0;  // only 50ms into the fresh cooldown
  EXPECT_FALSE(breaker.AllowRequest());
  now = 251.0;
  EXPECT_TRUE(breaker.AllowRequest());
}

TEST(CircuitBreakerTest, ForceTripOpensFromAnyStateAndExtendsCooldown) {
  double now = 0.0;
  CircuitBreaker breaker(kOptions, [&] { return now; });
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  breaker.ForceTrip();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.trip_count(), 1u);
  // Tripping again while open restarts the cooldown clock.
  now = 90.0;
  breaker.ForceTrip();
  EXPECT_EQ(breaker.trip_count(), 1u);
  now = 150.0;  // 60ms after the second trip
  EXPECT_FALSE(breaker.AllowRequest());
  now = 191.0;
  EXPECT_TRUE(breaker.AllowRequest());
}

TEST(CircuitBreakerTest, StateNamesAreStable) {
  EXPECT_STREQ(CircuitBreaker::StateName(CircuitBreaker::State::kClosed),
               "closed");
  EXPECT_STREQ(CircuitBreaker::StateName(CircuitBreaker::State::kOpen),
               "open");
  EXPECT_STREQ(CircuitBreaker::StateName(CircuitBreaker::State::kHalfOpen),
               "half-open");
}

}  // namespace
}  // namespace condensa::runtime
