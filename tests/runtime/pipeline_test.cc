#include "runtime/pipeline.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "common/io.h"
#include "common/random.h"
#include "core/checkpointing.h"
#include "linalg/vector.h"

namespace condensa::runtime {
namespace {

using linalg::Vector;

void WipeDir(const std::string& dir) {
  if (auto entries = ListDirectory(dir); entries.ok()) {
    for (const std::string& name : *entries) {
      RemoveFile(dir + "/" + name);
    }
  }
}

class PipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FailPoint::Reset();
    dir_ = ::testing::TempDir() + "/condensa_pipeline_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    WipeDir(dir_);
    CreateDirectories(dir_);
    WipeDir(dir_);
  }
  void TearDown() override { FailPoint::Reset(); }

  StreamPipelineConfig Config() const {
    StreamPipelineConfig config;
    config.dim = 3;
    config.group_size = 4;
    config.checkpoint_dir = dir_;
    config.snapshot_interval = 16;
    config.queue_capacity = 32;
    config.batch_size = 8;
    config.seed = 99;
    return config;
  }

  std::vector<Vector> Stream(std::size_t count, std::uint64_t seed) const {
    Rng rng(seed);
    std::vector<Vector> records;
    records.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      Vector record(3);
      for (std::size_t j = 0; j < 3; ++j) {
        record[j] = rng.Gaussian(static_cast<double>(j), 1.5);
      }
      records.push_back(std::move(record));
    }
    return records;
  }

  std::string dir_;
};

TEST_F(PipelineTest, ConfigValidationRefusesBadValues) {
  {
    StreamPipelineConfig config = Config();
    config.dim = 0;
    EXPECT_TRUE(IsInvalidArgument(config.Validate()));
  }
  {
    StreamPipelineConfig config = Config();
    config.group_size = 1;  // k = 1 gives no indistinguishability
    EXPECT_TRUE(IsInvalidArgument(config.Validate()));
    EXPECT_FALSE(StreamPipeline::Start(config).ok());
  }
  {
    StreamPipelineConfig config = Config();
    config.checkpoint_dir.clear();
    EXPECT_TRUE(IsInvalidArgument(config.Validate()));
  }
  {
    StreamPipelineConfig config = Config();
    config.snapshot_interval = 0;
    EXPECT_TRUE(IsInvalidArgument(config.Validate()));
  }
  {
    StreamPipelineConfig config = Config();
    config.queue_capacity = 0;
    EXPECT_TRUE(IsInvalidArgument(config.Validate()));
  }
  {
    StreamPipelineConfig config = Config();
    config.retry.jitter_fraction = 1.5;
    EXPECT_TRUE(IsInvalidArgument(config.Validate()));
  }
  EXPECT_TRUE(Config().Validate().ok());
}

TEST_F(PipelineTest, StreamsRecordsThroughToDurableCondenser) {
  auto pipeline = StreamPipeline::Start(Config());
  ASSERT_TRUE(pipeline.ok());
  const std::vector<Vector> records = Stream(200, 1);
  for (const Vector& record : records) {
    ASSERT_TRUE((*pipeline)->Submit(record).ok());
  }
  auto stats = (*pipeline)->Finish();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->submitted, 200u);
  EXPECT_EQ(stats->accepted, 200u);
  EXPECT_EQ(stats->applied, 200u);
  EXPECT_EQ(stats->quarantined, 0u);
  EXPECT_EQ(stats->spool_remaining, 0u);
  EXPECT_TRUE(stats->Balanced());
  EXPECT_EQ((*pipeline)->records_seen(), 200u);
  // Group invariant: every group within [k, 2k - 1] once past warm-up.
  const auto& groups = (*pipeline)->groups();
  EXPECT_GT(groups.num_groups(), 0u);
  EXPECT_EQ(groups.TotalRecords(), 200u);

  // Submitting after Finish is refused.
  EXPECT_TRUE(IsFailedPrecondition((*pipeline)->Submit(records[0])));
}

TEST_F(PipelineTest, FinishedStateIsRecoverable) {
  std::size_t applied = 0;
  {
    auto pipeline = StreamPipeline::Start(Config());
    ASSERT_TRUE(pipeline.ok());
    for (const Vector& record : Stream(120, 2)) {
      ASSERT_TRUE((*pipeline)->Submit(record).ok());
    }
    auto stats = (*pipeline)->Finish();
    ASSERT_TRUE(stats.ok());
    applied = stats->applied;
  }
  core::DynamicCondenserOptions options;
  options.group_size = 4;
  auto recovered =
      core::DurableCondenser::Recover(dir_, options, {.snapshot_interval = 16});
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered->records_seen(), applied);
}

TEST_F(PipelineTest, PoisonRecordsAreQuarantinedNotFatal) {
  StreamPipelineConfig config = Config();
  auto pipeline = StreamPipeline::Start(config);
  ASSERT_TRUE(pipeline.ok());
  const std::vector<Vector> good = Stream(60, 3);
  for (std::size_t i = 0; i < good.size(); ++i) {
    ASSERT_TRUE((*pipeline)->Submit(good[i]).ok());
    if (i == 10) {
      // Wrong dimension.
      ASSERT_TRUE((*pipeline)->Submit(Vector{1.0, 2.0}).ok());
    }
    if (i == 20) {
      // NaN attribute.
      ASSERT_TRUE(
          (*pipeline)
              ->Submit(Vector{0.0, std::nan(""), 1.0})
              .ok());
    }
    if (i == 30) {
      // Infinite attribute.
      ASSERT_TRUE(
          (*pipeline)
              ->Submit(Vector{std::numeric_limits<double>::infinity(), 0.0,
                              1.0})
              .ok());
    }
  }
  auto stats = (*pipeline)->Finish();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->submitted, 63u);
  EXPECT_EQ(stats->applied, 60u);
  EXPECT_EQ(stats->quarantined, 3u);
  EXPECT_EQ(stats->quarantined_dimension, 1u);
  EXPECT_EQ(stats->quarantined_non_finite, 2u);
  EXPECT_TRUE(stats->Balanced());

  auto entries = QuarantineWriter::ReadAll(config.checkpoint_dir +
                                           "/quarantine.log");
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), 3u);
}

TEST_F(PipelineTest, TransientFailuresAreRetriedWithoutLoss) {
  StreamPipelineConfig config = Config();
  config.retry.initial_backoff_ms = 0.1;
  config.retry.max_backoff_ms = 1.0;
  auto pipeline = StreamPipeline::Start(config);
  ASSERT_TRUE(pipeline.ok());
  // ~15% of journal appends fail transiently; retries must absorb it.
  FailPoint::Arm("checkpoint.journal_append",
                 {.fail_at = 5,
                  .code = StatusCode::kUnavailable,
                  .probability = 0.15,
                  .seed = 11});
  for (const Vector& record : Stream(150, 4)) {
    ASSERT_TRUE((*pipeline)->Submit(record).ok());
  }
  FailPoint::Disarm("checkpoint.journal_append");
  auto stats = (*pipeline)->Finish();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->applied + stats->spool_remaining +
                stats->quarantined_failure,
            150u);
  EXPECT_TRUE(stats->Balanced());
  EXPECT_GT(stats->retries, 0u);
  EXPECT_EQ((*pipeline)->records_seen(), stats->applied);
}

TEST_F(PipelineTest, BreakerDegradesToSpoolAndRecovers) {
  StreamPipelineConfig config = Config();
  config.retry.max_attempts = 2;
  config.retry.initial_backoff_ms = 0.1;
  config.retry.max_backoff_ms = 0.5;
  config.breaker.failure_threshold = 2;
  config.breaker.open_duration_ms = 50.0;
  auto pipeline = StreamPipeline::Start(config);
  ASSERT_TRUE(pipeline.ok());

  const std::vector<Vector> records = Stream(80, 5);
  // Hard outage: every journal append fails for a while.
  FailPoint::Arm("checkpoint.journal_append",
                 {.fail_at = 1,
                  .repeat = static_cast<std::size_t>(-1),
                  .code = StatusCode::kUnavailable});
  for (std::size_t i = 0; i < 40; ++i) {
    ASSERT_TRUE((*pipeline)->Submit(records[i]).ok());
  }
  // Let the worker hit the outage and trip the breaker.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  FailPoint::Disarm("checkpoint.journal_append");
  for (std::size_t i = 40; i < records.size(); ++i) {
    ASSERT_TRUE((*pipeline)->Submit(records[i]).ok());
  }
  auto stats = (*pipeline)->Finish();
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(stats->spooled, 0u);
  EXPECT_GT(stats->breaker_trips, 0u);
  // Once the outage clears, the spool drains back through the condenser.
  EXPECT_EQ(stats->applied, 80u);
  EXPECT_EQ(stats->spool_remaining, 0u);
  EXPECT_TRUE(stats->Balanced());
  EXPECT_EQ((*pipeline)->records_seen(), 80u);
}

TEST_F(PipelineTest, SpoolBacklogIsRecoveredByNextRun) {
  StreamPipelineConfig config = Config();
  // First run: write a spool backlog by hand (as if a run crashed while
  // degraded).
  {
    auto pipeline = StreamPipeline::Start(config);
    ASSERT_TRUE(pipeline.ok());
    for (const Vector& record : Stream(30, 6)) {
      ASSERT_TRUE((*pipeline)->Submit(record).ok());
    }
    ASSERT_TRUE((*pipeline)->Finish().ok());
  }
  {
    auto spool = AppendFile::Open(config.checkpoint_dir + "/spool.log");
    ASSERT_TRUE(spool.ok());
    ASSERT_TRUE(spool->Append("s 1.5 -2.5 3.5 .\n").ok());
    ASSERT_TRUE(spool->Append("s 0.25 0.5 0.75 .\n").ok());
    ASSERT_TRUE(spool->Append("s 9 9 9").ok());  // torn tail
    ASSERT_TRUE(spool->Sync().ok());
  }
  auto pipeline = StreamPipeline::Start(config);
  ASSERT_TRUE(pipeline.ok());
  auto stats = (*pipeline)->Finish();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->spool_recovered, 2u);
  EXPECT_EQ(stats->spool_replayed, 2u);
  EXPECT_EQ(stats->applied, 2u);
  EXPECT_EQ(stats->spool_remaining, 0u);
  EXPECT_TRUE(stats->Balanced());
  EXPECT_EQ((*pipeline)->records_seen(), 32u);
}

TEST_F(PipelineTest, WatchdogTripsBreakerOnStalledBatch) {
  StreamPipelineConfig config = Config();
  config.batch_deadline_ms = 30.0;
  config.watchdog_poll_ms = 5.0;
  config.breaker.open_duration_ms = 20.0;
  auto pipeline = StreamPipeline::Start(config);
  ASSERT_TRUE(pipeline.ok());
  // Stall the condenser: every journal fsync takes 25ms for a while.
  FailPoint::Arm("io.sync", {.fail_at = 1,
                             .repeat = static_cast<std::size_t>(-1),
                             .mode = FailPointMode::kLatency,
                             .latency_ms = 25.0});
  for (const Vector& record : Stream(24, 7)) {
    ASSERT_TRUE((*pipeline)->Submit(record).ok());
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(250));
  FailPoint::Disarm("io.sync");
  auto stats = (*pipeline)->Finish();
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(stats->watchdog_stalls, 0u);
  EXPECT_GT(stats->breaker_trips, 0u);
  EXPECT_EQ(stats->applied, 24u);  // stalled records spool, then drain
  EXPECT_TRUE(stats->Balanced());
}

TEST_F(PipelineTest, RejectPolicySurfacesBackpressureToProducer) {
  StreamPipelineConfig config = Config();
  config.queue_capacity = 2;
  config.backpressure = BackpressurePolicy::kReject;
  // Slow the worker so the queue actually fills.
  FailPoint::Arm("io.sync", {.fail_at = 1,
                             .repeat = static_cast<std::size_t>(-1),
                             .mode = FailPointMode::kLatency,
                             .latency_ms = 10.0});
  auto pipeline = StreamPipeline::Start(config);
  ASSERT_TRUE(pipeline.ok());
  std::size_t rejected = 0;
  for (const Vector& record : Stream(60, 8)) {
    Status status = (*pipeline)->Submit(record);
    if (IsResourceExhausted(status)) {
      ++rejected;
    } else {
      ASSERT_TRUE(status.ok());
    }
  }
  FailPoint::Disarm("io.sync");
  auto stats = (*pipeline)->Finish();
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(rejected, 0u);
  EXPECT_EQ(stats->rejected, rejected);
  EXPECT_EQ(stats->accepted, 60u - rejected);
  EXPECT_LE(stats->queue_high_water, 2u);
  EXPECT_TRUE(stats->Balanced());
}

}  // namespace
}  // namespace condensa::runtime
