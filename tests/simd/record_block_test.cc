#include "simd/record_block.h"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "common/random.h"
#include "linalg/vector.h"

namespace condensa::simd {
namespace {

using linalg::Vector;

std::vector<Vector> RandomCloud(std::size_t n, std::size_t dim, Rng& rng) {
  std::vector<Vector> points;
  points.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Vector p(dim);
    for (std::size_t j = 0; j < dim; ++j) {
      p[j] = rng.Gaussian();
    }
    points.push_back(std::move(p));
  }
  return points;
}

TEST(RecordBlockTest, EmptyStore) {
  RecordBlock block(3);
  EXPECT_TRUE(block.empty());
  EXPECT_EQ(block.size(), 0u);
  EXPECT_EQ(block.dim(), 3u);
  EXPECT_EQ(block.num_blocks(), 0u);
}

TEST(RecordBlockTest, FromVectorsRoundTrips) {
  Rng rng(7);
  // Sizes straddling the block width: partial, exact, and multi-block.
  for (std::size_t n : {1u, 7u, 8u, 9u, 16u, 21u}) {
    std::vector<Vector> points = RandomCloud(n, 5, rng);
    RecordBlock block = RecordBlock::FromVectors(points);
    ASSERT_EQ(block.size(), n);
    ASSERT_EQ(block.dim(), 5u);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t d = 0; d < 5; ++d) {
        EXPECT_EQ(block.At(i, d), points[i][d]) << "i=" << i << " d=" << d;
      }
    }
  }
}

TEST(RecordBlockTest, FromVectorsEmptyInput) {
  RecordBlock block = RecordBlock::FromVectors({});
  EXPECT_TRUE(block.empty());
  EXPECT_EQ(block.dim(), 0u);
}

TEST(RecordBlockTest, BlockedLayoutIsDimensionMajor) {
  Rng rng(11);
  std::vector<Vector> points = RandomCloud(10, 3, rng);
  RecordBlock block = RecordBlock::FromVectors(points);
  // data[b * dim * kLane + d * kLane + lane] == record (b*kLane+lane)[d].
  for (std::size_t i = 0; i < points.size(); ++i) {
    const std::size_t b = i / RecordBlock::kLane;
    const std::size_t lane = i % RecordBlock::kLane;
    for (std::size_t d = 0; d < 3; ++d) {
      EXPECT_EQ(block.BlockData(b)[d * RecordBlock::kLane + lane],
                points[i][d]);
    }
  }
}

TEST(RecordBlockTest, PaddingLanesAreZero) {
  Rng rng(13);
  std::vector<Vector> points = RandomCloud(5, 4, rng);
  RecordBlock block = RecordBlock::FromVectors(points);
  ASSERT_EQ(block.num_blocks(), 1u);
  for (std::size_t lane = 5; lane < RecordBlock::kLane; ++lane) {
    for (std::size_t d = 0; d < 4; ++d) {
      EXPECT_EQ(block.BlockData(0)[d * RecordBlock::kLane + lane], 0.0);
    }
  }
}

TEST(RecordBlockTest, AppendGrowsAcrossBlockBoundaries) {
  Rng rng(17);
  std::vector<Vector> points = RandomCloud(25, 2, rng);
  RecordBlock block(2);
  for (const Vector& p : points) {
    block.Append(p);
  }
  ASSERT_EQ(block.size(), 25u);
  EXPECT_EQ(block.num_blocks(), 4u);
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(block.At(i, 0), points[i][0]);
    EXPECT_EQ(block.At(i, 1), points[i][1]);
  }
}

TEST(RecordBlockTest, CopyRecordAndTruncateMirrorSwapWithLast) {
  Rng rng(19);
  std::vector<Vector> points = RandomCloud(12, 3, rng);
  RecordBlock block = RecordBlock::FromVectors(points);
  std::vector<Vector> mirror = points;

  // Remove records 4, 0, and 7 (of the shrinking array) by
  // swap-with-last, keeping the mirror in lockstep.
  for (std::size_t pos : {4u, 0u, 7u}) {
    block.CopyRecord(mirror.size() - 1, pos);
    block.Truncate(mirror.size() - 1);
    mirror[pos] = mirror.back();
    mirror.pop_back();
  }

  ASSERT_EQ(block.size(), mirror.size());
  for (std::size_t i = 0; i < mirror.size(); ++i) {
    for (std::size_t d = 0; d < 3; ++d) {
      EXPECT_EQ(block.At(i, d), mirror[i][d]);
    }
  }
}

TEST(RecordBlockTest, CopyRecordOntoItselfIsNoOp) {
  Rng rng(23);
  std::vector<Vector> points = RandomCloud(3, 2, rng);
  RecordBlock block = RecordBlock::FromVectors(points);
  block.CopyRecord(1, 1);
  EXPECT_EQ(block.At(1, 0), points[1][0]);
  EXPECT_EQ(block.At(1, 1), points[1][1]);
}

TEST(RecordBlockTest, ZeroDimensionalRecords) {
  RecordBlock block(0);
  block.Reserve(4);
  Vector empty(0);
  block.Append(empty);
  block.Append(empty);
  EXPECT_EQ(block.size(), 2u);
  EXPECT_EQ(block.dim(), 0u);
}

TEST(RecordBlockTest, MoveTransfersStorage) {
  Rng rng(29);
  std::vector<Vector> points = RandomCloud(9, 4, rng);
  RecordBlock source = RecordBlock::FromVectors(points);
  RecordBlock moved = std::move(source);
  ASSERT_EQ(moved.size(), 9u);
  for (std::size_t i = 0; i < points.size(); ++i) {
    for (std::size_t d = 0; d < 4; ++d) {
      EXPECT_EQ(moved.At(i, d), points[i][d]);
    }
  }
}

}  // namespace
}  // namespace condensa::simd
