// Differential and edge-case coverage for the batch distance kernels.
//
// The default kernels carry a bit-identity contract: every finite output
// equals the scalar reference bit for bit, and a +inf output may appear
// only from a bounded call whose true distance strictly exceeds the
// bound (see src/simd/distance.h). These tests pin that contract across
// dimensions (including the partial-block padding tails), record counts,
// sub-block ranges, NaN/Inf inputs, and a randomized 1000-trial sweep —
// for every kernel the host can run. The opt-in fused kernel is pinned
// with a tolerance instead, documenting that it sits outside the
// contract.

#include "simd/distance.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <utility>
#include <vector>

#include "common/random.h"
#include "linalg/vector.h"
#include "simd/record_block.h"

namespace condensa::simd {
namespace {

using linalg::Vector;

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

std::uint64_t Bits(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

// Restores process-global kernel state no matter how a test exits.
struct KernelGuard {
  ~KernelGuard() {
    SetFusedEnabled(false);
    ResetKernel();
  }
};

std::vector<KernelKind> AvailableKernels() {
  KernelGuard guard;
  std::vector<KernelKind> kinds = {KernelKind::kScalar, KernelKind::kPortable};
  if (ForceKernel(KernelKind::kAvx2)) {
    kinds.push_back(KernelKind::kAvx2);
  }
  return kinds;
}

std::vector<Vector> RandomCloud(std::size_t n, std::size_t dim, Rng& rng) {
  std::vector<Vector> points;
  points.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Vector p(dim);
    for (std::size_t j = 0; j < dim; ++j) {
      p[j] = rng.Gaussian();
    }
    points.push_back(std::move(p));
  }
  return points;
}

Vector RandomQuery(std::size_t dim, Rng& rng) {
  Vector q(dim);
  for (std::size_t j = 0; j < dim; ++j) {
    q[j] = rng.Gaussian();
  }
  return q;
}

// Checks one kernel output against the scalar exact distance under the
// bounded-kernel contract: finite values are bit-identical, +inf is
// legal only when the true distance strictly exceeds the bound. NaN
// exacts must stay NaN (bounded abandonment never fires on NaN).
void ExpectContract(double got, double exact, double bound) {
  if (std::isnan(exact)) {
    EXPECT_TRUE(std::isnan(got));
    return;
  }
  if (got == kInf && exact != kInf) {
    EXPECT_TRUE(exact > bound) << "abandoned a record at exact distance "
                               << exact << " under bound " << bound;
    return;
  }
  EXPECT_EQ(Bits(got), Bits(exact));
}

TEST(DistanceKernelTest, KernelNamesAndForce) {
  KernelGuard guard;
  EXPECT_STREQ(KernelName(KernelKind::kScalar), "scalar");
  EXPECT_STREQ(KernelName(KernelKind::kPortable), "portable");
  EXPECT_STREQ(KernelName(KernelKind::kAvx2), "avx2");
  ASSERT_TRUE(ForceKernel(KernelKind::kScalar));
  EXPECT_EQ(ActiveKernel(), KernelKind::kScalar);
  ASSERT_TRUE(ForceKernel(KernelKind::kPortable));
  EXPECT_EQ(ActiveKernel(), KernelKind::kPortable);
  ResetKernel();
  // Detection never lands on the reference oracle.
  EXPECT_NE(ActiveKernel(), KernelKind::kScalar);
}

TEST(DistanceKernelTest, ScalarOracleMatchesLinalg) {
  Rng rng(101);
  for (std::size_t dim : {0u, 1u, 2u, 7u, 8u, 9u, 10u}) {
    std::vector<Vector> points = RandomCloud(11, dim, rng);
    RecordBlock block = RecordBlock::FromVectors(points);
    Vector query = RandomQuery(dim, rng);
    std::vector<double> out(points.size());
    SquaredDistanceBatchScalar(block, query.data(), out.data());
    for (std::size_t i = 0; i < points.size(); ++i) {
      EXPECT_EQ(Bits(out[i]),
                Bits(linalg::SquaredDistance(points[i], query)));
    }
  }
}

TEST(DistanceKernelTest, AllKernelsBitIdenticalAcrossDims) {
  KernelGuard guard;
  Rng rng(202);
  // Every dimension through 64 exercises all padding tails of the
  // 8-wide dimension loop; the counts cover single-record, partial,
  // exact, and multi-block stores.
  for (std::size_t dim = 1; dim <= 64; ++dim) {
    for (std::size_t n : {1u, 5u, 8u, 9u, 24u}) {
      std::vector<Vector> points = RandomCloud(n, dim, rng);
      RecordBlock block = RecordBlock::FromVectors(points);
      Vector query = RandomQuery(dim, rng);
      std::vector<double> expected(n);
      SquaredDistanceBatchScalar(block, query.data(), expected.data());
      for (KernelKind kind : AvailableKernels()) {
        ASSERT_TRUE(ForceKernel(kind));
        std::vector<double> out(n, -1.0);
        SquaredDistanceBatch(block, query.data(), out.data());
        for (std::size_t i = 0; i < n; ++i) {
          ASSERT_EQ(Bits(out[i]), Bits(expected[i]))
              << KernelName(kind) << " dim=" << dim << " n=" << n
              << " i=" << i;
        }
      }
    }
  }
}

TEST(DistanceKernelTest, SubRangesCoverEdgeLanes) {
  KernelGuard guard;
  Rng rng(303);
  const std::size_t n = 40;
  const std::size_t dim = 6;
  std::vector<Vector> points = RandomCloud(n, dim, rng);
  RecordBlock block = RecordBlock::FromVectors(points);
  Vector query = RandomQuery(dim, rng);
  std::vector<double> full(n);
  SquaredDistanceBatchScalar(block, query.data(), full.data());
  // Ranges chosen to hit every begin/end alignment case: block-aligned,
  // mid-block, single record, and within one block.
  const std::pair<std::size_t, std::size_t> ranges[] = {
      {0, n}, {0, 8}, {3, 29}, {8, 16}, {5, 6}, {9, 15}, {17, 40}, {12, 12}};
  for (KernelKind kind : AvailableKernels()) {
    ASSERT_TRUE(ForceKernel(kind));
    for (const auto& [begin, end] : ranges) {
      std::vector<double> out(end - begin, -1.0);
      SquaredDistanceBatchRange(block, query.data(), begin, end, kInf,
                                out.data());
      for (std::size_t i = begin; i < end; ++i) {
        ASSERT_EQ(Bits(out[i - begin]), Bits(full[i]))
            << KernelName(kind) << " range [" << begin << ", " << end << ")";
      }
    }
  }
}

TEST(DistanceKernelTest, BoundedOutputsExactOrProvablyBeyondBound) {
  KernelGuard guard;
  Rng rng(404);
  const std::size_t n = 30;
  const std::size_t dim = 24;  // several bound-check strides deep
  std::vector<Vector> points = RandomCloud(n, dim, rng);
  RecordBlock block = RecordBlock::FromVectors(points);
  Vector query = RandomQuery(dim, rng);
  std::vector<double> exact(n);
  SquaredDistanceBatchScalar(block, query.data(), exact.data());
  std::vector<double> sorted = exact;
  std::sort(sorted.begin(), sorted.end());
  for (double bound : {sorted[n / 4], sorted[n / 2], sorted[n - 1], 0.0}) {
    for (KernelKind kind : AvailableKernels()) {
      ASSERT_TRUE(ForceKernel(kind));
      std::vector<double> out(n, -1.0);
      SquaredDistanceBatchBounded(block, query.data(), bound, out.data());
      for (std::size_t i = 0; i < n; ++i) {
        ExpectContract(out[i], exact[i], bound);
      }
    }
  }
}

TEST(DistanceKernelTest, NaNPropagatesLikeScalar) {
  KernelGuard guard;
  std::vector<Vector> points = {Vector{1.0, 2.0, 3.0}, Vector{kNaN, 0.0, 1.0},
                                Vector{4.0, kNaN, 5.0}, Vector{0.5, 0.5, 0.5},
                                Vector{6.0, 7.0, 8.0}};
  RecordBlock block = RecordBlock::FromVectors(points);
  Vector query{0.0, 0.0, 0.0};
  const std::size_t n = points.size();
  std::vector<double> exact(n);
  SquaredDistanceBatchScalar(block, query.data(), exact.data());
  EXPECT_TRUE(std::isnan(exact[1]));
  EXPECT_TRUE(std::isnan(exact[2]));
  for (KernelKind kind : AvailableKernels()) {
    ASSERT_TRUE(ForceKernel(kind));
    std::vector<double> out(n, -1.0);
    SquaredDistanceBatch(block, query.data(), out.data());
    for (std::size_t i = 0; i < n; ++i) {
      if (std::isnan(exact[i])) {
        EXPECT_TRUE(std::isnan(out[i])) << KernelName(kind) << " i=" << i;
      } else {
        EXPECT_EQ(Bits(out[i]), Bits(exact[i]));
      }
    }
    // A tiny bound still may not abandon a NaN record: the comparison is
    // false, the block stays live, and the NaN completes like scalar.
    SquaredDistanceBatchBounded(block, query.data(), 1e-12, out.data());
    EXPECT_TRUE(std::isnan(out[1])) << KernelName(kind);
    EXPECT_TRUE(std::isnan(out[2])) << KernelName(kind);
  }
}

TEST(DistanceKernelTest, InfinitePointsProduceInfiniteOrNaNLikeScalar) {
  KernelGuard guard;
  std::vector<Vector> points = {Vector{kInf, 0.0}, Vector{-kInf, 1.0},
                                Vector{1.0, 1.0}};
  RecordBlock block = RecordBlock::FromVectors(points);
  // query[0] = +inf makes record 0's diff inf - inf = NaN and record 1's
  // diff -inf; the scalar loop says NaN and +inf respectively.
  Vector query{kInf, 0.0};
  std::vector<double> exact(3);
  SquaredDistanceBatchScalar(block, query.data(), exact.data());
  EXPECT_TRUE(std::isnan(exact[0]));
  EXPECT_EQ(exact[1], kInf);
  EXPECT_EQ(exact[2], kInf);
  for (KernelKind kind : AvailableKernels()) {
    ASSERT_TRUE(ForceKernel(kind));
    std::vector<double> out(3, -1.0);
    SquaredDistanceBatch(block, query.data(), out.data());
    EXPECT_TRUE(std::isnan(out[0])) << KernelName(kind);
    EXPECT_EQ(out[1], kInf) << KernelName(kind);
    EXPECT_EQ(out[2], kInf) << KernelName(kind);
  }
}

TEST(DistanceKernelTest, ZeroDimensionalDistancesAreZero) {
  KernelGuard guard;
  RecordBlock block(0);
  block.Reserve(3);
  Vector empty(0);
  for (int i = 0; i < 3; ++i) block.Append(empty);
  for (KernelKind kind : AvailableKernels()) {
    ASSERT_TRUE(ForceKernel(kind));
    std::vector<double> out(3, -1.0);
    SquaredDistanceBatch(block, nullptr, out.data());
    for (double v : out) {
      EXPECT_EQ(v, 0.0) << KernelName(kind);
    }
  }
}

TEST(DistanceKernelTest, RandomizedDifferentialSweep) {
  KernelGuard guard;
  Rng rng(505);
  const std::vector<KernelKind> kernels = AvailableKernels();
  for (int trial = 0; trial < 1000; ++trial) {
    const std::size_t dim = 1 + rng.UniformIndex(40);
    const std::size_t n = 1 + rng.UniformIndex(70);
    std::vector<Vector> points = RandomCloud(n, dim, rng);
    RecordBlock block = RecordBlock::FromVectors(points);
    Vector query = RandomQuery(dim, rng);
    const std::size_t begin = rng.UniformIndex(n);
    const std::size_t end = begin + 1 + rng.UniformIndex(n - begin);
    // Mix unbounded scans with bounds tight enough to abandon blocks.
    const double bound =
        trial % 3 == 0 ? kInf : rng.Uniform(0.0, 2.0 * dim);
    std::vector<double> exact(n);
    SquaredDistanceBatchScalar(block, query.data(), exact.data());
    for (KernelKind kind : kernels) {
      ASSERT_TRUE(ForceKernel(kind));
      std::vector<double> out(end - begin, -1.0);
      SquaredDistanceBatchRange(block, query.data(), begin, end, bound,
                                out.data());
      for (std::size_t i = begin; i < end; ++i) {
        ExpectContract(out[i - begin], exact[i], bound);
      }
    }
  }
}

TEST(DistanceKernelTest, FusedKernelPinnedByTolerance) {
  KernelGuard guard;
  if (!ForceKernel(KernelKind::kAvx2)) {
    GTEST_SKIP() << "host has no AVX2";
  }
  SetFusedEnabled(true);
  if (!FusedEnabled()) {
    GTEST_SKIP() << "host has no FMA";
  }
  Rng rng(606);
  const std::size_t n = 24;
  const std::size_t dim = 17;
  std::vector<Vector> points = RandomCloud(n, dim, rng);
  RecordBlock block = RecordBlock::FromVectors(points);
  Vector query = RandomQuery(dim, rng);
  std::vector<double> exact(n);
  SquaredDistanceBatchScalar(block, query.data(), exact.data());
  std::vector<double> fused(n);
  SquaredDistanceBatch(block, query.data(), fused.data());
  for (std::size_t i = 0; i < n; ++i) {
    // Outside the bit-identity contract, but each fused term skips one
    // rounding of at most half an ulp: the relative error stays tiny.
    EXPECT_NEAR(fused[i], exact[i], 1e-9 * (1.0 + exact[i])) << i;
  }
}

TEST(DistanceKernelTest, AxpyAndAddScaledRowsMatchScalarLoop) {
  Rng rng(707);
  const std::size_t dim = 13;
  const std::size_t rows = 4;
  std::vector<double> matrix(rows * dim);
  std::vector<double> coeffs(rows);
  for (double& v : matrix) v = rng.Gaussian();
  for (double& c : coeffs) c = rng.Gaussian();
  std::vector<double> expected(dim), got(dim);
  for (std::size_t d = 0; d < dim; ++d) {
    expected[d] = got[d] = rng.Gaussian();
  }
  // Reference: row-by-row, element-by-element accumulation — the order
  // AddScaledRows promises (and SampleFromEigen's bit-identity needs).
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t d = 0; d < dim; ++d) {
      expected[d] += coeffs[r] * matrix[r * dim + d];
    }
  }
  AddScaledRows(dim, coeffs.data(), matrix.data(), rows, got.data());
  for (std::size_t d = 0; d < dim; ++d) {
    EXPECT_EQ(Bits(got[d]), Bits(expected[d]));
  }
}

}  // namespace
}  // namespace condensa::simd
