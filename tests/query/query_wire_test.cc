// Query wire codecs: bit-exact round trips and hostile-input hardening.

#include "query/wire.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

#include "linalg/matrix.h"
#include "linalg/vector.h"
#include "query/query.h"

namespace condensa::query {
namespace {

using condensa::linalg::Matrix;
using condensa::linalg::Vector;

Vector MakePoint(std::initializer_list<double> values) {
  Vector v(values.size());
  std::size_t i = 0;
  for (double value : values) v[i++] = value;
  return v;
}

TEST(QueryWireTest, ClassifyQueryRoundTrips) {
  Query query;
  query.kind = QueryKind::kClassify;
  query.classify.neighbors = 5;
  query.classify.points.push_back(MakePoint({1.5, -2.25, 1e-300}));
  query.classify.points.push_back(MakePoint({0.0, 3.0, -0.0}));

  auto decoded = DecodeQuery(EncodeQuery(query));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->kind, QueryKind::kClassify);
  EXPECT_EQ(decoded->classify.neighbors, 5u);
  ASSERT_EQ(decoded->classify.points.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t d = 0; d < 3; ++d) {
      EXPECT_EQ(decoded->classify.points[i][d],
                query.classify.points[i][d]);
    }
  }
}

TEST(QueryWireTest, AggregateQueryRoundTrips) {
  Query query;
  query.kind = QueryKind::kAggregate;
  query.aggregate.range.bounds.push_back({2, -1.0, 4.5});
  query.aggregate.range.bounds.push_back({0, 0.25, 0.75});

  auto decoded = DecodeQuery(EncodeQuery(query));
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->aggregate.range.bounds.size(), 2u);
  EXPECT_EQ(decoded->aggregate.range.bounds[0].dim, 2u);
  EXPECT_EQ(decoded->aggregate.range.bounds[0].lo, -1.0);
  EXPECT_EQ(decoded->aggregate.range.bounds[1].hi, 0.75);
}

TEST(QueryWireTest, RegenerateQueryRoundTrips) {
  Query query;
  query.kind = QueryKind::kRegenerate;
  query.regenerate.range.bounds.push_back({1, 0.0, 1.0});
  query.regenerate.seed = 0xdeadbeefcafe;
  query.regenerate.records_per_group = 17;

  auto decoded = DecodeQuery(EncodeQuery(query));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->kind, QueryKind::kRegenerate);
  EXPECT_EQ(decoded->regenerate.seed, 0xdeadbeefcafeu);
  EXPECT_EQ(decoded->regenerate.records_per_group, 17u);
  ASSERT_EQ(decoded->regenerate.range.bounds.size(), 1u);
}

TEST(QueryWireTest, AggregateResultRoundTripsBitExactly) {
  QueryResult result;
  result.snapshot_version = 42;
  result.kind = QueryKind::kAggregate;
  result.aggregate.groups_matched = 3;
  result.aggregate.records = 99;
  result.aggregate.has_moments = true;
  result.aggregate.mean = MakePoint({1.0 / 3.0, -7.25});
  Matrix covariance(2, 2);
  covariance(0, 0) = 0.1;
  covariance(0, 1) = -0.055;
  covariance(1, 0) = -0.055;
  covariance(1, 1) = 2.5e-17;
  result.aggregate.covariance = covariance;

  auto decoded = DecodeQueryResult(EncodeQueryResult(result));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->snapshot_version, 42u);
  EXPECT_EQ(decoded->aggregate.groups_matched, 3u);
  EXPECT_EQ(decoded->aggregate.records, 99u);
  ASSERT_TRUE(decoded->aggregate.has_moments);
  for (std::size_t d = 0; d < 2; ++d) {
    EXPECT_EQ(decoded->aggregate.mean[d], result.aggregate.mean[d]);
    for (std::size_t e = 0; e < 2; ++e) {
      EXPECT_EQ(decoded->aggregate.covariance(d, e), covariance(d, e));
    }
  }
}

TEST(QueryWireTest, ClassifyAndRegenerateResultsRoundTrip) {
  QueryResult classify;
  classify.snapshot_version = 7;
  classify.kind = QueryKind::kClassify;
  classify.classify.labels = {0, -1, 3};
  auto decoded = DecodeQueryResult(EncodeQueryResult(classify));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->classify.labels, (std::vector<int>{0, -1, 3}));

  QueryResult regen;
  regen.kind = QueryKind::kRegenerate;
  regen.regenerate.groups_matched = 2;
  regen.regenerate.records.push_back(MakePoint({1.0, 2.0}));
  regen.regenerate.records.push_back(MakePoint({-3.5, 0.125}));
  auto decoded_regen = DecodeQueryResult(EncodeQueryResult(regen));
  ASSERT_TRUE(decoded_regen.ok());
  ASSERT_EQ(decoded_regen->regenerate.records.size(), 2u);
  EXPECT_EQ(decoded_regen->regenerate.records[1][0], -3.5);
}

TEST(QueryWireTest, DecodeRejectsGarbage) {
  EXPECT_FALSE(DecodeQuery("").ok());
  EXPECT_FALSE(DecodeQuery("\xff").ok());
  EXPECT_FALSE(DecodeQueryResult("short").ok());

  // Truncating a valid payload anywhere must fail cleanly, never crash
  // or over-read.
  Query query;
  query.kind = QueryKind::kClassify;
  query.classify.points.push_back(MakePoint({1.0, 2.0}));
  const std::string payload = EncodeQuery(query);
  for (std::size_t cut = 0; cut < payload.size(); ++cut) {
    auto decoded = DecodeQuery(payload.substr(0, cut));
    EXPECT_FALSE(decoded.ok()) << "cut=" << cut;
  }

  // Trailing bytes after a complete message are also a framing error.
  EXPECT_FALSE(DecodeQuery(payload + "x").ok());
}

TEST(QueryWireTest, DecodeRejectsOversizedCounts) {
  // A payload claiming 2^32 points with only a few bytes behind it must
  // be rejected by the count-vs-remaining validation, not allocated.
  std::string hostile;
  hostile.push_back(0);  // kind = classify
  for (int i = 0; i < 8; ++i) hostile.push_back(0);  // deadline = 0.0
  for (int i = 0; i < 8; ++i) hostile.push_back(1);  // neighbors
  for (int i = 0; i < 8; ++i) hostile.push_back('\x7f');  // dim: huge
  auto decoded = DecodeQuery(hostile);
  EXPECT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss);
}

TEST(QueryWireTest, DeadlineAndStalenessRoundTrip) {
  Query query;
  query.kind = QueryKind::kAggregate;
  query.deadline_ms = 1234.5;
  auto decoded = DecodeQuery(EncodeQuery(query));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->deadline_ms, 1234.5);

  QueryResult result;
  result.snapshot_version = 9;
  result.staleness_ms = 0.125;
  result.kind = QueryKind::kAggregate;
  auto decoded_result = DecodeQueryResult(EncodeQueryResult(result));
  ASSERT_TRUE(decoded_result.ok());
  EXPECT_EQ(decoded_result->staleness_ms, 0.125);
}

TEST(QueryWireTest, DecodeRejectsHostileDeadlineAndStaleness) {
  Query query;
  query.kind = QueryKind::kAggregate;
  query.deadline_ms = -1.0;  // negatives never come off a sane encoder
  EXPECT_FALSE(DecodeQuery(EncodeQuery(query)).ok());
  query.deadline_ms = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(DecodeQuery(EncodeQuery(query)).ok());

  QueryResult result;
  result.kind = QueryKind::kAggregate;
  result.staleness_ms = -0.5;
  EXPECT_FALSE(DecodeQueryResult(EncodeQueryResult(result)).ok());
}

// Corruption fuzz for both payload decoders: for a representative payload
// of every query/result kind, (a) truncate at every byte boundary, (b)
// flip every single bit, (c) saturate every byte (mutated counts, kinds,
// flags, dims). The decoder must return a Status or a (possibly wrong)
// value — never crash, over-read, or over-allocate. ASan is the judge.
class QueryWireFuzzTest : public ::testing::Test {
 protected:
  static std::vector<std::string> QueryPayloads() {
    std::vector<std::string> payloads;
    Query classify;
    classify.kind = QueryKind::kClassify;
    classify.deadline_ms = 250.0;
    classify.classify.neighbors = 3;
    classify.classify.points.push_back(MakePoint({1.0, -2.0}));
    classify.classify.points.push_back(MakePoint({0.5, 4.25}));
    payloads.push_back(EncodeQuery(classify));

    Query aggregate;
    aggregate.kind = QueryKind::kAggregate;
    aggregate.aggregate.range.bounds.push_back({0, -1.0, 1.0});
    payloads.push_back(EncodeQuery(aggregate));

    Query regenerate;
    regenerate.kind = QueryKind::kRegenerate;
    regenerate.regenerate.range.bounds.push_back({1, 0.0, 2.0});
    regenerate.regenerate.seed = 99;
    regenerate.regenerate.records_per_group = 4;
    payloads.push_back(EncodeQuery(regenerate));
    return payloads;
  }

  static std::vector<std::string> ResultPayloads() {
    std::vector<std::string> payloads;
    QueryResult classify;
    classify.kind = QueryKind::kClassify;
    classify.snapshot_version = 3;
    classify.staleness_ms = 10.0;
    classify.classify.labels = {1, -1, 2};
    payloads.push_back(EncodeQueryResult(classify));

    QueryResult aggregate;
    aggregate.kind = QueryKind::kAggregate;
    aggregate.aggregate.groups_matched = 2;
    aggregate.aggregate.records = 8;
    aggregate.aggregate.has_moments = true;
    aggregate.aggregate.mean = MakePoint({0.5, -0.5});
    Matrix cov(2, 2);
    cov(0, 0) = 1.0;
    cov(1, 1) = 2.0;
    aggregate.aggregate.covariance = cov;
    payloads.push_back(EncodeQueryResult(aggregate));

    QueryResult regen;
    regen.kind = QueryKind::kRegenerate;
    regen.regenerate.groups_matched = 1;
    regen.regenerate.records.push_back(MakePoint({3.0, 4.0}));
    payloads.push_back(EncodeQueryResult(regen));
    return payloads;
  }
};

TEST_F(QueryWireFuzzTest, QueryDecoderSurvivesCorruption) {
  for (const std::string& payload : QueryPayloads()) {
    for (std::size_t cut = 0; cut < payload.size(); ++cut) {
      EXPECT_FALSE(DecodeQuery(payload.substr(0, cut)).ok());
    }
    for (std::size_t byte = 0; byte < payload.size(); ++byte) {
      for (int bit = 0; bit < 8; ++bit) {
        std::string mutated = payload;
        mutated[byte] = static_cast<char>(mutated[byte] ^ (1 << bit));
        (void)DecodeQuery(mutated);  // must not crash; ok() may go either way
      }
      std::string saturated = payload;
      saturated[byte] = '\xff';  // worst-case counts/kinds/dims
      (void)DecodeQuery(saturated);
    }
  }
}

TEST_F(QueryWireFuzzTest, ResultDecoderSurvivesCorruption) {
  for (const std::string& payload : ResultPayloads()) {
    for (std::size_t cut = 0; cut < payload.size(); ++cut) {
      EXPECT_FALSE(DecodeQueryResult(payload.substr(0, cut)).ok());
    }
    for (std::size_t byte = 0; byte < payload.size(); ++byte) {
      for (int bit = 0; bit < 8; ++bit) {
        std::string mutated = payload;
        mutated[byte] = static_cast<char>(mutated[byte] ^ (1 << bit));
        (void)DecodeQueryResult(mutated);
      }
      std::string saturated = payload;
      saturated[byte] = '\xff';
      (void)DecodeQueryResult(saturated);
    }
  }
}

}  // namespace
}  // namespace condensa::query
