// Query wire codecs: bit-exact round trips and hostile-input hardening.

#include "query/wire.h"

#include <gtest/gtest.h>

#include <string>

#include "linalg/matrix.h"
#include "linalg/vector.h"
#include "query/query.h"

namespace condensa::query {
namespace {

using condensa::linalg::Matrix;
using condensa::linalg::Vector;

Vector MakePoint(std::initializer_list<double> values) {
  Vector v(values.size());
  std::size_t i = 0;
  for (double value : values) v[i++] = value;
  return v;
}

TEST(QueryWireTest, ClassifyQueryRoundTrips) {
  Query query;
  query.kind = QueryKind::kClassify;
  query.classify.neighbors = 5;
  query.classify.points.push_back(MakePoint({1.5, -2.25, 1e-300}));
  query.classify.points.push_back(MakePoint({0.0, 3.0, -0.0}));

  auto decoded = DecodeQuery(EncodeQuery(query));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->kind, QueryKind::kClassify);
  EXPECT_EQ(decoded->classify.neighbors, 5u);
  ASSERT_EQ(decoded->classify.points.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t d = 0; d < 3; ++d) {
      EXPECT_EQ(decoded->classify.points[i][d],
                query.classify.points[i][d]);
    }
  }
}

TEST(QueryWireTest, AggregateQueryRoundTrips) {
  Query query;
  query.kind = QueryKind::kAggregate;
  query.aggregate.range.bounds.push_back({2, -1.0, 4.5});
  query.aggregate.range.bounds.push_back({0, 0.25, 0.75});

  auto decoded = DecodeQuery(EncodeQuery(query));
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->aggregate.range.bounds.size(), 2u);
  EXPECT_EQ(decoded->aggregate.range.bounds[0].dim, 2u);
  EXPECT_EQ(decoded->aggregate.range.bounds[0].lo, -1.0);
  EXPECT_EQ(decoded->aggregate.range.bounds[1].hi, 0.75);
}

TEST(QueryWireTest, RegenerateQueryRoundTrips) {
  Query query;
  query.kind = QueryKind::kRegenerate;
  query.regenerate.range.bounds.push_back({1, 0.0, 1.0});
  query.regenerate.seed = 0xdeadbeefcafe;
  query.regenerate.records_per_group = 17;

  auto decoded = DecodeQuery(EncodeQuery(query));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->kind, QueryKind::kRegenerate);
  EXPECT_EQ(decoded->regenerate.seed, 0xdeadbeefcafeu);
  EXPECT_EQ(decoded->regenerate.records_per_group, 17u);
  ASSERT_EQ(decoded->regenerate.range.bounds.size(), 1u);
}

TEST(QueryWireTest, AggregateResultRoundTripsBitExactly) {
  QueryResult result;
  result.snapshot_version = 42;
  result.kind = QueryKind::kAggregate;
  result.aggregate.groups_matched = 3;
  result.aggregate.records = 99;
  result.aggregate.has_moments = true;
  result.aggregate.mean = MakePoint({1.0 / 3.0, -7.25});
  Matrix covariance(2, 2);
  covariance(0, 0) = 0.1;
  covariance(0, 1) = -0.055;
  covariance(1, 0) = -0.055;
  covariance(1, 1) = 2.5e-17;
  result.aggregate.covariance = covariance;

  auto decoded = DecodeQueryResult(EncodeQueryResult(result));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->snapshot_version, 42u);
  EXPECT_EQ(decoded->aggregate.groups_matched, 3u);
  EXPECT_EQ(decoded->aggregate.records, 99u);
  ASSERT_TRUE(decoded->aggregate.has_moments);
  for (std::size_t d = 0; d < 2; ++d) {
    EXPECT_EQ(decoded->aggregate.mean[d], result.aggregate.mean[d]);
    for (std::size_t e = 0; e < 2; ++e) {
      EXPECT_EQ(decoded->aggregate.covariance(d, e), covariance(d, e));
    }
  }
}

TEST(QueryWireTest, ClassifyAndRegenerateResultsRoundTrip) {
  QueryResult classify;
  classify.snapshot_version = 7;
  classify.kind = QueryKind::kClassify;
  classify.classify.labels = {0, -1, 3};
  auto decoded = DecodeQueryResult(EncodeQueryResult(classify));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->classify.labels, (std::vector<int>{0, -1, 3}));

  QueryResult regen;
  regen.kind = QueryKind::kRegenerate;
  regen.regenerate.groups_matched = 2;
  regen.regenerate.records.push_back(MakePoint({1.0, 2.0}));
  regen.regenerate.records.push_back(MakePoint({-3.5, 0.125}));
  auto decoded_regen = DecodeQueryResult(EncodeQueryResult(regen));
  ASSERT_TRUE(decoded_regen.ok());
  ASSERT_EQ(decoded_regen->regenerate.records.size(), 2u);
  EXPECT_EQ(decoded_regen->regenerate.records[1][0], -3.5);
}

TEST(QueryWireTest, DecodeRejectsGarbage) {
  EXPECT_FALSE(DecodeQuery("").ok());
  EXPECT_FALSE(DecodeQuery("\xff").ok());
  EXPECT_FALSE(DecodeQueryResult("short").ok());

  // Truncating a valid payload anywhere must fail cleanly, never crash
  // or over-read.
  Query query;
  query.kind = QueryKind::kClassify;
  query.classify.points.push_back(MakePoint({1.0, 2.0}));
  const std::string payload = EncodeQuery(query);
  for (std::size_t cut = 0; cut < payload.size(); ++cut) {
    auto decoded = DecodeQuery(payload.substr(0, cut));
    EXPECT_FALSE(decoded.ok()) << "cut=" << cut;
  }

  // Trailing bytes after a complete message are also a framing error.
  EXPECT_FALSE(DecodeQuery(payload + "x").ok());
}

TEST(QueryWireTest, DecodeRejectsOversizedCounts) {
  // A payload claiming 2^32 points with only a few bytes behind it must
  // be rejected by the count-vs-remaining validation, not allocated.
  std::string hostile;
  hostile.push_back(0);  // kind = classify
  for (int i = 0; i < 8; ++i) hostile.push_back(1);  // neighbors
  for (int i = 0; i < 8; ++i) hostile.push_back('\x7f');  // dim: huge
  auto decoded = DecodeQuery(hostile);
  EXPECT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss);
}

}  // namespace
}  // namespace condensa::query
