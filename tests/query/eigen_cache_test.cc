// EigenCache: version-keyed lookups, LRU bounds, and stat accounting.

#include "query/eigen_cache.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/random.h"
#include "core/group_statistics.h"
#include "linalg/vector.h"

namespace condensa::query {
namespace {

using condensa::core::GroupStatistics;
using condensa::linalg::Vector;

GroupStatistics MakeGroup(std::size_t dim, std::uint64_t seed,
                          std::size_t count = 6) {
  Rng rng(seed);
  GroupStatistics group(dim);
  for (std::size_t i = 0; i < count; ++i) {
    Vector record(dim);
    for (std::size_t d = 0; d < dim; ++d) {
      record[d] = rng.Gaussian();
    }
    group.Add(record);
  }
  return group;
}

TEST(EigenCacheTest, SecondLookupOfSameVersionHits) {
  EigenCache cache(4);
  GroupStatistics group = MakeGroup(3, 1);

  auto first = cache.Get(group);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  auto second = cache.Get(group);
  ASSERT_TRUE(second.ok());
  // Same version -> the very same factorization object.
  EXPECT_EQ(first->get(), second->get());

  EigenCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(stats.size, 1u);
  EXPECT_DOUBLE_EQ(stats.HitRatio(), 0.5);
}

TEST(EigenCacheTest, CopiedGroupSharesTheStampAndHits) {
  EigenCache cache(4);
  GroupStatistics group = MakeGroup(3, 2);
  ASSERT_TRUE(cache.Get(group).ok());

  // Copying is not a mutation: the copy carries the same stamp and the
  // same moments, so it must hit.
  GroupStatistics copy = group;
  EXPECT_EQ(copy.version(), group.version());
  ASSERT_TRUE(cache.Get(copy).ok());
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(EigenCacheTest, CapacityBoundsSizeWithLruEviction) {
  EigenCache cache(2);
  GroupStatistics a = MakeGroup(3, 10);
  GroupStatistics b = MakeGroup(3, 11);
  GroupStatistics c = MakeGroup(3, 12);

  ASSERT_TRUE(cache.Get(a).ok());  // {a}
  ASSERT_TRUE(cache.Get(b).ok());  // {b, a}
  ASSERT_TRUE(cache.Get(a).ok());  // {a, b} — refresh a
  ASSERT_TRUE(cache.Get(c).ok());  // {c, a} — evicts b (LRU)

  EigenCacheStats stats = cache.stats();
  EXPECT_EQ(stats.size, 2u);
  EXPECT_EQ(stats.evictions, 1u);

  // a and c still hit; b was evicted and misses again.
  ASSERT_TRUE(cache.Get(a).ok());
  ASSERT_TRUE(cache.Get(c).ok());
  EXPECT_EQ(cache.stats().hits, 3u);
  ASSERT_TRUE(cache.Get(b).ok());
  EXPECT_EQ(cache.stats().misses, 4u);
}

TEST(EigenCacheTest, ReturnedPointerSurvivesEviction) {
  EigenCache cache(1);
  GroupStatistics a = MakeGroup(3, 20);
  GroupStatistics b = MakeGroup(3, 21);

  auto eigen_a = cache.Get(a);
  ASSERT_TRUE(eigen_a.ok());
  ASSERT_TRUE(cache.Get(b).ok());  // evicts a
  EXPECT_EQ(cache.stats().evictions, 1u);
  // Shared ownership: the caller's pointer is still valid.
  EXPECT_EQ((*eigen_a)->eigenvalues.dim(), 3u);
}

TEST(EigenCacheTest, SingleRecordGroupFactorizes) {
  // Zero covariance is still a valid (all-zero-eigenvalue)
  // factorization; the engine bypasses the cache for count == 1 groups
  // but the cache itself must not choke on them.
  EigenCache cache(2);
  GroupStatistics group = MakeGroup(3, 30, 1);
  auto eigen = cache.Get(group);
  ASSERT_TRUE(eigen.ok()) << eigen.status().ToString();
  for (std::size_t d = 0; d < 3; ++d) {
    EXPECT_NEAR((*eigen)->eigenvalues[d], 0.0, 1e-12);
  }
}

}  // namespace
}  // namespace condensa::query
