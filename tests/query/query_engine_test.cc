// QueryEngine: exactness of aggregates, centroid kNN classification,
// and deterministic cached regeneration (bit-identical to Anonymizer).

#include "query/engine.h"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "common/random.h"
#include "core/anonymizer.h"
#include "core/condensed_group_set.h"
#include "core/group_statistics.h"
#include "linalg/vector.h"
#include "query/query.h"
#include "query/snapshot.h"

namespace condensa::query {
namespace {

using condensa::core::Anonymizer;
using condensa::core::CondensedGroupSet;
using condensa::core::GroupStatistics;
using condensa::linalg::Vector;

Vector MakePoint(std::initializer_list<double> values) {
  Vector v(values.size());
  std::size_t i = 0;
  for (double value : values) v[i++] = value;
  return v;
}

GroupStatistics MakeGroupAround(const Vector& center, std::size_t count,
                                std::uint64_t seed) {
  Rng rng(seed);
  GroupStatistics group(center.dim());
  for (std::size_t i = 0; i < count; ++i) {
    Vector record(center.dim());
    for (std::size_t d = 0; d < center.dim(); ++d) {
      record[d] = center[d] + rng.Gaussian(0.0, 0.3);
    }
    group.Add(record);
  }
  return group;
}

// Two labeled pools, well separated along dimension 0.
QuerySnapshot TwoClassSnapshot(std::size_t groups_per_pool = 3,
                               std::size_t records_per_group = 5) {
  QuerySnapshot snapshot;
  snapshot.dim = 2;
  CondensedGroupSet negative(2, records_per_group);
  CondensedGroupSet positive(2, records_per_group);
  for (std::size_t g = 0; g < groups_per_pool; ++g) {
    negative.AddGroup(MakeGroupAround(MakePoint({-5.0, double(g)}),
                                      records_per_group, 10 + g));
    positive.AddGroup(MakeGroupAround(MakePoint({5.0, double(g)}),
                                      records_per_group, 20 + g));
  }
  snapshot.pools.push_back({0, std::move(negative)});
  snapshot.pools.push_back({1, std::move(positive)});
  return snapshot;
}

TEST(QueryEngineTest, AggregateIsBitIdenticalToMomentFold) {
  QuerySnapshot snapshot = TwoClassSnapshot();
  QueryEngine engine;
  Query query;
  query.kind = QueryKind::kAggregate;

  auto result = engine.Execute(snapshot, query);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // Reference: the same fold over the same groups in the same order.
  GroupStatistics folded(snapshot.dim);
  for (const LabeledGroups& pool : snapshot.pools) {
    for (const GroupStatistics& group : pool.groups.groups()) {
      folded.Merge(group);
    }
  }
  EXPECT_EQ(result->aggregate.groups_matched, 6u);
  EXPECT_EQ(result->aggregate.records, folded.count());
  ASSERT_TRUE(result->aggregate.has_moments);
  Vector mean = folded.Centroid();
  auto covariance = folded.Covariance();
  for (std::size_t d = 0; d < snapshot.dim; ++d) {
    // Exact double equality: both sides ARE the same computation.
    EXPECT_EQ(result->aggregate.mean[d], mean[d]);
    for (std::size_t e = 0; e < snapshot.dim; ++e) {
      EXPECT_EQ(result->aggregate.covariance(d, e), covariance(d, e));
    }
  }
}

TEST(QueryEngineTest, RangeSelectsByCentroidBox) {
  QuerySnapshot snapshot = TwoClassSnapshot();
  QueryEngine engine;
  Query query;
  query.kind = QueryKind::kAggregate;
  query.aggregate.range.bounds.push_back({0, 0.0, 10.0});

  auto result = engine.Execute(snapshot, query);
  ASSERT_TRUE(result.ok());
  // Only the positive pool's centroids sit in [0, 10] on dim 0.
  EXPECT_EQ(result->aggregate.groups_matched, 3u);

  GroupStatistics folded(snapshot.dim);
  for (const GroupStatistics& group : snapshot.pools[1].groups.groups()) {
    folded.Merge(group);
  }
  EXPECT_EQ(result->aggregate.records, folded.count());
  EXPECT_EQ(result->aggregate.mean[0], folded.Centroid()[0]);
}

TEST(QueryEngineTest, EmptySelectionHasNoMoments) {
  QuerySnapshot snapshot = TwoClassSnapshot();
  QueryEngine engine;
  Query query;
  query.kind = QueryKind::kAggregate;
  query.aggregate.range.bounds.push_back({0, 50.0, 60.0});

  auto result = engine.Execute(snapshot, query);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->aggregate.groups_matched, 0u);
  EXPECT_EQ(result->aggregate.records, 0u);
  EXPECT_FALSE(result->aggregate.has_moments);
}

TEST(QueryEngineTest, RangeValidationRejectsBadBounds) {
  QuerySnapshot snapshot = TwoClassSnapshot();
  QueryEngine engine;
  Query query;
  query.kind = QueryKind::kAggregate;
  query.aggregate.range.bounds.push_back({7, 0.0, 1.0});  // dim out of range
  auto result = engine.Execute(snapshot, query);
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);

  query.aggregate.range.bounds.clear();
  query.aggregate.range.bounds.push_back({0, 2.0, 1.0});  // lo > hi
  result = engine.Execute(snapshot, query);
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(QueryEngineTest, ClassifiesPointsToNearestCentroidLabel) {
  QuerySnapshot snapshot = TwoClassSnapshot();
  QueryEngine engine;
  Query query;
  query.kind = QueryKind::kClassify;
  query.classify.points.push_back(MakePoint({-5.0, 1.0}));
  query.classify.points.push_back(MakePoint({5.0, 2.0}));
  query.classify.points.push_back(MakePoint({-4.0, 0.0}));
  query.classify.neighbors = 3;

  auto result = engine.Execute(snapshot, query);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->classify.labels.size(), 3u);
  EXPECT_EQ(result->classify.labels[0], 0);
  EXPECT_EQ(result->classify.labels[1], 1);
  EXPECT_EQ(result->classify.labels[2], 0);
}

TEST(QueryEngineTest, VotesAreWeightedByGroupMass) {
  // One tiny group of label 1 sits nearest; a huge label-0 group is a
  // bit farther. With neighbors = 2 the mass-weighted vote must go to
  // the heavy group — each group speaks for all its records.
  QuerySnapshot snapshot;
  snapshot.dim = 1;
  CondensedGroupSet light(1, 1), heavy(1, 1);
  GroupStatistics tiny(1);
  tiny.Add(MakePoint({1.0}));
  light.AddGroup(std::move(tiny));
  GroupStatistics big(1);
  for (int i = 0; i < 50; ++i) {
    big.Add(MakePoint({2.0 + 0.001 * i}));
  }
  heavy.AddGroup(std::move(big));
  snapshot.pools.push_back({1, std::move(light)});
  snapshot.pools.push_back({0, std::move(heavy)});

  QueryEngine engine;
  Query query;
  query.kind = QueryKind::kClassify;
  query.classify.points.push_back(MakePoint({0.5}));
  query.classify.neighbors = 2;
  auto result = engine.Execute(snapshot, query);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->classify.labels[0], 0);

  // With a single neighbour the nearest (tiny) group wins.
  query.classify.neighbors = 1;
  result = engine.Execute(snapshot, query);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->classify.labels[0], 1);
}

TEST(QueryEngineTest, ClassifyRejectsBadInputs) {
  QuerySnapshot snapshot = TwoClassSnapshot();
  QueryEngine engine;
  Query query;
  query.kind = QueryKind::kClassify;
  query.classify.points.push_back(MakePoint({1.0}));  // wrong dim
  auto result = engine.Execute(snapshot, query);
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);

  query.classify.points.clear();
  query.classify.points.push_back(MakePoint({1.0, 2.0}));
  query.classify.neighbors = 0;
  result = engine.Execute(snapshot, query);
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);

  // A snapshot with only unlabeled pools cannot classify.
  QuerySnapshot unlabeled;
  unlabeled.dim = 2;
  CondensedGroupSet groups(2, 5);
  groups.AddGroup(MakeGroupAround(MakePoint({0.0, 0.0}), 5, 1));
  unlabeled.pools.push_back({-1, std::move(groups)});
  query.classify.neighbors = 1;
  result = engine.Execute(unlabeled, query);
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(QueryEngineTest, RegenerateIsDeterministicInTheSeed) {
  QuerySnapshot snapshot = TwoClassSnapshot();
  QueryEngine engine;
  Query query;
  query.kind = QueryKind::kRegenerate;
  query.regenerate.seed = 1234;

  auto first = engine.Execute(snapshot, query);
  ASSERT_TRUE(first.ok());
  auto second = engine.Execute(snapshot, query);
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(first->regenerate.records.size(),
            second->regenerate.records.size());
  EXPECT_EQ(first->regenerate.records.size(), 30u);  // 6 groups x 5
  for (std::size_t i = 0; i < first->regenerate.records.size(); ++i) {
    for (std::size_t d = 0; d < snapshot.dim; ++d) {
      EXPECT_EQ(first->regenerate.records[i][d],
                second->regenerate.records[i][d]);
    }
  }

  query.regenerate.seed = 1235;
  auto other = engine.Execute(snapshot, query);
  ASSERT_TRUE(other.ok());
  bool differs = false;
  for (std::size_t i = 0; i < other->regenerate.records.size() && !differs;
       ++i) {
    for (std::size_t d = 0; d < snapshot.dim; ++d) {
      if (other->regenerate.records[i][d] !=
          first->regenerate.records[i][d]) {
        differs = true;
        break;
      }
    }
  }
  EXPECT_TRUE(differs);
}

TEST(QueryEngineTest, RegenerateMatchesAnonymizerBitForBit) {
  // A single unlabeled pool regenerated with the engine's cached
  // factorizations must equal Anonymizer::Generate on the same group
  // set with the same seed: both split one substream per group in group
  // order and run core::SampleFromEigen.
  CondensedGroupSet groups(2, 5);
  for (std::size_t g = 0; g < 4; ++g) {
    groups.AddGroup(
        MakeGroupAround(MakePoint({double(g), -double(g)}), 5, 40 + g));
  }
  QuerySnapshot snapshot = SnapshotFromGroupSet(groups);

  QueryEngine engine;
  Query query;
  query.kind = QueryKind::kRegenerate;
  query.regenerate.seed = 77;
  auto result = engine.Execute(snapshot, query);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Run twice so the second pass answers fully from the cache.
  auto cached = engine.Execute(snapshot, query);
  ASSERT_TRUE(cached.ok());

  Anonymizer anonymizer({.num_threads = 1});
  Rng rng(77);
  auto reference = anonymizer.Generate(groups, rng);
  ASSERT_TRUE(reference.ok());

  ASSERT_EQ(result->regenerate.records.size(), reference->size());
  for (std::size_t i = 0; i < reference->size(); ++i) {
    for (std::size_t d = 0; d < 2; ++d) {
      EXPECT_EQ(result->regenerate.records[i][d], (*reference)[i][d]);
      EXPECT_EQ(cached->regenerate.records[i][d], (*reference)[i][d]);
    }
  }
  EXPECT_GT(engine.eigen_cache().stats().hits, 0u);
}

TEST(QueryEngineTest, RegenerateSingleRecordGroupYieldsItsCentroid) {
  CondensedGroupSet groups(2, 1);
  GroupStatistics lone(2);
  lone.Add(MakePoint({3.0, 4.0}));
  groups.AddGroup(std::move(lone));
  QuerySnapshot snapshot = SnapshotFromGroupSet(groups);

  QueryEngine engine;
  Query query;
  query.kind = QueryKind::kRegenerate;
  query.regenerate.records_per_group = 3;
  auto result = engine.Execute(snapshot, query);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->regenerate.records.size(), 3u);
  for (const Vector& record : result->regenerate.records) {
    EXPECT_EQ(record[0], 3.0);
    EXPECT_EQ(record[1], 4.0);
  }
  // No factorization exists for a zero-covariance group: the cache must
  // not have been touched.
  EXPECT_EQ(engine.eigen_cache().stats().misses, 0u);
}

TEST(QueryEngineTest, ParseRangeSpecRoundTrips) {
  auto empty = ParseRangeSpec("");
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->bounds.empty());

  auto spec = ParseRangeSpec("0:-1.5:2.5,3:0:0");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  ASSERT_EQ(spec->bounds.size(), 2u);
  EXPECT_EQ(spec->bounds[0].dim, 0u);
  EXPECT_EQ(spec->bounds[0].lo, -1.5);
  EXPECT_EQ(spec->bounds[0].hi, 2.5);
  EXPECT_EQ(spec->bounds[1].dim, 3u);

  EXPECT_FALSE(ParseRangeSpec("0:a:b").ok());
  EXPECT_FALSE(ParseRangeSpec("0:1").ok());
  EXPECT_FALSE(ParseRangeSpec(":1:2").ok());
  EXPECT_FALSE(ParseRangeSpec("0:1:2,").ok());
}

}  // namespace
}  // namespace condensa::query
