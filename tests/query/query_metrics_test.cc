// Satellite guarantee: the query plane's metrics land in the default
// obs registry and show up in the Prometheus exposition — request
// counters and latency histograms per query kind, the eigen-cache
// hit/miss/size/ratio series, and the published snapshot version.

#include <gtest/gtest.h>

#include <string>
#include <utility>

#include "common/random.h"
#include "core/condensed_group_set.h"
#include "core/group_statistics.h"
#include "linalg/vector.h"
#include "obs/metrics.h"
#include "query/engine.h"
#include "query/query.h"
#include "query/snapshot.h"

namespace condensa::query {
namespace {

using condensa::core::CondensedGroupSet;
using condensa::core::GroupStatistics;
using condensa::linalg::Vector;

QuerySnapshot MakeSnapshot() {
  Rng rng(31);
  CondensedGroupSet groups(2, 4);
  for (std::size_t g = 0; g < 3; ++g) {
    GroupStatistics stats(2);
    for (std::size_t r = 0; r < 4; ++r) {
      Vector record(2);
      record[0] = rng.Gaussian();
      record[1] = rng.Gaussian();
      stats.Add(record);
    }
    groups.AddGroup(std::move(stats));
  }
  return SnapshotFromGroupSet(groups);
}

TEST(QueryMetricsTest, ExpositionCarriesQuerySeries) {
  obs::DefaultRegistry().Reset();

  QuerySnapshot snapshot = MakeSnapshot();
  QueryEngine engine;
  Query aggregate;
  aggregate.kind = QueryKind::kAggregate;
  ASSERT_TRUE(engine.Execute(snapshot, aggregate).ok());
  Query regenerate;
  regenerate.kind = QueryKind::kRegenerate;
  ASSERT_TRUE(engine.Execute(snapshot, regenerate).ok());
  ASSERT_TRUE(engine.Execute(snapshot, regenerate).ok());

  // A failing request must increment the failure counter.
  Query classify;
  classify.kind = QueryKind::kClassify;
  Vector point(2);
  classify.classify.points.push_back(point);
  ASSERT_FALSE(engine.Execute(snapshot, classify).ok());

  SnapshotStore store;
  store.Publish(MakeSnapshot());

  const std::string text = obs::DefaultRegistry().DumpPrometheusText();
  // Request counters, labeled by kind.
  EXPECT_NE(
      text.find("condensa_query_requests_total{kind=\"aggregate\"} 1"),
      std::string::npos)
      << text;
  EXPECT_NE(
      text.find("condensa_query_requests_total{kind=\"regenerate\"} 2"),
      std::string::npos);
  EXPECT_NE(
      text.find("condensa_query_requests_total{kind=\"classify\"} 1"),
      std::string::npos);
  EXPECT_NE(
      text.find(
          "condensa_query_request_failures_total{kind=\"classify\"} 1"),
      std::string::npos);
  // Latency histograms.
  EXPECT_NE(text.find("condensa_query_request_seconds"),
            std::string::npos);
  // Eigen cache series: 3 groups faulted in once, then 3 hits.
  EXPECT_NE(text.find("condensa_query_eigen_cache_misses_total 3"),
            std::string::npos);
  EXPECT_NE(text.find("condensa_query_eigen_cache_hits_total 3"),
            std::string::npos);
  EXPECT_NE(text.find("condensa_query_eigen_cache_size 3"),
            std::string::npos);
  EXPECT_NE(text.find("condensa_query_eigen_cache_hit_ratio 0.5"),
            std::string::npos);
  // Published snapshot version gauge.
  EXPECT_NE(text.find("condensa_query_snapshot_version 1"),
            std::string::npos);

  obs::DefaultRegistry().Reset();
}

// The read-plane hardening series: rejected-by-reason counters, the
// in-flight gauge, and the stale-answer counter, pinned by exposition
// name so dashboards can rely on them.
TEST(QueryMetricsTest, ExpositionCarriesHardeningSeries) {
  obs::DefaultRegistry().Reset();

  obs::DefaultRegistry()
      .GetCounter("condensa_query_rejected_total", {{"reason", "overload"}})
      .Increment();
  obs::DefaultRegistry()
      .GetCounter("condensa_query_rejected_total", {{"reason", "deadline"}})
      .Increment(2);
  obs::DefaultRegistry()
      .GetCounter("condensa_query_rejected_total",
                  {{"reason", "shutting-down"}})
      .Increment();
  obs::DefaultRegistry().GetGauge("condensa_query_inflight").Set(5);
  obs::DefaultRegistry()
      .GetCounter("condensa_query_stale_served_total")
      .Increment();

  const std::string text = obs::DefaultRegistry().DumpPrometheusText();
  EXPECT_NE(
      text.find("condensa_query_rejected_total{reason=\"overload\"} 1"),
      std::string::npos)
      << text;
  EXPECT_NE(
      text.find("condensa_query_rejected_total{reason=\"deadline\"} 2"),
      std::string::npos);
  EXPECT_NE(
      text.find("condensa_query_rejected_total{reason=\"shutting-down\"} 1"),
      std::string::npos);
  EXPECT_NE(text.find("condensa_query_inflight 5"), std::string::npos);
  EXPECT_NE(text.find("condensa_query_stale_served_total 1"),
            std::string::npos);

  obs::DefaultRegistry().Reset();
}

}  // namespace
}  // namespace condensa::query
