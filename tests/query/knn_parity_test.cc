// Acceptance criterion for the query plane's classifier: answering kNN
// straight from condensed statistics (mass-weighted nearest centroids)
// must track the mining/ kNN classifier trained on a regenerated
// release of the very same pools. The two see the same information —
// group moments — through different routes, so their test accuracies
// must agree within a pinned tolerance on the paper-style datasets.

#include <gtest/gtest.h>

#include <cstddef>
#include <utility>
#include <vector>

#include "common/random.h"
#include "core/anonymizer.h"
#include "core/engine.h"
#include "data/dataset.h"
#include "data/split.h"
#include "datagen/profiles.h"
#include "mining/evaluation.h"
#include "mining/knn.h"
#include "query/engine.h"
#include "query/query.h"
#include "query/snapshot.h"

namespace condensa::query {
namespace {

using condensa::core::CondensationConfig;
using condensa::core::CondensationEngine;
using condensa::data::Dataset;

// Accuracy gap allowed between the statistics-direct classifier and the
// regenerate-then-kNN baseline. Both routes rest on the same condensed
// moments; they may disagree near class boundaries but not in bulk.
constexpr double kAccuracyTolerance = 0.08;

// Classify `test` through the query engine against `snapshot` and
// return the fraction of correct labels.
double EngineAccuracy(const QuerySnapshot& snapshot, const Dataset& test,
                      std::size_t neighbors) {
  QueryEngine engine;
  Query query;
  query.kind = QueryKind::kClassify;
  query.classify.neighbors = neighbors;
  for (const auto& record : test.records()) {
    query.classify.points.push_back(record);
  }
  auto result = engine.Execute(snapshot, query);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  if (!result.ok()) return 0.0;
  EXPECT_EQ(result->classify.labels.size(), test.size());
  std::size_t correct = 0;
  for (std::size_t i = 0; i < test.size(); ++i) {
    if (result->classify.labels[i] == test.label(i)) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(test.size());
}

// Train mining/ kNN on a release regenerated from `pools` and evaluate
// it on `test`.
double RegeneratedKnnAccuracy(const core::CondensedPools& pools,
                              const Dataset& test, std::size_t neighbors,
                              Rng& rng) {
  auto release = core::GenerateRelease(pools, rng);
  EXPECT_TRUE(release.ok()) << release.status().ToString();
  if (!release.ok()) return 0.0;
  mining::KnnClassifier knn({.k = neighbors});
  EXPECT_TRUE(knn.Fit(release->anonymized).ok());
  auto accuracy = mining::EvaluateAccuracy(knn, test);
  EXPECT_TRUE(accuracy.ok()) << accuracy.status().ToString();
  return accuracy.ok() ? *accuracy : 0.0;
}

void ExpectParity(const Dataset& dataset, std::size_t group_size,
                  std::uint64_t seed, double min_accuracy) {
  Rng rng(seed);
  auto split = data::SplitTrainTest(dataset, 0.7, rng);
  ASSERT_TRUE(split.ok()) << split.status().ToString();

  CondensationConfig config;
  config.group_size = group_size;
  config.num_threads = 1;
  auto pools = CondensationEngine(config).Condense(split->train, rng);
  ASSERT_TRUE(pools.ok()) << pools.status().ToString();

  const QuerySnapshot snapshot = SnapshotFromPools(*pools);
  const std::size_t neighbors = 3;
  const double direct = EngineAccuracy(snapshot, split->test, neighbors);
  const double baseline =
      RegeneratedKnnAccuracy(*pools, split->test, neighbors, rng);

  EXPECT_GE(direct, min_accuracy)
      << "statistics-direct accuracy collapsed";
  EXPECT_GE(baseline, min_accuracy) << "baseline accuracy collapsed";
  EXPECT_NEAR(direct, baseline, kAccuracyTolerance)
      << "direct=" << direct << " regenerated-kNN=" << baseline;
}

TEST(KnnParityTest, GaussianBlobsAccuracyMatchesRegeneratedKnn) {
  Rng rng(11);
  Dataset blobs = datagen::MakeGaussianBlobs(3, 150, 4, 8.0, rng);
  ExpectParity(blobs, 10, 101, 0.9);
}

TEST(KnnParityTest, IonosphereProfileAccuracyMatchesRegeneratedKnn) {
  Rng rng(12);
  Dataset ionosphere = datagen::MakeIonosphere(rng);
  ExpectParity(ionosphere, 10, 102, 0.7);
}

TEST(KnnParityTest, ParityHoldsAtLargerGroupSize) {
  // Condensing harder (k = 25) coarsens both routes identically; the
  // two must degrade together, not apart.
  Rng rng(13);
  Dataset blobs = datagen::MakeGaussianBlobs(2, 200, 3, 6.0, rng);
  ExpectParity(blobs, 25, 103, 0.85);
}

}  // namespace
}  // namespace condensa::query
