// Satellite guarantee of the query plane: EVERY mutation path of the
// condensed structure invalidates the eigendecomposition cache. The
// mechanism is the version stamp (GroupStatistics::version()) — each
// test drives one mutation path (record absorb, record delete, merge,
// split, set-level Absorb, journal replay) and proves the next cache
// lookup is a miss, never a stale hit.

#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/io.h"
#include "common/random.h"
#include "core/checkpointing.h"
#include "core/condensed_group_set.h"
#include "core/group_statistics.h"
#include "core/split.h"
#include "linalg/vector.h"
#include "query/eigen_cache.h"

namespace condensa::query {
namespace {

using condensa::core::CondensedGroupSet;
using condensa::core::DurabilityOptions;
using condensa::core::DurableCondenser;
using condensa::core::DynamicCondenserOptions;
using condensa::core::GroupStatistics;
using condensa::core::SplitGroupStatistics;
using condensa::linalg::Vector;

Vector MakeRecord(std::size_t dim, std::uint64_t seed) {
  Rng rng(seed);
  Vector record(dim);
  for (std::size_t d = 0; d < dim; ++d) {
    record[d] = rng.Gaussian();
  }
  return record;
}

GroupStatistics MakeGroup(std::size_t dim, std::uint64_t seed,
                          std::size_t count = 8) {
  GroupStatistics group(dim);
  for (std::size_t i = 0; i < count; ++i) {
    group.Add(MakeRecord(dim, seed * 1000 + i));
  }
  return group;
}

// Warm the cache with `group`, assert the warm state, and return the
// miss count so callers can assert the post-mutation lookup missed.
void WarmCache(EigenCache& cache, const GroupStatistics& group) {
  ASSERT_TRUE(cache.Get(group).ok());
  ASSERT_TRUE(cache.Get(group).ok());
  ASSERT_EQ(cache.stats().hits, 1u);
  ASSERT_EQ(cache.stats().misses, 1u);
}

TEST(VersionInvalidationTest, AbsorbingARecordForcesAMiss) {
  EigenCache cache(8);
  GroupStatistics group = MakeGroup(3, 1);
  WarmCache(cache, group);

  const std::uint64_t before = group.version();
  group.Add(MakeRecord(3, 99));
  EXPECT_NE(group.version(), before);

  ASSERT_TRUE(cache.Get(group).ok());
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(VersionInvalidationTest, DeletingARecordForcesAMiss) {
  EigenCache cache(8);
  GroupStatistics group(3);
  Vector doomed = MakeRecord(3, 7);
  group.Add(doomed);
  for (int i = 0; i < 5; ++i) group.Add(MakeRecord(3, 100 + i));
  WarmCache(cache, group);

  const std::uint64_t before = group.version();
  group.Remove(doomed);
  EXPECT_NE(group.version(), before);

  ASSERT_TRUE(cache.Get(group).ok());
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(VersionInvalidationTest, MergingForcesAMiss) {
  EigenCache cache(8);
  GroupStatistics group = MakeGroup(3, 2);
  WarmCache(cache, group);

  const std::uint64_t before = group.version();
  group.Merge(MakeGroup(3, 3));
  EXPECT_NE(group.version(), before);

  ASSERT_TRUE(cache.Get(group).ok());
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(VersionInvalidationTest, SplitHalvesCarryFreshStamps) {
  EigenCache cache(8);
  GroupStatistics group = MakeGroup(3, 4);
  WarmCache(cache, group);

  auto split = SplitGroupStatistics(group);
  ASSERT_TRUE(split.ok()) << split.status().ToString();
  EXPECT_NE(split->lower.version(), group.version());
  EXPECT_NE(split->upper.version(), group.version());
  EXPECT_NE(split->lower.version(), split->upper.version());

  // Both halves miss (their moments were never cached) while the
  // untouched parent still hits.
  ASSERT_TRUE(cache.Get(split->lower).ok());
  ASSERT_TRUE(cache.Get(split->upper).ok());
  ASSERT_TRUE(cache.Get(group).ok());
  EXPECT_EQ(cache.stats().misses, 3u);
  EXPECT_EQ(cache.stats().hits, 2u);
}

TEST(VersionInvalidationTest, SetAbsorbRestampsMovedGroups) {
  EigenCache cache(8);
  CondensedGroupSet target(3, 4);
  target.AddGroup(MakeGroup(3, 5));
  CondensedGroupSet donor(3, 4);
  donor.AddGroup(MakeGroup(3, 6));
  const std::uint64_t donor_stamp = donor.group(0).version();
  WarmCache(cache, donor.group(0));

  target.Absorb(std::move(donor));
  ASSERT_EQ(target.num_groups(), 2u);
  // The moved group was restamped by Absorb, so its cache entry is
  // unreachable — the lookup misses even though the moments are equal.
  EXPECT_NE(target.group(1).version(), donor_stamp);
  ASSERT_TRUE(cache.Get(target.group(1)).ok());
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(VersionInvalidationTest, JournalReplayMintsFreshStamps) {
  const std::string dir = ::testing::TempDir() + "/condensa_query_replay";
  if (auto entries = ListDirectory(dir); entries.ok()) {
    for (const std::string& name : *entries) RemoveFile(dir + "/" + name);
  }

  const DynamicCondenserOptions options{.group_size = 3};
  DurabilityOptions durability;
  durability.snapshot_interval = 1000;  // keep everything in the journal
  auto created = DurableCondenser::Create(3, options, durability, dir);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  std::optional<DurableCondenser> durable(*std::move(created));
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(durable->Insert(MakeRecord(3, 200 + i)).ok());
  }
  ASSERT_GT(durable->groups().num_groups(), 0u);

  EigenCache cache(32);
  std::vector<std::uint64_t> live_stamps;
  for (const GroupStatistics& group : durable->groups().groups()) {
    live_stamps.push_back(group.version());
    ASSERT_TRUE(cache.Get(group).ok());
  }
  const std::size_t live_groups = durable->groups().num_groups();
  const std::uint64_t misses_before = cache.stats().misses;
  durable.reset();  // close the writer before replay

  // Replay rebuilds every group from journaled raw sums — identical
  // moments, but brand-new stamps: none of the cached entries may be
  // reused for recovered state.
  auto recovered = DurableCondenser::Recover(dir, options, durability);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  ASSERT_EQ(recovered->groups().num_groups(), live_groups);
  for (std::size_t g = 0; g < recovered->groups().num_groups(); ++g) {
    const GroupStatistics& group = recovered->groups().group(g);
    for (std::uint64_t stamp : live_stamps) {
      EXPECT_NE(group.version(), stamp);
    }
    ASSERT_TRUE(cache.Get(group).ok());
  }
  EXPECT_EQ(cache.stats().misses,
            misses_before + recovered->groups().num_groups());
}

}  // namespace
}  // namespace condensa::query
