// QueryServer + QueryClient over real loopback TCP: request/response
// round trips, in-band errors for unanswerable queries, the
// no-snapshot-yet precondition, and snapshot pinning across Publish.

#include "query/server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/failpoint.h"
#include "common/random.h"
#include "obs/metrics.h"
#include "core/condensed_group_set.h"
#include "core/group_statistics.h"
#include "linalg/vector.h"
#include "net/frame.h"
#include "net/wire.h"
#include "query/client.h"
#include "query/query.h"
#include "query/snapshot.h"
#include "query/wire.h"

namespace condensa::query {
namespace {

using condensa::core::CondensedGroupSet;
using condensa::core::GroupStatistics;
using condensa::linalg::Vector;

Vector MakePoint(std::initializer_list<double> values) {
  Vector v(values.size());
  std::size_t i = 0;
  for (double value : values) v[i++] = value;
  return v;
}

CondensedGroupSet MakeGroups(double center, std::uint64_t seed) {
  Rng rng(seed);
  CondensedGroupSet groups(2, 4);
  for (std::size_t g = 0; g < 3; ++g) {
    GroupStatistics stats(2);
    for (std::size_t r = 0; r < 4; ++r) {
      Vector record(2);
      record[0] = center + rng.Gaussian(0.0, 0.2);
      record[1] = double(g) + rng.Gaussian(0.0, 0.2);
      stats.Add(record);
    }
    groups.AddGroup(std::move(stats));
  }
  return groups;
}

class QueryServerTest : public ::testing::Test {
 protected:
  void StartServer(std::shared_ptr<SnapshotStore> store) {
    QueryServerConfig config;
    config.poll_ms = 10.0;
    StartServerWithConfig(std::move(config), std::move(store));
  }

  void StartServerWithConfig(QueryServerConfig config,
                             std::shared_ptr<SnapshotStore> store) {
    auto server = QueryServer::Create(std::move(config), std::move(store));
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    server_ = *std::move(server);
    serving_ = std::thread([this] {
      Status run = server_->Run();
      EXPECT_TRUE(run.ok()) << run.ToString();
    });
  }

  void TearDown() override {
    if (server_ != nullptr) {
      server_->Stop();
      serving_.join();
    }
  }

  std::unique_ptr<QueryServer> server_;
  std::thread serving_;
};

TEST_F(QueryServerTest, AnswersAggregateAndClassify) {
  auto store = std::make_shared<SnapshotStore>();
  QuerySnapshot snapshot;
  snapshot.dim = 2;
  snapshot.pools.push_back({0, MakeGroups(-3.0, 1)});
  snapshot.pools.push_back({1, MakeGroups(3.0, 2)});
  store->Publish(std::move(snapshot));
  StartServer(store);

  auto client =
      QueryClient::Connect("127.0.0.1", server_->port(), 2000.0);
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  Query aggregate;
  aggregate.kind = QueryKind::kAggregate;
  auto result = client->Execute(aggregate, 2000.0);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->snapshot_version, 1u);
  EXPECT_EQ(result->aggregate.groups_matched, 6u);
  EXPECT_EQ(result->aggregate.records, 24u);
  EXPECT_TRUE(result->aggregate.has_moments);

  Query classify;
  classify.kind = QueryKind::kClassify;
  classify.classify.points.push_back(MakePoint({-3.0, 1.0}));
  classify.classify.points.push_back(MakePoint({3.0, 1.0}));
  auto labels = client->Execute(classify, 2000.0);
  ASSERT_TRUE(labels.ok()) << labels.status().ToString();
  ASSERT_EQ(labels->classify.labels.size(), 2u);
  EXPECT_EQ(labels->classify.labels[0], 0);
  EXPECT_EQ(labels->classify.labels[1], 1);

  // Multiple requests ride one session; regeneration works remotely too.
  Query regenerate;
  regenerate.kind = QueryKind::kRegenerate;
  regenerate.regenerate.seed = 5;
  auto records = client->Execute(regenerate, 2000.0);
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->regenerate.records.size(), 24u);  // both pools
}

TEST_F(QueryServerTest, UnanswerableQueriesComeBackInBand) {
  auto store = std::make_shared<SnapshotStore>();
  QuerySnapshot snapshot;
  snapshot.dim = 2;
  snapshot.pools.push_back({-1, MakeGroups(0.0, 3)});
  store->Publish(std::move(snapshot));
  StartServer(store);

  auto client =
      QueryClient::Connect("127.0.0.1", server_->port(), 2000.0);
  ASSERT_TRUE(client.ok());

  // Classify against an unlabeled snapshot: FailedPrecondition, and the
  // session survives to answer the next request.
  Query classify;
  classify.kind = QueryKind::kClassify;
  classify.classify.points.push_back(MakePoint({0.0, 0.0}));
  auto bad = client->Execute(classify, 2000.0);
  EXPECT_EQ(bad.status().code(), StatusCode::kFailedPrecondition);

  Query aggregate;
  aggregate.kind = QueryKind::kAggregate;
  aggregate.aggregate.range.bounds.push_back({9, 0.0, 1.0});
  auto invalid = client->Execute(aggregate, 2000.0);
  EXPECT_EQ(invalid.status().code(), StatusCode::kInvalidArgument);

  aggregate.aggregate.range.bounds.clear();
  auto good = client->Execute(aggregate, 2000.0);
  ASSERT_TRUE(good.ok()) << good.status().ToString();
  EXPECT_EQ(good->aggregate.records, 12u);
}

TEST_F(QueryServerTest, NoSnapshotYetIsFailedPrecondition) {
  StartServer(std::make_shared<SnapshotStore>());
  auto client =
      QueryClient::Connect("127.0.0.1", server_->port(), 2000.0);
  ASSERT_TRUE(client.ok());
  Query query;
  query.kind = QueryKind::kAggregate;
  auto result = client->Execute(query, 2000.0);
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(QueryServerTest, UnexpectedFrameTypeGetsInBandError) {
  auto store = std::make_shared<SnapshotStore>();
  QuerySnapshot snapshot;
  snapshot.dim = 2;
  snapshot.pools.push_back({-1, MakeGroups(0.0, 4)});
  store->Publish(std::move(snapshot));
  StartServer(store);

  auto conn = net::TcpConnection::Connect("127.0.0.1", server_->port(),
                                          2000.0);
  ASSERT_TRUE(conn.ok());
  ASSERT_TRUE(conn->SendFrame(net::FrameType::kSubmit, "", 1000.0).ok());
  auto reply = conn->RecvFrame(2000.0);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->type, net::FrameType::kError);

  // Malformed Query payloads are also in-band errors, not dropped
  // sessions.
  ASSERT_TRUE(
      conn->SendFrame(net::FrameType::kQuery, "\xff\xff", 1000.0).ok());
  auto decode_error = conn->RecvFrame(2000.0);
  ASSERT_TRUE(decode_error.ok());
  EXPECT_EQ(decode_error->type, net::FrameType::kError);
}

TEST_F(QueryServerTest, LaterPublishChangesAnswersAndVersion) {
  auto store = std::make_shared<SnapshotStore>();
  QuerySnapshot first;
  first.dim = 2;
  first.pools.push_back({-1, MakeGroups(0.0, 5)});
  store->Publish(std::move(first));
  StartServer(store);

  auto client =
      QueryClient::Connect("127.0.0.1", server_->port(), 2000.0);
  ASSERT_TRUE(client.ok());
  Query query;
  query.kind = QueryKind::kAggregate;
  auto before = client->Execute(query, 2000.0);
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->snapshot_version, 1u);
  EXPECT_EQ(before->aggregate.records, 12u);

  QuerySnapshot second;
  second.dim = 2;
  second.pools.push_back({-1, MakeGroups(0.0, 5)});
  second.pools.push_back({-1, MakeGroups(1.0, 6)});
  store->Publish(std::move(second));

  auto after = client->Execute(query, 2000.0);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->snapshot_version, 2u);
  EXPECT_EQ(after->aggregate.records, 24u);
}

TEST_F(QueryServerTest, ExpiredDeadlineIsShedBeforeExecution) {
  auto store = std::make_shared<SnapshotStore>();
  QuerySnapshot snapshot;
  snapshot.dim = 2;
  snapshot.pools.push_back({-1, MakeGroups(0.0, 7)});
  store->Publish(std::move(snapshot));
  StartServer(store);

  auto client = QueryClient::Connect("127.0.0.1", server_->port(), 2000.0);
  ASSERT_TRUE(client.ok());

  // An engine stalled longer than the request's budget: the engine
  // notices the expired deadline mid-execution and sheds.
  FailPoint::Arm("query.execute",
                 {.repeat = 1, .mode = FailPointMode::kLatency,
                  .latency_ms = 120.0});
  Query slow;
  slow.kind = QueryKind::kAggregate;
  slow.deadline_ms = 40.0;
  auto shed = client->Execute(slow, 2000.0);
  FailPoint::Reset();
  EXPECT_EQ(shed.status().code(), StatusCode::kUnavailable)
      << shed.status().ToString();

  // The session survives the shed, and the same query without a deadline
  // succeeds.
  Query fine;
  fine.kind = QueryKind::kAggregate;
  auto answered = client->Execute(fine, 2000.0);
  ASSERT_TRUE(answered.ok()) << answered.status().ToString();
  EXPECT_EQ(answered->aggregate.records, 12u);
}

TEST_F(QueryServerTest, ServerDefaultDeadlineAppliesToBudgetlessRequests) {
  auto store = std::make_shared<SnapshotStore>();
  QuerySnapshot snapshot;
  snapshot.dim = 2;
  snapshot.pools.push_back({-1, MakeGroups(0.0, 8)});
  store->Publish(std::move(snapshot));
  QueryServerConfig config;
  config.poll_ms = 10.0;
  config.default_deadline_ms = 40.0;
  StartServerWithConfig(std::move(config), store);

  auto client = QueryClient::Connect("127.0.0.1", server_->port(), 2000.0);
  ASSERT_TRUE(client.ok());

  FailPoint::Arm("query.execute",
                 {.repeat = 1, .mode = FailPointMode::kLatency,
                  .latency_ms = 120.0});
  Query query;  // carries no deadline of its own
  query.kind = QueryKind::kAggregate;
  auto shed = client->Execute(query, 2000.0);
  FailPoint::Reset();
  EXPECT_EQ(shed.status().code(), StatusCode::kUnavailable);
}

TEST_F(QueryServerTest, ResultsCarryStalenessAndStaleAnswersAreCounted) {
  obs::DefaultRegistry().Reset();
  auto store = std::make_shared<SnapshotStore>();
  QuerySnapshot snapshot;
  snapshot.dim = 2;
  snapshot.pools.push_back({-1, MakeGroups(0.0, 9)});
  store->Publish(std::move(snapshot));
  QueryServerConfig config;
  config.poll_ms = 10.0;
  config.stale_after_ms = 30.0;  // anything older than 30ms counts stale
  StartServerWithConfig(std::move(config), store);

  auto client = QueryClient::Connect("127.0.0.1", server_->port(), 2000.0);
  ASSERT_TRUE(client.ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(60));

  // Ingest has "stalled" for 60ms: the answer still comes back (degraded
  // serving), its staleness says how old the snapshot is, and the stale
  // counter ticks.
  Query query;
  query.kind = QueryKind::kAggregate;
  auto result = client->Execute(query, 2000.0);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GE(result->staleness_ms, 30.0);
  const std::string text = obs::DefaultRegistry().DumpPrometheusText();
  EXPECT_NE(text.find("condensa_query_stale_served_total 1"),
            std::string::npos)
      << text;

  // A fresh Publish resets the age; the next answer is not stale.
  QuerySnapshot fresh;
  fresh.dim = 2;
  fresh.pools.push_back({-1, MakeGroups(0.0, 9)});
  store->Publish(std::move(fresh));
  auto after = client->Execute(query, 2000.0);
  ASSERT_TRUE(after.ok());
  EXPECT_LT(after->staleness_ms, 30.0);
  obs::DefaultRegistry().Reset();
}

TEST_F(QueryServerTest, ServesConcurrentSessions) {
  auto store = std::make_shared<SnapshotStore>();
  QuerySnapshot snapshot;
  snapshot.dim = 2;
  snapshot.pools.push_back({-1, MakeGroups(0.0, 10)});
  store->Publish(std::move(snapshot));
  QueryServerConfig config;
  config.poll_ms = 10.0;
  config.max_sessions = 4;
  StartServerWithConfig(std::move(config), store);

  std::vector<std::thread> workers;
  std::atomic<int> answered{0};
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([this, &answered] {
      auto client =
          QueryClient::Connect("127.0.0.1", server_->port(), 2000.0);
      ASSERT_TRUE(client.ok());
      for (int i = 0; i < 20; ++i) {
        Query query;
        query.kind = QueryKind::kAggregate;
        auto result = client->Execute(query, 2000.0);
        ASSERT_TRUE(result.ok()) << result.status().ToString();
        ASSERT_EQ(result->aggregate.records, 12u);
        answered.fetch_add(1);
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  EXPECT_EQ(answered.load(), 80);
}

TEST_F(QueryServerTest, InflightCapShedsWithOverloadReason) {
  obs::DefaultRegistry().Reset();
  auto store = std::make_shared<SnapshotStore>();
  QuerySnapshot snapshot;
  snapshot.dim = 2;
  snapshot.pools.push_back({-1, MakeGroups(0.0, 11)});
  store->Publish(std::move(snapshot));
  QueryServerConfig config;
  config.poll_ms = 10.0;
  config.max_sessions = 4;
  config.max_inflight = 1;  // one request at a time, no queueing
  StartServerWithConfig(std::move(config), store);

  // Stall every execution long enough that concurrent requests collide
  // on the single in-flight slot.
  FailPoint::Arm("query.execute",
                 {.repeat = static_cast<std::size_t>(-1),
                  .mode = FailPointMode::kLatency, .latency_ms = 100.0});
  std::vector<std::thread> workers;
  std::atomic<int> ok_count{0};
  std::atomic<int> shed_count{0};
  for (int t = 0; t < 3; ++t) {
    workers.emplace_back([this, &ok_count, &shed_count] {
      auto client =
          QueryClient::Connect("127.0.0.1", server_->port(), 2000.0);
      ASSERT_TRUE(client.ok());
      Query query;
      query.kind = QueryKind::kAggregate;
      auto result = client->Execute(query, 3000.0);
      if (result.ok()) {
        ok_count.fetch_add(1);
      } else {
        EXPECT_EQ(result.status().code(), StatusCode::kUnavailable)
            << result.status().ToString();
        shed_count.fetch_add(1);
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  FailPoint::Reset();
  // At least one request got through and at least one hit the cap.
  EXPECT_GE(ok_count.load(), 1);
  EXPECT_GE(shed_count.load(), 1);
  const std::string text = obs::DefaultRegistry().DumpPrometheusText();
  EXPECT_NE(text.find("condensa_query_rejected_total{reason=\"overload\"}"),
            std::string::npos)
      << text;
  obs::DefaultRegistry().Reset();
}

TEST_F(QueryServerTest, RetryingClientSurvivesSessionCapRejection) {
  auto store = std::make_shared<SnapshotStore>();
  QuerySnapshot snapshot;
  snapshot.dim = 2;
  snapshot.pools.push_back({-1, MakeGroups(0.0, 12)});
  store->Publish(std::move(snapshot));
  QueryServerConfig config;
  config.poll_ms = 10.0;
  config.max_sessions = 2;
  StartServerWithConfig(std::move(config), store);

  // Saturate both session slots with idle-but-open clients.
  auto holder1 = QueryClient::Connect("127.0.0.1", server_->port(), 2000.0);
  auto holder2 = QueryClient::Connect("127.0.0.1", server_->port(), 2000.0);
  ASSERT_TRUE(holder1.ok());
  ASSERT_TRUE(holder2.ok());
  Query warm;
  warm.kind = QueryKind::kAggregate;
  ASSERT_TRUE(holder1->Execute(warm, 2000.0).ok());
  ASSERT_TRUE(holder2->Execute(warm, 2000.0).ok());

  // A third client is rejected in-band (kUnavailable); with retry it
  // succeeds once a slot frees up mid-call.
  auto third = QueryClient::Connect("127.0.0.1", server_->port(), 2000.0);
  ASSERT_TRUE(third.ok());
  std::thread releaser([&holder1] {
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    holder1->Close();
  });
  QueryRetryOptions retry;
  retry.max_attempts = 20;
  retry.deadline_ms = 5000.0;
  retry.backoff.initial_backoff_ms = 50.0;
  retry.backoff.max_backoff_ms = 100.0;
  QueryRetryStats stats;
  auto result = third->ExecuteWithRetry(warm, retry, &stats);
  releaser.join();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->aggregate.records, 12u);
  EXPECT_GE(stats.attempts, 1u);
}

TEST_F(QueryServerTest, RetryingClientRedialsAfterTransportLoss) {
  auto store = std::make_shared<SnapshotStore>();
  QuerySnapshot snapshot;
  snapshot.dim = 2;
  snapshot.pools.push_back({-1, MakeGroups(0.0, 13)});
  store->Publish(std::move(snapshot));
  StartServer(store);

  auto client = QueryClient::Connect("127.0.0.1", server_->port(), 2000.0);
  ASSERT_TRUE(client.ok());
  Query query;
  query.kind = QueryKind::kAggregate;
  ASSERT_TRUE(client->Execute(query, 2000.0).ok());

  // Sabotage the transport: the next send fails, the client's retry
  // path redials and the call still succeeds.
  FailPoint::Arm("net.send", {.code = StatusCode::kUnavailable});
  QueryRetryOptions retry;
  retry.max_attempts = 4;
  retry.backoff.initial_backoff_ms = 5.0;
  QueryRetryStats stats;
  auto result = client->ExecuteWithRetry(query, retry, &stats);
  FailPoint::Reset();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GE(stats.redials, 1u);
  EXPECT_GE(stats.attempts, 2u);
}

TEST_F(QueryServerTest, NonRetryableInBandErrorsAreNotRetried) {
  auto store = std::make_shared<SnapshotStore>();
  QuerySnapshot snapshot;
  snapshot.dim = 2;
  snapshot.pools.push_back({-1, MakeGroups(0.0, 14)});
  store->Publish(std::move(snapshot));
  StartServer(store);

  auto client = QueryClient::Connect("127.0.0.1", server_->port(), 2000.0);
  ASSERT_TRUE(client.ok());
  Query bad;
  bad.kind = QueryKind::kAggregate;
  bad.aggregate.range.bounds.push_back({9, 0.0, 1.0});  // dim out of range
  QueryRetryOptions retry;
  retry.max_attempts = 5;
  QueryRetryStats stats;
  auto result = client->ExecuteWithRetry(bad, retry, &stats);
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(stats.attempts, 1u);  // deterministic error: one attempt only
}

}  // namespace
}  // namespace condensa::query
