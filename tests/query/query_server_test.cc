// QueryServer + QueryClient over real loopback TCP: request/response
// round trips, in-band errors for unanswerable queries, the
// no-snapshot-yet precondition, and snapshot pinning across Publish.

#include "query/server.h"

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "common/random.h"
#include "core/condensed_group_set.h"
#include "core/group_statistics.h"
#include "linalg/vector.h"
#include "net/frame.h"
#include "net/wire.h"
#include "query/client.h"
#include "query/query.h"
#include "query/snapshot.h"
#include "query/wire.h"

namespace condensa::query {
namespace {

using condensa::core::CondensedGroupSet;
using condensa::core::GroupStatistics;
using condensa::linalg::Vector;

Vector MakePoint(std::initializer_list<double> values) {
  Vector v(values.size());
  std::size_t i = 0;
  for (double value : values) v[i++] = value;
  return v;
}

CondensedGroupSet MakeGroups(double center, std::uint64_t seed) {
  Rng rng(seed);
  CondensedGroupSet groups(2, 4);
  for (std::size_t g = 0; g < 3; ++g) {
    GroupStatistics stats(2);
    for (std::size_t r = 0; r < 4; ++r) {
      Vector record(2);
      record[0] = center + rng.Gaussian(0.0, 0.2);
      record[1] = double(g) + rng.Gaussian(0.0, 0.2);
      stats.Add(record);
    }
    groups.AddGroup(std::move(stats));
  }
  return groups;
}

class QueryServerTest : public ::testing::Test {
 protected:
  void StartServer(std::shared_ptr<SnapshotStore> store) {
    QueryServerConfig config;
    config.poll_ms = 10.0;
    auto server = QueryServer::Create(std::move(config), std::move(store));
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    server_ = *std::move(server);
    serving_ = std::thread([this] {
      Status run = server_->Run();
      EXPECT_TRUE(run.ok()) << run.ToString();
    });
  }

  void TearDown() override {
    if (server_ != nullptr) {
      server_->Stop();
      serving_.join();
    }
  }

  std::unique_ptr<QueryServer> server_;
  std::thread serving_;
};

TEST_F(QueryServerTest, AnswersAggregateAndClassify) {
  auto store = std::make_shared<SnapshotStore>();
  QuerySnapshot snapshot;
  snapshot.dim = 2;
  snapshot.pools.push_back({0, MakeGroups(-3.0, 1)});
  snapshot.pools.push_back({1, MakeGroups(3.0, 2)});
  store->Publish(std::move(snapshot));
  StartServer(store);

  auto client =
      QueryClient::Connect("127.0.0.1", server_->port(), 2000.0);
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  Query aggregate;
  aggregate.kind = QueryKind::kAggregate;
  auto result = client->Execute(aggregate, 2000.0);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->snapshot_version, 1u);
  EXPECT_EQ(result->aggregate.groups_matched, 6u);
  EXPECT_EQ(result->aggregate.records, 24u);
  EXPECT_TRUE(result->aggregate.has_moments);

  Query classify;
  classify.kind = QueryKind::kClassify;
  classify.classify.points.push_back(MakePoint({-3.0, 1.0}));
  classify.classify.points.push_back(MakePoint({3.0, 1.0}));
  auto labels = client->Execute(classify, 2000.0);
  ASSERT_TRUE(labels.ok()) << labels.status().ToString();
  ASSERT_EQ(labels->classify.labels.size(), 2u);
  EXPECT_EQ(labels->classify.labels[0], 0);
  EXPECT_EQ(labels->classify.labels[1], 1);

  // Multiple requests ride one session; regeneration works remotely too.
  Query regenerate;
  regenerate.kind = QueryKind::kRegenerate;
  regenerate.regenerate.seed = 5;
  auto records = client->Execute(regenerate, 2000.0);
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->regenerate.records.size(), 24u);  // both pools
}

TEST_F(QueryServerTest, UnanswerableQueriesComeBackInBand) {
  auto store = std::make_shared<SnapshotStore>();
  QuerySnapshot snapshot;
  snapshot.dim = 2;
  snapshot.pools.push_back({-1, MakeGroups(0.0, 3)});
  store->Publish(std::move(snapshot));
  StartServer(store);

  auto client =
      QueryClient::Connect("127.0.0.1", server_->port(), 2000.0);
  ASSERT_TRUE(client.ok());

  // Classify against an unlabeled snapshot: FailedPrecondition, and the
  // session survives to answer the next request.
  Query classify;
  classify.kind = QueryKind::kClassify;
  classify.classify.points.push_back(MakePoint({0.0, 0.0}));
  auto bad = client->Execute(classify, 2000.0);
  EXPECT_EQ(bad.status().code(), StatusCode::kFailedPrecondition);

  Query aggregate;
  aggregate.kind = QueryKind::kAggregate;
  aggregate.aggregate.range.bounds.push_back({9, 0.0, 1.0});
  auto invalid = client->Execute(aggregate, 2000.0);
  EXPECT_EQ(invalid.status().code(), StatusCode::kInvalidArgument);

  aggregate.aggregate.range.bounds.clear();
  auto good = client->Execute(aggregate, 2000.0);
  ASSERT_TRUE(good.ok()) << good.status().ToString();
  EXPECT_EQ(good->aggregate.records, 12u);
}

TEST_F(QueryServerTest, NoSnapshotYetIsFailedPrecondition) {
  StartServer(std::make_shared<SnapshotStore>());
  auto client =
      QueryClient::Connect("127.0.0.1", server_->port(), 2000.0);
  ASSERT_TRUE(client.ok());
  Query query;
  query.kind = QueryKind::kAggregate;
  auto result = client->Execute(query, 2000.0);
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(QueryServerTest, UnexpectedFrameTypeGetsInBandError) {
  auto store = std::make_shared<SnapshotStore>();
  QuerySnapshot snapshot;
  snapshot.dim = 2;
  snapshot.pools.push_back({-1, MakeGroups(0.0, 4)});
  store->Publish(std::move(snapshot));
  StartServer(store);

  auto conn = net::TcpConnection::Connect("127.0.0.1", server_->port(),
                                          2000.0);
  ASSERT_TRUE(conn.ok());
  ASSERT_TRUE(conn->SendFrame(net::FrameType::kSubmit, "", 1000.0).ok());
  auto reply = conn->RecvFrame(2000.0);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->type, net::FrameType::kError);

  // Malformed Query payloads are also in-band errors, not dropped
  // sessions.
  ASSERT_TRUE(
      conn->SendFrame(net::FrameType::kQuery, "\xff\xff", 1000.0).ok());
  auto decode_error = conn->RecvFrame(2000.0);
  ASSERT_TRUE(decode_error.ok());
  EXPECT_EQ(decode_error->type, net::FrameType::kError);
}

TEST_F(QueryServerTest, LaterPublishChangesAnswersAndVersion) {
  auto store = std::make_shared<SnapshotStore>();
  QuerySnapshot first;
  first.dim = 2;
  first.pools.push_back({-1, MakeGroups(0.0, 5)});
  store->Publish(std::move(first));
  StartServer(store);

  auto client =
      QueryClient::Connect("127.0.0.1", server_->port(), 2000.0);
  ASSERT_TRUE(client.ok());
  Query query;
  query.kind = QueryKind::kAggregate;
  auto before = client->Execute(query, 2000.0);
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->snapshot_version, 1u);
  EXPECT_EQ(before->aggregate.records, 12u);

  QuerySnapshot second;
  second.dim = 2;
  second.pools.push_back({-1, MakeGroups(0.0, 5)});
  second.pools.push_back({-1, MakeGroups(1.0, 6)});
  store->Publish(std::move(second));

  auto after = client->Execute(query, 2000.0);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->snapshot_version, 2u);
  EXPECT_EQ(after->aggregate.records, 24u);
}

}  // namespace
}  // namespace condensa::query
