#include "linalg/vector.h"

#include <gtest/gtest.h>

#include <cmath>

namespace condensa::linalg {
namespace {

TEST(VectorTest, ConstructionVariants) {
  Vector zero(3);
  EXPECT_EQ(zero.dim(), 3u);
  EXPECT_DOUBLE_EQ(zero[0], 0.0);

  Vector filled(2, 1.5);
  EXPECT_DOUBLE_EQ(filled[0], 1.5);
  EXPECT_DOUBLE_EQ(filled[1], 1.5);

  Vector listed{1.0, 2.0, 3.0};
  EXPECT_EQ(listed.dim(), 3u);
  EXPECT_DOUBLE_EQ(listed[2], 3.0);

  Vector from_std(std::vector<double>{4.0, 5.0});
  EXPECT_DOUBLE_EQ(from_std[1], 5.0);

  Vector empty;
  EXPECT_TRUE(empty.empty());
}

TEST(VectorTest, ElementMutation) {
  Vector v(2);
  v[0] = 9.0;
  EXPECT_DOUBLE_EQ(v[0], 9.0);
}

TEST(VectorTest, AdditionAndSubtraction) {
  Vector a{1.0, 2.0};
  Vector b{3.0, -1.0};
  Vector sum = a + b;
  EXPECT_DOUBLE_EQ(sum[0], 4.0);
  EXPECT_DOUBLE_EQ(sum[1], 1.0);
  Vector diff = a - b;
  EXPECT_DOUBLE_EQ(diff[0], -2.0);
  EXPECT_DOUBLE_EQ(diff[1], 3.0);
}

TEST(VectorTest, ScalarMultiplyAndDivide) {
  Vector v{2.0, -4.0};
  Vector scaled = v * 0.5;
  EXPECT_DOUBLE_EQ(scaled[0], 1.0);
  EXPECT_DOUBLE_EQ(scaled[1], -2.0);
  Vector scaled2 = 2.0 * v;
  EXPECT_DOUBLE_EQ(scaled2[0], 4.0);
  Vector divided = v / 2.0;
  EXPECT_DOUBLE_EQ(divided[1], -2.0);
}

TEST(VectorTest, CompoundOperators) {
  Vector v{1.0, 1.0};
  v += Vector{1.0, 2.0};
  EXPECT_DOUBLE_EQ(v[1], 3.0);
  v -= Vector{0.5, 0.5};
  EXPECT_DOUBLE_EQ(v[0], 1.5);
  v *= 2.0;
  EXPECT_DOUBLE_EQ(v[0], 3.0);
  v /= 3.0;
  EXPECT_DOUBLE_EQ(v[0], 1.0);
}

TEST(VectorTest, NormAndSquaredNorm) {
  Vector v{3.0, 4.0};
  EXPECT_DOUBLE_EQ(v.SquaredNorm(), 25.0);
  EXPECT_DOUBLE_EQ(v.Norm(), 5.0);
}

TEST(VectorTest, SumAddsEntries) {
  Vector v{1.0, -2.0, 4.5};
  EXPECT_DOUBLE_EQ(v.Sum(), 3.5);
}

TEST(VectorTest, NormalizedHasUnitNorm) {
  Vector v{3.0, 4.0};
  Vector unit = v.Normalized();
  EXPECT_NEAR(unit.Norm(), 1.0, 1e-12);
  EXPECT_NEAR(unit[0], 0.6, 1e-12);
}

TEST(VectorTest, DotProduct) {
  EXPECT_DOUBLE_EQ(Dot(Vector{1.0, 2.0, 3.0}, Vector{4.0, -5.0, 6.0}), 12.0);
  EXPECT_DOUBLE_EQ(Dot(Vector{1.0, 0.0}, Vector{0.0, 1.0}), 0.0);
}

TEST(VectorTest, DistanceFunctions) {
  Vector a{0.0, 0.0};
  Vector b{3.0, 4.0};
  EXPECT_DOUBLE_EQ(SquaredDistance(a, b), 25.0);
  EXPECT_DOUBLE_EQ(Distance(a, b), 5.0);
  EXPECT_DOUBLE_EQ(Distance(a, a), 0.0);
}

TEST(VectorTest, ApproxEqualRespectsTolerance) {
  Vector a{1.0, 2.0};
  Vector b{1.0005, 2.0};
  EXPECT_TRUE(ApproxEqual(a, b, 1e-3));
  EXPECT_FALSE(ApproxEqual(a, b, 1e-4));
  EXPECT_FALSE(ApproxEqual(a, Vector{1.0}, 1.0));  // dim mismatch
}

TEST(VectorTest, IterationVisitsAllEntries) {
  Vector v{1.0, 2.0, 3.0};
  double total = 0.0;
  for (double x : v) total += x;
  EXPECT_DOUBLE_EQ(total, 6.0);
}

TEST(VectorTest, ToStringRendersEntries) {
  Vector v{1.0, 2.5};
  EXPECT_EQ(v.ToString(), "[1, 2.5]");
}

TEST(VectorDeathTest, MismatchedDimensionAborts) {
  Vector a{1.0, 2.0};
  Vector b{1.0};
  EXPECT_DEATH(a += b, "CHECK");
  EXPECT_DEATH((void)Dot(a, b), "CHECK");
}

TEST(VectorDeathTest, DivideByZeroAborts) {
  Vector v{1.0};
  EXPECT_DEATH(v /= 0.0, "CHECK");
}

}  // namespace
}  // namespace condensa::linalg
