#include "linalg/matrix.h"

#include <gtest/gtest.h>

#include <cmath>

namespace condensa::linalg {
namespace {

TEST(MatrixTest, ZeroConstruction) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 0.0);
}

TEST(MatrixTest, BraceConstruction) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
  EXPECT_DOUBLE_EQ(m(1, 1), 4.0);
}

TEST(MatrixTest, IdentityAndDiagonal) {
  Matrix id = Matrix::Identity(3);
  EXPECT_DOUBLE_EQ(id(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(id(0, 1), 0.0);
  Matrix diag = Matrix::Diagonal(Vector{2.0, 5.0});
  EXPECT_DOUBLE_EQ(diag(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(diag(1, 1), 5.0);
  EXPECT_DOUBLE_EQ(diag(0, 1), 0.0);
}

TEST(MatrixTest, RowAndColAccess) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  Vector row = m.Row(1);
  EXPECT_DOUBLE_EQ(row[0], 3.0);
  EXPECT_DOUBLE_EQ(row[1], 4.0);
  Vector col = m.Col(0);
  EXPECT_DOUBLE_EQ(col[0], 1.0);
  EXPECT_DOUBLE_EQ(col[1], 3.0);
}

TEST(MatrixTest, SetRowAndSetCol) {
  Matrix m(2, 2);
  m.SetRow(0, Vector{1.0, 2.0});
  m.SetCol(1, Vector{9.0, 8.0});
  EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m(0, 1), 9.0);
  EXPECT_DOUBLE_EQ(m(1, 1), 8.0);
}

TEST(MatrixTest, ArithmeticOperators) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  Matrix b{{1.0, 1.0}, {1.0, 1.0}};
  Matrix sum = a + b;
  EXPECT_DOUBLE_EQ(sum(1, 1), 5.0);
  Matrix diff = a - b;
  EXPECT_DOUBLE_EQ(diff(0, 0), 0.0);
  Matrix scaled = a * 2.0;
  EXPECT_DOUBLE_EQ(scaled(1, 0), 6.0);
  Matrix scaled2 = 0.5 * a;
  EXPECT_DOUBLE_EQ(scaled2(0, 1), 1.0);
}

TEST(MatrixTest, Transpose) {
  Matrix m{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  Matrix t = m.Transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
  EXPECT_DOUBLE_EQ(t(0, 0), 1.0);
}

TEST(MatrixTest, MatMulMatchesHandComputation) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  Matrix b{{5.0, 6.0}, {7.0, 8.0}};
  Matrix c = MatMul(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(MatrixTest, MatMulNonSquare) {
  Matrix a{{1.0, 2.0, 3.0}};       // 1x3
  Matrix b{{1.0}, {2.0}, {3.0}};   // 3x1
  Matrix c = MatMul(a, b);         // 1x1 = 14
  EXPECT_EQ(c.rows(), 1u);
  EXPECT_EQ(c.cols(), 1u);
  EXPECT_DOUBLE_EQ(c(0, 0), 14.0);
}

TEST(MatrixTest, MatMulWithIdentityIsNoOp) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_TRUE(ApproxEqual(MatMul(a, Matrix::Identity(2)), a, 1e-15));
  EXPECT_TRUE(ApproxEqual(MatMul(Matrix::Identity(2), a), a, 1e-15));
}

TEST(MatrixTest, MatVec) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  Vector v{1.0, 1.0};
  Vector out = MatVec(a, v);
  EXPECT_DOUBLE_EQ(out[0], 3.0);
  EXPECT_DOUBLE_EQ(out[1], 7.0);
}

TEST(MatrixTest, TransposeMatMulEqualsExplicitTranspose) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};  // 3x2
  Matrix b{{1.0, 0.0}, {0.0, 1.0}, {1.0, 1.0}};  // 3x2
  Matrix expected = MatMul(a.Transposed(), b);
  EXPECT_TRUE(ApproxEqual(TransposeMatMul(a, b), expected, 1e-12));
}

TEST(MatrixTest, OuterProduct) {
  Matrix outer = OuterProduct(Vector{1.0, 2.0}, Vector{3.0, 4.0, 5.0});
  EXPECT_EQ(outer.rows(), 2u);
  EXPECT_EQ(outer.cols(), 3u);
  EXPECT_DOUBLE_EQ(outer(1, 2), 10.0);
  EXPECT_DOUBLE_EQ(outer(0, 0), 3.0);
}

TEST(MatrixTest, TraceSumsDiagonal) {
  Matrix m{{1.0, 9.0}, {9.0, 4.0}};
  EXPECT_DOUBLE_EQ(m.Trace(), 5.0);
}

TEST(MatrixTest, MaxAbs) {
  Matrix m{{1.0, -7.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(m.MaxAbs(), 7.0);
  EXPECT_DOUBLE_EQ(Matrix().MaxAbs(), 0.0);
}

TEST(MatrixTest, IsSymmetric) {
  Matrix sym{{1.0, 2.0}, {2.0, 3.0}};
  EXPECT_TRUE(sym.IsSymmetric(1e-12));
  Matrix asym{{1.0, 2.0}, {2.1, 3.0}};
  EXPECT_FALSE(asym.IsSymmetric(1e-3));
  EXPECT_TRUE(asym.IsSymmetric(0.2));
  Matrix rect(2, 3);
  EXPECT_FALSE(rect.IsSymmetric(1.0));
}

TEST(MatrixTest, FrobeniusDistance) {
  Matrix a{{1.0, 0.0}, {0.0, 1.0}};
  Matrix b{{0.0, 0.0}, {0.0, 0.0}};
  EXPECT_NEAR(FrobeniusDistance(a, b), std::sqrt(2.0), 1e-12);
  EXPECT_DOUBLE_EQ(FrobeniusDistance(a, a), 0.0);
}

TEST(MatrixTest, ApproxEqualShapeMismatch) {
  EXPECT_FALSE(ApproxEqual(Matrix(2, 2), Matrix(2, 3), 1.0));
}

TEST(MatrixDeathTest, IncompatibleShapesAbort) {
  Matrix a(2, 3);
  Matrix b(2, 2);
  EXPECT_DEATH((void)MatMul(a, b), "CHECK");
  EXPECT_DEATH(a += b, "CHECK");
  EXPECT_DEATH((void)Matrix(2, 3).Trace(), "CHECK");
}

}  // namespace
}  // namespace condensa::linalg
