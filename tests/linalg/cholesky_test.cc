#include "linalg/cholesky.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"

namespace condensa::linalg {
namespace {

TEST(CholeskyTest, KnownFactorization) {
  // A = [[4,2],[2,3]] -> L = [[2,0],[1,sqrt(2)]].
  Matrix a{{4.0, 2.0}, {2.0, 3.0}};
  auto l = CholeskyFactor(a);
  ASSERT_TRUE(l.ok());
  EXPECT_NEAR((*l)(0, 0), 2.0, 1e-12);
  EXPECT_NEAR((*l)(1, 0), 1.0, 1e-12);
  EXPECT_NEAR((*l)(1, 1), std::sqrt(2.0), 1e-12);
  EXPECT_NEAR((*l)(0, 1), 0.0, 1e-12);
}

TEST(CholeskyTest, IdentityFactorsToIdentity) {
  auto l = CholeskyFactor(Matrix::Identity(4));
  ASSERT_TRUE(l.ok());
  EXPECT_TRUE(ApproxEqual(*l, Matrix::Identity(4), 1e-12));
}

TEST(CholeskyTest, RejectsEmptyNonSquareAsymmetric) {
  EXPECT_FALSE(CholeskyFactor(Matrix()).ok());
  EXPECT_FALSE(CholeskyFactor(Matrix(2, 3)).ok());
  EXPECT_FALSE(CholeskyFactor(Matrix{{1.0, 2.0}, {0.0, 1.0}}).ok());
}

TEST(CholeskyTest, RejectsIndefiniteMatrix) {
  Matrix a{{1.0, 2.0}, {2.0, 1.0}};  // eigenvalues 3 and -1
  auto result = CholeskyFactor(a);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(IsFailedPrecondition(result.status()));
}

TEST(CholeskyTest, RejectsSingularMatrix) {
  Matrix a{{1.0, 1.0}, {1.0, 1.0}};  // rank 1
  EXPECT_FALSE(CholeskyFactor(a).ok());
}

class CholeskyPropertyTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CholeskyPropertyTest, FactorReproducesMatrix) {
  const std::size_t d = GetParam();
  Rng rng(500 + d);
  Matrix b(d, d);
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = 0; j < d; ++j) {
      b(i, j) = rng.Gaussian();
    }
  }
  // SPD: B Bᵀ + I.
  Matrix a = MatMul(b, b.Transposed()) + Matrix::Identity(d);
  auto l = CholeskyFactor(a);
  ASSERT_TRUE(l.ok());
  Matrix reconstructed = MatMul(*l, l->Transposed());
  EXPECT_TRUE(ApproxEqual(reconstructed, a, 1e-8 * std::max(1.0, a.MaxAbs())));
}

TEST_P(CholeskyPropertyTest, SolveSatisfiesSystem) {
  const std::size_t d = GetParam();
  Rng rng(900 + d);
  Matrix b(d, d);
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = 0; j < d; ++j) {
      b(i, j) = rng.Gaussian();
    }
  }
  Matrix a = MatMul(b, b.Transposed()) + Matrix::Identity(d);
  Vector rhs(d);
  for (std::size_t i = 0; i < d; ++i) rhs[i] = rng.Gaussian();

  auto l = CholeskyFactor(a);
  ASSERT_TRUE(l.ok());
  Vector x = CholeskySolve(*l, rhs);
  Vector ax = MatVec(a, x);
  EXPECT_TRUE(ApproxEqual(ax, rhs, 1e-7 * std::max(1.0, a.MaxAbs())));
}

INSTANTIATE_TEST_SUITE_P(Dimensions, CholeskyPropertyTest,
                         ::testing::Values(1, 2, 4, 8, 16, 32));

TEST(CholeskyTest, LogDetMatchesKnownValue) {
  Matrix a = Matrix::Diagonal(Vector{4.0, 9.0});
  auto l = CholeskyFactor(a);
  ASSERT_TRUE(l.ok());
  EXPECT_NEAR(CholeskyLogDet(*l), std::log(36.0), 1e-12);
}

TEST(CholeskyTest, SolveIdentityReturnsRhs) {
  auto l = CholeskyFactor(Matrix::Identity(3));
  ASSERT_TRUE(l.ok());
  Vector rhs{1.0, -2.0, 3.0};
  EXPECT_TRUE(ApproxEqual(CholeskySolve(*l, rhs), rhs, 1e-12));
}

}  // namespace
}  // namespace condensa::linalg
