#include "linalg/stats.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"

namespace condensa::linalg {
namespace {

TEST(MeanVectorTest, MatchesHandComputation) {
  std::vector<Vector> points = {Vector{1.0, 2.0}, Vector{3.0, 6.0}};
  Vector mean = MeanVector(points);
  EXPECT_DOUBLE_EQ(mean[0], 2.0);
  EXPECT_DOUBLE_EQ(mean[1], 4.0);
}

TEST(MeanVectorTest, SinglePointIsItsOwnMean) {
  std::vector<Vector> points = {Vector{5.0, -1.0}};
  EXPECT_TRUE(ApproxEqual(MeanVector(points), points[0], 1e-15));
}

TEST(CovarianceMatrixTest, SinglePointHasZeroCovariance) {
  std::vector<Vector> points = {Vector{5.0, -1.0}};
  Matrix cov = CovarianceMatrix(points);
  EXPECT_TRUE(ApproxEqual(cov, Matrix(2, 2), 1e-15));
}

TEST(CovarianceMatrixTest, MatchesHandComputation) {
  // Points (0,0), (2,2): mean (1,1); population covariance [[1,1],[1,1]].
  std::vector<Vector> points = {Vector{0.0, 0.0}, Vector{2.0, 2.0}};
  Matrix cov = CovarianceMatrix(points);
  EXPECT_TRUE(ApproxEqual(cov, Matrix{{1.0, 1.0}, {1.0, 1.0}}, 1e-12));
}

TEST(CovarianceMatrixTest, DividesByNNotNMinusOne) {
  // Population (not sample) covariance, as in the paper's Observation 2.
  std::vector<Vector> points = {Vector{0.0}, Vector{1.0}, Vector{2.0}};
  Matrix cov = CovarianceMatrix(points);
  EXPECT_NEAR(cov(0, 0), 2.0 / 3.0, 1e-12);
}

TEST(CovarianceMatrixTest, UncorrelatedDimensionsNearZeroOffDiagonal) {
  Rng rng(7);
  std::vector<Vector> points;
  for (int i = 0; i < 20000; ++i) {
    points.push_back(Vector{rng.Gaussian(), rng.Gaussian()});
  }
  Matrix cov = CovarianceMatrix(points);
  EXPECT_NEAR(cov(0, 0), 1.0, 0.05);
  EXPECT_NEAR(cov(1, 1), 1.0, 0.05);
  EXPECT_NEAR(cov(0, 1), 0.0, 0.05);
}

TEST(PearsonCorrelationTest, PerfectPositive) {
  EXPECT_NEAR(PearsonCorrelation({1.0, 2.0, 3.0}, {2.0, 4.0, 6.0}), 1.0,
              1e-12);
}

TEST(PearsonCorrelationTest, PerfectNegative) {
  EXPECT_NEAR(PearsonCorrelation({1.0, 2.0, 3.0}, {6.0, 4.0, 2.0}), -1.0,
              1e-12);
}

TEST(PearsonCorrelationTest, ZeroVarianceReturnsZero) {
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1.0, 1.0, 1.0}, {1.0, 2.0, 3.0}), 0.0);
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1.0, 2.0, 3.0}, {5.0, 5.0, 5.0}), 0.0);
}

TEST(PearsonCorrelationTest, InvariantToAffineTransform) {
  std::vector<double> xs = {1.0, 4.0, 2.0, 8.0, 5.0};
  std::vector<double> ys = {2.0, 3.0, 1.0, 9.0, 4.0};
  double base = PearsonCorrelation(xs, ys);
  std::vector<double> xs_scaled;
  for (double x : xs) xs_scaled.push_back(3.0 * x - 7.0);
  EXPECT_NEAR(PearsonCorrelation(xs_scaled, ys), base, 1e-12);
}

TEST(ScalarStatsTest, MatchesHandComputation) {
  ScalarStats stats = ComputeScalarStats({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(stats.mean, 2.5);
  EXPECT_DOUBLE_EQ(stats.min, 1.0);
  EXPECT_DOUBLE_EQ(stats.max, 4.0);
  EXPECT_NEAR(stats.stddev, std::sqrt(1.25), 1e-12);
}

TEST(ScalarStatsTest, SingleValue) {
  ScalarStats stats = ComputeScalarStats({7.0});
  EXPECT_DOUBLE_EQ(stats.mean, 7.0);
  EXPECT_DOUBLE_EQ(stats.stddev, 0.0);
  EXPECT_DOUBLE_EQ(stats.min, 7.0);
  EXPECT_DOUBLE_EQ(stats.max, 7.0);
}

}  // namespace
}  // namespace condensa::linalg
