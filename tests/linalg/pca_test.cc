#include "linalg/pca.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"

namespace condensa::linalg {
namespace {

std::vector<Vector> AnisotropicCloud(Rng& rng, std::size_t n) {
  // Strong spread along (1, 1)/sqrt(2), weak along (1, -1)/sqrt(2).
  std::vector<Vector> points;
  for (std::size_t i = 0; i < n; ++i) {
    double major = rng.Gaussian(0.0, 3.0);
    double minor = rng.Gaussian(0.0, 0.3);
    points.push_back(Vector{(major + minor) / std::sqrt(2.0),
                            (major - minor) / std::sqrt(2.0)});
  }
  return points;
}

TEST(PcaTest, RejectsBadInput) {
  EXPECT_FALSE(ComputePca({}).ok());
  EXPECT_FALSE(ComputePca({Vector{1.0}, Vector{1.0, 2.0}}).ok());
}

TEST(PcaTest, FindsDominantDirection) {
  Rng rng(1);
  auto pca = ComputePca(AnisotropicCloud(rng, 5000));
  ASSERT_TRUE(pca.ok());
  // First component aligns with (1,1)/sqrt(2) up to sign.
  Vector first = pca->components.Col(0);
  double alignment =
      std::abs(first[0] + first[1]) / std::sqrt(2.0);
  EXPECT_NEAR(alignment, 1.0, 0.01);
  EXPECT_GT(pca->explained_variance[0], pca->explained_variance[1]);
  EXPECT_NEAR(pca->explained_variance[0], 9.0, 0.5);
  EXPECT_NEAR(pca->explained_variance[1], 0.09, 0.02);
}

TEST(PcaTest, ExplainedVarianceRatio) {
  Rng rng(2);
  auto pca = ComputePca(AnisotropicCloud(rng, 3000));
  ASSERT_TRUE(pca.ok());
  EXPECT_NEAR(pca->ExplainedVarianceRatio(2), 1.0, 1e-12);
  EXPECT_GT(pca->ExplainedVarianceRatio(1), 0.95);
  EXPECT_DOUBLE_EQ(pca->ExplainedVarianceRatio(0), 0.0);
}

TEST(PcaTest, ProjectReconstructRoundTripFullRank) {
  Rng rng(3);
  std::vector<Vector> points = AnisotropicCloud(rng, 100);
  auto pca = ComputePca(points);
  ASSERT_TRUE(pca.ok());
  for (const Vector& p : points) {
    Vector reconstructed = pca->Reconstruct(pca->Project(p, 2), 2);
    EXPECT_TRUE(ApproxEqual(reconstructed, p, 1e-9));
  }
}

TEST(PcaTest, RankOneReconstructionErrorEqualsMinorVariance) {
  Rng rng(4);
  std::vector<Vector> points = AnisotropicCloud(rng, 5000);
  auto pca = ComputePca(points);
  ASSERT_TRUE(pca.ok());
  // Dropping the second component loses exactly its variance on average.
  double error = ReconstructionError(*pca, points, 1);
  EXPECT_NEAR(error, pca->explained_variance[1], 0.01);
}

TEST(PcaTest, SubspaceAffinityValidation) {
  Rng rng(5);
  auto a = ComputePca(AnisotropicCloud(rng, 200));
  ASSERT_TRUE(a.ok());
  EXPECT_FALSE(PrincipalSubspaceAffinity(*a, *a, 0).ok());
  EXPECT_FALSE(PrincipalSubspaceAffinity(*a, *a, 3).ok());
}

TEST(PcaTest, SubspaceAffinityIdenticalIsOne) {
  Rng rng(6);
  auto a = ComputePca(AnisotropicCloud(rng, 500));
  ASSERT_TRUE(a.ok());
  auto affinity = PrincipalSubspaceAffinity(*a, *a, 1);
  ASSERT_TRUE(affinity.ok());
  EXPECT_NEAR(*affinity, 1.0, 1e-9);
}

TEST(PcaTest, SubspaceAffinityOrthogonalIsZero) {
  // Hand-build two PCA results with orthogonal leading components.
  PcaResult a;
  a.mean = Vector{0.0, 0.0};
  a.components = Matrix{{1.0, 0.0}, {0.0, 1.0}};
  a.explained_variance = Vector{2.0, 1.0};
  PcaResult b = a;
  b.components = Matrix{{0.0, 1.0}, {1.0, 0.0}};  // swapped
  auto affinity = PrincipalSubspaceAffinity(a, b, 1);
  ASSERT_TRUE(affinity.ok());
  EXPECT_NEAR(*affinity, 0.0, 1e-12);
  // Full 2-d subspaces coincide again.
  auto full = PrincipalSubspaceAffinity(a, b, 2);
  ASSERT_TRUE(full.ok());
  EXPECT_NEAR(*full, 1.0, 1e-12);
}

TEST(PcaTest, AffinityInvariantToComponentSign) {
  Rng rng(7);
  auto a = ComputePca(AnisotropicCloud(rng, 400));
  ASSERT_TRUE(a.ok());
  PcaResult flipped = *a;
  for (std::size_t r = 0; r < flipped.components.rows(); ++r) {
    flipped.components(r, 0) = -flipped.components(r, 0);
  }
  auto affinity = PrincipalSubspaceAffinity(*a, flipped, 1);
  ASSERT_TRUE(affinity.ok());
  EXPECT_NEAR(*affinity, 1.0, 1e-12);
}

TEST(PcaTest, TwoIndependentDrawsAgreeOnSubspace) {
  Rng rng_a(8), rng_b(9);
  auto a = ComputePca(AnisotropicCloud(rng_a, 4000));
  auto b = ComputePca(AnisotropicCloud(rng_b, 4000));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  auto affinity = PrincipalSubspaceAffinity(*a, *b, 1);
  ASSERT_TRUE(affinity.ok());
  EXPECT_GT(*affinity, 0.99);
}

}  // namespace
}  // namespace condensa::linalg
