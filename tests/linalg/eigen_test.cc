#include "linalg/eigen.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"

namespace condensa::linalg {
namespace {

// Checks Vᵀ V = I to the given tolerance.
void ExpectOrthonormal(const Matrix& v, double tolerance) {
  Matrix gram = TransposeMatMul(v, v);
  EXPECT_TRUE(ApproxEqual(gram, Matrix::Identity(v.cols()), tolerance))
      << gram.ToString();
}

TEST(EigenTest, DiagonalMatrixEigenvaluesSortedDescending) {
  Matrix a = Matrix::Diagonal(Vector{1.0, 5.0, 3.0});
  auto result = JacobiEigenDecomposition(a);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->eigenvalues[0], 5.0, 1e-12);
  EXPECT_NEAR(result->eigenvalues[1], 3.0, 1e-12);
  EXPECT_NEAR(result->eigenvalues[2], 1.0, 1e-12);
}

TEST(EigenTest, KnownTwoByTwo) {
  // Eigenvalues of [[2,1],[1,2]] are 3 and 1.
  Matrix a{{2.0, 1.0}, {1.0, 2.0}};
  auto result = JacobiEigenDecomposition(a);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->eigenvalues[0], 3.0, 1e-10);
  EXPECT_NEAR(result->eigenvalues[1], 1.0, 1e-10);
  // Leading eigenvector is (1,1)/sqrt(2) up to sign.
  Vector e1 = result->Eigenvector(0);
  EXPECT_NEAR(std::abs(e1[0]), 1.0 / std::sqrt(2.0), 1e-10);
  EXPECT_NEAR(e1[0], e1[1], 1e-10);
}

TEST(EigenTest, IdentityHasUnitEigenvalues) {
  auto result = JacobiEigenDecomposition(Matrix::Identity(4));
  ASSERT_TRUE(result.ok());
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(result->eigenvalues[i], 1.0, 1e-12);
  }
}

TEST(EigenTest, ZeroMatrixHasZeroEigenvalues) {
  auto result = JacobiEigenDecomposition(Matrix(3, 3));
  ASSERT_TRUE(result.ok());
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(result->eigenvalues[i], 0.0, 1e-12);
  }
  ExpectOrthonormal(result->eigenvectors, 1e-12);
}

TEST(EigenTest, RejectsEmptyMatrix) {
  EXPECT_FALSE(JacobiEigenDecomposition(Matrix()).ok());
}

TEST(EigenTest, RejectsNonSquare) {
  EXPECT_FALSE(JacobiEigenDecomposition(Matrix(2, 3)).ok());
}

TEST(EigenTest, RejectsAsymmetric) {
  Matrix a{{1.0, 2.0}, {0.5, 1.0}};
  auto result = JacobiEigenDecomposition(a);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(IsInvalidArgument(result.status()));
}

TEST(EigenTest, OneByOneMatrix) {
  Matrix a{{7.0}};
  auto result = JacobiEigenDecomposition(a);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->eigenvalues[0], 7.0, 1e-12);
  EXPECT_NEAR(std::abs(result->eigenvectors(0, 0)), 1.0, 1e-12);
}

TEST(EigenTest, HandlesNegativeEigenvalues) {
  // [[0,1],[1,0]] has eigenvalues +1 and -1.
  Matrix a{{0.0, 1.0}, {1.0, 0.0}};
  auto result = JacobiEigenDecomposition(a);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->eigenvalues[0], 1.0, 1e-10);
  EXPECT_NEAR(result->eigenvalues[1], -1.0, 1e-10);
}

TEST(EigenTest, CovarianceVariantClampsNegatives) {
  Matrix a{{0.0, 1.0}, {1.0, 0.0}};
  auto result = CovarianceEigenDecomposition(a);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->eigenvalues[1], 0.0, 1e-12);
}

TEST(EigenTest, TraceEqualsEigenvalueSum) {
  Rng rng(99);
  Matrix a(5, 5);
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = i; j < 5; ++j) {
      double v = rng.Gaussian();
      a(i, j) = v;
      a(j, i) = v;
    }
  }
  auto result = JacobiEigenDecomposition(a);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->eigenvalues.Sum(), a.Trace(), 1e-9);
}

// Property suite over random symmetric PSD matrices of varying dimension.
class EigenPropertyTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EigenPropertyTest, ReconstructionRecoversInput) {
  const std::size_t d = GetParam();
  Rng rng(1000 + d);
  // Build PSD matrix A = B Bᵀ from random B.
  Matrix b(d, d);
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = 0; j < d; ++j) {
      b(i, j) = rng.Gaussian();
    }
  }
  Matrix a = MatMul(b, b.Transposed());

  auto result = JacobiEigenDecomposition(a);
  ASSERT_TRUE(result.ok());
  double scale = std::max(1.0, a.MaxAbs());
  EXPECT_TRUE(ApproxEqual(result->Reconstruct(), a, 1e-8 * scale))
      << "dim=" << d;
}

TEST_P(EigenPropertyTest, EigenvectorsAreOrthonormal) {
  const std::size_t d = GetParam();
  Rng rng(2000 + d);
  Matrix b(d, d);
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = 0; j < d; ++j) {
      b(i, j) = rng.Gaussian();
    }
  }
  Matrix a = MatMul(b, b.Transposed());
  auto result = JacobiEigenDecomposition(a);
  ASSERT_TRUE(result.ok());
  ExpectOrthonormal(result->eigenvectors, 1e-9);
}

TEST_P(EigenPropertyTest, EigenpairsSatisfyDefinition) {
  const std::size_t d = GetParam();
  Rng rng(3000 + d);
  Matrix b(d, d);
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = 0; j < d; ++j) {
      b(i, j) = rng.Gaussian();
    }
  }
  Matrix a = MatMul(b, b.Transposed());
  auto result = JacobiEigenDecomposition(a);
  ASSERT_TRUE(result.ok());
  double scale = std::max(1.0, a.MaxAbs());
  for (std::size_t i = 0; i < d; ++i) {
    Vector v = result->Eigenvector(i);
    Vector av = MatVec(a, v);
    Vector lv = v * result->eigenvalues[i];
    EXPECT_TRUE(ApproxEqual(av, lv, 1e-7 * scale)) << "pair " << i;
  }
}

TEST_P(EigenPropertyTest, PsdEigenvaluesNonNegativeAndSorted) {
  const std::size_t d = GetParam();
  Rng rng(4000 + d);
  Matrix b(d, d);
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = 0; j < d; ++j) {
      b(i, j) = rng.Gaussian();
    }
  }
  Matrix a = MatMul(b, b.Transposed());
  auto result = JacobiEigenDecomposition(a);
  ASSERT_TRUE(result.ok());
  for (std::size_t i = 0; i < d; ++i) {
    EXPECT_GE(result->eigenvalues[i], -1e-8);
    if (i > 0) {
      EXPECT_LE(result->eigenvalues[i], result->eigenvalues[i - 1] + 1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Dimensions, EigenPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST(EigenTest, RankDeficientMatrix) {
  // Rank-1: outer product of (1,2,3) with itself.
  Vector v{1.0, 2.0, 3.0};
  Matrix a = OuterProduct(v, v);
  auto result = JacobiEigenDecomposition(a);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->eigenvalues[0], v.SquaredNorm(), 1e-9);
  EXPECT_NEAR(result->eigenvalues[1], 0.0, 1e-9);
  EXPECT_NEAR(result->eigenvalues[2], 0.0, 1e-9);
  // Leading eigenvector parallel to v.
  Vector e1 = result->Eigenvector(0);
  double cosine = std::abs(Dot(e1, v) / v.Norm());
  EXPECT_NEAR(cosine, 1.0, 1e-9);
}

}  // namespace
}  // namespace condensa::linalg
