#include "backend/registry.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "backend/backend.h"
#include "common/random.h"
#include "common/status.h"
#include "core/condensed_group_set.h"
#include "core/engine.h"

namespace condensa::backend {
namespace {

TEST(RegistryTest, GlobalIsASingleton) {
  EXPECT_EQ(&Registry::Global(), &Registry::Global());
}

TEST(RegistryTest, BuiltInsAreRegistered) {
  for (const char* id : {"condensation", "mdav", "mdav-eigen"}) {
    auto backend = Registry::Global().Get(id);
    ASSERT_TRUE(backend.ok()) << id;
    EXPECT_EQ((*backend)->info().id, id);
    EXPECT_EQ((*backend)->info().version, 1);
    EXPECT_FALSE((*backend)->info().summary.empty());
  }
}

TEST(RegistryTest, UnknownIdIsNotFoundAndListsAvailable) {
  auto backend = Registry::Global().Get("bogus");
  ASSERT_FALSE(backend.ok());
  EXPECT_TRUE(IsNotFound(backend.status()));
  const std::string message(backend.status().message());
  EXPECT_NE(message.find("bogus"), std::string::npos);
  EXPECT_NE(message.find("condensation"), std::string::npos);
  EXPECT_NE(message.find("mdav"), std::string::npos);
}

TEST(RegistryTest, IdsAreSortedAndContainBuiltIns) {
  const std::vector<std::string> ids = Registry::Global().Ids();
  EXPECT_TRUE(std::is_sorted(ids.begin(), ids.end()));
  for (const char* id : {"condensation", "mdav", "mdav-eigen"}) {
    EXPECT_NE(std::find(ids.begin(), ids.end(), id), ids.end()) << id;
  }
}

TEST(RegistryTest, IdListJoinsEveryId) {
  const std::string list = Registry::Global().IdList();
  for (const std::string& id : Registry::Global().Ids()) {
    EXPECT_NE(list.find(id), std::string::npos) << id;
  }
}

TEST(ApplyBackendTest, BindsIdVersionAndHooks) {
  core::CondensationConfig config;
  ASSERT_TRUE(ApplyBackend("mdav", &config).ok());
  EXPECT_EQ(config.backend, "mdav");
  EXPECT_EQ(config.backend_version, 1);
  EXPECT_TRUE(static_cast<bool>(config.group_construction));
  // mdav regenerates by centroid replacement, so a sampler is bound.
  EXPECT_TRUE(static_cast<bool>(config.group_sampler));
}

TEST(ApplyBackendTest, CondensationUsesBuiltInSampler) {
  core::CondensationConfig config;
  ASSERT_TRUE(ApplyBackend("condensation", &config).ok());
  EXPECT_EQ(config.backend, core::CondensedGroupSet::kDefaultBackendId);
  EXPECT_TRUE(static_cast<bool>(config.group_construction));
  // Null sampler = the paper's eigendecomposition regeneration.
  EXPECT_FALSE(static_cast<bool>(config.group_sampler));
}

TEST(ApplyBackendTest, UnknownIdLeavesConfigUntouched) {
  core::CondensationConfig config;
  Status status = ApplyBackend("nope", &config);
  ASSERT_FALSE(status.ok());
  EXPECT_TRUE(IsNotFound(status));
  EXPECT_EQ(config.backend, core::CondensedGroupSet::kDefaultBackendId);
  EXPECT_FALSE(static_cast<bool>(config.group_construction));
  EXPECT_FALSE(static_cast<bool>(config.group_sampler));
}

TEST(ApplyBackendTest, ConstructionHookStampsTheResult) {
  core::CondensationConfig config;
  ASSERT_TRUE(ApplyBackend("mdav", &config).ok());
  std::vector<linalg::Vector> points;
  Rng rng(7);
  for (int i = 0; i < 20; ++i) {
    points.push_back(linalg::Vector{rng.Gaussian(0.0, 1.0),
                                    rng.Gaussian(0.0, 1.0)});
  }
  auto groups = config.group_construction(points, 5, rng);
  ASSERT_TRUE(groups.ok());
  EXPECT_EQ(groups->backend_id(), "mdav");
  EXPECT_EQ(groups->backend_version(), 1);
}

}  // namespace
}  // namespace condensa::backend
