#include "backend/mdav.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "backend/backend.h"
#include "common/random.h"
#include "common/status.h"
#include "core/condensed_group_set.h"
#include "core/group_statistics.h"
#include "core/serialization.h"
#include "linalg/vector.h"

namespace condensa::backend {
namespace {

using core::CondensedGroupSet;
using core::GroupStatistics;
using linalg::Vector;

std::vector<Vector> MakePoints(std::size_t n, std::size_t dim,
                               std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Vector> points;
  points.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Vector p(dim);
    for (std::size_t j = 0; j < dim; ++j) {
      p[j] = rng.Gaussian(static_cast<double>(i % 3), 1.0);
    }
    points.push_back(std::move(p));
  }
  return points;
}

TEST(MdavTest, EveryGroupSizeIsWithinKAndTwoKMinusOne) {
  for (std::size_t k : {2u, 3u, 5u, 10u}) {
    // n sweeps across every endgame branch: exactly k, the [k, 2k)
    // single-group tail, the [2k, 3k) two-group tail, and larger pools
    // that exercise the main loop.
    for (std::size_t n :
         {k, 2 * k - 1, 2 * k, 3 * k - 1, 3 * k, 4 * k + 1, 10 * k + 3}) {
      auto groups = MdavBuildGroups(MakePoints(n, 4, 17 * n + k), k);
      ASSERT_TRUE(groups.ok()) << "n=" << n << " k=" << k;
      std::size_t total = 0;
      for (const GroupStatistics& group : groups->groups()) {
        EXPECT_GE(group.count(), k) << "n=" << n << " k=" << k;
        EXPECT_LE(group.count(), 2 * k - 1) << "n=" << n << " k=" << k;
        total += group.count();
      }
      EXPECT_EQ(total, n) << "n=" << n << " k=" << k;
      EXPECT_EQ(groups->TotalRecords(), n);
    }
  }
}

TEST(MdavTest, MomentsAreBitExactFoldsOfTheAssignedMembers) {
  const std::vector<Vector> points = MakePoints(47, 3, 99);
  std::vector<std::vector<std::size_t>> assignments;
  auto groups = MdavBuildGroups(points, 5, &assignments);
  ASSERT_TRUE(groups.ok());
  ASSERT_EQ(assignments.size(), groups->num_groups());

  for (std::size_t g = 0; g < groups->num_groups(); ++g) {
    // Re-fold the assigned members in order; additive moments must match
    // the construction's aggregates bit for bit.
    GroupStatistics refold(3);
    for (std::size_t index : assignments[g]) {
      ASSERT_LT(index, points.size());
      refold.Add(points[index]);
    }
    const GroupStatistics& built = groups->group(g);
    ASSERT_EQ(refold.count(), built.count());
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_EQ(refold.first_order()[j], built.first_order()[j]);
      for (std::size_t i = 0; i <= j; ++i) {
        EXPECT_EQ(refold.second_order()(i, j), built.second_order()(i, j));
      }
    }
  }
}

TEST(MdavTest, AssignmentsPartitionTheInput) {
  const std::vector<Vector> points = MakePoints(33, 2, 5);
  std::vector<std::vector<std::size_t>> assignments;
  ASSERT_TRUE(MdavBuildGroups(points, 4, &assignments).ok());
  std::vector<bool> seen(points.size(), false);
  for (const auto& members : assignments) {
    for (std::size_t index : members) {
      ASSERT_LT(index, seen.size());
      EXPECT_FALSE(seen[index]) << "record " << index << " assigned twice";
      seen[index] = true;
    }
  }
  for (std::size_t i = 0; i < seen.size(); ++i) {
    EXPECT_TRUE(seen[i]) << "record " << i << " never assigned";
  }
}

TEST(MdavTest, MergeIsCommutativeOnMdavGroups) {
  auto groups = MdavBuildGroups(MakePoints(30, 3, 11), 5);
  ASSERT_TRUE(groups.ok());
  ASSERT_GE(groups->num_groups(), 2u);
  GroupStatistics ab = groups->group(0);
  ab.Merge(groups->group(1));
  GroupStatistics ba = groups->group(1);
  ba.Merge(groups->group(0));
  ASSERT_EQ(ab.count(), ba.count());
  for (std::size_t j = 0; j < 3; ++j) {
    // Two-operand double addition commutes exactly.
    EXPECT_EQ(ab.first_order()[j], ba.first_order()[j]);
    for (std::size_t i = 0; i <= j; ++i) {
      EXPECT_EQ(ab.second_order()(i, j), ba.second_order()(i, j));
    }
  }
}

TEST(MdavTest, MergeIsAssociativeOnMdavGroups) {
  auto groups = MdavBuildGroups(MakePoints(45, 3, 13), 5);
  ASSERT_TRUE(groups.ok());
  ASSERT_GE(groups->num_groups(), 3u);
  GroupStatistics left = groups->group(0);
  left.Merge(groups->group(1));
  left.Merge(groups->group(2));
  GroupStatistics bc = groups->group(1);
  bc.Merge(groups->group(2));
  GroupStatistics right = groups->group(0);
  right.Merge(bc);
  ASSERT_EQ(left.count(), right.count());
  for (std::size_t j = 0; j < 3; ++j) {
    // Association can reorder rounding, so compare to within one ulp-ish
    // relative tolerance rather than bit-for-bit.
    EXPECT_NEAR(left.first_order()[j], right.first_order()[j],
                1e-12 * (1.0 + std::abs(left.first_order()[j])));
    for (std::size_t i = 0; i <= j; ++i) {
      EXPECT_NEAR(left.second_order()(i, j), right.second_order()(i, j),
                  1e-12 * (1.0 + std::abs(left.second_order()(i, j))));
    }
  }
}

TEST(MdavTest, ConstructionIsDeterministic) {
  const std::vector<Vector> points = MakePoints(61, 5, 23);
  auto first = MdavBuildGroups(points, 7);
  auto second = MdavBuildGroups(points, 7);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(core::SerializeGroupSet(*first), core::SerializeGroupSet(*second));
}

TEST(MdavTest, ConstructionHookNeverDrawsFromTheRng) {
  const std::vector<Vector> points = MakePoints(40, 3, 31);
  Rng used(123);
  Rng untouched(123);
  auto backend = MakeMdavBackend();
  auto groups = backend->ConstructionHook()(points, 5, used);
  ASSERT_TRUE(groups.ok());
  // MDAV is deterministic: the rng passed through the hook must come out
  // in the same state it went in.
  EXPECT_EQ(used.NextUint64(), untouched.NextUint64());
}

TEST(MdavTest, RejectsDegenerateInputs) {
  const std::vector<Vector> points = MakePoints(10, 2, 3);
  EXPECT_TRUE(IsInvalidArgument(MdavBuildGroups(points, 0).status()));
  EXPECT_TRUE(IsInvalidArgument(MdavBuildGroups({}, 3).status()));
  EXPECT_TRUE(IsInvalidArgument(MdavBuildGroups(points, 11).status()));
  std::vector<Vector> ragged = points;
  ragged.push_back(Vector{1.0, 2.0, 3.0});
  EXPECT_TRUE(IsInvalidArgument(MdavBuildGroups(ragged, 3).status()));
}

TEST(MdavTest, BackendIdentities) {
  auto mdav = MakeMdavBackend();
  EXPECT_EQ(mdav->info().id, "mdav");
  EXPECT_NE(mdav->regeneration(), nullptr);
  auto eigen = MakeMdavEigenBackend();
  EXPECT_EQ(eigen->info().id, "mdav-eigen");
  // Null regeneration = inherit the built-in eigendecomposition sampler.
  EXPECT_EQ(eigen->regeneration(), nullptr);
}

TEST(MdavTest, CentroidReplacementEmitsCentroidCopies) {
  GroupStatistics stats(2);
  stats.Add(Vector{1.0, 2.0});
  stats.Add(Vector{3.0, 6.0});
  stats.Add(Vector{5.0, 10.0});
  const Vector centroid = stats.Centroid();
  Rng rng(1);
  auto mdav = MakeMdavBackend();
  ASSERT_NE(mdav->regeneration(), nullptr);
  auto sample = mdav->regeneration()->Sample(stats, 3, rng);
  ASSERT_TRUE(sample.ok());
  ASSERT_EQ(sample->size(), 3u);
  for (const Vector& record : *sample) {
    ASSERT_EQ(record.dim(), 2u);
    EXPECT_EQ(record[0], centroid[0]);
    EXPECT_EQ(record[1], centroid[1]);
  }
}

}  // namespace
}  // namespace condensa::backend
