// Pins the --backend=condensation contract: resolving the default
// backend through the registry must be byte-identical — same rng
// stream, same serialized pools, same release — to a config that never
// mentions backends. If this breaks, every pre-backend artifact
// (checkpoints, serialized pools, published figures) silently changes
// meaning.

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "backend/registry.h"
#include "common/random.h"
#include "core/engine.h"
#include "core/serialization.h"
#include "data/dataset.h"
#include "linalg/vector.h"

namespace condensa::backend {
namespace {

using linalg::Vector;

data::Dataset MakeClassificationDataset(std::size_t n) {
  data::Dataset dataset(3, data::TaskType::kClassification);
  Rng rng(2024);
  for (std::size_t i = 0; i < n; ++i) {
    const int label = static_cast<int>(i % 2);
    dataset.Add(Vector{rng.Gaussian(label * 2.0, 1.0),
                       rng.Gaussian(0.0, 1.0), rng.Gaussian(-1.0, 0.5)},
                label);
  }
  return dataset;
}

core::CondensationConfig BareConfig(core::CondensationMode mode) {
  core::CondensationConfig config;
  config.group_size = 5;
  config.mode = mode;
  return config;
}

TEST(BackendParityTest, StaticCondenseIsByteIdenticalToHooklessConfig) {
  const data::Dataset dataset = MakeClassificationDataset(60);
  for (auto mode : {core::CondensationMode::kStatic,
                    core::CondensationMode::kDynamic}) {
    core::CondensationConfig plain = BareConfig(mode);
    core::CondensationConfig resolved = BareConfig(mode);
    ASSERT_TRUE(ApplyBackend("condensation", &resolved).ok());

    Rng plain_rng(77);
    Rng resolved_rng(77);
    auto plain_pools = core::CondensationEngine(plain).Condense(dataset,
                                                               plain_rng);
    auto resolved_pools =
        core::CondensationEngine(resolved).Condense(dataset, resolved_rng);
    ASSERT_TRUE(plain_pools.ok());
    ASSERT_TRUE(resolved_pools.ok());
    EXPECT_EQ(core::SerializePools(*plain_pools),
              core::SerializePools(*resolved_pools));
    // The construction hook must consume the rng stream exactly as the
    // hookless path does.
    EXPECT_EQ(plain_rng.NextUint64(), resolved_rng.NextUint64());
  }
}

TEST(BackendParityTest, ReleaseIsByteIdenticalToHooklessConfig) {
  const data::Dataset dataset = MakeClassificationDataset(60);
  core::CondensationConfig plain = BareConfig(core::CondensationMode::kStatic);
  core::CondensationConfig resolved =
      BareConfig(core::CondensationMode::kStatic);
  ASSERT_TRUE(ApplyBackend("condensation", &resolved).ok());

  Rng plain_rng(31);
  Rng resolved_rng(31);
  auto plain_result =
      core::CondensationEngine(plain).Anonymize(dataset, plain_rng);
  auto resolved_result =
      core::CondensationEngine(resolved).Anonymize(dataset, resolved_rng);
  ASSERT_TRUE(plain_result.ok());
  ASSERT_TRUE(resolved_result.ok());

  const data::Dataset& a = plain_result->anonymized;
  const data::Dataset& b = resolved_result->anonymized;
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.label(i), b.label(i));
    for (std::size_t j = 0; j < a.dim(); ++j) {
      EXPECT_EQ(a.record(i)[j], b.record(i)[j]) << "record " << i;
    }
  }
}

TEST(BackendParityTest, DefaultStampWritesNoBackendLine) {
  const data::Dataset dataset = MakeClassificationDataset(40);
  Rng rng(5);
  auto pools = core::CondensationEngine(
                   BareConfig(core::CondensationMode::kStatic))
                   .Condense(dataset, rng);
  ASSERT_TRUE(pools.ok());
  // The default backend serializes exactly as the pre-backend format:
  // no "backend" header line anywhere in the text.
  EXPECT_EQ(core::SerializePools(*pools).find("backend"), std::string::npos);
}

TEST(BackendParityTest, MdavEndToEndStampsAndBoundsGroups) {
  const data::Dataset dataset = MakeClassificationDataset(60);
  core::CondensationConfig config =
      BareConfig(core::CondensationMode::kStatic);
  ASSERT_TRUE(ApplyBackend("mdav", &config).ok());
  Rng rng(9);
  auto pools = core::CondensationEngine(config).Condense(dataset, rng);
  ASSERT_TRUE(pools.ok());
  ASSERT_FALSE(pools->pools.empty());
  for (const auto& pool : pools->pools) {
    EXPECT_EQ(pool.groups.backend_id(), "mdav");
    EXPECT_EQ(pool.groups.backend_version(), 1);
    for (const auto& group : pool.groups.groups()) {
      EXPECT_GE(group.count(), 5u);
      EXPECT_LE(group.count(), 9u);
    }
  }
  // The stamp survives a serialization round trip.
  auto reloaded = core::DeserializePools(core::SerializePools(*pools));
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(reloaded->pools.front().groups.backend_id(), "mdav");
}

}  // namespace
}  // namespace condensa::backend
