#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

namespace condensa::obs {
namespace {

TEST(CounterTest, StartsAtZeroAndAccumulates) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0u);
  counter.Increment();
  counter.Increment(41);
  EXPECT_EQ(counter.value(), 42u);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge gauge;
  EXPECT_EQ(gauge.value(), 0.0);
  gauge.Set(2.5);
  EXPECT_EQ(gauge.value(), 2.5);
  gauge.Add(-0.5);
  EXPECT_EQ(gauge.value(), 2.0);
}

TEST(HistogramTest, ObservationsLandInLeBuckets) {
  Histogram histogram({1.0, 10.0, 100.0});
  histogram.Observe(0.5);    // le=1
  histogram.Observe(1.0);    // le=1 (upper bound is inclusive)
  histogram.Observe(7.0);    // le=10
  histogram.Observe(1000.0);  // +Inf
  EXPECT_EQ(histogram.count(), 4u);
  EXPECT_DOUBLE_EQ(histogram.sum(), 1008.5);
  std::vector<std::uint64_t> buckets = histogram.bucket_counts();
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0], 2u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[2], 0u);
  EXPECT_EQ(buckets[3], 1u);
}

TEST(HistogramTest, ExponentialBucketsGrowByFactor) {
  std::vector<double> bounds = ExponentialBuckets(1.0, 2.0, 4);
  ASSERT_EQ(bounds.size(), 4u);
  EXPECT_DOUBLE_EQ(bounds[0], 1.0);
  EXPECT_DOUBLE_EQ(bounds[3], 8.0);
}

TEST(MetricsRegistryTest, SameNameAndLabelsIsSameInstance) {
  MetricsRegistry registry;
  Counter& a = registry.GetCounter("events_total", {{"mode", "static"}});
  // Label order must not matter.
  Counter& b = registry.GetCounter("events_total", {{"mode", "static"}});
  Counter& other = registry.GetCounter("events_total", {{"mode", "dynamic"}});
  a.Increment();
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &other);
  EXPECT_EQ(b.value(), 1u);
  EXPECT_EQ(other.value(), 0u);
}

TEST(MetricsRegistryTest, LabelOrderIsCanonicalized) {
  MetricsRegistry registry;
  Gauge& a = registry.GetGauge("g", {{"a", "1"}, {"b", "2"}});
  Gauge& b = registry.GetGauge("g", {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(&a, &b);
}

TEST(MetricsRegistryTest, SeriesKeyFormatsSortedLabels) {
  EXPECT_EQ(SeriesKey("x_total", {}), "x_total");
  EXPECT_EQ(SeriesKey("x_total", {{"b", "2"}, {"a", "1"}}),
            "x_total{a=\"1\",b=\"2\"}");
}

TEST(MetricsRegistryTest, PrometheusDumpCarriesValues) {
  MetricsRegistry registry;
  registry.GetCounter("runs_total", {{"mode", "static"}}).Increment(3);
  registry.GetGauge("last_groups").Set(17.0);
  // 0.25 round-trips exactly through %.17g, unlike 0.1.
  registry.GetHistogram("latency_seconds", {}, {0.25, 1.0}).Observe(0.05);
  std::string text = registry.DumpPrometheusText();
  EXPECT_NE(text.find("# TYPE runs_total counter"), std::string::npos);
  EXPECT_NE(text.find("runs_total{mode=\"static\"} 3"), std::string::npos);
  EXPECT_NE(text.find("last_groups 17"), std::string::npos);
  // Histogram exposition is cumulative and ends with +Inf.
  EXPECT_NE(text.find("latency_seconds_bucket{le=\"0.25\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("latency_seconds_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("latency_seconds_count 1"), std::string::npos);
}

TEST(MetricsRegistryTest, JsonDumpIsGroupedByKind) {
  MetricsRegistry registry;
  registry.GetCounter("a_total").Increment();
  registry.GetGauge("b").Set(1.5);
  registry.GetHistogram("c_seconds", {}, {1.0}).Observe(2.0);
  std::string json = registry.DumpJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"a_total\":1"), std::string::npos);
  EXPECT_NE(json.find("\"b\":1.5"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":1"), std::string::npos);
}

TEST(MetricsRegistryTest, ResetZeroesSeriesInPlace) {
  MetricsRegistry registry;
  Counter& counter = registry.GetCounter("a_total");
  counter.Increment(5);
  Gauge& gauge = registry.GetGauge("b");
  gauge.Set(2.5);
  Histogram& histogram = registry.GetHistogram("c_seconds", {}, {1.0});
  histogram.Observe(0.5);
  registry.Reset();
  // References obtained before the Reset stay valid (instruments cache
  // them in thread-locals and module singletons) and read zero.
  EXPECT_EQ(counter.value(), 0u);
  EXPECT_EQ(gauge.value(), 0.0);
  EXPECT_EQ(histogram.count(), 0u);
  EXPECT_EQ(histogram.sum(), 0.0);
  EXPECT_EQ(histogram.bucket_counts(),
            (std::vector<std::uint64_t>{0u, 0u}));
  // And they are the same objects a fresh lookup returns.
  EXPECT_EQ(&counter, &registry.GetCounter("a_total"));
  counter.Increment();
  EXPECT_EQ(registry.GetCounter("a_total").value(), 1u);
}

TEST(MetricsRegistryTest, DefaultRegistryIsAProcessSingleton) {
  EXPECT_EQ(&DefaultRegistry(), &DefaultRegistry());
}

// The contract call sites rely on: many threads hammering the same and
// different series through the registry lose no updates. Run under TSan
// via tools/run_sanitizers.sh.
TEST(MetricsRegistryTest, ConcurrentUpdatesLoseNothing) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 21000;  // divisible by 3 for the bucket checks

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      // Half the threads share one series; half use a per-thread series,
      // so both contended updates and concurrent registration race.
      const Labels labels = {{"thread", t % 2 == 0 ? "shared"
                                                   : std::to_string(t)}};
      Counter& counter = registry.GetCounter("hammer_total", labels);
      Gauge& gauge = registry.GetGauge("hammer_gauge");
      Histogram& histogram =
          registry.GetHistogram("hammer_seconds", {}, {0.5, 1.5, 2.5});
      for (int i = 0; i < kPerThread; ++i) {
        counter.Increment();
        gauge.Add(1.0);
        histogram.Observe(static_cast<double>(i % 3));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  std::uint64_t counted = 0;
  counted += registry.GetCounter("hammer_total", {{"thread", "shared"}})
                 .value();
  for (int t = 1; t < kThreads; t += 2) {
    counted += registry
                   .GetCounter("hammer_total", {{"thread", std::to_string(t)}})
                   .value();
  }
  EXPECT_EQ(counted, static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(registry.GetGauge("hammer_gauge").value(),
                   static_cast<double>(kThreads) * kPerThread);

  Histogram& histogram = registry.GetHistogram("hammer_seconds");
  EXPECT_EQ(histogram.count(), static_cast<std::uint64_t>(kThreads) *
                                   kPerThread);
  std::vector<std::uint64_t> buckets = histogram.bucket_counts();
  ASSERT_EQ(buckets.size(), 4u);
  // i % 3 spreads observations evenly over the first three buckets.
  const std::uint64_t third =
      static_cast<std::uint64_t>(kThreads) * kPerThread / 3;
  EXPECT_EQ(buckets[0], third);
  EXPECT_EQ(buckets[1], third);
  EXPECT_EQ(buckets[2], third);
  EXPECT_EQ(buckets[3], 0u);
}

}  // namespace
}  // namespace condensa::obs
