#include "obs/trace.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>

#include "obs/metrics.h"

namespace condensa::obs {
namespace {

// Tracing state is process-wide, so every test starts and stops its own
// window and asserts only on events it created inside it.

TEST(TraceTest, DisabledByDefaultAndDumpIsEmpty) {
  EXPECT_FALSE(TracingEnabled());
  { TraceSpan span("untraced"); }
  EXPECT_EQ(StopTracingAndDump(), "{\"traceEvents\":[]}");
}

TEST(TraceTest, CollectsCompleteEventsBetweenStartAndStop) {
  StartTracing();
  EXPECT_TRUE(TracingEnabled());
  { TraceSpan span("unit.work"); }
  { TraceSpan span("unit.work"); }
  std::string json = StopTracingAndDump();
  EXPECT_FALSE(TracingEnabled());

  // Two complete events with the span name and the required fields.
  std::size_t first = json.find("\"name\":\"unit.work\"");
  ASSERT_NE(first, std::string::npos);
  EXPECT_NE(json.find("\"name\":\"unit.work\"", first + 1),
            std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":"), std::string::npos);
}

TEST(TraceTest, StopClearsTheBuffer) {
  StartTracing();
  { TraceSpan span("unit.cleared"); }
  StopTracingAndDump();
  EXPECT_EQ(StopTracingAndDump(), "{\"traceEvents\":[]}");
}

TEST(TraceTest, SpanFeedsAttachedHistogramRegardlessOfTracing) {
  MetricsRegistry registry;
  Histogram& sink = registry.GetHistogram("span_seconds");
  { TraceSpan span("unit.timed", &sink); }
  EXPECT_EQ(sink.count(), 1u);
}

TEST(TraceTest, ThreadsGetDistinctTids) {
  StartTracing();
  { TraceSpan span("unit.main"); }
  std::thread worker([] { TraceSpan span("unit.worker"); });
  worker.join();
  std::string json = StopTracingAndDump();

  // Extract the tid field of each event; the two must differ.
  std::size_t first_tid = json.find("\"tid\":");
  ASSERT_NE(first_tid, std::string::npos);
  std::size_t second_tid = json.find("\"tid\":", first_tid + 1);
  ASSERT_NE(second_tid, std::string::npos);
  auto tid_value = [&json](std::size_t pos) {
    std::size_t start = pos + 6;
    std::size_t end = json.find_first_of(",}", start);
    return json.substr(start, end - start);
  };
  EXPECT_NE(tid_value(first_tid), tid_value(second_tid));
}

}  // namespace
}  // namespace condensa::obs
