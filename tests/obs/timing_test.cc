#include "obs/timing.h"

#include <gtest/gtest.h>

#include <cmath>

#include "obs/metrics.h"

namespace condensa::obs {
namespace {

// Busy-waits until the timer itself reports at least `seconds`.
void SpinFor(const Timer& timer, double seconds) {
  while (timer.ElapsedSeconds() < seconds) {
  }
}

TEST(TimerTest, ElapsedIsNonNegativeAndMonotonic) {
  Timer timer;
  double first = timer.ElapsedSeconds();
  EXPECT_GE(first, 0.0);
  SpinFor(timer, 0.001);
  double second = timer.ElapsedSeconds();
  EXPECT_GE(second, first);
  EXPECT_GE(second, 0.001);
}

TEST(TimerTest, MillisMatchesSeconds) {
  Timer timer;
  SpinFor(timer, 0.002);
  double seconds = timer.ElapsedSeconds();
  double millis = timer.ElapsedMillis();
  EXPECT_NEAR(millis, seconds * 1e3, 5.0);  // sampled moments differ
}

TEST(TimerTest, ResetRestartsTheWindow) {
  Timer timer;
  SpinFor(timer, 0.003);
  timer.Reset();
  EXPECT_LT(timer.ElapsedSeconds(), 0.003);
}

TEST(ScopedTimerTest, ObservesScopeLifetimeIntoHistogram) {
  Histogram histogram({0.5, 1.0});
  {
    ScopedTimer timer(histogram);
    SpinFor(Timer(), 0.0);  // any amount of work
  }
  EXPECT_EQ(histogram.count(), 1u);
  EXPECT_GE(histogram.sum(), 0.0);
}

TEST(ScopedTimerTest, NullSinkRecordsNothing) {
  { ScopedTimer timer(static_cast<Histogram*>(nullptr)); }
  // Reaching here without a crash is the assertion.
}

TEST(ScopedTimerTest, CancelDetachesTheSink) {
  Histogram histogram({0.5});
  {
    ScopedTimer timer(histogram);
    timer.Cancel();
  }
  EXPECT_EQ(histogram.count(), 0u);
}

}  // namespace
}  // namespace condensa::obs
