// Smoke tests for the figure-reproduction harness itself: the sweep runs
// end-to-end on tiny instances and produces sane series.

#include "bench/figure_common.h"

#include <gtest/gtest.h>

namespace condensa::bench {
namespace {

FigureConfig TinyConfig(const std::string& profile, bool regression) {
  FigureConfig config;
  config.profile = profile;
  config.title = "test";
  config.regression = regression;
  config.group_sizes = {1, 2, 6};
  config.trials = 1;
  config.seed = 7;
  config.size_factor = regression ? 0.05 : 0.3;
  return config;
}

TEST(FigureSweepTest, UnknownProfileFailsInsteadOfAborting) {
  StatusOr<std::vector<FigureRow>> sweep =
      RunFigureSweep(TinyConfig("no-such-profile", false));
  EXPECT_FALSE(sweep.ok());
}

TEST(FigureSweepTest, ClassificationProfileProducesSaneRows) {
  StatusOr<std::vector<FigureRow>> sweep =
      RunFigureSweep(TinyConfig("pima", false));
  ASSERT_TRUE(sweep.ok()) << sweep.status().ToString();
  const std::vector<FigureRow>& rows = *sweep;
  ASSERT_EQ(rows.size(), 3u);
  for (const FigureRow& row : rows) {
    EXPECT_GE(row.average_group_size, static_cast<double>(row.requested_k));
    for (double accuracy : {row.accuracy_static, row.accuracy_dynamic,
                            row.accuracy_original}) {
      EXPECT_GE(accuracy, 0.0);
      EXPECT_LE(accuracy, 1.0);
    }
    for (double mu : {row.mu_static, row.mu_dynamic}) {
      EXPECT_GE(mu, -1.0);
      EXPECT_LE(mu, 1.0 + 1e-12);
    }
  }
  // k = 1 static anchor: identical to the original data.
  EXPECT_DOUBLE_EQ(rows[0].accuracy_static, rows[0].accuracy_original);
  EXPECT_NEAR(rows[0].mu_static, 1.0, 1e-9);
}

TEST(FigureSweepTest, RegressionProfileProducesSaneRows) {
  StatusOr<std::vector<FigureRow>> sweep =
      RunFigureSweep(TinyConfig("abalone", true));
  ASSERT_TRUE(sweep.ok()) << sweep.status().ToString();
  const std::vector<FigureRow>& rows = *sweep;
  ASSERT_EQ(rows.size(), 3u);
  for (const FigureRow& row : rows) {
    EXPECT_GT(row.accuracy_original, 0.0);
    EXPECT_LT(row.accuracy_original, 1.0);
  }
  EXPECT_DOUBLE_EQ(rows[0].accuracy_static, rows[0].accuracy_original);
}

TEST(FigureSweepTest, OriginalSeriesIsFlatAcrossK) {
  // Trial seeds are k-independent, so the baseline column is constant.
  StatusOr<std::vector<FigureRow>> sweep =
      RunFigureSweep(TinyConfig("ecoli", false));
  ASSERT_TRUE(sweep.ok()) << sweep.status().ToString();
  const std::vector<FigureRow>& rows = *sweep;
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_DOUBLE_EQ(rows[i].accuracy_original, rows[0].accuracy_original);
  }
}

}  // namespace
}  // namespace condensa::bench
