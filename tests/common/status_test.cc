#include "common/status.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace condensa {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, OkStatusFactory) {
  EXPECT_TRUE(OkStatus().ok());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = InvalidArgumentError("bad k");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad k");
  EXPECT_EQ(status.ToString(), "INVALID_ARGUMENT: bad k");
}

TEST(StatusTest, EveryFactoryMapsToItsCode) {
  EXPECT_EQ(InvalidArgumentError("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(NotFoundError("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(OutOfRangeError("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(FailedPreconditionError("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
  EXPECT_EQ(UnimplementedError("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(DataLossError("x").code(), StatusCode::kDataLoss);
}

TEST(StatusTest, PredicatesMatchCodes) {
  EXPECT_TRUE(IsInvalidArgument(InvalidArgumentError("x")));
  EXPECT_FALSE(IsInvalidArgument(NotFoundError("x")));
  EXPECT_TRUE(IsNotFound(NotFoundError("x")));
  EXPECT_TRUE(IsOutOfRange(OutOfRangeError("x")));
  EXPECT_TRUE(IsFailedPrecondition(FailedPreconditionError("x")));
  EXPECT_TRUE(IsInternal(InternalError("x")));
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(InvalidArgumentError("a"), InvalidArgumentError("a"));
  EXPECT_FALSE(InvalidArgumentError("a") == InvalidArgumentError("b"));
  EXPECT_FALSE(InvalidArgumentError("a") == NotFoundError("a"));
}

TEST(StatusTest, StreamInsertionUsesToString) {
  std::ostringstream os;
  os << NotFoundError("missing");
  EXPECT_EQ(os.str(), "NOT_FOUND: missing");
}

TEST(StatusCodeTest, ToStringCoversAllCodes) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kDataLoss), "DATA_LOSS");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kUnimplemented),
               "UNIMPLEMENTED");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
  EXPECT_EQ(result.value(), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> result = NotFoundError("nope");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, ValueOrFallsBackOnError) {
  StatusOr<int> error = NotFoundError("nope");
  EXPECT_EQ(error.value_or(-1), -1);
  StatusOr<int> value = 7;
  EXPECT_EQ(value.value_or(-1), 7);
}

TEST(StatusOrTest, WorksWithMoveOnlyValueAccess) {
  StatusOr<std::vector<int>> result = std::vector<int>{1, 2, 3};
  ASSERT_TRUE(result.ok());
  std::vector<int> moved = std::move(result).value();
  EXPECT_EQ(moved.size(), 3u);
}

TEST(StatusOrTest, ArrowOperatorReachesValueMembers) {
  StatusOr<std::string> result = std::string("hello");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 5u);
}

TEST(StatusOrTest, NonDefaultConstructibleValueTypeWorks) {
  struct NoDefault {
    explicit NoDefault(int v) : value(v) {}
    int value;
  };
  StatusOr<NoDefault> result = NoDefault(9);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->value, 9);
  StatusOr<NoDefault> error = InternalError("x");
  EXPECT_FALSE(error.ok());
}

StatusOr<int> HalveEven(int x) {
  if (x % 2 != 0) {
    return InvalidArgumentError("odd input");
  }
  return x / 2;
}

Status UseMacros(int input, int* out) {
  CONDENSA_ASSIGN_OR_RETURN(int halved, HalveEven(input));
  CONDENSA_ASSIGN_OR_RETURN(int quartered, HalveEven(halved));
  *out = quartered;
  return OkStatus();
}

TEST(StatusMacrosTest, AssignOrReturnPropagatesValue) {
  int out = 0;
  ASSERT_TRUE(UseMacros(8, &out).ok());
  EXPECT_EQ(out, 2);
}

TEST(StatusMacrosTest, AssignOrReturnPropagatesError) {
  int out = 0;
  Status status = UseMacros(6, &out);  // 6 -> 3 (odd) -> error
  EXPECT_TRUE(IsInvalidArgument(status));
}

TEST(StatusMacrosTest, ReturnIfErrorShortCircuits) {
  auto fn = [](bool fail) -> Status {
    CONDENSA_RETURN_IF_ERROR(fail ? InternalError("boom") : OkStatus());
    return NotFoundError("reached end");
  };
  EXPECT_TRUE(IsInternal(fn(true)));
  EXPECT_TRUE(IsNotFound(fn(false)));
}

}  // namespace
}  // namespace condensa
