#include "common/failpoint.h"

#include <gtest/gtest.h>

#include <chrono>
#include <vector>

namespace condensa {
namespace {

class FailPointTest : public ::testing::Test {
 protected:
  void SetUp() override { FailPoint::Reset(); }
  void TearDown() override { FailPoint::Reset(); }
};

TEST_F(FailPointTest, UnarmedProbeIsOkAndCountsHits) {
  EXPECT_EQ(FailPoint::HitCount("fp.unarmed"), 0u);
  EXPECT_TRUE(FailPoint::Maybe("fp.unarmed").ok());
  EXPECT_TRUE(FailPoint::Maybe("fp.unarmed").ok());
  EXPECT_EQ(FailPoint::HitCount("fp.unarmed"), 2u);
  EXPECT_TRUE(FailPoint::Armed().empty());
}

TEST_F(FailPointTest, FiresAtExactHitIndexOnce) {
  FailPoint::Arm("fp.third", {.fail_at = 3});
  EXPECT_TRUE(FailPoint::Maybe("fp.third").ok());
  EXPECT_TRUE(FailPoint::Maybe("fp.third").ok());
  Status hit = FailPoint::Maybe("fp.third");
  EXPECT_EQ(hit.code(), StatusCode::kDataLoss);
  EXPECT_NE(hit.message().find("fp.third"), std::string::npos);
  // repeat defaults to 1: the probe is spent afterwards.
  EXPECT_TRUE(FailPoint::Maybe("fp.third").ok());
  EXPECT_EQ(FailPoint::HitCount("fp.third"), 4u);
}

TEST_F(FailPointTest, RepeatRangeFailsConsecutiveHits) {
  FailPoint::Arm("fp.range", {.fail_at = 2, .repeat = 2});
  EXPECT_TRUE(FailPoint::Maybe("fp.range").ok());
  EXPECT_FALSE(FailPoint::Maybe("fp.range").ok());
  EXPECT_FALSE(FailPoint::Maybe("fp.range").ok());
  EXPECT_TRUE(FailPoint::Maybe("fp.range").ok());
}

TEST_F(FailPointTest, StickyRepeatFailsForever) {
  FailPoint::Arm("fp.sticky",
                 {.fail_at = 1, .repeat = static_cast<std::size_t>(-1)});
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(FailPoint::Maybe("fp.sticky").ok());
  }
}

TEST_F(FailPointTest, CustomCodeAndMessage) {
  FailPoint::Arm("fp.custom", {.code = StatusCode::kInternal,
                               .message = "disk on fire"});
  Status hit = FailPoint::Maybe("fp.custom");
  EXPECT_EQ(hit.code(), StatusCode::kInternal);
  EXPECT_EQ(hit.message(), "disk on fire");
}

TEST_F(FailPointTest, TornWriteDecisionCarriesByteBudget) {
  FailPoint::Arm("fp.torn",
                 {.mode = FailPointMode::kTornWrite, .torn_bytes = 7});
  FailPointDecision decision = FailPoint::Check("fp.torn");
  EXPECT_TRUE(decision.fail);
  EXPECT_EQ(decision.mode, FailPointMode::kTornWrite);
  EXPECT_EQ(decision.torn_bytes, 7u);
  EXPECT_FALSE(decision.status.ok());
}

TEST_F(FailPointTest, DisarmStopsFailuresButKeepsCounting) {
  FailPoint::Arm("fp.disarm",
                 {.fail_at = 1, .repeat = static_cast<std::size_t>(-1)});
  EXPECT_FALSE(FailPoint::Maybe("fp.disarm").ok());
  FailPoint::Disarm("fp.disarm");
  EXPECT_TRUE(FailPoint::Maybe("fp.disarm").ok());
  EXPECT_EQ(FailPoint::HitCount("fp.disarm"), 2u);
}

TEST_F(FailPointTest, ArmResetsHitCount) {
  EXPECT_TRUE(FailPoint::Maybe("fp.rearm").ok());
  EXPECT_TRUE(FailPoint::Maybe("fp.rearm").ok());
  FailPoint::Arm("fp.rearm", {.fail_at = 1});
  EXPECT_EQ(FailPoint::HitCount("fp.rearm"), 0u);
  EXPECT_FALSE(FailPoint::Maybe("fp.rearm").ok());
}

TEST_F(FailPointTest, ProbabilisticTriggeringIsReproducibleAndCounted) {
  constexpr std::size_t kHits = 2000;
  constexpr double kProbability = 0.25;
  FailPoint::Arm("fp.flaky", {.probability = kProbability, .seed = 7});
  std::vector<bool> first;
  first.reserve(kHits);
  for (std::size_t i = 0; i < kHits; ++i) {
    first.push_back(!FailPoint::Maybe("fp.flaky").ok());
  }
  const std::size_t triggered = FailPoint::TriggerCount("fp.flaky");
  EXPECT_EQ(FailPoint::HitCount("fp.flaky"), kHits);
  // ~500 expected; 6 sigma ≈ 116 either way.
  EXPECT_GT(triggered, kHits * kProbability / 2);
  EXPECT_LT(triggered, kHits * kProbability * 2);

  // Same seed -> identical trigger sequence.
  FailPoint::Arm("fp.flaky", {.probability = kProbability, .seed = 7});
  for (std::size_t i = 0; i < kHits; ++i) {
    EXPECT_EQ(!FailPoint::Maybe("fp.flaky").ok(), first[i]) << "hit " << i;
  }
}

TEST_F(FailPointTest, ProbabilisticTriggeringHonorsFailAt) {
  FailPoint::Arm("fp.flaky.gated",
                 {.fail_at = 11, .probability = 1.0, .seed = 3});
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_TRUE(FailPoint::Maybe("fp.flaky.gated").ok()) << "hit " << i;
  }
  EXPECT_FALSE(FailPoint::Maybe("fp.flaky.gated").ok());
  EXPECT_EQ(FailPoint::TriggerCount("fp.flaky.gated"), 1u);
}

TEST_F(FailPointTest, LatencyModeDelaysButSucceeds) {
  FailPoint::Arm("fp.slow", {.fail_at = 1,
                             .repeat = static_cast<std::size_t>(-1),
                             .mode = FailPointMode::kLatency,
                             .latency_ms = 20.0});
  const auto start = std::chrono::steady_clock::now();
  EXPECT_TRUE(FailPoint::Maybe("fp.slow").ok());
  const auto elapsed = std::chrono::duration<double, std::milli>(
      std::chrono::steady_clock::now() - start);
  EXPECT_GE(elapsed.count(), 15.0);
  EXPECT_EQ(FailPoint::TriggerCount("fp.slow"), 1u);

  FailPointDecision decision = FailPoint::Check("fp.slow");
  EXPECT_FALSE(decision.fail);
  EXPECT_TRUE(decision.status.ok());
}

TEST_F(FailPointTest, ErrorModeCanCombineLatencyWithFailure) {
  FailPoint::Arm("fp.slowfail", {.latency_ms = 5.0});
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(FailPoint::Maybe("fp.slowfail").ok());
  const auto elapsed = std::chrono::duration<double, std::milli>(
      std::chrono::steady_clock::now() - start);
  EXPECT_GE(elapsed.count(), 4.0);
}

TEST_F(FailPointTest, ArmedListsOnlyArmedProbes) {
  FailPoint::Maybe("fp.counted");
  FailPoint::Arm("fp.a", {});
  FailPoint::Arm("fp.b", {});
  std::vector<std::string> armed = FailPoint::Armed();
  EXPECT_EQ(armed.size(), 2u);
  FailPoint::Reset();
  EXPECT_TRUE(FailPoint::Armed().empty());
  EXPECT_EQ(FailPoint::HitCount("fp.counted"), 0u);
}

}  // namespace
}  // namespace condensa
