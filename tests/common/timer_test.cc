#include "common/timer.h"

#include <gtest/gtest.h>

#include <cmath>

namespace condensa {
namespace {

// Busy-waits until the timer itself reports at least `seconds`.
void SpinFor(const Timer& timer, double seconds) {
  while (timer.ElapsedSeconds() < seconds) {
  }
}

TEST(TimerTest, ElapsedIsNonNegativeAndMonotonic) {
  Timer timer;
  double first = timer.ElapsedSeconds();
  EXPECT_GE(first, 0.0);
  SpinFor(timer, 0.001);
  double second = timer.ElapsedSeconds();
  EXPECT_GE(second, first);
  EXPECT_GE(second, 0.001);
}

TEST(TimerTest, MillisMatchesSeconds) {
  Timer timer;
  SpinFor(timer, 0.002);
  double seconds = timer.ElapsedSeconds();
  double millis = timer.ElapsedMillis();
  EXPECT_NEAR(millis, seconds * 1e3, 5.0);  // sampled moments differ
}

TEST(TimerTest, ResetRestartsTheWindow) {
  Timer timer;
  SpinFor(timer, 0.003);
  timer.Reset();
  EXPECT_LT(timer.ElapsedSeconds(), 0.003);
}

}  // namespace
}  // namespace condensa
