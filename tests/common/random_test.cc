#include "common/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace condensa {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, UniformDoubleInHalfOpenUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double u = rng.UniformDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformDoubleMeanIsHalf) {
  Rng rng(11);
  double total = 0.0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) total += rng.UniformDouble();
  EXPECT_NEAR(total / kDraws, 0.5, 0.01);
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    double v = rng.Uniform(-2.5, 7.5);
    EXPECT_GE(v, -2.5);
    EXPECT_LT(v, 7.5);
  }
}

TEST(RngTest, UniformIntCoversFullRangeInclusive) {
  Rng rng(17);
  std::set<int> seen;
  for (int i = 0; i < 1000; ++i) {
    int v = rng.UniformInt(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformIndexIsApproximatelyUniform) {
  Rng rng(23);
  constexpr std::size_t kBuckets = 10;
  constexpr int kDraws = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) {
    ++counts[rng.UniformIndex(kBuckets)];
  }
  for (int count : counts) {
    // Each bucket expects 10000; allow 5 sigma (~470).
    EXPECT_NEAR(count, kDraws / static_cast<int>(kBuckets), 500);
  }
}

TEST(RngTest, UniformUint64SmallBoundExact) {
  Rng rng(29);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(rng.UniformUint64(1), 0u);
  }
}

TEST(RngTest, GaussianMomentsMatchStandardNormal) {
  Rng rng(31);
  constexpr int kDraws = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    double g = rng.Gaussian();
    sum += g;
    sum_sq += g * g;
  }
  double mean = sum / kDraws;
  double variance = sum_sq / kDraws - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(variance, 1.0, 0.03);
}

TEST(RngTest, GaussianWithParamsShiftsAndScales) {
  Rng rng(37);
  constexpr int kDraws = 100000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    double g = rng.Gaussian(10.0, 2.0);
    sum += g;
    sum_sq += g * g;
  }
  double mean = sum / kDraws;
  double variance = sum_sq / kDraws - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(variance, 4.0, 0.15);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(41);
  constexpr int kDraws = 100000;
  int hits = 0;
  for (int i = 0; i < kDraws; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.01);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(43);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
    EXPECT_FALSE(rng.Bernoulli(-0.5));
    EXPECT_TRUE(rng.Bernoulli(1.5));
  }
}

TEST(RngTest, ExponentialMeanIsInverseRate) {
  Rng rng(47);
  constexpr int kDraws = 100000;
  double total = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    double e = rng.Exponential(2.0);
    EXPECT_GE(e, 0.0);
    total += e;
  }
  EXPECT_NEAR(total / kDraws, 0.5, 0.01);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(53);
  std::vector<double> weights = {1.0, 3.0, 0.0, 6.0};
  constexpr int kDraws = 100000;
  std::vector<int> counts(weights.size(), 0);
  for (int i = 0; i < kDraws; ++i) {
    ++counts[rng.Categorical(weights)];
  }
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[0] / static_cast<double>(kDraws), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(kDraws), 0.3, 0.01);
  EXPECT_NEAR(counts[3] / static_cast<double>(kDraws), 0.6, 0.01);
}

TEST(RngTest, CategoricalSingleWeight) {
  Rng rng(59);
  std::vector<double> weights = {2.0};
  EXPECT_EQ(rng.Categorical(weights), 0u);
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(61);
  std::vector<int> values = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  std::vector<int> shuffled = values;
  rng.Shuffle(shuffled);
  std::vector<int> sorted = shuffled;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, values);
}

TEST(RngTest, ShuffleActuallyPermutes) {
  Rng rng(67);
  std::vector<int> values(100);
  for (int i = 0; i < 100; ++i) values[i] = i;
  std::vector<int> shuffled = values;
  rng.Shuffle(shuffled);
  EXPECT_NE(shuffled, values);
}

TEST(RngTest, ShuffleEmptyAndSingleton) {
  Rng rng(71);
  std::vector<int> empty;
  rng.Shuffle(empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one = {42};
  rng.Shuffle(one);
  EXPECT_EQ(one, std::vector<int>{42});
}

TEST(RngTest, SplitProducesIndependentStreams) {
  Rng parent(101);
  Rng child1 = parent.Split();
  Rng child2 = parent.Split();
  // Children differ from each other.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (child1.NextUint64() == child2.NextUint64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, SplitIsDeterministic) {
  Rng a(5), b(5);
  Rng ca = a.Split();
  Rng cb = b.Split();
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(ca.NextUint64(), cb.NextUint64());
  }
}

TEST(RngTest, SatisfiesUniformRandomBitGenerator) {
  static_assert(Rng::min() == 0);
  static_assert(Rng::max() == ~std::uint64_t{0});
  Rng rng(1);
  EXPECT_NE(rng(), rng());
}

}  // namespace
}  // namespace condensa
