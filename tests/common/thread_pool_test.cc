#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>
#include <vector>

namespace condensa {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&ran] { ran.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusableAcrossBatches) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  pool.Submit([&ran] { ran.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(ran.load(), 1);
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&ran] { ran.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(ran.load(), 11);
}

TEST(ThreadPoolTest, DestructorDrainsOutstandingTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&ran] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        ran.fetch_add(1);
      });
    }
  }
  EXPECT_EQ(ran.load(), 50);
}

TEST(ThreadPoolTest, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> ran{0};
  pool.Submit([&ran] { ran.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPoolTest, HardwareThreadsIsPositive) {
  EXPECT_GE(ThreadPool::HardwareThreads(), 1u);
}

TEST(ThreadPoolTest, ResolveThreadCountMapsZeroToHardware) {
  EXPECT_EQ(ThreadPool::ResolveThreadCount(0), ThreadPool::HardwareThreads());
  EXPECT_EQ(ThreadPool::ResolveThreadCount(1), 1u);
  EXPECT_EQ(ThreadPool::ResolveThreadCount(7), 7u);
}

TEST(ParallelRunTest, SingleThreadRunsInlineInOrder) {
  // The determinism contract's reference path: with one thread the tasks
  // run on the calling thread in submission order.
  std::vector<int> order;
  std::thread::id caller = std::this_thread::get_id();
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 8; ++i) {
    tasks.push_back([&order, caller, i] {
      EXPECT_EQ(std::this_thread::get_id(), caller);
      order.push_back(i);
    });
  }
  ParallelRun(1, tasks);
  std::vector<int> expected(8);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ParallelRunTest, MultiThreadCompletesEveryTask) {
  std::atomic<int> ran{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 64; ++i) {
    tasks.push_back([&ran] { ran.fetch_add(1); });
  }
  ParallelRun(4, tasks);
  EXPECT_EQ(ran.load(), 64);
}

TEST(ParallelRunTest, MoreThreadsThanTasksIsSafe) {
  std::atomic<int> ran{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 3; ++i) {
    tasks.push_back([&ran] { ran.fetch_add(1); });
  }
  ParallelRun(16, tasks);
  EXPECT_EQ(ran.load(), 3);
}

TEST(ParallelRunTest, EmptyTaskListIsANoOp) {
  std::vector<std::function<void()>> tasks;
  ParallelRun(4, tasks);  // must not hang or crash
}

}  // namespace
}  // namespace condensa
