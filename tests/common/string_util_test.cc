#include "common/string_util.h"

#include <gtest/gtest.h>

namespace condensa {
namespace {

TEST(SplitTest, BasicCommaSplit) {
  std::vector<std::string> parts = Split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(SplitTest, KeepsEmptyFields) {
  std::vector<std::string> parts = Split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(SplitTest, NoDelimiterYieldsWholeString) {
  std::vector<std::string> parts = Split("hello", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "hello");
}

TEST(SplitTest, EmptyStringYieldsOneEmptyField) {
  std::vector<std::string> parts = Split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(StripWhitespaceTest, StripsBothEnds) {
  EXPECT_EQ(StripWhitespace("  hi  "), "hi");
  EXPECT_EQ(StripWhitespace("\t x \r\n"), "x");
  EXPECT_EQ(StripWhitespace("nochange"), "nochange");
  EXPECT_EQ(StripWhitespace("   "), "");
  EXPECT_EQ(StripWhitespace(""), "");
}

TEST(ParseDoubleTest, ParsesValidNumbers) {
  double v = 0.0;
  EXPECT_TRUE(ParseDouble("3.25", &v));
  EXPECT_DOUBLE_EQ(v, 3.25);
  EXPECT_TRUE(ParseDouble("-1e-3", &v));
  EXPECT_DOUBLE_EQ(v, -1e-3);
  EXPECT_TRUE(ParseDouble("  7 ", &v));
  EXPECT_DOUBLE_EQ(v, 7.0);
}

TEST(ParseDoubleTest, RejectsMalformedInput) {
  double v = 0.0;
  EXPECT_FALSE(ParseDouble("", &v));
  EXPECT_FALSE(ParseDouble("abc", &v));
  EXPECT_FALSE(ParseDouble("1.5x", &v));
  EXPECT_FALSE(ParseDouble("1.5 2.5", &v));
}

TEST(ParseIntTest, ParsesValidIntegers) {
  int v = 0;
  EXPECT_TRUE(ParseInt("42", &v));
  EXPECT_EQ(v, 42);
  EXPECT_TRUE(ParseInt("-9", &v));
  EXPECT_EQ(v, -9);
  EXPECT_TRUE(ParseInt(" 0 ", &v));
  EXPECT_EQ(v, 0);
}

TEST(ParseIntTest, RejectsMalformedInput) {
  int v = 0;
  EXPECT_FALSE(ParseInt("", &v));
  EXPECT_FALSE(ParseInt("3.5", &v));
  EXPECT_FALSE(ParseInt("seven", &v));
  EXPECT_FALSE(ParseInt("99999999999999999999", &v));
}

TEST(JoinTest, JoinsWithSeparator) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StartsWithTest, MatchesPrefixes) {
  EXPECT_TRUE(StartsWith("condensa", "con"));
  EXPECT_TRUE(StartsWith("abc", ""));
  EXPECT_FALSE(StartsWith("abc", "abcd"));
  EXPECT_FALSE(StartsWith("abc", "b"));
}

TEST(FormatDoubleTest, RespectsPrecision) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(1.0, 3), "1.000");
  EXPECT_EQ(FormatDouble(-0.5, 1), "-0.5");
}

}  // namespace
}  // namespace condensa
