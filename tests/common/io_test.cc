#include "common/io.h"

#include <gtest/gtest.h>

#include "common/failpoint.h"

namespace condensa {
namespace {

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FailPoint::Reset();
    // One directory per test case: ctest runs each case as its own
    // process, and a shared path makes concurrent cases sweep each
    // other's files mid-test (flaky under `ctest -j`).
    dir_ = ::testing::TempDir() + "/condensa_io_test_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    ASSERT_TRUE(CreateDirectories(dir_).ok());
    // Start each test from an empty directory.
    auto entries = ListDirectory(dir_);
    ASSERT_TRUE(entries.ok());
    for (const std::string& name : *entries) {
      ASSERT_TRUE(RemoveFile(dir_ + "/" + name).ok());
    }
  }
  void TearDown() override { FailPoint::Reset(); }

  std::string dir_;
};

TEST_F(IoTest, ReadMissingFileIsNotFound) {
  auto content = ReadFileToString(dir_ + "/nope");
  EXPECT_TRUE(IsNotFound(content.status()));
}

TEST_F(IoTest, AtomicWriteRoundTripAndOverwrite) {
  const std::string path = dir_ + "/file.txt";
  ASSERT_TRUE(WriteFileAtomic(path, "first").ok());
  auto content = ReadFileToString(path);
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(*content, "first");

  ASSERT_TRUE(WriteFileAtomic(path, "second, longer content").ok());
  content = ReadFileToString(path);
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(*content, "second, longer content");
}

TEST_F(IoTest, TornAtomicWriteLeavesPreviousFileIntact) {
  const std::string path = dir_ + "/file.txt";
  ASSERT_TRUE(WriteFileAtomic(path, "stable content").ok());

  FailPoint::Arm("io.atomic_write",
                 {.mode = FailPointMode::kTornWrite, .torn_bytes = 4});
  Status torn = WriteFileAtomic(path, "replacement that gets torn");
  FailPoint::Reset();
  EXPECT_EQ(torn.code(), StatusCode::kDataLoss);

  auto content = ReadFileToString(path);
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(*content, "stable content");
  // No temp files may survive the failed attempt.
  auto entries = ListDirectory(dir_);
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries->size(), 1u);
  EXPECT_EQ(entries->front(), "file.txt");
}

TEST_F(IoTest, FailedRenameLeavesPreviousFileIntact) {
  const std::string path = dir_ + "/file.txt";
  ASSERT_TRUE(WriteFileAtomic(path, "stable content").ok());

  FailPoint::Arm("io.atomic_rename", {});
  Status failed = WriteFileAtomic(path, "never visible");
  FailPoint::Reset();
  EXPECT_FALSE(failed.ok());

  auto content = ReadFileToString(path);
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(*content, "stable content");
  auto entries = ListDirectory(dir_);
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), 1u);
}

TEST_F(IoTest, FailedSyncLeavesPreviousFileIntact) {
  const std::string path = dir_ + "/file.txt";
  ASSERT_TRUE(WriteFileAtomic(path, "stable content").ok());

  FailPoint::Arm("io.sync", {});
  Status failed = WriteFileAtomic(path, "never visible");
  FailPoint::Reset();
  EXPECT_FALSE(failed.ok());

  auto content = ReadFileToString(path);
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(*content, "stable content");
}

TEST_F(IoTest, AppendFileAccumulatesAcrossReopen) {
  const std::string path = dir_ + "/log";
  {
    auto file = AppendFile::Open(path);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE(file->Append("one\n").ok());
    ASSERT_TRUE(file->Sync().ok());
  }
  {
    auto file = AppendFile::Open(path);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE(file->Append("two\n").ok());
  }
  auto content = ReadFileToString(path);
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(*content, "one\ntwo\n");
}

TEST_F(IoTest, AppendFileTruncateRepairsTail) {
  const std::string path = dir_ + "/log";
  auto file = AppendFile::Open(path);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(file->Append("keep\ntorn").ok());
  ASSERT_TRUE(file->Truncate(5).ok());
  ASSERT_TRUE(file->Append("next\n").ok());
  auto content = ReadFileToString(path);
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(*content, "keep\nnext\n");
}

TEST_F(IoTest, TornAppendWritesOnlyThePrefix) {
  const std::string path = dir_ + "/log";
  auto file = AppendFile::Open(path);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(file->Append("complete\n").ok());

  FailPoint::Arm("io.append",
                 {.mode = FailPointMode::kTornWrite, .torn_bytes = 3});
  Status torn = file->Append("truncated entry\n");
  FailPoint::Reset();
  EXPECT_FALSE(torn.ok());

  auto content = ReadFileToString(path);
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(*content, "complete\ntru");
}

TEST_F(IoTest, TornAppendDefaultsToHalfThePayload) {
  const std::string path = dir_ + "/log";
  auto file = AppendFile::Open(path);
  ASSERT_TRUE(file.ok());
  FailPoint::Arm("io.append", {.mode = FailPointMode::kTornWrite});
  EXPECT_FALSE(file->Append("12345678").ok());
  FailPoint::Reset();
  auto content = ReadFileToString(path);
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(*content, "1234");
}

TEST_F(IoTest, ClosedAppendFileRejectsWrites) {
  auto file = AppendFile::Open(dir_ + "/log");
  ASSERT_TRUE(file.ok());
  file->Close();
  EXPECT_FALSE(file->is_open());
  EXPECT_EQ(file->Append("x").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(file->Sync().code(), StatusCode::kFailedPrecondition);
}

TEST_F(IoTest, RemoveMissingFileIsOk) {
  EXPECT_TRUE(RemoveFile(dir_ + "/never-existed").ok());
}

TEST_F(IoTest, CreateDirectoriesIsRecursiveAndIdempotent) {
  // Outside dir_ so the fixture's file-only cleanup never sees it.
  const std::string nested = ::testing::TempDir() + "/condensa_io_nested/b/c";
  ASSERT_TRUE(CreateDirectories(nested).ok());
  EXPECT_TRUE(PathExists(nested));
  EXPECT_TRUE(CreateDirectories(nested).ok());
  ASSERT_TRUE(WriteFileAtomic(nested + "/f", "x").ok());
  // Clean up so later runs start from an empty fixture dir.
  ASSERT_TRUE(RemoveFile(nested + "/f").ok());
}

TEST_F(IoTest, ListDirectoryReturnsEntryNames) {
  ASSERT_TRUE(WriteFileAtomic(dir_ + "/x", "1").ok());
  ASSERT_TRUE(WriteFileAtomic(dir_ + "/y", "2").ok());
  auto entries = ListDirectory(dir_);
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), 2u);
  EXPECT_TRUE(IsNotFound(ListDirectory(dir_ + "/missing").status()));
}

}  // namespace
}  // namespace condensa
