#include "anonymity/mondrian.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>

#include "common/random.h"
#include "datagen/profiles.h"

namespace condensa::anonymity {
namespace {

using linalg::Vector;

std::vector<Vector> RandomCloud(std::size_t n, std::size_t dim, Rng& rng) {
  std::vector<Vector> points;
  for (std::size_t i = 0; i < n; ++i) {
    Vector p(dim);
    for (std::size_t j = 0; j < dim; ++j) {
      p[j] = rng.Gaussian();
    }
    points.push_back(std::move(p));
  }
  return points;
}

TEST(MondrianPartitionTest, RejectsInvalidInput) {
  Rng rng(1);
  EXPECT_FALSE(MondrianPartition({}, {.k = 5}).ok());
  EXPECT_FALSE(
      MondrianPartition(RandomCloud(3, 2, rng), {.k = 5}).ok());
  EXPECT_FALSE(
      MondrianPartition(RandomCloud(10, 2, rng), {.k = 0}).ok());
  std::vector<Vector> ragged = {Vector{0.0}, Vector{0.0, 1.0}};
  EXPECT_FALSE(MondrianPartition(ragged, {.k = 1}).ok());
}

TEST(MondrianPartitionTest, EveryClassHasAtLeastKMembers) {
  Rng rng(2);
  std::vector<Vector> points = RandomCloud(200, 3, rng);
  for (std::size_t k : {1u, 2u, 5u, 10u, 50u}) {
    auto result = MondrianPartition(points, {.k = k});
    ASSERT_TRUE(result.ok());
    EXPECT_GE(result->MinClassSize(), k) << "k=" << k;
  }
}

TEST(MondrianPartitionTest, ClassesPartitionAllRecords) {
  Rng rng(3);
  std::vector<Vector> points = RandomCloud(137, 2, rng);
  auto result = MondrianPartition(points, {.k = 8});
  ASSERT_TRUE(result.ok());
  std::set<std::size_t> seen;
  for (const EquivalenceClass& ec : result->classes) {
    for (std::size_t i : ec.members) {
      EXPECT_TRUE(seen.insert(i).second) << "record in two classes";
    }
  }
  EXPECT_EQ(seen.size(), points.size());
}

TEST(MondrianPartitionTest, BoundsContainMembersAndCentroid) {
  Rng rng(4);
  std::vector<Vector> points = RandomCloud(150, 3, rng);
  auto result = MondrianPartition(points, {.k = 10});
  ASSERT_TRUE(result.ok());
  for (const EquivalenceClass& ec : result->classes) {
    for (std::size_t i : ec.members) {
      for (std::size_t j = 0; j < 3; ++j) {
        EXPECT_GE(points[i][j], ec.lower[j] - 1e-12);
        EXPECT_LE(points[i][j], ec.upper[j] + 1e-12);
      }
    }
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_GE(ec.centroid[j], ec.lower[j] - 1e-12);
      EXPECT_LE(ec.centroid[j], ec.upper[j] + 1e-12);
    }
  }
}

TEST(MondrianPartitionTest, SmallerKGivesFinerPartition) {
  Rng rng(5);
  std::vector<Vector> points = RandomCloud(256, 2, rng);
  auto coarse = MondrianPartition(points, {.k = 64});
  auto fine = MondrianPartition(points, {.k = 4});
  ASSERT_TRUE(coarse.ok());
  ASSERT_TRUE(fine.ok());
  EXPECT_GT(fine->classes.size(), coarse->classes.size());

  // Finer partitions lose less range information.
  linalg::Vector lower(2, -1e9), upper(2, 1e9);
  // Use actual global bounds.
  lower = points[0];
  upper = points[0];
  for (const Vector& p : points) {
    for (std::size_t j = 0; j < 2; ++j) {
      lower[j] = std::min(lower[j], p[j]);
      upper[j] = std::max(upper[j], p[j]);
    }
  }
  EXPECT_LT(fine->AverageRangeLoss(lower, upper),
            coarse->AverageRangeLoss(lower, upper));
}

TEST(MondrianPartitionTest, IdenticalPointsFormOneClass) {
  std::vector<Vector> points(40, Vector{1.0, 1.0});
  auto result = MondrianPartition(points, {.k = 5});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->classes.size(), 1u);
  EXPECT_EQ(result->classes[0].members.size(), 40u);
}

TEST(MondrianCentroidReleaseTest, PreservesShapeAndLabels) {
  Rng rng(6);
  data::Dataset input = datagen::MakeGaussianBlobs(2, 60, 3, 8.0, rng);
  auto release = MondrianCentroidRelease(input, {.k = 10});
  ASSERT_TRUE(release.ok());
  EXPECT_EQ(release->size(), input.size());
  auto in_by = input.IndicesByLabel();
  auto out_by = release->IndicesByLabel();
  for (const auto& [label, indices] : in_by) {
    EXPECT_EQ(out_by[label].size(), indices.size());
  }
}

TEST(MondrianCentroidReleaseTest, CentroidsRepeatAtLeastKTimesPerClass) {
  Rng rng(7);
  data::Dataset input = datagen::MakeGaussianBlobs(2, 80, 2, 8.0, rng);
  const std::size_t k = 8;
  auto release = MondrianCentroidRelease(input, {.k = k});
  ASSERT_TRUE(release.ok());
  // Each distinct released record must appear >= k times (its class).
  std::map<std::string, std::size_t> counts;
  for (std::size_t i = 0; i < release->size(); ++i) {
    counts[release->record(i).ToString()]++;
  }
  for (const auto& [repr, count] : counts) {
    EXPECT_GE(count, k) << repr;
  }
}

TEST(MondrianCentroidReleaseTest, ReleaseDestroysWithinClassVariance) {
  // The baseline's weakness vs condensation: all members of an
  // equivalence class collapse to one point, so the within-class spread
  // of the release is far below the original's.
  Rng rng(8);
  data::Dataset input(2);
  for (int i = 0; i < 300; ++i) {
    input.Add(Vector{rng.Gaussian(), rng.Gaussian()});
  }
  auto release = MondrianCentroidRelease(input, {.k = 30});
  ASSERT_TRUE(release.ok());
  double original_var = input.Covariance().Trace();
  double release_var = release->Covariance().Trace();
  EXPECT_LT(release_var, original_var);
}

TEST(MondrianCentroidReleaseTest, RegressionTargetsPreserved) {
  Rng rng(9);
  data::Dataset input(1, data::TaskType::kRegression);
  for (int i = 0; i < 50; ++i) {
    input.Add(Vector{rng.Gaussian()}, static_cast<double>(i));
  }
  auto release = MondrianCentroidRelease(input, {.k = 10});
  ASSERT_TRUE(release.ok());
  // Targets are not generalized — the multiset is unchanged.
  std::multiset<double> original_targets(input.targets().begin(),
                                         input.targets().end());
  std::multiset<double> release_targets(release->targets().begin(),
                                        release->targets().end());
  EXPECT_EQ(original_targets, release_targets);
}

TEST(MondrianCentroidReleaseTest, TinyClassBelowKStillReleased) {
  Rng rng(10);
  data::Dataset input(2, data::TaskType::kClassification);
  for (int i = 0; i < 30; ++i) {
    input.Add(Vector{rng.Gaussian(), rng.Gaussian()}, 0);
  }
  input.Add(Vector{5.0, 5.0}, 1);
  input.Add(Vector{5.1, 5.2}, 1);
  auto release = MondrianCentroidRelease(input, {.k = 10});
  ASSERT_TRUE(release.ok());
  EXPECT_EQ(release->size(), 32u);
}

}  // namespace
}  // namespace condensa::anonymity
