#include "index/kdtree.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "mining/knn.h"

namespace condensa::index {
namespace {

using linalg::Vector;

std::vector<Vector> RandomCloud(std::size_t n, std::size_t dim, Rng& rng) {
  std::vector<Vector> points;
  points.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Vector p(dim);
    for (std::size_t j = 0; j < dim; ++j) {
      p[j] = rng.Gaussian();
    }
    points.push_back(std::move(p));
  }
  return points;
}

// Brute-force reference: indices of the k nearest points, sorted by
// distance with index as tiebreaker.
std::vector<std::size_t> BruteKNearest(const std::vector<Vector>& points,
                                       const Vector& query, std::size_t k) {
  std::vector<std::pair<double, std::size_t>> distances;
  for (std::size_t i = 0; i < points.size(); ++i) {
    distances.emplace_back(linalg::SquaredDistance(points[i], query), i);
  }
  std::sort(distances.begin(), distances.end());
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < std::min(k, points.size()); ++i) {
    out.push_back(distances[i].second);
  }
  return out;
}

TEST(KdTreeTest, BuildValidatesInput) {
  EXPECT_FALSE(KdTree::Build({}).ok());
  std::vector<Vector> ragged = {Vector{1.0}, Vector{1.0, 2.0}};
  EXPECT_FALSE(KdTree::Build(ragged).ok());
}

TEST(KdTreeTest, NearestOnTinySet) {
  std::vector<Vector> points = {Vector{0.0, 0.0}, Vector{5.0, 5.0},
                                Vector{10.0, 0.0}};
  auto tree = KdTree::Build(points);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->Nearest(Vector{1.0, 1.0}), 0u);
  EXPECT_EQ(tree->Nearest(Vector{6.0, 4.0}), 1u);
  EXPECT_EQ(tree->Nearest(Vector{9.0, 1.0}), 2u);
}

TEST(KdTreeTest, SinglePoint) {
  std::vector<Vector> points = {Vector{3.0}};
  auto tree = KdTree::Build(points);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->Nearest(Vector{-100.0}), 0u);
  EXPECT_EQ(tree->KNearest(Vector{0.0}, 5).size(), 1u);
}

TEST(KdTreeTest, DuplicatePointsHandled) {
  std::vector<Vector> points(100, Vector{1.0, 2.0});
  auto tree = KdTree::Build(points);
  ASSERT_TRUE(tree.ok());
  std::vector<std::size_t> nn = tree->KNearest(Vector{1.0, 2.0}, 5);
  EXPECT_EQ(nn.size(), 5u);
}

TEST(KdTreeTest, KNearestDistancesAreNonDecreasing) {
  Rng rng(1);
  std::vector<Vector> points = RandomCloud(500, 3, rng);
  auto tree = KdTree::Build(points);
  ASSERT_TRUE(tree.ok());
  Vector query{0.1, -0.2, 0.3};
  std::vector<std::size_t> nn = tree->KNearest(query, 20);
  ASSERT_EQ(nn.size(), 20u);
  for (std::size_t i = 1; i < nn.size(); ++i) {
    EXPECT_LE(linalg::SquaredDistance(points[nn[i - 1]], query),
              linalg::SquaredDistance(points[nn[i]], query) + 1e-15);
  }
}

// Property sweep: k-d tree results match brute force across sizes,
// dimensions, and k.
class KdTreePropertyTest
    : public ::testing::TestWithParam<
          std::tuple<std::size_t, std::size_t, std::size_t>> {};

TEST_P(KdTreePropertyTest, MatchesBruteForce) {
  auto [n, dim, k] = GetParam();
  Rng rng(10 + n + dim * 31 + k * 97);
  std::vector<Vector> points = RandomCloud(n, dim, rng);
  auto tree = KdTree::Build(points);
  ASSERT_TRUE(tree.ok());

  for (int q = 0; q < 25; ++q) {
    Vector query(dim);
    for (std::size_t j = 0; j < dim; ++j) {
      query[j] = rng.Gaussian(0.0, 1.5);
    }
    std::vector<std::size_t> expected = BruteKNearest(points, query, k);
    std::vector<std::size_t> actual = tree->KNearest(query, k);
    ASSERT_EQ(actual.size(), expected.size());
    // Compare by distance (indices can differ on exact ties).
    for (std::size_t i = 0; i < actual.size(); ++i) {
      EXPECT_NEAR(linalg::SquaredDistance(points[actual[i]], query),
                  linalg::SquaredDistance(points[expected[i]], query),
                  1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, KdTreePropertyTest,
    ::testing::Combine(::testing::Values(1, 17, 100, 1000),
                       ::testing::Values(1, 2, 5, 8),
                       ::testing::Values(1, 3, 10)));

TEST(KdTreeTest, RadiusSearchMatchesBruteForce) {
  Rng rng(2);
  std::vector<Vector> points = RandomCloud(400, 2, rng);
  auto tree = KdTree::Build(points);
  ASSERT_TRUE(tree.ok());

  Vector query{0.0, 0.0};
  for (double radius : {0.0, 0.3, 1.0, 3.0}) {
    std::vector<std::size_t> actual = tree->RadiusSearch(query, radius);
    std::sort(actual.begin(), actual.end());
    std::vector<std::size_t> expected;
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (linalg::SquaredDistance(points[i], query) <= radius * radius) {
        expected.push_back(i);
      }
    }
    EXPECT_EQ(actual, expected) << "radius " << radius;
  }
}

TEST(KdTreeTest, RadiusSearchSquaredIncludesBoundaryTies) {
  // The squared-radius entry point exists so callers can pass an exact
  // k-th-neighbour distance and get every boundary tie back — no
  // radius*radius rounding in between.
  std::vector<Vector> points = {Vector{1.0, 0.0}, Vector{0.0, 1.0},
                                Vector{-1.0, 0.0}, Vector{0.0, -1.0},
                                Vector{3.0, 0.0}};
  auto tree = KdTree::Build(points);
  ASSERT_TRUE(tree.ok());
  Vector origin{0.0, 0.0};
  double boundary_sq = linalg::SquaredDistance(points[0], origin);
  std::vector<std::size_t> hits =
      tree->RadiusSearchSquared(origin, boundary_sq);
  std::sort(hits.begin(), hits.end());
  EXPECT_EQ(hits, (std::vector<std::size_t>{0, 1, 2, 3}));
  EXPECT_TRUE(tree->RadiusSearchSquared(origin, 0.5).empty());
}

TEST(KdTreeTest, RadiusSearchSquaredMatchesBruteForce) {
  Rng rng(5);
  std::vector<Vector> points = RandomCloud(300, 3, rng);
  auto tree = KdTree::Build(points);
  ASSERT_TRUE(tree.ok());
  Vector query{0.2, -0.1, 0.4};
  for (double radius_sq : {0.01, 0.5, 2.0, 10.0}) {
    std::vector<std::size_t> actual =
        tree->RadiusSearchSquared(query, radius_sq);
    std::sort(actual.begin(), actual.end());
    std::vector<std::size_t> expected;
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (linalg::SquaredDistance(points[i], query) <= radius_sq) {
        expected.push_back(i);
      }
    }
    EXPECT_EQ(actual, expected) << "radius_sq " << radius_sq;
  }
}

TEST(KnnIndexIntegrationTest, IndexedClassifierMatchesBruteForce) {
  Rng rng(3);
  data::Dataset train(3, data::TaskType::kClassification);
  for (int i = 0; i < 800; ++i) {
    train.Add(Vector{rng.Gaussian(), rng.Gaussian(), rng.Gaussian()},
              i % 3);
  }
  mining::KnnClassifier brute(
      {.k = 5, .strategy = mining::SearchStrategy::kBruteForce});
  mining::KnnClassifier indexed(
      {.k = 5, .strategy = mining::SearchStrategy::kKdTree});
  ASSERT_TRUE(brute.Fit(train).ok());
  ASSERT_TRUE(indexed.Fit(train).ok());
  EXPECT_FALSE(brute.uses_index());
  EXPECT_TRUE(indexed.uses_index());
  for (int q = 0; q < 100; ++q) {
    Vector query{rng.Gaussian(), rng.Gaussian(), rng.Gaussian()};
    EXPECT_EQ(brute.Predict(query), indexed.Predict(query));
  }
}

TEST(KnnIndexIntegrationTest, AutoStrategyEngagesOnLargeLowDimData) {
  Rng rng(4);
  data::Dataset small(3, data::TaskType::kClassification);
  for (int i = 0; i < 50; ++i) {
    small.Add(Vector{rng.Gaussian(), rng.Gaussian(), rng.Gaussian()}, i % 2);
  }
  mining::KnnClassifier on_small({.k = 1});
  ASSERT_TRUE(on_small.Fit(small).ok());
  EXPECT_FALSE(on_small.uses_index());

  data::Dataset large(3, data::TaskType::kClassification);
  for (int i = 0; i < 1000; ++i) {
    large.Add(Vector{rng.Gaussian(), rng.Gaussian(), rng.Gaussian()}, i % 2);
  }
  mining::KnnClassifier on_large({.k = 1});
  ASSERT_TRUE(on_large.Fit(large).ok());
  EXPECT_TRUE(on_large.uses_index());
}

}  // namespace
}  // namespace condensa::index
