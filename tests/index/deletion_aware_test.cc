#include "index/deletion_aware.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "common/random.h"
#include "linalg/vector.h"

namespace condensa::index {
namespace {

using linalg::Vector;

std::vector<Vector> RandomCloud(std::size_t n, std::size_t dim, Rng& rng) {
  std::vector<Vector> points;
  points.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Vector p(dim);
    for (std::size_t j = 0; j < dim; ++j) {
      p[j] = rng.Gaussian();
    }
    points.push_back(std::move(p));
  }
  return points;
}

// The reference the wrapper must match bit-for-bit: scan the alive
// points, order by (squared distance, original index).
std::vector<std::pair<double, std::size_t>> BruteKNearest(
    const std::vector<Vector>& points, const std::vector<bool>& alive,
    const Vector& query, std::size_t k) {
  std::vector<std::pair<double, std::size_t>> hits;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (!alive[i]) continue;
    hits.emplace_back(linalg::SquaredDistance(points[i], query), i);
  }
  std::sort(hits.begin(), hits.end());
  if (hits.size() > k) hits.resize(k);
  return hits;
}

TEST(DeletionAwareKdTreeTest, RejectsEmptyInput) {
  EXPECT_FALSE(DeletionAwareKdTree::Build({}).ok());
}

TEST(DeletionAwareKdTreeTest, MatchesBruteForceWithoutDeletions) {
  Rng rng(1);
  std::vector<Vector> points = RandomCloud(200, 3, rng);
  auto tree = DeletionAwareKdTree::Build(points);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->alive_count(), 200u);
  std::vector<bool> alive(points.size(), true);
  for (int trial = 0; trial < 20; ++trial) {
    Vector query{rng.Gaussian(), rng.Gaussian(), rng.Gaussian()};
    EXPECT_EQ(tree->KNearestAlive(query, 7),
              BruteKNearest(points, alive, query, 7));
  }
}

TEST(DeletionAwareKdTreeTest, MatchesBruteForceUnderInterleavedDeletions) {
  // Erase points between queries, past the 50% rebuild threshold, and
  // check every answer against the alive-only scan.
  Rng rng(2);
  std::vector<Vector> points = RandomCloud(300, 4, rng);
  auto tree = DeletionAwareKdTree::Build(points);
  ASSERT_TRUE(tree.ok());
  std::vector<bool> alive(points.size(), true);
  std::vector<std::size_t> order(points.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.Shuffle(order);

  std::size_t erased = 0;
  for (std::size_t round = 0; round < 28; ++round) {
    for (std::size_t j = 0; j < 10; ++j) {
      std::size_t victim = order[erased++];
      tree->Erase(victim);
      alive[victim] = false;
    }
    ASSERT_EQ(tree->alive_count(), points.size() - erased);
    Vector query(4);
    for (std::size_t d = 0; d < 4; ++d) query[d] = rng.Gaussian();
    EXPECT_EQ(tree->KNearestAlive(query, 9),
              BruteKNearest(points, alive, query, 9))
        << "after erasing " << erased << " points";
  }
}

TEST(DeletionAwareKdTreeTest, ErasedPointNeverReturned) {
  Rng rng(3);
  std::vector<Vector> points = RandomCloud(50, 2, rng);
  auto tree = DeletionAwareKdTree::Build(points);
  ASSERT_TRUE(tree.ok());
  Vector query = points[17];
  auto before = tree->KNearestAlive(query, 1);
  ASSERT_EQ(before.size(), 1u);
  EXPECT_EQ(before[0].second, 17u);
  tree->Erase(17);
  EXPECT_FALSE(tree->alive(17));
  for (const auto& [dist, idx] : tree->KNearestAlive(query, 49)) {
    EXPECT_NE(idx, 17u);
  }
}

TEST(DeletionAwareKdTreeTest, TiesBreakByOriginalIndex) {
  // Many coincident points: every distance ties, so ordering must come
  // from the original index alone.
  std::vector<Vector> points(20, Vector{1.0, 1.0});
  points.push_back(Vector{5.0, 5.0});
  auto tree = DeletionAwareKdTree::Build(points);
  ASSERT_TRUE(tree.ok());
  auto hits = tree->KNearestAlive(Vector{1.0, 1.0}, 5);
  ASSERT_EQ(hits.size(), 5u);
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].first, 0.0);
    EXPECT_EQ(hits[i].second, i);
  }
  // Erasing low indices shifts the selection to the next-lowest ones.
  tree->Erase(0);
  tree->Erase(2);
  auto after = tree->KNearestAlive(Vector{1.0, 1.0}, 3);
  ASSERT_EQ(after.size(), 3u);
  EXPECT_EQ(after[0].second, 1u);
  EXPECT_EQ(after[1].second, 3u);
  EXPECT_EQ(after[2].second, 4u);
}

TEST(DeletionAwareKdTreeTest, KClampsToAliveCount) {
  Rng rng(4);
  std::vector<Vector> points = RandomCloud(10, 2, rng);
  auto tree = DeletionAwareKdTree::Build(points);
  ASSERT_TRUE(tree.ok());
  tree->Erase(0);
  tree->Erase(1);
  auto hits = tree->KNearestAlive(Vector{0.0, 0.0}, 100);
  EXPECT_EQ(hits.size(), 8u);
}

TEST(DeletionAwareKdTreeTest, SurvivesErasingAllButOne) {
  // Drives several rebuilds in a row and ends on a single-point tree.
  Rng rng(5);
  std::vector<Vector> points = RandomCloud(128, 3, rng);
  auto tree = DeletionAwareKdTree::Build(points);
  ASSERT_TRUE(tree.ok());
  for (std::size_t i = 0; i + 1 < points.size(); ++i) {
    tree->Erase(i);
  }
  EXPECT_EQ(tree->alive_count(), 1u);
  auto hits = tree->KNearestAlive(Vector{0.0, 0.0, 0.0}, 5);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].second, points.size() - 1);
}

TEST(DeletionAwareKdTreeTest, WrapperSurvivesMove) {
  // The condenser moves the wrapper out of StatusOr; the tree's internal
  // pointers must stay valid afterwards.
  Rng rng(6);
  std::vector<Vector> points = RandomCloud(64, 2, rng);
  auto built = DeletionAwareKdTree::Build(points);
  ASSERT_TRUE(built.ok());
  DeletionAwareKdTree tree = std::move(built).value();
  tree.Erase(10);
  std::vector<bool> alive(points.size(), true);
  alive[10] = false;
  Vector query{0.1, -0.2};
  EXPECT_EQ(tree.KNearestAlive(query, 6),
            BruteKNearest(points, alive, query, 6));
}

}  // namespace
}  // namespace condensa::index
