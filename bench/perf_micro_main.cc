// P1-P4: google-benchmark microbenchmarks for the computational kernels —
// the Jacobi eigensolver, static condensation, dynamic ingest, anonymized
// data generation, and nearest-neighbour search.

#include <benchmark/benchmark.h>

#include "bench/bench_report.h"
#include "common/check.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "core/anonymizer.h"
#include "core/dynamic_condenser.h"
#include "core/split.h"
#include "core/static_condenser.h"
#include "datagen/random_covariance.h"
#include "index/kdtree.h"
#include "linalg/eigen.h"
#include "mining/knn.h"

namespace {

using condensa::Rng;
using condensa::linalg::Vector;

std::vector<Vector> MakeCloud(std::size_t n, std::size_t dim,
                              std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Vector> points;
  points.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Vector p(dim);
    for (std::size_t j = 0; j < dim; ++j) {
      p[j] = rng.Gaussian();
    }
    points.push_back(std::move(p));
  }
  return points;
}

// P1: Jacobi eigendecomposition vs matrix dimension.
void BM_JacobiEigen(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  condensa::linalg::Matrix cov = condensa::datagen::RandomCovariance(
      condensa::datagen::GeometricSpectrum(dim, 4.0, 0.8), rng);
  for (auto _ : state) {
    auto result = condensa::linalg::JacobiEigenDecomposition(cov);
    CONDENSA_CHECK(result.ok());
    benchmark::DoNotOptimize(result->eigenvalues);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_JacobiEigen)->RangeMultiplier(2)->Range(2, 64)->Complexity();

// P2: static condensation vs dataset size (k = 20, d = 8).
void BM_StaticCondense(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<Vector> points = MakeCloud(n, 8, 2);
  condensa::core::StaticCondenser condenser({.group_size = 20});
  Rng rng(3);
  for (auto _ : state) {
    auto groups = condenser.Condense(points, rng);
    CONDENSA_CHECK(groups.ok());
    benchmark::DoNotOptimize(groups->num_groups());
  }
  state.SetComplexityN(state.range(0));
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_StaticCondense)
    ->RangeMultiplier(2)
    ->Range(256, 4096)
    ->Complexity();

// P2c: the same hot path on the deletion-aware k-d tree; compare against
// BM_StaticCondenseBrute at matching sizes for the crossover point.
void BM_StaticCondenseIndexed(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<Vector> points = MakeCloud(n, 8, 2);
  condensa::core::StaticCondenser condenser(
      {.group_size = 20,
       .neighbour_search = condensa::core::NeighbourSearch::kKdTree});
  Rng rng(3);
  for (auto _ : state) {
    auto groups = condenser.Condense(points, rng);
    CONDENSA_CHECK(groups.ok());
    benchmark::DoNotOptimize(groups->num_groups());
  }
  state.SetComplexityN(state.range(0));
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_StaticCondenseIndexed)
    ->RangeMultiplier(2)
    ->Range(256, 16384)
    ->Complexity();

// P2d: forced brute force at index-territory sizes (the P2 default stops
// at 4096; this extends the scan so the two curves overlap).
void BM_StaticCondenseBrute(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<Vector> points = MakeCloud(n, 8, 2);
  condensa::core::StaticCondenser condenser(
      {.group_size = 20,
       .neighbour_search = condensa::core::NeighbourSearch::kBruteForce});
  Rng rng(3);
  for (auto _ : state) {
    auto groups = condenser.Condense(points, rng);
    CONDENSA_CHECK(groups.ok());
    benchmark::DoNotOptimize(groups->num_groups());
  }
  state.SetComplexityN(state.range(0));
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_StaticCondenseBrute)
    ->RangeMultiplier(2)
    ->Range(256, 16384)
    ->Complexity();

// P4c: whole-set generation at 1 thread vs all hardware threads.
void BM_GenerateParallel(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  std::vector<Vector> points = MakeCloud(8192, 8, 17);
  condensa::core::StaticCondenser condenser({.group_size = 32});
  Rng setup_rng(18);
  auto groups = condenser.Condense(points, setup_rng);
  CONDENSA_CHECK(groups.ok());
  condensa::core::Anonymizer anonymizer({.num_threads = threads});
  Rng rng(19);
  for (auto _ : state) {
    auto generated = anonymizer.Generate(*groups, rng);
    CONDENSA_CHECK(generated.ok());
    benchmark::DoNotOptimize(generated->size());
  }
  state.SetItemsProcessed(state.iterations() * 8192);
}
BENCHMARK(BM_GenerateParallel)
    ->Arg(1)
    ->Arg(static_cast<int>(condensa::ThreadPool::HardwareThreads()));

// P2b: static condensation vs group size (n = 2048, d = 8).
void BM_StaticCondenseByK(benchmark::State& state) {
  std::vector<Vector> points = MakeCloud(2048, 8, 4);
  condensa::core::StaticCondenser condenser(
      {.group_size = static_cast<std::size_t>(state.range(0))});
  Rng rng(5);
  for (auto _ : state) {
    auto groups = condenser.Condense(points, rng);
    CONDENSA_CHECK(groups.ok());
    benchmark::DoNotOptimize(groups->num_groups());
  }
}
BENCHMARK(BM_StaticCondenseByK)->RangeMultiplier(4)->Range(2, 512);

// P3: dynamic ingest throughput (records/s through Insert, k = 20).
void BM_DynamicInsert(benchmark::State& state) {
  std::vector<Vector> stream = MakeCloud(4096, 8, 6);
  Rng rng(7);
  for (auto _ : state) {
    state.PauseTiming();
    condensa::core::DynamicCondenser condenser(8, {.group_size = 20});
    std::vector<Vector> bootstrap(stream.begin(), stream.begin() + 256);
    CONDENSA_CHECK(condenser.Bootstrap(bootstrap, rng).ok());
    state.ResumeTiming();
    for (std::size_t i = 256; i < stream.size(); ++i) {
      CONDENSA_CHECK(condenser.Insert(stream[i]).ok());
    }
    benchmark::DoNotOptimize(condenser.groups().num_groups());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(stream.size() - 256));
}
BENCHMARK(BM_DynamicInsert);

// P3c: deletion throughput (Remove with re-merge bookkeeping, k = 20).
void BM_DynamicRemove(benchmark::State& state) {
  std::vector<Vector> stream = MakeCloud(2048, 8, 14);
  Rng rng(15);
  for (auto _ : state) {
    state.PauseTiming();
    condensa::core::DynamicCondenser condenser(8, {.group_size = 20});
    CONDENSA_CHECK(condenser.Bootstrap(stream, rng).ok());
    state.ResumeTiming();
    for (std::size_t i = 0; i < 1024; ++i) {
      CONDENSA_CHECK(condenser.Remove(stream[i]).ok());
    }
    benchmark::DoNotOptimize(condenser.groups().num_groups());
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_DynamicRemove);

// P3b: one statistics-only group split.
void BM_SplitGroupStatistics(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  std::vector<Vector> points = MakeCloud(40, dim, 8);
  condensa::core::GroupStatistics group(dim);
  for (const Vector& p : points) group.Add(p);
  for (auto _ : state) {
    auto split = condensa::core::SplitGroupStatistics(group);
    CONDENSA_CHECK(split.ok());
    benchmark::DoNotOptimize(split->lower.count());
  }
}
BENCHMARK(BM_SplitGroupStatistics)->RangeMultiplier(2)->Range(2, 64);

// P4: anonymized-record generation rate from one group.
void BM_AnonymizeGeneration(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  std::vector<Vector> points = MakeCloud(50, dim, 9);
  condensa::core::GroupStatistics group(dim);
  for (const Vector& p : points) group.Add(p);
  condensa::core::Anonymizer anonymizer;
  Rng rng(10);
  for (auto _ : state) {
    auto generated = anonymizer.GenerateFromGroup(group, 50, rng);
    CONDENSA_CHECK(generated.ok());
    benchmark::DoNotOptimize(generated->size());
  }
  state.SetItemsProcessed(state.iterations() * 50);
}
BENCHMARK(BM_AnonymizeGeneration)->RangeMultiplier(2)->Range(2, 64);

// P5: k-d tree build cost vs point count (d = 8).
void BM_KdTreeBuild(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<Vector> points = MakeCloud(n, 8, 12);
  for (auto _ : state) {
    auto tree = condensa::index::KdTree::Build(points);
    CONDENSA_CHECK(tree.ok());
    benchmark::DoNotOptimize(tree->size());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_KdTreeBuild)->RangeMultiplier(4)->Range(256, 16384)->Complexity();

// P5b: k-d tree 5-NN query vs brute force at matching sizes (d = 8).
void BM_KdTreeQuery(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<Vector> points = MakeCloud(n, 8, 13);
  auto tree = condensa::index::KdTree::Build(points);
  CONDENSA_CHECK(tree.ok());
  Vector query(8, 0.25);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree->KNearest(query, 5));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_KdTreeQuery)->RangeMultiplier(4)->Range(256, 16384)->Complexity();

// P4b: 1-NN query cost against a released dataset.
void BM_KnnPredict(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<Vector> points = MakeCloud(n, 8, 11);
  condensa::data::Dataset train(8, condensa::data::TaskType::kClassification);
  for (std::size_t i = 0; i < points.size(); ++i) {
    train.Add(points[i], static_cast<int>(i % 2));
  }
  condensa::mining::KnnClassifier knn({.k = 1});
  CONDENSA_CHECK(knn.Fit(train).ok());
  Vector query(8, 0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(knn.Predict(query));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_KnnPredict)->RangeMultiplier(4)->Range(256, 16384)->Complexity();

}  // namespace

// Expanded BENCHMARK_MAIN() so the run can finish with a BENCH_*.json
// carrying the instrument counters the benchmarks drove.
int main(int argc, char** argv) {
  condensa::bench::BenchReporter reporter("perf_micro");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  reporter.AddScalar(
      "benchmarks_run",
      static_cast<double>(benchmark::RunSpecifiedBenchmarks()));
  benchmark::Shutdown();
  return reporter.Finish() ? 0 : 1;
}
