// Ablation A5: condensation vs generalization-based k-anonymity (the
// paper's second comparator, reference [18]).
//
// Both approaches guarantee k-indistinguishability over numeric data. The
// k-anonymity baseline (Mondrian median partitioning, centroid release)
// collapses each equivalence class to one point, destroying within-class
// variance; condensation regenerates records with the class's full
// covariance. The bench sweeps k on the same workload and reports utility
// side by side.

#include <cstdio>

#include "anonymity/mondrian.h"
#include "bench/bench_report.h"
#include "common/check.h"
#include "common/random.h"
#include "core/engine.h"
#include "data/split.h"
#include "data/transform.h"
#include "datagen/profiles.h"
#include "metrics/compatibility.h"
#include "metrics/privacy.h"
#include "mining/evaluation.h"
#include "mining/knn.h"

using condensa::Rng;

int main() {
  condensa::bench::BenchReporter reporter("ablation_kanonymity");
  Rng data_rng(42);
  condensa::data::Dataset dataset =
      condensa::datagen::MakeIonosphere(data_rng);

  Rng rng(43);
  auto split = condensa::data::SplitTrainTest(dataset, 0.75, rng);
  CONDENSA_CHECK(split.ok());
  condensa::data::ZScoreScaler scaler;
  CONDENSA_CHECK(scaler.Fit(split->train).ok());
  condensa::data::Dataset train = scaler.TransformDataset(split->train);
  condensa::data::Dataset test = scaler.TransformDataset(split->test);

  auto evaluate = [&test](const condensa::data::Dataset& release,
                          const condensa::data::Dataset& original,
                          const char* name, std::size_t k) {
    condensa::mining::KnnClassifier knn({.k = 1});
    CONDENSA_CHECK(knn.Fit(release).ok());
    auto accuracy = condensa::mining::EvaluateAccuracy(knn, test);
    auto mu = condensa::metrics::CovarianceCompatibility(original, release);
    auto linkage = condensa::metrics::EvaluateLinkage(original, release);
    CONDENSA_CHECK(accuracy.ok());
    CONDENSA_CHECK(mu.ok());
    CONDENSA_CHECK(linkage.ok());
    std::printf("%6zu %14s %10.4f %10.4f %14.3f\n", k, name, *accuracy, *mu,
                linkage->distance_gain);
  };

  condensa::mining::KnnClassifier baseline({.k = 1});
  CONDENSA_CHECK(baseline.Fit(train).ok());
  auto baseline_accuracy = condensa::mining::EvaluateAccuracy(baseline, test);
  CONDENSA_CHECK(baseline_accuracy.ok());

  std::printf("=== Ablation A5: condensation vs Mondrian k-anonymity "
              "(Ionosphere, 75/25 split) ===\n");
  std::printf("1-NN accuracy on raw training data: %.4f\n\n",
              *baseline_accuracy);
  std::printf("%6s %14s %10s %10s %14s\n", "k", "method", "knn_acc", "mu",
              "distance_gain");

  for (std::size_t k : {2u, 5u, 10u, 20u, 40u, 80u}) {
    condensa::core::CondensationEngine engine({.group_size = k});
    auto condensed = engine.Anonymize(train, rng);
    CONDENSA_CHECK(condensed.ok());
    evaluate(condensed->anonymized, train, "condensation", k);

    auto mondrian = condensa::anonymity::MondrianCentroidRelease(
        train, {.k = k});
    CONDENSA_CHECK(mondrian.ok());
    evaluate(*mondrian, train, "mondrian", k);
  }

  std::printf(
      "\nExpected shape: Mondrian's centroid release can even help a\n"
      "nearest-neighbour classifier (each class collapses to clean\n"
      "prototypes), but it destroys the second-order structure: its mu\n"
      "falls steadily with k while condensation's stays near 1. Any\n"
      "analysis that needs variances or correlations (PCA, regression,\n"
      "association rules) only survives under condensation.\n\n");
  return reporter.Finish() ? 0 : 1;
}
