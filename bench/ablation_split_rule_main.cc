// Ablation A10: the paper's Figure 3 pseudocode, taken literally.
//
// The paper's split assigns `Fs(M1) = Fs(M)/n(M) ± e₁·sqrt(12 λ₁)/4` — a
// centroid-scale value written into the sum-scale field — and then feeds
// those Fs values into Eq. 3. Implemented verbatim (SplitRule::
// kPaperVerbatim) that error compounds over the stream; our default
// implementation (kMomentConsistent) fixes the units so merging the two
// halves reproduces the parent's moments exactly.
//
// This bench runs dynamic condensation with both rules and reproduces the
// paper's anomaly: with the verbatim rule, dynamic μ collapses at small
// group sizes (the paper reports 0.65-0.75 on two datasets) and recovers
// as k grows; with the consistent rule μ stays near the static level
// everywhere.

#include <cstdio>

#include "bench/bench_report.h"
#include "common/check.h"
#include "common/random.h"
#include "core/engine.h"
#include "data/split.h"
#include "data/transform.h"
#include "datagen/profiles.h"
#include "metrics/compatibility.h"

using condensa::Rng;
using condensa::core::SplitRule;

int main() {
  condensa::bench::BenchReporter reporter("ablation_split_rule");
  Rng data_rng(42);
  condensa::data::Dataset dataset =
      condensa::datagen::MakeIonosphere(data_rng);

  Rng rng(43);
  auto split = condensa::data::SplitTrainTest(dataset, 0.75, rng);
  CONDENSA_CHECK(split.ok());
  condensa::data::ZScoreScaler scaler;
  CONDENSA_CHECK(scaler.Fit(split->train).ok());
  condensa::data::Dataset train = scaler.TransformDataset(split->train);

  std::printf("=== Ablation A10: dynamic mu under the paper's verbatim "
              "Fig. 3 split vs the moment-consistent fix (Ionosphere) ===\n\n");
  std::printf("%6s %18s %18s\n", "k", "mu(consistent)", "mu(verbatim)");

  for (std::size_t k : {2u, 3u, 5u, 10u, 20u, 40u}) {
    double mu_rule[2] = {0.0, 0.0};
    constexpr int kTrials = 3;
    int rule_index = 0;
    for (SplitRule rule :
         {SplitRule::kMomentConsistent, SplitRule::kPaperVerbatim}) {
      for (int trial = 0; trial < kTrials; ++trial) {
        Rng trial_rng(100 + trial);
        condensa::core::CondensationEngine engine(
            {.group_size = k,
             .mode = condensa::core::CondensationMode::kDynamic,
             .bootstrap_fraction = 0.05,
             .split_rule = rule});
        auto result = engine.Anonymize(train, trial_rng);
        CONDENSA_CHECK(result.ok());
        auto mu = condensa::metrics::CovarianceCompatibility(
            train, result->anonymized);
        CONDENSA_CHECK(mu.ok());
        mu_rule[rule_index] += *mu / kTrials;
      }
      ++rule_index;
    }
    std::printf("%6zu %18.4f %18.4f\n", k, mu_rule[0], mu_rule[1]);
  }

  std::printf(
      "\nExpected shape: the verbatim rule visibly degrades mu at every k\n"
      "while the consistent rule stays near the static level. Mechanism:\n"
      "storing the centroid into the sum field shrinks every post-split\n"
      "group centroid by 1/k (the group covariance survives, the between-\n"
      "group structure collapses), which is the flavour of damage behind\n"
      "the 0.65-0.75 dynamic-mu dips the paper reports on two datasets —\n"
      "the exact magnitude is data- and pipeline-dependent.\n\n");
  return reporter.Finish() ? 0 : 1;
}
