// Ablation A3: condensation vs the Agrawal-Srikant perturbation baseline
// (paper Section 1's argument, quantified).
//
// Both approaches are run on the same workload across their privacy knobs
// (group size k for condensation, noise scale for perturbation). For each
// release we report:
//   * μ            — covariance structure preservation,
//   * distance_gain — the record-linkage privacy proxy,
//   * 1-NN accuracy — a record-based algorithm on the release,
//   * dist-clf accuracy — the per-dimension distribution classifier, the
//     only style of algorithm the perturbation model actually permits.
// The paper's claim shows up as: at comparable distance_gain, condensation
// keeps μ ≈ 1 and full 1-NN utility, while perturbation degrades both and
// caps utility at the marginal-model level.

#include <cstdio>

#include "bench/bench_report.h"
#include "common/check.h"
#include "common/random.h"
#include "core/engine.h"
#include "data/split.h"
#include "data/transform.h"
#include "datagen/profiles.h"
#include "metrics/compatibility.h"
#include "metrics/privacy.h"
#include "mining/evaluation.h"
#include "mining/knn.h"
#include "perturb/distribution_classifier.h"
#include "perturb/perturbation.h"
#include "perturb/privacy_quantification.h"

using condensa::Rng;

int main() {
  condensa::bench::BenchReporter reporter("ablation_perturbation");
  Rng data_rng(42);
  condensa::data::Dataset dataset = condensa::datagen::MakePima(data_rng);

  Rng rng(43);
  auto split = condensa::data::SplitTrainTest(dataset, 0.75, rng);
  CONDENSA_CHECK(split.ok());
  condensa::data::ZScoreScaler scaler;
  CONDENSA_CHECK(scaler.Fit(split->train).ok());
  condensa::data::Dataset train = scaler.TransformDataset(split->train);
  condensa::data::Dataset test = scaler.TransformDataset(split->test);

  auto knn_accuracy = [&test](const condensa::data::Dataset& release) {
    condensa::mining::KnnClassifier knn({.k = 1});
    CONDENSA_CHECK(knn.Fit(release).ok());
    auto accuracy = condensa::mining::EvaluateAccuracy(knn, test);
    CONDENSA_CHECK(accuracy.ok());
    return *accuracy;
  };

  std::printf("=== Ablation A3: condensation vs additive perturbation "
              "(Pima, 75/25 split) ===\n\n");

  std::printf("--- condensation (sweep k) ---\n");
  std::printf("%6s %10s %12s %14s %12s\n", "k", "mu", "cov_rel_err",
              "distance_gain", "knn_acc");
  for (std::size_t k : {2u, 5u, 10u, 20u, 40u, 80u}) {
    condensa::core::CondensationEngine engine({.group_size = k});
    auto result = engine.Anonymize(train, rng);
    CONDENSA_CHECK(result.ok());
    auto mu =
        condensa::metrics::CovarianceCompatibility(train, result->anonymized);
    auto err = condensa::metrics::CovarianceRelativeError(
        train.Covariance(), result->anonymized.Covariance());
    auto linkage =
        condensa::metrics::EvaluateLinkage(train, result->anonymized);
    CONDENSA_CHECK(mu.ok());
    CONDENSA_CHECK(err.ok());
    CONDENSA_CHECK(linkage.ok());
    std::printf("%6zu %10.4f %12.4f %14.3f %12.4f\n", k, *mu, *err,
                linkage->distance_gain, knn_accuracy(result->anonymized));
  }

  std::printf("\n--- perturbation (sweep uniform noise half-width, in units "
              "of feature stddev) ---\n");
  std::printf("%6s %10s %12s %14s %12s %14s %12s\n", "scale", "mu",
              "cov_rel_err", "distance_gain", "knn_acc", "dist_clf_acc",
              "priv_loss");
  for (double scale : {0.25, 0.5, 1.0, 2.0, 4.0, 8.0}) {
    condensa::perturb::NoiseSpec noise{
        condensa::perturb::NoiseKind::kUniform, scale};
    auto perturbed = condensa::perturb::PerturbDataset(train, noise, rng);
    CONDENSA_CHECK(perturbed.ok());

    // Agrawal–Aggarwal privacy-loss fraction, averaged over dimensions.
    double privacy_loss = 0.0;
    for (std::size_t j = 0; j < train.dim(); ++j) {
      std::vector<double> column;
      column.reserve(train.size());
      for (std::size_t i = 0; i < train.size(); ++i) {
        column.push_back(train.record(i)[j]);
      }
      auto report =
          condensa::perturb::QuantifyPerturbationPrivacy(column, noise);
      CONDENSA_CHECK(report.ok());
      privacy_loss += report->privacy_loss_fraction;
    }
    privacy_loss /= static_cast<double>(train.dim());
    auto mu = condensa::metrics::CovarianceCompatibility(train, *perturbed);
    auto err = condensa::metrics::CovarianceRelativeError(
        train.Covariance(), perturbed->Covariance());
    auto linkage = condensa::metrics::EvaluateLinkage(train, *perturbed);
    CONDENSA_CHECK(mu.ok());
    CONDENSA_CHECK(err.ok());
    CONDENSA_CHECK(linkage.ok());

    condensa::perturb::DistributionClassifier dist_clf(noise);
    CONDENSA_CHECK(dist_clf.Fit(*perturbed).ok());
    auto dist_accuracy = condensa::mining::EvaluateAccuracy(dist_clf, test);
    CONDENSA_CHECK(dist_accuracy.ok());

    std::printf("%6.2f %10.4f %12.4f %14.3f %12.4f %14.4f %12.4f\n", scale,
                *mu, *err, linkage->distance_gain, knn_accuracy(*perturbed),
                *dist_accuracy, privacy_loss);
  }

  std::printf(
      "\nExpected shape: at matched distance_gain, condensation keeps\n"
      "cov_rel_err small and 1-NN accuracy near the raw baseline, while\n"
      "perturbation inflates every variance (cov_rel_err grows with the\n"
      "noise) and loses 1-NN accuracy; the distribution classifier — the\n"
      "only algorithm style perturbation permits — ignores correlations\n"
      "entirely.\n\n");
  return reporter.Finish() ? 0 : 1;
}
