// Reproduces paper Figure 8: within-one-year regression accuracy (a) and
// covariance compatibility (b) on the Abalone profile.

#include "bench/figure_common.h"

int main(int argc, char** argv) {
  condensa::bench::FigureConfig config;
  config.profile = "abalone";
  config.bench_name = "fig8_abalone";
  config.title = "Figure 8 - Abalone (4177 x 7, regression)";
  config.regression = true;
  config.tolerance = 1.0;  // "within an accuracy of less than one year"
  config.group_sizes = {1, 2, 5, 10, 15, 20, 25, 30, 40, 50, 75, 100};
  return condensa::bench::FigureBenchMain(config, argc, argv);
}
