// Query-plane scaling bench: kNN-classify and aggregate
// latency/throughput against the QueryEngine as the number of condensed
// groups grows, plus the eigendecomposition cache's steady-state hit
// rate under repeated regenerate queries.
//
// Presets:
//   --preset=smoke   small group counts; the CI perf-smoke job runs this.
//   --preset=full    group counts up to 16384 (d = 10, k = 10).
//
// Emits BENCH_query_scale.json with one row per (workload, groups) cell
// and ops/sec as the headline column. The bench FAILS (exit 1) if the
// cache hit ratio in steady state is not above 0.9 — the regenerate
// working set fits the cache, so anything lower means version stamps are
// churning when the groups are not mutating.

#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_report.h"
#include "common/check.h"
#include "common/random.h"
#include "core/condensed_group_set.h"
#include "core/group_statistics.h"
#include "linalg/vector.h"
#include "obs/timing.h"
#include "query/engine.h"
#include "query/query.h"
#include "query/snapshot.h"

namespace {

using condensa::Rng;
using condensa::core::CondensedGroupSet;
using condensa::core::GroupStatistics;
using condensa::linalg::Vector;
using condensa::query::Query;
using condensa::query::QueryEngine;
using condensa::query::QueryEngineOptions;
using condensa::query::QueryKind;
using condensa::query::QueryResult;
using condensa::query::QuerySnapshot;

constexpr double kClassifyWorkload = 0.0;
constexpr double kAggregateWorkload = 1.0;
constexpr double kRegenerateWorkload = 2.0;

// One pool of `num_groups` groups of `k` records each, clustered around
// random centroids so classification has structure to find.
CondensedGroupSet MakePool(std::size_t num_groups, std::size_t dim,
                           std::size_t k, double center_offset, Rng& rng) {
  CondensedGroupSet pool(dim, k);
  pool.ReserveGroups(num_groups);
  for (std::size_t g = 0; g < num_groups; ++g) {
    Vector centroid(dim);
    for (std::size_t d = 0; d < dim; ++d) {
      centroid[d] = center_offset + rng.Gaussian(0.0, 3.0);
    }
    GroupStatistics stats(dim);
    for (std::size_t r = 0; r < k; ++r) {
      Vector record(dim);
      for (std::size_t d = 0; d < dim; ++d) {
        record[d] = centroid[d] + rng.Gaussian(0.0, 0.25);
      }
      stats.Add(record);
    }
    pool.AddGroup(std::move(stats));
  }
  return pool;
}

std::vector<Vector> MakeQueryPoints(std::size_t count, std::size_t dim,
                                    Rng& rng) {
  std::vector<Vector> points;
  points.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Vector p(dim);
    for (std::size_t d = 0; d < dim; ++d) {
      p[d] = rng.Gaussian(0.0, 3.0);
    }
    points.push_back(std::move(p));
  }
  return points;
}

QueryResult MustExecute(QueryEngine& engine, const QuerySnapshot& snapshot,
                        const Query& query) {
  auto result = engine.Execute(snapshot, query);
  CONDENSA_CHECK(result.ok());
  return *std::move(result);
}

}  // namespace

int main(int argc, char** argv) {
  std::string preset = "smoke";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--preset=", 9) == 0) {
      preset = argv[i] + 9;
    } else {
      std::fprintf(stderr, "usage: %s [--preset=smoke|full]\n", argv[0]);
      return 1;
    }
  }
  const bool full = preset == "full";
  if (!full && preset != "smoke") {
    std::fprintf(stderr, "unknown preset '%s'\n", preset.c_str());
    return 1;
  }

  const std::size_t dim = 10;
  const std::size_t k = 10;
  const std::size_t query_points = full ? 512 : 256;
  const std::size_t aggregate_repeats = full ? 200 : 100;
  const std::size_t regenerate_rounds = 25;
  const std::vector<std::size_t> group_counts =
      full ? std::vector<std::size_t>{512, 4096, 16384}
           : std::vector<std::size_t>{64, 512};

  condensa::bench::BenchReporter reporter("query_scale");
  reporter.AddScalar("full_preset", full ? 1.0 : 0.0);
  reporter.AddScalar("dim", static_cast<double>(dim));
  reporter.AddScalar("k", static_cast<double>(k));
  reporter.SetRowSchema(
      {"workload", "groups", "ops", "seconds", "ops_per_sec"});

  double worst_hit_ratio = 1.0;
  for (std::size_t groups : group_counts) {
    Rng rng(9'000 + groups);
    QuerySnapshot snapshot;
    snapshot.dim = dim;
    // Two labeled pools so classify has classes to separate.
    snapshot.pools.push_back(
        {0, MakePool(groups / 2, dim, k, -4.0, rng)});
    snapshot.pools.push_back(
        {1, MakePool(groups - groups / 2, dim, k, 4.0, rng)});

    // The cache must hold the full working set for the steady-state
    // measurement; sizing it to the group count is the intended
    // deployment shape (docs/query.md).
    QueryEngineOptions options;
    options.eigen_cache_capacity = groups;
    QueryEngine engine(options);
    const double dgroups = static_cast<double>(groups);

    // --- kNN classification against group centroids ---
    Query classify;
    classify.kind = QueryKind::kClassify;
    classify.classify.points = MakeQueryPoints(query_points, dim, rng);
    classify.classify.neighbors = 3;
    condensa::obs::Timer classify_timer;
    QueryResult classified = MustExecute(engine, snapshot, classify);
    const double classify_seconds = classify_timer.ElapsedSeconds();
    CONDENSA_CHECK_EQ(classified.classify.labels.size(), query_points);
    const double dpoints = static_cast<double>(query_points);
    reporter.AddRow({kClassifyWorkload, dgroups, dpoints, classify_seconds,
                     dpoints / classify_seconds});
    std::printf("classify groups=%zu: %zu points in %.4fs (%.0f pts/s)\n",
                groups, query_points, classify_seconds,
                dpoints / classify_seconds);

    // --- aggregates from the additive moments ---
    Query aggregate;
    aggregate.kind = QueryKind::kAggregate;
    // A half-space box: selects roughly the label-0 pool.
    aggregate.aggregate.range.bounds.push_back({0, -100.0, 0.0});
    condensa::obs::Timer aggregate_timer;
    std::uint64_t matched = 0;
    for (std::size_t r = 0; r < aggregate_repeats; ++r) {
      QueryResult result = MustExecute(engine, snapshot, aggregate);
      matched += result.aggregate.groups_matched;
    }
    const double aggregate_seconds = aggregate_timer.ElapsedSeconds();
    CONDENSA_CHECK_GT(matched, 0u);
    const double dreps = static_cast<double>(aggregate_repeats);
    reporter.AddRow({kAggregateWorkload, dgroups, dreps, aggregate_seconds,
                     dreps / aggregate_seconds});
    std::printf(
        "aggregate groups=%zu: %zu queries in %.4fs (%.0f queries/s)\n",
        groups, aggregate_repeats, aggregate_seconds,
        dreps / aggregate_seconds);

    // --- regenerate: eigendecomposition cache steady state ---
    // Round 1 faults every group's factorization in; the remaining
    // rounds must hit. Nothing mutates the snapshot, so misses after
    // round 1 would mean spurious version churn.
    Query regenerate;
    regenerate.kind = QueryKind::kRegenerate;
    regenerate.regenerate.seed = 4242;
    regenerate.regenerate.records_per_group = 1;
    condensa::obs::Timer regen_timer;
    for (std::size_t round = 0; round < regenerate_rounds; ++round) {
      QueryResult result = MustExecute(engine, snapshot, regenerate);
      CONDENSA_CHECK_EQ(result.regenerate.groups_matched, groups);
    }
    const double regen_seconds = regen_timer.ElapsedSeconds();
    const double drounds = static_cast<double>(regenerate_rounds);
    reporter.AddRow({kRegenerateWorkload, dgroups, drounds, regen_seconds,
                     drounds / regen_seconds});

    const condensa::query::EigenCacheStats stats =
        engine.eigen_cache().stats();
    const double hit_ratio = stats.HitRatio();
    if (hit_ratio < worst_hit_ratio) worst_hit_ratio = hit_ratio;
    reporter.AddScalar("cache_hit_ratio_g" + std::to_string(groups),
                       hit_ratio);
    std::printf(
        "regenerate groups=%zu: %zu rounds in %.4fs — cache %llu hits / "
        "%llu misses (ratio %.4f)\n",
        groups, regenerate_rounds, regen_seconds,
        static_cast<unsigned long long>(stats.hits),
        static_cast<unsigned long long>(stats.misses), hit_ratio);
  }

  reporter.AddScalar("cache_hit_ratio_worst", worst_hit_ratio);
  const bool wrote = reporter.Finish();
  if (worst_hit_ratio <= 0.9) {
    std::fprintf(stderr,
                 "FAIL: steady-state cache hit ratio %.4f <= 0.9\n",
                 worst_hit_ratio);
    return 1;
  }
  return wrote ? 0 : 1;
}
