// Query-plane scaling bench: kNN-classify and aggregate
// latency/throughput against the QueryEngine as the number of condensed
// groups grows, plus the eigendecomposition cache's steady-state hit
// rate under repeated regenerate queries.
//
// Presets:
//   --preset=smoke   small group counts; the CI perf-smoke job runs this.
//   --preset=full    group counts up to 16384 (d = 10, k = 10).
//
// Emits BENCH_query_scale.json with one row per (workload, groups) cell
// and ops/sec as the headline column. The bench FAILS (exit 1) if the
// cache hit ratio in steady state is not above 0.9 — the regenerate
// working set fits the cache, so anything lower means version stamps are
// churning when the groups are not mutating.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench/bench_report.h"
#include "common/check.h"
#include "common/failpoint.h"
#include "common/random.h"
#include "core/condensed_group_set.h"
#include "core/group_statistics.h"
#include "linalg/vector.h"
#include "obs/timing.h"
#include "query/client.h"
#include "query/engine.h"
#include "query/query.h"
#include "query/server.h"
#include "query/snapshot.h"

namespace {

using condensa::Rng;
using condensa::core::CondensedGroupSet;
using condensa::core::GroupStatistics;
using condensa::linalg::Vector;
using condensa::query::Query;
using condensa::query::QueryEngine;
using condensa::query::QueryEngineOptions;
using condensa::query::QueryKind;
using condensa::query::QueryResult;
using condensa::query::QuerySnapshot;

constexpr double kClassifyWorkload = 0.0;
constexpr double kAggregateWorkload = 1.0;
constexpr double kRegenerateWorkload = 2.0;
// Served over TCP with N concurrent sessions; the `groups` column holds
// the session count for these rows.
constexpr double kServeWorkload = 3.0;

// One pool of `num_groups` groups of `k` records each, clustered around
// random centroids so classification has structure to find.
CondensedGroupSet MakePool(std::size_t num_groups, std::size_t dim,
                           std::size_t k, double center_offset, Rng& rng) {
  CondensedGroupSet pool(dim, k);
  pool.ReserveGroups(num_groups);
  for (std::size_t g = 0; g < num_groups; ++g) {
    Vector centroid(dim);
    for (std::size_t d = 0; d < dim; ++d) {
      centroid[d] = center_offset + rng.Gaussian(0.0, 3.0);
    }
    GroupStatistics stats(dim);
    for (std::size_t r = 0; r < k; ++r) {
      Vector record(dim);
      for (std::size_t d = 0; d < dim; ++d) {
        record[d] = centroid[d] + rng.Gaussian(0.0, 0.25);
      }
      stats.Add(record);
    }
    pool.AddGroup(std::move(stats));
  }
  return pool;
}

std::vector<Vector> MakeQueryPoints(std::size_t count, std::size_t dim,
                                    Rng& rng) {
  std::vector<Vector> points;
  points.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Vector p(dim);
    for (std::size_t d = 0; d < dim; ++d) {
      p[d] = rng.Gaussian(0.0, 3.0);
    }
    points.push_back(std::move(p));
  }
  return points;
}

QueryResult MustExecute(QueryEngine& engine, const QuerySnapshot& snapshot,
                        const Query& query) {
  auto result = engine.Execute(snapshot, query);
  CONDENSA_CHECK(result.ok());
  return *std::move(result);
}

struct ServeMeasurement {
  double ops = 0.0;
  double seconds = 0.0;
  double sheds = 0.0;
  double OpsPerSec() const { return ops / seconds; }
  double ShedRate() const {
    const double total = ops + sheds;
    return total > 0.0 ? sheds / total : 0.0;
  }
};

// Throughput of the served read path with `sessions` concurrent client
// sessions against one QueryServer. Each request carries an injected
// per-request latency ("query.execute" failpoint), standing in for the
// eigendecomposition / large-aggregate work a loaded server does per
// query: with one session the client-server pair is latency-bound, with
// N sessions the session pool overlaps the waits — the speedup this
// bench pins is latency HIDING, so it holds on a single core.
ServeMeasurement MeasureServe(const QuerySnapshot& base,
                              std::size_t sessions,
                              std::size_t max_inflight,
                              double duration_seconds,
                              double request_latency_ms) {
  auto store = std::make_shared<condensa::query::SnapshotStore>();
  QuerySnapshot copy = base;
  store->Publish(std::move(copy));

  condensa::query::QueryServerConfig config;
  config.poll_ms = 10.0;
  config.max_sessions = sessions;
  config.max_inflight = max_inflight;
  auto server = condensa::query::QueryServer::Create(config, store);
  CONDENSA_CHECK(server.ok());
  std::thread serving([raw = server->get()] {
    CONDENSA_CHECK(raw->Run().ok());
  });

  condensa::FailPoint::Arm(
      "query.execute",
      {.repeat = static_cast<std::size_t>(-1),
       .mode = condensa::FailPointMode::kLatency,
       .latency_ms = request_latency_ms});

  const auto until =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(
          static_cast<long>(duration_seconds * 1000.0));
  std::atomic<std::size_t> ops{0};
  std::atomic<std::size_t> sheds{0};
  std::vector<std::thread> clients;
  condensa::obs::Timer timer;
  for (std::size_t c = 0; c < sessions; ++c) {
    clients.emplace_back([port = (*server)->port(), until, &ops, &sheds] {
      auto client =
          condensa::query::QueryClient::Connect("127.0.0.1", port, 5000.0);
      CONDENSA_CHECK(client.ok());
      Query aggregate;
      aggregate.kind = QueryKind::kAggregate;
      while (std::chrono::steady_clock::now() < until) {
        auto result = client->Execute(aggregate, 5000.0);
        if (result.ok()) {
          ops.fetch_add(1);
        } else {
          CONDENSA_CHECK(result.status().code() ==
                         condensa::StatusCode::kUnavailable);
          sheds.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  const double seconds = timer.ElapsedSeconds();

  condensa::FailPoint::Disarm("query.execute");
  (*server)->Stop();
  serving.join();

  ServeMeasurement m;
  m.ops = static_cast<double>(ops.load());
  m.seconds = seconds;
  m.sheds = static_cast<double>(sheds.load());
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  std::string preset = "smoke";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--preset=", 9) == 0) {
      preset = argv[i] + 9;
    } else {
      std::fprintf(stderr, "usage: %s [--preset=smoke|full]\n", argv[0]);
      return 1;
    }
  }
  const bool full = preset == "full";
  if (!full && preset != "smoke") {
    std::fprintf(stderr, "unknown preset '%s'\n", preset.c_str());
    return 1;
  }

  const std::size_t dim = 10;
  const std::size_t k = 10;
  const std::size_t query_points = full ? 512 : 256;
  const std::size_t aggregate_repeats = full ? 200 : 100;
  const std::size_t regenerate_rounds = 25;
  const std::vector<std::size_t> group_counts =
      full ? std::vector<std::size_t>{512, 4096, 16384}
           : std::vector<std::size_t>{64, 512};

  condensa::bench::BenchReporter reporter("query_scale");
  reporter.AddScalar("full_preset", full ? 1.0 : 0.0);
  reporter.AddScalar("dim", static_cast<double>(dim));
  reporter.AddScalar("k", static_cast<double>(k));
  reporter.SetRowSchema(
      {"workload", "groups", "ops", "seconds", "ops_per_sec"});

  double worst_hit_ratio = 1.0;
  for (std::size_t groups : group_counts) {
    Rng rng(9'000 + groups);
    QuerySnapshot snapshot;
    snapshot.dim = dim;
    // Two labeled pools so classify has classes to separate.
    snapshot.pools.push_back(
        {0, MakePool(groups / 2, dim, k, -4.0, rng)});
    snapshot.pools.push_back(
        {1, MakePool(groups - groups / 2, dim, k, 4.0, rng)});

    // The cache must hold the full working set for the steady-state
    // measurement; sizing it to the group count is the intended
    // deployment shape (docs/query.md).
    QueryEngineOptions options;
    options.eigen_cache_capacity = groups;
    QueryEngine engine(options);
    const double dgroups = static_cast<double>(groups);

    // --- kNN classification against group centroids ---
    Query classify;
    classify.kind = QueryKind::kClassify;
    classify.classify.points = MakeQueryPoints(query_points, dim, rng);
    classify.classify.neighbors = 3;
    condensa::obs::Timer classify_timer;
    QueryResult classified = MustExecute(engine, snapshot, classify);
    const double classify_seconds = classify_timer.ElapsedSeconds();
    CONDENSA_CHECK_EQ(classified.classify.labels.size(), query_points);
    const double dpoints = static_cast<double>(query_points);
    reporter.AddRow({kClassifyWorkload, dgroups, dpoints, classify_seconds,
                     dpoints / classify_seconds});
    std::printf("classify groups=%zu: %zu points in %.4fs (%.0f pts/s)\n",
                groups, query_points, classify_seconds,
                dpoints / classify_seconds);

    // --- aggregates from the additive moments ---
    Query aggregate;
    aggregate.kind = QueryKind::kAggregate;
    // A half-space box: selects roughly the label-0 pool.
    aggregate.aggregate.range.bounds.push_back({0, -100.0, 0.0});
    condensa::obs::Timer aggregate_timer;
    std::uint64_t matched = 0;
    for (std::size_t r = 0; r < aggregate_repeats; ++r) {
      QueryResult result = MustExecute(engine, snapshot, aggregate);
      matched += result.aggregate.groups_matched;
    }
    const double aggregate_seconds = aggregate_timer.ElapsedSeconds();
    CONDENSA_CHECK_GT(matched, 0u);
    const double dreps = static_cast<double>(aggregate_repeats);
    reporter.AddRow({kAggregateWorkload, dgroups, dreps, aggregate_seconds,
                     dreps / aggregate_seconds});
    std::printf(
        "aggregate groups=%zu: %zu queries in %.4fs (%.0f queries/s)\n",
        groups, aggregate_repeats, aggregate_seconds,
        dreps / aggregate_seconds);

    // --- regenerate: eigendecomposition cache steady state ---
    // Round 1 faults every group's factorization in; the remaining
    // rounds must hit. Nothing mutates the snapshot, so misses after
    // round 1 would mean spurious version churn.
    Query regenerate;
    regenerate.kind = QueryKind::kRegenerate;
    regenerate.regenerate.seed = 4242;
    regenerate.regenerate.records_per_group = 1;
    condensa::obs::Timer regen_timer;
    for (std::size_t round = 0; round < regenerate_rounds; ++round) {
      QueryResult result = MustExecute(engine, snapshot, regenerate);
      CONDENSA_CHECK_EQ(result.regenerate.groups_matched, groups);
    }
    const double regen_seconds = regen_timer.ElapsedSeconds();
    const double drounds = static_cast<double>(regenerate_rounds);
    reporter.AddRow({kRegenerateWorkload, dgroups, drounds, regen_seconds,
                     drounds / regen_seconds});

    const condensa::query::EigenCacheStats stats =
        engine.eigen_cache().stats();
    const double hit_ratio = stats.HitRatio();
    if (hit_ratio < worst_hit_ratio) worst_hit_ratio = hit_ratio;
    reporter.AddScalar("cache_hit_ratio_g" + std::to_string(groups),
                       hit_ratio);
    std::printf(
        "regenerate groups=%zu: %zu rounds in %.4fs — cache %llu hits / "
        "%llu misses (ratio %.4f)\n",
        groups, regenerate_rounds, regen_seconds,
        static_cast<unsigned long long>(stats.hits),
        static_cast<unsigned long long>(stats.misses), hit_ratio);
  }

  reporter.AddScalar("cache_hit_ratio_worst", worst_hit_ratio);

  // --- served read path: concurrent sessions over TCP ---
  // 1 vs 8 sessions against one server, with a fixed injected
  // per-request latency; the pool must hide the waits. A third cell
  // drops the in-flight cap below the offered load so the shed
  // accounting (kUnavailable, reason=overload) shows up as a rate.
  {
    Rng rng(17'000);
    QuerySnapshot snapshot;
    snapshot.dim = dim;
    snapshot.pools.push_back({0, MakePool(32, dim, k, -4.0, rng)});
    snapshot.pools.push_back({1, MakePool(32, dim, k, 4.0, rng)});
    const double duration = full ? 3.0 : 1.0;
    const double latency_ms = 5.0;

    const ServeMeasurement serial =
        MeasureServe(snapshot, 1, 16, duration, latency_ms);
    const ServeMeasurement pooled =
        MeasureServe(snapshot, 8, 16, duration, latency_ms);
    const ServeMeasurement overload =
        MeasureServe(snapshot, 8, 2, duration, latency_ms);

    for (const auto& [sessions, m] :
         {std::pair<double, const ServeMeasurement&>{1.0, serial},
          {8.0, pooled}}) {
      reporter.AddRow({kServeWorkload, sessions, m.ops, m.seconds,
                       m.OpsPerSec()});
      std::printf(
          "serve sessions=%.0f: %.0f ops in %.4fs (%.0f ops/s, shed "
          "rate %.4f)\n",
          sessions, m.ops, m.seconds, m.OpsPerSec(), m.ShedRate());
    }
    const double speedup = pooled.OpsPerSec() / serial.OpsPerSec();
    reporter.AddScalar("serve_speedup_8_sessions", speedup);
    reporter.AddScalar("serve_shed_rate", pooled.ShedRate());
    reporter.AddScalar("serve_shed_rate_overload", overload.ShedRate());
    std::printf(
        "serve speedup 8 vs 1 sessions: %.2fx; overload shed rate "
        "%.4f\n",
        speedup, overload.ShedRate());
    if (speedup < 3.0) {
      std::fprintf(stderr,
                   "FAIL: 8-session serve throughput only %.2fx the "
                   "serial baseline (< 3x)\n",
                   speedup);
      reporter.Finish();
      return 1;
    }
  }

  const bool wrote = reporter.Finish();
  if (worst_hit_ratio <= 0.9) {
    std::fprintf(stderr,
                 "FAIL: steady-state cache hit ratio %.4f <= 0.9\n",
                 worst_hit_ratio);
    return 1;
  }
  return wrote ? 0 : 1;
}
