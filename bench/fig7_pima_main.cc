// Reproduces paper Figure 7: classifier accuracy (a) and covariance
// compatibility (b) on the Pima Indian profile.

#include "bench/figure_common.h"

int main(int argc, char** argv) {
  condensa::bench::FigureConfig config;
  config.profile = "pima";
  config.bench_name = "fig7_pima";
  config.title = "Figure 7 - Pima Indian (768 x 8, 2 classes)";
  config.group_sizes = {1, 2, 5, 10, 15, 20, 25, 30, 40, 50, 75, 100};
  return condensa::bench::FigureBenchMain(config, argc, argv);
}
