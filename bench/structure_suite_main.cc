// Structure-analysis suite: second-order analyses on raw vs condensed data.
//
// Complements the classifier suite: these analyses consume covariance
// structure directly, which is exactly what condensation claims to
// preserve (and what per-dimension perturbation and centroid-collapsing
// k-anonymity lose):
//   * PCA      — principal-subspace affinity between raw and release fits,
//   * OLS      — linear-regression coefficient drift on a regression task,
//   * DBSCAN   — density-cluster agreement (ARI) on the raw records.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_report.h"
#include "common/check.h"
#include "common/random.h"
#include "core/engine.h"
#include "index/kdtree.h"
#include "datagen/profiles.h"
#include "linalg/pca.h"
#include "metrics/clustering.h"
#include "mining/dbscan.h"
#include "mining/linear_regression.h"

using condensa::Rng;
using condensa::linalg::Vector;

int main() {
  condensa::bench::BenchReporter reporter("structure_suite");
  std::printf("=== Structure suite: second-order analyses on raw vs "
              "condensed data ===\n\n");

  // --- PCA subspace preservation (Ionosphere profile) -------------------
  {
    Rng rng(42);
    condensa::data::Dataset dataset = condensa::datagen::MakeIonosphere(rng);
    auto raw_pca = condensa::linalg::ComputePca(dataset.records());
    CONDENSA_CHECK(raw_pca.ok());

    std::printf("--- PCA: leading-subspace affinity, raw vs release "
                "(Ionosphere, 34 dims) ---\n");
    std::printf("%6s %14s %14s %14s\n", "k", "top-1", "top-3", "top-5");
    for (std::size_t k : {5u, 15u, 30u, 60u}) {
      condensa::core::CondensationEngine engine({.group_size = k});
      auto release = engine.Anonymize(dataset, rng);
      CONDENSA_CHECK(release.ok());
      auto release_pca =
          condensa::linalg::ComputePca(release->anonymized.records());
      CONDENSA_CHECK(release_pca.ok());
      double affinity[3];
      std::size_t idx = 0;
      for (std::size_t count : {1u, 3u, 5u}) {
        auto a = condensa::linalg::PrincipalSubspaceAffinity(
            *raw_pca, *release_pca, count);
        CONDENSA_CHECK(a.ok());
        affinity[idx++] = *a;
      }
      std::printf("%6zu %14.4f %14.4f %14.4f\n", k, affinity[0], affinity[1],
                  affinity[2]);
    }
  }

  // --- Linear regression coefficient drift (Abalone profile) ------------
  {
    Rng rng(43);
    condensa::datagen::ProfileOptions options;
    options.size_factor = 0.5;
    condensa::data::Dataset dataset =
        condensa::datagen::MakeAbalone(rng, options);
    // Abalone's features are near-collinear by construction, so raw OLS
    // coefficients are ill-conditioned; a modest ridge stabilizes the
    // comparison, and prediction drift is the conditioning-free measure.
    constexpr double kRidge = 0.1;
    condensa::mining::LinearRegressor raw_model({.ridge = kRidge});
    CONDENSA_CHECK(raw_model.Fit(dataset).ok());

    std::printf("\n--- ridge regression: model drift vs raw fit (Abalone, "
                "ridge %.1f) ---\n", kRidge);
    std::printf("%6s %20s %18s %20s\n", "k", "max |w - w_raw|",
                "|b - b_raw|", "prediction RMS diff");
    for (std::size_t k : {5u, 15u, 30u, 60u}) {
      condensa::core::CondensationEngine engine({.group_size = k});
      auto release = engine.Anonymize(dataset, rng);
      CONDENSA_CHECK(release.ok());
      condensa::mining::LinearRegressor release_model({.ridge = kRidge});
      CONDENSA_CHECK(release_model.Fit(release->anonymized).ok());
      double weight_drift = 0.0;
      for (std::size_t j = 0; j < dataset.dim(); ++j) {
        weight_drift = std::max(
            weight_drift, std::abs(release_model.weights()[j] -
                                   raw_model.weights()[j]));
      }
      double prediction_drift = 0.0;
      for (std::size_t i = 0; i < dataset.size(); ++i) {
        double diff = release_model.Predict(dataset.record(i)) -
                      raw_model.Predict(dataset.record(i));
        prediction_drift += diff * diff;
      }
      prediction_drift =
          std::sqrt(prediction_drift / static_cast<double>(dataset.size()));
      std::printf("%6zu %20.4f %18.4f %20.4f\n", k, weight_drift,
                  std::abs(release_model.intercept() -
                           raw_model.intercept()),
                  prediction_drift);
    }
  }

  // --- DBSCAN density-cluster agreement (two blobs + noise) -------------
  {
    Rng rng(44);
    std::vector<Vector> points;
    for (int i = 0; i < 250; ++i) {
      points.push_back(Vector{rng.Gaussian(0.0, 0.4),
                              rng.Gaussian(0.0, 0.4)});
      points.push_back(Vector{rng.Gaussian(6.0, 0.4),
                              rng.Gaussian(6.0, 0.4)});
    }
    for (int i = 0; i < 40; ++i) {
      points.push_back(Vector{rng.Uniform(-4.0, 10.0),
                              rng.Uniform(-4.0, 10.0)});
    }
    condensa::mining::DbscanOptions dbscan_options{.epsilon = 0.5,
                                                   .min_points = 5};
    auto raw_clusters = condensa::mining::Dbscan(points, dbscan_options);
    CONDENSA_CHECK(raw_clusters.ok());

    std::printf("\n--- DBSCAN: clusters found on release and labeling "
                "agreement on raw records ---\n");
    std::printf("%6s %10s %12s %12s\n", "k", "clusters", "noise_pts", "ari");
    for (std::size_t k : {5u, 10u, 20u, 40u}) {
      condensa::data::Dataset unlabeled(2);
      for (const Vector& p : points) unlabeled.Add(p);
      condensa::core::CondensationEngine engine({.group_size = k});
      auto release = engine.Anonymize(unlabeled, rng);
      CONDENSA_CHECK(release.ok());
      auto release_clusters = condensa::mining::Dbscan(
          release->anonymized.records(), dbscan_options);
      CONDENSA_CHECK(release_clusters.ok());

      // Label raw records by nearest release record's cluster and
      // compare against the raw clustering (noise mapped to its own id).
      auto tree =
          condensa::index::KdTree::Build(release->anonymized.records());
      CONDENSA_CHECK(tree.ok());
      std::vector<std::size_t> raw_labels, transfer_labels;
      for (std::size_t i = 0; i < points.size(); ++i) {
        std::size_t raw = raw_clusters->assignments[i];
        std::size_t transferred =
            release_clusters->assignments[tree->Nearest(points[i])];
        constexpr std::size_t kNoiseBucket = 1'000'000;
        raw_labels.push_back(
            raw == condensa::mining::DbscanResult::kNoise ? kNoiseBucket
                                                          : raw);
        transfer_labels.push_back(
            transferred == condensa::mining::DbscanResult::kNoise
                ? kNoiseBucket
                : transferred);
      }
      auto ari =
          condensa::metrics::AdjustedRandIndex(raw_labels, transfer_labels);
      CONDENSA_CHECK(ari.ok());
      std::printf("%6zu %10zu %12zu %12.4f\n", k,
                  release_clusters->num_clusters,
                  release_clusters->NoiseCount(), *ari);
    }
  }

  std::printf(
      "\nExpected shape: PCA affinity near 1 for the leading subspaces;\n"
      "regression *predictions* from the release-fitted model within a\n"
      "small fraction of a year of the raw fit (coefficients themselves\n"
      "swing more because Abalone's features are near-collinear); DBSCAN\n"
      "finding the same two dense clusters on the release (high ARI).\n\n");
  return reporter.Finish() ? 0 : 1;
}
