// Ablation A2: quality of the uniform-split approximation (paper Fig. 3).
//
// SplitGroupStatistics assumes the group is uniformly distributed along
// its leading eigenvector. This bench builds 2k-sized groups from known
// distributions (uniform, Gaussian, bimodal), performs the statistics-only
// split, and compares the predicted child moments against the *actual*
// halves obtained by cutting the raw points at the centroid hyperplane —
// the ground truth the statistics-only server can't see.

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_report.h"
#include "common/check.h"
#include "common/random.h"
#include "core/group_statistics.h"
#include "core/split.h"
#include "linalg/eigen.h"
#include "linalg/stats.h"

using condensa::Rng;
using condensa::core::GroupStatistics;
using condensa::linalg::Vector;

namespace {

// Draws a 2-d point cloud of the named shape, elongated along x.
std::vector<Vector> MakeCloud(const std::string& shape, std::size_t n,
                              Rng& rng) {
  std::vector<Vector> points;
  points.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    double x = 0.0;
    if (shape == "uniform") {
      x = rng.Uniform(-5.0, 5.0);
    } else if (shape == "gaussian") {
      x = rng.Gaussian(0.0, 3.0);
    } else if (shape == "bimodal") {
      x = rng.Gaussian(rng.Bernoulli(0.5) ? -4.0 : 4.0, 1.0);
    }
    points.push_back(Vector{x, rng.Gaussian(0.0, 0.4)});
  }
  return points;
}

struct Drift {
  double centroid = 0.0;   // ‖predicted − actual child centroid‖
  double variance = 0.0;   // relative error of leading child variance
};

Drift MeasureSplitDrift(const std::vector<Vector>& points) {
  GroupStatistics group(2);
  for (const Vector& p : points) group.Add(p);

  auto split = condensa::core::SplitGroupStatistics(group);
  CONDENSA_CHECK(split.ok());

  // Ground truth: cut the raw points at the centroid along e1.
  auto eigen =
      condensa::linalg::CovarianceEigenDecomposition(group.Covariance());
  CONDENSA_CHECK(eigen.ok());
  Vector e1 = eigen->Eigenvector(0);
  Vector centroid = group.Centroid();
  std::vector<Vector> lower, upper;
  for (const Vector& p : points) {
    (condensa::linalg::Dot(p - centroid, e1) < 0.0 ? lower : upper)
        .push_back(p);
  }
  CONDENSA_CHECK(!lower.empty());
  CONDENSA_CHECK(!upper.empty());

  Vector actual_lower_mean = condensa::linalg::MeanVector(lower);
  Vector actual_upper_mean = condensa::linalg::MeanVector(upper);
  double actual_var_lower =
      condensa::linalg::CovarianceEigenDecomposition(
          condensa::linalg::CovarianceMatrix(lower))
          ->eigenvalues[0];

  Drift drift;
  drift.centroid = 0.5 * (condensa::linalg::Distance(
                              split->lower.Centroid(), actual_lower_mean) +
                          condensa::linalg::Distance(
                              split->upper.Centroid(), actual_upper_mean));
  double predicted_var =
      condensa::linalg::CovarianceEigenDecomposition(
          split->lower.Covariance())
          ->eigenvalues[0];
  drift.variance =
      std::abs(predicted_var - actual_var_lower) /
      std::max(actual_var_lower, 1e-12);
  return drift;
}

}  // namespace

int main() {
  condensa::bench::BenchReporter reporter("ablation_split");
  std::printf("=== Ablation A2: uniform-split approximation quality ===\n");
  std::printf("(statistics-only split vs actual hyperplane split; lower is "
              "better)\n\n");
  std::printf("%10s %8s %18s %20s\n", "shape", "2k", "centroid_drift",
              "leading_var_rel_err");

  Rng rng(7);
  for (const char* shape : {"uniform", "gaussian", "bimodal"}) {
    for (std::size_t n : {10u, 40u, 160u, 640u}) {
      Drift total;
      constexpr int kTrials = 20;
      for (int trial = 0; trial < kTrials; ++trial) {
        Drift drift = MeasureSplitDrift(MakeCloud(shape, n, rng));
        total.centroid += drift.centroid;
        total.variance += drift.variance;
      }
      std::printf("%10s %8zu %18.4f %20.4f\n", shape, n,
                  total.centroid / kTrials, total.variance / kTrials);
    }
  }
  std::printf(
      "\nExpected shape: drift is smallest when the group really is\n"
      "uniform, moderate for Gaussian groups, largest for bimodal ones;\n"
      "within a shape the drift stabilizes as the group grows (the paper's\n"
      "argument that tiny groups make the approximation noisy).\n\n");
  return reporter.Finish() ? 0 : 1;
}
