// Fabric scale bench: networked ingest through forked worker processes
// versus the in-process sharded service, at matched (seed, shard count).
//
// The fabric's contract is that distribution is free of statistical
// cost: the gather merge is exact and the seed/routing mirroring makes
// the release BIT-IDENTICAL to the single-process run. This bench pins
// that equivalence on every cell and measures what the wire actually
// costs — framing, CRC, a synchronous ack per batch — as the ratio of
// fabric ingest time to in-process ingest time.
//
// Presets:
//   --preset=smoke   n = 6k, workers {1, 2}; the CI perf-smoke job runs
//                    this one.
//   --preset=full    n = 50k, d = 8, k = 10, workers {1, 2, 4, 8}.
//
// Emits BENCH_fabric_scale.json with one row per worker count and a
// bit_identical scalar (1.0 = every cell matched byte for byte).

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/bench_report.h"
#include "common/check.h"
#include "common/random.h"
#include "core/serialization.h"
#include "linalg/vector.h"
#include "obs/timing.h"
#include "shard/fabric.h"
#include "shard/stream_service.h"
#include "shard/worker_process.h"

namespace {

using condensa::Rng;
using condensa::linalg::Vector;
using condensa::shard::FabricConfig;
using condensa::shard::FabricService;
using condensa::shard::ShardedStreamConfig;
using condensa::shard::ShardedStreamService;
using condensa::shard::WorkerProcess;
using condensa::shard::WorkerServerConfig;

std::vector<Vector> MakeStream(std::size_t n, std::size_t dim,
                               std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Vector> stream;
  stream.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Vector record(dim);
    for (std::size_t j = 0; j < dim; ++j) {
      record[j] = rng.Gaussian(i % 2 == 0 ? -3.0 : 3.0, 1.0);
    }
    stream.push_back(std::move(record));
  }
  return stream;
}

struct CellTimes {
  double in_process_seconds = 0.0;
  double fabric_seconds = 0.0;
  bool bit_identical = false;
};

CellTimes RunCell(const std::vector<Vector>& stream, std::size_t workers,
                  std::size_t dim, std::size_t k, const std::string& root) {
  CellTimes cell;
  std::error_code cleanup_error;

  // In-process reference (also the bit-identity oracle).
  std::string reference_release;
  {
    const std::string inproc_root = root + "/inproc";
    std::filesystem::remove_all(inproc_root, cleanup_error);
    ShardedStreamConfig config;
    config.num_shards = workers;
    config.dim = dim;
    config.group_size = k;
    config.checkpoint_root = inproc_root;
    config.sync_every_append = false;
    config.snapshot_interval = 1u << 30;
    config.seed = 4242;
    condensa::obs::Timer timer;
    auto service = ShardedStreamService::Start(config);
    CONDENSA_CHECK(service.ok());
    for (const Vector& record : stream) {
      CONDENSA_CHECK((*service)->Submit(record).ok());
    }
    auto result = (*service)->Finish();
    cell.in_process_seconds = timer.ElapsedSeconds();
    CONDENSA_CHECK(result.ok());
    CONDENSA_CHECK(result->Balanced());
    reference_release = condensa::core::SerializeGroupSet(result->groups);
    std::filesystem::remove_all(inproc_root, cleanup_error);
  }

  // Fabric run over forked worker processes on loopback.
  {
    std::vector<WorkerProcess> processes;
    FabricConfig config;
    config.dim = dim;
    config.group_size = k;
    config.seed = 4242;
    config.sync_every_append = false;
    config.snapshot_interval = 1u << 30;
    config.wire_batch = 64;
    for (std::size_t i = 0; i < workers; ++i) {
      const std::string worker_root =
          root + "/worker-" + std::to_string(i);
      std::filesystem::remove_all(worker_root, cleanup_error);
      WorkerServerConfig server;
      server.checkpoint_root = worker_root;
      auto spawned = WorkerProcess::Spawn(std::move(server));
      CONDENSA_CHECK(spawned.ok());
      processes.push_back(*std::move(spawned));
      config.workers.push_back({"127.0.0.1", processes.back().port()});
    }

    condensa::obs::Timer timer;
    auto fabric = FabricService::Start(config);
    CONDENSA_CHECK(fabric.ok());
    for (const Vector& record : stream) {
      CONDENSA_CHECK((*fabric)->Submit(record).ok());
    }
    auto result = (*fabric)->Finish();
    cell.fabric_seconds = timer.ElapsedSeconds();
    CONDENSA_CHECK(result.ok());
    CONDENSA_CHECK(result->Balanced());
    cell.bit_identical =
        condensa::core::SerializeGroupSet(result->groups) ==
        reference_release;
    for (std::size_t i = 0; i < workers; ++i) {
      std::filesystem::remove_all(root + "/worker-" + std::to_string(i),
                                  cleanup_error);
    }
  }
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  std::string preset = "smoke";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--preset=", 9) == 0) {
      preset = argv[i] + 9;
    } else {
      std::fprintf(stderr, "usage: %s [--preset=smoke|full]\n", argv[0]);
      return 1;
    }
  }
  const bool full = preset == "full";
  if (!full && preset != "smoke") {
    std::fprintf(stderr, "unknown preset '%s'\n", preset.c_str());
    return 1;
  }

  const std::size_t n = full ? 50'000 : 6'000;
  const std::size_t dim = 8;
  const std::size_t k = 10;
  const std::vector<std::size_t> worker_counts =
      full ? std::vector<std::size_t>{1, 2, 4, 8}
           : std::vector<std::size_t>{1, 2};
  const std::string root =
      (std::filesystem::temp_directory_path() / "condensa_fabric_scale")
          .string();

  const std::vector<Vector> stream = MakeStream(n, dim, 2026);

  condensa::bench::BenchReporter reporter("fabric_scale");
  reporter.AddScalar("full_preset", full ? 1.0 : 0.0);
  reporter.AddScalar("n", static_cast<double>(n));
  reporter.AddScalar("dim", static_cast<double>(dim));
  reporter.AddScalar("k", static_cast<double>(k));
  reporter.SetRowSchema({"workers", "n", "fabric_seconds",
                         "in_process_seconds", "wire_overhead_ratio",
                         "records_per_sec", "bit_identical"});

  bool all_identical = true;
  std::printf("%8s %12s %12s %10s %8s\n", "workers", "fabric_s", "inproc_s",
              "overhead", "bitid");
  for (std::size_t workers : worker_counts) {
    CellTimes cell = RunCell(stream, workers, dim, k, root);
    all_identical = all_identical && cell.bit_identical;
    const double overhead =
        cell.in_process_seconds > 0.0
            ? cell.fabric_seconds / cell.in_process_seconds
            : 0.0;
    std::printf("%8zu %12.3f %12.3f %10.2f %8s\n", workers,
                cell.fabric_seconds, cell.in_process_seconds, overhead,
                cell.bit_identical ? "yes" : "NO");
    reporter.AddRow({static_cast<double>(workers), static_cast<double>(n),
                     cell.fabric_seconds, cell.in_process_seconds, overhead,
                     static_cast<double>(n) / cell.fabric_seconds,
                     cell.bit_identical ? 1.0 : 0.0});
  }
  reporter.AddScalar("bit_identical", all_identical ? 1.0 : 0.0);

  if (!reporter.Finish()) return 1;
  if (!all_identical) {
    std::fprintf(stderr,
                 "FAIL: fabric release diverged from the in-process "
                 "release on at least one cell\n");
    return 1;
  }
  return 0;
}
