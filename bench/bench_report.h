// Machine-readable bench output.
//
// Every bench binary writes a BENCH_<name>.json file next to its stdout
// report so sweeps can be diffed and plotted without scraping text. The
// file carries the bench's own scalars and sweep rows plus a full
// obs::DefaultRegistry() dump, so subsystem counters (kd-tree visits,
// eigensolver sweeps, checkpoint bytes, ...) ride along with every run.
//
// Output directory: $CONDENSA_BENCH_OUT_DIR when set, else the working
// directory. See docs/observability.md for the schema.

#ifndef CONDENSA_BENCH_BENCH_REPORT_H_
#define CONDENSA_BENCH_BENCH_REPORT_H_

#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "obs/timing.h"

namespace condensa::bench {

struct BenchReport {
  // Bench identifier; the file is named BENCH_<name>.json.
  std::string name;
  double elapsed_seconds = 0.0;
  // Named summary values, e.g. {"trials", 3}.
  std::vector<std::pair<std::string, double>> scalars;
  // Optional sweep table: column names plus one vector per row. Rows
  // must match the schema width.
  std::vector<std::string> row_schema;
  std::vector<std::vector<double>> rows;
};

// Serializes the report (including the default-registry metrics dump)
// and writes it atomically. Returns the path written.
StatusOr<std::string> WriteBenchReport(const BenchReport& report);

// Convenience wrapper: starts timing at construction, stamps
// elapsed_seconds and writes the file in Finish().
class BenchReporter {
 public:
  explicit BenchReporter(std::string name);

  void AddScalar(std::string key, double value);
  void SetRowSchema(std::vector<std::string> columns);
  void AddRow(std::vector<double> row);

  // Writes BENCH_<name>.json. Prints the destination (or the error) to
  // stderr; returns false if the write failed.
  bool Finish();

 private:
  BenchReport report_;
  obs::Timer timer_;
};

}  // namespace condensa::bench

#endif  // CONDENSA_BENCH_BENCH_REPORT_H_
