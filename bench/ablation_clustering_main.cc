// Ablation A6: cluster-structure preservation (the paper's "other data
// mining problems" direction, Section 4).
//
// k-means is run on the original data and on the anonymized release; both
// models then label the *original* records, and the two labelings are
// compared with the adjusted Rand index. High ARI means an analyst
// clustering the release recovers the same structure the raw data holds.

#include <cstdio>
#include <vector>

#include "bench/bench_report.h"
#include "common/check.h"
#include "common/random.h"
#include "core/engine.h"
#include "datagen/profiles.h"
#include "metrics/clustering.h"
#include "mining/kmeans.h"

using condensa::Rng;
using condensa::linalg::Vector;

namespace {

// Labels `points` by nearest centroid of a fitted k-means model.
std::vector<std::size_t> AssignAll(
    const std::vector<Vector>& centroids,
    const std::vector<Vector>& points) {
  std::vector<std::size_t> labels;
  labels.reserve(points.size());
  for (const Vector& p : points) {
    std::size_t best = 0;
    double best_distance = condensa::linalg::SquaredDistance(p, centroids[0]);
    for (std::size_t c = 1; c < centroids.size(); ++c) {
      double distance = condensa::linalg::SquaredDistance(p, centroids[c]);
      if (distance < best_distance) {
        best_distance = distance;
        best = c;
      }
    }
    labels.push_back(best);
  }
  return labels;
}

}  // namespace

int main() {
  condensa::bench::BenchReporter reporter("ablation_clustering");
  // Well-clustered synthetic workload: 4 Gaussian blobs.
  Rng data_rng(42);
  condensa::data::Dataset dataset =
      condensa::datagen::MakeGaussianBlobs(4, 150, 5, 9.0, data_rng);
  const std::vector<Vector>& points = dataset.records();

  condensa::mining::KMeansOptions kmeans_options;
  kmeans_options.num_clusters = 4;

  std::printf("=== Ablation A6: k-means structure preservation "
              "(4 blobs x 150, d=5) ===\n");

  // Self-agreement baseline: two independent k-means runs on the raw
  // data. ARI(release, raw) at this level means condensation added no
  // structural error beyond k-means' own init randomness.
  {
    double self_ari = 0.0;
    constexpr int kBaselineTrials = 5;
    for (int trial = 0; trial < kBaselineTrials; ++trial) {
      Rng rng_a(500 + trial), rng_b(900 + trial);
      auto model_a = condensa::mining::KMeans(points, kmeans_options, rng_a);
      auto model_b = condensa::mining::KMeans(points, kmeans_options, rng_b);
      CONDENSA_CHECK(model_a.ok());
      CONDENSA_CHECK(model_b.ok());
      auto ari = condensa::metrics::AdjustedRandIndex(
          AssignAll(model_a->centroids, points),
          AssignAll(model_b->centroids, points));
      CONDENSA_CHECK(ari.ok());
      self_ari += *ari;
    }
    std::printf("raw-vs-raw self-agreement ARI (init noise floor): %.4f\n\n",
                self_ari / kBaselineTrials);
  }

  std::printf("%6s %12s %12s\n", "k", "ari", "purity_vs_truth");

  for (std::size_t k : {2u, 5u, 10u, 20u, 40u, 80u, 150u}) {
    double ari_total = 0.0, purity_total = 0.0;
    constexpr int kTrials = 5;
    for (int trial = 0; trial < kTrials; ++trial) {
      Rng rng(100 + trial);
      // Cluster the raw data.
      auto original_model =
          condensa::mining::KMeans(points, kmeans_options, rng);
      CONDENSA_CHECK(original_model.ok());

      // Anonymize (ignoring labels: cluster discovery is unsupervised).
      condensa::data::Dataset unlabeled(dataset.dim());
      for (const Vector& p : points) unlabeled.Add(p);
      condensa::core::CondensationEngine engine({.group_size = k});
      auto release = engine.Anonymize(unlabeled, rng);
      CONDENSA_CHECK(release.ok());

      // Cluster the release, then label the original records with both
      // models and compare.
      auto release_model = condensa::mining::KMeans(
          release->anonymized.records(), kmeans_options, rng);
      CONDENSA_CHECK(release_model.ok());

      std::vector<std::size_t> from_original =
          AssignAll(original_model->centroids, points);
      std::vector<std::size_t> from_release =
          AssignAll(release_model->centroids, points);
      auto ari =
          condensa::metrics::AdjustedRandIndex(from_original, from_release);
      CONDENSA_CHECK(ari.ok());
      ari_total += *ari;

      auto purity =
          condensa::metrics::ClusterPurity(from_release, dataset.labels());
      CONDENSA_CHECK(purity.ok());
      purity_total += *purity;
    }
    std::printf("%6zu %12.4f %12.4f\n", k, ari_total / kTrials,
                purity_total / kTrials);
  }

  std::printf(
      "\nExpected shape: ARI tracks the raw-vs-raw self-agreement floor\n"
      "while groups remain small relative to the natural clusters, and\n"
      "erodes once k approaches the cluster size (150), where condensed\n"
      "groups start spanning cluster boundaries.\n\n");
  return reporter.Finish() ? 0 : 1;
}
