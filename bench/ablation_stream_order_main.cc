// Ablation A4: stream-order sensitivity of dynamic condensation (paper
// Section 3).
//
// DynamicGroupMaintenance assigns each arrival to the nearest existing
// centroid, so the group structure depends on arrival order. This bench
// streams the same dataset in three orders — shuffled (the i.i.d. stream
// the paper evaluates), sorted by the first attribute (maximally
// adversarial drift), and class-blocked (one class at a time) — and
// reports the resulting structure quality.

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <string>

#include "bench/bench_report.h"
#include "common/check.h"
#include "common/random.h"
#include "core/engine.h"
#include "data/split.h"
#include "data/transform.h"
#include "datagen/profiles.h"
#include "metrics/compatibility.h"
#include "mining/evaluation.h"
#include "mining/knn.h"

using condensa::Rng;
using condensa::data::Dataset;

namespace {

Dataset Reorder(const Dataset& dataset, const std::string& order, Rng& rng) {
  std::vector<std::size_t> indices(dataset.size());
  std::iota(indices.begin(), indices.end(), 0);
  if (order == "shuffled") {
    rng.Shuffle(indices);
  } else if (order == "sorted") {
    std::sort(indices.begin(), indices.end(),
              [&dataset](std::size_t a, std::size_t b) {
                return dataset.record(a)[0] < dataset.record(b)[0];
              });
  } else if (order == "class-blocked") {
    std::stable_sort(indices.begin(), indices.end(),
                     [&dataset](std::size_t a, std::size_t b) {
                       return dataset.label(a) < dataset.label(b);
                     });
  }
  return dataset.Select(indices);
}

}  // namespace

int main() {
  condensa::bench::BenchReporter reporter("ablation_stream_order");
  Rng data_rng(42);
  Dataset dataset = condensa::datagen::MakePima(data_rng);

  Rng rng(43);
  auto split = condensa::data::SplitTrainTest(dataset, 0.75, rng);
  CONDENSA_CHECK(split.ok());
  condensa::data::ZScoreScaler scaler;
  CONDENSA_CHECK(scaler.Fit(split->train).ok());
  Dataset train = scaler.TransformDataset(split->train);
  Dataset test = scaler.TransformDataset(split->test);

  std::printf("=== Ablation A4: dynamic condensation vs stream order "
              "(Pima, k = 20) ===\n\n");
  std::printf("%14s %10s %12s %16s\n", "order", "mu", "knn_acc",
              "achieved_k");

  for (const char* order_name : {"shuffled", "sorted", "class-blocked"}) {
    const std::string order(order_name);
    double mu_total = 0.0, accuracy_total = 0.0;
    std::size_t achieved_min = static_cast<std::size_t>(-1);
    constexpr int kTrials = 3;
    for (int trial = 0; trial < kTrials; ++trial) {
      Rng trial_rng(100 + trial);
      Dataset ordered = Reorder(train, order, trial_rng);
      // shuffle_stream=false so the engine preserves our arrival order.
      condensa::core::CondensationEngine engine(
          {.group_size = 20,
           .mode = condensa::core::CondensationMode::kDynamic,
           .bootstrap_fraction = 0.25,
           .shuffle_stream = false});
      auto result = engine.Anonymize(ordered, trial_rng);
      CONDENSA_CHECK(result.ok());

      auto mu = condensa::metrics::CovarianceCompatibility(
          train, result->anonymized);
      CONDENSA_CHECK(mu.ok());
      mu_total += *mu;

      condensa::mining::KnnClassifier knn({.k = 1});
      CONDENSA_CHECK(knn.Fit(result->anonymized).ok());
      auto accuracy = condensa::mining::EvaluateAccuracy(knn, test);
      CONDENSA_CHECK(accuracy.ok());
      accuracy_total += *accuracy;
      achieved_min = std::min(achieved_min,
                              result->AchievedIndistinguishability());
    }
    std::printf("%14s %10.4f %12.4f %16zu\n", order.c_str(),
                mu_total / kTrials, accuracy_total / kTrials, achieved_min);
  }

  std::printf(
      "\nExpected shape: shuffled streams behave like the paper's i.i.d.\n"
      "setting; sorted and class-blocked streams stress the\n"
      "nearest-centroid assignment, costing some mu/accuracy but never\n"
      "breaking the k-indistinguishability floor.\n\n");
  return reporter.Finish() ? 0 : 1;
}
