// Reproduces paper Figure 5: classifier accuracy (a) and covariance
// compatibility (b) on the Ionosphere profile as the average group size
// varies.

#include "bench/figure_common.h"

int main(int argc, char** argv) {
  condensa::bench::FigureConfig config;
  config.profile = "ionosphere";
  config.bench_name = "fig5_ionosphere";
  config.title = "Figure 5 - Ionosphere (351 x 34, 2 classes)";
  // 351 records: cap the sweep below the dataset size per class.
  config.group_sizes = {1, 2, 5, 10, 15, 20, 25, 30, 40, 50, 75};
  return condensa::bench::FigureBenchMain(config, argc, argv);
}
