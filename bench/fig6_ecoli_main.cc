// Reproduces paper Figure 6: classifier accuracy (a) and covariance
// compatibility (b) on the Ecoli profile (8 heavily imbalanced classes).

#include "bench/figure_common.h"

int main(int argc, char** argv) {
  condensa::bench::FigureConfig config;
  config.profile = "ecoli";
  config.bench_name = "fig6_ecoli";
  config.title = "Figure 6 - Ecoli (336 x 7, 8 classes)";
  // 336 records across 8 classes; the largest class holds ~143 records.
  config.group_sizes = {1, 2, 5, 10, 15, 20, 25, 30, 40, 50};
  return condensa::bench::FigureBenchMain(config, argc, argv);
}
