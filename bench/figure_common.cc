#include "bench/figure_common.h"

#include <cstdio>
#include <cstring>

#include "bench/bench_report.h"
#include "common/random.h"
#include "common/string_util.h"
#include "core/engine.h"
#include "data/split.h"
#include "data/transform.h"
#include "datagen/profiles.h"
#include "metrics/compatibility.h"
#include "mining/evaluation.h"
#include "mining/knn.h"
#include "obs/timing.h"

namespace condensa::bench {
namespace {

struct TrialOutcome {
  double accuracy_static = 0.0;
  double accuracy_dynamic = 0.0;
  double accuracy_original = 0.0;
  double mu_static = 0.0;
  double mu_dynamic = 0.0;
  double average_group_size = 0.0;
};

// Accuracy of a 1-NN model trained on `train`, scored on `test`.
StatusOr<double> Score(const data::Dataset& train, const data::Dataset& test,
                       bool regression, double tolerance) {
  if (regression) {
    mining::KnnRegressor regressor({.k = 1});
    CONDENSA_RETURN_IF_ERROR(regressor.Fit(train));
    return mining::EvaluateWithinTolerance(regressor, test, tolerance);
  }
  mining::KnnClassifier classifier({.k = 1});
  CONDENSA_RETURN_IF_ERROR(classifier.Fit(train));
  return mining::EvaluateAccuracy(classifier, test);
}

StatusOr<TrialOutcome> RunTrial(const FigureConfig& config, std::size_t k,
                                std::uint64_t trial_seed) {
  Rng rng(trial_seed);
  datagen::ProfileOptions profile_options;
  profile_options.size_factor = config.size_factor;
  CONDENSA_ASSIGN_OR_RETURN(
      data::Dataset dataset,
      datagen::MakeProfileByName(config.profile, rng, profile_options));

  CONDENSA_ASSIGN_OR_RETURN(data::TrainTestSplit split,
                            data::SplitTrainTest(dataset, 0.75, rng));
  data::ZScoreScaler scaler;
  CONDENSA_RETURN_IF_ERROR(scaler.Fit(split.train));
  data::Dataset train = scaler.TransformDataset(split.train);
  data::Dataset test = scaler.TransformDataset(split.test);

  TrialOutcome outcome;
  CONDENSA_ASSIGN_OR_RETURN(
      outcome.accuracy_original,
      Score(train, test, config.regression, config.tolerance));

  // Static condensation.
  core::CondensationEngine static_engine(
      {.group_size = k, .mode = core::CondensationMode::kStatic});
  CONDENSA_ASSIGN_OR_RETURN(core::AnonymizationResult static_result,
                            static_engine.Anonymize(train, rng));
  CONDENSA_ASSIGN_OR_RETURN(outcome.accuracy_static,
                            Score(static_result.anonymized, test,
                                  config.regression, config.tolerance));
  CONDENSA_ASSIGN_OR_RETURN(
      outcome.mu_static,
      metrics::CovarianceCompatibility(train, static_result.anonymized));
  outcome.average_group_size = static_result.AverageGroupSize();

  // Dynamic condensation: a small static prefix (the paper's initial
  // database D), then the remaining ~95% arrive as a shuffled stream.
  core::CondensationEngine dynamic_engine(
      {.group_size = k,
       .mode = core::CondensationMode::kDynamic,
       .bootstrap_fraction = 0.05});
  CONDENSA_ASSIGN_OR_RETURN(core::AnonymizationResult dynamic_result,
                            dynamic_engine.Anonymize(train, rng));
  CONDENSA_ASSIGN_OR_RETURN(outcome.accuracy_dynamic,
                            Score(dynamic_result.anonymized, test,
                                  config.regression, config.tolerance));
  CONDENSA_ASSIGN_OR_RETURN(
      outcome.mu_dynamic,
      metrics::CovarianceCompatibility(train, dynamic_result.anonymized));
  return outcome;
}

}  // namespace

StatusOr<std::vector<FigureRow>> RunFigureSweep(const FigureConfig& config) {
  std::vector<FigureRow> rows;
  for (std::size_t k : config.group_sizes) {
    FigureRow row;
    row.requested_k = k;
    for (std::size_t trial = 0; trial < config.trials; ++trial) {
      // Trial seeds are independent of k so every sweep point sees the
      // same data draws and the "original" series is the paper's flat
      // horizontal baseline.
      CONDENSA_ASSIGN_OR_RETURN(
          TrialOutcome outcome,
          RunTrial(config, k, config.seed + 7919 * trial));
      row.average_group_size += outcome.average_group_size;
      row.accuracy_static += outcome.accuracy_static;
      row.accuracy_dynamic += outcome.accuracy_dynamic;
      row.accuracy_original += outcome.accuracy_original;
      row.mu_static += outcome.mu_static;
      row.mu_dynamic += outcome.mu_dynamic;
    }
    const double t = static_cast<double>(config.trials);
    row.average_group_size /= t;
    row.accuracy_static /= t;
    row.accuracy_dynamic /= t;
    row.accuracy_original /= t;
    row.mu_static /= t;
    row.mu_dynamic /= t;
    rows.push_back(row);
  }
  return rows;
}

int FigureBenchMain(FigureConfig config, int argc, char** argv) {
  bool csv = false;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == "--csv") {
      csv = true;
    } else if (StartsWith(arg, "--trials=")) {
      int trials = 0;
      if (!ParseInt(arg.substr(strlen("--trials=")), &trials) || trials < 1) {
        std::fprintf(stderr, "bad --trials value\n");
        return 2;
      }
      config.trials = static_cast<std::size_t>(trials);
    } else if (StartsWith(arg, "--size-factor=")) {
      double factor = 0.0;
      if (!ParseDouble(arg.substr(strlen("--size-factor=")), &factor) ||
          factor <= 0.0) {
        std::fprintf(stderr, "bad --size-factor value\n");
        return 2;
      }
      config.size_factor = factor;
    } else if (StartsWith(arg, "--seed=")) {
      int seed = 0;
      if (!ParseInt(arg.substr(strlen("--seed=")), &seed)) {
        std::fprintf(stderr, "bad --seed value\n");
        return 2;
      }
      config.seed = static_cast<std::uint64_t>(seed);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--csv] [--trials=N] [--size-factor=X] "
                   "[--seed=N]\n",
                   argv[0]);
      return 2;
    }
  }

  BenchReporter reporter(config.bench_name.empty() ? config.profile
                                                   : config.bench_name);
  obs::Timer timer;
  StatusOr<std::vector<FigureRow>> sweep = RunFigureSweep(config);
  if (!sweep.ok()) {
    std::fprintf(stderr, "sweep failed: %s\n",
                 sweep.status().ToString().c_str());
    return 1;
  }
  const std::vector<FigureRow>& rows = *sweep;

  reporter.AddScalar("trials", static_cast<double>(config.trials));
  reporter.AddScalar("size_factor", config.size_factor);
  reporter.AddScalar("seed", static_cast<double>(config.seed));
  reporter.SetRowSchema({"k", "avg_group_size", "accuracy_static",
                         "accuracy_dynamic", "accuracy_original", "mu_static",
                         "mu_dynamic"});
  for (const FigureRow& row : rows) {
    reporter.AddRow({static_cast<double>(row.requested_k),
                     row.average_group_size, row.accuracy_static,
                     row.accuracy_dynamic, row.accuracy_original,
                     row.mu_static, row.mu_dynamic});
  }

  if (csv) {
    std::printf(
        "k,avg_group_size,accuracy_static,accuracy_dynamic,"
        "accuracy_original,mu_static,mu_dynamic\n");
    for (const FigureRow& row : rows) {
      std::printf("%zu,%.3f,%.4f,%.4f,%.4f,%.4f,%.4f\n", row.requested_k,
                  row.average_group_size, row.accuracy_static,
                  row.accuracy_dynamic, row.accuracy_original, row.mu_static,
                  row.mu_dynamic);
    }
    return reporter.Finish() ? 0 : 1;
  }

  const char* accuracy_label =
      config.regression ? "within-1-year accuracy" : "classification accuracy";
  std::printf("=== %s ===\n", config.title.c_str());
  std::printf("profile=%s  trials=%zu  size_factor=%.2f  seed=%llu\n\n",
              config.profile.c_str(), config.trials, config.size_factor,
              static_cast<unsigned long long>(config.seed));

  std::printf("--- panel (a): %s vs average group size ---\n",
              accuracy_label);
  std::printf("%6s %10s %10s %10s %10s\n", "k", "avg|G|", "static", "dynamic",
              "original");
  for (const FigureRow& row : rows) {
    std::printf("%6zu %10.2f %10.4f %10.4f %10.4f\n", row.requested_k,
                row.average_group_size, row.accuracy_static,
                row.accuracy_dynamic, row.accuracy_original);
  }

  std::printf(
      "\n--- panel (b): covariance compatibility coefficient (mu) ---\n");
  std::printf("%6s %10s %10s %10s\n", "k", "avg|G|", "static", "dynamic");
  for (const FigureRow& row : rows) {
    std::printf("%6zu %10.2f %10.4f %10.4f\n", row.requested_k,
                row.average_group_size, row.mu_static, row.mu_dynamic);
  }
  std::printf("\nelapsed: %.1fs\n\n", timer.ElapsedSeconds());
  return reporter.Finish() ? 0 : 1;
}

}  // namespace condensa::bench
