// Algorithm-suite bench: the paper's headline claim, quantified across
// FOUR different off-the-shelf algorithms.
//
// "Since the method re-generates multi-dimensional data records, existing
// data mining algorithms do not need to be modified" (paper Section 5).
// This bench trains 1-NN, 5-NN, Gaussian naive Bayes, an axis-parallel
// CART tree, and an oblique (multivariate) CART tree — all unchanged — on
// (a) the raw training data and (b) a k=25 condensation release, and
// reports both accuracies side by side. It also mines association rules
// from both datasets and reports rule-set overlap.

#include <algorithm>
#include <cstdio>
#include <set>
#include <string>

#include "bench/bench_report.h"
#include "common/check.h"
#include "common/random.h"
#include "core/engine.h"
#include "data/split.h"
#include "data/transform.h"
#include "datagen/profiles.h"
#include "mining/apriori.h"
#include "mining/decision_tree.h"
#include "mining/evaluation.h"
#include "mining/knn.h"
#include "mining/mixture_classifier.h"
#include "mining/naive_bayes.h"
#include "mining/nearest_centroid.h"

using condensa::Rng;

namespace {

double Accuracy(condensa::mining::Classifier& model,
                const condensa::data::Dataset& train,
                const condensa::data::Dataset& test) {
  CONDENSA_CHECK(model.Fit(train).ok());
  auto accuracy = condensa::mining::EvaluateAccuracy(model, test);
  CONDENSA_CHECK(accuracy.ok());
  return *accuracy;
}

// Canonical text form of a rule for set comparison.
std::string RuleKey(const condensa::mining::AssociationRule& rule) {
  std::string key;
  for (auto item : rule.antecedent) key += std::to_string(item) + ",";
  key += "=>";
  for (auto item : rule.consequent) key += std::to_string(item) + ",";
  return key;
}

}  // namespace

int main() {
  condensa::bench::BenchReporter reporter("algorithms_suite");
  Rng data_rng(42);
  condensa::data::Dataset dataset = condensa::datagen::MakePima(data_rng);

  Rng rng(43);
  auto split = condensa::data::SplitTrainTest(dataset, 0.75, rng);
  CONDENSA_CHECK(split.ok());
  condensa::data::ZScoreScaler scaler;
  CONDENSA_CHECK(scaler.Fit(split->train).ok());
  condensa::data::Dataset train = scaler.TransformDataset(split->train);
  condensa::data::Dataset test = scaler.TransformDataset(split->test);

  condensa::core::CondensationEngine engine({.group_size = 25});
  auto pools = engine.Condense(train, rng);
  CONDENSA_CHECK(pools.ok());
  auto release = condensa::core::GenerateRelease(*pools, rng);
  CONDENSA_CHECK(release.ok());
  const condensa::data::Dataset& anonymized = release->anonymized;

  std::printf("=== Algorithm suite on raw vs condensed data "
              "(Pima, k = 25) ===\n\n");
  std::printf("%24s %12s %14s\n", "algorithm", "raw_acc", "condensed_acc");

  {
    condensa::mining::KnnClassifier a({.k = 1}), b({.k = 1});
    std::printf("%24s %12.4f %14.4f\n", "1-NN", Accuracy(a, train, test),
                Accuracy(b, anonymized, test));
  }
  {
    condensa::mining::KnnClassifier a({.k = 5}), b({.k = 5});
    std::printf("%24s %12.4f %14.4f\n", "5-NN", Accuracy(a, train, test),
                Accuracy(b, anonymized, test));
  }
  {
    condensa::mining::GaussianNaiveBayes a, b;
    std::printf("%24s %12.4f %14.4f\n", "gaussian naive bayes",
                Accuracy(a, train, test), Accuracy(b, anonymized, test));
  }
  {
    condensa::mining::NearestCentroidClassifier a, b;
    std::printf("%24s %12.4f %14.4f\n", "nearest centroid",
                Accuracy(a, train, test), Accuracy(b, anonymized, test));
  }
  {
    condensa::mining::DecisionTreeClassifier a({.max_depth = 6});
    condensa::mining::DecisionTreeClassifier b({.max_depth = 6});
    std::printf("%24s %12.4f %14.4f\n", "CART (axis-parallel)",
                Accuracy(a, train, test), Accuracy(b, anonymized, test));
  }
  {
    condensa::mining::DecisionTreeClassifier a(
        {.max_depth = 6, .use_oblique_splits = true});
    condensa::mining::DecisionTreeClassifier b(
        {.max_depth = 6, .use_oblique_splits = true});
    std::printf("%24s %12.4f %14.4f\n", "CART (oblique / LDA)",
                Accuracy(a, train, test), Accuracy(b, anonymized, test));
  }

  {
    // Statistics-native: classify from the retained aggregates directly,
    // skipping regeneration entirely.
    condensa::mining::CondensedMixtureClassifier mixture;
    CONDENSA_CHECK(mixture.Fit(*pools).ok());
    std::size_t correct = 0;
    for (std::size_t i = 0; i < test.size(); ++i) {
      if (mixture.Predict(test.record(i)) == test.label(i)) ++correct;
    }
    std::printf("%24s %12s %14.4f\n", "mixture (stats-native)", "-",
                static_cast<double>(correct) /
                    static_cast<double>(test.size()));
  }

  // Association rules: mine both datasets, compare the rule sets.
  condensa::mining::AprioriOptions apriori_options;
  apriori_options.min_support = 0.2;
  apriori_options.min_confidence = 0.6;
  apriori_options.max_itemset_size = 3;

  // One shared grid (the raw data's bounds) so rule identities are
  // comparable across the two datasets.
  condensa::linalg::Vector lower = train.record(0);
  condensa::linalg::Vector upper = train.record(0);
  for (const auto& record : train.records()) {
    for (std::size_t j = 0; j < train.dim(); ++j) {
      lower[j] = std::min(lower[j], record[j]);
      upper[j] = std::max(upper[j], record[j]);
    }
  }
  auto raw_tx =
      condensa::mining::DiscretizeToTransactions(train, 3, lower, upper);
  auto anon_tx = condensa::mining::DiscretizeToTransactions(anonymized, 3,
                                                            lower, upper);
  CONDENSA_CHECK(raw_tx.ok());
  CONDENSA_CHECK(anon_tx.ok());
  auto raw_rules =
      condensa::mining::MineAssociationRules(*raw_tx, apriori_options);
  auto anon_rules =
      condensa::mining::MineAssociationRules(*anon_tx, apriori_options);
  CONDENSA_CHECK(raw_rules.ok());
  CONDENSA_CHECK(anon_rules.ok());

  std::set<std::string> raw_set, anon_set;
  for (const auto& rule : raw_rules->rules) raw_set.insert(RuleKey(rule));
  for (const auto& rule : anon_rules->rules) anon_set.insert(RuleKey(rule));
  std::size_t common = 0;
  for (const std::string& key : raw_set) {
    if (anon_set.count(key) > 0) ++common;
  }
  double jaccard =
      raw_set.empty() && anon_set.empty()
          ? 1.0
          : static_cast<double>(common) /
                static_cast<double>(raw_set.size() + anon_set.size() - common);

  std::printf("\n--- association rules (Apriori, 3 bins/attribute, "
              "support>=0.2, conf>=0.6) ---\n");
  std::printf("rules on raw data      : %zu\n", raw_set.size());
  std::printf("rules on condensed data: %zu\n", anon_set.size());
  std::printf("common rules           : %zu (Jaccard %.3f)\n", common,
              jaccard);

  std::printf(
      "\nExpected shape: every algorithm's condensed-data accuracy lands\n"
      "within a few points of its raw-data accuracy, and the bulk of the\n"
      "mined rules coincide — no algorithm was modified for privacy.\n\n");
  return reporter.Finish() ? 0 : 1;
}
