// Shared harness for reproducing the paper's figures (5-8).
//
// Each figure bench sweeps the condensation group size k on one dataset
// profile and reports, per sweep point, exactly the series the paper
// plots: classification (or within-one-year) accuracy for static
// condensation, dynamic condensation, and the original data, plus the
// covariance compatibility coefficient μ for static and dynamic.

#ifndef CONDENSA_BENCH_FIGURE_COMMON_H_
#define CONDENSA_BENCH_FIGURE_COMMON_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace condensa::bench {

struct FigureConfig {
  // datagen profile name: "ionosphere", "ecoli", "pima", "abalone".
  std::string profile;
  // Display title, e.g. "Figure 5 - Ionosphere".
  std::string title;
  // Machine-readable report name: FigureBenchMain writes
  // BENCH_<bench_name>.json (see bench/bench_report.h). Empty falls back
  // to the profile name.
  std::string bench_name;
  // Regression profiles score with |prediction - target| <= tolerance.
  bool regression = false;
  double tolerance = 1.0;
  // The k values swept (k = 1 anchors static condensation at the original
  // data).
  std::vector<std::size_t> group_sizes =
      {1, 2, 5, 10, 15, 20, 25, 30, 40, 50, 75, 100};
  // Independent trials averaged per sweep point.
  std::size_t trials = 3;
  std::uint64_t seed = 42;
  // Scales the profile's record counts (1.0 = paper-sized).
  double size_factor = 1.0;
};

// One row of the sweep output.
struct FigureRow {
  std::size_t requested_k = 0;
  double average_group_size = 0.0;  // the paper's X axis
  double accuracy_static = 0.0;     // panel (a) series
  double accuracy_dynamic = 0.0;
  double accuracy_original = 0.0;
  double mu_static = 0.0;           // panel (b) series
  double mu_dynamic = 0.0;
};

// Runs the sweep and returns one row per group size. Fails if the
// profile cannot be generated or any trial's pipeline errors.
StatusOr<std::vector<FigureRow>> RunFigureSweep(const FigureConfig& config);

// Full bench entry point: parses --csv / --trials=N / --size-factor=X,
// runs the sweep, prints panel (a) and panel (b), and writes
// BENCH_<bench_name>.json. Returns the process exit code (1 on sweep or
// report failure, 2 on bad flags).
int FigureBenchMain(FigureConfig config, int argc, char** argv);

}  // namespace condensa::bench

#endif  // CONDENSA_BENCH_FIGURE_COMMON_H_
