#include "bench/bench_report.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/io.h"
#include "obs/metrics.h"

namespace condensa::bench {
namespace {

std::string FormatDouble(double value) {
  char buffer[64];
  if (!std::isfinite(value)) {
    // JSON has no Inf/NaN literals.
    return "null";
  }
  if (value == std::floor(value) && std::abs(value) < 1e15) {
    std::snprintf(buffer, sizeof(buffer), "%.0f", value);
    return buffer;
  }
  // Shortest precision that round-trips the value exactly.
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buffer, sizeof(buffer), "%.*g", precision, value);
    if (std::strtod(buffer, nullptr) == value) break;
  }
  return buffer;
}

std::string JsonEscape(const std::string& in) {
  std::string out;
  out.reserve(in.size() + 2);
  for (char c : in) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c; break;
    }
  }
  return out;
}

}  // namespace

StatusOr<std::string> WriteBenchReport(const BenchReport& report) {
  if (report.name.empty()) {
    return InvalidArgumentError("bench report needs a name");
  }
  for (const std::vector<double>& row : report.rows) {
    if (row.size() != report.row_schema.size()) {
      return InvalidArgumentError("bench report row width != schema width");
    }
  }

  std::string out = "{\n";
  out += "  \"bench\": \"" + JsonEscape(report.name) + "\",\n";
  out += "  \"schema_version\": 1,\n";
  out += "  \"elapsed_seconds\": " + FormatDouble(report.elapsed_seconds) +
         ",\n";

  out += "  \"scalars\": {";
  for (std::size_t i = 0; i < report.scalars.size(); ++i) {
    if (i > 0) out += ", ";
    out += "\"" + JsonEscape(report.scalars[i].first) +
           "\": " + FormatDouble(report.scalars[i].second);
  }
  out += "},\n";

  out += "  \"rows\": {\"schema\": [";
  for (std::size_t i = 0; i < report.row_schema.size(); ++i) {
    if (i > 0) out += ", ";
    out += "\"" + JsonEscape(report.row_schema[i]) + "\"";
  }
  out += "], \"data\": [";
  for (std::size_t r = 0; r < report.rows.size(); ++r) {
    if (r > 0) out += ", ";
    out += "[";
    for (std::size_t c = 0; c < report.rows[r].size(); ++c) {
      if (c > 0) out += ", ";
      out += FormatDouble(report.rows[r][c]);
    }
    out += "]";
  }
  out += "]},\n";

  out += "  \"metrics\": " + obs::DefaultRegistry().DumpJson() + "\n";
  out += "}\n";

  const char* dir = std::getenv("CONDENSA_BENCH_OUT_DIR");
  std::string path = (dir != nullptr && dir[0] != '\0')
                         ? std::string(dir) + "/BENCH_" + report.name + ".json"
                         : "BENCH_" + report.name + ".json";
  CONDENSA_RETURN_IF_ERROR(WriteFileAtomic(path, out));
  return path;
}

BenchReporter::BenchReporter(std::string name) {
  report_.name = std::move(name);
}

void BenchReporter::AddScalar(std::string key, double value) {
  report_.scalars.emplace_back(std::move(key), value);
}

void BenchReporter::SetRowSchema(std::vector<std::string> columns) {
  report_.row_schema = std::move(columns);
}

void BenchReporter::AddRow(std::vector<double> row) {
  report_.rows.push_back(std::move(row));
}

bool BenchReporter::Finish() {
  report_.elapsed_seconds = timer_.ElapsedSeconds();
  StatusOr<std::string> path = WriteBenchReport(report_);
  if (!path.ok()) {
    std::fprintf(stderr, "bench report: %s\n",
                 path.status().ToString().c_str());
    return false;
  }
  std::fprintf(stderr, "bench report: wrote %s\n", path->c_str());
  return true;
}

}  // namespace condensa::bench
