// Ablation A1: the locality trade-off (paper Sections 2.1 and 4).
//
// Larger groups are statistically more robust but cover a larger spatial
// locality, where the locally-uniform assumption degrades. Sweeping k far
// beyond the paper's range on a fixed dataset shows μ rise (robustness)
// then fall (locality loss), while the privacy gain grows monotonically.

#include <cstdio>

#include "bench/bench_report.h"
#include "common/check.h"
#include "common/random.h"
#include "core/engine.h"
#include "datagen/profiles.h"
#include "metrics/compatibility.h"
#include "metrics/privacy.h"

using condensa::Rng;

int main() {
  condensa::bench::BenchReporter reporter("ablation_group_size");
  reporter.SetRowSchema(
      {"k", "mu", "cov_rel_err", "distance_gain", "exact_leak"});
  Rng data_rng(42);
  condensa::data::Dataset dataset =
      condensa::datagen::MakePima(data_rng);
  // Strip labels: this ablation studies pure structure preservation.
  condensa::data::Dataset unlabeled(dataset.dim());
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    unlabeled.Add(dataset.record(i));
  }

  std::printf("=== Ablation A1: group size / locality trade-off (Pima, "
              "%zu records) ===\n",
              unlabeled.size());
  std::printf("%6s %12s %12s %14s %14s\n", "k", "mu", "cov_rel_err",
              "distance_gain", "exact_leak");

  for (std::size_t k : {2u, 3u, 5u, 10u, 20u, 40u, 80u, 160u, 320u, 640u}) {
    double mu_total = 0.0, err_total = 0.0, gain_total = 0.0,
           leak_total = 0.0;
    constexpr int kTrials = 3;
    for (int trial = 0; trial < kTrials; ++trial) {
      Rng rng(100 + 31 * trial + k);
      condensa::core::CondensationEngine engine({.group_size = k});
      auto result = engine.Anonymize(unlabeled, rng);
      CONDENSA_CHECK(result.ok());

      auto mu = condensa::metrics::CovarianceCompatibility(
          unlabeled, result->anonymized);
      CONDENSA_CHECK(mu.ok());
      auto err = condensa::metrics::CovarianceRelativeError(
          unlabeled.Covariance(), result->anonymized.Covariance());
      CONDENSA_CHECK(err.ok());
      auto linkage =
          condensa::metrics::EvaluateLinkage(unlabeled, result->anonymized);
      CONDENSA_CHECK(linkage.ok());
      auto leak = condensa::metrics::ExactLeakageRate(
          unlabeled, result->anonymized, 1e-9);
      CONDENSA_CHECK(leak.ok());

      mu_total += *mu;
      err_total += *err;
      gain_total += linkage->distance_gain;
      leak_total += *leak;
    }
    std::printf("%6zu %12.4f %12.4f %14.3f %14.4f\n", k, mu_total / kTrials,
                err_total / kTrials, gain_total / kTrials,
                leak_total / kTrials);
    reporter.AddRow({static_cast<double>(k), mu_total / kTrials,
                     err_total / kTrials, gain_total / kTrials,
                     leak_total / kTrials});
  }
  std::printf("\nExpected shape: mu ~1 at small k, eroding slowly as the\n"
              "locality grows; distance_gain strictly increasing with k;\n"
              "exact leakage only at k where groups are singletons.\n\n");
  return reporter.Finish() ? 0 : 1;
}
