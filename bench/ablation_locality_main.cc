// Ablation A8: locality sensitivity of condensation (paper Section 2.2).
//
// Fixing the group *size* fixes the privacy level everywhere, but the
// spatial extent of a group adapts to local density — so sparse-region
// (outlier) records are regenerated with larger spatial error. This bench
// builds a dense-core + sparse-halo workload, buckets records by a
// density score (5th-neighbour distance), and reports the mean
// regeneration error per density quartile across k.

#include <cstdio>

#include "bench/bench_report.h"
#include "common/check.h"
#include "common/random.h"
#include "core/engine.h"
#include "metrics/locality.h"

using condensa::Rng;
using condensa::linalg::Vector;

int main() {
  condensa::bench::BenchReporter reporter("ablation_locality");
  Rng data_rng(42);
  condensa::data::Dataset dataset(3);
  // Dense core (80%) + sparse uniform halo (20%).
  for (int i = 0; i < 1600; ++i) {
    dataset.Add(Vector{data_rng.Gaussian(0.0, 0.6),
                       data_rng.Gaussian(0.0, 0.6),
                       data_rng.Gaussian(0.0, 0.6)});
  }
  for (int i = 0; i < 400; ++i) {
    dataset.Add(Vector{data_rng.Uniform(-10.0, 10.0),
                       data_rng.Uniform(-10.0, 10.0),
                       data_rng.Uniform(-10.0, 10.0)});
  }

  auto density = condensa::metrics::KthNeighborDistances(dataset, 5);
  CONDENSA_CHECK(density.ok());

  std::printf("=== Ablation A8: locality sensitivity (dense core + sparse "
              "halo, %zu records) ===\n",
              dataset.size());
  std::printf("mean regeneration error by density quartile "
              "(Q1 = densest records)\n\n");
  std::printf("%6s %12s %12s %12s %12s %14s\n", "k", "Q1", "Q2", "Q3", "Q4",
              "Q4/Q1 ratio");

  for (std::size_t k : {5u, 10u, 20u, 40u, 80u}) {
    std::vector<double> bucket_means(4, 0.0);
    constexpr int kTrials = 3;
    for (int trial = 0; trial < kTrials; ++trial) {
      Rng rng(100 + trial);
      condensa::core::CondensationEngine engine({.group_size = k});
      auto release = engine.Anonymize(dataset, rng);
      CONDENSA_CHECK(release.ok());
      auto errors = condensa::metrics::NearestReleaseDistances(
          dataset, release->anonymized);
      CONDENSA_CHECK(errors.ok());
      auto buckets =
          condensa::metrics::MeanByQuantileBucket(*density, *errors, 4);
      CONDENSA_CHECK(buckets.ok());
      for (int b = 0; b < 4; ++b) {
        bucket_means[b] += (*buckets)[b] / kTrials;
      }
    }
    std::printf("%6zu %12.4f %12.4f %12.4f %12.4f %14.2f\n", k,
                bucket_means[0], bucket_means[1], bucket_means[2],
                bucket_means[3], bucket_means[3] / bucket_means[0]);
  }

  std::printf(
      "\nExpected shape: regeneration error grows monotonically from the\n"
      "densest to the sparsest quartile at every k, and the Q4/Q1 ratio\n"
      "stays large — the paper's point that outliers are inherently\n"
      "harder to mask under a fixed group size.\n\n");
  return reporter.Finish() ? 0 : 1;
}
