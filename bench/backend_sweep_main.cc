// backend_sweep — utility/privacy comparison of anonymization backends.
//
// Sweeps the indistinguishability level k over the four paper dataset
// profiles (ionosphere, ecoli, pima, abalone) for every registered
// anonymization backend and reports, per (profile, backend, k) cell:
//
//   accuracy     1-NN accuracy (within-one-year for abalone) of a model
//                trained on the anonymized release, scored on held-out
//                originals — the paper's utility axis
//   mu           covariance compatibility against the training originals
//   pinpointed   fraction of original records whose nearest release
//                record is closer than their nearest original neighbour
//                (metrics/privacy.h) — the disclosure-risk proxy
//   dist_gain    linkage distance gain (>= 1: the release localizes no
//                better than the population already does)
//
// Presets:
//   --preset=smoke   1 trial per cell; the CI perf-smoke job runs this.
//   --preset=full    3 trials per cell, averaged.
//
// Both presets cover every backend x k in {5, 10, 25, 50} x all four
// profiles, so BENCH_backend_sweep.json always carries the full grid.
// See docs/backends.md for the comparison this bench quantifies.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "backend/registry.h"
#include "bench/bench_report.h"
#include "common/random.h"
#include "common/status.h"
#include "core/engine.h"
#include "data/split.h"
#include "data/transform.h"
#include "datagen/profiles.h"
#include "metrics/compatibility.h"
#include "metrics/privacy.h"
#include "mining/evaluation.h"
#include "mining/knn.h"

namespace {

using condensa::Rng;
using condensa::Status;
using condensa::StatusOr;

struct ProfileSpec {
  const char* name;
  bool regression;
  double tolerance;  // regression: |prediction - target| <= tolerance
};

constexpr ProfileSpec kProfiles[] = {
    {"ionosphere", false, 0.0},
    {"ecoli", false, 0.0},
    {"pima", false, 0.0},
    {"abalone", true, 1.0},
};

constexpr std::size_t kGroupSizes[] = {5, 10, 25, 50};

struct CellOutcome {
  double average_group_size = 0.0;
  double accuracy = 0.0;
  double mu = 0.0;
  double pinpointed = 0.0;
  double distance_gain = 0.0;
};

StatusOr<double> Score(const condensa::data::Dataset& train,
                       const condensa::data::Dataset& test,
                       const ProfileSpec& profile) {
  if (profile.regression) {
    condensa::mining::KnnRegressor regressor({.k = 1});
    CONDENSA_RETURN_IF_ERROR(regressor.Fit(train));
    return condensa::mining::EvaluateWithinTolerance(regressor, test,
                                                     profile.tolerance);
  }
  condensa::mining::KnnClassifier classifier({.k = 1});
  CONDENSA_RETURN_IF_ERROR(classifier.Fit(train));
  return condensa::mining::EvaluateAccuracy(classifier, test);
}

StatusOr<CellOutcome> RunTrial(const ProfileSpec& profile,
                               const std::string& backend_id, std::size_t k,
                               std::uint64_t trial_seed) {
  Rng rng(trial_seed);
  CONDENSA_ASSIGN_OR_RETURN(
      condensa::data::Dataset dataset,
      condensa::datagen::MakeProfileByName(profile.name, rng, {}));
  CONDENSA_ASSIGN_OR_RETURN(condensa::data::TrainTestSplit split,
                            condensa::data::SplitTrainTest(dataset, 0.75,
                                                           rng));
  condensa::data::ZScoreScaler scaler;
  CONDENSA_RETURN_IF_ERROR(scaler.Fit(split.train));
  condensa::data::Dataset train = scaler.TransformDataset(split.train);
  condensa::data::Dataset test = scaler.TransformDataset(split.test);

  condensa::core::CondensationConfig config;
  config.group_size = k;
  config.mode = condensa::core::CondensationMode::kStatic;
  CONDENSA_RETURN_IF_ERROR(
      condensa::backend::ApplyBackend(backend_id, &config));
  condensa::core::CondensationEngine engine(config);
  CONDENSA_ASSIGN_OR_RETURN(condensa::core::AnonymizationResult result,
                            engine.Anonymize(train, rng));

  CellOutcome outcome;
  outcome.average_group_size = result.AverageGroupSize();
  CONDENSA_ASSIGN_OR_RETURN(outcome.accuracy,
                            Score(result.anonymized, test, profile));
  CONDENSA_ASSIGN_OR_RETURN(
      outcome.mu,
      condensa::metrics::CovarianceCompatibility(train, result.anonymized));
  CONDENSA_ASSIGN_OR_RETURN(
      condensa::metrics::LinkageReport linkage,
      condensa::metrics::EvaluateLinkage(train, result.anonymized));
  outcome.pinpointed = linkage.pinpointed_fraction;
  outcome.distance_gain = linkage.distance_gain;
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  std::string preset = "smoke";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--preset=", 9) == 0) {
      preset = argv[i] + 9;
    } else {
      std::fprintf(stderr, "usage: %s [--preset=smoke|full]\n", argv[0]);
      return 2;
    }
  }
  const bool full = preset == "full";
  if (!full && preset != "smoke") {
    std::fprintf(stderr, "unknown preset '%s'\n", preset.c_str());
    return 2;
  }
  const std::size_t trials = full ? 3 : 1;
  const std::uint64_t seed = 42;

  const std::vector<std::string> backends =
      condensa::backend::Registry::Global().Ids();

  condensa::bench::BenchReporter reporter("backend_sweep");
  reporter.AddScalar("trials", static_cast<double>(trials));
  reporter.AddScalar("full_preset", full ? 1.0 : 0.0);
  // Row encoding: profile and backend travel as indices into the
  // mappings printed below (BenchReport rows are numeric).
  reporter.SetRowSchema({"profile", "backend", "k", "avg_group_size",
                         "accuracy", "mu", "pinpointed", "distance_gain"});

  std::printf("backend_sweep (%s): %zu trial(s) per cell\n", preset.c_str(),
              trials);
  std::printf("profile indices:");
  for (std::size_t p = 0; p < std::size(kProfiles); ++p) {
    std::printf(" %zu=%s", p, kProfiles[p].name);
  }
  std::printf("\nbackend indices:");
  for (std::size_t b = 0; b < backends.size(); ++b) {
    std::printf(" %zu=%s", b, backends[b].c_str());
  }
  std::printf("\n\n%-11s %-13s %4s %7s %9s %7s %11s %10s\n", "profile",
              "backend", "k", "avg|G|", "accuracy", "mu", "pinpointed",
              "dist_gain");

  for (std::size_t p = 0; p < std::size(kProfiles); ++p) {
    const ProfileSpec& profile = kProfiles[p];
    for (std::size_t b = 0; b < backends.size(); ++b) {
      for (std::size_t k : kGroupSizes) {
        CellOutcome mean;
        for (std::size_t trial = 0; trial < trials; ++trial) {
          // Trial seeds are independent of (backend, k) so every cell
          // sees the same data draws and differences are attributable
          // to the backend alone.
          StatusOr<CellOutcome> outcome =
              RunTrial(profile, backends[b], k, seed + 7919 * trial);
          if (!outcome.ok()) {
            std::fprintf(stderr, "%s/%s/k=%zu failed: %s\n", profile.name,
                         backends[b].c_str(), k,
                         outcome.status().ToString().c_str());
            return 1;
          }
          mean.average_group_size += outcome->average_group_size;
          mean.accuracy += outcome->accuracy;
          mean.mu += outcome->mu;
          mean.pinpointed += outcome->pinpointed;
          mean.distance_gain += outcome->distance_gain;
        }
        const double t = static_cast<double>(trials);
        mean.average_group_size /= t;
        mean.accuracy /= t;
        mean.mu /= t;
        mean.pinpointed /= t;
        mean.distance_gain /= t;

        std::printf("%-11s %-13s %4zu %7.2f %9.4f %7.4f %11.4f %10.3f\n",
                    profile.name, backends[b].c_str(), k,
                    mean.average_group_size, mean.accuracy, mean.mu,
                    mean.pinpointed, mean.distance_gain);
        reporter.AddRow({static_cast<double>(p), static_cast<double>(b),
                         static_cast<double>(k), mean.average_group_size,
                         mean.accuracy, mean.mu, mean.pinpointed,
                         mean.distance_gain});
      }
    }
  }

  return reporter.Finish() ? 0 : 1;
}
