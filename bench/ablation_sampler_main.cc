// Ablation A7: the anonymizer's sampling-distribution choice.
//
// The paper regenerates records *uniformly* along each eigenvector
// (Section 2.1), arguing uniformity is a good local approximation. This
// bench swaps in a Gaussian sampler with the same per-eigenvector variance
// and compares: both preserve second-order moments by construction, so μ
// is similar; the differences show up in classifier accuracy and in how
// far regenerated points stray from the group (tail behaviour).

#include <cmath>
#include <cstdio>

#include "bench/bench_report.h"
#include "common/check.h"
#include "common/random.h"
#include "core/anonymizer.h"
#include "core/static_condenser.h"
#include "data/split.h"
#include "data/transform.h"
#include "datagen/profiles.h"
#include "metrics/compatibility.h"
#include "mining/evaluation.h"
#include "mining/knn.h"

using condensa::Rng;
using condensa::core::SamplingDistribution;

namespace {

// Anonymizes `train` per class with the given sampler and returns the
// release.
condensa::data::Dataset AnonymizeWith(const condensa::data::Dataset& train,
                                      std::size_t k,
                                      SamplingDistribution distribution,
                                      Rng& rng) {
  condensa::core::Anonymizer anonymizer({.distribution = distribution});
  condensa::core::StaticCondenser condenser({.group_size = k});
  condensa::data::Dataset release(train.dim(),
                                  condensa::data::TaskType::kClassification);
  for (const auto& [label, indices] : train.IndicesByLabel()) {
    std::vector<condensa::linalg::Vector> pool;
    for (std::size_t i : indices) pool.push_back(train.record(i));
    std::size_t effective_k = std::min(k, pool.size());
    auto groups = condensa::core::StaticCondenser(
                      {.group_size = effective_k})
                      .Condense(pool, rng);
    CONDENSA_CHECK(groups.ok());
    auto points = anonymizer.Generate(*groups, rng);
    CONDENSA_CHECK(points.ok());
    for (auto& p : *points) {
      release.Add(std::move(p), label);
    }
  }
  (void)condenser;
  return release;
}

}  // namespace

int main() {
  condensa::bench::BenchReporter reporter("ablation_sampler");
  Rng data_rng(42);
  condensa::data::Dataset dataset =
      condensa::datagen::MakeIonosphere(data_rng);

  Rng rng(43);
  auto split = condensa::data::SplitTrainTest(dataset, 0.75, rng);
  CONDENSA_CHECK(split.ok());
  condensa::data::ZScoreScaler scaler;
  CONDENSA_CHECK(scaler.Fit(split->train).ok());
  condensa::data::Dataset train = scaler.TransformDataset(split->train);
  condensa::data::Dataset test = scaler.TransformDataset(split->test);

  std::printf("=== Ablation A7: uniform vs Gaussian eigenvector sampling "
              "(Ionosphere) ===\n");
  std::printf("%6s %10s %12s %12s %12s %12s\n", "k", "sampler", "knn_acc",
              "mu", "mean_dev", "max_dev");

  for (std::size_t k : {5u, 15u, 30u, 60u}) {
    for (SamplingDistribution distribution :
         {SamplingDistribution::kUniform, SamplingDistribution::kGaussian}) {
      double accuracy_total = 0.0, mu_total = 0.0;
      double mean_deviation = 0.0, max_deviation = 0.0;
      constexpr int kTrials = 3;
      for (int trial = 0; trial < kTrials; ++trial) {
        Rng trial_rng(100 + trial);
        condensa::data::Dataset release =
            AnonymizeWith(train, k, distribution, trial_rng);

        condensa::mining::KnnClassifier knn({.k = 1});
        CONDENSA_CHECK(knn.Fit(release).ok());
        auto accuracy = condensa::mining::EvaluateAccuracy(knn, test);
        auto mu = condensa::metrics::CovarianceCompatibility(train, release);
        CONDENSA_CHECK(accuracy.ok());
        CONDENSA_CHECK(mu.ok());
        accuracy_total += *accuracy;
        mu_total += *mu;

        // Tail behaviour: distance of each released record from the
        // nearest original record, normalized by dimension.
        for (std::size_t i = 0; i < release.size(); ++i) {
          double best = 1e300;
          for (std::size_t j = 0; j < train.size(); ++j) {
            best = std::min(best,
                            condensa::linalg::SquaredDistance(
                                release.record(i), train.record(j)));
          }
          double deviation =
              std::sqrt(best / static_cast<double>(train.dim()));
          mean_deviation += deviation;
          max_deviation = std::max(max_deviation, deviation);
        }
      }
      mean_deviation /=
          static_cast<double>(kTrials) * static_cast<double>(train.size());
      std::printf("%6zu %10s %12.4f %12.4f %12.4f %12.4f\n", k,
                  distribution == SamplingDistribution::kUniform
                      ? "uniform"
                      : "gaussian",
                  accuracy_total / kTrials, mu_total / kTrials,
                  mean_deviation, max_deviation);
    }
  }

  std::printf(
      "\nExpected shape: mu and accuracy are close (both samplers match\n"
      "the group's first two moments); the Gaussian sampler's unbounded\n"
      "tails give a visibly larger max deviation from the data manifold,\n"
      "which is why the paper's bounded uniform choice is the safer\n"
      "default.\n\n");
  return reporter.Finish() ? 0 : 1;
}
