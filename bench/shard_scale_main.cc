// Shard scale-out bench: sharded durable streaming ingest at 1/2/4/8
// shards, with the quality side of the ledger measured on every cell.
//
// Dynamic condensation's per-record cost grows with the number of live
// groups G, so scattering one stream across N shards cuts each shard's
// G by ~N — the speedup is algorithmic and shows up even on one core
// (docs/scaling.md). The gather step is an exact moment merge, so the
// bench also checks that covariance compatibility (mu) and 1-NN
// accuracy on the released data stay within 2% of the 1-shard baseline,
// and that a fixed (seed, shard count) reproduces a bit-identical
// release.
//
// Presets:
//   --preset=smoke   n = 10k, shards {1, 4}; the CI perf-smoke job
//                    runs this one.
//   --preset=full    n = 100k, d = 10, k = 10, shards {1, 2, 4, 8} —
//                    the configuration the acceptance criterion uses
//                    (>= 3x ingest throughput at 8 shards).
//
// Emits BENCH_shard_scale.json with one row per shard count and
// speedup_shards<N> scalars relative to the 1-shard baseline.

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/bench_report.h"
#include "common/check.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "core/anonymizer.h"
#include "core/condensed_group_set.h"
#include "core/serialization.h"
#include "data/dataset.h"
#include "linalg/vector.h"
#include "metrics/compatibility.h"
#include "mining/knn.h"
#include "obs/timing.h"
#include "shard/stream_service.h"

namespace {

using condensa::Rng;
using condensa::core::CondensedGroupSet;
using condensa::data::Dataset;
using condensa::data::TaskType;
using condensa::linalg::Vector;
using condensa::shard::ShardedStreamConfig;
using condensa::shard::ShardedStreamResult;
using condensa::shard::ShardedStreamService;

// The paper's two-class setting: well-separated Gaussian blobs, one
// stream per class so the released records keep their labels.
struct Workload {
  std::vector<Vector> train[2];
  Dataset train_raw{0};
  Dataset test{0};
};

Workload MakeWorkload(std::size_t n, std::size_t dim, std::uint64_t seed) {
  Rng rng(seed);
  Workload w;
  w.train_raw = Dataset(dim, TaskType::kClassification);
  w.test = Dataset(dim, TaskType::kClassification);
  for (std::size_t i = 0; i < n; ++i) {
    const int label = static_cast<int>(i % 2);
    Vector record(dim);
    for (std::size_t j = 0; j < dim; ++j) {
      record[j] = rng.Gaussian(label == 0 ? -3.0 : 3.0, 1.0);
    }
    if (i % 5 == 4) {
      w.test.Add(std::move(record), label);
    } else {
      w.train_raw.Add(record, label);
      w.train[label].push_back(std::move(record));
    }
  }
  return w;
}

struct CellResult {
  double ingest_seconds = 0.0;
  CondensedGroupSet groups[2] = {CondensedGroupSet(0, 0),
                                 CondensedGroupSet(0, 0)};
  std::size_t num_groups = 0;
  std::size_t min_group_size = 0;
};

// Ingests both class streams through fresh sharded services and returns
// the per-class gathered group sets plus wall time spent inside
// Submit + Finish (the ingest path the speedup claim is about).
CellResult RunCell(const Workload& w, std::size_t shards, std::size_t dim,
                   std::size_t k, const std::string& root) {
  CellResult cell;
  cell.min_group_size = static_cast<std::size_t>(-1);
  for (int label = 0; label < 2; ++label) {
    const std::string class_root = root + "/class-" + std::to_string(label);
    std::error_code cleanup_error;
    std::filesystem::remove_all(class_root, cleanup_error);

    ShardedStreamConfig config;
    config.num_shards = shards;
    config.dim = dim;
    config.group_size = k;
    config.checkpoint_root = class_root;
    // The bench measures the condensation path, not the disk: journal
    // appends stay buffered and snapshots are effectively disabled.
    config.sync_every_append = false;
    config.snapshot_interval = 1u << 30;
    config.queue_capacity = 4096;
    config.batch_size = 64;
    config.seed = 42 + static_cast<std::uint64_t>(label);

    condensa::obs::Timer timer;
    auto service = ShardedStreamService::Start(config);
    CONDENSA_CHECK(service.ok());
    for (const Vector& record : w.train[label]) {
      CONDENSA_CHECK((*service)->Submit(record).ok());
    }
    auto result = (*service)->Finish();
    cell.ingest_seconds += timer.ElapsedSeconds();
    CONDENSA_CHECK(result.ok());
    CONDENSA_CHECK(result->Balanced());
    CONDENSA_CHECK_EQ(result->groups.TotalRecords(),
                      w.train[label].size());
    cell.num_groups += result->groups.num_groups();
    const std::size_t min_size = result->groups.Summary().min_group_size;
    if (min_size < cell.min_group_size) cell.min_group_size = min_size;
    cell.groups[label] = std::move(result->groups);

    std::filesystem::remove_all(class_root, cleanup_error);
  }
  return cell;
}

// Regenerates a labeled release from the per-class group sets and scores
// it: covariance compatibility against the raw training data, and 1-NN
// accuracy on the held-out original test records.
void ScoreRelease(const Workload& w, const CellResult& cell,
                  std::size_t dim, double* mu, double* accuracy) {
  condensa::core::Anonymizer anonymizer;
  Dataset release(dim, TaskType::kClassification);
  for (int label = 0; label < 2; ++label) {
    Rng rng(1000 + static_cast<std::uint64_t>(label));
    auto points = anonymizer.Generate(cell.groups[label], rng);
    CONDENSA_CHECK(points.ok());
    for (Vector& point : *points) {
      release.Add(std::move(point), label);
    }
  }

  auto compatibility =
      condensa::metrics::CovarianceCompatibility(w.train_raw, release);
  CONDENSA_CHECK(compatibility.ok());
  *mu = *compatibility;

  condensa::mining::KnnClassifier knn({.k = 1});
  CONDENSA_CHECK(knn.Fit(release).ok());
  std::size_t correct = 0;
  for (std::size_t i = 0; i < w.test.size(); ++i) {
    if (knn.Predict(w.test.record(i)) == w.test.label(i)) ++correct;
  }
  *accuracy = static_cast<double>(correct) /
              static_cast<double>(w.test.size());
}

std::string FingerprintCell(const CellResult& cell) {
  return condensa::core::SerializeGroupSet(cell.groups[0]) +
         condensa::core::SerializeGroupSet(cell.groups[1]);
}

}  // namespace

int main(int argc, char** argv) {
  std::string preset = "smoke";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--preset=", 9) == 0) {
      preset = argv[i] + 9;
    } else {
      std::fprintf(stderr, "usage: %s [--preset=smoke|full]\n", argv[0]);
      return 1;
    }
  }
  const bool full = preset == "full";
  if (!full && preset != "smoke") {
    std::fprintf(stderr, "unknown preset '%s'\n", preset.c_str());
    return 1;
  }

  const std::size_t n = full ? 100'000 : 10'000;
  const std::size_t dim = 10;
  const std::size_t k = 10;
  const std::vector<std::size_t> shard_counts =
      full ? std::vector<std::size_t>{1, 2, 4, 8}
           : std::vector<std::size_t>{1, 4};
  const std::string root =
      (std::filesystem::temp_directory_path() / "condensa_shard_scale")
          .string();

  Workload w = MakeWorkload(n, dim, 2026);

  condensa::bench::BenchReporter reporter("shard_scale");
  reporter.AddScalar("full_preset", full ? 1.0 : 0.0);
  reporter.AddScalar("n", static_cast<double>(n));
  reporter.AddScalar("dim", static_cast<double>(dim));
  reporter.AddScalar("k", static_cast<double>(k));
  reporter.SetRowSchema({"shards", "n", "seconds", "records_per_sec", "mu",
                         "accuracy", "groups", "min_group_size"});

  const double ingested =
      static_cast<double>(w.train[0].size() + w.train[1].size());
  double baseline_seconds = 0.0, baseline_mu = 0.0, baseline_accuracy = 0.0;
  for (std::size_t shards : shard_counts) {
    CellResult cell = RunCell(w, shards, dim, k, root);

    // Fixed (seed, shard count) must reproduce the release bit for bit;
    // rerunning the smallest cell keeps the check cheap in full preset.
    if (!full || shards == shard_counts.front()) {
      CellResult replay = RunCell(w, shards, dim, k, root);
      CONDENSA_CHECK(FingerprintCell(cell) == FingerprintCell(replay));
    }

    double mu = 0.0, accuracy = 0.0;
    ScoreRelease(w, cell, dim, &mu, &accuracy);

    if (shards == shard_counts.front()) {
      baseline_seconds = cell.ingest_seconds;
      baseline_mu = mu;
      baseline_accuracy = accuracy;
    } else {
      // The gather is exact, so quality must ride flat across the sweep.
      CONDENSA_CHECK(mu >= baseline_mu - 0.02);
      CONDENSA_CHECK(accuracy >= baseline_accuracy - 0.02);
      reporter.AddScalar("speedup_shards" + std::to_string(shards),
                         baseline_seconds / cell.ingest_seconds);
    }

    reporter.AddRow({static_cast<double>(shards), ingested,
                     cell.ingest_seconds, ingested / cell.ingest_seconds, mu,
                     accuracy, static_cast<double>(cell.num_groups),
                     static_cast<double>(cell.min_group_size)});
    std::printf(
        "shards=%zu: ingest %.3fs (%.0f rec/s)  mu=%.4f  acc=%.4f  "
        "groups=%zu  min=%zu  speedup=%.2fx\n",
        shards, cell.ingest_seconds, ingested / cell.ingest_seconds, mu,
        accuracy, cell.num_groups, cell.min_group_size,
        baseline_seconds / cell.ingest_seconds);
  }

  std::error_code cleanup_error;
  std::filesystem::remove_all(root, cleanup_error);
  return reporter.Finish() ? 0 : 1;
}
