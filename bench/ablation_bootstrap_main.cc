// Ablation A9: how much static bootstrap does dynamic condensation need?
//
// The paper's DynamicGroupMaintenance starts from a statically condensed
// database D and then consumes the stream S. This bench varies the size
// of D (as a fraction of the data) from pure streaming (0) to fully
// static (1) and measures the release quality — quantifying how quickly
// the stream structure converges to the static optimum.

#include <cstdio>

#include "bench/bench_report.h"
#include "common/check.h"
#include "common/random.h"
#include "core/engine.h"
#include "data/split.h"
#include "data/transform.h"
#include "datagen/profiles.h"
#include "metrics/compatibility.h"
#include "mining/evaluation.h"
#include "mining/knn.h"

using condensa::Rng;

int main() {
  condensa::bench::BenchReporter reporter("ablation_bootstrap");
  Rng data_rng(42);
  condensa::data::Dataset dataset = condensa::datagen::MakePima(data_rng);

  Rng rng(43);
  auto split = condensa::data::SplitTrainTest(dataset, 0.75, rng);
  CONDENSA_CHECK(split.ok());
  condensa::data::ZScoreScaler scaler;
  CONDENSA_CHECK(scaler.Fit(split->train).ok());
  condensa::data::Dataset train = scaler.TransformDataset(split->train);
  condensa::data::Dataset test = scaler.TransformDataset(split->test);

  std::printf("=== Ablation A9: dynamic bootstrap fraction "
              "(Pima, k = 20) ===\n\n");
  std::printf("%12s %10s %12s %14s\n", "bootstrap", "mu", "knn_acc",
              "avg_grp_size");

  for (double fraction : {0.0, 0.05, 0.1, 0.25, 0.5, 0.75, 1.0}) {
    double mu_total = 0.0, accuracy_total = 0.0, size_total = 0.0;
    constexpr int kTrials = 5;
    for (int trial = 0; trial < kTrials; ++trial) {
      Rng trial_rng(100 + trial);
      condensa::core::CondensationEngine engine(
          {.group_size = 20,
           .mode = condensa::core::CondensationMode::kDynamic,
           .bootstrap_fraction = fraction});
      auto result = engine.Anonymize(train, trial_rng);
      CONDENSA_CHECK(result.ok());

      auto mu = condensa::metrics::CovarianceCompatibility(
          train, result->anonymized);
      CONDENSA_CHECK(mu.ok());
      mu_total += *mu;

      condensa::mining::KnnClassifier knn({.k = 1});
      CONDENSA_CHECK(knn.Fit(result->anonymized).ok());
      auto accuracy = condensa::mining::EvaluateAccuracy(knn, test);
      CONDENSA_CHECK(accuracy.ok());
      accuracy_total += *accuracy;
      size_total += result->AverageGroupSize();
    }
    std::printf("%12.2f %10.4f %12.4f %14.2f\n", fraction,
                mu_total / kTrials, accuracy_total / kTrials,
                size_total / kTrials);
  }

  std::printf(
      "\nExpected shape: quality is already near the static level with a\n"
      "small bootstrap (the nearest-centroid rule plus 2k-splits adapt\n"
      "quickly); pure streaming costs little on i.i.d. data, so the\n"
      "paper's stream setting is practical even from a cold start.\n\n");
  return reporter.Finish() ? 0 : 1;
}
