// Hot-path scaling bench: static condensation throughput, brute-force
// scan vs the deletion-aware k-d tree, plus parallel anonymized-record
// generation at 1 and all hardware threads.
//
// Presets:
//   --preset=smoke   small sizes; the CI perf-smoke job runs this one.
//   --preset=full    n in {10k, 100k}, d = 10, k in {10, 25} — the
//                    configuration the ISSUE acceptance criterion uses
//                    (index >= 5x brute at n = 100k, k = 10).
//
// Emits BENCH_condense_scale.json with one row per (phase, n, k,
// threads, indexed) cell and records/sec as the headline column, plus
// speedup_* scalars for the brute-vs-index ratios. Every condensation is
// checked for brute/index bit-identity before its timing is reported, so
// the bench doubles as a large-n parity test.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_report.h"
#include "common/check.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "core/anonymizer.h"
#include "core/static_condenser.h"
#include "linalg/stats.h"
#include "obs/timing.h"

namespace {

using condensa::Rng;
using condensa::ThreadPool;
using condensa::core::Anonymizer;
using condensa::core::CondensedGroupSet;
using condensa::core::NeighbourSearch;
using condensa::core::StaticCondenser;
using condensa::linalg::Vector;

constexpr double kCondensePhase = 0.0;
constexpr double kGeneratePhase = 1.0;

std::vector<Vector> MakeCloud(std::size_t n, std::size_t dim,
                              std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Vector> points;
  points.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Vector p(dim);
    for (std::size_t j = 0; j < dim; ++j) {
      p[j] = rng.Gaussian();
    }
    points.push_back(std::move(p));
  }
  return points;
}

void ExpectIdentical(const CondensedGroupSet& a, const CondensedGroupSet& b) {
  CONDENSA_CHECK_EQ(a.num_groups(), b.num_groups());
  for (std::size_t i = 0; i < a.num_groups(); ++i) {
    CONDENSA_CHECK_EQ(a.group(i).count(), b.group(i).count());
    CONDENSA_CHECK(condensa::linalg::ApproxEqual(
        a.group(i).first_order(), b.group(i).first_order(), 0.0));
  }
}

double TimeCondense(const StaticCondenser& condenser,
                    const std::vector<Vector>& points, std::uint64_t seed,
                    CondensedGroupSet* out) {
  Rng rng(seed);
  condensa::obs::Timer timer;
  auto groups = condenser.Condense(points, rng);
  double seconds = timer.ElapsedSeconds();
  CONDENSA_CHECK(groups.ok());
  *out = *std::move(groups);
  return seconds;
}

double TimeGenerate(const CondensedGroupSet& groups, std::size_t threads,
                    std::uint64_t seed) {
  Anonymizer anonymizer({.num_threads = threads});
  Rng rng(seed);
  condensa::obs::Timer timer;
  auto points = anonymizer.Generate(groups, rng);
  double seconds = timer.ElapsedSeconds();
  CONDENSA_CHECK(points.ok());
  CONDENSA_CHECK_EQ(points->size(), groups.TotalRecords());
  return seconds;
}

}  // namespace

int main(int argc, char** argv) {
  std::string preset = "smoke";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--preset=", 9) == 0) {
      preset = argv[i] + 9;
    } else {
      std::fprintf(stderr, "usage: %s [--preset=smoke|full]\n", argv[0]);
      return 1;
    }
  }
  const bool full = preset == "full";
  if (!full && preset != "smoke") {
    std::fprintf(stderr, "unknown preset '%s'\n", preset.c_str());
    return 1;
  }

  const std::size_t dim = 10;
  const std::vector<std::size_t> sizes =
      full ? std::vector<std::size_t>{10'000, 100'000}
           : std::vector<std::size_t>{5'000};
  const std::vector<std::size_t> group_sizes =
      full ? std::vector<std::size_t>{10, 25} : std::vector<std::size_t>{10};
  const std::size_t hw = ThreadPool::HardwareThreads();

  condensa::bench::BenchReporter reporter("condense_scale");
  reporter.AddScalar("full_preset", full ? 1.0 : 0.0);
  reporter.AddScalar("dim", static_cast<double>(dim));
  reporter.AddScalar("hardware_threads", static_cast<double>(hw));
  reporter.SetRowSchema(
      {"phase", "n", "k", "threads", "indexed", "seconds", "records_per_sec"});

  for (std::size_t n : sizes) {
    std::vector<Vector> points = MakeCloud(n, dim, 7'000 + n);
    for (std::size_t k : group_sizes) {
      StaticCondenser brute(
          {.group_size = k, .neighbour_search = NeighbourSearch::kBruteForce});
      StaticCondenser indexed(
          {.group_size = k, .neighbour_search = NeighbourSearch::kKdTree});
      CondensedGroupSet brute_groups(dim, k), index_groups(dim, k);
      const std::uint64_t seed = 11 * n + k;
      double brute_seconds = TimeCondense(brute, points, seed, &brute_groups);
      double index_seconds =
          TimeCondense(indexed, points, seed, &index_groups);
      ExpectIdentical(brute_groups, index_groups);

      const double dn = static_cast<double>(n);
      const double dk = static_cast<double>(k);
      reporter.AddRow({kCondensePhase, dn, dk, 1.0, 0.0, brute_seconds,
                       dn / brute_seconds});
      reporter.AddRow({kCondensePhase, dn, dk, 1.0, 1.0, index_seconds,
                       dn / index_seconds});
      double speedup = brute_seconds / index_seconds;
      reporter.AddScalar(
          "speedup_n" + std::to_string(n) + "_k" + std::to_string(k),
          speedup);
      std::printf(
          "condense n=%zu k=%zu: brute %.3fs (%.0f rec/s)  "
          "index %.3fs (%.0f rec/s)  speedup %.2fx\n",
          n, k, brute_seconds, dn / brute_seconds, index_seconds,
          dn / index_seconds, speedup);

      for (std::size_t threads : {std::size_t{1}, hw}) {
        double gen_seconds = TimeGenerate(index_groups, threads, seed + 1);
        reporter.AddRow({kGeneratePhase, dn, dk,
                         static_cast<double>(threads), 1.0, gen_seconds,
                         dn / gen_seconds});
        std::printf("generate n=%zu k=%zu threads=%zu: %.3fs (%.0f rec/s)\n",
                    n, k, threads, gen_seconds, dn / gen_seconds);
        if (hw == 1) break;
      }
    }
  }
  return reporter.Finish() ? 0 : 1;
}
