file(REMOVE_RECURSE
  "CMakeFiles/condensa.dir/condensa_cli_main.cc.o"
  "CMakeFiles/condensa.dir/condensa_cli_main.cc.o.d"
  "condensa"
  "condensa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/condensa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
