# Empty dependencies file for condensa.
# This may be replaced when dependencies are built.
