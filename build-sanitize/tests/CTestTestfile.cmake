# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-sanitize/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-sanitize/tests/common_test[1]_include.cmake")
include("/root/repo/build-sanitize/tests/linalg_test[1]_include.cmake")
include("/root/repo/build-sanitize/tests/index_test[1]_include.cmake")
include("/root/repo/build-sanitize/tests/anonymity_test[1]_include.cmake")
include("/root/repo/build-sanitize/tests/data_test[1]_include.cmake")
include("/root/repo/build-sanitize/tests/datagen_test[1]_include.cmake")
include("/root/repo/build-sanitize/tests/core_test[1]_include.cmake")
include("/root/repo/build-sanitize/tests/mining_test[1]_include.cmake")
include("/root/repo/build-sanitize/tests/perturb_test[1]_include.cmake")
include("/root/repo/build-sanitize/tests/metrics_test[1]_include.cmake")
include("/root/repo/build-sanitize/tests/integration_test[1]_include.cmake")
