file(REMOVE_RECURSE
  "CMakeFiles/perturb_test.dir/perturb/distribution_classifier_test.cc.o"
  "CMakeFiles/perturb_test.dir/perturb/distribution_classifier_test.cc.o.d"
  "CMakeFiles/perturb_test.dir/perturb/perturbation_test.cc.o"
  "CMakeFiles/perturb_test.dir/perturb/perturbation_test.cc.o.d"
  "CMakeFiles/perturb_test.dir/perturb/privacy_quantification_test.cc.o"
  "CMakeFiles/perturb_test.dir/perturb/privacy_quantification_test.cc.o.d"
  "CMakeFiles/perturb_test.dir/perturb/reconstruction_test.cc.o"
  "CMakeFiles/perturb_test.dir/perturb/reconstruction_test.cc.o.d"
  "perturb_test"
  "perturb_test.pdb"
  "perturb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perturb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
