file(REMOVE_RECURSE
  "CMakeFiles/anonymity_test.dir/anonymity/mondrian_test.cc.o"
  "CMakeFiles/anonymity_test.dir/anonymity/mondrian_test.cc.o.d"
  "anonymity_test"
  "anonymity_test.pdb"
  "anonymity_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anonymity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
