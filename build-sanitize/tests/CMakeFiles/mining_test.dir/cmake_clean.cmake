file(REMOVE_RECURSE
  "CMakeFiles/mining_test.dir/mining/apriori_test.cc.o"
  "CMakeFiles/mining_test.dir/mining/apriori_test.cc.o.d"
  "CMakeFiles/mining_test.dir/mining/dbscan_test.cc.o"
  "CMakeFiles/mining_test.dir/mining/dbscan_test.cc.o.d"
  "CMakeFiles/mining_test.dir/mining/decision_tree_test.cc.o"
  "CMakeFiles/mining_test.dir/mining/decision_tree_test.cc.o.d"
  "CMakeFiles/mining_test.dir/mining/evaluation_test.cc.o"
  "CMakeFiles/mining_test.dir/mining/evaluation_test.cc.o.d"
  "CMakeFiles/mining_test.dir/mining/fpgrowth_test.cc.o"
  "CMakeFiles/mining_test.dir/mining/fpgrowth_test.cc.o.d"
  "CMakeFiles/mining_test.dir/mining/kmeans_test.cc.o"
  "CMakeFiles/mining_test.dir/mining/kmeans_test.cc.o.d"
  "CMakeFiles/mining_test.dir/mining/knn_test.cc.o"
  "CMakeFiles/mining_test.dir/mining/knn_test.cc.o.d"
  "CMakeFiles/mining_test.dir/mining/linear_regression_test.cc.o"
  "CMakeFiles/mining_test.dir/mining/linear_regression_test.cc.o.d"
  "CMakeFiles/mining_test.dir/mining/mixture_classifier_test.cc.o"
  "CMakeFiles/mining_test.dir/mining/mixture_classifier_test.cc.o.d"
  "CMakeFiles/mining_test.dir/mining/naive_bayes_test.cc.o"
  "CMakeFiles/mining_test.dir/mining/naive_bayes_test.cc.o.d"
  "CMakeFiles/mining_test.dir/mining/nearest_centroid_test.cc.o"
  "CMakeFiles/mining_test.dir/mining/nearest_centroid_test.cc.o.d"
  "mining_test"
  "mining_test.pdb"
  "mining_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mining_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
