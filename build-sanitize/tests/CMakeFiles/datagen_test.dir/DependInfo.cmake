
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/datagen/gaussian_mixture_test.cc" "tests/CMakeFiles/datagen_test.dir/datagen/gaussian_mixture_test.cc.o" "gcc" "tests/CMakeFiles/datagen_test.dir/datagen/gaussian_mixture_test.cc.o.d"
  "/root/repo/tests/datagen/profiles_test.cc" "tests/CMakeFiles/datagen_test.dir/datagen/profiles_test.cc.o" "gcc" "tests/CMakeFiles/datagen_test.dir/datagen/profiles_test.cc.o.d"
  "/root/repo/tests/datagen/random_covariance_test.cc" "tests/CMakeFiles/datagen_test.dir/datagen/random_covariance_test.cc.o" "gcc" "tests/CMakeFiles/datagen_test.dir/datagen/random_covariance_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-sanitize/src/metrics/CMakeFiles/condensa_metrics.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/perturb/CMakeFiles/condensa_perturb.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/anonymity/CMakeFiles/condensa_anonymity.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/mining/CMakeFiles/condensa_mining.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/core/CMakeFiles/condensa_core.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/datagen/CMakeFiles/condensa_datagen.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/index/CMakeFiles/condensa_index.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/data/CMakeFiles/condensa_data.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/linalg/CMakeFiles/condensa_linalg.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/common/CMakeFiles/condensa_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
