file(REMOVE_RECURSE
  "CMakeFiles/linalg_test.dir/linalg/cholesky_test.cc.o"
  "CMakeFiles/linalg_test.dir/linalg/cholesky_test.cc.o.d"
  "CMakeFiles/linalg_test.dir/linalg/eigen_test.cc.o"
  "CMakeFiles/linalg_test.dir/linalg/eigen_test.cc.o.d"
  "CMakeFiles/linalg_test.dir/linalg/matrix_test.cc.o"
  "CMakeFiles/linalg_test.dir/linalg/matrix_test.cc.o.d"
  "CMakeFiles/linalg_test.dir/linalg/pca_test.cc.o"
  "CMakeFiles/linalg_test.dir/linalg/pca_test.cc.o.d"
  "CMakeFiles/linalg_test.dir/linalg/stats_test.cc.o"
  "CMakeFiles/linalg_test.dir/linalg/stats_test.cc.o.d"
  "CMakeFiles/linalg_test.dir/linalg/vector_test.cc.o"
  "CMakeFiles/linalg_test.dir/linalg/vector_test.cc.o.d"
  "linalg_test"
  "linalg_test.pdb"
  "linalg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linalg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
