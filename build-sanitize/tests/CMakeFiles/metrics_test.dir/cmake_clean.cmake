file(REMOVE_RECURSE
  "CMakeFiles/metrics_test.dir/metrics/clustering_test.cc.o"
  "CMakeFiles/metrics_test.dir/metrics/clustering_test.cc.o.d"
  "CMakeFiles/metrics_test.dir/metrics/compatibility_test.cc.o"
  "CMakeFiles/metrics_test.dir/metrics/compatibility_test.cc.o.d"
  "CMakeFiles/metrics_test.dir/metrics/locality_test.cc.o"
  "CMakeFiles/metrics_test.dir/metrics/locality_test.cc.o.d"
  "CMakeFiles/metrics_test.dir/metrics/privacy_test.cc.o"
  "CMakeFiles/metrics_test.dir/metrics/privacy_test.cc.o.d"
  "metrics_test"
  "metrics_test.pdb"
  "metrics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metrics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
