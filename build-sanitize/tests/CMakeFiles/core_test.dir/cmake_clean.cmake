file(REMOVE_RECURSE
  "CMakeFiles/core_test.dir/core/anonymizer_test.cc.o"
  "CMakeFiles/core_test.dir/core/anonymizer_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/checkpointing_test.cc.o"
  "CMakeFiles/core_test.dir/core/checkpointing_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/condensed_group_set_test.cc.o"
  "CMakeFiles/core_test.dir/core/condensed_group_set_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/dynamic_condenser_test.cc.o"
  "CMakeFiles/core_test.dir/core/dynamic_condenser_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/engine_test.cc.o"
  "CMakeFiles/core_test.dir/core/engine_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/group_statistics_test.cc.o"
  "CMakeFiles/core_test.dir/core/group_statistics_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/serialization_corruption_test.cc.o"
  "CMakeFiles/core_test.dir/core/serialization_corruption_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/serialization_test.cc.o"
  "CMakeFiles/core_test.dir/core/serialization_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/split_test.cc.o"
  "CMakeFiles/core_test.dir/core/split_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/static_condenser_test.cc.o"
  "CMakeFiles/core_test.dir/core/static_condenser_test.cc.o.d"
  "core_test"
  "core_test.pdb"
  "core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
