
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/anonymizer_test.cc" "tests/CMakeFiles/core_test.dir/core/anonymizer_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/anonymizer_test.cc.o.d"
  "/root/repo/tests/core/checkpointing_test.cc" "tests/CMakeFiles/core_test.dir/core/checkpointing_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/checkpointing_test.cc.o.d"
  "/root/repo/tests/core/condensed_group_set_test.cc" "tests/CMakeFiles/core_test.dir/core/condensed_group_set_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/condensed_group_set_test.cc.o.d"
  "/root/repo/tests/core/dynamic_condenser_test.cc" "tests/CMakeFiles/core_test.dir/core/dynamic_condenser_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/dynamic_condenser_test.cc.o.d"
  "/root/repo/tests/core/engine_test.cc" "tests/CMakeFiles/core_test.dir/core/engine_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/engine_test.cc.o.d"
  "/root/repo/tests/core/group_statistics_test.cc" "tests/CMakeFiles/core_test.dir/core/group_statistics_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/group_statistics_test.cc.o.d"
  "/root/repo/tests/core/serialization_corruption_test.cc" "tests/CMakeFiles/core_test.dir/core/serialization_corruption_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/serialization_corruption_test.cc.o.d"
  "/root/repo/tests/core/serialization_test.cc" "tests/CMakeFiles/core_test.dir/core/serialization_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/serialization_test.cc.o.d"
  "/root/repo/tests/core/split_test.cc" "tests/CMakeFiles/core_test.dir/core/split_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/split_test.cc.o.d"
  "/root/repo/tests/core/static_condenser_test.cc" "tests/CMakeFiles/core_test.dir/core/static_condenser_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/static_condenser_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-sanitize/src/metrics/CMakeFiles/condensa_metrics.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/perturb/CMakeFiles/condensa_perturb.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/anonymity/CMakeFiles/condensa_anonymity.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/mining/CMakeFiles/condensa_mining.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/core/CMakeFiles/condensa_core.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/datagen/CMakeFiles/condensa_datagen.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/index/CMakeFiles/condensa_index.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/data/CMakeFiles/condensa_data.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/linalg/CMakeFiles/condensa_linalg.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/common/CMakeFiles/condensa_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
