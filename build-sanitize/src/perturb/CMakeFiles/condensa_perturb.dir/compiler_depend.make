# Empty compiler generated dependencies file for condensa_perturb.
# This may be replaced when dependencies are built.
