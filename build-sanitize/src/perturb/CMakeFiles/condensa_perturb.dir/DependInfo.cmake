
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/perturb/distribution_classifier.cc" "src/perturb/CMakeFiles/condensa_perturb.dir/distribution_classifier.cc.o" "gcc" "src/perturb/CMakeFiles/condensa_perturb.dir/distribution_classifier.cc.o.d"
  "/root/repo/src/perturb/perturbation.cc" "src/perturb/CMakeFiles/condensa_perturb.dir/perturbation.cc.o" "gcc" "src/perturb/CMakeFiles/condensa_perturb.dir/perturbation.cc.o.d"
  "/root/repo/src/perturb/privacy_quantification.cc" "src/perturb/CMakeFiles/condensa_perturb.dir/privacy_quantification.cc.o" "gcc" "src/perturb/CMakeFiles/condensa_perturb.dir/privacy_quantification.cc.o.d"
  "/root/repo/src/perturb/reconstruction.cc" "src/perturb/CMakeFiles/condensa_perturb.dir/reconstruction.cc.o" "gcc" "src/perturb/CMakeFiles/condensa_perturb.dir/reconstruction.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-sanitize/src/mining/CMakeFiles/condensa_mining.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/data/CMakeFiles/condensa_data.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/common/CMakeFiles/condensa_common.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/core/CMakeFiles/condensa_core.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/index/CMakeFiles/condensa_index.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/linalg/CMakeFiles/condensa_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
