file(REMOVE_RECURSE
  "CMakeFiles/condensa_perturb.dir/distribution_classifier.cc.o"
  "CMakeFiles/condensa_perturb.dir/distribution_classifier.cc.o.d"
  "CMakeFiles/condensa_perturb.dir/perturbation.cc.o"
  "CMakeFiles/condensa_perturb.dir/perturbation.cc.o.d"
  "CMakeFiles/condensa_perturb.dir/privacy_quantification.cc.o"
  "CMakeFiles/condensa_perturb.dir/privacy_quantification.cc.o.d"
  "CMakeFiles/condensa_perturb.dir/reconstruction.cc.o"
  "CMakeFiles/condensa_perturb.dir/reconstruction.cc.o.d"
  "libcondensa_perturb.a"
  "libcondensa_perturb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/condensa_perturb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
