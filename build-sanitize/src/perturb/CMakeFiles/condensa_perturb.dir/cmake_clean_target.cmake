file(REMOVE_RECURSE
  "libcondensa_perturb.a"
)
