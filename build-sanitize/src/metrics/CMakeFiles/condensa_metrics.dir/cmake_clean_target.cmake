file(REMOVE_RECURSE
  "libcondensa_metrics.a"
)
