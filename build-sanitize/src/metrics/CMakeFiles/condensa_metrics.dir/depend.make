# Empty dependencies file for condensa_metrics.
# This may be replaced when dependencies are built.
