
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metrics/clustering.cc" "src/metrics/CMakeFiles/condensa_metrics.dir/clustering.cc.o" "gcc" "src/metrics/CMakeFiles/condensa_metrics.dir/clustering.cc.o.d"
  "/root/repo/src/metrics/compatibility.cc" "src/metrics/CMakeFiles/condensa_metrics.dir/compatibility.cc.o" "gcc" "src/metrics/CMakeFiles/condensa_metrics.dir/compatibility.cc.o.d"
  "/root/repo/src/metrics/locality.cc" "src/metrics/CMakeFiles/condensa_metrics.dir/locality.cc.o" "gcc" "src/metrics/CMakeFiles/condensa_metrics.dir/locality.cc.o.d"
  "/root/repo/src/metrics/privacy.cc" "src/metrics/CMakeFiles/condensa_metrics.dir/privacy.cc.o" "gcc" "src/metrics/CMakeFiles/condensa_metrics.dir/privacy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-sanitize/src/core/CMakeFiles/condensa_core.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/index/CMakeFiles/condensa_index.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/data/CMakeFiles/condensa_data.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/linalg/CMakeFiles/condensa_linalg.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/common/CMakeFiles/condensa_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
