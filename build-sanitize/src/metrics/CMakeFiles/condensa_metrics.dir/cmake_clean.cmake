file(REMOVE_RECURSE
  "CMakeFiles/condensa_metrics.dir/clustering.cc.o"
  "CMakeFiles/condensa_metrics.dir/clustering.cc.o.d"
  "CMakeFiles/condensa_metrics.dir/compatibility.cc.o"
  "CMakeFiles/condensa_metrics.dir/compatibility.cc.o.d"
  "CMakeFiles/condensa_metrics.dir/locality.cc.o"
  "CMakeFiles/condensa_metrics.dir/locality.cc.o.d"
  "CMakeFiles/condensa_metrics.dir/privacy.cc.o"
  "CMakeFiles/condensa_metrics.dir/privacy.cc.o.d"
  "libcondensa_metrics.a"
  "libcondensa_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/condensa_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
