# Empty compiler generated dependencies file for condensa_datagen.
# This may be replaced when dependencies are built.
