file(REMOVE_RECURSE
  "CMakeFiles/condensa_datagen.dir/gaussian_mixture.cc.o"
  "CMakeFiles/condensa_datagen.dir/gaussian_mixture.cc.o.d"
  "CMakeFiles/condensa_datagen.dir/profiles.cc.o"
  "CMakeFiles/condensa_datagen.dir/profiles.cc.o.d"
  "CMakeFiles/condensa_datagen.dir/random_covariance.cc.o"
  "CMakeFiles/condensa_datagen.dir/random_covariance.cc.o.d"
  "libcondensa_datagen.a"
  "libcondensa_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/condensa_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
