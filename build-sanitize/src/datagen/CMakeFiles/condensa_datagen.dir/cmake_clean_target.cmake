file(REMOVE_RECURSE
  "libcondensa_datagen.a"
)
