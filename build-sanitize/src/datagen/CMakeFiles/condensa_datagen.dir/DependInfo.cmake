
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datagen/gaussian_mixture.cc" "src/datagen/CMakeFiles/condensa_datagen.dir/gaussian_mixture.cc.o" "gcc" "src/datagen/CMakeFiles/condensa_datagen.dir/gaussian_mixture.cc.o.d"
  "/root/repo/src/datagen/profiles.cc" "src/datagen/CMakeFiles/condensa_datagen.dir/profiles.cc.o" "gcc" "src/datagen/CMakeFiles/condensa_datagen.dir/profiles.cc.o.d"
  "/root/repo/src/datagen/random_covariance.cc" "src/datagen/CMakeFiles/condensa_datagen.dir/random_covariance.cc.o" "gcc" "src/datagen/CMakeFiles/condensa_datagen.dir/random_covariance.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-sanitize/src/data/CMakeFiles/condensa_data.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/linalg/CMakeFiles/condensa_linalg.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/common/CMakeFiles/condensa_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
