file(REMOVE_RECURSE
  "CMakeFiles/condensa_linalg.dir/cholesky.cc.o"
  "CMakeFiles/condensa_linalg.dir/cholesky.cc.o.d"
  "CMakeFiles/condensa_linalg.dir/eigen.cc.o"
  "CMakeFiles/condensa_linalg.dir/eigen.cc.o.d"
  "CMakeFiles/condensa_linalg.dir/matrix.cc.o"
  "CMakeFiles/condensa_linalg.dir/matrix.cc.o.d"
  "CMakeFiles/condensa_linalg.dir/pca.cc.o"
  "CMakeFiles/condensa_linalg.dir/pca.cc.o.d"
  "CMakeFiles/condensa_linalg.dir/stats.cc.o"
  "CMakeFiles/condensa_linalg.dir/stats.cc.o.d"
  "CMakeFiles/condensa_linalg.dir/vector.cc.o"
  "CMakeFiles/condensa_linalg.dir/vector.cc.o.d"
  "libcondensa_linalg.a"
  "libcondensa_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/condensa_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
