
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/linalg/cholesky.cc" "src/linalg/CMakeFiles/condensa_linalg.dir/cholesky.cc.o" "gcc" "src/linalg/CMakeFiles/condensa_linalg.dir/cholesky.cc.o.d"
  "/root/repo/src/linalg/eigen.cc" "src/linalg/CMakeFiles/condensa_linalg.dir/eigen.cc.o" "gcc" "src/linalg/CMakeFiles/condensa_linalg.dir/eigen.cc.o.d"
  "/root/repo/src/linalg/matrix.cc" "src/linalg/CMakeFiles/condensa_linalg.dir/matrix.cc.o" "gcc" "src/linalg/CMakeFiles/condensa_linalg.dir/matrix.cc.o.d"
  "/root/repo/src/linalg/pca.cc" "src/linalg/CMakeFiles/condensa_linalg.dir/pca.cc.o" "gcc" "src/linalg/CMakeFiles/condensa_linalg.dir/pca.cc.o.d"
  "/root/repo/src/linalg/stats.cc" "src/linalg/CMakeFiles/condensa_linalg.dir/stats.cc.o" "gcc" "src/linalg/CMakeFiles/condensa_linalg.dir/stats.cc.o.d"
  "/root/repo/src/linalg/vector.cc" "src/linalg/CMakeFiles/condensa_linalg.dir/vector.cc.o" "gcc" "src/linalg/CMakeFiles/condensa_linalg.dir/vector.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-sanitize/src/common/CMakeFiles/condensa_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
