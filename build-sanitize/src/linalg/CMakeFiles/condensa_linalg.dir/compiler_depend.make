# Empty compiler generated dependencies file for condensa_linalg.
# This may be replaced when dependencies are built.
