file(REMOVE_RECURSE
  "libcondensa_linalg.a"
)
