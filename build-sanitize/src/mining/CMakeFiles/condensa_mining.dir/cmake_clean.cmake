file(REMOVE_RECURSE
  "CMakeFiles/condensa_mining.dir/apriori.cc.o"
  "CMakeFiles/condensa_mining.dir/apriori.cc.o.d"
  "CMakeFiles/condensa_mining.dir/dbscan.cc.o"
  "CMakeFiles/condensa_mining.dir/dbscan.cc.o.d"
  "CMakeFiles/condensa_mining.dir/decision_tree.cc.o"
  "CMakeFiles/condensa_mining.dir/decision_tree.cc.o.d"
  "CMakeFiles/condensa_mining.dir/evaluation.cc.o"
  "CMakeFiles/condensa_mining.dir/evaluation.cc.o.d"
  "CMakeFiles/condensa_mining.dir/fpgrowth.cc.o"
  "CMakeFiles/condensa_mining.dir/fpgrowth.cc.o.d"
  "CMakeFiles/condensa_mining.dir/kmeans.cc.o"
  "CMakeFiles/condensa_mining.dir/kmeans.cc.o.d"
  "CMakeFiles/condensa_mining.dir/knn.cc.o"
  "CMakeFiles/condensa_mining.dir/knn.cc.o.d"
  "CMakeFiles/condensa_mining.dir/linear_regression.cc.o"
  "CMakeFiles/condensa_mining.dir/linear_regression.cc.o.d"
  "CMakeFiles/condensa_mining.dir/mixture_classifier.cc.o"
  "CMakeFiles/condensa_mining.dir/mixture_classifier.cc.o.d"
  "CMakeFiles/condensa_mining.dir/naive_bayes.cc.o"
  "CMakeFiles/condensa_mining.dir/naive_bayes.cc.o.d"
  "CMakeFiles/condensa_mining.dir/nearest_centroid.cc.o"
  "CMakeFiles/condensa_mining.dir/nearest_centroid.cc.o.d"
  "libcondensa_mining.a"
  "libcondensa_mining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/condensa_mining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
