# Empty dependencies file for condensa_mining.
# This may be replaced when dependencies are built.
