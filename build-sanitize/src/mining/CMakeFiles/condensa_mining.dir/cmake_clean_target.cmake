file(REMOVE_RECURSE
  "libcondensa_mining.a"
)
