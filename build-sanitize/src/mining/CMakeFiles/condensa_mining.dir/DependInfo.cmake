
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mining/apriori.cc" "src/mining/CMakeFiles/condensa_mining.dir/apriori.cc.o" "gcc" "src/mining/CMakeFiles/condensa_mining.dir/apriori.cc.o.d"
  "/root/repo/src/mining/dbscan.cc" "src/mining/CMakeFiles/condensa_mining.dir/dbscan.cc.o" "gcc" "src/mining/CMakeFiles/condensa_mining.dir/dbscan.cc.o.d"
  "/root/repo/src/mining/decision_tree.cc" "src/mining/CMakeFiles/condensa_mining.dir/decision_tree.cc.o" "gcc" "src/mining/CMakeFiles/condensa_mining.dir/decision_tree.cc.o.d"
  "/root/repo/src/mining/evaluation.cc" "src/mining/CMakeFiles/condensa_mining.dir/evaluation.cc.o" "gcc" "src/mining/CMakeFiles/condensa_mining.dir/evaluation.cc.o.d"
  "/root/repo/src/mining/fpgrowth.cc" "src/mining/CMakeFiles/condensa_mining.dir/fpgrowth.cc.o" "gcc" "src/mining/CMakeFiles/condensa_mining.dir/fpgrowth.cc.o.d"
  "/root/repo/src/mining/kmeans.cc" "src/mining/CMakeFiles/condensa_mining.dir/kmeans.cc.o" "gcc" "src/mining/CMakeFiles/condensa_mining.dir/kmeans.cc.o.d"
  "/root/repo/src/mining/knn.cc" "src/mining/CMakeFiles/condensa_mining.dir/knn.cc.o" "gcc" "src/mining/CMakeFiles/condensa_mining.dir/knn.cc.o.d"
  "/root/repo/src/mining/linear_regression.cc" "src/mining/CMakeFiles/condensa_mining.dir/linear_regression.cc.o" "gcc" "src/mining/CMakeFiles/condensa_mining.dir/linear_regression.cc.o.d"
  "/root/repo/src/mining/mixture_classifier.cc" "src/mining/CMakeFiles/condensa_mining.dir/mixture_classifier.cc.o" "gcc" "src/mining/CMakeFiles/condensa_mining.dir/mixture_classifier.cc.o.d"
  "/root/repo/src/mining/naive_bayes.cc" "src/mining/CMakeFiles/condensa_mining.dir/naive_bayes.cc.o" "gcc" "src/mining/CMakeFiles/condensa_mining.dir/naive_bayes.cc.o.d"
  "/root/repo/src/mining/nearest_centroid.cc" "src/mining/CMakeFiles/condensa_mining.dir/nearest_centroid.cc.o" "gcc" "src/mining/CMakeFiles/condensa_mining.dir/nearest_centroid.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-sanitize/src/core/CMakeFiles/condensa_core.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/index/CMakeFiles/condensa_index.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/data/CMakeFiles/condensa_data.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/linalg/CMakeFiles/condensa_linalg.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/common/CMakeFiles/condensa_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
