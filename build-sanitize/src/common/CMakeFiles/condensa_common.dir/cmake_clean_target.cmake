file(REMOVE_RECURSE
  "libcondensa_common.a"
)
