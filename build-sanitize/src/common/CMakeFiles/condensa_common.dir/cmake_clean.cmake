file(REMOVE_RECURSE
  "CMakeFiles/condensa_common.dir/failpoint.cc.o"
  "CMakeFiles/condensa_common.dir/failpoint.cc.o.d"
  "CMakeFiles/condensa_common.dir/io.cc.o"
  "CMakeFiles/condensa_common.dir/io.cc.o.d"
  "CMakeFiles/condensa_common.dir/random.cc.o"
  "CMakeFiles/condensa_common.dir/random.cc.o.d"
  "CMakeFiles/condensa_common.dir/status.cc.o"
  "CMakeFiles/condensa_common.dir/status.cc.o.d"
  "CMakeFiles/condensa_common.dir/string_util.cc.o"
  "CMakeFiles/condensa_common.dir/string_util.cc.o.d"
  "libcondensa_common.a"
  "libcondensa_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/condensa_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
