# Empty compiler generated dependencies file for condensa_common.
# This may be replaced when dependencies are built.
