# Empty dependencies file for condensa_anonymity.
# This may be replaced when dependencies are built.
