file(REMOVE_RECURSE
  "libcondensa_anonymity.a"
)
