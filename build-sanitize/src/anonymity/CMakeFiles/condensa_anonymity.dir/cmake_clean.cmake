file(REMOVE_RECURSE
  "CMakeFiles/condensa_anonymity.dir/mondrian.cc.o"
  "CMakeFiles/condensa_anonymity.dir/mondrian.cc.o.d"
  "libcondensa_anonymity.a"
  "libcondensa_anonymity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/condensa_anonymity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
