
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/anonymizer.cc" "src/core/CMakeFiles/condensa_core.dir/anonymizer.cc.o" "gcc" "src/core/CMakeFiles/condensa_core.dir/anonymizer.cc.o.d"
  "/root/repo/src/core/checkpointing.cc" "src/core/CMakeFiles/condensa_core.dir/checkpointing.cc.o" "gcc" "src/core/CMakeFiles/condensa_core.dir/checkpointing.cc.o.d"
  "/root/repo/src/core/condensed_group_set.cc" "src/core/CMakeFiles/condensa_core.dir/condensed_group_set.cc.o" "gcc" "src/core/CMakeFiles/condensa_core.dir/condensed_group_set.cc.o.d"
  "/root/repo/src/core/dynamic_condenser.cc" "src/core/CMakeFiles/condensa_core.dir/dynamic_condenser.cc.o" "gcc" "src/core/CMakeFiles/condensa_core.dir/dynamic_condenser.cc.o.d"
  "/root/repo/src/core/engine.cc" "src/core/CMakeFiles/condensa_core.dir/engine.cc.o" "gcc" "src/core/CMakeFiles/condensa_core.dir/engine.cc.o.d"
  "/root/repo/src/core/group_statistics.cc" "src/core/CMakeFiles/condensa_core.dir/group_statistics.cc.o" "gcc" "src/core/CMakeFiles/condensa_core.dir/group_statistics.cc.o.d"
  "/root/repo/src/core/serialization.cc" "src/core/CMakeFiles/condensa_core.dir/serialization.cc.o" "gcc" "src/core/CMakeFiles/condensa_core.dir/serialization.cc.o.d"
  "/root/repo/src/core/split.cc" "src/core/CMakeFiles/condensa_core.dir/split.cc.o" "gcc" "src/core/CMakeFiles/condensa_core.dir/split.cc.o.d"
  "/root/repo/src/core/static_condenser.cc" "src/core/CMakeFiles/condensa_core.dir/static_condenser.cc.o" "gcc" "src/core/CMakeFiles/condensa_core.dir/static_condenser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-sanitize/src/data/CMakeFiles/condensa_data.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/linalg/CMakeFiles/condensa_linalg.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/common/CMakeFiles/condensa_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
