file(REMOVE_RECURSE
  "libcondensa_core.a"
)
