# Empty dependencies file for condensa_core.
# This may be replaced when dependencies are built.
