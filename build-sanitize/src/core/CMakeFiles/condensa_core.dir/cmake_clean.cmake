file(REMOVE_RECURSE
  "CMakeFiles/condensa_core.dir/anonymizer.cc.o"
  "CMakeFiles/condensa_core.dir/anonymizer.cc.o.d"
  "CMakeFiles/condensa_core.dir/checkpointing.cc.o"
  "CMakeFiles/condensa_core.dir/checkpointing.cc.o.d"
  "CMakeFiles/condensa_core.dir/condensed_group_set.cc.o"
  "CMakeFiles/condensa_core.dir/condensed_group_set.cc.o.d"
  "CMakeFiles/condensa_core.dir/dynamic_condenser.cc.o"
  "CMakeFiles/condensa_core.dir/dynamic_condenser.cc.o.d"
  "CMakeFiles/condensa_core.dir/engine.cc.o"
  "CMakeFiles/condensa_core.dir/engine.cc.o.d"
  "CMakeFiles/condensa_core.dir/group_statistics.cc.o"
  "CMakeFiles/condensa_core.dir/group_statistics.cc.o.d"
  "CMakeFiles/condensa_core.dir/serialization.cc.o"
  "CMakeFiles/condensa_core.dir/serialization.cc.o.d"
  "CMakeFiles/condensa_core.dir/split.cc.o"
  "CMakeFiles/condensa_core.dir/split.cc.o.d"
  "CMakeFiles/condensa_core.dir/static_condenser.cc.o"
  "CMakeFiles/condensa_core.dir/static_condenser.cc.o.d"
  "libcondensa_core.a"
  "libcondensa_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/condensa_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
