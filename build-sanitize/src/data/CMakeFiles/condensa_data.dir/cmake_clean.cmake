file(REMOVE_RECURSE
  "CMakeFiles/condensa_data.dir/csv.cc.o"
  "CMakeFiles/condensa_data.dir/csv.cc.o.d"
  "CMakeFiles/condensa_data.dir/dataset.cc.o"
  "CMakeFiles/condensa_data.dir/dataset.cc.o.d"
  "CMakeFiles/condensa_data.dir/split.cc.o"
  "CMakeFiles/condensa_data.dir/split.cc.o.d"
  "CMakeFiles/condensa_data.dir/transform.cc.o"
  "CMakeFiles/condensa_data.dir/transform.cc.o.d"
  "libcondensa_data.a"
  "libcondensa_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/condensa_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
