# Empty dependencies file for condensa_data.
# This may be replaced when dependencies are built.
