file(REMOVE_RECURSE
  "libcondensa_data.a"
)
