file(REMOVE_RECURSE
  "libcondensa_index.a"
)
