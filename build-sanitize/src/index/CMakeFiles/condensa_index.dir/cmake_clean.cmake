file(REMOVE_RECURSE
  "CMakeFiles/condensa_index.dir/kdtree.cc.o"
  "CMakeFiles/condensa_index.dir/kdtree.cc.o.d"
  "libcondensa_index.a"
  "libcondensa_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/condensa_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
