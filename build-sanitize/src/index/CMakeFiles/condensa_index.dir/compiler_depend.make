# Empty compiler generated dependencies file for condensa_index.
# This may be replaced when dependencies are built.
