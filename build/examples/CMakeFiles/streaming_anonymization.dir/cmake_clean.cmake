file(REMOVE_RECURSE
  "CMakeFiles/streaming_anonymization.dir/streaming_anonymization.cpp.o"
  "CMakeFiles/streaming_anonymization.dir/streaming_anonymization.cpp.o.d"
  "streaming_anonymization"
  "streaming_anonymization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_anonymization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
