# Empty dependencies file for streaming_anonymization.
# This may be replaced when dependencies are built.
