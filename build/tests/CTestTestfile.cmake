# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/linalg_test[1]_include.cmake")
include("/root/repo/build/tests/index_test[1]_include.cmake")
include("/root/repo/build/tests/anonymity_test[1]_include.cmake")
include("/root/repo/build/tests/data_test[1]_include.cmake")
include("/root/repo/build/tests/datagen_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/mining_test[1]_include.cmake")
include("/root/repo/build/tests/perturb_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/bench_harness_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
