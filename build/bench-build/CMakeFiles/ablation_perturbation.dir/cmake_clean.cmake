file(REMOVE_RECURSE
  "../bench/ablation_perturbation"
  "../bench/ablation_perturbation.pdb"
  "CMakeFiles/ablation_perturbation.dir/ablation_perturbation_main.cc.o"
  "CMakeFiles/ablation_perturbation.dir/ablation_perturbation_main.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_perturbation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
