file(REMOVE_RECURSE
  "../bench/ablation_stream_order"
  "../bench/ablation_stream_order.pdb"
  "CMakeFiles/ablation_stream_order.dir/ablation_stream_order_main.cc.o"
  "CMakeFiles/ablation_stream_order.dir/ablation_stream_order_main.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_stream_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
