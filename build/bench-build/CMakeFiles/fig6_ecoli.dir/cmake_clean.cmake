file(REMOVE_RECURSE
  "../bench/fig6_ecoli"
  "../bench/fig6_ecoli.pdb"
  "CMakeFiles/fig6_ecoli.dir/fig6_ecoli_main.cc.o"
  "CMakeFiles/fig6_ecoli.dir/fig6_ecoli_main.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_ecoli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
