# Empty dependencies file for fig6_ecoli.
# This may be replaced when dependencies are built.
