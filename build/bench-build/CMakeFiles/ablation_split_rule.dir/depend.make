# Empty dependencies file for ablation_split_rule.
# This may be replaced when dependencies are built.
