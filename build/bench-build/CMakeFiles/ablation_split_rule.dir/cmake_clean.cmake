file(REMOVE_RECURSE
  "../bench/ablation_split_rule"
  "../bench/ablation_split_rule.pdb"
  "CMakeFiles/ablation_split_rule.dir/ablation_split_rule_main.cc.o"
  "CMakeFiles/ablation_split_rule.dir/ablation_split_rule_main.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_split_rule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
