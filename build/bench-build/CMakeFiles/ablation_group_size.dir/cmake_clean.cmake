file(REMOVE_RECURSE
  "../bench/ablation_group_size"
  "../bench/ablation_group_size.pdb"
  "CMakeFiles/ablation_group_size.dir/ablation_group_size_main.cc.o"
  "CMakeFiles/ablation_group_size.dir/ablation_group_size_main.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_group_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
