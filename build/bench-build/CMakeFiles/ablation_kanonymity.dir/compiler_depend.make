# Empty compiler generated dependencies file for ablation_kanonymity.
# This may be replaced when dependencies are built.
