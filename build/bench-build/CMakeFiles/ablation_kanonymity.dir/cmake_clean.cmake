file(REMOVE_RECURSE
  "../bench/ablation_kanonymity"
  "../bench/ablation_kanonymity.pdb"
  "CMakeFiles/ablation_kanonymity.dir/ablation_kanonymity_main.cc.o"
  "CMakeFiles/ablation_kanonymity.dir/ablation_kanonymity_main.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_kanonymity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
