file(REMOVE_RECURSE
  "../bench/ablation_bootstrap"
  "../bench/ablation_bootstrap.pdb"
  "CMakeFiles/ablation_bootstrap.dir/ablation_bootstrap_main.cc.o"
  "CMakeFiles/ablation_bootstrap.dir/ablation_bootstrap_main.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_bootstrap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
