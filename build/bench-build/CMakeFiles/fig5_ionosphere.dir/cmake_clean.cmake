file(REMOVE_RECURSE
  "../bench/fig5_ionosphere"
  "../bench/fig5_ionosphere.pdb"
  "CMakeFiles/fig5_ionosphere.dir/fig5_ionosphere_main.cc.o"
  "CMakeFiles/fig5_ionosphere.dir/fig5_ionosphere_main.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_ionosphere.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
