# Empty dependencies file for fig5_ionosphere.
# This may be replaced when dependencies are built.
