# Empty compiler generated dependencies file for algorithms_suite.
# This may be replaced when dependencies are built.
