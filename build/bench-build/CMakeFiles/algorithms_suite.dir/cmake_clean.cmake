file(REMOVE_RECURSE
  "../bench/algorithms_suite"
  "../bench/algorithms_suite.pdb"
  "CMakeFiles/algorithms_suite.dir/algorithms_suite_main.cc.o"
  "CMakeFiles/algorithms_suite.dir/algorithms_suite_main.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algorithms_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
