# Empty compiler generated dependencies file for structure_suite.
# This may be replaced when dependencies are built.
