file(REMOVE_RECURSE
  "../bench/structure_suite"
  "../bench/structure_suite.pdb"
  "CMakeFiles/structure_suite.dir/structure_suite_main.cc.o"
  "CMakeFiles/structure_suite.dir/structure_suite_main.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/structure_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
