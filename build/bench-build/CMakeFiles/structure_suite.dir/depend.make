# Empty dependencies file for structure_suite.
# This may be replaced when dependencies are built.
