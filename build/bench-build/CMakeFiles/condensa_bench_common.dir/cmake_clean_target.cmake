file(REMOVE_RECURSE
  "libcondensa_bench_common.a"
)
