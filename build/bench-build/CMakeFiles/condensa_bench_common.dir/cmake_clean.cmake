file(REMOVE_RECURSE
  "CMakeFiles/condensa_bench_common.dir/figure_common.cc.o"
  "CMakeFiles/condensa_bench_common.dir/figure_common.cc.o.d"
  "libcondensa_bench_common.a"
  "libcondensa_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/condensa_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
