# Empty compiler generated dependencies file for condensa_bench_common.
# This may be replaced when dependencies are built.
