file(REMOVE_RECURSE
  "../bench/ablation_sampler"
  "../bench/ablation_sampler.pdb"
  "CMakeFiles/ablation_sampler.dir/ablation_sampler_main.cc.o"
  "CMakeFiles/ablation_sampler.dir/ablation_sampler_main.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sampler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
