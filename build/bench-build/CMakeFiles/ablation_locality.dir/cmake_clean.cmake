file(REMOVE_RECURSE
  "../bench/ablation_locality"
  "../bench/ablation_locality.pdb"
  "CMakeFiles/ablation_locality.dir/ablation_locality_main.cc.o"
  "CMakeFiles/ablation_locality.dir/ablation_locality_main.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_locality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
