# Empty dependencies file for fig8_abalone.
# This may be replaced when dependencies are built.
