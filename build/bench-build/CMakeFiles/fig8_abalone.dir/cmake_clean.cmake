file(REMOVE_RECURSE
  "../bench/fig8_abalone"
  "../bench/fig8_abalone.pdb"
  "CMakeFiles/fig8_abalone.dir/fig8_abalone_main.cc.o"
  "CMakeFiles/fig8_abalone.dir/fig8_abalone_main.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_abalone.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
