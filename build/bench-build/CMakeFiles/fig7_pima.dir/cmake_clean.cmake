file(REMOVE_RECURSE
  "../bench/fig7_pima"
  "../bench/fig7_pima.pdb"
  "CMakeFiles/fig7_pima.dir/fig7_pima_main.cc.o"
  "CMakeFiles/fig7_pima.dir/fig7_pima_main.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_pima.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
