# Empty compiler generated dependencies file for fig7_pima.
# This may be replaced when dependencies are built.
