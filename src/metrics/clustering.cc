#include "metrics/clustering.h"

#include <algorithm>
#include <map>
#include <utility>

namespace condensa::metrics {
namespace {

double Choose2(double n) { return n * (n - 1.0) / 2.0; }

}  // namespace

StatusOr<double> AdjustedRandIndex(const std::vector<std::size_t>& a,
                                   const std::vector<std::size_t>& b) {
  if (a.empty() || a.size() != b.size()) {
    return InvalidArgumentError(
        "labelings must be non-empty and the same length");
  }
  const std::size_t n = a.size();

  // Contingency table and marginals.
  std::map<std::pair<std::size_t, std::size_t>, std::size_t> joint;
  std::map<std::size_t, std::size_t> rows, cols;
  for (std::size_t i = 0; i < n; ++i) {
    ++joint[{a[i], b[i]}];
    ++rows[a[i]];
    ++cols[b[i]];
  }

  double sum_joint = 0.0;
  for (const auto& [cell, count] : joint) {
    sum_joint += Choose2(static_cast<double>(count));
  }
  double sum_rows = 0.0;
  for (const auto& [label, count] : rows) {
    sum_rows += Choose2(static_cast<double>(count));
  }
  double sum_cols = 0.0;
  for (const auto& [label, count] : cols) {
    sum_cols += Choose2(static_cast<double>(count));
  }

  double total_pairs = Choose2(static_cast<double>(n));
  if (total_pairs == 0.0) {
    return 1.0;  // single record: trivially identical partitions
  }
  double expected = sum_rows * sum_cols / total_pairs;
  double max_index = 0.5 * (sum_rows + sum_cols);
  double denominator = max_index - expected;
  if (denominator == 0.0) {
    // Both partitions are all-singletons or all-one-cluster; identical by
    // construction when the index numerator is also zero.
    return 1.0;
  }
  return (sum_joint - expected) / denominator;
}

StatusOr<double> ClusterPurity(const std::vector<std::size_t>& clusters,
                               const std::vector<int>& labels) {
  if (clusters.empty() || clusters.size() != labels.size()) {
    return InvalidArgumentError(
        "clusters and labels must be non-empty and the same length");
  }
  std::map<std::size_t, std::map<int, std::size_t>> per_cluster;
  for (std::size_t i = 0; i < clusters.size(); ++i) {
    ++per_cluster[clusters[i]][labels[i]];
  }
  std::size_t matched = 0;
  for (const auto& [cluster, counts] : per_cluster) {
    std::size_t dominant = 0;
    for (const auto& [label, count] : counts) {
      dominant = std::max(dominant, count);
    }
    matched += dominant;
  }
  return static_cast<double>(matched) /
         static_cast<double>(clusters.size());
}

}  // namespace condensa::metrics
