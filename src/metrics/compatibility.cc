#include "metrics/compatibility.h"

#include <cmath>

#include "linalg/stats.h"

namespace condensa::metrics {

StatusOr<double> CovarianceCompatibility(const linalg::Matrix& original,
                                         const linalg::Matrix& anonymized) {
  if (original.empty() || anonymized.empty()) {
    return InvalidArgumentError("empty covariance matrix");
  }
  if (original.rows() != original.cols() ||
      original.rows() != anonymized.rows() ||
      original.cols() != anonymized.cols()) {
    return InvalidArgumentError("covariance shape mismatch");
  }
  const std::size_t d = original.rows();
  if (d < 2) {
    return InvalidArgumentError(
        "need at least 2 dimensions to correlate covariance entries");
  }
  std::vector<double> o_entries;
  std::vector<double> p_entries;
  o_entries.reserve(d * (d + 1) / 2);
  p_entries.reserve(d * (d + 1) / 2);
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = i; j < d; ++j) {
      o_entries.push_back(original(i, j));
      p_entries.push_back(anonymized(i, j));
    }
  }
  return linalg::PearsonCorrelation(o_entries, p_entries);
}

StatusOr<double> CovarianceCompatibility(const data::Dataset& original,
                                         const data::Dataset& anonymized) {
  if (original.empty() || anonymized.empty()) {
    return InvalidArgumentError("empty dataset");
  }
  if (original.dim() != anonymized.dim()) {
    return InvalidArgumentError("dataset dimension mismatch");
  }
  return CovarianceCompatibility(original.Covariance(),
                                 anonymized.Covariance());
}

StatusOr<double> CovarianceRelativeError(const linalg::Matrix& original,
                                         const linalg::Matrix& anonymized) {
  if (original.empty() || anonymized.empty()) {
    return InvalidArgumentError("empty covariance matrix");
  }
  if (original.rows() != anonymized.rows() ||
      original.cols() != anonymized.cols()) {
    return InvalidArgumentError("covariance shape mismatch");
  }
  linalg::Matrix zero(original.rows(), original.cols());
  double base = linalg::FrobeniusDistance(original, zero);
  if (base <= 0.0) {
    return FailedPreconditionError("original covariance is zero");
  }
  return linalg::FrobeniusDistance(original, anonymized) / base;
}

StatusOr<double> MeanDrift(const data::Dataset& original,
                           const data::Dataset& anonymized) {
  if (original.empty() || anonymized.empty()) {
    return InvalidArgumentError("empty dataset");
  }
  if (original.dim() != anonymized.dim()) {
    return InvalidArgumentError("dataset dimension mismatch");
  }
  linalg::Vector a = original.Mean();
  linalg::Vector b = anonymized.Mean();
  double drift = 0.0;
  for (std::size_t j = 0; j < a.dim(); ++j) {
    drift = std::max(drift, std::abs(a[j] - b[j]));
  }
  return drift;
}

}  // namespace condensa::metrics
