// Statistical-compatibility measures between original and anonymized data.
//
// The paper's evaluation measure (Section 4): let o_ij and p_ij be the
// (i, j) covariance entries of the original and the anonymized data; the
// covariance compatibility coefficient μ is the Pearson correlation of the
// paired entries across all dimension pairs. μ = 1 means identical
// second-order structure, μ = −1 perfectly inverted structure.

#ifndef CONDENSA_METRICS_COMPATIBILITY_H_
#define CONDENSA_METRICS_COMPATIBILITY_H_

#include <vector>

#include "common/status.h"
#include "data/dataset.h"
#include "linalg/matrix.h"

namespace condensa::metrics {

// μ between two covariance matrices of equal dimension: Pearson
// correlation over the upper triangle including the diagonal (the
// matrices are symmetric, so each unordered pair contributes once). Fails
// for empty or mismatched matrices, and for 1x1 matrices (no pairs to
// correlate).
StatusOr<double> CovarianceCompatibility(const linalg::Matrix& original,
                                         const linalg::Matrix& anonymized);

// Convenience: μ between the covariance matrices of two datasets.
StatusOr<double> CovarianceCompatibility(const data::Dataset& original,
                                         const data::Dataset& anonymized);

// Relative Frobenius error ||C_orig − C_anon||_F / ||C_orig||_F, a
// complementary magnitude-sensitive view (μ is scale-invariant).
StatusOr<double> CovarianceRelativeError(const linalg::Matrix& original,
                                         const linalg::Matrix& anonymized);

// Max absolute difference between the mean vectors of two datasets.
StatusOr<double> MeanDrift(const data::Dataset& original,
                           const data::Dataset& anonymized);

}  // namespace condensa::metrics

#endif  // CONDENSA_METRICS_COMPATIBILITY_H_
