#include "metrics/privacy.h"

#include <cmath>
#include <limits>

#include "linalg/vector.h"

namespace condensa::metrics {
namespace {

// Distance from `query` to the nearest record of `dataset`, optionally
// skipping index `skip` (for self-exclusion).
double NearestDistance(const data::Dataset& dataset,
                       const linalg::Vector& query, std::size_t skip) {
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    if (i == skip) continue;
    best = std::min(best, linalg::SquaredDistance(dataset.record(i), query));
  }
  return std::sqrt(best);
}

constexpr std::size_t kNoSkip = static_cast<std::size_t>(-1);

}  // namespace

StatusOr<LinkageReport> EvaluateLinkage(const data::Dataset& original,
                                        const data::Dataset& anonymized) {
  if (original.size() < 2 || anonymized.empty()) {
    return InvalidArgumentError(
        "linkage needs >= 2 original and >= 1 anonymized records");
  }
  if (original.dim() != anonymized.dim()) {
    return InvalidArgumentError("dataset dimension mismatch");
  }

  LinkageReport report;
  std::size_t pinpointed = 0;
  for (std::size_t i = 0; i < original.size(); ++i) {
    const linalg::Vector& record = original.record(i);
    double d_anon = NearestDistance(anonymized, record, kNoSkip);
    double d_orig = NearestDistance(original, record, i);
    report.mean_nearest_anonymized_distance += d_anon;
    report.mean_nearest_original_distance += d_orig;
    if (d_anon < d_orig) ++pinpointed;
  }
  const double n = static_cast<double>(original.size());
  report.mean_nearest_anonymized_distance /= n;
  report.mean_nearest_original_distance /= n;
  report.distance_gain =
      report.mean_nearest_original_distance > 0.0
          ? report.mean_nearest_anonymized_distance /
                report.mean_nearest_original_distance
          : std::numeric_limits<double>::infinity();
  report.pinpointed_fraction = static_cast<double>(pinpointed) / n;
  return report;
}

StatusOr<double> ExactLeakageRate(const data::Dataset& original,
                                  const data::Dataset& anonymized,
                                  double tolerance) {
  if (original.empty() || anonymized.empty()) {
    return InvalidArgumentError("empty dataset");
  }
  if (original.dim() != anonymized.dim()) {
    return InvalidArgumentError("dataset dimension mismatch");
  }
  if (tolerance < 0.0) {
    return InvalidArgumentError("tolerance must be non-negative");
  }
  std::size_t leaked = 0;
  for (std::size_t i = 0; i < original.size(); ++i) {
    for (std::size_t j = 0; j < anonymized.size(); ++j) {
      if (linalg::ApproxEqual(original.record(i), anonymized.record(j),
                              tolerance)) {
        ++leaked;
        break;
      }
    }
  }
  return static_cast<double>(leaked) / static_cast<double>(original.size());
}

}  // namespace condensa::metrics
