#include "metrics/privacy.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "linalg/vector.h"
#include "simd/distance.h"
#include "simd/record_block.h"

namespace condensa::metrics {
namespace {

// Distance from `query` to the nearest record in `block`, optionally
// skipping index `skip` (for self-exclusion). One batch-kernel call into
// `dist` (pre-sized to block.size()); the kernel's distances are
// bit-identical to the per-record linalg::SquaredDistance loop this
// replaces, and dimensions were validated once when the caller built the
// block — no per-record checks.
double NearestDistance(const simd::RecordBlock& block,
                       std::vector<double>& dist,
                       const linalg::Vector& query, std::size_t skip) {
  simd::SquaredDistanceBatch(block, query.data(), dist.data());
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < block.size(); ++i) {
    if (i == skip) continue;
    best = std::min(best, dist[i]);
  }
  return std::sqrt(best);
}

constexpr std::size_t kNoSkip = static_cast<std::size_t>(-1);

}  // namespace

StatusOr<LinkageReport> EvaluateLinkage(const data::Dataset& original,
                                        const data::Dataset& anonymized) {
  if (original.size() < 2 || anonymized.empty()) {
    return InvalidArgumentError(
        "linkage needs >= 2 original and >= 1 anonymized records");
  }
  if (original.dim() != anonymized.dim()) {
    return InvalidArgumentError("dataset dimension mismatch");
  }

  const simd::RecordBlock original_block =
      simd::RecordBlock::FromVectors(original.records());
  const simd::RecordBlock anonymized_block =
      simd::RecordBlock::FromVectors(anonymized.records());
  std::vector<double> dist(
      std::max(original.size(), anonymized.size()));

  LinkageReport report;
  std::size_t pinpointed = 0;
  for (std::size_t i = 0; i < original.size(); ++i) {
    const linalg::Vector& record = original.record(i);
    double d_anon = NearestDistance(anonymized_block, dist, record, kNoSkip);
    double d_orig = NearestDistance(original_block, dist, record, i);
    report.mean_nearest_anonymized_distance += d_anon;
    report.mean_nearest_original_distance += d_orig;
    if (d_anon < d_orig) ++pinpointed;
  }
  const double n = static_cast<double>(original.size());
  report.mean_nearest_anonymized_distance /= n;
  report.mean_nearest_original_distance /= n;
  report.distance_gain =
      report.mean_nearest_original_distance > 0.0
          ? report.mean_nearest_anonymized_distance /
                report.mean_nearest_original_distance
          : std::numeric_limits<double>::infinity();
  report.pinpointed_fraction = static_cast<double>(pinpointed) / n;
  return report;
}

StatusOr<double> ExactLeakageRate(const data::Dataset& original,
                                  const data::Dataset& anonymized,
                                  double tolerance) {
  if (original.empty() || anonymized.empty()) {
    return InvalidArgumentError("empty dataset");
  }
  if (original.dim() != anonymized.dim()) {
    return InvalidArgumentError("dataset dimension mismatch");
  }
  if (tolerance < 0.0) {
    return InvalidArgumentError("tolerance must be non-negative");
  }
  std::size_t leaked = 0;
  for (std::size_t i = 0; i < original.size(); ++i) {
    for (std::size_t j = 0; j < anonymized.size(); ++j) {
      if (linalg::ApproxEqual(original.record(i), anonymized.record(j),
                              tolerance)) {
        ++leaked;
        break;
      }
    }
  }
  return static_cast<double>(leaked) / static_cast<double>(original.size());
}

}  // namespace condensa::metrics
