// Privacy measures over an anonymized release.
//
// The paper's privacy notion is k-indistinguishability: every record was
// condensed with at least k−1 others, so its regenerated surrogates cannot
// be traced below the group level. The group-size accounting lives in
// core::PrivacySummary / AnonymizationResult; this header adds empirical
// attack-style measures on the released records themselves.

#ifndef CONDENSA_METRICS_PRIVACY_H_
#define CONDENSA_METRICS_PRIVACY_H_

#include "common/status.h"
#include "data/dataset.h"

namespace condensa::metrics {

struct LinkageReport {
  // Mean distance from each original record to its nearest anonymized
  // record.
  double mean_nearest_anonymized_distance = 0.0;
  // Mean distance from each original record to its nearest *other*
  // original record (the baseline resolution of the data).
  double mean_nearest_original_distance = 0.0;
  // Ratio of the two: >= 1 means an adversary holding the release cannot
  // localize a target record any better than the data's own inter-record
  // spacing already allows. Grows with the condensation level k.
  double distance_gain = 0.0;
  // Fraction of original records whose nearest anonymized record is
  // closer than their nearest original neighbour — records that are
  // "pinpointed" by the release more precisely than by the population.
  double pinpointed_fraction = 0.0;
};

// Distance-based record-linkage attack summary. Requires non-empty
// datasets of equal dimension; `original` needs >= 2 records.
StatusOr<LinkageReport> EvaluateLinkage(const data::Dataset& original,
                                        const data::Dataset& anonymized);

// Fraction of original records that appear verbatim (within `tolerance`
// in every coordinate) in the anonymized release — should be ~0 for any
// k > 1 and ~1 for static condensation with k = 1.
StatusOr<double> ExactLeakageRate(const data::Dataset& original,
                                  const data::Dataset& anonymized,
                                  double tolerance);

}  // namespace condensa::metrics

#endif  // CONDENSA_METRICS_PRIVACY_H_
