// Locality-sensitivity measures (paper Section 2.2).
//
// Condensation fixes the group *size*, not the group *radius*, so sparse
// regions produce spatially large groups whose locally-uniform assumption
// is weaker: "outlier points are inherently more difficult to mask".
// These helpers quantify that: a per-record density proxy (k-th-neighbour
// distance) and per-record regeneration distances, which ablation A8
// buckets by density to show information loss concentrating in sparse
// regions.

#ifndef CONDENSA_METRICS_LOCALITY_H_
#define CONDENSA_METRICS_LOCALITY_H_

#include <vector>

#include "common/status.h"
#include "data/dataset.h"

namespace condensa::metrics {

// Distance from each record to its k-th nearest *other* record (the
// standard density proxy: large = sparse region). Fails when k >= size.
StatusOr<std::vector<double>> KthNeighborDistances(
    const data::Dataset& dataset, std::size_t k);

// Distance from each original record to the nearest anonymized record —
// how well the release "covers" each record's neighbourhood.
StatusOr<std::vector<double>> NearestReleaseDistances(
    const data::Dataset& original, const data::Dataset& anonymized);

// Mean of `values` within each of `buckets` equal-population quantile
// buckets of `keys` (bucket 0 = smallest keys). Sizes must match;
// buckets must be in [1, size].
StatusOr<std::vector<double>> MeanByQuantileBucket(
    const std::vector<double>& keys, const std::vector<double>& values,
    std::size_t buckets);

}  // namespace condensa::metrics

#endif  // CONDENSA_METRICS_LOCALITY_H_
