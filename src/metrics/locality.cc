#include "metrics/locality.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "index/kdtree.h"

namespace condensa::metrics {

StatusOr<std::vector<double>> KthNeighborDistances(
    const data::Dataset& dataset, std::size_t k) {
  if (dataset.empty()) {
    return InvalidArgumentError("empty dataset");
  }
  if (k == 0 || k >= dataset.size()) {
    return InvalidArgumentError("k must be in [1, size)");
  }
  CONDENSA_ASSIGN_OR_RETURN(index::KdTree tree,
                            index::KdTree::Build(dataset.records()));
  // Build validated every record against dataset.dim(), so the per-pair
  // distances below use the unchecked span primitive directly.
  std::vector<double> distances;
  distances.reserve(dataset.size());
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    // k + 1 because the record itself is its own nearest neighbour.
    std::vector<std::size_t> neighbours =
        tree.KNearest(dataset.record(i), k + 1);
    distances.push_back(std::sqrt(linalg::SquaredDistanceSpan(
        dataset.record(i).data(), dataset.record(neighbours.back()).data(),
        dataset.dim())));
  }
  return distances;
}

StatusOr<std::vector<double>> NearestReleaseDistances(
    const data::Dataset& original, const data::Dataset& anonymized) {
  if (original.empty() || anonymized.empty()) {
    return InvalidArgumentError("empty dataset");
  }
  if (original.dim() != anonymized.dim()) {
    return InvalidArgumentError("dataset dimension mismatch");
  }
  CONDENSA_ASSIGN_OR_RETURN(index::KdTree tree,
                            index::KdTree::Build(anonymized.records()));
  // The dimension match was checked once above; per-pair distances skip
  // the per-call check.
  std::vector<double> distances;
  distances.reserve(original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    std::size_t nearest = tree.Nearest(original.record(i));
    distances.push_back(std::sqrt(linalg::SquaredDistanceSpan(
        original.record(i).data(), anonymized.record(nearest).data(),
        original.dim())));
  }
  return distances;
}

StatusOr<std::vector<double>> MeanByQuantileBucket(
    const std::vector<double>& keys, const std::vector<double>& values,
    std::size_t buckets) {
  if (keys.empty() || keys.size() != values.size()) {
    return InvalidArgumentError(
        "keys and values must be non-empty and the same length");
  }
  if (buckets == 0 || buckets > keys.size()) {
    return InvalidArgumentError("buckets must be in [1, size]");
  }

  std::vector<std::size_t> order(keys.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&keys](std::size_t a, std::size_t b) {
              return keys[a] < keys[b];
            });

  std::vector<double> means(buckets, 0.0);
  std::vector<std::size_t> counts(buckets, 0);
  for (std::size_t rank = 0; rank < order.size(); ++rank) {
    std::size_t bucket = rank * buckets / order.size();
    means[bucket] += values[order[rank]];
    ++counts[bucket];
  }
  for (std::size_t b = 0; b < buckets; ++b) {
    means[b] /= static_cast<double>(counts[b]);
  }
  return means;
}

}  // namespace condensa::metrics
