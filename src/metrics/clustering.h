// Clustering agreement metrics.
//
// Used by ablation A6 to quantify whether cluster structure survives
// condensation: k-means is run on the original and on the anonymized data
// and the two labelings of a common reference set are compared.

#ifndef CONDENSA_METRICS_CLUSTERING_H_
#define CONDENSA_METRICS_CLUSTERING_H_

#include <cstddef>
#include <vector>

#include "common/status.h"

namespace condensa::metrics {

// Adjusted Rand index between two labelings of the same records. 1 means
// identical partitions, ~0 means chance-level agreement; can be slightly
// negative. Fails on empty or unequal-length inputs.
StatusOr<double> AdjustedRandIndex(const std::vector<std::size_t>& a,
                                   const std::vector<std::size_t>& b);

// Purity of clustering `clusters` against ground-truth labels: each
// cluster votes for its dominant label; purity is the fraction of records
// matching their cluster's vote. In [0, 1].
StatusOr<double> ClusterPurity(const std::vector<std::size_t>& clusters,
                               const std::vector<int>& labels);

}  // namespace condensa::metrics

#endif  // CONDENSA_METRICS_CLUSTERING_H_
