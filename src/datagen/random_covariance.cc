#include "datagen/random_covariance.h"

#include <cmath>

#include "common/check.h"

namespace condensa::datagen {

linalg::Matrix RandomOrthogonal(std::size_t dim, Rng& rng) {
  CONDENSA_CHECK_GT(dim, 0u);
  linalg::Matrix q(dim, dim);
  for (std::size_t c = 0; c < dim; ++c) {
    // Draw a Gaussian column, then orthogonalize against previous columns
    // (modified Gram-Schmidt) and normalize. Redraw on degeneracy.
    while (true) {
      linalg::Vector column(dim);
      for (std::size_t r = 0; r < dim; ++r) {
        column[r] = rng.Gaussian();
      }
      for (std::size_t prev = 0; prev < c; ++prev) {
        double projection = 0.0;
        for (std::size_t r = 0; r < dim; ++r) {
          projection += column[r] * q(r, prev);
        }
        for (std::size_t r = 0; r < dim; ++r) {
          column[r] -= projection * q(r, prev);
        }
      }
      double norm = column.Norm();
      if (norm > 1e-8) {
        for (std::size_t r = 0; r < dim; ++r) {
          q(r, c) = column[r] / norm;
        }
        break;
      }
    }
  }
  return q;
}

linalg::Vector GeometricSpectrum(std::size_t dim, double first, double ratio) {
  CONDENSA_CHECK_GT(first, 0.0);
  CONDENSA_CHECK_GT(ratio, 0.0);
  CONDENSA_CHECK_LE(ratio, 1.0);
  linalg::Vector spectrum(dim);
  double value = first;
  for (std::size_t i = 0; i < dim; ++i) {
    spectrum[i] = value;
    value *= ratio;
  }
  return spectrum;
}

linalg::Matrix RandomCovariance(const linalg::Vector& spectrum, Rng& rng) {
  for (std::size_t i = 0; i < spectrum.dim(); ++i) {
    CONDENSA_CHECK_GE(spectrum[i], 0.0);
  }
  linalg::Matrix q = RandomOrthogonal(spectrum.dim(), rng);
  return linalg::MatMul(linalg::MatMul(q, linalg::Matrix::Diagonal(spectrum)),
                        q.Transposed());
}

}  // namespace condensa::datagen
