// Synthetic UCI-profile dataset generators.
//
// The paper evaluates on four UCI datasets (Ionosphere, Ecoli, Pima Indian,
// Abalone). Those files are not redistributable with this repository, so
// each generator below produces a synthetic dataset matching the original's
// cardinality, dimensionality, class structure, and the statistical traits
// the condensation experiments depend on:
//   * Ionosphere — 351 records, 34 attributes, 2 classes (225 "good" /
//     126 "bad"); the good class is a tight multi-modal cloud with strong
//     inter-attribute correlations, the bad class diffuse and overlapping,
//     plus a sprinkling of label-noise anomalies (the trait behind the
//     paper's "condensation beats the original data" observation).
//   * Ecoli — 336 records, 7 attributes, 8 classes with the original's
//     extreme imbalance (143/77/52/35/20/5/2/2).
//   * Pima Indian — 768 records, 8 attributes, 2 classes (500/268) with
//     heavy class overlap and a higher anomaly rate (the paper singles out
//     Pima's "classification anomalies" that dynamic splitting removes).
//   * Abalone — 4177 records, 7 attributes, regression target "age"; all
//     attributes are near-collinear functions of a latent size factor,
//     mirroring the original's highly correlated physical measurements.
//
// Every generator is deterministic given the Rng and returns records in a
// shuffled order. Real UCI files can be substituted at any time through
// data::ReadCsv; the pipeline is agnostic to the source.

#ifndef CONDENSA_DATAGEN_PROFILES_H_
#define CONDENSA_DATAGEN_PROFILES_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "data/dataset.h"

namespace condensa::datagen {

// Scales a profile's record counts by `size_factor` (1.0 = paper-sized).
struct ProfileOptions {
  double size_factor = 1.0;
};

// 351 x 34, 2 classes. Baseline 1-NN accuracy lands in the mid-80s like
// the real dataset.
data::Dataset MakeIonosphere(Rng& rng, const ProfileOptions& options = {});

// 336 x 7, 8 imbalanced classes.
data::Dataset MakeEcoli(Rng& rng, const ProfileOptions& options = {});

// 768 x 8, 2 overlapping classes with ~8% label-noise anomalies. Baseline
// 1-NN accuracy lands near 70% like the real dataset.
data::Dataset MakePima(Rng& rng, const ProfileOptions& options = {});

// 4177 x 7 regression (target: age in years, ring count + 1.5).
data::Dataset MakeAbalone(Rng& rng, const ProfileOptions& options = {});

// Generic isotropic Gaussian blobs for tests: `num_classes` classes of
// `per_class` records in `dim` dimensions, class means `separation` apart
// in expectation, unit within-class variance.
data::Dataset MakeGaussianBlobs(std::size_t num_classes,
                                std::size_t per_class, std::size_t dim,
                                double separation, Rng& rng);

// Name-based lookup used by the figure benches: "ionosphere", "ecoli",
// "pima", "abalone". Fails on an unknown name.
StatusOr<data::Dataset> MakeProfileByName(const std::string& name, Rng& rng,
                                          const ProfileOptions& options = {});

}  // namespace condensa::datagen

#endif  // CONDENSA_DATAGEN_PROFILES_H_
